// Cache-blocking ablation: sweep chunk width x fusion width on a
// low-qubit-dense random circuit and compare the "cached" backend
// against the unblocked "fused" and "hpc" paths.
//
// What it shows: after fusion, the fused executor still pays one full
// DRAM pass per block; at 20+ qubits the state no longer fits any
// cache, so every pass streams the whole vector through the memory bus.
// The cached backend applies a whole *sweep* of blocks to each
// cache-resident 2^L-amplitude chunk, paying one DRAM pass per sweep —
// the paper's §4 "touch the state as few times as possible" taken to
// its cache-level conclusion. When the workload is dense on low qubits
// (all ops chunk-local), the whole circuit collapses to a handful of
// passes and the win is purest; that is the acceptance workload here.
//
// Usage: ablation_blocking [--qubits 22] [--gates 400] [--active 16]
//                          [--fusion-width 5] [--fusion-sweep] [--seed 1]
//                          [--no-hpc] [--json FILE] [--full]
//   --active:       gates act on qubits [0, active) of the wider register
//   --fusion-sweep: cross the chunk sweep with fusion widths k = 2..6
//                   (default: the single --fusion-width)
//   --json:         write machine-readable per-backend timings (the CI
//                   bench-smoke step uploads this as BENCH_pr3.json)
//   --full:         26 qubits, 600 gates
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuit/builders.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "fuse/fused_simulator.hpp"
#include "sched/cached_simulator.hpp"
#include "sim/simulator.hpp"

namespace {

using qc::qubit_t;

struct Result {
  std::string backend;
  qubit_t fusion_width = 0;  // 0 = n/a
  qubit_t chunk_width = 0;   // 0 = n/a
  std::size_t passes = 0;
  double seconds = 0;
};

void write_json(const std::string& path, qubit_t n, std::size_t gates, qubit_t active,
                const std::vector<Result>& results, double t_fused, double t_best_cached) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"ablation_blocking\",\n  \"qubits\": %u,\n"
               "  \"gates\": %zu,\n  \"active_qubits\": %u,\n  \"threads\": %d,\n"
               "  \"results\": [\n",
               n, gates, active, qc::max_threads());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f, "    {\"backend\": \"%s\"", r.backend.c_str());
    if (r.fusion_width) std::fprintf(f, ", \"fusion_width\": %u", r.fusion_width);
    if (r.chunk_width) std::fprintf(f, ", \"chunk_width\": %u", r.chunk_width);
    if (r.passes) std::fprintf(f, ", \"passes\": %zu", r.passes);
    std::fprintf(f, ", \"seconds\": %.6e}%s\n", r.seconds,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"best_fused_seconds\": %.6e,\n  \"best_cached_seconds\": %.6e,\n",
               t_fused, t_best_cached);
  std::fprintf(f, "  \"speedup_cached_vs_fused\": %.3f\n}\n",
               t_best_cached > 0 ? t_fused / t_best_cached : 0.0);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qc;
  const Cli cli(argc, argv);
  const bool full = cli.has("full");
  const auto n = static_cast<qubit_t>(
      std::clamp(cli.get_int("qubits", full ? 26 : 22), 4L, 30L));
  const auto gates = static_cast<std::size_t>(
      std::max(cli.get_int("gates", full ? 600 : 400), 1L));
  const auto active = static_cast<qubit_t>(
      std::clamp(cli.get_int("active", std::min<long>(n, 16)), 2L, static_cast<long>(n)));
  const auto fusion_k = static_cast<qubit_t>(
      std::clamp(cli.get_int("fusion-width", 5), 1L,
                 static_cast<long>(sim::kernels::kMaxFusedWidth)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool with_hpc = !cli.has("no-hpc");
  const std::string json_path = cli.get_string("json", "");

  bench::print_header("ablation_blocking",
                      "cache-blocked sweep execution (chunk width x fusion width)");
  std::printf("workload: random dense circuit on qubits [0,%u) of %u, %zu gates, %d threads\n\n",
              active, n, gates, max_threads());

  Rng rng(seed);
  const circuit::Circuit c = circuit::random_dense_circuit(active, gates, rng).widened(n);

  sim::StateVector sv(n);
  Rng state_rng(seed + 1);
  sv.randomize(state_rng);

  std::vector<Result> results;

  double t_hpc = 0;
  if (with_hpc) {
    const sim::HpcSimulator hpc;
    t_hpc = bench::timed([&] { hpc.run(sv, c); }, /*warmup=*/true);
    std::printf("hpc baseline (unfused): %s s/run (%zu passes)\n", sci(t_hpc).c_str(), gates);
    results.push_back({"hpc", 0, 0, gates, t_hpc});
  }

  std::vector<qubit_t> fusion_widths{fusion_k};
  if (cli.has("fusion-sweep")) fusion_widths = {2, 3, 4, 5, 6};

  Table table({"k", "chunk 2^L", "sweeps", "ops-in-sweeps", "passes", "T [s]", "vs fused",
               with_hpc ? "vs hpc" : ""});
  double t_best_cached = 0;
  double t_best_fused = 0;  // best fused baseline across the swept widths
  std::size_t fused_passes_ref = 0;
  for (const qubit_t k : fusion_widths) {
    // Fused baseline at this width: one full DRAM pass per fused block.
    fuse::FusedSimulator::Options fopts;
    fopts.fusion.max_width = k;
    const fuse::FusedSimulator fused(fopts);
    const fuse::FusedCircuit fplan = fused.plan(c);
    const double t_fused = bench::timed([&] { fused.execute(sv, fplan); }, /*warmup=*/true);
    std::printf("fused baseline (k=%u):  %s s/run (%zu passes)\n", k, sci(t_fused).c_str(),
                fplan.items.size());
    results.push_back({"fused", k, 0, fplan.items.size(), t_fused});
    if (t_best_fused == 0 || t_fused < t_best_fused) {
      t_best_fused = t_fused;
      fused_passes_ref = fplan.items.size();
    }

    const qubit_t lo = static_cast<qubit_t>(std::max(10, static_cast<int>(k)));
    for (qubit_t chunk = lo; chunk <= std::min<qubit_t>(n, 18); chunk += 2) {
      sched::CachedSimulator::Options copts;
      copts.fusion.max_width = k;
      copts.sched.max_block_width = k;  // honest axis: no in-cache re-narrowing
      copts.sched.chunk_width = chunk;
      const sched::CachedSimulator cached(copts);
      const sched::BlockedPlan plan = cached.plan(c);
      const double t = bench::timed([&] { cached.execute(sv, plan); }, /*warmup=*/true);
      if (t_best_cached == 0 || t < t_best_cached) t_best_cached = t;
      table.add_row({std::to_string(k), std::to_string(chunk), std::to_string(plan.sweeps()),
                     std::to_string(plan.chunk_ops()), std::to_string(plan.passes()), sci(t),
                     fixed(t_fused / t, 2) + "x",
                     with_hpc ? fixed(t_hpc / t, 2) + "x" : ""});
      results.push_back({"cached", k, chunk, plan.passes(), t});
    }
  }
  std::printf("\n");
  table.print("chunk-width x fusion-width sweep (plans built once, execution timed)");

  std::printf("\nreading: 'passes' counts full state-vector traversals (sweeps +\n"
              "remaps + globals). The fused path pays %zu; blocking collapses all\n"
              "chunk-local ops of a sweep into one pass, so the speedup tracks the\n"
              "pass reduction until chunks outgrow the cache.\n",
              fused_passes_ref);
  std::printf("\nbest cached vs best fused: %.2fx\n",
              t_best_cached > 0 ? t_best_fused / t_best_cached : 0.0);

  if (!json_path.empty())
    write_json(json_path, n, gates, active, results, t_best_fused, t_best_cached);
  return 0;
}
