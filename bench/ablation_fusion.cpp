// Fusion-width ablation: sweep the fused-block width k on a random
// dense circuit and compare against the unfused hpc baseline.
//
// What it shows: gate application is memory bound, so collapsing g gates
// into one k-qubit block trades g full state-vector passes for one pass
// plus 2^k flops per amplitude. Small k (2-5) wins; large k turns the
// sweep compute bound and gives the gains back — the same trade-off the
// paper quantifies for diagonal-run fusion in its ablation.
//
// Usage: ablation_fusion [--qubits 20] [--gates 400] [--max-width 6]
//                        [--seed 1] [--raw] [--full]
//   --raw:  disable the pass's cost gate (fuse every run to exactly k
//           qubits) — shows the unguarded trade-off curve
//   --full: 24 qubits, 600 gates
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "circuit/builders.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "fuse/fused_simulator.hpp"
#include "sched/cached_simulator.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace qc;
  const Cli cli(argc, argv);
  const bool full = cli.has("full");
  const auto n = static_cast<qubit_t>(
      std::clamp(cli.get_int("qubits", full ? 24 : 20), 2L, 30L));
  const auto gates = static_cast<std::size_t>(
      std::max(cli.get_int("gates", full ? 600 : 400), 1L));
  const auto max_k = std::min(static_cast<qubit_t>(cli.get_int("max-width", 6)),
                              sim::kernels::kMaxFusedWidth);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool raw = cli.has("raw");

  bench::print_header("ablation_fusion",
                      "gate-fusion width sweep (k-qubit blocks vs per-gate sweeps)");
  std::printf("workload: random dense circuit, %u qubits, %zu gates, %d threads\n\n",
              n, gates, max_threads());

  Rng rng(seed);
  const circuit::Circuit c = circuit::random_dense_circuit(n, gates, rng);

  sim::StateVector sv(n);
  Rng state_rng(seed + 1);
  sv.randomize(state_rng);

  // Unfused baseline: every gate is one specialized sweep.
  const sim::HpcSimulator hpc;
  const double t_hpc = bench::timed([&] { hpc.run(sv, c); }, /*warmup=*/true);
  std::printf("hpc baseline (unfused): %s s/run, %s s/gate\n\n", sci(t_hpc).c_str(),
              sci(t_hpc / static_cast<double>(gates)).c_str());

  Table table({"k", "blocks", "gates-fused", "passes", "T [s]", "T/gate [s]", "vs hpc",
               "T cached [s]", "cached vs hpc"});
  for (qubit_t k = 1; k <= max_k; ++k) {
    fuse::FusedSimulator::Options opts;
    opts.fusion.max_width = k;
    opts.fusion.cost_gate = !raw;
    const fuse::FusedSimulator fused(opts);
    const fuse::FusedCircuit plan = fused.plan(c);
    const std::size_t passes = plan.items.size();
    const double t = bench::timed([&] { fused.execute(sv, plan); }, /*warmup=*/true);
    // Same fusion width through the cache-blocked executor (auto chunk).
    sched::CachedSimulator::Options copts;
    copts.fusion = opts.fusion;
    copts.sched.max_block_width = k;  // honest axis: no in-cache re-narrowing
    const sched::CachedSimulator cached(copts);
    const sched::BlockedPlan bplan = cached.plan(c);
    const double tc = bench::timed([&] { cached.execute(sv, bplan); }, /*warmup=*/true);
    table.add_row({std::to_string(k), std::to_string(plan.blocks()),
                   std::to_string(plan.fused_gates()), std::to_string(passes), sci(t),
                   sci(t / static_cast<double>(gates)), fixed(t_hpc / t, 2) + "x", sci(tc),
                   fixed(t_hpc / tc, 2) + "x"});
  }
  table.print("fusion width sweep (plan built once, execution timed)");
  std::printf("\nreading: 'passes' is the number of state-vector sweeps after fusion\n"
              "(vs %zu unfused). Speedup tracks the pass reduction until the dense\n"
              "2^k x 2^k per-block mat-vec turns the sweep compute bound. The\n"
              "cached columns run the same plan through the cache-blocked sweep\n"
              "executor (bench_ablation_blocking sweeps its chunk width).\n",
              gates);
  return 0;
}
