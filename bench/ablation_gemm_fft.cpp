// Ablation microbenchmarks (google-benchmark) for the substrate design
// choices: blocked vs naive GEMM, Strassen crossover, FFT throughput vs
// the naive DFT, and plan reuse.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "linalg/eig.hpp"
#include "linalg/gemm.hpp"

namespace {

using namespace qc;
using linalg::Matrix;

void BM_GemmNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  for (auto _ : state) {
    Matrix c = linalg::gemm_naive(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 8.0 * n * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNaive)->Arg(128)->Arg(256);

void BM_GemmBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm_into(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 8.0 * n * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmBlocked)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_GemmStrassen(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  for (auto _ : state) {
    Matrix c = linalg::strassen(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmStrassen)->Arg(512)->Arg(1024);

void BM_Hessenberg(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const Matrix a = Matrix::random(n, n, rng);
  for (auto _ : state) {
    Matrix h = linalg::hessenberg(a);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_Hessenberg)->Arg(128)->Arg(256);

void BM_Eig(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const Matrix u = Matrix::random_unitary(n, rng);
  for (auto _ : state) {
    const auto e = linalg::eig(u, /*compute_vectors=*/true);
    benchmark::DoNotOptimize(e.values.data());
  }
}
BENCHMARK(BM_Eig)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_FftPlanned(benchmark::State& state) {
  const qubit_t n = static_cast<qubit_t>(state.range(0));
  Rng rng(n);
  aligned_vector<complex_t> v(dim(n));
  for (auto& x : v) x = rng.normal_complex();
  const fft::FftPlan plan(n, fft::Sign::Positive);
  for (auto _ : state) plan.execute(v);
  // 5 N log2 N real flops — the Eq. 5 accounting.
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 5.0 * static_cast<double>(dim(n)) * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FftPlanned)->Arg(16)->Arg(20)->Arg(24);

void BM_FftSingleStage(benchmark::State& state) {
  const qubit_t n = static_cast<qubit_t>(state.range(0));
  Rng rng(n);
  aligned_vector<complex_t> v(dim(n));
  for (auto& x : v) x = rng.normal_complex();
  const fft::FftPlan plan(n, fft::Sign::Positive, fft::Schedule::SingleStage);
  for (auto _ : state) plan.execute(v);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim(n) * sizeof(complex_t) * 2 * n));
}
BENCHMARK(BM_FftSingleStage)->Arg(20)->Arg(24);

void BM_FftFusedPairs(benchmark::State& state) {
  const qubit_t n = static_cast<qubit_t>(state.range(0));
  Rng rng(n);
  aligned_vector<complex_t> v(dim(n));
  for (auto& x : v) x = rng.normal_complex();
  const fft::FftPlan plan(n, fft::Sign::Positive, fft::Schedule::FusedPairs);
  for (auto _ : state) plan.execute(v);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim(n) * sizeof(complex_t) * n));
}
BENCHMARK(BM_FftFusedPairs)->Arg(20)->Arg(24);

void BM_FftStockham(benchmark::State& state) {
  const qubit_t n = static_cast<qubit_t>(state.range(0));
  Rng rng(n);
  aligned_vector<complex_t> v(dim(n)), scratch(dim(n));
  for (auto& x : v) x = rng.normal_complex();
  const fft::FftPlan plan(n, fft::Sign::Positive, fft::Schedule::Stockham);
  for (auto _ : state) plan.execute(v, {scratch.data(), scratch.size()}, fft::Norm::None);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim(n) * sizeof(complex_t) * n));
}
BENCHMARK(BM_FftStockham)->Arg(20)->Arg(24);

void BM_FftUnplanned(benchmark::State& state) {
  const qubit_t n = static_cast<qubit_t>(state.range(0));
  Rng rng(n);
  aligned_vector<complex_t> v(dim(n));
  for (auto& x : v) x = rng.normal_complex();
  for (auto _ : state) fft::fft_inplace(v, fft::Sign::Positive);
}
BENCHMARK(BM_FftUnplanned)->Arg(16)->Arg(20);

void BM_DftNaive(benchmark::State& state) {
  const qubit_t n = static_cast<qubit_t>(state.range(0));
  Rng rng(n);
  aligned_vector<complex_t> v(dim(n)), out(dim(n));
  for (auto& x : v) x = rng.normal_complex();
  for (auto _ : state) fft::dft_naive(v, out, fft::Sign::Positive);
}
BENCHMARK(BM_DftNaive)->Arg(10)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
