// Ablation microbenchmarks (google-benchmark) for the kernel-level
// design choices DESIGN.md calls out: diagonal specialization vs the
// generic pair kernel, control folding vs masked traversal, the NOT
// fast path, diagonal-run fusion, and the permutation kernel.
#include <benchmark/benchmark.h>

#include <numbers>

#include "circuit/builders.hpp"
#include "common/rng.hpp"
#include "sim/kernels.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qc;
using sim::kernels::U2;

sim::StateVector make_state(qubit_t n) {
  sim::StateVector sv(n);
  Rng rng(n);
  sv.randomize(rng);
  return sv;
}

constexpr qubit_t kN = 22;

void BM_DiagonalSpecialized_CR(benchmark::State& state) {
  auto sv = make_state(kN);
  const complex_t d1 = std::polar(1.0, 0.3);
  for (auto _ : state)
    sim::kernels::apply_diagonal(sv.amplitudes(), kN, 5, complex_t{1.0}, d1, index_t{1} << 9);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim(kN) / 4 * sizeof(complex_t) * 2));
}
BENCHMARK(BM_DiagonalSpecialized_CR);

void BM_DiagonalViaGenericKernel_CR(benchmark::State& state) {
  auto sv = make_state(kN);
  const U2 u{1.0, 0.0, 0.0, std::polar(1.0, 0.3)};
  for (auto _ : state)
    sim::kernels::apply_generic_masked(sv.amplitudes(), kN, 5, index_t{1} << 9, u, true);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim(kN) * sizeof(complex_t) * 2));
}
BENCHMARK(BM_DiagonalViaGenericKernel_CR);

void BM_ControlFolded_CH(benchmark::State& state) {
  auto sv = make_state(kN);
  const double s = 1.0 / std::numbers::sqrt2;
  const U2 h{s, s, s, -s};
  for (auto _ : state)
    sim::kernels::apply_folded(sv.amplitudes(), kN, 3, index_t{1} << 11, h);
}
BENCHMARK(BM_ControlFolded_CH);

void BM_ControlMasked_CH(benchmark::State& state) {
  auto sv = make_state(kN);
  const double s = 1.0 / std::numbers::sqrt2;
  const U2 h{s, s, s, -s};
  for (auto _ : state)
    sim::kernels::apply_generic_masked(sv.amplitudes(), kN, 3, index_t{1} << 11, h, true);
}
BENCHMARK(BM_ControlMasked_CH);

void BM_XFastPath(benchmark::State& state) {
  auto sv = make_state(kN);
  for (auto _ : state) sim::kernels::apply_x(sv.amplitudes(), kN, 7, 0);
}
BENCHMARK(BM_XFastPath);

void BM_XViaGenericKernel(benchmark::State& state) {
  auto sv = make_state(kN);
  const U2 x{0.0, 1.0, 1.0, 0.0};
  for (auto _ : state) sim::kernels::apply_generic_masked(sv.amplitudes(), kN, 7, 0, x, true);
}
BENCHMARK(BM_XViaGenericKernel);

void BM_QftUnfused(benchmark::State& state) {
  const qubit_t n = static_cast<qubit_t>(state.range(0));
  auto sv = make_state(n);
  const circuit::Circuit c = circuit::qft(n);
  const sim::HpcSimulator simulator;
  for (auto _ : state) simulator.run(sv, c);
}
BENCHMARK(BM_QftUnfused)->Arg(18)->Arg(20)->Arg(22);

void BM_QftFusedDiagonals(benchmark::State& state) {
  const qubit_t n = static_cast<qubit_t>(state.range(0));
  auto sv = make_state(n);
  const circuit::Circuit c = circuit::qft(n);
  sim::HpcSimulator::Options opts;
  opts.fuse_diagonal_runs = true;
  const sim::HpcSimulator simulator(opts);
  for (auto _ : state) simulator.run(sv, c);
}
BENCHMARK(BM_QftFusedDiagonals)->Arg(18)->Arg(20)->Arg(22);

void BM_PermutationKernel(benchmark::State& state) {
  const qubit_t n = static_cast<qubit_t>(state.range(0));
  auto sv = make_state(n);
  aligned_vector<complex_t> scratch(dim(n));
  const index_t mask = bits::low_mask(n);
  for (auto _ : state)
    sim::kernels::apply_permutation(sv.amplitudes(), {scratch.data(), scratch.size()},
                                    [mask](index_t i) { return (i * 5 + 3) & mask; });
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim(n) * sizeof(complex_t) * 3));
}
BENCHMARK(BM_PermutationKernel)->Arg(20)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
