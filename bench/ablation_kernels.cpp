// bench_ablation_kernels — precision x ISA ablation of the dispatched
// microkernels (PR 10's acceptance bench).
//
// Sweeps every available SIMD tier (scalar / avx2 / avx512, forced via
// kernels::force_isa) against both amplitude precisions (fp64 / fp32)
// over the three dispatched kernel families — dense 2x2 (apply_folded),
// dense 4x4 (apply_multi) and the run-scaled diagonal — plus one fused
// QFT sweep end to end (execute_fused over a prebuilt plan). Each cell
// reports best-of-reps seconds and the effective memory bandwidth.
//
// Headline scalars (top-level JSON numerics, picked up by
// tools/append_trajectory.py into BENCH_TRAJECTORY.md). Both are taken
// from the dense 2x2 sweep — the paper's core kernel and the cell the
// acceptance gate reads; the fused QFT row is diagonal-dominated (231
// controlled phases vs 22 H at n=22) so it understates dense-kernel
// precision gains:
//   fp32_vs_fp64_speedup   — dense2, auto-dispatched ISA: t64 / t32.
//   dispatch_vs_native_ratio — dense2 at fp64: auto-dispatched
//       hand-vectorized kernels vs the scalar reference loops, which
//       the default QC_NATIVE=ON build compiles with -march=native —
//       i.e. runtime dispatch vs what native compilation achieves
//       (<= 1.05 means within 5%).
//
// Run: ./bench_ablation_kernels [--qubits 22] [--reps 3] [--json FILE]
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <numbers>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuit/builders.hpp"
#include "common/rng.hpp"
#include "fuse/fused_simulator.hpp"
#include "sim/kernels.hpp"
#include "sim/kernels_dispatch.hpp"
#include "sim/state_vector.hpp"

namespace {

using namespace qc;
using sim::kernels::SimdIsa;

struct Cell {
  std::string kernel;
  std::string isa;
  int fp_bits = 64;
  double seconds = 0;
  double gb_per_s = 0;
};

/// Best-of-reps wall time of `f`, one warm-up run first (first touch).
template <typename F>
double best_of(int reps, F&& f) {
  f();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    f();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// One precision's sweep of the four kernel workloads under the
/// currently forced ISA. `bytes_*` count the amplitudes each pass
/// streams (read + write) so the bandwidth column is comparable across
/// precisions — fp32 moving half the bytes at equal amplitude count
/// shows up as time, not as an inflated GB/s.
template <typename T>
void run_cells(qubit_t n, int reps, const fuse::FusedCircuit& plan, const char* isa,
               std::vector<Cell>& out) {
  using C = basic_complex_t<T>;
  sim::BasicStateVector<T> sv(n);
  sv.randomize_deterministic(42);
  const auto a = sv.amplitudes();
  const double pass_bytes = 2.0 * static_cast<double>(sizeof(C)) * static_cast<double>(dim(n));
  const int bits = static_cast<int>(8 * sizeof(T));

  const sim::kernels::U2 h{1 / std::numbers::sqrt2, 1 / std::numbers::sqrt2,
                           1 / std::numbers::sqrt2, -1 / std::numbers::sqrt2};
  const auto hu = sim::kernels::u2_cast<T>(h);
  double s = best_of(reps, [&] { sim::kernels::apply_folded<T>(a, n, 5, 0, hu); });
  out.push_back({"dense2", isa, bits, s, pass_bytes / s / 1e9});

  // Dense 4x4: one fused 2-qubit block (H ox H), targets low so the
  // gather runs are long — the dispatched dense4 microkernel's case.
  const std::vector<qubit_t> targets{3, 4};
  std::vector<C> u(16);
  const complex_t hm[4] = {h.m00, h.m01, h.m10, h.m11};  // H ox H, row-major
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      u[static_cast<std::size_t>(4 * i + j)] =
          static_cast<C>(hm[2 * (i >> 1) + (j >> 1)] * hm[2 * (i & 1) + (j & 1)]);
  s = best_of(reps, [&] {
    sim::kernels::apply_multi<T>(a, n, {targets.data(), targets.size()},
                                 {u.data(), u.size()});
  });
  out.push_back({"dense4", isa, bits, s, pass_bytes / s / 1e9});

  const auto d1 = static_cast<C>(std::polar(1.0, 0.3));
  s = best_of(reps,
              [&] { sim::kernels::apply_diagonal<T>(a, n, 5, C{T{1}}, d1, index_t{1} << 9); });
  out.push_back({"diag", isa, bits, s, pass_bytes / s / 1e9});

  s = best_of(reps, [&] { fuse::execute_fused<T>(a, n, plan); });
  out.push_back({"fused_qft", isa, bits, s, 0});
}

std::vector<SimdIsa> available_isas() {
  std::vector<SimdIsa> out;
  for (const SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kAvx512})
    if (sim::kernels::isa_available(isa)) out.push_back(isa);
  return out;
}

double cell_seconds(const std::vector<Cell>& cells, const std::string& kernel,
                    const std::string& isa, int fp_bits) {
  for (const Cell& c : cells)
    if (c.kernel == kernel && c.isa == isa && c.fp_bits == fp_bits) return c.seconds;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const qubit_t n = static_cast<qubit_t>(cli.get_int("qubits", 22));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const std::string json_path = cli.get_string("json", "");

  const circuit::Circuit qft = circuit::qft(n);
  const fuse::FusedCircuit plan = fuse::fuse_circuit(qft);

  const SimdIsa dispatched = sim::kernels::active_isa();
  std::vector<Cell> cells;
  for (const SimdIsa isa : available_isas()) {
    const SimdIsa prev = sim::kernels::force_isa(isa);
    const char* name = sim::kernels::isa_name(isa);
    run_cells<double>(n, reps, plan, name, cells);
    run_cells<float>(n, reps, plan, name, cells);
    sim::kernels::force_isa(prev);
  }

  const char* disp = sim::kernels::isa_name(dispatched);
  const double t64 = cell_seconds(cells, "dense2", disp, 64);
  const double t32 = cell_seconds(cells, "dense2", disp, 32);
  const double t64_scalar = cell_seconds(cells, "dense2", "scalar", 64);
  const double fp32_speedup = t32 > 0 ? t64 / t32 : 0;
  const double dispatch_vs_native = t64_scalar > 0 ? t64 / t64_scalar : 0;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_ablation_kernels\",\n");
    std::fprintf(f, "  \"qubits\": %u,\n  \"reps\": %d,\n  \"dispatched_isa\": \"%s\",\n", n,
                 reps, disp);
    std::fprintf(f, "  \"fp32_vs_fp64_speedup\": %.3f,\n", fp32_speedup);
    std::fprintf(f, "  \"dispatch_vs_native_ratio\": %.3f,\n", dispatch_vs_native);
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"isa\": \"%s\", \"fp_bits\": %d, "
                   "\"seconds\": %.6f, \"gb_per_s\": %.2f}%s\n",
                   c.kernel.c_str(), c.isa.c_str(), c.fp_bits, c.seconds, c.gb_per_s,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

  bench::print_header("bench_ablation_kernels",
                      "precision x ISA kernel ablation (PR 10 dispatch + fp32)");
  Table table({"kernel", "isa", "fp", "best [s]", "GB/s"});
  for (const Cell& c : cells)
    table.add_row({c.kernel, c.isa, std::to_string(c.fp_bits), sci(c.seconds),
                   c.gb_per_s > 0 ? fixed(c.gb_per_s, 2) : "-"});
  table.print("kernel cells (best of " + std::to_string(reps) + ")");
  std::printf("\ndispatched isa:            %s\n", disp);
  std::printf("fp32 vs fp64 speedup:      %.2fx (dense 2x2 sweep, %u qubits)\n", fp32_speedup,
              n);
  std::printf("dispatch vs native ratio:  %.2fx (fp64 dense 2x2, dispatched vs scalar "
              "reference at build arch)\n",
              dispatch_vs_native);
  return 0;
}
