// bench_engine — the engine front door's first BENCH datapoint: one
// QFT-dominated Program executed by every requested backend, per-op
// wall-clock trace emitted as JSON.
//
// The program (prep rotations + QFT + inverse QFT on the full register)
// is the paper's §3.2 emulation showcase: the "auto" backend runs each
// QFT as one FFT over the amplitudes, a gate-level backend pays the
// O(n^2) gate cascade — at the default 20 qubits the auto backend is
// expected >= 5x faster than "hpc" end to end.
//
// Run: ./bench_engine [--qubits 20] [--backends auto,hpc,fused] [--reps 3]
//      [--precision f64|f32] — amplitude precision of the gate segments
//                     (f32 runs the float kernels; emulation stays fp64)
//      [--metrics]  — re-run each backend once with tracing on and embed
//                     the flat obs metrics (spans/lanes/imbalance) per run
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "obs/report.hpp"

namespace {

using namespace qc;

/// Comma-separated backend list -> names.
std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(start, comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s)
    if (c == '"' || c == '\\')
      (out += '\\') += c;
    else
      out += c;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const qubit_t n = static_cast<qubit_t>(cli.get_int("qubits", 20));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const bool metrics = cli.has("metrics");
  const std::string precision = cli.get_string("precision", "f64");
  const std::vector<std::string> backends =
      split_names(cli.get_string("backends", "auto,hpc,fused"));

  engine::Program program(n);
  for (qubit_t q = 0; q < n; ++q) {
    program.h(q);
    program.rz(q, 0.13 * static_cast<double>(q + 1));
  }
  program.qft().inverse_qft().qft();

  std::printf("{\n  \"bench\": \"bench_engine\",\n  \"qubits\": %u,\n  \"reps\": %d,\n", n,
              reps);
  std::printf("  \"precision\": \"%s\",\n", precision.c_str());
  std::printf("  \"program\": [");
  for (std::size_t i = 0; i < program.ops().size(); ++i)
    std::printf("%s\"%s\"", i ? ", " : "", json_escape(program.ops()[i].label()).c_str());
  std::printf("],\n  \"runs\": [\n");

  const engine::Engine eng;
  double total_auto = 0, total_hpc = 0;
  for (std::size_t b = 0; b < backends.size(); ++b) {
    engine::RunOptions opts;
    opts.backend = backends[b];
    opts.precision = precision == "f32" ? Precision::kF32 : Precision::kF64;
    // Best-of-reps end-to-end, trace taken from the fastest run (first
    // runs pay first-touch page faults; see bench_util notes).
    engine::Result best = eng.run(program, opts);
    for (int rep = 1; rep < reps; ++rep) {
      engine::Result r = eng.run(program, opts);
      if (r.total_seconds < best.total_seconds) best = std::move(r);
    }
    if (backends[b] == "auto") total_auto = best.total_seconds;
    if (backends[b] == "hpc") total_hpc = best.total_seconds;
    std::printf("    {\"backend\": \"%s\", \"run_qubits\": %u, \"total_seconds\": %.6f, "
                "\"ops\": [",
                json_escape(best.backend).c_str(), best.run_qubits, best.total_seconds);
    for (std::size_t i = 0; i < best.trace.size(); ++i)
      std::printf("%s{\"op\": \"%s\", \"seconds\": %.6f}", i ? ", " : "",
                  json_escape(best.trace[i].op).c_str(), best.trace[i].seconds);
    std::printf("]");
    if (metrics) {
      // One extra traced run (kept out of the headline best-of-reps so
      // the timing numbers never include instrumentation).
      opts.trace = true;
      const engine::Result traced = eng.run(program, opts);
      if (traced.trace_data != nullptr)
        std::printf(", \"metrics\": %s", obs::metrics_json(*traced.trace_data).c_str());
    }
    std::printf("}%s\n", b + 1 < backends.size() ? "," : "");
  }
  std::printf("  ]");
  if (total_auto > 0 && total_hpc > 0)
    std::printf(",\n  \"speedup_auto_vs_hpc\": %.2f", total_hpc / total_auto);
  std::printf("\n}\n");
  return 0;
}
