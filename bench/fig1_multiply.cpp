// Figure 1: time per multiplication of two m-bit numbers into a third
// register, gate-level simulation (shift-and-add Cuccaro network on
// 3m+1 qubits) vs emulation (one amplitude permutation on 3m qubits).
//
// Usage: fig1_multiply [--m-sim-max M] [--m-emu-max M] [--full]
//   defaults: simulation m = 2..6, emulation m = 2..8
//   --full:   simulation m = 2..8, emulation m = 2..9 (needs ~9 GB)
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/decompose.hpp"
#include "common/rng.hpp"
#include "emu/emulator.hpp"
#include "revcirc/arith.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qc;

/// Paper's Fig. 1 speedup inset, eyeballed from the log plot.
double paper_speedup(qubit_t m) {
  switch (m) {
    case 2: return 90;
    case 3: return 140;
    case 4: return 190;
    case 5: return 240;
    case 6: return 290;
    case 7: return 340;
    case 8: return 400;
    case 9: return 480;
    default: return -1;
  }
}

double time_simulation(qubit_t m, bool lower) {
  // The paper's simulator executes one- and two-qubit elementary gates
  // (§2); lowering the Toffolis to the 15-gate Clifford+T network is the
  // faithful baseline. --native-toffoli keeps 3-qubit gates (an
  // advantage a real gate-level simulator does not get).
  circuit::Circuit c = revcirc::multiplier_circuit(m);
  if (lower) c = circuit::lower_to_clifford_t(c);
  sim::StateVector sv(c.qubits());
  Rng rng(m);
  // Random data registers, work qubit |0>: zero the ancilla's half.
  {
    sim::StateVector data(3 * m);
    data.randomize(rng);
    std::copy(data.amplitudes().begin(), data.amplitudes().end(), sv.amplitudes().begin());
  }
  const sim::HpcSimulator hpc;
  return time_per_rep([&] { hpc.run(sv, c); }, /*min_seconds=*/0.3, /*max_reps=*/20);
}

double time_emulation(qubit_t m) {
  sim::StateVector sv(3 * m);
  Rng rng(m + 100);
  sv.randomize(rng);
  emu::Emulator emulator(sv);
  const emu::RegRef a{0, m}, b{m, m}, c{static_cast<qubit_t>(2 * m), m};
  emulator.multiply(a, b, c);  // warm-up sizes the scratch buffer
  return time_per_rep([&] { emulator.multiply(a, b, c); }, 0.3, 1 << 12);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.has("full");
  const bool lower = !cli.has("native-toffoli");
  const long m_sim_max = cli.get_int("m-sim-max", full ? 7 : 6);
  const long m_emu_max = cli.get_int("m-emu-max", full ? 9 : 8);

  bench::print_header("fig1_multiply",
                      "Fig. 1 — multiplication: simulation vs emulation");
  std::printf("simulation: shift-and-add network on 3m+1 qubits, %s;\n"
              "emulation: one permutation on 3m qubits\n\n",
              lower ? "lowered to 1-2 qubit Clifford+T gates"
                    : "with native Toffolis (--native-toffoli)");

  Table table({"m", "qubits(sim)", "gates(sim)", "T_sim [s]", "T_emu [s]", "speedup",
               "paper~"});
  for (qubit_t m = 2; m <= static_cast<qubit_t>(m_emu_max); ++m) {
    const bool have_sim = m <= static_cast<qubit_t>(m_sim_max);
    const std::size_t gates =
        have_sim ? (lower ? circuit::lower_to_clifford_t(revcirc::multiplier_circuit(m))
                          : revcirc::multiplier_circuit(m))
                       .size()
                 : 0;
    const double t_emu = time_emulation(m);
    const double t_sim = have_sim ? time_simulation(m, lower) : -1;
    table.add_row({std::to_string(m), std::to_string(3 * m + 1),
                   have_sim ? std::to_string(gates) : "-",
                   have_sim ? sci(t_sim) : "skipped",
                   sci(t_emu),
                   have_sim ? fixed(t_sim / t_emu, 1) + "x" : "-",
                   bench::anchor(paper_speedup(m))});
  }
  table.print("time per multiplication (m-bit operands)");
  std::printf("\npaper: speedup >100x, growing with m (Fig. 1 inset). The gap\n"
              "comes from replacing ~3m^2 gate sweeps (plus the carry ancilla\n"
              "qubit doubling the state) with one amplitude permutation.\n");
  return 0;
}
