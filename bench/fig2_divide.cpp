// Figure 2: time per integer division, gate-level simulation (restoring
// divider on 4m+4 qubits — the "extra work qubits for the overflow
// test" the paper blames for the larger gap) vs emulation (one partial
// amplitude map on 3m qubits).
//
// Usage: fig2_divide [--m-sim-max M] [--m-emu-max M] [--full]
//   defaults: simulation m = 2..4, emulation m = 2..8
//   --full:   simulation m = 2..6, emulation m = 2..9
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/decompose.hpp"
#include "common/rng.hpp"
#include "emu/emulator.hpp"
#include "revcirc/arith.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qc;

/// Paper's Fig. 2 speedup inset (log scale, 100 to 10000).
double paper_speedup(qubit_t m) {
  switch (m) {
    case 2: return 100;
    case 3: return 300;
    case 4: return 900;
    case 5: return 2000;
    case 6: return 5000;
    case 7: return 10000;
    default: return -1;
  }
}

double time_simulation(qubit_t m, bool lower) {
  circuit::Circuit c = revcirc::divider_circuit(m);
  if (lower) c = circuit::lower_to_clifford_t(c);
  sim::StateVector sv(c.qubits());
  // Superpose dividend and divisor registers; all work space |0>.
  circuit::Circuit prep(c.qubits());
  for (qubit_t q = 0; q < m; ++q) prep.h(q);
  for (qubit_t q = 0; q < m; ++q) prep.h(2 * m + 1 + q);
  const sim::HpcSimulator hpc;
  hpc.run(sv, prep);
  // One-shot timing: the divider is not idempotent on its own output, so
  // re-prepare per repetition (preparation excluded from the clock).
  double total = 0;
  int reps = 0;
  do {
    sv.set_basis(0);
    hpc.run(sv, prep);
    WallTimer t;
    hpc.run(sv, c);
    total += t.seconds();
    ++reps;
  } while (total < 0.3 && reps < 20);
  return total / reps;
}

double time_emulation(qubit_t m) {
  sim::StateVector sv(3 * m);
  emu::Emulator emulator(sv);
  const emu::RegRef a{0, m}, b{m, m}, c{static_cast<qubit_t>(2 * m), m};
  const sim::HpcSimulator hpc;
  circuit::Circuit prep(3 * m);
  for (qubit_t q = 0; q < 2 * m; ++q) prep.h(q);  // superpose a and b, c = 0
  double total = 0;
  int reps = 0;
  do {
    sv.set_basis(0);
    hpc.run(sv, prep);
    WallTimer t;
    emulator.divide(a, b, c);
    total += t.seconds();
    ++reps;
  } while (total < 0.3 && reps < 1 << 12);
  return total / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.has("full");
  const bool lower = !cli.has("native-toffoli");
  const long m_sim_max = cli.get_int("m-sim-max", full ? 5 : 4);
  const long m_emu_max = cli.get_int("m-emu-max", full ? 9 : 8);

  bench::print_header("fig2_divide", "Fig. 2 — division: simulation vs emulation");
  std::printf("simulation: restoring divider on 4m+4 qubits (overflow-test work\n"
              "qubits), %s;\nemulation: one partial map on 3m qubits\n\n",
              lower ? "lowered to 1-2 qubit Clifford+T gates"
                    : "with native Toffolis (--native-toffoli)");

  Table table({"m", "qubits(sim)", "qubits(emu)", "T_sim [s]", "T_emu [s]", "speedup",
               "paper~"});
  for (qubit_t m = 2; m <= static_cast<qubit_t>(m_emu_max); ++m) {
    const bool have_sim = m <= static_cast<qubit_t>(m_sim_max);
    const double t_emu = time_emulation(m);
    const double t_sim = have_sim ? time_simulation(m, lower) : -1;
    table.add_row({std::to_string(m), std::to_string(4 * m + 4), std::to_string(3 * m),
                   have_sim ? sci(t_sim) : "skipped", sci(t_emu),
                   have_sim ? fixed(t_sim / t_emu, 1) + "x" : "-",
                   bench::anchor(paper_speedup(m))});
  }
  table.print("time per division (m-bit operands)");
  std::printf("\npaper: speedup far greater than multiplication (up to ~10^4),\n"
              "because the m+3 overflow/work qubits multiply the simulated state\n"
              "by 2^{m+3} while the emulator never materializes them. The paper\n"
              "stops simulated division at m = 7 for memory; this box stops at\n"
              "m = %ld (4m+4 qubits).\n", m_sim_max);
  return 0;
}
