// Figure 3: weak-scaling QFT — gate-level simulation vs emulation as a
// distributed FFT. The paper runs 28..36 qubits on 1..256 Stampede
// nodes; this box runs the same algorithms over in-process ranks at a
// reduced per-rank size (measured series), and evaluates the paper's own
// performance models Eq. 5 / Eq. 6 at paper scale (modeled series).
//
// Usage: fig3_qft_weak [--local-qubits L] [--max-ranks P] [--full]
//   defaults: L = 18 qubits/rank, P up to 8
//   --full:   L = 21, P up to 16
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/builders.hpp"
#include "fft/dist_fft.hpp"
#include "models/perf_model.hpp"
#include "sim/dist_sv.hpp"

namespace {

using namespace qc;

struct Row {
  qubit_t n;
  int ranks;
  double t_sim;
  double t_emu;
};

Row run_point(qubit_t local_qubits, int ranks) {
  const qubit_t n = local_qubits + bits::log2_floor(static_cast<index_t>(ranks));
  Row row{n, ranks, 0, 0};
  cluster::Cluster cluster(ranks);
  const circuit::Circuit qft_circuit = circuit::qft(n);
  cluster.run([&](cluster::Comm& comm) {
    // Warm-up pass first: touches every page of the state and the
    // scratch/transpose buffers so neither side pays first-fault costs.
    sim::DistStateVector dsv(comm, n);
    dsv.randomize(n);
    dsv.run(qft_circuit, sim::CommPolicy::Specialized);
    fft::dist_fft(comm, dsv.local(), n, fft::Sign::Positive, fft::Norm::Unitary);

    // Simulation: gate-level distributed QFT with our simulator.
    dsv.randomize(n);
    comm.barrier();
    WallTimer t;
    dsv.run(qft_circuit, sim::CommPolicy::Specialized);
    const double t_sim = comm.allreduce_max(t.seconds());

    // Emulation: distributed FFT (natural order, Eq. 4 convention).
    dsv.randomize(n + 1);
    comm.barrier();
    t.reset();
    fft::dist_fft(comm, dsv.local(), n, fft::Sign::Positive, fft::Norm::Unitary);
    const double t_emu = comm.allreduce_max(t.seconds());
    if (comm.rank() == 0) {
      row.t_sim = t_sim;
      row.t_emu = t_emu;
    }
  });
  return row;
}

/// Paper's Fig. 3 speedups, eyeballed: 15x on one node, dip to ~11x at
/// 2-4 nodes, 6-15x overall.
double paper_speedup(int ranks) {
  switch (ranks) {
    case 1: return 15;
    case 2: return 11;
    case 4: return 11;
    case 8: return 9;
    case 16: return 8;
    default: return -1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.has("full");
  const long local_qubits = cli.get_int("local-qubits", full ? 22 : 20);
  const long max_ranks = cli.get_int("max-ranks", full ? 16 : 8);

  bench::print_header("fig3_qft_weak",
                      "Fig. 3 — QFT weak scaling: simulation vs emulation (FFT)");
  std::printf("measured: %ld qubits per rank, ranks = 1..%ld (in-process message-\n"
              "passing substrate; see DESIGN.md for the Stampede substitution)\n\n",
              local_qubits, max_ranks);

  Table measured({"qubits", "ranks", "T_sim [s]", "T_emu(FFT) [s]", "speedup", "paper~"});
  for (int p = 1; p <= max_ranks; p *= 2) {
    const Row r = run_point(static_cast<qubit_t>(local_qubits), p);
    measured.add_row({std::to_string(r.n), std::to_string(r.ranks), sci(r.t_sim),
                      sci(r.t_emu), fixed(r.t_sim / r.t_emu, 1) + "x",
                      paper_speedup(p) > 0 ? fixed(paper_speedup(p), 0) + "x" : "n/a"});
  }
  measured.print("measured (scaled-down) weak scaling");

  // Paper-scale series from the paper's own models (Eqs. 5 and 6).
  const auto series = models::fig3_series(28, 36, models::MachineParams::stampede());
  Table modeled({"qubits", "nodes", "T_QFT Eq.6 [s]", "T_FFT Eq.5 [s]", "speedup"});
  for (const auto& p : series)
    modeled.add_row({std::to_string(p.qubits), std::to_string(p.nodes), sci(p.t_simulate),
                     sci(p.t_emulate), fixed(p.speedup(), 1) + "x"});
  std::printf("\n");
  modeled.print("modeled at paper scale (Stampede parameters, Eqs. 5/6)");
  std::printf("\npaper: 15x on one node (predicted n*FLOPS/B_mem = 14), dipping to\n"
              "~11x at 2-4 nodes where FFT's 3 all-to-alls out-communicate QFT's\n"
              "log2(P) exchanges; 6-15x overall.\n");
  return 0;
}
