// Figure 4: our simulator vs qHiPSTER on the distributed QFT (weak
// scaling). The structural difference reproduced here: our simulator
// applies diagonal gates (the QFT's conditional phase shifts) on global
// qubits without any communication, while the unspecialized simulator
// performs the pairwise chunk exchange for every global-target gate —
// so our advantage grows with the number of distributed qubits. The
// third column runs the PR 4 distributed plan (rank-local fused +
// cache-blocked sweeps with amortized global<->local exchange passes)
// on the same workload.
//
// The fourth comparison is engine-level: a multi-op program (the QFT
// cut into gate segments with measurements and expectation values
// interleaved) run on the "dist" backend with its persistent cluster
// session (one scatter, one gather per run, permutation carried across
// segments) against the per-op scatter/gather baseline
// (RunOptions.dist_resident = false, the pre-session behaviour) — the
// resident-session win, measured rather than asserted.
//
// Usage: fig4_sim_weak [--local-qubits L] [--max-ranks P] [--json FILE]
//                      [--metrics [FILE]] [--full]
//   --json: write machine-readable per-point timings + communication
//           volumes (the CI bench-smoke step uploads this as
//           BENCH_pr5.json alongside PR 3's blocking ablation)
//   --metrics: re-run the largest engine point with tracing on, print
//           the span summary + model-drift report (predicted vs
//           measured sweep/exchange time), and — given a FILE — write
//           the flat metrics JSON there
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuit/builders.hpp"
#include "common/parallel.hpp"
#include "engine/engine.hpp"
#include "obs/report.hpp"
#include "sched/dist_schedule.hpp"
#include "sim/dist_sv.hpp"

namespace {

using namespace qc;

struct Row {
  qubit_t n;
  int ranks;
  double t_ours;
  double t_qhip;
  double t_plan;
  std::uint64_t bytes_ours;
  std::uint64_t bytes_qhip;
  std::uint64_t bytes_plan;
};

Row run_point(qubit_t local_qubits, int ranks) {
  const qubit_t n = local_qubits + bits::log2_floor(static_cast<index_t>(ranks));
  Row row{n, ranks, 0, 0, 0, 0, 0, 0};
  cluster::Cluster cluster(ranks);
  const circuit::Circuit qft_circuit = circuit::qft(n);
  const sched::DistPlan plan = sched::dist_schedule(qft_circuit, local_qubits, {});
  cluster.run([&](cluster::Comm& comm) {
    sim::DistStateVector ours(comm, n);
    ours.randomize(n);
    ours.run(qft_circuit, sim::CommPolicy::Specialized);  // warm-up
    ours.randomize(n);
    comm.barrier();
    WallTimer t;
    ours.run(qft_circuit, sim::CommPolicy::Specialized);
    const double t_ours = comm.allreduce_max(t.seconds());

    sim::DistStateVector qhip(comm, n);
    qhip.randomize(n);
    comm.barrier();
    t.reset();
    qhip.run(qft_circuit, sim::CommPolicy::Exchange);
    const double t_qhip = comm.allreduce_max(t.seconds());

    sim::DistStateVector planned(comm, n);
    planned.randomize(n);
    comm.barrier();
    t.reset();
    sched::run_dist_plan(planned, plan, sim::CommPolicy::Specialized);
    const double t_plan = comm.allreduce_max(t.seconds());

    // Sanity: identical states.
    const double diff = ours.max_abs_diff(qhip);
    const double diff_plan = ours.max_abs_diff(planned);
    if (comm.rank() == 0) {
      if (diff > 1e-10) std::fprintf(stderr, "WARNING: policies disagree (%g)\n", diff);
      if (diff_plan > 1e-10)
        std::fprintf(stderr, "WARNING: dist plan disagrees (%g)\n", diff_plan);
      row.t_ours = t_ours;
      row.t_qhip = t_qhip;
      row.t_plan = t_plan;
      row.bytes_ours = ours.bytes_communicated();
      row.bytes_qhip = qhip.bytes_communicated();
      row.bytes_plan = planned.bytes_communicated();
    }
  });
  return row;
}

/// Fig. 4's speedup, eyeballed: ~1x single node growing toward ~2x at
/// 256 nodes.
double paper_speedup(int ranks) { return ranks == 1 ? 1.0 : (ranks >= 8 ? 1.5 : 1.2); }

// --- resident session vs per-op scatter/gather (engine level) ----------

struct EngineRow {
  qubit_t n;
  int ranks;
  double t_resident;
  double t_perop;
  std::uint64_t host_resident;  ///< Host<->rank staging bytes, resident run.
  std::uint64_t host_perop;     ///< Same, per-op baseline.
};

/// The QFT cut into four gate segments with an ExpectationZ between
/// each and a final measurement: every op boundary is a point where the
/// pre-session backend re-scattered and re-gathered the full state.
engine::Program engine_program(qubit_t n) {
  const circuit::Circuit qc = circuit::qft(n);
  const auto& gates = qc.gates();
  engine::Program p(n);
  const std::size_t seg = (gates.size() + 3) / 4;
  for (std::size_t start = 0; start < gates.size(); start += seg) {
    circuit::Circuit s(n);
    for (std::size_t i = start; i < std::min(gates.size(), start + seg); ++i)
      s.append(gates[i]);
    p.gates(s);
    p.expectation_z(0b11);
  }
  p.measure({0, std::min<qubit_t>(4, n)});
  return p;
}

EngineRow run_engine_point(qubit_t local_qubits, int ranks) {
  const qubit_t n = local_qubits + bits::log2_floor(static_cast<index_t>(ranks));
  const engine::Program p = engine_program(n);
  engine::RunOptions opts;
  opts.backend = "dist";
  opts.dist_ranks = ranks;
  opts.collapse_measurements = false;  // keep the workload purely unitary
  (void)engine::Engine().run(p, opts);  // warm-up
  const engine::Result resident = engine::Engine().run(p, opts);
  opts.dist_resident = false;
  const engine::Result perop = engine::Engine().run(p, opts);
  if (resident.state.max_abs_diff(perop.state) > 1e-10)
    std::fprintf(stderr, "WARNING: resident and per-op runs disagree\n");
  return EngineRow{n,
                   ranks,
                   resident.total_seconds,
                   perop.total_seconds,
                   resident.host_bytes,
                   perop.host_bytes};
}

void write_json(const std::string& path, qubit_t local_qubits, const std::vector<Row>& rows,
                const std::vector<EngineRow>& engine_rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig4_sim_weak\",\n  \"local_qubits\": %u,\n"
               "  \"threads\": %d,\n  \"results\": [\n",
               local_qubits, qc::max_threads());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"qubits\": %u, \"ranks\": %d, \"t_ours\": %.6e,"
                 " \"t_qhip\": %.6e, \"t_plan\": %.6e, \"bytes_ours\": %llu,"
                 " \"bytes_qhip\": %llu, \"bytes_plan\": %llu}%s\n",
                 r.n, r.ranks, r.t_ours, r.t_qhip, r.t_plan,
                 static_cast<unsigned long long>(r.bytes_ours),
                 static_cast<unsigned long long>(r.bytes_qhip),
                 static_cast<unsigned long long>(r.bytes_plan),
                 i + 1 < rows.size() ? "," : "");
  }
  // The resident-session column: the same weak-scaling points run as a
  // multi-op engine program, resident session vs per-op scatter/gather.
  std::fprintf(f, "  ],\n  \"engine_results\": [\n");
  for (std::size_t i = 0; i < engine_rows.size(); ++i) {
    const EngineRow& r = engine_rows[i];
    std::fprintf(f,
                 "    {\"qubits\": %u, \"ranks\": %d, \"t_resident\": %.6e,"
                 " \"t_perop_scatter\": %.6e, \"host_bytes_resident\": %llu,"
                 " \"host_bytes_perop\": %llu}%s\n",
                 r.n, r.ranks, r.t_resident, r.t_perop,
                 static_cast<unsigned long long>(r.host_resident),
                 static_cast<unsigned long long>(r.host_perop),
                 i + 1 < engine_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.has("full");
  const long local_qubits = cli.get_int("local-qubits", full ? 22 : 20);
  const long max_ranks = cli.get_int("max-ranks", full ? 16 : 8);
  const std::string json_path = cli.get_string("json", "");

  bench::print_header("fig4_sim_weak",
                      "Fig. 4 — our simulator vs qHiPSTER-like, distributed QFT");
  std::printf("advantage mechanism: diagonal gates on distributed qubits move zero\n"
              "bytes under our policy, a full chunk exchange under the generic one;\n"
              "the dist plan additionally batches rank-local work into fused sweeps\n\n");

  std::vector<Row> rows;
  Table table({"qubits", "ranks", "T_ours [s]", "T_qhip [s]", "T_plan [s]", "speedup",
               "MB_ours", "MB_qhip", "MB_plan", "paper~"});
  for (int p = 1; p <= max_ranks; p *= 2) {
    const Row r = run_point(static_cast<qubit_t>(local_qubits), p);
    rows.push_back(r);
    table.add_row({std::to_string(r.n), std::to_string(r.ranks), sci(r.t_ours),
                   sci(r.t_qhip), sci(r.t_plan), fixed(r.t_qhip / r.t_ours, 2) + "x",
                   fixed(static_cast<double>(r.bytes_ours) / 1e6, 1),
                   fixed(static_cast<double>(r.bytes_qhip) / 1e6, 1),
                   fixed(static_cast<double>(r.bytes_plan) / 1e6, 1),
                   fixed(paper_speedup(p), 1) + "x"});
  }
  table.print("weak scaling, rank-0 communication volume in MB");
  std::printf("\npaper: the advantage grows with required communication, from ~1x\n"
              "on a single node to ~2x at 256 nodes (Fig. 4). Single-node rows\n"
              "differ only by local kernel specialization.\n");

  std::vector<EngineRow> engine_rows;
  Table etable({"qubits", "ranks", "T_resident [s]", "T_perop [s]", "speedup",
                "MB_host_res", "MB_host_perop"});
  for (int p = 1; p <= max_ranks; p *= 2) {
    const EngineRow r = run_engine_point(static_cast<qubit_t>(local_qubits), p);
    engine_rows.push_back(r);
    etable.add_row({std::to_string(r.n), std::to_string(r.ranks), sci(r.t_resident),
                    sci(r.t_perop), fixed(r.t_perop / r.t_resident, 2) + "x",
                    fixed(static_cast<double>(r.host_resident) / 1e6, 1),
                    fixed(static_cast<double>(r.host_perop) / 1e6, 1)});
  }
  etable.print(
      "resident cluster session vs per-op scatter/gather — multi-op engine\n"
      "program (QFT in 4 gate segments + interleaved ExpectationZ + Measure);\n"
      "the resident run stages the host state exactly twice, the per-op\n"
      "baseline twice per mutating op plus once per read-only op");

  if (cli.has("metrics")) {
    // One traced run of the largest engine point: the per-rank lane
    // breakdown plus the model-validation report (sweep memory time vs
    // models::t_state_pass_seconds, Eq. 6 chunk-exchange time vs
    // models::t_chunk_exchange_seconds).
    const qubit_t n =
        static_cast<qubit_t>(local_qubits) +
        bits::log2_floor(static_cast<index_t>(max_ranks));
    engine::RunOptions opts;
    opts.backend = "dist";
    opts.dist_ranks = static_cast<int>(max_ranks);
    opts.collapse_measurements = false;
    opts.trace = true;
    const engine::Result traced = engine::Engine().run(engine_program(n), opts);
    if (traced.trace_data != nullptr) {
      const obs::TraceData& data = *traced.trace_data;
      obs::summary_table(data).print("traced dist run — span summary");
      obs::model_report_table(obs::model_report(data), data)
          .print("model drift: measured vs predicted (drift > 1: model optimistic)");
      std::printf("load imbalance (max/mean rank exec - 1): %.3f\n",
                  obs::load_imbalance(data));
      const std::string metrics_path = cli.get_string("metrics", "");
      if (!metrics_path.empty()) {
        std::FILE* f = std::fopen(metrics_path.c_str(), "w");
        if (f != nullptr) {
          const std::string json = obs::metrics_json(data);
          std::fwrite(json.data(), 1, json.size(), f);
          std::fclose(f);
          std::printf("wrote %s\n", metrics_path.c_str());
        }
      }
    }
  }

  if (!json_path.empty())
    write_json(json_path, static_cast<qubit_t>(local_qubits), rows, engine_rows);
  return 0;
}
