// Figure 5: single-node QFT across the three simulators (ours,
// qHiPSTER-like, LIQUi|>-like stand-ins — see DESIGN.md).
//
// Usage: fig5_qft_single [--min-qubits N] [--max-qubits N] [--full]
//   defaults: n = 18..21; --full: 18..23
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/builders.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qc;

double time_qft(const sim::Simulator& simulator, qubit_t n) {
  sim::StateVector sv(n);
  Rng rng(n);
  sv.randomize(rng);
  const circuit::Circuit c = circuit::qft(n);
  simulator.run(sv, c);  // warm-up (page faults, code paths)
  // Repeat until >= 0.3 s so small sizes aren't fork/join noise.
  return time_per_rep([&] { simulator.run(sv, c); }, 0.3, 50);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.has("full");
  const long n_min = cli.get_int("min-qubits", 18);
  const long n_max = cli.get_int("max-qubits", full ? 23 : 21);

  bench::print_header("fig5_qft_single",
                      "Fig. 5 — single-node QFT: ours vs qHiPSTER vs LIQUi|>");

  const sim::HpcSimulator ours;
  const sim::QhipsterLikeSimulator qhip;
  const sim::LiquidLikeSimulator liquid;

  Table table({"qubits", "T_ours [s]", "T_qhip [s]", "T_liquid [s]", "vs qhip",
               "vs liquid", "paper(qhip/liquid)~"});
  for (qubit_t n = static_cast<qubit_t>(n_min); n <= static_cast<qubit_t>(n_max); ++n) {
    const double t_ours = time_qft(ours, n);
    const double t_qhip = time_qft(qhip, n);
    const double t_liquid = time_qft(liquid, n);
    table.add_row({std::to_string(n), sci(t_ours), sci(t_qhip), sci(t_liquid),
                   fixed(t_qhip / t_ours, 2) + "x", fixed(t_liquid / t_ours, 1) + "x",
                   "1.2-2x / 10-14x"});
  }
  table.print("time per QFT");
  std::printf("\npaper: our simulator is ~1.2-2x faster than qHiPSTER and ~10-14x\n"
              "faster than LIQUi|> (Fig. 5). Mechanisms here: diagonal (CR) gates\n"
              "touch a quarter of the state in one in-place pass instead of a\n"
              "full generic read+write sweep; LIQUi|>-like additionally runs\n"
              "single-threaded (%d threads available).\n",
              max_threads());
  return 0;
}
