// Figure 6: single-node entangling operation (H on qubit 0, then a CNOT
// chain conditioned on it) across the three simulators.
//
// Usage: fig6_entangle [--min-qubits N] [--max-qubits N] [--full]
//   defaults: n = 15..22; --full: 15..24
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/builders.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qc;

double time_entangle(const sim::Simulator& simulator, qubit_t n) {
  sim::StateVector sv(n);
  const circuit::Circuit c = circuit::entangle(n);
  simulator.run(sv, c);  // warm-up
  // Repeat until >= 0.3 s: a single entangle pass is microseconds at
  // small n, far below OpenMP fork/join noise.
  return time_per_rep([&] { simulator.run(sv, c); }, 0.3, 1000);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.has("full");
  const long n_min = cli.get_int("min-qubits", 15);
  const long n_max = cli.get_int("max-qubits", full ? 24 : 22);

  bench::print_header("fig6_entangle",
                      "Fig. 6 — entangling operation: ours vs qHiPSTER vs LIQUi|>");

  const sim::HpcSimulator ours;
  const sim::QhipsterLikeSimulator qhip;
  const sim::LiquidLikeSimulator liquid;

  Table table({"qubits", "T_ours [s]", "T_qhip [s]", "T_liquid [s]", "vs qhip",
               "vs liquid", "paper(qhip/liquid)~"});
  for (qubit_t n = static_cast<qubit_t>(n_min); n <= static_cast<qubit_t>(n_max); ++n) {
    const double t_ours = time_entangle(ours, n);
    const double t_qhip = time_entangle(qhip, n);
    const double t_liquid = time_entangle(liquid, n);
    table.add_row({std::to_string(n), sci(t_ours), sci(t_qhip), sci(t_liquid),
                   fixed(t_qhip / t_ours, 2) + "x", fixed(t_liquid / t_ours, 1) + "x",
                   "~2x / ~6x"});
  }
  table.print("time per entangling operation (H + CNOT chain)");
  std::printf("\npaper: ~2x over qHiPSTER and ~6x over LIQUi|> (Fig. 6). Mechanism\n"
              "here: the CNOT chain is control-folded (half the pairs, zero\n"
              "flops) instead of a full masked 2x2 sweep per gate.\n");
  return 0;
}
