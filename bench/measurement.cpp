// §3.4 measurement emulation: the paper argues (without a figure) that
// computing expectation values from the full amplitude distribution in
// one pass replaces the many circuit repetitions a quantum computer (or
// a per-shot simulator) needs. This bench quantifies the claim: exact
// one-pass expectation vs shot-sampled estimates at increasing shot
// counts, with the statistical error alongside.
//
// Usage: measurement [--qubits N] [--full]
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/builders.hpp"
#include "common/rng.hpp"
#include "emu/observables.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace qc;
  const Cli cli(argc, argv);
  const qubit_t n = static_cast<qubit_t>(cli.get_int("qubits", cli.has("full") ? 24 : 20));

  bench::print_header("measurement",
                      "§3.4 — measurement statistics: exact one-pass vs sampling");

  sim::StateVector sv(n);
  sim::HpcSimulator().run(sv, circuit::tfim_trotter_step(n, 0.3));
  const index_t mask = bits::low_mask(n / 2);  // Z-string on the low half

  const double t_exact = time_once([&] {
    volatile double sink = emu::expectation_z_string(sv, mask);
    (void)sink;
  });
  const double exact = emu::expectation_z_string(sv, mask);

  Table table({"shots", "estimate", "abs error", "T_sample [s]", "T_exact [s]", "ratio"});
  Rng rng(1);
  for (const std::size_t shots : {100ul, 1000ul, 10000ul, 100000ul, 1000000ul}) {
    double est = 0;
    const double t_sample =
        time_once([&] { est = emu::sampled_z_string(sv, mask, shots, rng); });
    table.add_row({std::to_string(shots), fixed(est, 5), sci(std::abs(est - exact)),
                   sci(t_sample), sci(t_exact), fixed(t_sample / t_exact, 1) + "x"});
  }
  table.print("<Z-string> on " + std::to_string(n) + " qubits (exact = " +
              fixed(exact, 6) + ")");
  std::printf("\npaper: \"the time savings of emulation compared to simulation are\n"
              "just the number of repetitions of the circuit\" — here the exact\n"
              "pass costs one distribution sweep while the sampled error shrinks\n"
              "only as 1/sqrt(shots). A hardware run would additionally pay the\n"
              "full circuit per shot.\n");
  return 0;
}
