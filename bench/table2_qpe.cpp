// Table 2: quantum phase estimation of a 1-D transverse-field Ising
// Trotter step (G = 4n - 3 gates). Measures the four primitive timings
// the paper reports — T_applyU (gate-level), T_construct (dense U),
// T_zgemm (one squaring), T_zgeev (one eigendecomposition) — and derives
// the crossover precision at which each emulation strategy beats
// simulation, exactly as the paper's lower panel does.
//
// Usage: table2_qpe [--min-qubits N] [--max-qubits N] [--full]
//   defaults: n = 6..9 measured, 10..14 modeled by complexity scaling
//   --full:   n = 6..11 measured
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "circuit/builders.hpp"
#include "common/rng.hpp"
#include "emu/qpe.hpp"
#include "linalg/eig.hpp"
#include "linalg/gemm.hpp"
#include "models/perf_model.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qc;

struct PaperRow {
  double apply_u, construct, gemm, eig;
  unsigned cross_rs, cross_ed;
};

/// Paper Table 2, n = 8..14.
const PaperRow kPaper[] = {
    {1.44e-4, 7.60e-4, 8.39e-4, 9.60e-2, 6, 10},
    {1.60e-4, 3.46e-3, 6.71e-3, 5.27e-1, 9, 12},
    {1.80e-4, 1.55e-2, 5.37e-2, 1.70, 12, 14},
    {2.11e-4, 6.88e-2, 4.29e-1, 6.72, 15, 15},
    {2.44e-4, 3.02e-1, 3.44, 3.22e1, 18, 18},
    {3.46e-4, 1.32, 2.75e1, 1.80e2, 21, 19},
    {4.92e-4, 5.69, 2.20e2, 9.01e2, 24, 21},
};

const PaperRow* paper_row(qubit_t n) {
  return (n >= 8 && n <= 14) ? &kPaper[n - 8] : nullptr;
}

models::QpeCosts measure(qubit_t n) {
  return emu::measure_qpe_costs(circuit::tfim_trotter_step(n, 0.1));
}

/// Extrapolates measured costs one qubit up using the §3.3 complexity
/// exponents (G = 4n - 3 for the TFIM Trotter step).
models::QpeCosts scale_up(const models::QpeCosts& c, qubit_t n_from) {
  return emu::scale_qpe_costs(c, n_from, n_from + 1, 4 * n_from - 3, 4 * (n_from + 1) - 3);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.has("full");
  const qubit_t n_min = static_cast<qubit_t>(cli.get_int("min-qubits", 6));
  const qubit_t n_meas_max = static_cast<qubit_t>(cli.get_int("max-qubits", full ? 11 : 9));
  const qubit_t n_model_max = 14;

  bench::print_header("table2_qpe",
                      "Table 2 — QPE on a TFIM Trotter step: timings & crossovers");
  std::printf("G = 4n-3 gates; measured rows up to n = %u, then modeled by the\n"
              "paper's complexity exponents (labelled). paper columns in ().\n\n",
              n_meas_max);

  Table table({"n", "G", "T_applyU [s]", "T_construct [s]", "T_gemm [s]", "T_eig [s]",
               "cross RS", "cross ED", "kind"});
  models::QpeCosts last;
  for (qubit_t n = n_min; n <= n_model_max; ++n) {
    models::QpeCosts costs;
    const char* kind;
    if (n <= n_meas_max) {
      costs = measure(n);
      kind = "measured";
    } else {
      costs = scale_up(last, n - 1);
      kind = "modeled";
    }
    last = costs;
    const unsigned rs = models::crossover_bits_repeated_squaring(costs);
    const unsigned ed = models::crossover_bits_eigendecomposition(costs);
    const PaperRow* p = paper_row(n);
    auto cross_cell = [&](unsigned mine, unsigned paper) {
      return std::to_string(mine) + (p ? " (" + std::to_string(paper) + ")" : "");
    };
    table.add_row({std::to_string(n), std::to_string(4 * n - 3),
                   sci(costs.t_apply_u) + (p ? " (" + sci(p->apply_u, 1) + ")" : ""),
                   sci(costs.t_construct) + (p ? " (" + sci(p->construct, 1) + ")" : ""),
                   sci(costs.t_gemm) + (p ? " (" + sci(p->gemm, 1) + ")" : ""),
                   sci(costs.t_eig) + (p ? " (" + sci(p->eig, 1) + ")" : ""),
                   cross_cell(rs, p ? p->cross_rs : 0), cross_cell(ed, p ? p->cross_ed : 0),
                   kind});
  }
  table.print("QPE primitive timings and crossover precision (bits)");

  // Verification note: the crossover solver reproduces the paper's lower
  // panel exactly when fed the paper's own timings (tested in
  // tests/test_models.cpp, Table2CrossoversReproduced).
  std::printf("\npaper: crossovers 6,9,12,15,18,21,24 bits (repeated squaring) and\n"
              "10,12,14,15,18,19,21 bits (eigendecomposition) for n = 8..14; the\n"
              "small-n values sit well below the asymptotic b >= 2n rule because\n"
              "constant factors dominate (paper §4.4). Shapes here follow the\n"
              "same pattern; absolute values shift with this machine's GEMM/eig\n"
              "rates relative to MKL on the paper's Xeon.\n");
  return 0;
}
