// Arithmetic on superpositions: the paper's §3.1 worked example.
//
// Prepares a superposition of all inputs (a, b), then computes
// c = a * b two ways:
//   * simulation: the shift-and-add Cuccaro network, gate by gate
//     (including the carry work qubit);
//   * emulation: one amplitude permutation.
// Prints both timings and verifies the states agree — then does the
// same for a transcendental function (sin), which has no practical
// reversible circuit at all.
//
// Run: ./arithmetic_demo [--m 6]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "circuit/builders.hpp"
#include "emu/emulator.hpp"
#include "revcirc/arith.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace qc;
  const Cli cli(argc, argv);
  const qubit_t m = static_cast<qubit_t>(cli.get_int("m", 6));

  std::printf("multiplying two %u-bit registers on a superposition of all %llu\n"
              "input pairs\n\n",
              m, static_cast<unsigned long long>(dim(2 * m)));

  // Shared preparation: superpose a and b; c and the work qubit are |0>.
  const qubit_t total = 3 * m + 1;
  circuit::Circuit prep(total);
  for (qubit_t q = 0; q < 2 * m; ++q) prep.h(q);
  const sim::HpcSimulator simulator;

  // --- simulation ------------------------------------------------------
  sim::StateVector sim_sv(total);
  simulator.run(sim_sv, prep);
  const circuit::Circuit network = revcirc::multiplier_circuit(m);
  WallTimer t;
  simulator.run(sim_sv, network);
  const double t_sim = t.seconds();
  std::printf("simulation: %zu-gate reversible network on %u qubits: %.4f s\n",
              network.size(), total, t_sim);

  // --- emulation ---------------------------------------------------------
  sim::StateVector emu_sv(total);
  simulator.run(emu_sv, prep);
  emu::Emulator emulator(emu_sv);
  t.reset();
  emulator.multiply({0, m}, {m, m}, {2 * m, m});
  const double t_emu = t.seconds();
  std::printf("emulation:  one permutation of the state vector:    %.4f s\n", t_emu);
  std::printf("speedup: %.0fx    max |state difference|: %.2e\n\n", t_sim / t_emu,
              sim_sv.max_abs_diff(emu_sv));

  // --- a function with no practical reversible circuit -------------------
  // out += round(sin(x) * scale): the paper's point about trigonometric
  // functions — a reversible implementation needs a series expansion
  // with m work qubits per intermediate; the emulator needs one pass.
  sim::StateVector fsv(2 * m);
  {
    circuit::Circuit h(2 * m);
    for (qubit_t q = 0; q < m; ++q) h.h(q);
    simulator.run(fsv, h);
  }
  emu::Emulator femu(fsv);
  const double scale = static_cast<double>(dim(m) - 1);
  t.reset();
  femu.apply_function({0, m}, {m, m}, [&](index_t x) {
    const double s = std::sin(2.0 * std::numbers::pi * static_cast<double>(x) /
                              static_cast<double>(dim(m)));
    return static_cast<index_t>(std::llround((s + 1.0) * 0.5 * scale));
  });
  std::printf("emulated out += sin(x) lookup on all %llu basis states: %.4f s\n",
              static_cast<unsigned long long>(dim(m)), t.seconds());
  std::printf("(a gate-level implementation would need a reversible series\n"
              "expansion with ~m work qubits per intermediate result — an\n"
              "exponential simulation cost the emulator never pays)\n");
  return 0;
}
