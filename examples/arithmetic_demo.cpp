// Arithmetic on superpositions: the paper's §3.1 worked example, as one
// engine::Program run on two backends.
//
// The program superposes inputs (a, b) and computes c += a * b. Run on
// "hpc", the engine lowers the multiply op to the Cuccaro shift-and-add
// network (appending the carry work qubit itself) and simulates it gate
// by gate; run on "auto", the same op is one amplitude permutation.
// Prints both per-op timings and verifies the states agree — then does
// the same for a transcendental function (sin), which has no practical
// reversible circuit at all.
//
// Run: ./arithmetic_demo [--m 6]
#include <cmath>
#include <cstdio>
#include <numbers>

#include "common/cli.hpp"
#include "engine/engine.hpp"

namespace {

/// Seconds the trace recorded for the op at `index`.
double op_seconds(const qc::engine::Result& r, std::size_t index) {
  return index < r.trace.size() ? r.trace[index].seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qc;
  const Cli cli(argc, argv);
  const qubit_t m = static_cast<qubit_t>(cli.get_int("m", 6));

  std::printf("multiplying two %u-bit registers on a superposition of all %llu\n"
              "input pairs\n\n",
              m, static_cast<unsigned long long>(dim(2 * m)));

  engine::Program program(3 * m);
  for (qubit_t q = 0; q < 2 * m; ++q) program.h(q);
  program.multiply({0, m}, {m, m}, {2 * m, m});

  const engine::Engine eng;
  engine::RunOptions opts;

  // --- simulation (the engine lowers multiply to the Cuccaro network) --
  opts.backend = "hpc";
  const engine::Result sim_result = eng.run(program, opts);
  const double t_sim = op_seconds(sim_result, 1);
  std::printf("simulation: reversible network on %u qubits (incl. carry): %.4f s\n",
              sim_result.run_qubits, t_sim);

  // --- emulation -------------------------------------------------------
  opts.backend = "auto";
  const engine::Result emu_result = eng.run(program, opts);
  const double t_emu = op_seconds(emu_result, 1);
  std::printf("emulation:  one permutation of the state vector:          %.4f s\n", t_emu);
  std::printf("speedup: %.0fx    max |state difference|: %.2e\n\n",
              t_emu > 0 ? t_sim / t_emu : 0.0,
              sim_result.state.max_abs_diff(emu_result.state));

  // --- a function with no practical reversible circuit -----------------
  // out += round(sin(x) * scale): the paper's point about trigonometric
  // functions — a reversible implementation needs a series expansion
  // with m work qubits per intermediate; the emulator needs one pass.
  const double scale = static_cast<double>(dim(m) - 1);
  engine::Program fprog(2 * m);
  for (qubit_t q = 0; q < m; ++q) fprog.h(q);
  fprog.apply_function({0, m}, {m, m}, [m, scale](index_t x) {
    const double s = std::sin(2.0 * std::numbers::pi * static_cast<double>(x) /
                              static_cast<double>(dim(m)));
    return static_cast<index_t>(std::llround((s + 1.0) * 0.5 * scale));
  });
  const engine::Result fres = eng.run(fprog, opts);
  std::printf("emulated out += sin(x) lookup on all %llu basis states: %.4f s\n",
              static_cast<unsigned long long>(dim(m)), op_seconds(fres, 1));
  std::printf("(a gate-level implementation would need a reversible series\n"
              "expansion with ~m work qubits per intermediate result — an\n"
              "exponential simulation cost the emulator never pays)\n");
  return 0;
}
