// Grover search with an emulated oracle.
//
// The oracle — "is x the marked item?" — is a classical predicate. A
// gate-level simulator would compile it into a reversible network with
// work qubits; the emulator applies the phase flip directly per basis
// state (the §3.1 shortcut applied to a predicate instead of
// arithmetic). The diffusion operator runs as ordinary gates.
//
// Run: ./grover [--qubits 12] [--marked 1234]
#include <cmath>
#include <cstdio>
#include <numbers>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "circuit/builders.hpp"
#include "emu/emulator.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace qc;
  const Cli cli(argc, argv);
  const qubit_t n = static_cast<qubit_t>(cli.get_int("qubits", 12));
  const index_t marked =
      static_cast<index_t>(cli.get_int("marked", 1234)) % dim(n);

  std::printf("Grover search over %llu items for marked item %llu\n",
              static_cast<unsigned long long>(dim(n)),
              static_cast<unsigned long long>(marked));

  sim::StateVector sv(n);
  const sim::HpcSimulator simulator;
  {
    circuit::Circuit h(n);
    for (qubit_t q = 0; q < n; ++q) h.h(q);
    simulator.run(sv, h);
  }

  // Diffusion operator: H^n X^n (C^{n-1}Z) X^n H^n.
  circuit::Circuit diffusion(n);
  for (qubit_t q = 0; q < n; ++q) diffusion.h(q);
  for (qubit_t q = 0; q < n; ++q) diffusion.x(q);
  {
    circuit::Gate cz = circuit::make_gate(circuit::GateKind::Z, n - 1);
    for (qubit_t q = 0; q + 1 < n; ++q) cz.controls.push_back(q);
    diffusion.append(cz);
  }
  for (qubit_t q = 0; q < n; ++q) diffusion.x(q);
  for (qubit_t q = 0; q < n; ++q) diffusion.h(q);

  const int iterations = static_cast<int>(
      std::round(std::numbers::pi / 4.0 * std::sqrt(static_cast<double>(dim(n)))));
  std::printf("running %d Grover iterations (pi/4 sqrt(N))\n", iterations);

  emu::Emulator emu(sv);
  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    // Emulated oracle (§3.1 applied to a predicate): one in-place phase
    // sweep; a simulator would pay an X-conjugated multi-controlled-Z
    // network with work qubits here.
    emu.apply_phase_oracle([marked](index_t i) { return i == marked; });
    simulator.run(sv, diffusion);
  }
  const double seconds = timer.seconds();

  // Read out the answer from the exact distribution (§3.4 shortcut).
  index_t best = 0;
  double best_p = 0;
  const auto dist = sv.register_distribution(0, n);
  for (index_t i = 0; i < dist.size(); ++i)
    if (dist[i] > best_p) {
      best_p = dist[i];
      best = i;
    }
  std::printf("most likely outcome: %llu with probability %.4f (in %.3f s)\n",
              static_cast<unsigned long long>(best), best_p, seconds);
  std::printf("%s\n", best == marked ? "FOUND the marked item" : "FAILED");
  return best == marked ? 0 : 1;
}
