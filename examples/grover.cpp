// Grover search with an emulated oracle, as one engine::Program.
//
// The oracle — "is x the marked item?" — is a classical predicate,
// expressed as a first-class phase_oracle op. On the default "auto"
// backend it runs as one in-place phase sweep per iteration (§3.1
// applied to a predicate); the diffusion operator is an ordinary gate
// segment. Pass --backend hpc (or fused, qhipster-like, liquid-like)
// and the engine lowers the same program to gates — the oracle becomes
// the X-conjugated multi-controlled-Z network a simulator must pay for.
//
// Run: ./grover [--qubits 12] [--marked 1234] [--backend auto]
//               [--precision f64|f32]   — f32 runs gate segments on the
//               float kernels; Grover tolerates the drift easily (the
//               readout only needs the marked item's peak to survive)
#include <cmath>
#include <cstdio>
#include <numbers>

#include "common/cli.hpp"
#include "engine/engine.hpp"

int main(int argc, char** argv) {
  using namespace qc;
  const Cli cli(argc, argv);
  const qubit_t n = static_cast<qubit_t>(cli.get_int("qubits", 12));
  const index_t marked =
      static_cast<index_t>(cli.get_int("marked", 1234)) % dim(n);

  std::printf("Grover search over %llu items for marked item %llu\n",
              static_cast<unsigned long long>(dim(n)),
              static_cast<unsigned long long>(marked));

  // Diffusion operator: H^n X^n (C^{n-1}Z) X^n H^n.
  circuit::Circuit diffusion(n);
  for (qubit_t q = 0; q < n; ++q) diffusion.h(q);
  for (qubit_t q = 0; q < n; ++q) diffusion.x(q);
  {
    circuit::Gate cz = circuit::make_gate(circuit::GateKind::Z, n - 1);
    for (qubit_t q = 0; q + 1 < n; ++q) cz.controls.push_back(q);
    diffusion.append(cz);
  }
  for (qubit_t q = 0; q < n; ++q) diffusion.x(q);
  for (qubit_t q = 0; q < n; ++q) diffusion.h(q);

  const int iterations = static_cast<int>(
      std::round(std::numbers::pi / 4.0 * std::sqrt(static_cast<double>(dim(n)))));
  std::printf("running %d Grover iterations (pi/4 sqrt(N))\n", iterations);

  engine::Program program(n);
  for (qubit_t q = 0; q < n; ++q) program.h(q);
  for (int it = 0; it < iterations; ++it) {
    program.phase_oracle([marked](index_t i) { return i == marked; });
    program.gates(diffusion);
  }

  engine::RunOptions opts;
  opts.backend = cli.get_string("backend", "auto");
  opts.precision =
      cli.get_string("precision", "f64") == "f32" ? Precision::kF32 : Precision::kF64;
  const engine::Result result = engine::Engine().run(program, opts);

  // Read out the answer from the exact distribution (§3.4 shortcut).
  index_t best = 0;
  double best_p = 0;
  const auto dist = result.state.register_distribution(0, n);
  for (index_t i = 0; i < dist.size(); ++i)
    if (dist[i] > best_p) {
      best_p = dist[i];
      best = i;
    }
  std::printf("most likely outcome: %llu with probability %.4f "
              "(backend %s, %.3f s)\n",
              static_cast<unsigned long long>(best), best_p, result.backend.c_str(),
              result.total_seconds);
  std::printf("%s\n", best == marked ? "FOUND the marked item" : "FAILED");
  return best == marked ? 0 : 1;
}
