// Quantum phase estimation of a transverse-field Ising Trotter step —
// the exact workload of the paper's Table 2.
//
// Runs all three strategies on the same eigenstate input:
//   * gate-level simulation (controlled-U applied 2^b - 1 times),
//   * emulation by repeated squaring of the dense unitary (§3.3),
//   * emulation by eigendecomposition (§3.3),
// prints the agreeing outcome distributions, the timings, and the
// crossover heuristic's verdict.
//
// Run: ./qpe_ising [--qubits 5] [--bits 7] [--dt 0.1]
#include <cstdio>

#include "circuit/builders.hpp"
#include "common/cli.hpp"
#include "emu/qpe.hpp"
#include "engine/engine.hpp"
#include "models/perf_model.hpp"

int main(int argc, char** argv) {
  using namespace qc;
  const Cli cli(argc, argv);
  const qubit_t n = static_cast<qubit_t>(cli.get_int("qubits", 5));
  const unsigned b = static_cast<unsigned>(cli.get_int("bits", 7));
  const double dt = cli.get_double("dt", 0.1);

  const circuit::Circuit u = circuit::tfim_trotter_step(n, dt);
  std::printf("QPE of exp(-i H dt) for the 1-D TFIM, n = %u qubits, G = %zu gates,\n"
              "b = %u bits of precision\n\n",
              n, u.size(), b);

  // Prepare an eigenvector of U (via our eigensolver) so all three
  // strategies target the same sharp phase.
  const linalg::Matrix dense = emu::build_unitary(u);
  const linalg::EigResult eig = linalg::eig(dense);
  sim::StateVector input(n);
  for (index_t i = 0; i < dim(n); ++i) input[i] = eig.vectors(i, 1);
  const double true_phase = std::arg(eig.values[1]);
  std::printf("target eigenphase (from eigensolver): %.6f rad\n\n", true_phase);

  for (const auto strategy :
       {emu::QpeStrategy::SimulateCircuit, emu::QpeStrategy::RepeatedSquaring,
        emu::QpeStrategy::Eigendecomposition}) {
    emu::QpeOptions opt;
    opt.bits = b;
    opt.strategy = strategy;
    const emu::QpeResult r = emu::phase_estimation(u, input, opt);
    std::printf("%-28s estimate %.6f rad (outcome %llu/%llu), P = %.4f\n",
                r.strategy_used.c_str(), r.phase_estimate,
                static_cast<unsigned long long>(r.most_likely),
                static_cast<unsigned long long>(index_t{1} << b),
                r.distribution[r.most_likely]);
    if (r.seconds_simulate > 0) std::printf("    t_simulate = %.3f s\n", r.seconds_simulate);
    if (r.seconds_construct > 0)
      std::printf("    t_construct = %.3f s\n", r.seconds_construct);
    if (r.seconds_power > 0) std::printf("    t_power = %.3f s\n", r.seconds_power);
    if (r.seconds_eig > 0) std::printf("    t_eig = %.3f s\n", r.seconds_eig);
  }

  // The paper's asymptotic crossover guidance (§3.3).
  std::printf("\ncrossover rules of thumb: emulation wins when b >= 2n = %u (GEMM),\n"
              "b > 1.8n = %.1f (Strassen), b > n = %u (coherent QPE + eig).\n",
              2 * n, models::asymptotic_crossover_strassen(n), n);

  // --- bonus: Trotter evolution through the engine front door ----------
  // The same Trotter step as an engine Program — gate segments
  // interleaved with exact one-pass <Z_i Z_{i+1}> readouts (§3.4), with
  // the per-op wall-clock trace the perf models calibrate against.
  engine::Program evolution(n);
  for (int step = 0; step < 4; ++step) {
    evolution.gates(u);
    evolution.expectation_z(0b11);  // nearest-neighbor ZZ correlator
  }
  const engine::Result evolved = engine::Engine().run(evolution);
  std::printf("\n4 Trotter steps via engine::Engine (auto backend):\n");
  for (std::size_t i = 0; i < evolved.expectations.size(); ++i)
    std::printf("  after step %zu: <Z0 Z1> = %+.4f  (%.6f s/step)\n", i + 1,
                evolved.expectations[i], evolved.trace[2 * i].seconds);
  return 0;
}
