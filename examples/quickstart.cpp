// Quickstart: the 60-second tour of the library, through its front door.
//
//  1. build one engine::Program mixing gate segments with high-level ops
//     (arithmetic, QFT, measurement — the paper's §3 shortcuts);
//  2. run it on the "auto" backend: high-level ops execute at their
//     mathematical description, gate segments on the fused simulator;
//  3. run the *same program* on a gate-level backend (default "hpc"):
//     the engine lowers every shortcut to a reversible network first —
//     and the states agree to 1e-12 (the paper's core contract);
//  4. read the per-op wall-clock trace that makes the emulation-vs-
//     simulation gap visible.
//
// Run: ./quickstart
//      ./quickstart --backend dist --ranks 4 --trace trace.json
//
// Options:
//   --backend NAME   gate-level comparison backend (default hpc)
//   --ranks N        rank count for --backend dist (default 4)
//   --precision P    amplitude precision of the gate-level run: f64
//                    (default) or f32 — fp32 runs the float kernels and
//                    loosens the agreement check to the 1e-6 drift bound
//   --trace FILE     write a Chrome trace_event JSON of the gate-level
//                    run (open in about:tracing / Perfetto) and print
//                    the span summary + model-drift report
//   --metrics FILE   write the flat metrics JSON of the same run
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "engine/engine.hpp"
#include "obs/report.hpp"

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qc;
  const Cli cli(argc, argv);
  const std::string backend = cli.get_string("backend", "hpc");
  const std::string precision = cli.get_string("precision", "f64");
  const std::string trace_file = cli.get_string("trace", "");
  const std::string metrics_file = cli.get_string("metrics", "");
  if (precision != "f64" && precision != "f32") {
    std::printf("unknown --precision '%s' (f64 or f32)\n", precision.c_str());
    return 1;
  }
  // fp32 kernels are exact to ~1e-7 per gate; the shared drift bound is
  // the RunOptions::precision contract (see tests/test_precision.cpp).
  const double tol = precision == "f32" ? 1e-6 : 1e-12;

  // --- 1. one program, gate-level and high-level ops mixed -------------
  const qubit_t n = 6;
  engine::Program program(n);
  program.h(0).cnot(0, 1)                      // gate segment: Bell pair
      .multiply({0, 2}, {2, 2}, {4, 2})        // §3.1: c += a*b, one permutation
      .qft({0, 4})                             // §3.2: QFT as an FFT
      .inverse_qft({0, 4})
      .expectation_z(0b11)                     // §3.4: exact <Z0 Z1>, one pass
      .measure({0, 2});                        // sampled from the exact distribution
  std::printf("%s\n", program.to_string().c_str());

  // --- 2. run on the auto backend (emulation shortcuts) ----------------
  engine::RunOptions opts;
  opts.backend = "auto";
  opts.seed = 7;
  const engine::Engine eng;
  const engine::Result emulated = eng.run(program, opts);
  std::printf("auto backend: <Z0 Z1> = %+.3f, measured a = %llu\n",
              emulated.expectations[0],
              static_cast<unsigned long long>(emulated.measurements[0]));

  // --- 3. same program, gate-level backend -----------------------------
  // The engine lowers multiply to the Cuccaro shift-and-add network
  // (plus a carry ancilla it appends and projects away) and the QFTs to
  // the O(n^2) gate cascade. Same seed, same outcomes, same state.
  opts.backend = backend;
  opts.precision = precision == "f32" ? Precision::kF32 : Precision::kF64;
  opts.dist_ranks = static_cast<int>(cli.get_int("ranks", 4));
  opts.trace = !trace_file.empty() || !metrics_file.empty();
  const engine::Result simulated = eng.run(program, opts);
  std::printf("%s backend:  <Z0 Z1> = %+.3f, measured a = %llu "
              "(ran on %u qubits incl. ancillas)\n",
              backend.c_str(), simulated.expectations[0],
              static_cast<unsigned long long>(simulated.measurements[0]),
              simulated.run_qubits);
  const double diff = emulated.state.max_abs_diff(simulated.state);
  std::printf("max |state difference| = %.2e\n\n", diff);

  // --- 4. the per-op trace ---------------------------------------------
  std::printf("per-op trace (auto backend):\n");
  for (const engine::OpTrace& t : emulated.trace)
    std::printf("  %-28s %9.6f s\n", t.op.c_str(), t.seconds);

  // --- 5. structured trace exports (--trace / --metrics) ----------------
  if (simulated.trace_data != nullptr) {
    const obs::TraceData& data = *simulated.trace_data;
    if (!trace_file.empty()) {
      if (!write_file(trace_file, obs::chrome_trace_json(data))) {
        std::printf("cannot write %s\n", trace_file.c_str());
        return 1;
      }
      std::printf("\nwrote Chrome trace (%zu spans) to %s\n", data.spans.size(),
                  trace_file.c_str());
      std::printf("\nspan summary (%s backend):\n%s", backend.c_str(),
                  obs::summary_table(data).to_string().c_str());
      const auto rows = obs::model_report(data);
      if (!rows.empty())
        std::printf("\nmodel drift (measured vs predicted):\n%s",
                    obs::model_report_table(rows).to_string().c_str());
    }
    if (!metrics_file.empty()) {
      if (!write_file(metrics_file, obs::metrics_json(data))) {
        std::printf("cannot write %s\n", metrics_file.c_str());
        return 1;
      }
      std::printf("wrote metrics JSON to %s\n", metrics_file.c_str());
    }
  }

  std::printf("\nregistered backends:");
  for (const std::string& name : engine::backend_names())
    std::printf(" %s", name.c_str());
  std::printf("\n");

  if (diff > tol || emulated.measurements[0] != simulated.measurements[0]) {
    std::printf("MISMATCH between auto and %s backends\n", backend.c_str());
    return 1;
  }
  std::printf("ok: auto and %s (%s) agree to %.0e\n", backend.c_str(), precision.c_str(),
              tol);
  return 0;
}
