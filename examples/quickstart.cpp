// Quickstart: the 60-second tour of the library.
//
//  1. build a circuit and simulate it gate by gate;
//  2. measure, collapse, and read distributions;
//  3. do the same work through the emulator's shortcuts and check that
//     the results agree (the paper's core contract).
//
// Run: ./quickstart
#include <cstdio>

#include "circuit/builders.hpp"
#include "emu/emulator.hpp"
#include "emu/observables.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace qc;

  // --- 1. gate-level simulation ---------------------------------------
  const qubit_t n = 4;
  sim::StateVector sv(n);

  circuit::Circuit bell(n);
  bell.h(0).cnot(0, 1);  // Bell pair on qubits 0, 1

  const sim::HpcSimulator simulator;
  simulator.run(sv, bell);

  std::printf("Bell state amplitudes (|q3 q2 q1 q0>):\n");
  for (index_t i = 0; i < sv.size(); ++i)
    if (std::abs(sv[i]) > 1e-12)
      std::printf("  |%llu> : %+.4f %+.4fi\n", static_cast<unsigned long long>(i),
                  sv[i].real(), sv[i].imag());

  // Correlations of the pair: <Z0 Z1> = 1, <Z0> = 0.
  std::printf("<Z0 Z1> = %+.3f   <Z0> = %+.3f\n",
              emu::expectation_z_string(sv, 0b11), emu::expectation_z_string(sv, 0b01));

  // --- 2. measurement --------------------------------------------------
  Rng rng(7);
  const int outcome = sv.measure_and_collapse(0, rng);
  std::printf("measured qubit 0 -> %d; qubit 1 now gives 1 with p = %.3f\n", outcome,
              sv.probability_of_one(1));

  // --- 3. emulation shortcuts ------------------------------------------
  // QFT as an FFT (paper §3.2) vs the O(n^2)-gate circuit.
  sim::StateVector a(n), b(n);
  Rng seed(42);
  a.randomize(seed);
  std::copy(a.amplitudes().begin(), a.amplitudes().end(), b.amplitudes().begin());

  simulator.run(a, circuit::qft(n));  // gate-level
  emu::Emulator emulator(b);
  emulator.qft();  // one FFT

  std::printf("QFT circuit vs emulated FFT: max |diff| = %.2e\n", a.max_abs_diff(b));

  // Arithmetic as a permutation (paper §3.1): c += a*b on 2-bit registers.
  sim::StateVector arith(6);
  arith.set_basis(0b10 | (0b11 << 2));  // a = 2, b = 3, c = 0
  emu::Emulator em2(arith);
  em2.multiply({0, 2}, {2, 2}, {4, 2});
  for (index_t i = 0; i < arith.size(); ++i)
    if (std::abs(arith[i]) > 1e-12)
      std::printf("after multiply: basis %llu (c = a*b mod 4 = %llu)\n",
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(bits::field(i, 4, 2)));
  return 0;
}
