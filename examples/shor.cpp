// Shor's algorithm, emulated — the paper's flagship use case (§3.1
// names Shor as the most famous application of classical functions on a
// quantum computer).
//
// The quantum order-finding core runs on the emulator:
//   * modular exponentiation |e>|1> -> |e>|a^e mod N> as ONE amplitude
//     permutation (no reversible modular-arithmetic network, no work
//     qubits);
//   * the inverse QFT on the exponent register as a batched FFT;
//   * measurement statistics from the exact distribution.
// Classical pre/post-processing (gcd, continued fractions) completes the
// factorization.
//
// Run: ./shor [--N 15] [--a 7] [--seed 1]
#include <cstdio>
#include <numeric>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "emu/emulator.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qc;

index_t pow_mod(index_t base, index_t e, index_t mod) {
  index_t r = 1 % mod;
  base %= mod;
  while (e > 0) {
    if (e & 1) r = r * base % mod;
    base = base * base % mod;
    e >>= 1;
  }
  return r;
}

/// Denominator of the best continued-fraction convergent of x/2^bits
/// with denominator <= max_den.
index_t best_denominator(index_t x, unsigned bits, index_t max_den) {
  double value = static_cast<double>(x) / std::ldexp(1.0, static_cast<int>(bits));
  // Convergent recurrence h_i = a_i h_{i-1} + h_{i-2}: (p1, q1) is the
  // current convergent h_0/k_0 = 0/1, (p0, q0) the previous (1, 0).
  index_t p0 = 1, q0 = 0, p1 = 0, q1 = 1;
  for (int iter = 0; iter < 64 && value > 1e-12; ++iter) {
    const double inv = 1.0 / value;
    const index_t a = static_cast<index_t>(inv);
    const index_t p2 = a * p1 + p0, q2 = a * q1 + q0;
    if (q2 > max_den) break;
    p0 = p1; q0 = q1; p1 = p2; q1 = q2;
    value = inv - static_cast<double>(a);
  }
  return q1 == 0 ? 1 : q1;
}

/// One emulated order-finding run: returns a candidate order of a mod N.
index_t find_order(index_t a, index_t N, Rng& rng) {
  qubit_t work = 1;
  while (dim(work) < N + 1) ++work;
  const unsigned t_bits = 2 * work + 1;  // standard precision choice
  const qubit_t total = static_cast<qubit_t>(t_bits) + work;

  sim::StateVector sv(total);
  sv.set_basis(index_t{1} << t_bits);  // |0...0>|1>
  {
    circuit::Circuit h(total);
    for (qubit_t q = 0; q < static_cast<qubit_t>(t_bits); ++q) h.h(q);
    sim::HpcSimulator().run(sv, h);
  }
  emu::Emulator emu(sv);
  // Emulated modular exponentiation: one permutation of the state.
  emu.apply_permutation([&](index_t i) {
    const index_t e = bits::field(i, 0, static_cast<qubit_t>(t_bits));
    const index_t y = bits::field(i, static_cast<qubit_t>(t_bits), work);
    if (y >= N) return i;
    return bits::with_field(i, static_cast<qubit_t>(t_bits), work, y * pow_mod(a, e, N) % N);
  });
  // Emulated inverse QFT on the exponent register.
  emu.inverse_qft(emu::RegRef{0, static_cast<qubit_t>(t_bits)});

  // Sample a measurement of the exponent register and post-process.
  const auto dist = sv.register_distribution(0, static_cast<qubit_t>(t_bits));
  double u = rng.uniform();
  index_t x = 0;
  for (index_t v = 0; v < dist.size(); ++v) {
    u -= dist[v];
    if (u <= 0) {
      x = v;
      break;
    }
  }
  return best_denominator(x, t_bits, N);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const index_t N = static_cast<index_t>(cli.get_int("N", 15));
  index_t a = static_cast<index_t>(cli.get_int("a", 0));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  std::printf("Shor's algorithm (emulated order finding), N = %llu\n",
              static_cast<unsigned long long>(N));
  if (N % 2 == 0) {
    std::printf("N is even: trivial factor 2.\n");
    return 0;
  }

  for (int attempt = 1; attempt <= 16; ++attempt) {
    if (a == 0 || attempt > 1) a = 2 + rng.uniform_u64(N - 3);
    const index_t g = std::gcd(a, N);
    if (g > 1) {
      std::printf("  lucky guess: gcd(%llu, N) = %llu is a factor\n",
                  static_cast<unsigned long long>(a), static_cast<unsigned long long>(g));
      continue;
    }
    index_t r = find_order(a, N, rng);
    // The sampled denominator may be a divisor of the order; grow it.
    while (r < N && pow_mod(a, r, N) != 1) r *= 2;
    if (r == 0 || pow_mod(a, r, N) != 1 || r % 2 == 1) {
      std::printf("  attempt %d: a = %llu gave unusable order candidate %llu, retrying\n",
                  attempt, static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(r));
      continue;
    }
    const index_t half = pow_mod(a, r / 2, N);
    if (half == N - 1) {
      std::printf("  attempt %d: a = %llu has a^(r/2) = -1 mod N, retrying\n", attempt,
                  static_cast<unsigned long long>(a));
      continue;
    }
    const index_t f1 = std::gcd(half - 1, N);
    const index_t f2 = std::gcd(half + 1, N);
    if (f1 > 1 && f1 < N) {
      std::printf("  a = %llu, order r = %llu\n", static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(r));
      std::printf("SUCCESS: %llu = %llu x %llu\n", static_cast<unsigned long long>(N),
                  static_cast<unsigned long long>(f1),
                  static_cast<unsigned long long>(N / f1));
      return 0;
    }
    if (f2 > 1 && f2 < N) {
      std::printf("  a = %llu, order r = %llu\n", static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(r));
      std::printf("SUCCESS: %llu = %llu x %llu\n", static_cast<unsigned long long>(N),
                  static_cast<unsigned long long>(f2),
                  static_cast<unsigned long long>(N / f2));
      return 0;
    }
    std::printf("  attempt %d: factors degenerate, retrying\n", attempt);
  }
  std::printf("no factor found (N prime, a prime power, or unlucky sampling)\n");
  return 1;
}
