// Shor's algorithm — the paper's flagship use case (§3.1 names Shor as
// the most famous application of classical functions on a quantum
// computer), written as one four-op engine::Program:
//
//   Hadamards on the exponent register   (gate segment)
//   x += a^e mod N                       (apply_function op)
//   inverse QFT on the exponent          (inverse_qft op)
//   measure the exponent                 (measure op)
//
// On the default "auto" backend the function evaluation is ONE
// amplitude permutation (no reversible modular-arithmetic network, no
// work qubits), the inverse QFT a batched FFT, and the measurement a
// single pass over the exact distribution. The same program lowers to a
// full gate-level run on any registered simulator (see
// shor_gate_level / --backend). Classical pre/post-processing (gcd,
// continued fractions) completes the factorization.
//
// Run: ./shor [--N 15] [--a 7] [--seed 1] [--backend auto]
#include <cstdio>
#include <numeric>
#include <string>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"

namespace {

using namespace qc;

index_t pow_mod(index_t base, index_t e, index_t mod) {
  index_t r = 1 % mod;
  base %= mod;
  while (e > 0) {
    if (e & 1) r = r * base % mod;
    base = base * base % mod;
    e >>= 1;
  }
  return r;
}

/// Denominator of the best continued-fraction convergent of x/2^bits
/// with denominator <= max_den.
index_t best_denominator(index_t x, unsigned bits, index_t max_den) {
  double value = static_cast<double>(x) / std::ldexp(1.0, static_cast<int>(bits));
  // Convergent recurrence h_i = a_i h_{i-1} + h_{i-2}: (p1, q1) is the
  // current convergent h_0/k_0 = 0/1, (p0, q0) the previous (1, 0).
  index_t p0 = 1, q0 = 0, p1 = 0, q1 = 1;
  for (int iter = 0; iter < 64 && value > 1e-12; ++iter) {
    const double inv = 1.0 / value;
    const index_t a = static_cast<index_t>(inv);
    const index_t p2 = a * p1 + p0, q2 = a * q1 + q0;
    if (q2 > max_den) break;
    p0 = p1; q0 = q1; p1 = p2; q1 = q2;
    value = inv - static_cast<double>(a);
  }
  return q1 == 0 ? 1 : q1;
}

/// One order-finding run through the engine: returns a candidate order
/// of a mod N.
index_t find_order(index_t a, index_t N, Rng& rng, const std::string& backend) {
  qubit_t work = 1;
  while (dim(work) < N + 1) ++work;
  const qubit_t t_bits = 2 * work + 1;  // standard precision choice

  engine::Program program(t_bits + work);
  for (qubit_t q = 0; q < t_bits; ++q) program.h(q);
  program
      .apply_function({0, t_bits}, {t_bits, work},
                      [a, N](index_t e) { return pow_mod(a, e, N); })
      .inverse_qft({0, t_bits})
      .measure({0, t_bits});

  engine::RunOptions opts;
  opts.backend = backend;
  opts.seed = rng.next_u64();
  const engine::Result result = engine::Engine().run(program, opts);
  return best_denominator(result.measurements[0], t_bits, N);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const index_t N = static_cast<index_t>(cli.get_int("N", 15));
  index_t a = static_cast<index_t>(cli.get_int("a", 0));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  const std::string backend = cli.get_string("backend", "auto");

  std::printf("Shor's algorithm (order finding on the '%s' backend), N = %llu\n",
              backend.c_str(), static_cast<unsigned long long>(N));
  if (N % 2 == 0) {
    std::printf("N is even: trivial factor 2.\n");
    return 0;
  }

  for (int attempt = 1; attempt <= 16; ++attempt) {
    if (a == 0 || attempt > 1) a = 2 + rng.uniform_u64(N - 3);
    const index_t g = std::gcd(a, N);
    if (g > 1) {
      std::printf("  lucky guess: gcd(%llu, N) = %llu is a factor\n",
                  static_cast<unsigned long long>(a), static_cast<unsigned long long>(g));
      continue;
    }
    index_t r = find_order(a, N, rng, backend);
    // The sampled denominator may be a divisor of the order; grow it.
    while (r < N && pow_mod(a, r, N) != 1) r *= 2;
    if (r == 0 || pow_mod(a, r, N) != 1 || r % 2 == 1) {
      std::printf("  attempt %d: a = %llu gave unusable order candidate %llu, retrying\n",
                  attempt, static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(r));
      continue;
    }
    const index_t half = pow_mod(a, r / 2, N);
    if (half == N - 1) {
      std::printf("  attempt %d: a = %llu has a^(r/2) = -1 mod N, retrying\n", attempt,
                  static_cast<unsigned long long>(a));
      continue;
    }
    const index_t f1 = std::gcd(half - 1, N);
    const index_t f2 = std::gcd(half + 1, N);
    if (f1 > 1 && f1 < N) {
      std::printf("  a = %llu, order r = %llu\n", static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(r));
      std::printf("SUCCESS: %llu = %llu x %llu\n", static_cast<unsigned long long>(N),
                  static_cast<unsigned long long>(f1),
                  static_cast<unsigned long long>(N / f1));
      return 0;
    }
    if (f2 > 1 && f2 < N) {
      std::printf("  a = %llu, order r = %llu\n", static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(r));
      std::printf("SUCCESS: %llu = %llu x %llu\n", static_cast<unsigned long long>(N),
                  static_cast<unsigned long long>(f2),
                  static_cast<unsigned long long>(N / f2));
      return 0;
    }
    std::printf("  attempt %d: factors degenerate, retrying\n", attempt);
  }
  std::printf("no factor found (N prime, a prime power, or unlucky sampling)\n");
  return 1;
}
