// Shor order finding both ways: gate-level simulation vs emulation.
//
// The simulation side executes the full Beauregard circuit — Hadamards,
// the modular-exponentiation cascade of controlled modular multipliers
// built from Draper QFT-adders, and the inverse QFT — gate by gate on
// t + 2w + 2 qubits. The emulation side (paper §3.1/§3.2) computes the
// same state with one amplitude permutation and one FFT on t + w
// qubits: no accumulator register, no comparator ancilla, no QFT
// sub-circuits. Both produce the identical exponent-register
// distribution; the wall-clock gap is the paper's whole argument.
//
// Run: ./shor_gate_level [--N 15] [--a 7] [--t 8] [--backend hpc]
//                        [--ranks 2]
// --ranks sets RunOptions.dist_ranks for --backend dist: the whole
// order-finding circuit then runs against one resident cluster session
// (one scatter, one gather for the entire program).
#include <cstdio>

#include "circuit/builders.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "revcirc/modular.hpp"

namespace {

using namespace qc;

index_t pow_mod(index_t base, index_t e, index_t mod) {
  index_t r = 1 % mod;
  base %= mod;
  while (e > 0) {
    if (e & 1) r = r * base % mod;
    base = base * base % mod;
    e >>= 1;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const index_t N = static_cast<index_t>(cli.get_int("N", 15));
  const index_t a = static_cast<index_t>(cli.get_int("a", 7));
  const revcirc::ShorLayout layout =
      revcirc::ShorLayout::make(static_cast<qubit_t>(cli.get_int("t", 8)), N);
  const qubit_t t = layout.t, w = layout.w;

  std::printf("order finding for a = %llu mod N = %llu\n",
              static_cast<unsigned long long>(a), static_cast<unsigned long long>(N));
  std::printf("gate level: %u qubits (t=%u exponent, w=%u value, w+1 accumulator,\n"
              "            1 comparator ancilla)\n",
              layout.total_qubits(), t, w);
  std::printf("emulated:   %u qubits (no work registers at all)\n\n", t + w);

  // --- gate-level simulation -------------------------------------------
  // The Beauregard circuit runs as an engine Program with one gate
  // segment, so any registered gate-level backend can execute it
  // (--backend hpc | fused | cached | dist | qhipster-like | liquid-like).
  circuit::Circuit full = revcirc::order_finding_circuit(layout, a, N);
  {
    // Inverse QFT on the exponent register to finish QPE.
    circuit::Circuit iqft(layout.total_qubits());
    iqft.compose_mapped(circuit::inverse_qft(t), layout.exponent);
    full.compose(iqft);
  }
  engine::Program gate_program(layout.total_qubits());
  gate_program.gates(full);
  engine::RunOptions gate_opts;
  gate_opts.backend = cli.get_string("backend", "hpc");
  gate_opts.dist_ranks = static_cast<int>(cli.get_int("ranks", 2));
  const engine::Result gate_result = engine::Engine().run(gate_program, gate_opts);
  const double t_gate = gate_result.total_seconds;
  std::printf("simulation: %zu gates on %u qubits ('%s')  %.4f s\n", full.size(),
              layout.total_qubits(), gate_result.backend.c_str(), t_gate);

  const sim::HpcSimulator hpc;
  WallTimer timer;

  // --- emulation ---------------------------------------------------------
  sim::StateVector emu_sv(t + w);
  {
    circuit::Circuit prep(t + w);
    for (qubit_t q = 0; q < t; ++q) prep.h(q);
    prep.x(t);  // x register = |1>
    hpc.run(emu_sv, prep);
  }
  emu::Emulator emulator(emu_sv);
  timer.reset();
  emulator.apply_permutation([&](index_t i) {
    const index_t e = bits::field(i, 0, t);
    const index_t y = bits::field(i, t, w);
    if (y >= N) return i;
    return bits::with_field(i, t, w, y * pow_mod(a, e, N) % N);
  });
  emulator.inverse_qft(emu::RegRef{0, t});
  const double t_emu = timer.seconds();
  std::printf("emulation:  1 permutation + 1 FFT on %u qubits  %.4f s\n", t + w, t_emu);
  std::printf("speedup: %.0fx\n\n", t_gate / t_emu);

  // --- agreement ----------------------------------------------------------
  const auto dist_gate = gate_result.state.register_distribution(0, t);
  const auto dist_emu = emu_sv.register_distribution(0, t);
  double max_diff = 0;
  for (index_t x = 0; x < dist_gate.size(); ++x)
    max_diff = std::max(max_diff, std::abs(dist_gate[x] - dist_emu[x]));
  std::printf("exponent-register distributions agree to %.2e\n", max_diff);

  std::printf("peaks (x, probability):\n");
  for (index_t x = 0; x < dist_gate.size(); ++x)
    if (dist_gate[x] > 0.02)
      std::printf("  %6llu  %.4f\n", static_cast<unsigned long long>(x), dist_gate[x]);
  std::printf("peak spacing 2^t/r reveals the order r of a mod N.\n");
  return max_diff < 1e-6 ? 0 : 1;
}
