#include "circuit/builders.hpp"

#include <numbers>

namespace qc::circuit {

Circuit qft(qubit_t n, bool with_swaps) {
  Circuit c(n);
  // Process qubits from most to least significant. After H on qubit k,
  // conditionally rotate by pi/2^(k-j) for every lower qubit j. This
  // realizes the DFT with the output bit-reversed; the optional swaps
  // restore natural order (paper Eq. 4).
  for (qubit_t k = n; k-- > 0;) {
    c.h(k);
    for (qubit_t j = k; j-- > 0;)
      c.cr(j, k, std::numbers::pi / static_cast<double>(index_t{1} << (k - j)));
  }
  if (with_swaps)
    for (qubit_t k = 0; k < n / 2; ++k) c.swap(k, n - 1 - k);
  return c;
}

Circuit inverse_qft(qubit_t n, bool with_swaps) { return qft(n, with_swaps).inverse(); }

Circuit entangle(qubit_t n) {
  Circuit c(n);
  c.h(0);
  for (qubit_t q = 1; q < n; ++q) c.cnot(0, q);
  return c;
}

Circuit tfim_trotter_step(qubit_t n, double dt, double coupling_j, double field_h) {
  Circuit c(n);
  for (qubit_t q = 0; q < n; ++q) c.rx(q, 2.0 * field_h * dt);
  for (qubit_t q = 0; q + 1 < n; ++q) {
    c.cnot(q, q + 1);
    c.rz(q + 1, -2.0 * coupling_j * dt);
    c.cnot(q, q + 1);
  }
  return c;
}

Circuit random_circuit(qubit_t n, std::size_t gate_count, Rng& rng) {
  Circuit c(n);
  auto pick_qubit = [&] { return static_cast<qubit_t>(rng.uniform_u64(n)); };
  auto pick_distinct = [&](qubit_t a) {
    qubit_t b = pick_qubit();
    while (b == a) b = pick_qubit();
    return b;
  };
  // Gate menu shrinks with register width: 2-qubit gates need n >= 2,
  // Toffoli needs n >= 3.
  const std::uint64_t choices = n >= 3 ? 12 : (n == 2 ? 10 : 8);
  for (std::size_t i = 0; i < gate_count; ++i) {
    const auto choice = rng.uniform_u64(choices);
    const qubit_t q = pick_qubit();
    switch (choice) {
      case 0: c.h(q); break;
      case 1: c.x(q); break;
      case 2: c.y(q); break;
      case 3: c.z(q); break;
      case 4: c.s(q); break;
      case 5: c.t(q); break;
      case 6: c.rz(q, rng.uniform(0, 2 * std::numbers::pi)); break;
      case 7: c.rx(q, rng.uniform(0, 2 * std::numbers::pi)); break;
      case 8: c.cnot(q, pick_distinct(q)); break;
      case 9: c.cr(q, pick_distinct(q), rng.uniform(0, 2 * std::numbers::pi)); break;
      case 10: {
        const qubit_t a = pick_distinct(q);
        qubit_t b = pick_distinct(q);
        while (b == a) b = pick_distinct(q);
        c.toffoli(q, a, b);
        break;
      }
      case 11: c.swap(q, pick_distinct(q)); break;
    }
  }
  return c;
}

Circuit random_classical_circuit(qubit_t n, std::size_t gate_count, Rng& rng) {
  Circuit c(n);
  auto pick_qubit = [&] { return static_cast<qubit_t>(rng.uniform_u64(n)); };
  auto pick_distinct = [&](qubit_t a) {
    qubit_t b = pick_qubit();
    while (b == a) b = pick_qubit();
    return b;
  };
  const std::uint64_t choices = n >= 3 ? 3 : (n == 2 ? 2 : 1);
  for (std::size_t i = 0; i < gate_count; ++i) {
    const auto choice = rng.uniform_u64(choices);
    const qubit_t q = pick_qubit();
    switch (choice) {
      case 0: c.x(q); break;
      case 1: c.cnot(q, pick_distinct(q)); break;
      case 2: {
        const qubit_t a = pick_distinct(q);
        qubit_t b = pick_distinct(q);
        while (b == a) b = pick_distinct(q);
        c.toffoli(q, a, b);
        break;
      }
    }
  }
  return c;
}

Circuit random_dense_circuit(qubit_t n, std::size_t gate_count, Rng& rng) {
  Circuit c(n);
  auto pick_qubit = [&] { return static_cast<qubit_t>(rng.uniform_u64(n)); };
  auto pick_distinct = [&](qubit_t a) {
    qubit_t b = pick_qubit();
    while (b == a) b = pick_qubit();
    return b;
  };
  const std::uint64_t choices = n >= 2 ? 6 : 4;
  for (std::size_t i = 0; i < gate_count; ++i) {
    const auto choice = rng.uniform_u64(choices);
    const qubit_t q = pick_qubit();
    switch (choice) {
      case 0: c.h(q); break;
      case 1: c.rx(q, rng.uniform(0, 2 * std::numbers::pi)); break;
      case 2: c.ry(q, rng.uniform(0, 2 * std::numbers::pi)); break;
      case 3: {
        // Random single-qubit unitary drawn Haar-like via 2x2 QR.
        const linalg::Matrix u = linalg::Matrix::random_unitary(2, rng);
        c.u2(q, {u(0, 0), u(0, 1), u(1, 0), u(1, 1)});
        break;
      }
      case 4: c.cnot(q, pick_distinct(q)); break;
      case 5: c.cr(q, pick_distinct(q), rng.uniform(0, 2 * std::numbers::pi)); break;
    }
  }
  return c;
}

}  // namespace qc::circuit
