// Standard circuit constructions used throughout the paper's evaluation.
#pragma once

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace qc::circuit {

/// Quantum Fourier transform circuit on n qubits: the H + controlled
/// phase-shift cascade (n Hadamards, n(n-1)/2 CR gates — the O(n^2)
/// construction of §3.2). With `with_swaps` the final qubit-reversal
/// swaps are appended so the circuit realizes the paper's Eq. (4)
/// exactly (natural bit order); without them the output is bit-reversed.
Circuit qft(qubit_t n, bool with_swaps = true);

/// Inverse QFT (used by phase estimation and Shor).
Circuit inverse_qft(qubit_t n, bool with_swaps = true);

/// The §4.5 "entangling operation": H on qubit 0, then a CNOT on every
/// other qubit conditioned on qubit 0 (prepares a GHZ state from |0..0>).
Circuit entangle(qubit_t n);

/// First-order Trotter step of the 1-D transverse-field Ising model
///   H = -J sum Z_i Z_{i+1} - h sum X_i
/// for time step dt: Rx(2 h dt) on every qubit, then exp(i J dt Z Z) on
/// every bond as CNOT - Rz(-2 J dt) - CNOT. Gate count G = 4n - 3,
/// matching the paper's Table 2 (G = 29, 33, ..., 53 for n = 8..14).
Circuit tfim_trotter_step(qubit_t n, double dt, double coupling_j = 1.0, double field_h = 1.0);

/// Uniformly random circuit from {H, X, Y, Z, S, T, Rz, Rx, CNOT, CR,
/// Toffoli, SWAP} on distinct qubits — the property-test workload.
Circuit random_circuit(qubit_t n, std::size_t gate_count, Rng& rng);

/// Random circuit restricted to classical reversible gates
/// (X / CNOT / Toffoli), exercising the BitVm-vs-state-vector tests.
Circuit random_classical_circuit(qubit_t n, std::size_t gate_count, Rng& rng);

/// Random circuit of dense (non-diagonal, non-permutation) gates — H,
/// Rx, Ry, random U2, CNOT, CR on adjacent-random qubits. No gate has a
/// cheap specialized path, so every unfused gate costs a full pair
/// sweep; the gate-fusion ablation bench uses it as the workload where
/// fusion's fewer-memory-passes win is purest.
Circuit random_dense_circuit(qubit_t n, std::size_t gate_count, Rng& rng);

}  // namespace qc::circuit
