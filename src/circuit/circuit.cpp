#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/bits.hpp"
#include "linalg/gemm.hpp"

namespace qc::circuit {

Circuit& Circuit::append(Gate g) {
  std::vector<qubit_t> all = g.targets;
  all.insert(all.end(), g.controls.begin(), g.controls.end());
  if (!bits::all_distinct_below(all, n_))
    throw std::invalid_argument("Circuit::append: invalid qubits in " + g.to_string());
  const std::size_t want_targets = g.kind == GateKind::Swap ? 2 : 1;
  if (g.targets.size() != want_targets)
    throw std::invalid_argument("Circuit::append: wrong target count in " + g.to_string());
  gates_.push_back(std::move(g));
  return *this;
}

Circuit& Circuit::compose(const Circuit& other) {
  if (other.n_ != n_) throw std::invalid_argument("Circuit::compose: qubit count mismatch");
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
  return *this;
}

Circuit& Circuit::compose_mapped(const Circuit& other, const std::vector<qubit_t>& mapping) {
  if (mapping.size() != other.n_)
    throw std::invalid_argument("compose_mapped: mapping size mismatch");
  for (Gate g : other.gates_) {
    for (auto& q : g.targets) q = mapping.at(q);
    for (auto& q : g.controls) q = mapping.at(q);
    append(std::move(g));
  }
  return *this;
}

Circuit Circuit::inverse() const {
  Circuit inv(n_);
  inv.gates_.reserve(gates_.size());
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it)
    inv.gates_.push_back(it->inverse());
  return inv;
}

Circuit Circuit::controlled(qubit_t control) const {
  Circuit c(std::max<qubit_t>(n_, control + 1));
  for (Gate g : gates_) {
    if (std::find(g.targets.begin(), g.targets.end(), control) != g.targets.end() ||
        std::find(g.controls.begin(), g.controls.end(), control) != g.controls.end())
      throw std::invalid_argument("Circuit::controlled: control qubit already used");
    g.controls.push_back(control);
    c.append(std::move(g));
  }
  return c;
}

Circuit Circuit::widened(qubit_t n_new) const {
  if (n_new < n_) throw std::invalid_argument("Circuit::widened: cannot shrink");
  Circuit c(n_new);
  for (const Gate& g : gates_) c.append(g);
  return c;
}

std::map<std::string, std::size_t> Circuit::gate_histogram() const {
  std::map<std::string, std::size_t> hist;
  for (const Gate& g : gates_) {
    std::string key = gate_name(g.kind);
    if (!g.controls.empty()) key = "C" + std::to_string(g.controls.size()) + "-" + key;
    ++hist[key];
  }
  return hist;
}

std::size_t Circuit::controlled_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return !g.controls.empty(); }));
}

linalg::Matrix Circuit::to_matrix_reference() const {
  linalg::Matrix u = linalg::Matrix::identity(dim(n_));
  for (const Gate& g : gates_) u = linalg::gemm(gate_operator(g, n_), u);
  return u;
}

std::string Circuit::to_string() const {
  std::ostringstream out;
  out << "circuit on " << n_ << " qubits, " << gates_.size() << " gates\n";
  for (const Gate& g : gates_) out << "  " << g.to_string() << '\n';
  return out.str();
}

}  // namespace qc::circuit
