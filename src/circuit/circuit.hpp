// Circuit intermediate representation.
//
// A Circuit is an ordered gate list over n qubits with fluent builder
// methods. This is the "compiled to elementary gates" form a simulator
// executes gate by gate; the emulator bypasses it for recognized
// subroutines (that bypass is the paper's whole point, §3).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qc::circuit {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(qubit_t n_qubits) : n_(n_qubits) {}

  [[nodiscard]] qubit_t qubits() const noexcept { return n_; }
  [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }
  [[nodiscard]] std::size_t size() const noexcept { return gates_.size(); }
  [[nodiscard]] bool empty() const noexcept { return gates_.empty(); }

  /// Appends a validated gate (qubits distinct, below qubits()).
  Circuit& append(Gate g);

  // Fluent single-gate builders.
  Circuit& x(qubit_t q) { return append(make_gate(GateKind::X, q)); }
  Circuit& y(qubit_t q) { return append(make_gate(GateKind::Y, q)); }
  Circuit& z(qubit_t q) { return append(make_gate(GateKind::Z, q)); }
  Circuit& h(qubit_t q) { return append(make_gate(GateKind::H, q)); }
  Circuit& s(qubit_t q) { return append(make_gate(GateKind::S, q)); }
  Circuit& sdg(qubit_t q) { return append(make_gate(GateKind::Sdg, q)); }
  Circuit& t(qubit_t q) { return append(make_gate(GateKind::T, q)); }
  Circuit& tdg(qubit_t q) { return append(make_gate(GateKind::Tdg, q)); }
  Circuit& rx(qubit_t q, double theta) { return append(make_gate(GateKind::Rx, q, theta)); }
  Circuit& ry(qubit_t q, double theta) { return append(make_gate(GateKind::Ry, q, theta)); }
  Circuit& rz(qubit_t q, double theta) { return append(make_gate(GateKind::Rz, q, theta)); }
  Circuit& phase(qubit_t q, double theta) {
    return append(make_gate(GateKind::Phase, q, theta));
  }
  Circuit& u2(qubit_t q, const std::array<complex_t, 4>& u) { return append(make_u2(q, u)); }
  Circuit& cnot(qubit_t c, qubit_t t) { return append(make_controlled(GateKind::X, c, t)); }
  Circuit& cz(qubit_t c, qubit_t t) { return append(make_controlled(GateKind::Z, c, t)); }
  /// The paper's conditional phase shift CR(theta).
  Circuit& cr(qubit_t c, qubit_t t, double theta) {
    return append(make_controlled(GateKind::Phase, c, t, theta));
  }
  Circuit& crz(qubit_t c, qubit_t t, double theta) {
    return append(make_controlled(GateKind::Rz, c, t, theta));
  }
  Circuit& swap(qubit_t a, qubit_t b) { return append(make_swap(a, b)); }
  Circuit& toffoli(qubit_t c1, qubit_t c2, qubit_t t) {
    return append(make_toffoli(c1, c2, t));
  }

  /// Appends all gates of `other` (same qubit count required).
  Circuit& compose(const Circuit& other);

  /// Appends `other` with its qubit q mapped to `mapping[q]`.
  Circuit& compose_mapped(const Circuit& other, const std::vector<qubit_t>& mapping);

  /// The inverse circuit (reversed order, inverted gates) — the
  /// "uncompute" construction of Bennett [10] the paper discusses.
  [[nodiscard]] Circuit inverse() const;

  /// A copy with `control` added to every gate (the controlled-U needed
  /// by phase estimation). `control` must not appear in any gate.
  [[nodiscard]] Circuit controlled(qubit_t control) const;

  /// A copy acting on a register widened to `n_new` qubits (labels kept).
  [[nodiscard]] Circuit widened(qubit_t n_new) const;

  /// Gate-count histogram by kind name (for reports and the G column of
  /// the paper's Table 2).
  [[nodiscard]] std::map<std::string, std::size_t> gate_histogram() const;

  /// Number of gates with at least one control (CNOT, CR, Toffoli, ...).
  [[nodiscard]] std::size_t controlled_count() const;

  /// Dense 2^n x 2^n unitary via gate_operator products — O(G * 2^{3n})
  /// Kronecker test oracle; use emu::build_unitary for the fast path.
  [[nodiscard]] linalg::Matrix to_matrix_reference() const;

  /// Multi-line disassembly.
  [[nodiscard]] std::string to_string() const;

 private:
  qubit_t n_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace qc::circuit
