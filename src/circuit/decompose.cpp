#include "circuit/decompose.hpp"

#include <algorithm>
#include <stdexcept>

namespace qc::circuit {

Circuit toffoli_network(qubit_t n, qubit_t c1, qubit_t c2, qubit_t t) {
  Circuit c(n);
  c.h(t);
  c.cnot(c2, t);
  c.tdg(t);
  c.cnot(c1, t);
  c.t(t);
  c.cnot(c2, t);
  c.tdg(t);
  c.cnot(c1, t);
  c.t(c2);
  c.t(t);
  c.h(t);
  c.cnot(c1, c2);
  c.t(c1);
  c.tdg(c2);
  c.cnot(c1, c2);
  return c;
}

Circuit lower_multi_controls(const Circuit& c, std::size_t max_controls) {
  if (max_controls < 2) throw std::invalid_argument("lower_multi_controls: need >= 2");
  // Worst case ancilla need: controls-1 per gate; allocate for the max.
  std::size_t worst = 0;
  for (const Gate& g : c.gates())
    if (g.controls.size() > max_controls) worst = std::max(worst, g.controls.size() - 1);
  const qubit_t n_anc = static_cast<qubit_t>(worst);
  Circuit out(c.qubits() + n_anc);
  const qubit_t anc0 = c.qubits();

  for (const Gate& g : c.gates()) {
    if (g.controls.size() <= max_controls) {
      out.append(g);
      continue;
    }
    if (g.kind != GateKind::X)
      throw std::invalid_argument("lower_multi_controls: only multi-controlled X supported");
    // v-chain: and-accumulate controls pairwise into clean ancillas,
    // apply the Toffoli, then uncompute the chain.
    const auto& ctl = g.controls;
    std::vector<Gate> compute;
    compute.push_back(make_toffoli(ctl[0], ctl[1], anc0));
    for (std::size_t i = 2; i + 1 < ctl.size(); ++i)
      compute.push_back(
          make_toffoli(ctl[i], anc0 + static_cast<qubit_t>(i) - 2, anc0 + static_cast<qubit_t>(i) - 1));
    const qubit_t last_anc = anc0 + static_cast<qubit_t>(ctl.size()) - 3;
    for (const Gate& gg : compute) out.append(gg);
    out.append(make_toffoli(ctl.back(), last_anc, g.targets[0]));
    for (auto it = compute.rbegin(); it != compute.rend(); ++it) out.append(*it);
  }
  return out;
}

Circuit lower_to_clifford_t(const Circuit& c) {
  Circuit out(c.qubits());
  for (const Gate& g : c.gates()) {
    if (g.kind == GateKind::X && g.controls.size() == 2) {
      out.compose(toffoli_network(c.qubits(), g.controls[0], g.controls[1], g.targets[0]));
      continue;
    }
    if (g.kind == GateKind::Swap && g.controls.empty()) {
      out.cnot(g.targets[0], g.targets[1]);
      out.cnot(g.targets[1], g.targets[0]);
      out.cnot(g.targets[0], g.targets[1]);
      continue;
    }
    if (g.controls.size() > 2)
      throw std::invalid_argument("lower_to_clifford_t: run lower_multi_controls first");
    out.append(g);
  }
  return out;
}

}  // namespace qc::circuit
