// Gate decomposition passes.
//
// The paper's simulation baseline executes classical functions as
// networks of Toffoli/CNOT/NOT gates (§3, Bennett's construction). These
// passes lower circuits further: multi-controlled X gates to plain
// Toffolis (with clean ancillas), Toffolis to the standard 15-gate
// {H, T, Tdg, CNOT} network, and SWAPs to CNOT triples — so a fully
// "elementary gate" simulation can be benchmarked at any lowering level.
#pragma once

#include "circuit/circuit.hpp"

namespace qc::circuit {

/// The standard 15-gate Clifford+T realization of Toffoli(c1, c2, t)
/// (Nielsen & Chuang Fig. 4.9) on an n-qubit register.
Circuit toffoli_network(qubit_t n, qubit_t c1, qubit_t c2, qubit_t t);

/// Rewrites every gate with >= `max_controls`+1 controls on X targets
/// into Toffoli chains using clean ancillas (the v-chain construction).
/// The result acts on a widened register; ancillas (qubits >= c.qubits())
/// are returned to |0>. Only classical gates (X with controls, SWAP) plus
/// arbitrary <=max_controls gates are supported as input.
Circuit lower_multi_controls(const Circuit& c, std::size_t max_controls = 2);

/// Rewrites Toffolis into the 15-gate network and SWAPs into three
/// CNOTs; gates with more than two controls must be lowered first.
Circuit lower_to_clifford_t(const Circuit& c);

}  // namespace qc::circuit
