#include "circuit/gate.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "common/bits.hpp"

namespace qc::circuit {

namespace {
constexpr double kSqrtHalf = 0.70710678118654752440;
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::X: return "X";
    case GateKind::Y: return "Y";
    case GateKind::Z: return "Z";
    case GateKind::H: return "H";
    case GateKind::S: return "S";
    case GateKind::Sdg: return "Sdg";
    case GateKind::T: return "T";
    case GateKind::Tdg: return "Tdg";
    case GateKind::Rx: return "Rx";
    case GateKind::Ry: return "Ry";
    case GateKind::Rz: return "Rz";
    case GateKind::Phase: return "R";
    case GateKind::U2: return "U2";
    case GateKind::Swap: return "Swap";
  }
  return "?";
}

bool Gate::diagonal() const noexcept {
  switch (kind) {
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::Rz:
    case GateKind::Phase:
      return true;
    default:
      return false;
  }
}

Gate Gate::inverse() const {
  Gate g = *this;
  switch (kind) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::Swap:
      return g;  // self-inverse
    case GateKind::S:
      g.kind = GateKind::Sdg;
      return g;
    case GateKind::Sdg:
      g.kind = GateKind::S;
      return g;
    case GateKind::T:
      g.kind = GateKind::Tdg;
      return g;
    case GateKind::Tdg:
      g.kind = GateKind::T;
      return g;
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
    case GateKind::Phase:
      g.angle = -angle;
      return g;
    case GateKind::U2:
      // Conjugate transpose of the stored 2x2.
      g.u2 = {std::conj(u2[0]), std::conj(u2[2]), std::conj(u2[1]), std::conj(u2[3])};
      return g;
  }
  throw std::logic_error("Gate::inverse: unknown kind");
}

std::string Gate::to_string() const {
  std::ostringstream out;
  out << gate_name(kind);
  if (kind == GateKind::Rx || kind == GateKind::Ry || kind == GateKind::Rz ||
      kind == GateKind::Phase)
    out << "(" << angle << ")";
  out << " [";
  if (!controls.empty()) {
    out << "c:";
    for (std::size_t i = 0; i < controls.size(); ++i) out << (i ? "," : "") << controls[i];
    out << " ";
  }
  out << "t:";
  for (std::size_t i = 0; i < targets.size(); ++i) out << (i ? "," : "") << targets[i];
  out << "]";
  return out.str();
}

linalg::Matrix gate_block_matrix(const Gate& g) {
  using M = linalg::Matrix;
  switch (g.kind) {
    case GateKind::X: return M{{0, 1}, {1, 0}};
    case GateKind::Y: return M{{0, -kI}, {kI, 0}};
    case GateKind::Z: return M{{1, 0}, {0, -1}};
    case GateKind::H: return M{{kSqrtHalf, kSqrtHalf}, {kSqrtHalf, -kSqrtHalf}};
    case GateKind::S: return M{{1, 0}, {0, kI}};
    case GateKind::Sdg: return M{{1, 0}, {0, -kI}};
    case GateKind::T: return M{{1, 0}, {0, std::polar(1.0, std::numbers::pi / 4)}};
    case GateKind::Tdg: return M{{1, 0}, {0, std::polar(1.0, -std::numbers::pi / 4)}};
    case GateKind::Rx: {
      const double c = std::cos(g.angle / 2), s = std::sin(g.angle / 2);
      return M{{c, -kI * s}, {-kI * s, c}};
    }
    case GateKind::Ry: {
      const double c = std::cos(g.angle / 2), s = std::sin(g.angle / 2);
      return M{{c, -s}, {s, c}};
    }
    case GateKind::Rz:
      return M{{std::polar(1.0, -g.angle / 2), 0}, {0, std::polar(1.0, g.angle / 2)}};
    case GateKind::Phase:
      return M{{1, 0}, {0, std::polar(1.0, g.angle)}};
    case GateKind::U2:
      return M{{g.u2[0], g.u2[1]}, {g.u2[2], g.u2[3]}};
    case GateKind::Swap:
      return M{{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
  }
  throw std::logic_error("gate_block_matrix: unknown kind");
}

linalg::Matrix gate_operator(const Gate& g, qubit_t n) {
  std::vector<qubit_t> all = g.targets;
  all.insert(all.end(), g.controls.begin(), g.controls.end());
  if (!bits::all_distinct_below(all, n))
    throw std::invalid_argument("gate_operator: bad qubit labels");

  const index_t size = dim(n);
  const linalg::Matrix block = gate_block_matrix(g);
  index_t cmask = 0;
  for (qubit_t c : g.controls) cmask = bits::set(cmask, c);

  linalg::Matrix full(size, size);
  for (index_t col = 0; col < size; ++col) {
    if ((col & cmask) != cmask) {
      full(col, col) = 1.0;  // controls not all set: identity action
      continue;
    }
    // Column `col` of the operator: distribute the block column selected
    // by the target bits of `col` over all rows that differ only in the
    // target bits.
    if (g.kind == GateKind::Swap) {
      const qubit_t a = g.targets[0], b = g.targets[1];
      const index_t bcol = (bits::get(col, a) << 0) | (bits::get(col, b) << 1);
      for (index_t brow = 0; brow < 4; ++brow) {
        const complex_t v = block(brow, bcol);
        if (v == complex_t{}) continue;
        index_t row = col;
        row = bits::test(brow, 0) ? bits::set(row, a) : bits::clear(row, a);
        row = bits::test(brow, 1) ? bits::set(row, b) : bits::clear(row, b);
        full(row, col) = v;
      }
    } else {
      const qubit_t t = g.targets[0];
      const index_t bcol = bits::get(col, t);
      for (index_t brow = 0; brow < 2; ++brow) {
        const complex_t v = block(brow, bcol);
        if (v == complex_t{}) continue;
        const index_t row = brow ? bits::set(col, t) : bits::clear(col, t);
        full(row, col) = v;
      }
    }
  }
  return full;
}

linalg::Matrix gate_operator_on(const Gate& g, std::span<const qubit_t> qubits) {
  const auto local = [&](qubit_t q) {
    for (std::size_t i = 0; i < qubits.size(); ++i)
      if (qubits[i] == q) return static_cast<qubit_t>(i);
    throw std::invalid_argument("gate_operator_on: gate qubit not in subset");
  };
  Gate lg = g;
  for (qubit_t& t : lg.targets) t = local(t);
  for (qubit_t& c : lg.controls) c = local(c);
  return gate_operator(lg, static_cast<qubit_t>(qubits.size()));
}

Gate make_gate(GateKind kind, qubit_t target) {
  Gate g;
  g.kind = kind;
  g.targets = {target};
  return g;
}

Gate make_gate(GateKind kind, qubit_t target, double angle) {
  Gate g = make_gate(kind, target);
  g.angle = angle;
  return g;
}

Gate make_controlled(GateKind kind, qubit_t control, qubit_t target, double angle) {
  Gate g = make_gate(kind, target, angle);
  g.controls = {control};
  return g;
}

Gate make_u2(qubit_t target, const std::array<complex_t, 4>& u) {
  Gate g = make_gate(GateKind::U2, target);
  g.u2 = u;
  return g;
}

Gate make_swap(qubit_t a, qubit_t b) {
  Gate g;
  g.kind = GateKind::Swap;
  g.targets = {a, b};
  return g;
}

Gate make_toffoli(qubit_t c1, qubit_t c2, qubit_t target) {
  Gate g = make_gate(GateKind::X, target);
  g.controls = {c1, c2};
  return g;
}

}  // namespace qc::circuit
