// Gate representation — the paper's Table 1 plus controls.
//
// A Gate is a small unitary (1- or 2-qubit) with an arbitrary number of
// control qubits. The simulators never materialize the sparse 2^n x 2^n
// operator the gate formally denotes (paper Eq. 3); they apply the 2x2
// (or 4x4) block directly. The dense operator is still constructible via
// gate_operator() as the test oracle.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace qc::circuit {

enum class GateKind {
  X,      ///< NOT
  Y,
  Z,
  H,      ///< Hadamard
  S,
  Sdg,    ///< S^dagger
  T,
  Tdg,    ///< T^dagger
  Rx,     ///< exp(-i theta X / 2)
  Ry,     ///< exp(-i theta Y / 2)
  Rz,     ///< diag(e^{-i theta/2}, e^{i theta/2})
  Phase,  ///< R(theta) = diag(1, e^{i theta}); controlled form is the paper's CR
  U2,     ///< arbitrary single-qubit unitary (explicit 2x2 matrix)
  Swap,   ///< two-qubit swap
};

[[nodiscard]] std::string gate_name(GateKind kind);

struct Gate {
  GateKind kind = GateKind::X;
  std::vector<qubit_t> targets;   ///< 1 qubit (2 for Swap).
  std::vector<qubit_t> controls;  ///< 0 or more control qubits.
  double angle = 0.0;             ///< Rx/Ry/Rz/Phase parameter.
  std::array<complex_t, 4> u2{};  ///< Row-major 2x2 for GateKind::U2.

  [[nodiscard]] std::size_t arity() const noexcept {
    return targets.size() + controls.size();
  }

  /// True if the *target block* is diagonal (Z, S, T, Rz, Phase and their
  /// adjoints) — the class of gates our simulator applies with the
  /// reduced-traffic fast path the paper credits in §4.5.
  [[nodiscard]] bool diagonal() const noexcept;

  /// The gate with inverted action (same targets/controls).
  [[nodiscard]] Gate inverse() const;

  /// Human-readable form, e.g. "CR(0.785398) [c:0 t:3]".
  [[nodiscard]] std::string to_string() const;
};

/// 2x2 matrix of the target block (4x4 for Swap), excluding controls.
[[nodiscard]] linalg::Matrix gate_block_matrix(const Gate& g);

/// Full dense 2^n x 2^n operator of the gate on an n-qubit register,
/// including controls — the Kronecker-product construction of the
/// paper's Eq. (3). Intended for tests and small-n oracles only.
[[nodiscard]] linalg::Matrix gate_operator(const Gate& g, qubit_t n);

/// Dense 2^k x 2^k operator of the gate on the local register defined by
/// `qubits` (local bit i represents global qubit qubits[i]). Every
/// target/control of `g` must appear in `qubits`. This is how the
/// gate-fusion pass folds a gate into a k-qubit block unitary.
[[nodiscard]] linalg::Matrix gate_operator_on(const Gate& g, std::span<const qubit_t> qubits);

// --- factory helpers (used by Circuit's fluent builders) ---------------

Gate make_gate(GateKind kind, qubit_t target);
Gate make_gate(GateKind kind, qubit_t target, double angle);
Gate make_controlled(GateKind kind, qubit_t control, qubit_t target, double angle = 0.0);
Gate make_u2(qubit_t target, const std::array<complex_t, 4>& u);
Gate make_swap(qubit_t a, qubit_t b);
Gate make_toffoli(qubit_t c1, qubit_t c2, qubit_t target);

}  // namespace qc::circuit
