#include "cluster/cluster.hpp"

#include <omp.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "common/parallel.hpp"
#include "common/timer.hpp"

namespace qc::cluster {

namespace detail {

void SharedState::abort_all() {
  aborted.store(true, std::memory_order_seq_cst);
  for (auto& b : boxes) {
    std::lock_guard lock(b.mutex);
    b.cv.notify_all();
  }
  {
    std::lock_guard lock(barrier.mutex);
    barrier.cv.notify_all();
  }
}

}  // namespace detail

void Comm::send_bytes(int dst, std::span<const std::byte> data, int tag) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("send: bad destination rank");
  if (state_->aborted.load(std::memory_order_relaxed)) throw ClusterAborted{};
  // Drop-capable site: a fired Drop rule loses the message here, and the
  // receiver's deadline turns the loss into a TimeoutError.
  if (fault_point("cluster.send", rank_, /*can_drop=*/true)) return;
  detail::Mailbox& box = state_->box(rank_, dst);
  detail::Message msg;
  msg.tag = tag;
  msg.data.assign(data.begin(), data.end());
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

void Comm::recv_bytes(int src, std::span<std::byte> data, int tag) {
  if (src < 0 || src >= size()) throw std::invalid_argument("recv: bad source rank");
  fault_point("cluster.recv", rank_);
  detail::Mailbox& box = state_->box(src, rank_);
  // Deadline snapshot taken on entry: a budget change mid-wait applies
  // to the next blocking call.
  const double budget_s = state_->timeout_s.load(std::memory_order_relaxed);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(budget_s > 0 ? budget_s : 0));
  std::unique_lock lock(box.mutex);
  for (;;) {
    if (state_->aborted.load(std::memory_order_relaxed)) throw ClusterAborted{};
    // First message with a matching tag; same-tag messages stay ordered.
    const auto it = std::find_if(box.queue.begin(), box.queue.end(),
                                 [tag](const detail::Message& m) { return m.tag == tag; });
    if (it != box.queue.end()) {
      if (it->data.size() != data.size())
        throw std::runtime_error("recv: payload size mismatch");
      std::copy(it->data.begin(), it->data.end(), data.begin());
      box.queue.erase(it);
      return;
    }
    if (budget_s <= 0) {
      box.cv.wait(lock);
    } else if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Re-check under the lock before declaring a timeout: the message
      // or the abort may have raced the deadline.
      if (state_->aborted.load(std::memory_order_relaxed)) throw ClusterAborted{};
      const bool arrived =
          std::find_if(box.queue.begin(), box.queue.end(), [tag](const detail::Message& m) {
            return m.tag == tag;
          }) != box.queue.end();
      if (arrived) continue;
      // abort_all locks every mailbox, including this one.
      lock.unlock();
      obs::instant("cluster.timeout");
      obs::counter_add("fault.timeouts", 1);
      state_->abort_all();
      throw TimeoutError("recv from rank " + std::to_string(src) + " (tag " +
                         std::to_string(tag) + ") timed out after " +
                         std::to_string(budget_s) + " s");
    }
  }
}

void Comm::barrier() {
  // Barrier wait is where load imbalance hides: the per-lane sum of
  // these spans is the time this rank spent waiting for slower peers.
  obs::Span wait_span("cluster.barrier");
  fault_point("cluster.barrier", rank_);
  detail::Barrier& b = state_->barrier;
  const double budget_s = state_->timeout_s.load(std::memory_order_relaxed);
  std::unique_lock lock(b.mutex);
  if (state_->aborted.load(std::memory_order_relaxed)) throw ClusterAborted{};
  const std::uint64_t gen = b.generation;
  if (++b.waiting == state_->size) {
    b.waiting = 0;
    ++b.generation;
    b.cv.notify_all();
    return;
  }
  const auto released = [&] {
    return b.generation != gen || state_->aborted.load(std::memory_order_relaxed);
  };
  if (budget_s <= 0) {
    b.cv.wait(lock, released);
  } else if (!b.cv.wait_for(lock, std::chrono::duration<double>(budget_s), released)) {
    // Deadline expired with peers still missing. The barrier count we
    // contributed is reset by recover_locked once all ranks unwind.
    lock.unlock();
    obs::counter_add("fault.timeouts", 1);
    state_->abort_all();
    throw TimeoutError("barrier timed out after " + std::to_string(budget_s) + " s");
  }
  if (state_->aborted.load(std::memory_order_relaxed)) throw ClusterAborted{};
}

void Comm::comm_alltoall_counts(std::span<const std::size_t> send,
                                std::span<std::size_t> recv) {
  // The count exchange is its own blocking phase of alltoallv, so it is
  // its own fault site — a loss here wedges the payload phase.
  fault_point("cluster.alltoallv.counts", rank_);
  const int p = size();
  for (int r = 0; r < p; ++r) {
    if (r == rank_) {
      recv[static_cast<std::size_t>(r)] = send[static_cast<std::size_t>(r)];
    } else {
      send_bytes(r, std::as_bytes(send.subspan(static_cast<std::size_t>(r), 1)),
                 kCollectiveTag - 1);
    }
  }
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    recv_bytes(r,
               std::as_writable_bytes(recv.subspan(static_cast<std::size_t>(r), 1)),
               kCollectiveTag - 1);
  }
}

double Comm::allreduce_max(double local) {
  std::vector<double> all(static_cast<std::size_t>(size()));
  allgather<double>(std::span<const double>(&local, 1), std::span<double>(all));
  return *std::max_element(all.begin(), all.end());
}

namespace {

/// The sync() watchdog fires only after this many timeout budgets pass
/// with no job completing: individual recv/barrier waits are already
/// bounded by one budget each, so the watchdog is the backstop for a
/// rank wedged *outside* any instrumented wait.
constexpr double kSyncGraceFactor = 4.0;

/// True when `e` is (exactly) the secondary ClusterAborted wake-up —
/// used to prefer reporting a root-cause error from a peer rank.
bool is_cluster_aborted(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const ClusterAborted&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

ClusterSession::ClusterSession(int ranks, int omp_threads_per_rank) : ranks_(ranks) {
  if (ranks < 1) throw std::invalid_argument("ClusterSession: need at least one rank");
  if (omp_threads_per_rank <= 0) {
    omp_threads_per_rank_ = std::max(1, max_threads() / ranks);
  } else {
    omp_threads_per_rank_ = omp_threads_per_rank;
  }
  state_ = std::make_unique<detail::SharedState>(ranks_);
  // Deadlines default off; QC_CLUSTER_TIMEOUT_S arms them process-wide
  // (e.g. for a whole CI leg) without touching call sites.
  if (const char* env = std::getenv("QC_CLUSTER_TIMEOUT_S")) {
    const double v = std::atof(env);
    if (v > 0) state_->timeout_s.store(v, std::memory_order_relaxed);
  }
  threads_.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) threads_.emplace_back([this, r] { worker(r); });
}

void ClusterSession::set_timeout(double seconds) noexcept {
  state_->timeout_s.store(seconds > 0 ? seconds : 0, std::memory_order_relaxed);
}

double ClusterSession::timeout() const noexcept {
  return state_->timeout_s.load(std::memory_order_relaxed);
}

ClusterSession::~ClusterSession() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ClusterSession::worker(int rank) {
  // Each rank gets its own OpenMP thread budget so nested parallel
  // kernels divide rather than oversubscribe the machine.
  omp_set_num_threads(omp_threads_per_rank_);
  detail::session_worker = this;
  obs::set_thread_lane(rank + 1);  // lane 0 = driver, rank r = lane r+1
  Comm comm(rank, state_.get());
  for (std::size_t j = 0;; ++j) {
    bool skip = false;
    const Job* job = nullptr;
    // Park time is measured unconditionally (one steady-clock read) and
    // emitted *retroactively* once a job arrives and a tracer is known
    // to be installed — a parked rank never holds an open span, so a
    // Tracer can be collected and destroyed while ranks are parked.
    WallTimer park;
    {
      std::unique_lock lock(mutex_);
      // Jobs run in lockstep: job j starts only once job j-1 finished
      // on every rank AND any failure recovery ran — the barrier and
      // mailboxes are shared, so overlapping jobs would corrupt them.
      cv_.wait(lock, [&] { return completed_ == j && (j < jobs_.size() || stop_); });
      if (j >= jobs_.size()) return;  // stop requested, queue drained
      // Element pointer taken under the lock: deque push_back (a
      // concurrent submit) never invalidates it.
      job = &jobs_[j];
      skip = failed_batch_;
    }
    obs::emit_interval("cluster.park", park.seconds(), 0);
    std::exception_ptr err;
    if (!skip) {
      // Parented under the span the *submitting* thread had open — the
      // cross-thread stitch that nests rank work under its engine op.
      obs::Span job_span("cluster.job", job->parent);
      job_span.arg("job", static_cast<double>(j));
      job_span.arg("rank", static_cast<double>(rank));
      try {
        fault_point("cluster.job", rank);
        (job->fn)(comm);
      } catch (...) {
        err = std::current_exception();
        state_->abort_all();
      }
    }
    {
      std::lock_guard lock(mutex_);
      if (err != nullptr) {
        failed_batch_ = true;
        const bool aborted = is_cluster_aborted(err);
        if (error_ == nullptr || (error_is_aborted_ && !aborted)) {
          error_ = err;
          error_is_aborted_ = aborted;
        }
      }
      if (++done_in_current_ == ranks_) {
        done_in_current_ = 0;
        if (state_->aborted.load(std::memory_order_relaxed)) recover_locked();
        ++completed_;
        cv_.notify_all();
      }
    }
  }
}

void ClusterSession::recover_locked() {
  // All ranks are parked between jobs here, so no mailbox or barrier
  // lock is held by anyone; reset the substrate for the next job.
  state_->aborted.store(false, std::memory_order_seq_cst);
  for (auto& b : state_->boxes) {
    std::lock_guard lock(b.mutex);
    b.queue.clear();
  }
  {
    std::lock_guard lock(state_->barrier.mutex);
    state_->barrier.waiting = 0;
    ++state_->barrier.generation;
  }
}

void ClusterSession::submit(std::function<void(Comm&)> fn) {
  if (!fn) throw std::invalid_argument("ClusterSession::submit: null job");
  // Only *self*-submission is rejected: a job running a different,
  // inner session (the pre-session Cluster-inside-Cluster pattern)
  // stays legal.
  if (detail::session_worker == this)
    throw std::logic_error(
        "ClusterSession::submit: nested submit from inside a job (every rank "
        "would enqueue a copy)");
  {
    std::lock_guard lock(mutex_);
    // Capture the submitter's open span so every rank's job span nests
    // under the engine op (or whatever) that submitted the work.
    jobs_.push_back(Job{std::move(fn), obs::current_span()});
  }
  cv_.notify_all();
}

void ClusterSession::sync() {
  if (detail::session_worker == this)
    throw std::logic_error("ClusterSession::sync: called from inside this session's job");
  std::unique_lock lock(mutex_);
  const double budget_s = state_->timeout_s.load(std::memory_order_relaxed);
  bool watchdog_fired = false;
  if (budget_s <= 0) {
    cv_.wait(lock, [&] { return completed_ == jobs_.size(); });
  } else {
    // Watchdog: when no job completes for a whole grace window, assume
    // a wedged rank and abort the cluster — peers blocked in
    // communication wake with ClusterAborted, the job finishes on every
    // rank, the session recovers, and the batch fails with
    // TimeoutError. A rank hung in pure compute still cannot be
    // preempted (same as MPI); its eventual return completes the wait.
    const auto grace = std::chrono::duration<double>(budget_s * kSyncGraceFactor);
    std::size_t last_progress = completed_;
    while (completed_ != jobs_.size()) {
      const bool moved = cv_.wait_for(lock, grace, [&] {
        return completed_ == jobs_.size() || completed_ != last_progress;
      });
      if (moved) {
        last_progress = completed_;
        continue;
      }
      if (!watchdog_fired) {
        watchdog_fired = true;
        obs::instant("cluster.timeout");
        obs::counter_add("fault.timeouts", 1);
        // Lock order stays mutex_ -> mailbox/barrier, matching the
        // recover_locked path; workers never hold both in reverse.
        state_->abort_all();
      }
    }
  }
  failed_batch_ = false;  // re-arm: jobs submitted after sync() run again
  const std::exception_ptr e = error_;
  const bool only_aborted = error_is_aborted_;
  error_ = nullptr;
  error_is_aborted_ = true;
  lock.unlock();
  // The watchdog's own abort shows up in the ranks as ClusterAborted;
  // surface the root cause (the wedge) as a TimeoutError unless a rank
  // recorded a more specific error of its own.
  if (watchdog_fired && (e == nullptr || only_aborted))
    throw TimeoutError("sync watchdog: no job progress within " +
                       std::to_string(budget_s * kSyncGraceFactor) +
                       " s; cluster aborted");
  if (e != nullptr) std::rethrow_exception(e);
}

void ClusterSession::run(const std::function<void(Comm&)>& fn) {
  submit(fn);
  sync();
}

}  // namespace qc::cluster
