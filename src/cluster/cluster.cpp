#include "cluster/cluster.hpp"

#include <omp.h>

#include <algorithm>
#include <exception>
#include <thread>

#include "common/parallel.hpp"

namespace qc::cluster {

namespace detail {

void SharedState::abort_all() {
  aborted.store(true, std::memory_order_seq_cst);
  for (auto& b : boxes) {
    std::lock_guard lock(b.mutex);
    b.cv.notify_all();
  }
  {
    std::lock_guard lock(barrier.mutex);
    barrier.cv.notify_all();
  }
}

}  // namespace detail

void Comm::send_bytes(int dst, std::span<const std::byte> data, int tag) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("send: bad destination rank");
  if (state_->aborted.load(std::memory_order_relaxed)) throw ClusterAborted{};
  detail::Mailbox& box = state_->box(rank_, dst);
  detail::Message msg;
  msg.tag = tag;
  msg.data.assign(data.begin(), data.end());
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

void Comm::recv_bytes(int src, std::span<std::byte> data, int tag) {
  if (src < 0 || src >= size()) throw std::invalid_argument("recv: bad source rank");
  detail::Mailbox& box = state_->box(src, rank_);
  std::unique_lock lock(box.mutex);
  for (;;) {
    if (state_->aborted.load(std::memory_order_relaxed)) throw ClusterAborted{};
    // First message with a matching tag; same-tag messages stay ordered.
    const auto it = std::find_if(box.queue.begin(), box.queue.end(),
                                 [tag](const detail::Message& m) { return m.tag == tag; });
    if (it != box.queue.end()) {
      if (it->data.size() != data.size())
        throw std::runtime_error("recv: payload size mismatch");
      std::copy(it->data.begin(), it->data.end(), data.begin());
      box.queue.erase(it);
      return;
    }
    box.cv.wait(lock);
  }
}

void Comm::barrier() {
  detail::Barrier& b = state_->barrier;
  std::unique_lock lock(b.mutex);
  if (state_->aborted.load(std::memory_order_relaxed)) throw ClusterAborted{};
  const std::uint64_t gen = b.generation;
  if (++b.waiting == state_->size) {
    b.waiting = 0;
    ++b.generation;
    b.cv.notify_all();
    return;
  }
  b.cv.wait(lock, [&] {
    return b.generation != gen || state_->aborted.load(std::memory_order_relaxed);
  });
  if (state_->aborted.load(std::memory_order_relaxed)) throw ClusterAborted{};
}

void Comm::comm_alltoall_counts(std::span<const std::size_t> send,
                                std::span<std::size_t> recv) {
  const int p = size();
  for (int r = 0; r < p; ++r) {
    if (r == rank_) {
      recv[static_cast<std::size_t>(r)] = send[static_cast<std::size_t>(r)];
    } else {
      send_bytes(r, std::as_bytes(send.subspan(static_cast<std::size_t>(r), 1)),
                 kCollectiveTag - 1);
    }
  }
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    recv_bytes(r,
               std::as_writable_bytes(recv.subspan(static_cast<std::size_t>(r), 1)),
               kCollectiveTag - 1);
  }
}

double Comm::allreduce_max(double local) {
  std::vector<double> all(static_cast<std::size_t>(size()));
  allgather<double>(std::span<const double>(&local, 1), std::span<double>(all));
  return *std::max_element(all.begin(), all.end());
}

Cluster::Cluster(int ranks, int omp_threads_per_rank) : ranks_(ranks) {
  if (ranks < 1) throw std::invalid_argument("Cluster: need at least one rank");
  if (omp_threads_per_rank <= 0) {
    omp_threads_per_rank_ = std::max(1, max_threads() / ranks);
  } else {
    omp_threads_per_rank_ = omp_threads_per_rank;
  }
}

void Cluster::run(const std::function<void(Comm&)>& fn) {
  detail::SharedState state(ranks_);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks_));

  for (int r = 0; r < ranks_; ++r) {
    threads.emplace_back([&, r] {
      // Each rank gets its own OpenMP thread budget so nested parallel
      // kernels divide rather than oversubscribe the machine.
      omp_set_num_threads(omp_threads_per_rank_);
      Comm comm(r, &state);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        state.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (const auto& e : errors) {
    if (e == nullptr) continue;
    // Prefer reporting a root-cause error over a secondary ClusterAborted.
    try {
      std::rethrow_exception(e);
    } catch (const ClusterAborted&) {
      continue;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  for (const auto& e : errors)
    if (e != nullptr) std::rethrow_exception(e);
}

}  // namespace qc::cluster
