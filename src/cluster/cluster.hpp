// In-process message-passing runtime (the distributed-memory substrate).
//
// The paper runs its distributed experiments with MPI on the Stampede
// supercomputer. This machine has neither MPI nor an interconnect, so the
// library ships its own rank-based SPMD runtime: a Cluster spawns R rank
// threads, each owning a private memory partition, that communicate
// exclusively through Comm — point-to-point eager sends with tag
// matching, plus the collectives the distributed state vector and
// distributed FFT need (barrier, broadcast, allgather, alltoall,
// allreduce). The API deliberately mirrors MPI naming (per the LLNL MPI
// guide) so the algorithms read like their MPI originals and could be
// ported back to real MPI by swapping this header.
//
// Semantics:
//  * send() is buffered (eager): it copies the payload and returns; no
//    rendezvous, so symmetric exchange patterns cannot deadlock.
//  * recv() blocks until a message from `src` with a matching tag
//    arrives; messages between a fixed (src, dst) pair are delivered in
//    send order (MPI's non-overtaking rule).
//  * If any rank throws, the cluster aborts: every blocked call wakes and
//    throws ClusterAborted, and Cluster::run rethrows the original error.
//  * Blocking operations honor a per-session deadline (set_timeout /
//    QC_CLUSTER_TIMEOUT_S): a recv or barrier that waits past the
//    budget aborts the cluster and throws TimeoutError, and sync()
//    runs a watchdog that converts a wedge (no job completing within a
//    grace multiple of the budget) into the same clean abort. A rank
//    hung in pure *compute* cannot be preempted — the same limitation
//    real MPI has — but every communication wait is bounded.
//  * Named fault-injection sites (cluster.send/recv/sendrecv/barrier/
//    broadcast/allgather/alltoall/alltoallv[.counts]/job) call
//    cluster::fault_point, so a deterministic FaultInjector (fault.hpp)
//    can exercise all of the above on demand — every communication
//    entry point is a place the campaign can fail (enforced by
//    tools/qc_analyze rule fault-site).
//
// The runtime is persistent: a ClusterSession spawns its rank threads
// once and parks them on a job queue. submit() enqueues a closure that
// every rank executes against rank-local state that *survives between
// submissions* — the distributed state vector stays resident across a
// whole Engine::run instead of being scattered and gathered per op.
// Cluster is a thin synchronous wrapper (run = submit + sync) kept for
// the one-shot callers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "cluster/fault.hpp"
#include "obs/trace.hpp"

namespace qc::cluster {

/// Thrown in blocked ranks when a peer rank failed. The secondary
/// wake-up, never the root cause — and not retryable on its own (the
/// peer's root-cause error decides whether the batch can be retried).
struct ClusterAborted : ClusterError {
  ClusterAborted() : ClusterError("cluster aborted by peer failure") {}
};

namespace detail {

struct Message {
  int tag = 0;
  std::vector<std::byte> data;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct Barrier {
  std::mutex mutex;
  std::condition_variable cv;
  int waiting = 0;
  std::uint64_t generation = 0;
};

struct SharedState {
  explicit SharedState(int size)
      : size(size), boxes(static_cast<std::size_t>(size) * size) {}

  int size;
  std::vector<Mailbox> boxes;  // index: src * size + dst
  Barrier barrier;
  std::atomic<bool> aborted{false};
  /// Deadline budget for blocking operations, seconds; <= 0 disables.
  std::atomic<double> timeout_s{0};

  Mailbox& box(int src, int dst) {
    return boxes[static_cast<std::size_t>(src) * size + dst];
  }

  void abort_all();
};

/// Identifies the session (if any) whose worker thread we are on, so
/// submit()/sync() can reject calls made from inside a job — a job runs
/// on *every* rank, so a nested submit would enqueue once per rank and
/// a nested sync would deadlock against the job-completion barrier.
inline thread_local const void* session_worker = nullptr;

}  // namespace detail

/// Per-rank communicator handle. Valid only inside Cluster::run.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return state_->size; }

  /// Eager (buffered) send of raw bytes.
  void send_bytes(int dst, std::span<const std::byte> data, int tag = 0);

  /// Blocking receive; the payload must be exactly data.size() bytes.
  void recv_bytes(int src, std::span<std::byte> data, int tag = 0);

  template <typename T>
  void send(int dst, std::span<const T> data, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, std::as_bytes(data), tag);
  }

  template <typename T>
  void recv(int src, std::span<T> data, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(src, std::as_writable_bytes(data), tag);
  }

  /// Symmetric exchange with `peer` (send our buffer, receive theirs).
  /// Safe under eager sends regardless of ordering.
  template <typename T>
  void sendrecv(int peer, std::span<const T> out, std::span<T> in, int tag = 0) {
    fault_point("cluster.sendrecv", rank_);
    send(peer, out, tag);
    recv(peer, in, tag);
  }

  /// All ranks block until every rank has arrived.
  void barrier();

  /// Root's buffer is copied to all ranks.
  template <typename T>
  void broadcast(int root, std::span<T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point("cluster.broadcast", rank_);
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r)
        if (r != root) send<T>(r, data, kCollectiveTag);
    } else {
      recv<T>(root, data, kCollectiveTag);
    }
  }

  /// Each rank contributes `block` elements; every rank receives all
  /// blocks concatenated in rank order (size() * block elements).
  template <typename T>
  void allgather(std::span<const T> local, std::span<T> all) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t block = local.size();
    if (all.size() != block * static_cast<std::size_t>(size()))
      throw std::invalid_argument("allgather: output size mismatch");
    fault_point("cluster.allgather", rank_);
    for (int r = 0; r < size(); ++r)
      if (r != rank_) send<T>(r, local, kCollectiveTag);
    std::memcpy(all.data() + static_cast<std::size_t>(rank_) * block, local.data(),
                block * sizeof(T));
    for (int r = 0; r < size(); ++r)
      if (r != rank_) recv<T>(r, all.subspan(static_cast<std::size_t>(r) * block, block),
                              kCollectiveTag);
  }

  /// Block-transpose exchange: block j of `out` goes to rank j; block r
  /// of `in` comes from rank r. All blocks have out.size()/size()
  /// elements. This is the communication primitive of the distributed
  /// FFT's three transposition steps (paper Eq. 5 charges 3 all-to-alls).
  template <typename T>
  void alltoall(std::span<const T> out, std::span<T> in) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = size();
    if (out.size() != in.size() || out.size() % static_cast<std::size_t>(p) != 0)
      throw std::invalid_argument("alltoall: sizes must match and divide rank count");
    fault_point("cluster.alltoall", rank_);
    const std::size_t block = out.size() / p;
    for (int r = 0; r < p; ++r)
      if (r != rank_) send<T>(r, out.subspan(static_cast<std::size_t>(r) * block, block),
                              kCollectiveTag);
    // The explicit bound check keeps GCC's -Wstringop-overflow inliner
    // analysis from inventing a huge copy size on impossible paths.
    if (block > 0 && block <= out.size()) {
      std::memcpy(in.data() + static_cast<std::size_t>(rank_) * block,
                  out.data() + static_cast<std::size_t>(rank_) * block, block * sizeof(T));
    }
    for (int r = 0; r < p; ++r)
      if (r != rank_) recv<T>(r, in.subspan(static_cast<std::size_t>(r) * block, block),
                              kCollectiveTag);
  }

  /// Variable-size all-to-all: rank r's `sendbuf` holds size() blocks
  /// back to back, block j of send_counts[j] elements destined for rank
  /// j. Returns the concatenation of the blocks received (in rank
  /// order) and writes their sizes to `recv_counts`. This is the
  /// exchange primitive of distributed classical-function emulation,
  /// where each rank's amplitudes scatter to arbitrary destination
  /// ranks (paper §4.2: "one global permutation of the (distributed)
  /// state vector").
  template <typename T>
  std::vector<T> alltoallv(std::span<const T> sendbuf,
                           std::span<const std::size_t> send_counts,
                           std::vector<std::size_t>& recv_counts) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = size();
    if (send_counts.size() != static_cast<std::size_t>(p))
      throw std::invalid_argument("alltoallv: need one count per rank");
    std::size_t total = 0;
    for (const std::size_t c : send_counts) total += c;
    if (sendbuf.size() != total)
      throw std::invalid_argument("alltoallv: counts do not match buffer size");
    fault_point("cluster.alltoallv", rank_);

    // Exchange counts with a fixed-size alltoall, then the payloads.
    recv_counts.assign(static_cast<std::size_t>(p), 0);
    comm_alltoall_counts(send_counts, recv_counts);
    std::size_t offset = 0;
    for (int r = 0; r < p; ++r) {
      const std::size_t c = send_counts[static_cast<std::size_t>(r)];
      if (r != rank_ && c > 0) send<T>(r, sendbuf.subspan(offset, c), kCollectiveTag);
      offset += c;
    }
    std::size_t recv_total = 0;
    for (const std::size_t c : recv_counts) recv_total += c;
    std::vector<T> out(recv_total);
    std::size_t in_offset = 0;
    std::size_t self_offset = 0;
    for (int r = 0; r < rank_; ++r) self_offset += send_counts[static_cast<std::size_t>(r)];
    for (int r = 0; r < p; ++r) {
      const std::size_t c = recv_counts[static_cast<std::size_t>(r)];
      if (c > 0) {
        if (r == rank_) {
          std::memcpy(out.data() + in_offset, sendbuf.data() + self_offset, c * sizeof(T));
        } else {
          recv<T>(r, std::span<T>(out.data() + in_offset, c), kCollectiveTag);
        }
      }
      in_offset += c;
    }
    return out;
  }

  /// Sum of `local` over all ranks, available on all ranks.
  template <typename T>
  T allreduce_sum(T local) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> all(static_cast<std::size_t>(size()));
    allgather<T>(std::span<const T>(&local, 1), std::span<T>(all));
    T acc{};
    for (const T& v : all) acc = acc + v;
    return acc;
  }

  /// Maximum of `local` over all ranks.
  double allreduce_max(double local);

 private:
  friend class Cluster;
  friend class ClusterSession;
  Comm(int rank, detail::SharedState* state) : rank_(rank), state_(state) {}

  /// Count exchange for alltoallv (non-template helper).
  void comm_alltoall_counts(std::span<const std::size_t> send,
                            std::span<std::size_t> recv);

  static constexpr int kCollectiveTag = -7771;

  int rank_;
  detail::SharedState* state_;
};

/// Persistent SPMD execution context: owns the rank threads and the
/// shared mailbox state for its whole lifetime. Rank threads are
/// spawned once by the constructor and park on a job queue; each
/// submitted closure runs on every rank, in submission order, with one
/// full-stop completion barrier between jobs (the barrier and mailboxes
/// are shared, so jobs must not overlap). Rank-local state captured by
/// the closures — e.g. each rank's DistStateVector chunk — therefore
/// survives between submissions, which is what lets the distributed
/// backend keep the state resident across a whole Engine::run.
///
/// Failure semantics, preserved from the one-shot Cluster::run: a rank
/// throwing inside job k aborts the cluster (peers blocked in
/// communication wake with ClusterAborted and finish job k), the jobs
/// queued behind k in the same batch are skipped, and sync() rethrows
/// the root-cause error. The session then *recovers*: the abort flag is
/// cleared, mailboxes drained and the barrier reset before the next
/// job starts, so a session is usable again after sync() — though any
/// rank-local user state is the caller's to rebuild.
class ClusterSession {
 public:
  /// `ranks` >= 1. `omp_threads_per_rank` <= 0 divides the machine's
  /// OpenMP threads evenly among ranks (so nested kernels do not
  /// oversubscribe); pass 1 for strictly serial ranks. Spawns the rank
  /// threads immediately; they park until the first submit().
  explicit ClusterSession(int ranks, int omp_threads_per_rank = 0);

  /// Joins the parked rank threads (after draining queued jobs).
  ~ClusterSession();

  ClusterSession(const ClusterSession&) = delete;
  ClusterSession& operator=(const ClusterSession&) = delete;

  [[nodiscard]] int ranks() const noexcept { return ranks_; }

  /// Deadline budget for blocking operations (recv, barrier) and the
  /// sync() watchdog, in seconds; <= 0 disables deadlines (the
  /// default, unless QC_CLUSTER_TIMEOUT_S set one at construction). A
  /// wait that exceeds the budget aborts the cluster and throws
  /// TimeoutError on the waiting rank; the session recovers exactly as
  /// for any other abort.
  void set_timeout(double seconds) noexcept;
  [[nodiscard]] double timeout() const noexcept;

  /// Enqueues `fn` to run on every rank; returns immediately. Throws
  /// std::logic_error when called from inside a job (nested submit).
  void submit(std::function<void(Comm&)> fn);

  /// Blocks until every submitted job completed on every rank, then
  /// rethrows the first root-cause failure of the batch (if any) and
  /// re-arms the session for further submissions.
  void sync();

  /// One-shot convenience: submit(fn) + sync().
  void run(const std::function<void(Comm&)>& fn);

 private:
  /// One queued closure plus the trace context it was submitted under:
  /// the submitting thread's open span becomes the parent of every
  /// rank's "cluster.job" span, stitching rank-lane work under the
  /// engine op that caused it.
  struct Job {
    std::function<void(Comm&)> fn;
    obs::span_id parent = 0;
  };

  void worker(int rank);
  /// Post-failure cleanup (session mutex held, all ranks parked): clear
  /// the abort flag, drain every mailbox, reset the barrier.
  void recover_locked();

  int ranks_;
  int omp_threads_per_rank_;
  std::unique_ptr<detail::SharedState> state_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable cv_;
  /// Append-only job log. A deque, not a vector: workers invoke
  /// jobs_[j] outside the mutex, and deque push_back never invalidates
  /// references to existing elements while a concurrent submit() grows
  /// the log.
  std::deque<Job> jobs_;
  std::size_t completed_ = 0;  ///< Jobs finished (all ranks + recovery).
  int done_in_current_ = 0;    ///< Ranks done with job `completed_`.
  bool failed_batch_ = false;  ///< Skip queued jobs until the next sync().
  bool stop_ = false;
  std::exception_ptr error_;   ///< First root-cause error of the batch.
  bool error_is_aborted_ = true;
};

/// One-shot synchronous view of the runtime, kept for callers that want
/// the original scoped semantics. Backed by a persistent ClusterSession,
/// so repeated run() calls reuse the same parked rank threads.
class Cluster {
 public:
  explicit Cluster(int ranks, int omp_threads_per_rank = 0)
      : session_(ranks, omp_threads_per_rank) {}

  /// Executes fn on every rank concurrently; returns when all complete.
  /// Rethrows the first rank failure (after aborting the others).
  void run(const std::function<void(Comm&)>& fn) { session_.run(fn); }

  [[nodiscard]] int ranks() const noexcept { return session_.ranks(); }

  /// The persistent session behind this cluster.
  [[nodiscard]] ClusterSession& session() noexcept { return session_; }

 private:
  ClusterSession session_;
};

}  // namespace qc::cluster
