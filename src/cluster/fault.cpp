#include "cluster/fault.hpp"

#include <chrono>
#include <thread>

#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace qc::cluster {

bool retryable_fault(const std::exception_ptr& e) noexcept {
  if (e == nullptr) return false;
  try {
    std::rethrow_exception(e);
  } catch (const ClusterError& c) {
    return c.retryable();
  } catch (...) {
    return false;
  }
}

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

const char* action_name(FaultAction a) {
  switch (a) {
    case FaultAction::Delay: return "delay";
    case FaultAction::Drop: return "drop";
    case FaultAction::Abort: return "abort";
    case FaultAction::AllocFail: return "allocfail";
  }
  return "?";
}

FaultAction action_from(std::string_view name) {
  if (name == "delay") return FaultAction::Delay;
  if (name == "drop") return FaultAction::Drop;
  if (name == "abort") return FaultAction::Abort;
  if (name == "allocfail") return FaultAction::AllocFail;
  throw std::invalid_argument("fault spec: unknown action '" + std::string(name) +
                              "' (want delay|drop|abort|allocfail)");
}

std::uint64_t parse_u64(std::string_view token, const char* what) {
  if (token.empty()) throw std::invalid_argument(std::string("fault spec: empty ") + what);
  std::uint64_t v = 0;
  for (const char c : token) {
    if (c < '0' || c > '9')
      throw std::invalid_argument(std::string("fault spec: bad ") + what + " '" +
                                  std::string(token) + "'");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// One `key=value` list (`seed=3,count=2`) into a map; values are u64.
std::map<std::string, std::uint64_t> parse_kv(std::string_view text) {
  std::map<std::string, std::uint64_t> kv;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view item = text.substr(pos, end - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      throw std::invalid_argument("fault spec: expected key=value, got '" +
                                  std::string(item) + "'");
    kv[std::string(item.substr(0, eq))] = parse_u64(item.substr(eq + 1), "value");
    pos = end + 1;
  }
  return kv;
}

FaultRule parse_rule(std::string_view entry) {
  const std::size_t at = entry.find('@');
  if (at == std::string_view::npos)
    throw std::invalid_argument("fault spec: entry '" + std::string(entry) +
                                "' lacks action@site");
  FaultRule rule;
  rule.action = action_from(entry.substr(0, at));
  std::string_view rest = entry.substr(at + 1);
  const std::size_t site_end = rest.find_first_of("#/:");
  rule.site = std::string(rest.substr(0, site_end));
  if (rule.site.empty()) throw std::invalid_argument("fault spec: empty site name");
  rest = site_end == std::string_view::npos ? std::string_view{} : rest.substr(site_end);
  while (!rest.empty()) {
    const char kind = rest.front();
    rest.remove_prefix(1);
    std::size_t end = rest.find_first_of("#/:");
    if (end == std::string_view::npos) end = rest.size();
    const std::string_view token = rest.substr(0, end);
    switch (kind) {
      case '#': rule.hit = parse_u64(token, "hit index"); break;
      case '/': rule.rank = static_cast<int>(parse_u64(token, "rank")); break;
      case ':': rule.delay_s = static_cast<double>(parse_u64(token, "delay_ms")) / 1e3; break;
      default: throw std::invalid_argument("fault spec: bad suffix");
    }
    rest = rest.substr(end);
  }
  return rule;
}

}  // namespace

FaultInjector FaultInjector::parse(std::string_view spec) {
  constexpr std::string_view kSeeded = "seeded:";
  if (spec.substr(0, kSeeded.size()) == kSeeded) {
    const auto kv = parse_kv(spec.substr(kSeeded.size()));
    const auto get = [&kv](const char* key, std::uint64_t fallback) {
      const auto it = kv.find(key);
      return it == kv.end() ? fallback : it->second;
    };
    return seeded(get("seed", 1), get("count", 3), static_cast<int>(get("ranks", 4)),
                  static_cast<double>(get("delay_ms", 200)) / 1e3);
  }
  std::vector<FaultRule> rules;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(pos, end - pos);
    if (!entry.empty()) rules.push_back(parse_rule(entry));
    pos = end + 1;
  }
  if (rules.empty()) throw std::invalid_argument("fault spec: no rules");
  return FaultInjector(std::move(rules));
}

FaultInjector FaultInjector::seeded(std::uint64_t seed, std::size_t count, int ranks,
                                    double delay_s) {
  const std::vector<std::string>& sites = known_fault_sites();
  Rng rng(seed);
  std::vector<FaultRule> rules;
  rules.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FaultRule rule;
    rule.site = sites[rng.uniform_u64(sites.size())];
    // Alloc-fail only makes sense where something is allocated; keep
    // the other sites on the transport-shaped actions.
    if (rule.site == "dist.alloc") {
      rule.action = FaultAction::AllocFail;
    } else {
      constexpr FaultAction kActions[] = {FaultAction::Delay, FaultAction::Drop,
                                          FaultAction::Abort};
      rule.action = kActions[rng.uniform_u64(3)];
    }
    rule.hit = rng.uniform_u64(4);
    // rank -1 (any) with probability 1/(ranks+1).
    rule.rank = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(ranks) + 1)) - 1;
    rule.delay_s = delay_s;
    rules.push_back(std::move(rule));
  }
  return FaultInjector(std::move(rules));
}

std::optional<FaultAction> FaultInjector::visit(std::string_view site, int rank,
                                                double* delay_s) {
  std::lock_guard lock(mutex_);
  const std::uint64_t count = visits_[{std::string(site), rank}]++;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.site != site) continue;
    if (rule.rank != -1 && rule.rank != rank) continue;
    if (rule.hit != count) continue;
    // Disruptive rules (abort/drop/alloc-fail) are one-shot: the first
    // rank to reach `hit` fires them, then they are spent. Without
    // this, an any-rank abort re-fires on every recovery attempt — the
    // peers it aborted never reached their own visit, so their pending
    // hit lands on the *retry's* jobs, and one scheduled fault cascades
    // into ranks-many faults that exhaust any fixed retry budget.
    // Delay rules never disturb peer progress, so they stay per-rank.
    if (rule.action != FaultAction::Delay && rule_fired_[i] > 0) continue;
    ++rule_fired_[i];
    ++fired_;
    if (delay_s != nullptr) *delay_s = rule.delay_s;
    return rule.action;
  }
  return std::nullopt;
}

std::uint64_t FaultInjector::fired() const noexcept {
  std::lock_guard lock(mutex_);
  return fired_;
}

void FaultInjector::reset() {
  std::lock_guard lock(mutex_);
  visits_.clear();
  rule_fired_.assign(rules_.size(), 0);
  fired_ = 0;
}

std::string FaultInjector::to_string() const {
  std::string out;
  for (const FaultRule& rule : rules_) {
    if (!out.empty()) out += ';';
    out += action_name(rule.action);
    out += '@';
    out += rule.site;
    out += '#';
    out += std::to_string(rule.hit);
    if (rule.rank != -1) {
      out += '/';
      out += std::to_string(rule.rank);
    }
    if (rule.action == FaultAction::Delay) {
      out += ':';
      out += std::to_string(static_cast<std::uint64_t>(rule.delay_s * 1e3));
    }
  }
  return out;
}

FaultInjector* current_injector() noexcept {
  return g_injector.load(std::memory_order_acquire);
}

void set_current_injector(FaultInjector* inj) noexcept {
  g_injector.store(inj, std::memory_order_release);
}

bool fault_point(std::string_view site, int rank, bool can_drop) {
  // Acquire pairs with set_current_injector's release store: a rank
  // thread that sees the pointer must also see the injector's rules.
  FaultInjector* inj = g_injector.load(std::memory_order_acquire);
  if (inj == nullptr) return false;
  double delay_s = 0;
  const std::optional<FaultAction> action = inj->visit(site, rank, &delay_s);
  if (!action.has_value()) return false;
  obs::counter_add("fault.injected", 1);
  const std::string where = std::string(site) + " (rank " + std::to_string(rank) + ")";
  switch (*action) {
    case FaultAction::Delay:
      obs::instant("fault.delay");
      std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
      return false;
    case FaultAction::Drop:
      if (can_drop) {
        obs::counter_add("fault.dropped", 1);
        return true;
      }
      throw InjectedFault("injected fault (drop escalated to abort) at " + where);
    case FaultAction::Abort:
      throw InjectedFault("injected fault at " + where);
    case FaultAction::AllocFail:
      throw AllocFailure("injected allocation failure at " + where);
  }
  return false;
}

const std::vector<std::string>& known_fault_sites() {
  static const std::vector<std::string> kSites = {
      "cluster.send",      "cluster.recv",      "cluster.sendrecv",
      "cluster.barrier",   "cluster.broadcast", "cluster.allgather",
      "cluster.alltoall",  "cluster.alltoallv", "cluster.alltoallv.counts",
      "cluster.job",       "dist.alloc",        "dist.exchange",
      "dist.exchange_pass", "dist.scatter",     "dist.gather",
  };
  return kSites;
}

}  // namespace qc::cluster
