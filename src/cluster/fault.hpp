// Failure model of the cluster runtime: typed errors + deterministic
// fault injection.
//
// The paper's headline runs are multi-node jobs where a hung rank or a
// failed allocation costs hours; before the in-process mailboxes grow a
// real transport (ROADMAP item 1), the failure *contract* has to exist
// and be testable. This header defines both halves:
//
//  * the error taxonomy every cluster-facing layer throws and catches —
//    ClusterError with a retryable() bit, so the distributed backend can
//    decide between replay-from-checkpoint (timeouts, injected faults,
//    allocation failures) and giving up (logic errors, invariant
//    violations);
//
//  * a deterministic FaultInjector: a schedule of rules, each naming an
//    instrumented *site* ("cluster.send", "dist.exchange", ...), a rank,
//    a hit index and an action (delay / drop / abort / alloc-fail).
//    Sites call fault_point(site, rank); the injector counts visits per
//    (site, rank) and fires a rule exactly when its hit index comes up,
//    so a schedule reproduces the same fault at the same point of the
//    same run regardless of thread interleaving.
//
// Installation mirrors obs::Tracer: a process-global pointer behind an
// atomic, RAII-scoped by ScopedFaultInjector. With no injector installed
// a fault_point is one acquire atomic load and a branch (the acquire
// pairs with the installer's release store, so rank threads that see
// the pointer see the rules; free on x86, cheap everywhere) — cheap
// enough to stay compiled into the communication hot paths (the
// Release bench contract is <3% with injection compiled in but
// disabled).
//
// Sites instrumented today (new cluster code must name its own — see
// CONTRIBUTING):
//
//   cluster.send        eager send (drop-capable: message is lost)
//   cluster.recv        blocking receive
//   cluster.sendrecv    symmetric exchange entry
//   cluster.barrier     barrier entry
//   cluster.broadcast   broadcast entry (root fan-out / leaf receive)
//   cluster.allgather   allgather entry (all-to-all block exchange)
//   cluster.alltoall    block-transpose alltoall entry
//   cluster.alltoallv   variable alltoallv entry (payload phase)
//   cluster.alltoallv.counts  alltoallv count-exchange phase
//   cluster.job         rank worker, before the job closure runs
//   dist.alloc          DistStateVector chunk allocation
//   dist.exchange       combine-with-paired-chunk exchange
//   dist.exchange_pass  global-swap chunk permutation pass
//   dist.scatter        resident scatter job (DistBackend)
//   dist.gather         resident gather job (DistBackend)
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qc::cluster {

/// Base of every cluster-runtime failure. retryable() answers the one
/// question recovery code asks: is the session expected to be healthy
/// again after abort + recovery, so that replaying from a checkpoint
/// can succeed?
struct ClusterError : std::runtime_error {
  using std::runtime_error::runtime_error;
  [[nodiscard]] virtual bool retryable() const noexcept { return false; }
};

/// A deadline expired on a blocking operation (recv, barrier, or the
/// sync() watchdog). The thrower has already aborted the cluster, so
/// peers unwind and the session recovers; the operation itself may be
/// retried from a checkpoint.
struct TimeoutError : ClusterError {
  explicit TimeoutError(const std::string& what) : ClusterError(what) {}
  [[nodiscard]] bool retryable() const noexcept override { return true; }
};

/// A FaultInjector rule fired with action Abort (or Drop at a site that
/// cannot drop). Stands in for any transient transport-level failure.
struct InjectedFault : ClusterError {
  explicit InjectedFault(const std::string& what) : ClusterError(what) {}
  [[nodiscard]] bool retryable() const noexcept override { return true; }
};

/// A (real or injected) allocation failure while building rank-local
/// state. Retryable: the next attempt may allocate less or elsewhere.
struct AllocFailure : ClusterError {
  explicit AllocFailure(const std::string& what) : ClusterError(what) {}
  [[nodiscard]] bool retryable() const noexcept override { return true; }
};

/// True when `e` holds a retryable ClusterError.
[[nodiscard]] bool retryable_fault(const std::exception_ptr& e) noexcept;

/// What an injected rule does when it fires at a site.
enum class FaultAction {
  Delay,      ///< sleep delay_s, then proceed (models a slow link/rank)
  Drop,       ///< send sites: silently lose the message (peer times out)
  Abort,      ///< throw InjectedFault (models a transport error)
  AllocFail,  ///< throw AllocFailure (models a failed allocation)
};

/// One scheduled fault: fires when the (site, rank) visit counter
/// reaches `hit` (0 = the first visit). rank == -1 matches any rank.
/// Disruptive rules (abort/drop/alloc-fail) are one-shot — the first
/// rank to reach `hit` fires them and spends them, so one scheduled
/// fault is one fault event even when its abort keeps peers from ever
/// reaching their own hit. Delay rules fire once *per rank*, at each
/// rank's own hit-th visit (a delayed rank never disturbs the others).
struct FaultRule {
  std::string site;
  int rank = -1;
  std::uint64_t hit = 0;
  FaultAction action = FaultAction::Abort;
  double delay_s = 0.05;  ///< Delay action only.
};

/// Deterministic fault schedule. Visit counters are per (site, rank),
/// so which rule fires — and when — depends only on each rank's own
/// visit sequence, never on cross-rank interleaving.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(std::vector<FaultRule> rules)
      : rules_(std::move(rules)), rule_fired_(rules_.size(), 0) {}

  /// Movable so parse()/seeded() results can be stored (the mutex is
  /// not moved; the source must not be visited concurrently).
  FaultInjector(FaultInjector&& other) noexcept
      : rules_(std::move(other.rules_)),
        visits_(std::move(other.visits_)),
        rule_fired_(std::move(other.rule_fired_)),
        fired_(other.fired_) {}
  FaultInjector& operator=(FaultInjector&&) = delete;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Parses a schedule spec (used by RunOptions.fault_spec and the
  /// QC_FAULTS environment variable). Grammar, entries ';'-separated:
  ///
  ///   action@site[#hit][/rank][:delay_ms]
  ///
  ///   abort@cluster.barrier#2          3rd barrier visit, every rank
  ///   drop@cluster.send#1/0            rank 0's 2nd send is lost
  ///   delay@cluster.job#0/1:250        rank 1's 1st job delayed 250 ms
  ///   allocfail@dist.alloc             first chunk allocation fails
  ///
  /// or the whole spec may be `seeded:seed=S,count=N[,ranks=R]
  /// [,delay_ms=D]` for a seeded random schedule (see seeded()).
  /// Throws std::invalid_argument on a malformed spec.
  static FaultInjector parse(std::string_view spec);

  /// Seeded random schedule of `count` rules drawn over the instrumented
  /// site list: same seed, same schedule, forever. `ranks` bounds the
  /// rank draw (each rule targets one rank in [0, ranks) or all ranks).
  static FaultInjector seeded(std::uint64_t seed, std::size_t count, int ranks = 4,
                              double delay_s = 0.2);

  [[nodiscard]] const std::vector<FaultRule>& rules() const noexcept { return rules_; }

  /// Bumps the (site, rank) visit counter; returns the action of the
  /// rule that fires at this visit, if any (writes its delay to
  /// *delay_s for Delay). Thread-safe.
  [[nodiscard]] std::optional<FaultAction> visit(std::string_view site, int rank,
                                                 double* delay_s);

  /// Total rules fired so far (a schedule asserts it actually hit).
  [[nodiscard]] std::uint64_t fired() const noexcept;

  /// Zeroes the visit counters: the same schedule replays against a
  /// fresh run.
  void reset();

  /// Round-trips through the parse() grammar (one entry per rule).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<FaultRule> rules_;
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, int>, std::uint64_t> visits_;
  std::vector<std::uint64_t> rule_fired_;  ///< Per-rule fire counts (one-shot gate).
  std::uint64_t fired_ = 0;
};

/// The process-wide installed injector (nullptr = injection disabled).
/// One acquire atomic load — the only cost a fault_point pays when
/// injection is off.
[[nodiscard]] FaultInjector* current_injector() noexcept;

/// Installs/clears the current injector (nullptr disables injection).
void set_current_injector(FaultInjector* inj) noexcept;

/// Installs `inj` for the scope, restoring the previous injector on
/// exit (mirrors obs::ScopedTracer).
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* inj) : prev_(current_injector()) {
    set_current_injector(inj);
  }
  ~ScopedFaultInjector() { set_current_injector(prev_); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* prev_;
};

/// The instrumentation hook every named site calls. No-op (one acquire
/// atomic load) without an installed injector. When a rule fires:
/// Delay sleeps and proceeds; Abort throws InjectedFault; AllocFail
/// throws AllocFailure; Drop returns true when `can_drop` (the send
/// path discards the message — the receiver's deadline converts the
/// loss into a TimeoutError) and otherwise escalates to InjectedFault.
/// Fired rules bump the obs counter "fault.injected".
bool fault_point(std::string_view site, int rank, bool can_drop = false);

/// The sites instrumented in this repo, for seeded schedules and docs.
[[nodiscard]] const std::vector<std::string>& known_fault_sites();

}  // namespace qc::cluster
