// Cache-line / SIMD aligned storage for amplitude arrays.
//
// State vectors are the dominant allocation of the library (up to many
// GiB); we allocate them 64-byte aligned so AVX loads never split cache
// lines and so OpenMP threads partition on cache-line boundaries.
#pragma once

#include <cstdlib>
#include <limits>
#include <new>
#include <type_traits>
#include <vector>

namespace qc {

inline constexpr std::size_t kAlignment = 64;

/// Widest SIMD register the kernels may load from amplitude storage:
/// one AVX-512 zmm register (64 bytes). The runtime-dispatched kernels
/// (src/sim/kernels_dispatch.hpp) issue full-width loads directly into
/// StateVector memory, so allocator alignment must stay a multiple of
/// the register width — otherwise an "aligned" vector could still split
/// a vector load across cache lines (or fault under aligned moves).
inline constexpr std::size_t kMaxSimdBytes = 64;
static_assert(kAlignment % kMaxSimdBytes == 0,
              "kAlignment must cover one full AVX-512 register so "
              "runtime-dispatched kernels can use full-width loads");

/// Minimal standard allocator returning 64-byte-aligned memory.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc{};
    void* p = std::aligned_alloc(kAlignment, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }

 private:
  static std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }
};

/// Vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// AlignedAllocator variant whose value-construction is a no-op: sizing a
/// vector leaves the memory untouched instead of running the serial
/// zero-fill pass. The owner must initialize every element itself — in a
/// parallel loop, so the first touch of each page happens on the thread
/// (and hence the NUMA node) that will work on it. Used by StateVector,
/// whose amplitudes are the library's dominant allocation.
template <typename T>
struct UninitAlignedAllocator : AlignedAllocator<T> {
  using value_type = T;

  UninitAlignedAllocator() noexcept = default;
  template <typename U>
  UninitAlignedAllocator(const UninitAlignedAllocator<U>&) noexcept {}

  /// Value-construction requests (vector(n), resize(n)) become no-ops;
  /// construction with arguments falls back to allocator_traits'
  /// placement new because this overload is then not viable.
  template <typename U>
  void construct(U*) noexcept {
    static_assert(std::is_trivially_copyable_v<U> && std::is_trivially_destructible_v<U>,
                  "no-op construction is only sound for trivial element types");
  }

  template <typename U>
  bool operator==(const UninitAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Aligned vector that skips element initialization on sizing (see
/// UninitAlignedAllocator — every element must be written before read).
template <typename T>
using uninit_aligned_vector = std::vector<T, UninitAlignedAllocator<T>>;

}  // namespace qc
