// Cache-line / SIMD aligned storage for amplitude arrays.
//
// State vectors are the dominant allocation of the library (up to many
// GiB); we allocate them 64-byte aligned so AVX loads never split cache
// lines and so OpenMP threads partition on cache-line boundaries.
#pragma once

#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace qc {

inline constexpr std::size_t kAlignment = 64;

/// Minimal standard allocator returning 64-byte-aligned memory.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc{};
    void* p = std::aligned_alloc(kAlignment, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }

 private:
  static std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }
};

/// Vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace qc
