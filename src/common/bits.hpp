// Bit manipulation of computational-basis indices.
//
// A basis state of an n-qubit register is an index i in [0, 2^n); qubit k
// is bit k of i. Gate kernels and the classical-function permutation
// kernel are built from these primitives.
#pragma once

#include <bit>
#include <cassert>
#include <span>

#include "common/types.hpp"

namespace qc::bits {

/// The single-bit mask 2^k, computed at index_t width. This is the
/// sanctioned spelling for "one shifted by a runtime amount": a raw
/// `1 << k` shifts at int width, which is undefined behaviour the moment
/// k reaches 31 — and silently wrong long before an amplitude index
/// needs it. tools/lint.py rejects raw `1 <<` on variable shift counts.
constexpr index_t bit(qubit_t k) noexcept {
  assert(k < 64);
  return index_t{1} << k;
}

/// Mask with the low `k` bits set, for k in [0, 64] (k given as int
/// because rank/node counts are ints throughout the cluster layer).
constexpr index_t mask(int k) noexcept {
  assert(k >= 0 && k <= 64);
  return k >= 64 ? ~index_t{0} : (index_t{1} << k) - 1;
}

/// Value of bit `k` of `i` (0 or 1).
constexpr index_t get(index_t i, qubit_t k) noexcept { return (i >> k) & index_t{1}; }

/// `i` with bit `k` set.
constexpr index_t set(index_t i, qubit_t k) noexcept { return i | (index_t{1} << k); }

/// `i` with bit `k` cleared.
constexpr index_t clear(index_t i, qubit_t k) noexcept { return i & ~(index_t{1} << k); }

/// `i` with bit `k` flipped.
constexpr index_t flip(index_t i, qubit_t k) noexcept { return i ^ (index_t{1} << k); }

/// True if bit `k` of `i` is 1.
constexpr bool test(index_t i, qubit_t k) noexcept { return get(i, k) != 0; }

/// Mask with the low `k` bits set.
constexpr index_t low_mask(qubit_t k) noexcept {
  return k >= 64 ? ~index_t{0} : (index_t{1} << k) - 1;
}

/// Inserts a 0 bit at position `k`, shifting bits >= k up by one.
/// Enumerating j in [0, 2^{n-1}) and calling insert_bit(j, k) visits every
/// index of an n-qubit space whose bit k is 0 — the canonical loop of a
/// single-qubit gate kernel.
constexpr index_t insert_bit(index_t i, qubit_t k) noexcept {
  const index_t lo = i & low_mask(k);
  const index_t hi = (i & ~low_mask(k)) << 1;
  return hi | lo;
}

/// Inserts two 0 bits at positions k1 < k2 (positions in the *result*).
constexpr index_t insert_two_bits(index_t i, qubit_t k1, qubit_t k2) noexcept {
  assert(k1 < k2);
  return insert_bit(insert_bit(i, k1), k2);
}

/// Removes bit `k` from `i`, shifting bits above k down by one.
constexpr index_t remove_bit(index_t i, qubit_t k) noexcept {
  const index_t lo = i & low_mask(k);
  const index_t hi = (i >> 1) & ~low_mask(k);
  return hi | lo;
}

/// Extracts the `width`-bit field starting at bit `offset`.
constexpr index_t field(index_t i, qubit_t offset, qubit_t width) noexcept {
  return (i >> offset) & low_mask(width);
}

/// Replaces the `width`-bit field at `offset` with `value` (must fit).
constexpr index_t with_field(index_t i, qubit_t offset, qubit_t width, index_t value) noexcept {
  assert((value & ~low_mask(width)) == 0);
  return (i & ~(low_mask(width) << offset)) | (value << offset);
}

/// Reverses the low `n` bits of `i` (used by FFT bit-reversal reordering
/// and by the QFT's implicit output order).
constexpr index_t reverse(index_t i, qubit_t n) noexcept {
  index_t r = 0;
  for (qubit_t k = 0; k < n; ++k) r |= get(i, k) << (n - 1 - k);
  return r;
}

/// Number of set bits.
constexpr int popcount(index_t i) noexcept { return std::popcount(i); }

/// Parity (0/1) of the number of set bits in `i & mask` — the sign bit of
/// a Pauli-Z string expectation.
constexpr int parity(index_t i, index_t mask) noexcept { return std::popcount(i & mask) & 1; }

/// floor(log2(i)) for i > 0.
constexpr qubit_t log2_floor(index_t i) noexcept {
  return static_cast<qubit_t>(63 - std::countl_zero(i));
}

/// True if `i` is a power of two.
constexpr bool is_pow2(index_t i) noexcept { return i != 0 && (i & (i - 1)) == 0; }

/// True if all qubits in `qs` are distinct and below `n`.
inline bool all_distinct_below(std::span<const qubit_t> qs, qubit_t n) {
  index_t seen = 0;
  for (qubit_t q : qs) {
    if (q >= n) return false;
    if (test(seen, q)) return false;
    seen = set(seen, q);
  }
  return true;
}

}  // namespace qc::bits
