// Debug invariant macros — the repo's assert with an error you can test.
//
// QC_CHECK(cond) / QC_CHECK_MSG(cond, msg) verify internal invariants
// that are too expensive (or too paranoid) for Release hot paths:
// norm preservation at engine segment boundaries, plan well-formedness
// before execution, schedule bookkeeping. They are compiled out in
// Release builds (zero cost, condition not evaluated) and enabled in
// Debug and sanitizer builds:
//
//  * default: on iff NDEBUG is not defined (i.e. Debug builds);
//  * the QC_SANITIZE CMake option defines QC_ENABLE_CHECKS=1 so the
//    sanitizer CI matrix runs with invariants armed even in optimized
//    builds;
//  * -DQC_ENABLE_CHECKS=0/1 overrides either way.
//
// A failed check throws qc::CheckError (a std::logic_error carrying
// expression, file and line) rather than aborting: invariant failures
// unwind through ClusterSession's abort/recovery path like any other
// rank error, and negative tests can assert that a deliberately
// corrupted structure is caught.
#pragma once

#include <stdexcept>
#include <string>

namespace qc {

/// Thrown by QC_CHECK / QC_CHECK_MSG on a violated invariant.
struct CheckError : std::logic_error {
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::string what = "QC_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  throw CheckError(what);
}

}  // namespace detail
}  // namespace qc

#ifndef QC_ENABLE_CHECKS
#ifdef NDEBUG
#define QC_ENABLE_CHECKS 0
#else
#define QC_ENABLE_CHECKS 1
#endif
#endif

#if QC_ENABLE_CHECKS
/// Throws qc::CheckError when `cond` is false. Compiled out (condition
/// unevaluated) when QC_ENABLE_CHECKS is 0.
#define QC_CHECK(cond)                                                        \
  do {                                                                        \
    if (!(cond)) ::qc::detail::check_failed(#cond, __FILE__, __LINE__, {});   \
  } while (false)
/// QC_CHECK with a context message; `msg` may be any expression
/// convertible to std::string and is only evaluated on failure.
#define QC_CHECK_MSG(cond, msg)                                               \
  do {                                                                        \
    if (!(cond)) ::qc::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
#else
#define QC_CHECK(cond) ((void)0)
#define QC_CHECK_MSG(cond, msg) ((void)0)
#endif
