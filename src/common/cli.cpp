#include "common/cli.hpp"

#include <cstdlib>

namespace qc {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself an option;
    // otherwise a bare boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.contains(name); }

std::optional<std::string> Cli::get(const std::string& name) const {
  if (const auto it = options_.find(name); it != options_.end()) return it->second;
  return std::nullopt;
}

long Cli::get_int(const std::string& name, long fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtol(v->c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

std::string Cli::get_string(const std::string& name, std::string fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return *v;
}

}  // namespace qc
