// Minimal command-line option parser for the bench and example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag`. Every
// bench accepts sizing options (e.g. --max-qubits, --full) so the paper's
// sweeps can be reproduced at laptop scale by default and scaled up on
// bigger machines.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace qc {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if `--name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name` or nullopt.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& name, std::string fallback) const;

  /// Positional (non-option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace qc
