#include "common/parallel.hpp"

#include <omp.h>

namespace qc {

int max_threads() noexcept { return omp_get_max_threads(); }

int thread_id() noexcept { return omp_get_thread_num(); }

}  // namespace qc
