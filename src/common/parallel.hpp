// Thin OpenMP helpers.
//
// Kernels use plain `#pragma omp parallel for` directly (per the OpenMP
// Examples guide); this header centralizes runtime queries and the one
// pattern pragmas cannot express cleanly: conditional parallelism below a
// grain-size threshold (parallelizing a 64-amplitude gate costs more in
// fork/join than it saves).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace qc {

/// Number of OpenMP threads a parallel region will use.
int max_threads() noexcept;

/// Current thread id inside a parallel region (0 outside).
int thread_id() noexcept;

/// True if `work_items` is large enough to amortize an OpenMP fork.
/// 2^12 amplitudes (~64 KiB) is the measured break-even on this class of
/// kernel; below it the serial path wins.
constexpr bool worth_parallelizing(index_t work_items) noexcept {
  return work_items >= (index_t{1} << 12);
}

}  // namespace qc
