#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace qc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  // All-zero state is the one invalid state; splitmix64 cannot produce
  // four zeros from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) noexcept {
  // Lemire-style rejection: draw until the value falls in the largest
  // multiple of `bound` representable in 64 bits.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound + 1) % bound;
  std::uint64_t v = next_u64();
  while (v > limit) v = next_u64();
  return v % bound;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

Rng Rng::fork(std::uint64_t i) const noexcept {
  // Mix the stream id into a copy of the state through splitmix64 so
  // forked streams are decorrelated from each other and the parent.
  std::uint64_t x = s_[0] ^ (0xA0761D6478BD642Full * (i + 1));
  Rng child(0);
  child.s_[0] = splitmix64(x) ^ s_[1];
  child.s_[1] = splitmix64(x) ^ s_[2];
  child.s_[2] = splitmix64(x) ^ s_[3];
  child.s_[3] = splitmix64(x) ^ s_[0];
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0) child.s_[0] = 1;
  return child;
}

}  // namespace qc
