// Deterministic, fast pseudo-random number generation.
//
// xoshiro256** (Blackman & Vigna) — small state, passes BigCrush, and
// cheap enough to use inside parallel state-vector initialization. The
// library never uses std::rand; all randomness flows through Rng so tests
// are reproducible from a seed.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace qc {

class Rng {
 public:
  /// Seeds the four 64-bit words from `seed` via splitmix64 (the
  /// recommended seeding procedure for xoshiro generators).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (one value per call; caches spare).
  double normal() noexcept;

  /// Complex amplitude with independent standard-normal re/im parts —
  /// normalizing a vector of these yields a Haar-ish random state.
  complex_t normal_complex() noexcept { return {normal(), normal()}; }

  /// Jump-ahead equivalent: derive an unrelated stream for worker `i`.
  Rng fork(std::uint64_t i) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace qc
