#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace qc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::fputs(to_string(title).c_str(), stdout);
  std::fflush(stdout);
}

std::string sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace qc
