// Wall-clock timing for benches and the crossover heuristics.
#pragma once

#include <chrono>

namespace qc {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() noexcept { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Times a callable once and returns elapsed seconds.
template <typename F>
double time_once(F&& f) {
  WallTimer t;
  f();
  return t.seconds();
}

/// Runs `f` repeatedly until `min_seconds` of wall time or `max_reps`
/// repetitions have elapsed, returning the *per-repetition* time. Used by
/// the figure benches for the tiny problem sizes (the paper's Fig. 1
/// starts at microseconds per operation).
template <typename F>
double time_per_rep(F&& f, double min_seconds = 0.2, int max_reps = 1 << 20) {
  WallTimer total;
  int reps = 0;
  do {
    f();
    ++reps;
  } while (total.seconds() < min_seconds && reps < max_reps);
  return total.seconds() / reps;
}

}  // namespace qc
