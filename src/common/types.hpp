// Fundamental scalar and index types shared by every qemu-hpc module.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qc {

/// Complex amplitude type used throughout the library. The paper stores
/// wave functions as vectors of double-precision complex numbers
/// (16 bytes per entry); we follow that convention. The execution stack
/// is additionally templated on the underlying real scalar (see
/// basic_complex_t) so runs can opt into fp32 amplitudes, which halve
/// bytes per sweep and buy one extra qubit per node at equal memory.
using complex_t = std::complex<double>;

/// Complex amplitude over an arbitrary real scalar T in {float, double}.
template <typename T>
using basic_complex_t = std::complex<T>;

/// Amplitude precision of a run. fp64 is the default and the reference;
/// fp32 is an opt-in for bandwidth-bound sweeps whose accumulated error
/// stays within the documented bound (see README "Kernels & precision").
enum class Precision : std::uint8_t {
  kF64 = 0,  ///< std::complex<double> amplitudes (16 bytes).
  kF32 = 1,  ///< std::complex<float> amplitudes (8 bytes).
};

/// Bits of the real scalar backing each amplitude component.
constexpr int precision_bits(Precision p) noexcept {
  return p == Precision::kF32 ? 32 : 64;
}

/// Bytes of one complex amplitude at the given precision.
constexpr std::size_t amplitude_bytes(Precision p) noexcept {
  return p == Precision::kF32 ? sizeof(std::complex<float>)
                              : sizeof(std::complex<double>);
}

/// Human-readable name ("fp64" / "fp32").
constexpr const char* precision_name(Precision p) noexcept {
  return p == Precision::kF32 ? "fp32" : "fp64";
}

/// Index into a 2^n-dimensional state vector. 64 bits supports n <= 63.
using index_t = std::uint64_t;

/// Qubit label. Qubit 0 is the least-significant bit of a basis index.
using qubit_t = std::uint32_t;

/// Number of amplitudes of an n-qubit register.
constexpr index_t dim(qubit_t n) noexcept { return index_t{1} << n; }

/// The imaginary unit as a complex_t.
inline constexpr complex_t kI{0.0, 1.0};

/// Machine-precision-scale tolerance used by validation helpers.
inline constexpr double kTol = 1e-12;

}  // namespace qc
