// Fundamental scalar and index types shared by every qemu-hpc module.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qc {

/// Complex amplitude type used throughout the library. The paper stores
/// wave functions as vectors of double-precision complex numbers
/// (16 bytes per entry); we follow that convention.
using complex_t = std::complex<double>;

/// Index into a 2^n-dimensional state vector. 64 bits supports n <= 63.
using index_t = std::uint64_t;

/// Qubit label. Qubit 0 is the least-significant bit of a basis index.
using qubit_t = std::uint32_t;

/// Number of amplitudes of an n-qubit register.
constexpr index_t dim(qubit_t n) noexcept { return index_t{1} << n; }

/// The imaginary unit as a complex_t.
inline constexpr complex_t kI{0.0, 1.0};

/// Machine-precision-scale tolerance used by validation helpers.
inline constexpr double kTol = 1e-12;

}  // namespace qc
