#include "emu/dist_emu.hpp"

#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"

namespace qc::emu {

namespace {

/// One routed amplitude: destination global index + value.
struct Parcel {
  index_t index;
  complex_t amplitude;
};
static_assert(std::is_trivially_copyable_v<Parcel>);

void check_widths(RegRef a, RegRef b, RegRef c) {
  if (a.width != b.width || a.width != c.width)
    throw std::invalid_argument("DistEmulator: register widths must match");
}

}  // namespace

template <typename T>
double expectation_z_string(const sim::BasicDistStateVector<T>& dsv, index_t mask) {
  const auto a = dsv.local();
  const index_t base = static_cast<index_t>(dsv.comm().rank()) << dsv.local_qubits();
  double acc = 0;
#pragma omp parallel for reduction(+ : acc) if (worth_parallelizing(a.size()))
  for (index_t i = 0; i < a.size(); ++i) {
    const double re = a[i].real(), im = a[i].imag();
    const double p = re * re + im * im;
    acc += bits::parity(base | i, mask) ? -p : p;
  }
  return dsv.comm().allreduce_sum(acc);
}

template double expectation_z_string<float>(const sim::BasicDistStateVector<float>&, index_t);
template double expectation_z_string<double>(const sim::BasicDistStateVector<double>&,
                                             index_t);

void DistEmulator::route(const std::function<index_t(index_t)>& f, bool partial) {
  sim::DistStateVector& dsv = *dsv_;
  cluster::Comm& comm = dsv.comm();
  const int p = comm.size();
  const index_t chunk = dim(dsv.local_qubits());
  const index_t base = static_cast<index_t>(comm.rank()) * chunk;
  const auto local = dsv.local();
  const index_t total = chunk * static_cast<index_t>(p);

  // Bucket outgoing amplitudes by destination rank (two passes: count,
  // then fill — keeps the send buffer contiguous in rank order).
  std::vector<std::size_t> counts(static_cast<std::size_t>(p), 0);
  for (index_t i = 0; i < chunk; ++i) {
    if (partial && local[i] == complex_t{}) continue;
    const index_t j = f(base + i);
    if (j >= total) throw std::invalid_argument("DistEmulator: map leaves index space");
    ++counts[static_cast<std::size_t>(j / chunk)];
  }
  std::vector<std::size_t> offsets(static_cast<std::size_t>(p), 0);
  for (int r = 1; r < p; ++r)
    offsets[static_cast<std::size_t>(r)] =
        offsets[static_cast<std::size_t>(r - 1)] + counts[static_cast<std::size_t>(r - 1)];
  std::vector<Parcel> sendbuf(offsets.back() + counts.back());
  {
    std::vector<std::size_t> cursor = offsets;
    for (index_t i = 0; i < chunk; ++i) {
      if (partial && local[i] == complex_t{}) continue;
      const index_t j = f(base + i);
      sendbuf[cursor[static_cast<std::size_t>(j / chunk)]++] = {j, local[i]};
    }
  }

  // One all-to-all, then scatter into the (zeroed) local chunk.
  std::vector<std::size_t> recv_counts;
  const std::vector<Parcel> received =
      comm.alltoallv<Parcel>(sendbuf, counts, recv_counts);
  std::fill(local.begin(), local.end(), complex_t{});
  bool collision = false;
  for (const Parcel& parcel : received) {
    const index_t i = parcel.index - base;
    if (partial && local[i] != complex_t{}) collision = true;
    local[i] = parcel.amplitude;
  }
  if (collision)
    throw std::logic_error("DistEmulator: partial map not injective on support");
}

void DistEmulator::apply_permutation(const std::function<index_t(index_t)>& f) {
  route(f, /*partial=*/false);
}

void DistEmulator::apply_partial_map(const std::function<index_t(index_t)>& f) {
  route(f, /*partial=*/true);
}

void DistEmulator::multiply(RegRef a, RegRef b, RegRef c) {
  check_widths(a, b, c);
  const index_t mask = bits::low_mask(c.width);
  route(
      [=](index_t i) {
        const index_t va = reg_value(i, a);
        const index_t vb = reg_value(i, b);
        const index_t vc = reg_value(i, c);
        return reg_replace(i, c, (vc + va * vb) & mask);
      },
      /*partial=*/false);
}

void DistEmulator::divide(RegRef a, RegRef b, RegRef c) {
  check_widths(a, b, c);
  const index_t mask = bits::low_mask(c.width);
  route(
      [=](index_t i) {
        const index_t va = reg_value(i, a);
        const index_t vb = reg_value(i, b);
        const index_t q = vb == 0 ? mask : va / vb;
        const index_t r = vb == 0 ? va : va % vb;
        index_t j = reg_replace(i, a, r);
        return reg_replace(j, c, (reg_value(i, c) + q) & mask);
      },
      /*partial=*/true);
}

void DistEmulator::add(RegRef a, RegRef b) {
  if (a.width != b.width) throw std::invalid_argument("DistEmulator::add: widths");
  const index_t mask = bits::low_mask(b.width);
  route(
      [=](index_t i) {
        return reg_replace(i, b, (reg_value(i, b) + reg_value(i, a)) & mask);
      },
      /*partial=*/false);
}

fft::DistFftStats DistEmulator::qft() {
  return fft::dist_fft(dsv_->comm(), dsv_->local(), dsv_->qubits(), fft::Sign::Positive,
                       fft::Norm::Unitary);
}

fft::DistFftStats DistEmulator::inverse_qft() {
  return fft::dist_fft(dsv_->comm(), dsv_->local(), dsv_->qubits(), fft::Sign::Negative,
                       fft::Norm::Unitary);
}

}  // namespace qc::emu
