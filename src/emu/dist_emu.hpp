// Distributed emulation — the shortcuts of §3 applied to a state vector
// that no longer fits one node.
//
// The paper's §4.2 makes the point directly: arithmetic on numbers with
// more qubits than one node can hold "can only be dealt with by
// emulating the classical function, which effectively performs one
// global permutation of the (distributed) state vector". DistEmulator
// implements that global permutation: each rank evaluates f on its local
// basis indices, buckets the (destination index, amplitude) pairs by
// owner rank, exchanges them with one variable-size all-to-all, and
// scatters the received amplitudes — one communication phase regardless
// of the function's complexity. The distributed QFT shortcut delegates
// to the six-step distributed FFT (Eq. 5's three all-to-alls).
//
// Every method is collective over the wrapped state's communicator and
// runs equally well inside a one-shot Cluster::run or as a submitted
// job of a persistent cluster::ClusterSession — the emulator holds no
// communication state of its own, so a resident DistStateVector can be
// operated on across many session jobs (see the resident-session
// tests in tests/test_dist_emu.cpp).
#pragma once

#include <functional>

#include "emu/emulator.hpp"
#include "fft/dist_fft.hpp"
#include "sim/dist_sv.hpp"

namespace qc::emu {

/// Collective <psi| Z_mask |psi> over a distributed state (§3.4 at
/// cluster scale): each rank reduces its chunk with the global basis
/// index (rank bits included in the parity), one scalar allreduce.
/// Accumulates in double at either amplitude precision; instantiated
/// for float/double.
template <typename T>
double expectation_z_string(const sim::BasicDistStateVector<T>& dsv, index_t mask);

class DistEmulator {
 public:
  /// Wraps (does not own) a distributed state vector. All methods are
  /// collective: every rank of the underlying communicator must call
  /// them in the same order.
  explicit DistEmulator(sim::DistStateVector& dsv) : dsv_(&dsv) {}

  [[nodiscard]] sim::DistStateVector& state() noexcept { return *dsv_; }

  /// Applies a bijection f of global basis indices — emulated classical
  /// arithmetic at cluster scale. One all-to-all exchange.
  void apply_permutation(const std::function<index_t(index_t)>& f);

  /// Partial-map variant (division-style): only nonzero amplitudes are
  /// routed; a collision on any rank aborts the cluster with
  /// std::logic_error.
  void apply_partial_map(const std::function<index_t(index_t)>& f);

  /// c += a*b (mod 2^w) across the distributed register (§3.1 at scale).
  void multiply(RegRef a, RegRef b, RegRef c);

  /// (a, b, 0) -> (a mod b, b, a div b); b = 0 convention as Emulator.
  void divide(RegRef a, RegRef b, RegRef c);

  /// b += a (mod 2^w).
  void add(RegRef a, RegRef b);

  /// Whole-register QFT (paper Eq. 4) as a distributed FFT; returns the
  /// communication/computation breakdown (3 transposes, Eq. 5).
  fft::DistFftStats qft();
  fft::DistFftStats inverse_qft();

 private:
  void route(const std::function<index_t(index_t)>& f, bool partial);

  sim::DistStateVector* dsv_;
};

}  // namespace qc::emu
