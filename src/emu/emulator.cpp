#include "emu/emulator.hpp"

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"

namespace qc::emu {

void check_regs(std::initializer_list<RegRef> regs, qubit_t n) {
  index_t seen = 0;
  for (const RegRef& r : regs) {
    if (r.width == 0 || r.offset + r.width > n)
      throw std::invalid_argument("check_regs: register out of range");
    const index_t mask = bits::low_mask(r.width) << r.offset;
    if (seen & mask) throw std::invalid_argument("check_regs: registers overlap");
    seen |= mask;
  }
}

void Emulator::ensure_scratch() {
  if (scratch_.size() != sv_->size()) scratch_.assign(sv_->size(), complex_t{});
}

void Emulator::apply_permutation(const std::function<index_t(index_t)>& f) {
  ensure_scratch();
  sim::kernels::apply_permutation(sv_->amplitudes(), {scratch_.data(), scratch_.size()}, f);
}

void Emulator::apply_partial_map(const std::function<index_t(index_t)>& f) {
  ensure_scratch();
  const auto a = sv_->amplitudes();
  const index_t size = a.size();
  std::fill(scratch_.begin(), scratch_.end(), complex_t{});
  // Scatter only the support. A collision means two nonzero amplitudes
  // target the same index — the map is not injective where it matters.
  std::atomic<bool> collision{false};
#pragma omp parallel for if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    if (a[i] == complex_t{}) continue;
    const index_t j = f(i);
    if (scratch_[j] != complex_t{}) collision.store(true, std::memory_order_relaxed);
    scratch_[j] = a[i];
  }
  if (collision.load()) throw std::logic_error("apply_partial_map: non-injective on support");
#pragma omp parallel for if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) a[i] = scratch_[i];
}

void Emulator::multiply(RegRef a, RegRef b, RegRef c) {
  if (a.width != b.width || a.width != c.width)
    throw std::invalid_argument("multiply: widths must match");
  check_regs({a, b, c}, sv_->qubits());
  const index_t mask = bits::low_mask(c.width);
  ensure_scratch();
  // (va, vb, vc) -> (va, vb, vc + va*vb mod 2^w) is bijective for all vc.
  sim::kernels::apply_permutation(sv_->amplitudes(), {scratch_.data(), scratch_.size()},
                             [=](index_t i) {
                               const index_t va = reg_value(i, a);
                               const index_t vb = reg_value(i, b);
                               const index_t vc = reg_value(i, c);
                               return reg_replace(i, c, (vc + va * vb) & mask);
                             });
}

void Emulator::divide(RegRef a, RegRef b, RegRef c) {
  if (a.width != b.width || a.width != c.width)
    throw std::invalid_argument("divide: widths must match");
  check_regs({a, b, c}, sv_->qubits());
  const index_t mask = bits::low_mask(c.width);
  apply_partial_map([=](index_t i) {
    const index_t va = reg_value(i, a);
    const index_t vb = reg_value(i, b);
    // b = 0 convention matching the restoring divider: every trial
    // subtraction "succeeds", so q = 2^w - 1 and the remainder is a.
    const index_t q = vb == 0 ? mask : va / vb;
    const index_t r = vb == 0 ? va : va % vb;
    const index_t vc = reg_value(i, c);
    index_t j = reg_replace(i, a, r);
    j = reg_replace(j, c, (vc + q) & mask);
    return j;
  });
}

void Emulator::add(RegRef a, RegRef b) {
  if (a.width != b.width) throw std::invalid_argument("add: widths must match");
  check_regs({a, b}, sv_->qubits());
  const index_t mask = bits::low_mask(b.width);
  apply_permutation([=](index_t i) {
    return reg_replace(i, b, (reg_value(i, b) + reg_value(i, a)) & mask);
  });
}

void Emulator::add_constant(RegRef r, index_t k) {
  check_regs({r}, sv_->qubits());
  const index_t mask = bits::low_mask(r.width);
  apply_permutation(
      [=](index_t i) { return reg_replace(i, r, (reg_value(i, r) + k) & mask); });
}

void Emulator::apply_function(RegRef in, RegRef out,
                              const std::function<index_t(index_t)>& f) {
  check_regs({in, out}, sv_->qubits());
  const index_t mask = bits::low_mask(out.width);
  apply_permutation([&, mask](index_t i) {
    const index_t v = f(reg_value(i, in)) & mask;
    return reg_replace(i, out, (reg_value(i, out) + v) & mask);
  });
}

void Emulator::multiply_mod(RegRef x, index_t k, index_t modulus) {
  check_regs({x}, sv_->qubits());
  if (modulus == 0 || modulus > dim(x.width))
    throw std::invalid_argument("multiply_mod: modulus out of range");
  if (std::gcd(k % modulus, modulus) != 1)
    throw std::invalid_argument("multiply_mod: k not invertible mod modulus");
  apply_permutation([=](index_t i) {
    const index_t v = reg_value(i, x);
    if (v >= modulus) return i;  // outside the modular domain: identity
    return reg_replace(i, x, (v * k) % modulus);
  });
}

void Emulator::apply_phase_function(const std::function<double(index_t)>& phase) {
  sim::kernels::apply_phase_oracle(sv_->amplitudes(), [&](index_t i) {
    return std::polar(1.0, phase(i));
  });
}

void Emulator::apply_phase_oracle(const std::function<bool(index_t)>& marked) {
  sim::kernels::apply_phase_oracle(sv_->amplitudes(), [&](index_t i) {
    return marked(i) ? complex_t{-1.0} : complex_t{1.0};
  });
}

void Emulator::qft() { qft_impl({0, sv_->qubits()}, fft::Sign::Positive); }

void Emulator::inverse_qft() { qft_impl({0, sv_->qubits()}, fft::Sign::Negative); }

void Emulator::qft(RegRef r) { qft_impl(r, fft::Sign::Positive); }

void Emulator::inverse_qft(RegRef r) { qft_impl(r, fft::Sign::Negative); }

void Emulator::qft_impl(RegRef r, fft::Sign sign) {
  check_regs({r}, sv_->qubits());
  if (plan_ == nullptr || plan_->qubits() != r.width || plan_->sign() != sign)
    plan_ = std::make_unique<fft::FftPlan>(r.width, sign);

  const auto a = sv_->amplitudes();
  if (r.width == sv_->qubits()) {
    // Whole register: the paper's Eq. (4) is literally one FFT call,
    // ping-ponged through our scratch (Stockham — no bit reversal).
    ensure_scratch();
    plan_->execute(a, {scratch_.data(), scratch_.size()}, fft::Norm::Unitary);
    return;
  }
  // Sub-register: batched strided FFT. For every assignment of the high
  // and low spectator bits, gather the 2^w register slice, transform,
  // scatter back. Batches are independent -> parallel across batches.
  const qubit_t n = sv_->qubits();
  const index_t reg_size = dim(r.width);
  const index_t lo_count = index_t{1} << r.offset;
  const index_t hi_count = index_t{1} << (n - r.offset - r.width);
  const index_t batches = lo_count * hi_count;
  const double unit = 1.0 / std::sqrt(static_cast<double>(reg_size));
#pragma omp parallel
  {
    aligned_vector<complex_t> tmp(reg_size);
#pragma omp for schedule(static)
    for (index_t bidx = 0; bidx < batches; ++bidx) {
      const index_t hi = bidx / lo_count;
      const index_t lo = bidx % lo_count;
      const index_t base = (hi << (r.offset + r.width)) | lo;
      for (index_t k = 0; k < reg_size; ++k) tmp[k] = a[base | (k << r.offset)];
      plan_->execute({tmp.data(), tmp.size()}, fft::Norm::None);
      for (index_t k = 0; k < reg_size; ++k) a[base | (k << r.offset)] = tmp[k] * unit;
    }
  }
}

}  // namespace qc::emu
