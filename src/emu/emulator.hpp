// Quantum computer emulator — the paper's core contribution (§3).
//
// An Emulator wraps a StateVector and executes recognized high-level
// subroutines at the level of their mathematical description instead of
// gate by gate:
//
//  §3.1  classical functions: arithmetic on register values becomes one
//        permutation of the amplitude array — no Toffoli networks, no
//        ancilla qubits, no uncomputation;
//  §3.2  the quantum Fourier transform becomes a classical FFT over the
//        amplitudes (Eq. 4), including batched sub-register transforms;
//  §3.4  measurement statistics come from the full amplitude
//        distribution in one pass — no sampling loop.
//
// Phase estimation (§3.3) lives in qpe.hpp; expectation values in
// observables.hpp. Every shortcut returns bit-identical results to the
// corresponding gate-level simulation (enforced by the test suite).
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>

#include "common/aligned.hpp"
#include "fft/fft.hpp"
#include "sim/kernels.hpp"
#include "sim/state_vector.hpp"

namespace qc::emu {

/// A contiguous qubit register [offset, offset + width).
struct RegRef {
  qubit_t offset = 0;
  qubit_t width = 0;
};

/// Validates that every register is nonempty, within an n-qubit state,
/// and pairwise disjoint; throws std::invalid_argument otherwise. Shared
/// by every Emulator register op and by engine::Program's builders —
/// out-of-range offset+width would silently corrupt amplitudes.
void check_regs(std::initializer_list<RegRef> regs, qubit_t n);

class Emulator {
 public:
  /// Wraps (does not own) the state vector.
  explicit Emulator(sim::StateVector& sv) : sv_(&sv) {}

  [[nodiscard]] sim::StateVector& state() noexcept { return *sv_; }
  [[nodiscard]] const sim::StateVector& state() const noexcept { return *sv_; }

  // --- §3.1: classical functions as amplitude permutations -------------

  /// Applies an arbitrary bijection f of basis indices: the amplitude at
  /// i moves to f(i). This is the "one global permutation of the state
  /// vector" the paper describes for emulated arithmetic.
  void apply_permutation(const std::function<index_t(index_t)>& f);

  /// Like apply_permutation but for maps that are only injective on the
  /// nonzero-amplitude support (e.g. division, which assumes its output
  /// register is |0>). Indices with amplitude 0 are dropped; a collision
  /// between two nonzero sources throws std::logic_error.
  void apply_partial_map(const std::function<index_t(index_t)>& f);

  /// c += a*b (mod 2^w): the paper's multiplication example. All three
  /// registers must have equal width and be disjoint.
  void multiply(RegRef a, RegRef b, RegRef c);

  /// (a, b, c=0) -> (a mod b, b, a div b): the paper's division example.
  /// Inputs with c != 0 must have zero amplitude. Convention for b = 0
  /// (matches the restoring-divider circuit): quotient 2^w - 1,
  /// remainder a.
  void divide(RegRef a, RegRef b, RegRef c);

  /// b += a (mod 2^w).
  void add(RegRef a, RegRef b);

  /// r += k (mod 2^w).
  void add_constant(RegRef r, index_t k);

  /// out += f(in) (mod 2^out.width) — bijective for *any* classical f,
  /// the general "evaluate the function per basis state" shortcut that
  /// covers trigonometric functions and other math (paper §3.1).
  void apply_function(RegRef in, RegRef out, const std::function<index_t(index_t)>& f);

  /// x -> k*x mod modulus for x < modulus (identity above); requires
  /// gcd(k, modulus) == 1. The building block of emulated Shor.
  void multiply_mod(RegRef x, index_t k, index_t modulus);

  /// Multiplies every amplitude by exp(i * phase(i)) — the diagonal
  /// counterpart of apply_permutation. A classical predicate or phase
  /// function becomes one in-place sweep instead of a reversible
  /// marking network with work qubits.
  void apply_phase_function(const std::function<double(index_t)>& phase);

  /// Grover-style phase oracle: flips the sign of every basis state for
  /// which `marked` returns true.
  void apply_phase_oracle(const std::function<bool(index_t)>& marked);

  // --- §3.2: QFT as FFT -------------------------------------------------

  /// Full-register QFT per the paper's Eq. (4):
  /// alpha_l <- 2^{-n/2} sum_k alpha_k exp(+2 pi i k l / 2^n).
  void qft();

  /// Inverse of qft().
  void inverse_qft();

  /// QFT on a sub-register: a batched FFT over the register dimension
  /// for every assignment of the remaining qubits.
  void qft(RegRef r);
  void inverse_qft(RegRef r);

 private:
  void ensure_scratch();
  void qft_impl(RegRef r, fft::Sign sign);

  sim::StateVector* sv_;
  aligned_vector<complex_t> scratch_;
  std::unique_ptr<fft::FftPlan> plan_;  // cached (width, sign)
};

/// Field extraction helpers shared with benches/tests.
[[nodiscard]] inline index_t reg_value(index_t i, RegRef r) {
  return bits::field(i, r.offset, r.width);
}
[[nodiscard]] inline index_t reg_replace(index_t i, RegRef r, index_t v) {
  return bits::with_field(i, r.offset, r.width, v);
}

}  // namespace qc::emu
