#include "emu/observables.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/circuit.hpp"
#include "common/parallel.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"

namespace qc::emu {

double expectation_z_string(const sim::StateVector& sv, index_t mask) {
  const auto a = sv.amplitudes();
  double acc = 0;
#pragma omp parallel for reduction(+ : acc) if (worth_parallelizing(a.size()))
  for (index_t i = 0; i < a.size(); ++i) {
    const double p = std::norm(a[i]);
    acc += bits::parity(i, mask) ? -p : p;
  }
  return acc;
}

double expectation_pauli(const sim::StateVector& sv, const std::string& axes) {
  if (axes.size() > sv.qubits()) throw std::invalid_argument("expectation_pauli: too long");
  // Rotate each X/Y axis into Z on a scratch copy, then reduce.
  sim::StateVector copy(sv.qubits());
  std::copy(sv.amplitudes().begin(), sv.amplitudes().end(), copy.amplitudes().begin());
  circuit::Circuit rot(sv.qubits());
  index_t zmask = 0;
  for (std::size_t q = 0; q < axes.size(); ++q) {
    switch (axes[q]) {
      case 'I':
        break;
      case 'Z':
        zmask = bits::set(zmask, static_cast<qubit_t>(q));
        break;
      case 'X':
        rot.h(static_cast<qubit_t>(q));
        zmask = bits::set(zmask, static_cast<qubit_t>(q));
        break;
      case 'Y':
        // Y = (H Sdg)^dagger Z (H Sdg): apply Sdg then H to rotate.
        rot.sdg(static_cast<qubit_t>(q));
        rot.h(static_cast<qubit_t>(q));
        zmask = bits::set(zmask, static_cast<qubit_t>(q));
        break;
      default:
        throw std::invalid_argument("expectation_pauli: bad axis character");
    }
  }
  const sim::HpcSimulator hpc;
  hpc.run(copy, rot);
  return expectation_z_string(copy, zmask);
}

double expectation_register(const sim::StateVector& sv, qubit_t offset, qubit_t width) {
  const auto a = sv.amplitudes();
  double acc = 0;
#pragma omp parallel for reduction(+ : acc) if (worth_parallelizing(a.size()))
  for (index_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(bits::field(i, offset, width)) * std::norm(a[i]);
  return acc;
}

double sampled_z_string(const sim::StateVector& sv, index_t mask, std::size_t shots,
                        Rng& rng) {
  if (shots == 0) throw std::invalid_argument("sampled_z_string: zero shots");
  // Build the CDF once (a hardware run would re-execute the circuit per
  // shot; the per-shot draw below is the irreducible statistical cost).
  const sim::SampleCdf cdf = sim::SampleCdf::from_amplitudes(sv.amplitudes());
  long sum = 0;
  for (std::size_t s = 0; s < shots; ++s)
    sum += bits::parity(cdf.sample(rng), mask) ? -1 : 1;
  return static_cast<double>(sum) / static_cast<double>(shots);
}

std::map<index_t, std::size_t> sample_register_counts(const sim::StateVector& sv,
                                                      qubit_t offset, qubit_t width,
                                                      std::size_t shots, Rng& rng) {
  const std::vector<double> dist = sv.register_distribution(offset, width);
  const sim::SampleCdf cdf = sim::SampleCdf::from_weights(dist);
  std::map<index_t, std::size_t> counts;
  for (std::size_t s = 0; s < shots; ++s) ++counts[cdf.sample(rng)];
  return counts;
}

}  // namespace qc::emu
