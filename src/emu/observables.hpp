// Measurement emulation (paper §3.4).
//
// A quantum computer extracts n bits per run and must repeat the whole
// algorithm to estimate expectation values; a simulator pays O(2^n) but
// holds the full amplitude vector — so the emulator computes the exact
// distribution and exact expectation values in a single pass, removing
// the sampling loop entirely. This module provides both sides: the exact
// one-pass quantities and the shot-based estimator a hardware run (or a
// naive simulator loop) would produce, so the time-to-accuracy trade-off
// can be benchmarked.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/state_vector.hpp"

namespace qc::emu {

/// <psi| Z_mask |psi>: expectation of the tensor product of Z on every
/// qubit set in `mask` (identity elsewhere). One pass, exact.
double expectation_z_string(const sim::StateVector& sv, index_t mask);

/// Expectation of a general Pauli string, e.g. "XZIY" (index 0 = qubit 0
/// = leftmost character). Rotates a copy of the state into the Z basis
/// (H for X, H S^dagger for Y), then reduces — still one pass over the
/// state per non-Z axis plus the final reduction.
double expectation_pauli(const sim::StateVector& sv, const std::string& axes);

/// Exact mean of the value stored in a register: sum_v v * P(v).
double expectation_register(const sim::StateVector& sv, qubit_t offset, qubit_t width);

/// Shot-based estimate of <Z_mask>: draws `shots` full-register samples
/// (as repeated hardware runs would) and averages the parity. Error
/// decreases as 1/sqrt(shots) — the sampling cost emulation removes.
double sampled_z_string(const sim::StateVector& sv, index_t mask, std::size_t shots, Rng& rng);

/// Histogram of `shots` measurement outcomes of a register, sampled from
/// the exact distribution (one distribution pass + O(shots log) draws).
std::map<index_t, std::size_t> sample_register_counts(const sim::StateVector& sv,
                                                      qubit_t offset, qubit_t width,
                                                      std::size_t shots, Rng& rng);

}  // namespace qc::emu
