#include "emu/qpe.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "circuit/builders.hpp"
#include "common/timer.hpp"
#include "fft/fft.hpp"
#include "sim/simulator.hpp"

namespace qc::emu {

using linalg::Matrix;

Matrix build_unitary(const circuit::Circuit& c) {
  const qubit_t n = c.qubits();
  const index_t size = dim(n);
  // Column j = circuit applied to |j>. Write columns as contiguous rows
  // of U^T first (a strided column write costs a cache miss per
  // element), then blocked-transpose into U. Outer parallelism over
  // columns; the per-column kernels stay serial (nested OpenMP regions
  // do not spawn extra teams by default).
  Matrix ut(size, size);
  const sim::HpcSimulator hpc;
#pragma omp parallel
  {
    sim::StateVector col(n);
#pragma omp for schedule(dynamic, 8)
    for (index_t j = 0; j < size; ++j) {
      col.set_basis(j);
      hpc.run(col, c);
      complex_t* row = &ut(j, 0);
      std::copy(col.amplitudes().begin(), col.amplitudes().end(), row);
    }
  }
  Matrix u(size, size);
  constexpr index_t kBlock = 32;  // 32x32 complex tiles fit L1
#pragma omp parallel for collapse(2) schedule(static) if (size >= 256)
  for (index_t i0 = 0; i0 < size; i0 += kBlock) {
    for (index_t j0 = 0; j0 < size; j0 += kBlock) {
      const index_t i1 = std::min(i0 + kBlock, size);
      const index_t j1 = std::min(j0 + kBlock, size);
      for (index_t i = i0; i < i1; ++i)
        for (index_t j = j0; j < j1; ++j) u(i, j) = ut(j, i);
    }
  }
  return u;
}

double qpe_outcome_probability(double theta, index_t m, unsigned bits) {
  const index_t size = index_t{1} << bits;
  const double delta = theta - 2.0 * std::numbers::pi * static_cast<double>(m) /
                                   static_cast<double>(size);
  // Wrap to (-pi, pi] to keep sin(delta/2) well conditioned.
  const double wrapped = std::remainder(delta, 2.0 * std::numbers::pi);
  const double half = 0.5 * wrapped;
  if (std::abs(half) < 1e-12) return 1.0;
  const double num = std::sin(static_cast<double>(size) * half);
  const double den = static_cast<double>(size) * std::sin(half);
  return (num * num) / (den * den);
}

namespace {

void finalize(QpeResult& r) {
  const auto it = std::max_element(r.distribution.begin(), r.distribution.end());
  r.most_likely = static_cast<index_t>(it - r.distribution.begin());
  r.phase_estimate = 2.0 * std::numbers::pi * static_cast<double>(r.most_likely) /
                     static_cast<double>(r.distribution.size());
}

QpeResult qpe_simulate(const circuit::Circuit& u_circuit, const sim::StateVector& input,
                       const QpeOptions& opt) {
  QpeResult res;
  res.strategy_used = "simulate-circuit";
  const qubit_t n = u_circuit.qubits();
  const unsigned b = opt.bits;
  const qubit_t total = n + static_cast<qubit_t>(b);
  WallTimer timer;

  // Joint register: system on qubits [0, n), ancillas on [n, n+b).
  sim::StateVector joint(total);
  {
    auto dst = joint.amplitudes();
    std::fill(dst.begin(), dst.end(), complex_t{});
    std::copy(input.amplitudes().begin(), input.amplitudes().end(), dst.begin());
  }
  const sim::HpcSimulator hpc;
  circuit::Circuit hadamards(total);
  for (unsigned j = 0; j < b; ++j) hadamards.h(n + j);
  hpc.run(joint, hadamards);

  // Controlled U^(2^j): the controlled circuit applied 2^j times —
  // exactly the paper's accounting of 2^b - 1 total applications.
  const circuit::Circuit widened = u_circuit.widened(total);
  for (unsigned j = 0; j < b; ++j) {
    const circuit::Circuit controlled = widened.controlled(n + j);
    const index_t reps = index_t{1} << j;
    for (index_t r = 0; r < reps; ++r) hpc.run(joint, controlled);
  }

  // Inverse QFT on the ancilla block, then read the ancilla marginal.
  circuit::Circuit iqft(total);
  std::vector<qubit_t> map(b);
  for (unsigned j = 0; j < b; ++j) map[j] = n + j;
  iqft.compose_mapped(circuit::inverse_qft(static_cast<qubit_t>(b)), map);
  hpc.run(joint, iqft);

  res.seconds_simulate = timer.seconds();
  res.distribution = joint.register_distribution(n, static_cast<qubit_t>(b));
  finalize(res);
  return res;
}

QpeResult qpe_repeated_squaring(const circuit::Circuit& u_circuit,
                                const sim::StateVector& input, const QpeOptions& opt) {
  QpeResult res;
  res.strategy_used = opt.use_strassen ? "repeated-squaring(strassen)" : "repeated-squaring";
  const unsigned b = opt.bits;
  const index_t anc_size = index_t{1} << b;
  WallTimer timer;

  Matrix u = build_unitary(u_circuit);
  res.seconds_construct = timer.seconds();

  // Phase kickback per ancilla bit: lambda_j = <u|U^{2^j}|u>. The matrix
  // is squared b-1 times; each power costs one GEMM (the Table 2
  // T_zgemm row times b).
  timer.reset();
  const auto amps = input.amplitudes();
  std::vector<complex_t> lambdas(b);
  std::vector<complex_t> work(amps.size());
  for (unsigned j = 0; j < b; ++j) {
    u.matvec(amps, work);
    complex_t dot{};
    for (index_t i = 0; i < amps.size(); ++i) dot += std::conj(amps[i]) * work[i];
    lambdas[j] = dot;
    if (j + 1 < b) u = opt.use_strassen ? linalg::strassen(u, u) : linalg::gemm(u, u);
  }
  res.seconds_power = timer.seconds();

  // Ancilla state after kickback: amplitude of |e> is
  // 2^{-b/2} prod_{j: e_j = 1} lambda_j; inverse QFT yields the outcome
  // amplitudes (one 2^b-point FFT — microscopic next to the squarings).
  aligned_vector<complex_t> anc(anc_size);
  const double norm = 1.0 / std::sqrt(static_cast<double>(anc_size));
#pragma omp parallel for if (anc_size >= 4096)
  for (index_t e = 0; e < anc_size; ++e) {
    complex_t amp{norm, 0.0};
    for (unsigned j = 0; j < b; ++j)
      if (bits::test(e, j)) amp *= lambdas[j];
    anc[e] = amp;
  }
  fft::fft_inplace({anc.data(), anc.size()}, fft::Sign::Negative, fft::Norm::Unitary);
  res.distribution.resize(anc_size);
  for (index_t m = 0; m < anc_size; ++m) res.distribution[m] = std::norm(anc[m]);
  finalize(res);
  return res;
}

QpeResult qpe_eigendecomposition(const circuit::Circuit& u_circuit,
                                 const sim::StateVector& input, const QpeOptions& opt) {
  QpeResult res;
  res.strategy_used = "eigendecomposition";
  const unsigned b = opt.bits;
  const index_t anc_size = index_t{1} << b;
  const index_t size = input.size();
  WallTimer timer;

  Matrix u = build_unitary(u_circuit);
  res.seconds_construct = timer.seconds();

  timer.reset();
  const linalg::EigResult eig = linalg::eig(u, /*compute_vectors=*/true);
  res.seconds_eig = timer.seconds();

  // Project the input onto each eigenvector (unitary U => orthonormal
  // eigenbasis) and mix the exact outcome kernels.
  const auto amps = input.amplitudes();
  res.distribution.assign(anc_size, 0.0);
#pragma omp parallel
  {
    std::vector<double> local(anc_size, 0.0);
#pragma omp for schedule(static)
    for (index_t k = 0; k < size; ++k) {
      complex_t c{};
      for (index_t i = 0; i < size; ++i) c += std::conj(eig.vectors(i, k)) * amps[i];
      const double weight = std::norm(c);
      if (weight < 1e-14) continue;
      const double theta = std::arg(eig.values[k]);
      for (index_t m = 0; m < anc_size; ++m)
        local[m] += weight * qpe_outcome_probability(theta, m, b);
    }
#pragma omp critical
    for (index_t m = 0; m < anc_size; ++m) res.distribution[m] += local[m];
  }
  finalize(res);
  return res;
}

}  // namespace

IterativeQpeResult iterative_phase_estimation(const circuit::Circuit& u_circuit,
                                              const sim::StateVector& input, unsigned bits,
                                              Rng& rng) {
  if (u_circuit.qubits() != input.qubits())
    throw std::invalid_argument("iterative_phase_estimation: qubit mismatch");
  if (bits == 0 || bits > 62)
    throw std::invalid_argument("iterative_phase_estimation: bits out of range");
  IterativeQpeResult res;
  const qubit_t n = input.qubits();
  const qubit_t anc = n;  // single recycled ancilla on top
  WallTimer timer;

  sim::StateVector joint(n + 1);
  {
    auto dst = joint.amplitudes();
    std::fill(dst.begin(), dst.end(), complex_t{});
    std::copy(input.amplitudes().begin(), input.amplitudes().end(), dst.begin());
  }
  const sim::HpcSimulator hpc;
  const circuit::Circuit controlled = u_circuit.widened(n + 1).controlled(anc);

  // Round r applies controlled-U^(2^{b-1-r}): the ancilla picks up the
  // phase e^{2 pi i (0.m_r m_{r-1} ... m_0)}, so it measures bit m_r
  // once the feedback rotation removes the already-known lower bits
  // m_0 .. m_{r-1} (Kitaev's semiclassical trick).
  index_t phase_bits = 0;
  for (unsigned r = 0; r < bits; ++r) {
    const unsigned j = bits - 1 - r;  // power of U this round
    circuit::Circuit open(n + 1);
    open.h(anc);
    double correction = 0;
    for (unsigned k = 0; k < r; ++k)
      if (bits::test(phase_bits, k))
        correction -= 2.0 * std::numbers::pi /
                      static_cast<double>(index_t{1} << (r - k + 1));
    if (correction != 0.0) open.phase(anc, correction);
    hpc.run(joint, open);

    const index_t reps = index_t{1} << j;
    for (index_t rep = 0; rep < reps; ++rep) hpc.run(joint, controlled);

    circuit::Circuit close(n + 1);
    close.h(anc);
    hpc.run(joint, close);
    const int bit = joint.measure_and_collapse(anc, rng);
    if (bit) {
      phase_bits = bits::set(phase_bits, r);
      // Reset the recycled ancilla to |0> for the next round.
      circuit::Circuit reset(n + 1);
      reset.x(anc);
      hpc.run(joint, reset);
    }
  }
  res.outcome = phase_bits;
  res.phase_estimate = 2.0 * std::numbers::pi * static_cast<double>(phase_bits) /
                       static_cast<double>(index_t{1} << bits);
  res.seconds_simulate = timer.seconds();
  return res;
}

models::QpeCosts measure_qpe_costs(const circuit::Circuit& u_circuit) {
  models::QpeCosts costs;
  const qubit_t n = u_circuit.qubits();
  {
    sim::StateVector sv(n);
    Rng rng(n);
    sv.randomize(rng);
    const sim::HpcSimulator hpc;
    costs.t_apply_u = time_per_rep([&] { hpc.run(sv, u_circuit); }, 0.2, 200);
  }
  Matrix u(1, 1);
  costs.t_construct = time_once([&] { u = build_unitary(u_circuit); });
  costs.t_gemm = time_once([&] {
    const Matrix sq = linalg::gemm(u, u);
    (void)sq;
  });
  costs.t_eig = time_once([&] {
    const auto e = linalg::eig(u);
    (void)e;
  });
  return costs;
}

models::QpeCosts scale_qpe_costs(const models::QpeCosts& costs, qubit_t n_from,
                                 qubit_t n_to, std::size_t g_from, std::size_t g_to) {
  if (n_to < n_from) throw std::invalid_argument("scale_qpe_costs: cannot scale down");
  const double size_ratio = std::ldexp(1.0, static_cast<int>(n_to - n_from));
  const double g_ratio = static_cast<double>(g_to) / static_cast<double>(g_from);
  models::QpeCosts r;
  r.t_apply_u = costs.t_apply_u * size_ratio * g_ratio;
  r.t_construct = costs.t_construct * size_ratio * size_ratio * g_ratio;
  r.t_gemm = costs.t_gemm * size_ratio * size_ratio * size_ratio;
  r.t_eig = costs.t_eig * size_ratio * size_ratio * size_ratio;
  return r;
}

QpeStrategy choose_qpe_strategy(const models::QpeCosts& costs, unsigned bits) {
  const double t_sim = models::qpe_simulate_seconds(costs, bits);
  const double t_rs = models::qpe_repeated_squaring_seconds(costs, bits);
  const double t_eig = models::qpe_eigendecomposition_seconds(costs, bits);
  if (t_sim <= t_rs && t_sim <= t_eig) return QpeStrategy::SimulateCircuit;
  if (t_rs <= t_eig) return QpeStrategy::RepeatedSquaring;
  return QpeStrategy::Eigendecomposition;
}

QpeResult phase_estimation(const circuit::Circuit& u_circuit, const sim::StateVector& input,
                           const QpeOptions& options) {
  if (u_circuit.qubits() != input.qubits())
    throw std::invalid_argument("phase_estimation: circuit/state qubit mismatch");
  if (options.bits == 0 || options.bits > 30)
    throw std::invalid_argument("phase_estimation: bits out of range");
  switch (options.strategy) {
    case QpeStrategy::SimulateCircuit:
      return qpe_simulate(u_circuit, input, options);
    case QpeStrategy::RepeatedSquaring:
      return qpe_repeated_squaring(u_circuit, input, options);
    case QpeStrategy::Eigendecomposition:
      return qpe_eigendecomposition(u_circuit, input, options);
  }
  throw std::logic_error("phase_estimation: unknown strategy");
}

}  // namespace qc::emu
