// Quantum phase estimation — simulation baseline and the two emulation
// shortcuts of the paper's §3.3.
//
// Given a circuit realization of a unitary U on n qubits and a b-bit
// precision target, QPE applies controlled U^(2^j) for j = 0..b-1
// followed by an inverse QFT on the ancilla register. The three ways to
// obtain the outcome distribution:
//
//  * SimulateCircuit — the baseline: run the full (n+b)-qubit circuit
//    gate by gate; U is applied 2^b - 1 times, each costing G gate
//    sweeps (O(G 2^{n+b}) total).
//
//  * RepeatedSquaring — emulation: build the dense 2^n x 2^n matrix of U
//    once (O(G 2^{2n})), then square it b-1 times (O(2^{3n} b) with
//    GEMM, O(2^{2.81n} b) with Strassen). For an eigenvector input the
//    ancilla register never entangles with the system (phase kickback),
//    so the outcome distribution follows from the b phases
//    <u|U^{2^j}|u> and one 2^b-point inverse FFT.
//
//  * Eigendecomposition — emulation: diagonalize U once (zgeev role,
//    O(2^{3n})); project the input state onto the eigenbasis and
//    evaluate the exact QPE outcome kernel for every eigenphase. Valid
//    for arbitrary (non-eigenvector) inputs.
//
// The crossover-precision analysis of the paper's Table 2 is
// reproduced by models/qpe_model.hpp from the timings these return.
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "linalg/eig.hpp"
#include "linalg/gemm.hpp"
#include "models/perf_model.hpp"
#include "sim/state_vector.hpp"

namespace qc::emu {

/// Dense 2^n x 2^n matrix of a circuit unitary, built by applying the
/// circuit to every basis column with the specialized kernels —
/// O(G 2^{2n}), the T_construct row of Table 2. Columns run in parallel.
linalg::Matrix build_unitary(const circuit::Circuit& c);

enum class QpeStrategy {
  SimulateCircuit,
  RepeatedSquaring,
  Eigendecomposition,
};

struct QpeOptions {
  unsigned bits = 4;                                    ///< b: ancilla precision bits.
  QpeStrategy strategy = QpeStrategy::Eigendecomposition;
  bool use_strassen = false;                            ///< GEMM kernel for squarings.
};

struct QpeResult {
  std::vector<double> distribution;  ///< P(outcome m), size 2^b.
  index_t most_likely = 0;           ///< argmax_m P(m).
  double phase_estimate = 0;         ///< 2*pi*most_likely / 2^b.
  std::string strategy_used;
  // Wall-clock breakdown (Table 2 rows).
  double seconds_construct = 0;  ///< dense-U construction.
  double seconds_power = 0;      ///< repeated squarings (GEMM/Strassen).
  double seconds_eig = 0;        ///< eigendecomposition.
  double seconds_simulate = 0;   ///< gate-level circuit execution.
};

/// Runs phase estimation of the unitary given by `u_circuit` on the
/// input state `input` (n qubits). For RepeatedSquaring the input should
/// be (close to) an eigenvector — the paper's §3.3 setting; the other
/// two strategies handle arbitrary inputs. `input` is not modified.
QpeResult phase_estimation(const circuit::Circuit& u_circuit, const sim::StateVector& input,
                           const QpeOptions& options);

/// Exact QPE outcome kernel: probability of measuring `m` on b ancilla
/// bits when the true eigenphase is theta (radians). The Fejer-type
/// kernel |sin(2^{b-1} delta) / (2^b sin(delta/2))|^2.
double qpe_outcome_probability(double theta, index_t m, unsigned bits);

// --- iterative (semiclassical) phase estimation -------------------------
//
// The paper's reference [16] (Beauregard) uses a single recycled ancilla
// qubit: b rounds of H - controlled-U^{2^j} - feedback rotation - H -
// measure, reading the phase bits from least significant up. This is the
// minimal-memory simulation baseline of §3.3 ("an algorithm with the
// minimal number of one ancilla qubit"): the joint state has only n+1
// qubits, but U is still applied 2^b - 1 times.

struct IterativeQpeResult {
  index_t outcome = 0;        ///< Measured b-bit phase estimate.
  double phase_estimate = 0;  ///< 2*pi*outcome / 2^b.
  double seconds_simulate = 0;
};

/// One iterative QPE run on a *copy* of `input` (n-qubit register; the
/// ancilla is managed internally). Measurement randomness from `rng`;
/// for an eigenvector whose phase is exactly representable in `bits`
/// bits the outcome is deterministic.
IterativeQpeResult iterative_phase_estimation(const circuit::Circuit& u_circuit,
                                              const sim::StateVector& input, unsigned bits,
                                              Rng& rng);

// --- strategy selection (the §3.3 crossover heuristic) ------------------

/// Measures the four primitive costs of Table 2 for this circuit on the
/// current machine: one gate-level application, dense construction, one
/// GEMM squaring, one eigendecomposition.
models::QpeCosts measure_qpe_costs(const circuit::Circuit& u_circuit);

/// Extrapolates measured costs from an n-qubit workload to a larger one
/// using the paper's complexity exponents (applyU ~ G 2^n, construct ~
/// G 2^{2n}, gemm/eig ~ 2^{3n}); gate counts g_from/g_to account for the
/// workload's G(n).
models::QpeCosts scale_qpe_costs(const models::QpeCosts& costs, qubit_t n_from,
                                 qubit_t n_to, std::size_t g_from, std::size_t g_to);

/// Picks the fastest strategy for a b-bit estimate given primitive
/// costs — the emulator's automatic crossover decision (paper §4.4).
QpeStrategy choose_qpe_strategy(const models::QpeCosts& costs, unsigned bits);

}  // namespace qc::emu
