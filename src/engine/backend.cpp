#include "engine/backend.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "fuse/fused_simulator.hpp"
#include "sched/cached_simulator.hpp"

namespace qc::engine {

void Backend::run_highlevel(sim::StateVector&, const Op& op) {
  throw std::logic_error("backend '" + name() + "' is gate-level and cannot run '" +
                         op.label() + "'; lower() the program first");
}

namespace {

/// Wraps a plain sim::Simulator: gate segments only.
class GateLevelBackend final : public Backend {
 public:
  explicit GateLevelBackend(std::unique_ptr<sim::Simulator> s) : sim_(std::move(s)) {}

  [[nodiscard]] std::string name() const override { return sim_->name(); }
  void run_gates(sim::StateVector& sv, const circuit::Circuit& c) override {
    sim_->run(sv, c);
  }

 private:
  std::unique_ptr<sim::Simulator> sim_;
};

/// The paper's dispatch rule as a backend: high-level ops through the
/// emu::Emulator shortcuts, gate segments through the cache-blocked
/// (fused + sweep-scheduled) simulator.
class AutoBackend final : public Backend {
 public:
  explicit AutoBackend(const RunOptions& opts)
      : cached_(sched::CachedSimulator::Options{opts.fusion, opts.sched}) {}

  [[nodiscard]] std::string name() const override { return "auto"; }
  [[nodiscard]] bool emulates() const override { return true; }

  void run_gates(sim::StateVector& sv, const circuit::Circuit& c) override {
    cached_.run(sv, c);
  }

  void run_highlevel(sim::StateVector& sv, const Op& op) override {
    emu::Emulator& em = emulator_for(sv);
    switch (op.kind) {
      case OpKind::Add: em.add(op.a, op.b); return;
      case OpKind::Multiply: em.multiply(op.a, op.b, op.c); return;
      case OpKind::MultiplyMod: em.multiply_mod(op.a, op.k, op.modulus); return;
      case OpKind::Divide: em.divide(op.a, op.b, op.c); return;
      case OpKind::ApplyFunction: em.apply_function(op.a, op.b, op.func); return;
      case OpKind::PhaseFunction: em.apply_phase_function(op.phase_fn); return;
      case OpKind::PhaseOracle: em.apply_phase_oracle(op.predicate); return;
      case OpKind::Qft: em.qft(op.a); return;
      case OpKind::InverseQft: em.inverse_qft(op.a); return;
      default:
        throw std::logic_error("auto backend: unexpected op '" + op.label() + "'");
    }
  }

 private:
  /// The Emulator binds to one StateVector and caches scratch + FFT
  /// plans; rebuild only when the engine hands us a different state.
  emu::Emulator& emulator_for(sim::StateVector& sv) {
    if (emulator_ == nullptr || bound_ != &sv) {
      emulator_ = std::make_unique<emu::Emulator>(sv);
      bound_ = &sv;
    }
    return *emulator_;
  }

  sched::CachedSimulator cached_;
  std::unique_ptr<emu::Emulator> emulator_;
  sim::StateVector* bound_ = nullptr;
};

struct BackendEntry {
  BackendFactory make;
  SimulatorFactory make_sim;  // null for emulation-only backends
};

std::map<std::string, BackendEntry>& registry() {
  static std::map<std::string, BackendEntry> reg = [] {
    std::map<std::string, BackendEntry> r;
    const auto gate_level = [](SimulatorFactory sf) {
      return BackendEntry{
          [sf](const RunOptions&) -> std::unique_ptr<Backend> {
            return std::make_unique<GateLevelBackend>(sf());
          },
          sf};
    };
    r["hpc"] = gate_level([] { return std::make_unique<sim::HpcSimulator>(); });
    r["qhipster-like"] =
        gate_level([] { return std::make_unique<sim::QhipsterLikeSimulator>(); });
    r["liquid-like"] =
        gate_level([] { return std::make_unique<sim::LiquidLikeSimulator>(); });
    r["fused"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          return std::make_unique<GateLevelBackend>(std::make_unique<fuse::FusedSimulator>(
              fuse::FusedSimulator::Options{opts.fusion}));
        },
        [] { return std::make_unique<fuse::FusedSimulator>(); }};
    r["cached"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          return std::make_unique<GateLevelBackend>(std::make_unique<sched::CachedSimulator>(
              sched::CachedSimulator::Options{opts.fusion, opts.sched}));
        },
        [] { return std::make_unique<sched::CachedSimulator>(); }};
    r["auto"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          return std::make_unique<AutoBackend>(opts);
        },
        nullptr};
    return r;
  }();
  return reg;
}

[[noreturn]] void throw_unknown(const std::string& what, const std::string& name) {
  std::string names;
  for (const std::string& n : backend_names()) {
    if (!names.empty()) names += ", ";
    names += n;
  }
  throw std::invalid_argument(what + ": unknown backend '" + name + "' (valid: " + names +
                              ")");
}

}  // namespace

void register_backend(const std::string& name, BackendFactory factory,
                      SimulatorFactory sim_factory) {
  if (name.empty() || !factory)
    throw std::invalid_argument("register_backend: empty name or null factory");
  auto [it, inserted] =
      registry().emplace(name, BackendEntry{std::move(factory), std::move(sim_factory)});
  if (!inserted)
    throw std::invalid_argument("register_backend: '" + name + "' already registered");
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::unique_ptr<Backend> make_backend(const std::string& name, const RunOptions& opts) {
  const auto it = registry().find(name);
  if (it == registry().end()) throw_unknown("make_backend", name);
  return it->second.make(opts);
}

std::unique_ptr<sim::Simulator> make_gate_simulator(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) throw_unknown("make_simulator", name);
  if (!it->second.make_sim)
    throw std::invalid_argument("make_simulator: backend '" + name +
                                "' emulates high-level ops and is not a plain "
                                "sim::Simulator; run it via engine::Engine");
  return it->second.make_sim();
}

}  // namespace qc::engine
