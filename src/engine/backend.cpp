#include "engine/backend.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "emu/dist_emu.hpp"
#include "emu/observables.hpp"
#include "fuse/fused_simulator.hpp"
#include "sched/cached_simulator.hpp"
#include "sched/dist_schedule.hpp"
#include "sim/sampling.hpp"

namespace qc::engine {

void Backend::run_highlevel(sim::StateVector&, const Op& op) {
  throw std::logic_error("backend '" + name() + "' is gate-level and cannot run '" +
                         op.label() + "'; lower() the program first");
}

index_t Backend::measure_register(sim::StateVector& sv, RegRef r, double u, bool collapse) {
  // §3.4: one distribution pass, one uniform draw — through the shared
  // sampler, which never picks a zero-probability outcome.
  const std::vector<double> dist = sv.register_distribution(r.offset, r.width);
  const index_t outcome = sim::SampleCdf::from_weights(dist).sample(u);
  if (collapse)
    for (qubit_t j = 0; j < r.width; ++j)
      sv.collapse(r.offset + j, bits::test(outcome, j) ? 1 : 0);
  return outcome;
}

double Backend::expectation_z(sim::StateVector& sv, index_t mask) {
  return emu::expectation_z_string(sv, mask);
}

namespace {

/// Wraps a plain sim::Simulator: gate segments only.
class GateLevelBackend final : public Backend {
 public:
  explicit GateLevelBackend(std::unique_ptr<sim::Simulator> s) : sim_(std::move(s)) {}

  [[nodiscard]] std::string name() const override { return sim_->name(); }
  void run_gates(sim::StateVector& sv, const circuit::Circuit& c) override {
    sim_->run(sv, c);
  }

 private:
  std::unique_ptr<sim::Simulator> sim_;
};

/// The paper's dispatch rule as a backend: high-level ops through the
/// emu::Emulator shortcuts, gate segments through the cache-blocked
/// (fused + sweep-scheduled) simulator.
class AutoBackend final : public Backend {
 public:
  explicit AutoBackend(const RunOptions& opts)
      : cached_(sched::CachedSimulator::Options{opts.fusion, opts.sched}) {}

  [[nodiscard]] std::string name() const override { return "auto"; }
  [[nodiscard]] bool emulates() const override { return true; }

  void run_gates(sim::StateVector& sv, const circuit::Circuit& c) override {
    cached_.run(sv, c);
  }

  void run_highlevel(sim::StateVector& sv, const Op& op) override {
    emu::Emulator& em = emulator_for(sv);
    switch (op.kind) {
      case OpKind::Add: em.add(op.a, op.b); return;
      case OpKind::Multiply: em.multiply(op.a, op.b, op.c); return;
      case OpKind::MultiplyMod: em.multiply_mod(op.a, op.k, op.modulus); return;
      case OpKind::Divide: em.divide(op.a, op.b, op.c); return;
      case OpKind::ApplyFunction: em.apply_function(op.a, op.b, op.func); return;
      case OpKind::PhaseFunction: em.apply_phase_function(op.phase_fn); return;
      case OpKind::PhaseOracle: em.apply_phase_oracle(op.predicate); return;
      case OpKind::Qft: em.qft(op.a); return;
      case OpKind::InverseQft: em.inverse_qft(op.a); return;
      default:
        throw std::logic_error("auto backend: unexpected op '" + op.label() + "'");
    }
  }

 private:
  /// The Emulator binds to one StateVector and caches scratch + FFT
  /// plans; rebuild only when the engine hands us a different state.
  emu::Emulator& emulator_for(sim::StateVector& sv) {
    if (emulator_ == nullptr || bound_ != &sv) {
      emulator_ = std::make_unique<emu::Emulator>(sv);
      bound_ = &sv;
    }
    return *emulator_;
  }

  sched::CachedSimulator cached_;
  std::unique_ptr<emu::Emulator> emulator_;
  sim::StateVector* bound_ = nullptr;
};

/// The distributed execution backend ("dist"): gate segments are
/// planned once by sched::dist_schedule, then an in-process cluster of
/// opts.dist_ranks rank threads scatters the engine's state, runs the
/// plan (rank-local fused/cache-blocked sweeps, amortized global<->local
/// exchange passes, per-gate fallbacks), and gathers the chunks back.
/// Measurement ops run collectively against the distributed state —
/// DistStateVector's §3.4 surface — with the engine's uniform draw, so
/// the recorded streams match the serial backends seed for seed.
class DistBackend final : public Backend {
 public:
  explicit DistBackend(const RunOptions& opts)
      : ranks_(opts.dist_ranks), policy_(opts.dist_policy) {
    if (ranks_ < 1 || !bits::is_pow2(static_cast<index_t>(ranks_)))
      throw std::invalid_argument("dist backend: rank count must be a power of two >= 1");
    dopts_.fusion = opts.fusion;
    dopts_.sched = opts.sched;
    dopts_.remap = opts.dist_remap;
    dopts_.policy = opts.dist_policy;
  }

  [[nodiscard]] std::string name() const override { return "dist"; }

  void run_gates(sim::StateVector& sv, const circuit::Circuit& c) override {
    if (c.empty()) return;
    const int ranks = effective_ranks(sv.qubits());
    const auto global = static_cast<qubit_t>(bits::log2_floor(static_cast<index_t>(ranks)));
    const sched::DistPlan plan =
        sched::dist_schedule(c, static_cast<qubit_t>(sv.qubits() - global), dopts_);
    with_cluster(sv, ranks, [&](sim::DistStateVector& dsv) {
      sched::run_dist_plan(dsv, plan, policy_);
      return true;
    });
  }

  index_t measure_register(sim::StateVector& sv, RegRef r, double u,
                           bool collapse) override {
    index_t outcome = 0;
    with_cluster(sv, effective_ranks(sv.qubits()), [&](sim::DistStateVector& dsv) {
      const std::vector<double> dist = dsv.register_distribution(r.offset, r.width);
      const index_t o = sim::SampleCdf::from_weights(dist).sample(u);
      if (dsv.comm().rank() == 0) outcome = o;
      if (!collapse) return false;  // read-only: leave sv bit-identical
      for (qubit_t j = 0; j < r.width; ++j)
        dsv.collapse(r.offset + j, bits::test(o, j) ? 1 : 0);
      return true;
    });
    return outcome;
  }

  double expectation_z(sim::StateVector& sv, index_t mask) override {
    double value = 0;
    with_cluster(sv, effective_ranks(sv.qubits()), [&](sim::DistStateVector& dsv) {
      const double v = emu::expectation_z_string(dsv, mask);
      if (dsv.comm().rank() == 0) value = v;
      return false;
    });
    return value;
  }

 private:
  /// Every rank must keep at least one *local* qubit (the distributed
  /// planner schedules within the local block), so the rank count clamps
  /// to 2^(n-1) for narrow registers (lowered programs can be tiny).
  [[nodiscard]] int effective_ranks(qubit_t n) const {
    if (n <= 1) return 1;
    return static_cast<int>(
        std::min<index_t>(static_cast<index_t>(ranks_), dim(static_cast<qubit_t>(n - 1))));
  }

  /// Scatters sv over a fresh in-process cluster, runs `body` on every
  /// rank, and gathers the disjoint chunks back when body returns true.
  /// Each engine-routed op pays one rank-thread spawn/join plus the
  /// scatter/gather copies because Cluster::run is synchronous — fine
  /// for this in-process demonstrator, and the cost is per *op*, not
  /// per gate (a segment's whole plan runs inside one cluster). A
  /// persistent rank pool that keeps the state resident across ops is
  /// the natural next step once the cluster substrate grows a job
  /// queue.
  template <typename Body>
  void with_cluster(sim::StateVector& sv, int ranks, const Body& body) {
    cluster::Cluster cl(ranks);
    const auto a = sv.amplitudes();
    cl.run([&](cluster::Comm& comm) {
      sim::DistStateVector dsv(comm, sv.qubits());
      const index_t chunk = dim(dsv.local_qubits());
      const auto base = static_cast<std::ptrdiff_t>(comm.rank()) *
                        static_cast<std::ptrdiff_t>(chunk);
      std::copy(a.begin() + base, a.begin() + base + static_cast<std::ptrdiff_t>(chunk),
                dsv.local().begin());
      if (body(dsv))
        std::copy(dsv.local().begin(), dsv.local().end(), a.begin() + base);
    });
  }

  int ranks_;
  sim::CommPolicy policy_;
  sched::DistScheduleOptions dopts_;
};

struct BackendEntry {
  BackendFactory make;
  SimulatorFactory make_sim;  // null for emulation-only backends
};

std::map<std::string, BackendEntry>& registry() {
  static std::map<std::string, BackendEntry> reg = [] {
    std::map<std::string, BackendEntry> r;
    const auto gate_level = [](SimulatorFactory sf) {
      return BackendEntry{
          [sf](const RunOptions&) -> std::unique_ptr<Backend> {
            return std::make_unique<GateLevelBackend>(sf());
          },
          sf};
    };
    r["hpc"] = gate_level([] { return std::make_unique<sim::HpcSimulator>(); });
    r["qhipster-like"] =
        gate_level([] { return std::make_unique<sim::QhipsterLikeSimulator>(); });
    r["liquid-like"] =
        gate_level([] { return std::make_unique<sim::LiquidLikeSimulator>(); });
    r["fused"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          return std::make_unique<GateLevelBackend>(std::make_unique<fuse::FusedSimulator>(
              fuse::FusedSimulator::Options{opts.fusion}));
        },
        [] { return std::make_unique<fuse::FusedSimulator>(); }};
    r["cached"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          return std::make_unique<GateLevelBackend>(std::make_unique<sched::CachedSimulator>(
              sched::CachedSimulator::Options{opts.fusion, opts.sched}));
        },
        [] { return std::make_unique<sched::CachedSimulator>(); }};
    r["auto"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          return std::make_unique<AutoBackend>(opts);
        },
        nullptr};
    r["dist"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          return std::make_unique<DistBackend>(opts);
        },
        nullptr};
    return r;
  }();
  return reg;
}

[[noreturn]] void throw_unknown(const std::string& what, const std::string& name) {
  std::string names;
  for (const std::string& n : backend_names()) {
    if (!names.empty()) names += ", ";
    names += n;
  }
  throw std::invalid_argument(what + ": unknown backend '" + name + "' (valid: " + names +
                              ")");
}

}  // namespace

void register_backend(const std::string& name, BackendFactory factory,
                      SimulatorFactory sim_factory) {
  if (name.empty() || !factory)
    throw std::invalid_argument("register_backend: empty name or null factory");
  auto [it, inserted] =
      registry().emplace(name, BackendEntry{std::move(factory), std::move(sim_factory)});
  if (!inserted)
    throw std::invalid_argument("register_backend: '" + name + "' already registered");
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::unique_ptr<Backend> make_backend(const std::string& name, const RunOptions& opts) {
  const auto it = registry().find(name);
  if (it == registry().end()) throw_unknown("make_backend", name);
  return it->second.make(opts);
}

std::unique_ptr<sim::Simulator> make_gate_simulator(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) throw_unknown("make_simulator", name);
  if (!it->second.make_sim)
    throw std::invalid_argument("make_simulator: backend '" + name +
                                "' is not a plain sim::Simulator (it emulates "
                                "high-level ops or runs distributed); run it via "
                                "engine::Engine");
  return it->second.make_sim();
}

}  // namespace qc::engine
