#include "engine/backend.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "cluster/cluster.hpp"
#include "cluster/fault.hpp"
#include "emu/dist_emu.hpp"
#include "emu/observables.hpp"
#include "fuse/fused_simulator.hpp"
#include "models/perf_model.hpp"
#include "obs/trace.hpp"
#include "sched/cached_simulator.hpp"
#include "sched/dist_schedule.hpp"
#include "sim/sampling.hpp"

namespace qc::engine {

void Backend::run_highlevel(sim::StateVector&, const Op& op) {
  throw std::logic_error("backend '" + name() + "' is gate-level and cannot run '" +
                         op.label() + "'; lower() the program first");
}

index_t Backend::measure_register(sim::StateVector& sv, RegRef r, double u, bool collapse) {
  // §3.4: one distribution pass, one uniform draw — through the shared
  // sampler, which never picks a zero-probability outcome.
  const std::vector<double> dist = sv.register_distribution(r.offset, r.width);
  const index_t outcome = sim::SampleCdf::from_weights(dist).sample(u);
  if (collapse)
    for (qubit_t j = 0; j < r.width; ++j)
      sv.collapse(r.offset + j, bits::test(outcome, j) ? 1 : 0);
  return outcome;
}

double Backend::expectation_z(sim::StateVector& sv, index_t mask) {
  return emu::expectation_z_string(sv, mask);
}

void Backend::end_run(sim::StateVector&) {}

BackendCounters Backend::counters() const { return {}; }

namespace {

/// Wraps a plain sim::Simulator: gate segments only.
class GateLevelBackend final : public Backend {
 public:
  explicit GateLevelBackend(std::unique_ptr<sim::Simulator> s) : sim_(std::move(s)) {}

  [[nodiscard]] std::string name() const override { return sim_->name(); }
  void run_gates(sim::StateVector& sv, const circuit::Circuit& c) override {
    sim_->run(sv, c);
  }

 private:
  std::unique_ptr<sim::Simulator> sim_;
};

/// Widens an fp32 working state back into the fp64 host state (the
/// second half of the convert-at-segment-boundary round trip).
void widen_into(const sim::BasicStateVector<float>& src, sim::StateVector& dst) {
  const auto s = src.amplitudes();
  const auto d = dst.amplitudes();
  const index_t count = s.size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t i = 0; i < count; ++i) d[i] = static_cast<complex_t>(s[i]);
}

/// Gate-level backend running segments at fp32: the fp64 host state is
/// narrowed once per segment (BasicStateVector::cast), the segment runs
/// through the float-instantiated kernels, and the result widens back —
/// two extra state passes per segment, amortized over its gates, while
/// every kernel sweep inside moves half the bytes. Measurement ops keep
/// reading the fp64 host state through the default virtuals.
class Fp32SegmentBackend final : public Backend {
 public:
  using Runner =
      std::function<void(std::span<basic_complex_t<float>>, qubit_t, const circuit::Circuit&)>;

  Fp32SegmentBackend(std::string name, Runner runner)
      : name_(std::move(name)), runner_(std::move(runner)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  void run_gates(sim::StateVector& sv, const circuit::Circuit& c) override {
    if (c.empty()) return;
    sim::BasicStateVector<float> work = sv.cast<float>();
    runner_(work.amplitudes(), work.qubits(), c);
    widen_into(work, sv);
  }

 private:
  std::string name_;
  Runner runner_;
};

/// The paper's dispatch rule as a backend: high-level ops through the
/// emu::Emulator shortcuts, gate segments through the cache-blocked
/// (fused + sweep-scheduled) simulator.
class AutoBackend final : public Backend {
 public:
  explicit AutoBackend(const RunOptions& opts)
      : cached_(sched::CachedSimulator::Options{opts.fusion, opts.sched}),
        precision_(opts.precision) {}

  [[nodiscard]] std::string name() const override { return "auto"; }
  [[nodiscard]] bool emulates() const override { return true; }

  void run_gates(sim::StateVector& sv, const circuit::Circuit& c) override {
    if (precision_ == Precision::kF32) {
      // Convert-at-segment-boundary: the emulator's high-level shortcuts
      // (FFTs, permutations) stay fp64 on the host state; only the gate
      // segments between them run through the float kernels.
      if (c.empty()) return;
      sim::BasicStateVector<float> work = sv.cast<float>();
      sched::execute_blocked<float>(work.amplitudes(), cached_.plan(c));
      widen_into(work, sv);
      return;
    }
    cached_.run(sv, c);
  }

  void run_highlevel(sim::StateVector& sv, const Op& op) override {
    emu::Emulator& em = emulator_for(sv);
    switch (op.kind) {
      case OpKind::Add: em.add(op.a, op.b); return;
      case OpKind::Multiply: em.multiply(op.a, op.b, op.c); return;
      case OpKind::MultiplyMod: em.multiply_mod(op.a, op.k, op.modulus); return;
      case OpKind::Divide: em.divide(op.a, op.b, op.c); return;
      case OpKind::ApplyFunction: em.apply_function(op.a, op.b, op.func); return;
      case OpKind::PhaseFunction: em.apply_phase_function(op.phase_fn); return;
      case OpKind::PhaseOracle: em.apply_phase_oracle(op.predicate); return;
      case OpKind::Qft: em.qft(op.a); return;
      case OpKind::InverseQft: em.inverse_qft(op.a); return;
      default:
        throw std::logic_error("auto backend: unexpected op '" + op.label() + "'");
    }
  }

 private:
  /// The Emulator binds to one StateVector and caches scratch + FFT
  /// plans; rebuild only when the engine hands us a different state.
  emu::Emulator& emulator_for(sim::StateVector& sv) {
    if (emulator_ == nullptr || bound_ != &sv) {
      emulator_ = std::make_unique<emu::Emulator>(sv);
      bound_ = &sv;
    }
    return *emulator_;
  }

  sched::CachedSimulator cached_;
  Precision precision_;
  std::unique_ptr<emu::Emulator> emulator_;
  sim::StateVector* bound_ = nullptr;
};

/// The distributed execution backend ("dist"), built around a
/// persistent cluster::ClusterSession. The first op that needs the
/// distributed state opens the session (rank threads spawned once,
/// parked on the job queue) and scatters the engine's host state into
/// per-rank resident DistStateVector chunks — exactly once per
/// Engine::run. Every subsequent gate segment, exchange pass, Measure,
/// ExpectationZ and collapse is submitted as a job against those
/// *resident* chunks: gate segments chain their logical->physical qubit
/// permutation forward (dist_schedule's perm_io) instead of restoring
/// logical order between segments, and the measurement surface reads
/// straight through the live permutation. While resident_ the bound
/// host state (host_) is stale and is refreshed by at most one gather,
/// at end_run — so a multi-op program pays two host stagings total instead
/// of two per op (models::t_host_staging_seconds prices the
/// difference; counters() reports the actual bytes into the engine
/// trace). Measurement ops still consume the engine's uniform draw, so
/// recorded streams match the serial backends seed for seed.
///
/// Templated on the resident amplitude scalar T: under fp32 the ranks
/// hold float chunks (the host state narrows at scatter, widens at
/// gather), so every chunk exchange, checkpoint and host staging moves
/// exactly half the fp64 bytes on the same plan — Result.net_bytes and
/// the model predictions both reflect sizeof(value_type).
template <typename T>
class DistBackendT final : public Backend {
 public:
  using value_type = basic_complex_t<T>;

  explicit DistBackendT(const RunOptions& opts)
      : ranks_(opts.dist_ranks),
        policy_(opts.dist_policy),
        resident_mode_(opts.dist_resident),
        timeout_s_(opts.dist_timeout_s),
        ckpt_interval_(opts.dist_checkpoint_interval),
        max_retries_(opts.dist_max_retries) {
    if (ranks_ < 1 || !bits::is_pow2(static_cast<index_t>(ranks_)))
      throw std::invalid_argument("dist backend: rank count must be a power of two >= 1");
    dopts_.fusion = opts.fusion;
    dopts_.sched = opts.sched;
    dopts_.remap = opts.dist_remap;
    dopts_.policy = opts.dist_policy;
  }

  /// Drops resident chunks without gathering (the engine's end_run is
  /// the one gather point); the session destructor joins the parked
  /// rank threads.
  ~DistBackendT() override { release_slots(); }

  [[nodiscard]] std::string name() const override { return "dist"; }

  void run_gates(sim::StateVector& sv, const circuit::Circuit& c) override {
    if (c.empty()) return;
    ensure_resident(sv);
    // Checkpoint *before* planning, so the segment about to run joins
    // the replay log of the checkpoint it would restore to.
    maybe_checkpoint();
    const auto nl = static_cast<qubit_t>(resident_n_ - session_global_qubits());
    for (int attempt = 0;; ++attempt) {
      const std::vector<qubit_t> perm_before = perm_;
      try {
        sched::DistPlan plan = sched::dist_schedule(c, nl, dopts_, &perm_);
        session_->submit([this, plan](cluster::Comm& comm) {
          sched::run_dist_plan(*slots_[static_cast<std::size_t>(comm.rank())], plan,
                               policy_);
        });
        session_->sync();
        snapshot_net();
        if (checkpoints_enabled()) {
          replay_pred_s_ += sched::predicted_seconds(plan, {});
          ++segments_since_ckpt_;
          replay_log_.push_back({std::move(plan), perm_});
        }
        break;
      } catch (...) {
        perm_ = perm_before;
        // Retry only with a complete replay log: without checkpointing
        // there is no way back to the segment's start state, so the
        // typed error propagates (the engine may degrade).
        if (!checkpoints_enabled() || !cluster::retryable_fault(std::current_exception()) ||
            attempt >= max_retries_)
          throw;
        note_retry(attempt);
        restore_and_replay();
      }
    }
    if (!resident_mode_) flush_to_host();
  }

  index_t measure_register(sim::StateVector& sv, RegRef r, double u,
                           bool collapse) override {
    ensure_resident(sv);
    // Collapse destroys the pre-measurement state, and — unlike a gate
    // segment — cannot be replayed from the plan log. Force a checkpoint
    // of the pre-collapse state so a mid-collapse fault can retry.
    if (collapse) maybe_checkpoint(/*force=*/true);
    // Measure through the live permutation: bit j of the outcome reads
    // the physical position of logical qubit offset+j. No restore pass.
    std::vector<qubit_t> phys(r.width);
    for (qubit_t j = 0; j < r.width; ++j) phys[j] = perm_[r.offset + j];
    index_t outcome = 0;
    for (int attempt = 0;; ++attempt) {
      try {
        session_->submit([this, phys, u, collapse, &outcome](cluster::Comm& comm) {
          auto& dsv = *slots_[static_cast<std::size_t>(comm.rank())];
          const std::vector<double> dist =
              dsv.register_distribution(std::span<const qubit_t>(phys));
          const index_t o = sim::SampleCdf::from_weights(dist).sample(u);
          if (comm.rank() == 0) outcome = o;
          if (!collapse) return;  // read-only: resident state untouched
          for (std::size_t j = 0; j < phys.size(); ++j)
            dsv.collapse(phys[j], bits::test(o, static_cast<qubit_t>(j)) ? 1 : 0);
        });
        session_->sync();
        snapshot_net();
        break;
      } catch (...) {
        // A collapsing retry needs the pre-collapse checkpoint back; a
        // read-only measure can always re-run against intact chunks.
        if (!cluster::retryable_fault(std::current_exception()) || attempt >= max_retries_ ||
            (collapse && !checkpoints_enabled()))
          throw;
        note_retry(attempt);
        if (collapse) restore_and_replay();
      }
    }
    // The collapsed state is a new point of no return the plan log
    // cannot reach; re-checkpoint it so later segment retries restore
    // *post*-measurement state.
    if (collapse && checkpoints_enabled()) take_checkpoint();
    // Per-op baseline fidelity: the pre-session code gathered only when
    // the op mutated the state — a read-only measure pays its scatter
    // and drops the chunks.
    if (!resident_mode_) {
      if (collapse) {
        flush_to_host();
      } else {
        discard_resident();
      }
    }
    return outcome;
  }

  double expectation_z(sim::StateVector& sv, index_t mask) override {
    ensure_resident(sv);
    // <Z_mask> is permutation-covariant: map the logical mask to the
    // physical bit positions and reduce in place.
    index_t pmask = 0;
    for (qubit_t q = 0; mask >> q; ++q)
      if (bits::test(mask, q)) pmask = bits::set(pmask, perm_[q]);
    double value = 0;
    for (int attempt = 0;; ++attempt) {
      try {
        session_->submit([this, pmask, &value](cluster::Comm& comm) {
          auto& dsv = *slots_[static_cast<std::size_t>(comm.rank())];
          const double v = emu::expectation_z_string(dsv, pmask);
          if (comm.rank() == 0) value = v;
        });
        session_->sync();
        snapshot_net();
        break;
      } catch (...) {
        // Read-only reduction: the chunks are intact after a failed
        // attempt, so retry in place without any restore.
        if (!cluster::retryable_fault(std::current_exception()) || attempt >= max_retries_)
          throw;
        note_retry(attempt);
      }
    }
    if (!resident_mode_) discard_resident();  // read-only: no gather
    return value;
  }

  void end_run(sim::StateVector& sv) override {
    if (resident_ && host_ == &sv) flush_to_host();
  }

  /// Counters are *snapshots taken at op boundaries* (snapshot_net after
  /// every sync), not live reads of the per-rank DistStateVector
  /// counters — a live read could fold bytes a later submission is
  /// already accumulating into the wrong op's trace row.
  [[nodiscard]] BackendCounters counters() const override {
    return {host_bytes_, net_bytes_};
  }

 private:
  /// Every rank must keep at least one *local* qubit (the distributed
  /// planner schedules within the local block), so the rank count clamps
  /// to 2^(n-1) for narrow registers (lowered programs can be tiny).
  [[nodiscard]] int effective_ranks(qubit_t n) const {
    if (n <= 1) return 1;
    return static_cast<int>(
        std::min<index_t>(static_cast<index_t>(ranks_), dim(static_cast<qubit_t>(n - 1))));
  }

  [[nodiscard]] qubit_t session_global_qubits() const {
    return static_cast<qubit_t>(
        bits::log2_floor(static_cast<index_t>(session_->ranks())));
  }

  /// Binds `sv` as the resident distributed state: opens (or reuses)
  /// the session and scatters the host amplitudes into per-rank chunks.
  /// Subsequent calls with the same bound state are free — this is the
  /// "exactly one scatter per run" point. A *different* state (or a
  /// width change, e.g. the clamp lifting when the register widens)
  /// first flushes the old resident state back, and reuses the already
  /// parked rank threads whenever the clamp resolves to the same rank
  /// count instead of silently rebuilding the session per op.
  void ensure_resident(sim::StateVector& sv) {
    if (resident_ && host_ == &sv && resident_n_ == sv.qubits()) return;
    if (resident_) flush_to_host();
    const int eff = effective_ranks(sv.qubits());
    if (session_ == nullptr || session_->ranks() != eff)
      session_ = std::make_unique<cluster::ClusterSession>(eff);
    if (timeout_s_ > 0) session_->set_timeout(timeout_s_);
    const qubit_t n = sv.qubits();
    const auto amps = sv.amplitudes();
    obs::Span scatter_span("dist.scatter");
    scatter_span.arg("host_bytes",
                     static_cast<double>(models::staging_bytes(n, sizeof(value_type))));
    scatter_span.arg("pred_s", models::t_host_staging_seconds(n, 1, {}, sizeof(value_type)));
    // The scatter retries without a checkpoint: the host state it reads
    // from is untouched by a failed attempt, so each retry just rebuilds
    // the slots from scratch.
    for (int attempt = 0;; ++attempt) {
      release_slots();
      slots_.resize(static_cast<std::size_t>(eff));
      slot_bytes_seen_.assign(static_cast<std::size_t>(eff), 0);
      try {
        session_->submit([this, n, amps](cluster::Comm& comm) {
          cluster::fault_point("dist.scatter", comm.rank());
          auto dsv = std::make_unique<sim::BasicDistStateVector<T>>(comm, n);
          const index_t chunk = dim(dsv->local_qubits());
          const auto base =
              static_cast<std::ptrdiff_t>(comm.rank()) * static_cast<std::ptrdiff_t>(chunk);
          std::transform(amps.begin() + base,
                         amps.begin() + base + static_cast<std::ptrdiff_t>(chunk),
                         dsv->local().begin(),
                         [](const complex_t& z) { return static_cast<value_type>(z); });
          slots_[static_cast<std::size_t>(comm.rank())] = std::move(dsv);
        });
        session_->sync();
        break;
      } catch (...) {
        if (!cluster::retryable_fault(std::current_exception()) || attempt >= max_retries_)
          throw;
        note_retry(attempt);
      }
    }
    scatter_span.end();
    host_ = &sv;
    resident_ = true;
    resident_n_ = n;
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), qubit_t{0});
    host_bytes_ += models::staging_bytes(n, sizeof(value_type));
    // Fresh residency: any previous checkpoint/replay state described a
    // different (or stale) resident state.
    ckpt_valid_ = false;
    ckpt_chunks_.clear();
    ckpt_perm_.clear();
    replay_log_.clear();
    replay_pred_s_ = 0;
    segments_since_ckpt_ = 0;
  }

  /// The at-most-one gather: restores physical qubit order (the only
  /// restore of the whole run — segments deferred theirs via perm_io),
  /// copies the chunks back into the bound host state, and drops the
  /// resident slots. The session stays open for reuse.
  void flush_to_host() {
    if (!resident_) return;
    const auto amps = host_->amplitudes();
    obs::Span gather_span("dist.gather");
    gather_span.arg("host_bytes", static_cast<double>(models::staging_bytes(
                                      resident_n_, sizeof(value_type))));
    gather_span.arg("pred_s",
                    models::t_host_staging_seconds(resident_n_, 1, {}, sizeof(value_type)));
    for (int attempt = 0;; ++attempt) {
      // Recompute the restore rounds per attempt: a restore_and_replay
      // below resets perm_ to the checkpoint's permutation.
      const auto rounds = sched::restore_rounds(perm_);
      try {
        session_->submit([this, rounds, amps](cluster::Comm& comm) {
          cluster::fault_point("dist.gather", comm.rank());
          auto& dsv = *slots_[static_cast<std::size_t>(comm.rank())];
          for (const auto& swaps : rounds) dsv.apply_qubit_swaps(swaps);
          const index_t chunk = dim(dsv.local_qubits());
          const auto base =
              static_cast<std::ptrdiff_t>(comm.rank()) * static_cast<std::ptrdiff_t>(chunk);
          std::transform(dsv.local().begin(), dsv.local().end(), amps.begin() + base,
                         [](const value_type& z) { return static_cast<complex_t>(z); });
        });
        session_->sync();
        break;
      } catch (...) {
        // The restore rounds mutate the chunks mid-gather, so a failed
        // attempt needs the checkpoint back before retrying.
        if (!checkpoints_enabled() || !cluster::retryable_fault(std::current_exception()) ||
            attempt >= max_retries_)
          throw;
        note_retry(attempt);
        restore_and_replay();
      }
    }
    gather_span.end();
    release_slots();
    host_bytes_ += models::staging_bytes(resident_n_, sizeof(value_type));
    resident_ = false;
    host_ = nullptr;
  }

  /// Drops the resident chunks *without* gathering — legal only when
  /// the resident state still equals the bound host state (read-only
  /// ops in the per-op baseline, where residency was created this op
  /// and nothing mutated or permuted it).
  void discard_resident() {
    if (!resident_) return;
    release_slots();
    resident_ = false;
    host_ = nullptr;
  }

  // --- failure domain: checkpoint / restore / retry ---------------------

  /// Whether segment checkpointing is armed. interval -1 disables it
  /// outright; 0 ("auto") arms it only while a fault source exists — an
  /// installed FaultInjector or a deadline budget — so the default
  /// fault-free configuration pays zero checkpoint overhead.
  [[nodiscard]] bool checkpoints_enabled() const {
    if (ckpt_interval_ < 0) return false;
    if (ckpt_interval_ > 0) return true;
    return timeout_s_ > 0 || session_timeout() > 0 ||
           cluster::current_injector() != nullptr;
  }

  [[nodiscard]] double session_timeout() const {
    return session_ != nullptr ? session_->timeout() : 0.0;
  }

  /// Counts a retry and sleeps an exponential backoff (capped well under
  /// a second — the cluster is in-process, the backoff only prevents a
  /// hot retry loop against a still-unhealthy session).
  void note_retry(int attempt) {
    obs::instant("fault.retry");
    obs::counter_add("fault.retries", 1);
    const double backoff_s = 0.0005 * std::ldexp(1.0, std::min(attempt, 8));
    obs::counter_add("fault.backoff_ms", backoff_s * 1e3);
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
  }

  /// Checkpoint policy gate. Unforced: every ckpt_interval_ segments, or
  /// (auto) when the predicted replay cost of the uncheckpointed segment
  /// log exceeds a few checkpoint costs (models::checkpoint_due).
  /// Forced (pre-collapse): whenever the current state is not already
  /// captured by checkpoint + replay log... i.e. always capturable, so a
  /// force only spends a checkpoint when it shortens the restore path.
  void maybe_checkpoint(bool force = false) {
    if (!resident_ || !checkpoints_enabled()) return;
    bool due = false;
    if (force) {
      due = !ckpt_valid_ || !replay_log_.empty();
    } else if (ckpt_interval_ > 0) {
      due = segments_since_ckpt_ >= static_cast<std::size_t>(ckpt_interval_);
    } else {
      due = models::checkpoint_due(replay_pred_s_, resident_n_, {});
    }
    if (due) take_checkpoint();
  }

  /// Copies every rank's resident chunk (and the carried permutation)
  /// into host-side checkpoint storage. The copy job is communication-
  /// free but still runs on the rank threads, so injected cluster.job
  /// faults exercise checkpoint failure too. The old checkpoint's
  /// buffers are reused as storage, so it is marked invalid for the
  /// duration of the copy.
  void take_checkpoint() {
    obs::Span span("dist.checkpoint");
    span.arg("bytes", static_cast<double>(
                          models::staging_bytes(resident_n_, sizeof(value_type))));
    ckpt_valid_ = false;
    ckpt_chunks_.resize(slots_.size());
    for (int attempt = 0;; ++attempt) {
      try {
        session_->submit([this](cluster::Comm& comm) {
          const auto r = static_cast<std::size_t>(comm.rank());
          const auto& local = slots_[r]->local();
          ckpt_chunks_[r].assign(local.begin(), local.end());
        });
        session_->sync();
        snapshot_net();
        break;
      } catch (...) {
        if (!cluster::retryable_fault(std::current_exception()) || attempt >= max_retries_)
          throw;
        note_retry(attempt);
      }
    }
    ckpt_perm_ = perm_;
    ckpt_valid_ = true;
    replay_log_.clear();
    replay_pred_s_ = 0;
    segments_since_ckpt_ = 0;
    obs::counter_add("checkpoint.count", 1);
    obs::counter_add("checkpoint.bytes",
                     static_cast<double>(
                         models::staging_bytes(resident_n_, sizeof(value_type))));
  }

  /// Restores the last checkpoint (or the original scattered host state
  /// when no checkpoint was taken yet) and replays the logged segments,
  /// leaving chunks and perm_ exactly as before the failed op. The
  /// restore itself can hit injected faults; it retries under the same
  /// budget and rethrows typed errors to the caller when exhausted.
  void restore_and_replay() {
    for (int attempt = 0;; ++attempt) {
      try {
        restore_once();
        return;
      } catch (...) {
        if (!cluster::retryable_fault(std::current_exception()) || attempt >= max_retries_)
          throw;
        note_retry(attempt);
      }
    }
  }

  void restore_once() {
    obs::Span span("dist.restore");
    span.arg("segments", static_cast<double>(replay_log_.size()));
    obs::counter_add("checkpoint.restores", 1);
    const bool from_ckpt = ckpt_valid_;
    const qubit_t n = resident_n_;
    const auto amps = host_->amplitudes();
    session_->submit([this, from_ckpt, n, amps](cluster::Comm& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      // An aborted alloc-fail can leave a slot null; recreate it (the
      // constructor re-passes the dist.alloc fault site).
      if (slots_[r] == nullptr)
        slots_[r] = std::make_unique<sim::BasicDistStateVector<T>>(comm, n);
      auto& dsv = *slots_[r];
      if (from_ckpt) {
        std::copy(ckpt_chunks_[r].begin(), ckpt_chunks_[r].end(), dsv.local().begin());
      } else {
        // No checkpoint yet: the bound host state still holds the
        // amplitudes the residency was scattered from (it only goes
        // stale at flush_to_host, which happens after the run's ops).
        const index_t chunk = dim(dsv.local_qubits());
        const auto base =
            static_cast<std::ptrdiff_t>(comm.rank()) * static_cast<std::ptrdiff_t>(chunk);
        std::transform(amps.begin() + base,
                       amps.begin() + base + static_cast<std::ptrdiff_t>(chunk),
                       dsv.local().begin(),
                       [](const complex_t& z) { return static_cast<value_type>(z); });
      }
    });
    session_->sync();
    // A recreated slot's communication counter restarted from zero;
    // resync the snapshot baseline so the next delta cannot underflow.
    for (std::size_t r = 0; r < slots_.size(); ++r)
      slot_bytes_seen_[r] = slots_[r] != nullptr ? slots_[r]->bytes_communicated() : 0;
    if (from_ckpt) {
      perm_ = ckpt_perm_;
    } else {
      perm_.assign(static_cast<std::size_t>(n), 0);
      std::iota(perm_.begin(), perm_.end(), qubit_t{0});
    }
    // Replay the logged segments on top of the restored state.
    for (std::size_t s = 0; s < replay_log_.size(); ++s) {
      session_->submit([this, s](cluster::Comm& comm) {
        sched::run_dist_plan(*slots_[static_cast<std::size_t>(comm.rank())],
                             replay_log_[s].plan, policy_);
      });
      session_->sync();
      perm_ = replay_log_[s].perm_after;
    }
    snapshot_net();
  }

  /// Folds the *delta* of every rank's communication counter since the
  /// previous snapshot into net_bytes_. Called after each sync, so the
  /// engine's per-op counter reads see bytes attributed to the op that
  /// actually moved them (not lumped into whichever op released the
  /// slots).
  void snapshot_net() {
    for (std::size_t r = 0; r < slots_.size(); ++r)
      if (slots_[r] != nullptr) {
        const std::uint64_t seen = slots_[r]->bytes_communicated();
        net_bytes_ += seen - slot_bytes_seen_[r];
        slot_bytes_seen_[r] = seen;
      }
  }

  /// Takes a final snapshot and frees the chunks (host-side:
  /// DistStateVector's destructor does not communicate).
  void release_slots() {
    snapshot_net();
    slots_.clear();
    slot_bytes_seen_.clear();
  }

  int ranks_;
  sim::CommPolicy policy_;
  sched::DistScheduleOptions dopts_;
  bool resident_mode_;

  std::unique_ptr<cluster::ClusterSession> session_;
  std::vector<std::unique_ptr<sim::BasicDistStateVector<T>>> slots_;  ///< One per rank.
  /// Per-rank bytes_communicated() value at the last snapshot_net —
  /// deltas against these attribute communication to the right op.
  std::vector<std::uint64_t> slot_bytes_seen_;
  sim::StateVector* host_ = nullptr;  ///< Host state the residency is bound to.
  bool resident_ = false;
  qubit_t resident_n_ = 0;
  std::vector<qubit_t> perm_;  ///< Logical->physical, carried across segments.
  std::uint64_t host_bytes_ = 0;
  std::uint64_t net_bytes_ = 0;

  // Failure domain (see README "Failure model").
  double timeout_s_ = 0;   ///< RunOptions::dist_timeout_s.
  int ckpt_interval_ = 0;  ///< RunOptions::dist_checkpoint_interval.
  int max_retries_ = 2;    ///< RunOptions::dist_max_retries.
  /// One executed gate segment since the last checkpoint: enough to
  /// replay it (the plan) and to land on the right permutation after.
  struct SegmentLog {
    sched::DistPlan plan;
    std::vector<qubit_t> perm_after;
  };
  std::vector<SegmentLog> replay_log_;
  double replay_pred_s_ = 0;  ///< Predicted replay cost of replay_log_ (model s).
  std::size_t segments_since_ckpt_ = 0;
  std::vector<std::vector<value_type>> ckpt_chunks_;  ///< Per-rank chunk copies.
  std::vector<qubit_t> ckpt_perm_;                   ///< perm_ at checkpoint time.
  bool ckpt_valid_ = false;
};

struct BackendEntry {
  BackendFactory make;
  SimulatorFactory make_sim;  // null for emulation-only backends
};

/// Per-gate fp32 runner over the float-instantiated kernel entry
/// points (the scalar/AVX2/AVX-512 choice still goes through the
/// runtime dispatch tables inside).
Fp32SegmentBackend::Runner fp32_per_gate_runner(bool hpc_style, bool parallel) {
  return [hpc_style, parallel](std::span<basic_complex_t<float>> a, qubit_t n,
                               const circuit::Circuit& c) {
    for (const circuit::Gate& g : c.gates()) {
      if (hpc_style)
        sim::apply_gate_hpc<float>(a, n, g);
      else
        sim::apply_gate_generic<float>(a, n, g, parallel);
    }
  };
}

std::map<std::string, BackendEntry>& registry() {
  static std::map<std::string, BackendEntry> reg = [] {
    std::map<std::string, BackendEntry> r;
    // Gate-level entries dispatch on RunOptions::precision: fp64 wraps
    // the plain sim::Simulator; fp32 wraps the same algorithm's float
    // instantiation behind the convert-at-segment-boundary adapter.
    const auto gate_level = [](const char* name, SimulatorFactory sf,
                               Fp32SegmentBackend::Runner f32) {
      return BackendEntry{
          [name, sf, f32](const RunOptions& opts) -> std::unique_ptr<Backend> {
            if (opts.precision == Precision::kF32)
              return std::make_unique<Fp32SegmentBackend>(name, f32);
            return std::make_unique<GateLevelBackend>(sf());
          },
          sf};
    };
    r["hpc"] = gate_level(
        "hpc", [] { return std::make_unique<sim::HpcSimulator>(); },
        fp32_per_gate_runner(/*hpc_style=*/true, /*parallel=*/true));
    r["qhipster-like"] = gate_level(
        "qhipster-like", [] { return std::make_unique<sim::QhipsterLikeSimulator>(); },
        fp32_per_gate_runner(/*hpc_style=*/false, /*parallel=*/true));
    r["liquid-like"] = gate_level(
        "liquid-like", [] { return std::make_unique<sim::LiquidLikeSimulator>(); },
        fp32_per_gate_runner(/*hpc_style=*/false, /*parallel=*/false));
    r["fused"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          if (opts.precision == Precision::kF32)
            return std::make_unique<Fp32SegmentBackend>(
                "fused", [fusion = opts.fusion](std::span<basic_complex_t<float>> a,
                                                qubit_t n, const circuit::Circuit& c) {
                  fuse::execute_fused<float>(a, n, fuse::fuse_circuit(c, fusion));
                });
          return std::make_unique<GateLevelBackend>(std::make_unique<fuse::FusedSimulator>(
              fuse::FusedSimulator::Options{opts.fusion}));
        },
        [] { return std::make_unique<fuse::FusedSimulator>(); }};
    r["cached"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          if (opts.precision == Precision::kF32) {
            auto cached = std::make_shared<sched::CachedSimulator>(
                sched::CachedSimulator::Options{opts.fusion, opts.sched});
            return std::make_unique<Fp32SegmentBackend>(
                "cached", [cached](std::span<basic_complex_t<float>> a, qubit_t,
                                   const circuit::Circuit& c) {
                  sched::execute_blocked<float>(a, cached->plan(c));
                });
          }
          return std::make_unique<GateLevelBackend>(std::make_unique<sched::CachedSimulator>(
              sched::CachedSimulator::Options{opts.fusion, opts.sched}));
        },
        [] { return std::make_unique<sched::CachedSimulator>(); }};
    r["auto"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          return std::make_unique<AutoBackend>(opts);
        },
        nullptr};
    r["dist"] = BackendEntry{
        [](const RunOptions& opts) -> std::unique_ptr<Backend> {
          if (opts.precision == Precision::kF32)
            return std::make_unique<DistBackendT<float>>(opts);
          return std::make_unique<DistBackendT<double>>(opts);
        },
        nullptr};
    return r;
  }();
  return reg;
}

[[noreturn]] void throw_unknown(const std::string& what, const std::string& name) {
  std::string names;
  for (const std::string& n : backend_names()) {
    if (!names.empty()) names += ", ";
    names += n;
  }
  throw std::invalid_argument(what + ": unknown backend '" + name + "' (valid: " + names +
                              ")");
}

}  // namespace

void register_backend(const std::string& name, BackendFactory factory,
                      SimulatorFactory sim_factory) {
  if (name.empty() || !factory)
    throw std::invalid_argument("register_backend: empty name or null factory");
  auto [it, inserted] =
      registry().emplace(name, BackendEntry{std::move(factory), std::move(sim_factory)});
  if (!inserted)
    throw std::invalid_argument("register_backend: '" + name + "' already registered");
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::unique_ptr<Backend> make_backend(const std::string& name, const RunOptions& opts) {
  const auto it = registry().find(name);
  if (it == registry().end()) throw_unknown("make_backend", name);
  return it->second.make(opts);
}

std::unique_ptr<sim::Simulator> make_gate_simulator(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) throw_unknown("make_simulator", name);
  if (!it->second.make_sim)
    throw std::invalid_argument("make_simulator: backend '" + name +
                                "' is not a plain sim::Simulator (it emulates "
                                "high-level ops or runs distributed); run it via "
                                "engine::Engine");
  return it->second.make_sim();
}

}  // namespace qc::engine
