// Backend registry — one namespace for every way this library can
// execute a Program.
//
// A Backend executes the *unitary* ops of a Program; Measure /
// ExpectationZ ops are routed through the measurement virtuals below
// with an engine-supplied uniform draw, so the recorded streams stay
// backend-independent for one seed. Two families:
//
//  * gate-level backends ("hpc", "fused", "cached", "qhipster-like",
//    "liquid-like", and the distributed "dist") only ever see gate
//    segments — Engine::run lowers high-level ops first;
//  * emulating backends ("auto") report emulates() == true and execute
//    high-level ops at their mathematical description (emu::Emulator),
//    dispatching gate segments to the fused simulator — the paper's §3
//    contract expressed as one dispatch rule.
//
// register_backend() absorbs what used to be ad-hoc branches inside
// sim::make_simulator; that factory is now a thin shim over
// make_gate_simulator() kept for source compatibility.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/program.hpp"
#include "fuse/fusion.hpp"
#include "sched/schedule.hpp"
#include "sim/dist_sv.hpp"
#include "sim/simulator.hpp"

namespace qc::engine {

/// Per-run knobs carried into Engine::run and the backend factories.
struct RunOptions {
  /// Registered backend name ("auto", "hpc", "fused", ...).
  std::string backend = "auto";
  /// Seed for measurement sampling (one uniform draw per Measure op, in
  /// program order — identical draw sequence on every backend).
  std::uint64_t seed = 1;
  /// Gate-fusion options for backends that fuse ("auto", "fused",
  /// "cached").
  fuse::FusionOptions fusion;
  /// Cache-blocking options for backends that sweep-schedule ("auto",
  /// "cached").
  sched::ScheduleOptions sched;
  /// Amplitude precision gate segments execute at. kF64 (default) is
  /// the reference. kF32 runs the float-instantiated kernels: the host
  /// state stays fp64 and is narrowed once per gate segment (resp. held
  /// float-resident on the dist backend's ranks, halving exchange
  /// bytes); measurement sampling and reductions stay double either
  /// way. Accuracy is bounded by the precision-drift test gate (fp32 vs
  /// fp64 <= 1e-6 max amplitude error on deep QFT/random circuits).
  Precision precision = Precision::kF64;
  /// Initial computational basis state |initial_basis> of the *program*
  /// register (lowering ancillas always start at |0>).
  index_t initial_basis = 0;
  /// Collapse the measured register after each Measure op (off: record
  /// the sampled outcome but leave the state untouched).
  bool collapse_measurements = true;
  /// Lowering options used when the backend is gate-level.
  LowerOptions lower;
  /// Rank count for the "dist" backend — a power of two; the in-process
  /// cluster spawns this many rank threads (clamped so every rank holds
  /// at least one amplitude of the run's register).
  int dist_ranks = 2;
  /// Communication policy for the "dist" backend's per-gate fallbacks
  /// (Specialized skips exchanges for diagonal global targets and
  /// unsatisfied global controls; Exchange is the qHiPSTER-like
  /// every-global-gate exchange).
  sim::CommPolicy dist_policy = sim::CommPolicy::Specialized;
  /// Allow the "dist" backend's cost-gated global<->local qubit
  /// exchange passes (off: every global-qubit gate runs per-gate).
  bool dist_remap = true;
  /// Keep the "dist" backend's distributed state resident across the
  /// whole run: one scatter at first use, ops executed against the
  /// live per-rank chunks (gate segments chain their qubit permutation
  /// forward instead of restoring logical order between segments), one
  /// gather at run end. Off: the pre-session behaviour — every
  /// engine-routed op pays its own scatter, and every mutating op its
  /// own gather (kept as the measurable baseline; see
  /// models::t_host_staging_seconds).
  bool dist_resident = true;
  /// Collect a structured trace of the run (obs::Tracer): hierarchical
  /// spans across every layer — engine op, fusion, sweep scheduling,
  /// chunk sweeps, dist exchanges, per-rank cluster jobs — returned in
  /// Result.trace_data for the Chrome-trace / metrics / model-report
  /// exporters (obs/report.hpp). Off (default): instrumentation costs
  /// one relaxed atomic load per site.
  bool trace = false;

  // --- failure domain (see README "Failure model") ----------------------

  /// Deadline budget (seconds) for the dist backend's cluster session:
  /// a blocking recv/barrier that waits longer aborts the cluster and
  /// raises cluster::TimeoutError; sync() runs a watchdog at a grace
  /// multiple of the same budget. <= 0: deadlines off (unless
  /// QC_CLUSTER_TIMEOUT_S arms them process-wide).
  double dist_timeout_s = 0;
  /// Segment-granular checkpoint policy for the dist backend:
  ///   -1   off — a retryable fault cannot replay (the run degrades or
  ///        fails instead);
  ///    0   auto (default) — checkpoint when the predicted replay cost
  ///        of the uncheckpointed segment log exceeds a few checkpoints
  ///        (models::checkpoint_due), armed only while a fault source
  ///        exists (an installed FaultInjector or a timeout budget), so
  ///        fault-free runs pay nothing;
  ///    N>0 checkpoint every N gate segments, unconditionally.
  int dist_checkpoint_interval = 0;
  /// Retry budget per op for retryable cluster faults (timeout,
  /// injected fault, allocation failure): each retry restores the last
  /// checkpoint, replays the segment log and re-runs the op. 0: faults
  /// propagate immediately.
  int dist_max_retries = 2;
  /// Deterministic fault-injection schedule installed for the whole run
  /// (cluster::FaultInjector::parse grammar, e.g.
  /// "abort@cluster.barrier#2;drop@cluster.send#1/0"). Empty: the
  /// QC_FAULTS environment variable, if set.
  std::string fault_spec;
  /// Degradation ladder: on an unrecoverable cluster error mid-run,
  /// restart the program on the single-node "cached" backend (recorded
  /// in Result.degraded and the trace) instead of failing. Off: the
  /// typed error propagates to the caller.
  bool degrade = true;
};

/// Monotone byte counters a backend exposes for the per-op engine
/// trace. `host_bytes` is data staged between the engine's host state
/// and backend-resident storage (the dist backend's scatter/gather);
/// `net_bytes` is data moved between ranks. Engine::run records per-op
/// deltas, so a resident run shows one scatter on the first op and one
/// gather at finalize instead of two stagings on every op.
struct BackendCounters {
  std::uint64_t host_bytes = 0;
  std::uint64_t net_bytes = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// True if this backend executes high-level ops natively; false means
  /// Engine::run must lower() the program to gates first.
  [[nodiscard]] virtual bool emulates() const { return false; }

  /// Executes a gate segment.
  virtual void run_gates(sim::StateVector& sv, const circuit::Circuit& c) = 0;

  /// Executes a high-level unitary op. Default throws std::logic_error —
  /// gate-level backends never see one.
  virtual void run_highlevel(sim::StateVector& sv, const Op& op);

  /// Samples a measurement outcome of register `r` using the
  /// engine-supplied uniform draw `u` (exactly one per Measure op, so
  /// the recorded stream is identical across backends for one seed),
  /// optionally collapsing the register. Default: one distribution pass
  /// plus the shared zero-probability-safe inverse-CDF sampler.
  /// Backends with their own state layout ("dist") override with a
  /// collective implementation.
  virtual index_t measure_register(sim::StateVector& sv, RegRef r, double u, bool collapse);

  /// <Z_mask> of the current state. Default: serial one-pass reduction;
  /// "dist" overrides with the collective reduction.
  virtual double expectation_z(sim::StateVector& sv, index_t mask);

  /// Called once by Engine::run after the last op. Backends holding
  /// state resident elsewhere ("dist") flush it back into `sv` here —
  /// the at-most-one gather of a resident run. Default: no-op.
  virtual void end_run(sim::StateVector& sv);

  /// Monotone counters behind the engine trace's per-op byte columns.
  /// Default: all zero (purely host-side backends move nothing).
  [[nodiscard]] virtual BackendCounters counters() const;
};

using BackendFactory = std::function<std::unique_ptr<Backend>(const RunOptions&)>;
using SimulatorFactory = std::function<std::unique_ptr<sim::Simulator>()>;

/// Registers a backend under `name`. A non-null `sim_factory` marks the
/// backend as wrapping a plain gate-level sim::Simulator, reachable
/// through sim::make_simulator(name). Throws std::invalid_argument on a
/// duplicate name.
void register_backend(const std::string& name, BackendFactory factory,
                      SimulatorFactory sim_factory = nullptr);

/// Sorted names of every registered backend (builtins plus user
/// registrations).
[[nodiscard]] std::vector<std::string> backend_names();

/// Instantiates a registered backend; unknown names throw
/// std::invalid_argument listing backend_names().
[[nodiscard]] std::unique_ptr<Backend> make_backend(const std::string& name,
                                                    const RunOptions& opts = {});

/// The gate-level sim::Simulator a registered backend wraps — the
/// delegate behind sim::make_simulator. Throws std::invalid_argument for
/// unknown names (listing the registry) and for emulation-only backends
/// like "auto".
[[nodiscard]] std::unique_ptr<sim::Simulator> make_gate_simulator(const std::string& name);

}  // namespace qc::engine
