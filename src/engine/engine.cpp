#include "engine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/timer.hpp"
#include "emu/observables.hpp"

namespace qc::engine {

namespace {

/// Samples a full-register outcome from the exact distribution (§3.4 —
/// one distribution pass, one uniform draw) and optionally collapses the
/// register to it.
index_t measure_register(sim::StateVector& sv, RegRef r, Rng& rng, bool collapse) {
  const std::vector<double> dist = sv.register_distribution(r.offset, r.width);
  double u = rng.uniform();
  index_t outcome = 0;
  bool found = false;
  for (index_t v = 0; v < dist.size(); ++v) {
    u -= dist[v];
    if (u <= 0 && dist[v] > 0) {  // never pick a zero-probability outcome
      outcome = v;
      found = true;
      break;
    }
  }
  if (!found)  // fp leftover past the sum: last outcome with support
    for (index_t v = static_cast<index_t>(dist.size()); v-- > 0;)
      if (dist[v] > 0) {
        outcome = v;
        break;
      }
  if (collapse)
    for (qubit_t j = 0; j < r.width; ++j)
      sv.collapse(r.offset + j, bits::test(outcome, j) ? 1 : 0);
  return outcome;
}

}  // namespace

Result Engine::run(const Program& p, const RunOptions& opts) const {
  const std::unique_ptr<Backend> backend = make_backend(opts.backend, opts);
  if (opts.initial_basis >= dim(p.qubits()))
    throw std::invalid_argument("Engine::run: initial_basis outside the register");

  Program lowered;
  const Program* prog = &p;
  if (!backend->emulates() && p.needs_lowering()) {
    lowered = lower(p, opts.lower);
    prog = &lowered;
  }

  sim::StateVector sv(prog->qubits());
  sv.set_basis(opts.initial_basis);  // ancillas (high qubits) stay |0>
  Rng rng(opts.seed);

  Result res;
  res.backend = opts.backend;
  res.run_qubits = prog->qubits();
  res.trace.reserve(prog->size());
  WallTimer total;
  for (const Op& op : prog->ops()) {
    WallTimer t;
    switch (op.kind) {
      case OpKind::Measure:
        res.measurements.push_back(
            measure_register(sv, op.a, rng, opts.collapse_measurements));
        break;
      case OpKind::ExpectationZ:
        res.expectations.push_back(emu::expectation_z_string(sv, op.mask));
        break;
      case OpKind::GateSegment:
        backend->run_gates(sv, op.gates);
        break;
      default:
        backend->run_highlevel(sv, op);
    }
    res.trace.push_back({op.label(), t.seconds()});
  }
  res.total_seconds = total.seconds();

  if (prog->qubits() == p.qubits()) {
    res.state = std::move(sv);
    return res;
  }
  // Lowering ran on a widened register: every work ancilla must be back
  // at |0>, which confines the state to the first 2^n amplitudes.
  const index_t keep = dim(p.qubits());
  double kept_norm = 0;
  for (index_t i = 0; i < keep; ++i) kept_norm += std::norm(sv[i]);
  if (std::abs(kept_norm - sv.norm_sq()) > 1e-9)
    throw std::logic_error("Engine::run: lowering left work ancillas dirty");
  res.state = sim::StateVector(p.qubits());
  std::copy(sv.amplitudes().begin(), sv.amplitudes().begin() + static_cast<std::ptrdiff_t>(keep),
            res.state.amplitudes().begin());
  return res;
}

}  // namespace qc::engine
