#include "engine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "cluster/fault.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "sim/kernels_dispatch.hpp"

namespace qc::engine {

namespace {

/// One end-to-end attempt of the program on one backend. Throws
/// whatever the backend throws; the degradation ladder in Engine::run
/// decides whether a cluster error gets a second attempt elsewhere.
Result run_attempt(const Program& p, const RunOptions& opts,
                   const std::string& backend_name) {
  const std::unique_ptr<Backend> backend = make_backend(backend_name, opts);
  obs::Span run_span("engine.run");
  // Record the kernel dispatch decision this run executes under: the
  // runtime-selected SIMD tier (CPUID + QC_SIMD, see kernels_dispatch)
  // and the amplitude precision. Decoded by obs::summary_table /
  // model_report into "isa=... fp=32/64".
  obs::instant("engine.dispatch",
               {{"isa", static_cast<double>(sim::kernels::active_isa())},
                {"fp_bits", static_cast<double>(precision_bits(opts.precision))}});

  Program lowered;
  const Program* prog = &p;
  if (!backend->emulates() && p.needs_lowering()) {
    obs::Span sp("engine.lower");
    lowered = lower(p, opts.lower);
    sp.arg("ops_in", static_cast<double>(p.size()));
    sp.arg("ops_out", static_cast<double>(lowered.size()));
    prog = &lowered;
  }

  sim::StateVector sv(prog->qubits());
  sv.set_basis(opts.initial_basis);  // ancillas (high qubits) stay |0>
  Rng rng(opts.seed);

  Result res;
  res.backend = backend_name;
  res.run_qubits = prog->qubits();
  res.trace.reserve(prog->size());
  WallTimer total;
  BackendCounters before = backend->counters();
  for (const Op& op : prog->ops()) {
    const std::string label = op.label();
    WallTimer t;
    obs::Span op_span(label);
    switch (op.kind) {
      case OpKind::Measure:
        // The engine draws the uniform (one per Measure op, in program
        // order) so the recorded stream is seed-deterministic on every
        // backend; the backend maps it to an outcome (§3.4 — the "dist"
        // backend does so collectively against the distributed state).
        res.measurements.push_back(backend->measure_register(
            sv, op.a, rng.uniform(), opts.collapse_measurements));
        break;
      case OpKind::ExpectationZ:
        res.expectations.push_back(backend->expectation_z(sv, op.mask));
        break;
      case OpKind::GateSegment:
        backend->run_gates(sv, op.gates);
        // Gate segments are unitary: the 2-norm must survive each one.
        // Backends holding the state resident elsewhere leave sv's
        // (normalized) host copy untouched mid-run; their real check
        // runs after end_run below. Tolerance scales with the number of
        // rounding sites in the norm reduction itself.
        QC_CHECK_MSG(std::abs(sv.norm_sq() - 1.0) <
                         1e-12 * static_cast<double>(dim(prog->qubits())) + 1e-9,
                     "gate segment broke norm preservation: |psi|^2 = " +
                         std::to_string(sv.norm_sq()));
        break;
      default:
        backend->run_highlevel(sv, op);
    }
    const BackendCounters after = backend->counters();
    op_span.arg("host_bytes", static_cast<double>(after.host_bytes - before.host_bytes));
    op_span.arg("net_bytes", static_cast<double>(after.net_bytes - before.net_bytes));
    op_span.end();
    res.trace.push_back({label, t.seconds(), after.host_bytes - before.host_bytes,
                         after.net_bytes - before.net_bytes});
    before = after;
  }
  // A backend holding state resident elsewhere flushes it back exactly
  // once, here; the bytes it moves get their own trailing trace row so
  // the per-run staging count stays auditable.
  {
    WallTimer t;
    obs::Span fin_span("[finalize]");
    backend->end_run(sv);
    // The flushed-back state covers resident backends' whole run.
    QC_CHECK_MSG(std::abs(sv.norm_sq() - 1.0) <
                     1e-12 * static_cast<double>(dim(prog->qubits())) + 1e-9,
                 "run left a non-normalized state: |psi|^2 = " +
                     std::to_string(sv.norm_sq()));
    const BackendCounters after = backend->counters();
    fin_span.arg("host_bytes", static_cast<double>(after.host_bytes - before.host_bytes));
    fin_span.arg("net_bytes", static_cast<double>(after.net_bytes - before.net_bytes));
    fin_span.end();
    if (after.host_bytes != before.host_bytes || after.net_bytes != before.net_bytes)
      res.trace.push_back({"[finalize]", t.seconds(), after.host_bytes - before.host_bytes,
                           after.net_bytes - before.net_bytes});
    res.host_bytes = after.host_bytes;
    res.net_bytes = after.net_bytes;
  }
  res.total_seconds = total.seconds();

  if (prog->qubits() == p.qubits()) {
    res.state = std::move(sv);
    return res;
  }
  // Lowering ran on a widened register: every work ancilla must be back
  // at |0>, which confines the state to the first 2^n amplitudes.
  const index_t keep = dim(p.qubits());
  double kept_norm = 0;
  for (index_t i = 0; i < keep; ++i) kept_norm += std::norm(sv[i]);
  if (std::abs(kept_norm - sv.norm_sq()) > 1e-9)
    throw std::logic_error("Engine::run: lowering left work ancillas dirty");
  res.state = sim::StateVector(p.qubits());
  std::copy(sv.amplitudes().begin(), sv.amplitudes().begin() + static_cast<std::ptrdiff_t>(keep),
            res.state.amplitudes().begin());
  return res;
}

}  // namespace

Result Engine::run(const Program& p, const RunOptions& opts) const {
  if (opts.initial_basis >= dim(p.qubits()))
    throw std::invalid_argument("Engine::run: initial_basis outside the register");

  // Deterministic fault injection is per-run: an explicit schedule in
  // the options wins, else the QC_FAULTS environment variable, else no
  // injector (fault_point sites cost one relaxed atomic load each).
  std::unique_ptr<cluster::FaultInjector> injector;
  std::string spec = opts.fault_spec;
  if (spec.empty())
    if (const char* env = std::getenv("QC_FAULTS"); env != nullptr) spec = env;
  if (!spec.empty())
    injector = std::make_unique<cluster::FaultInjector>(cluster::FaultInjector::parse(spec));
  const cluster::ScopedFaultInjector scoped_faults(injector.get());

  // Tracing is per-run: the tracer is installed process-wide for the
  // run's duration so every layer down to the rank threads records into
  // it, and collected into Result.trace_data before the backend (and
  // with it any cluster session) is torn down. It outlives a degraded
  // first attempt, so one TraceData shows the failed attempt, the
  // degrade marker and the rerun.
  std::unique_ptr<obs::Tracer> tracer;
  if (opts.trace) tracer = std::make_unique<obs::Tracer>();
  const obs::ScopedTracer scoped_tracer(tracer.get());

  WallTimer total;
  std::string backend_name = opts.backend;
  std::string degraded_from;
  std::string degrade_reason;
  for (int attempt = 0;; ++attempt) {
    try {
      Result res = run_attempt(p, opts, backend_name);
      if (!degraded_from.empty()) {
        res.degraded = true;
        res.degraded_from = degraded_from;
        res.degrade_reason = degrade_reason;
        res.trace.insert(res.trace.begin(), OpTrace{"[degrade]", 0, 0, 0});
        res.total_seconds = total.seconds();  // include the failed attempt
      }
      if (tracer != nullptr)
        res.trace_data = std::make_shared<const obs::TraceData>(tracer->collect());
      return res;
    } catch (const cluster::ClusterError& e) {
      // Only the typed cluster taxonomy degrades: a QC_CHECK failure or
      // any other logic error means wrong *results*, not a lost session,
      // and must keep propagating. One rung on the ladder: dist-like ->
      // "cached"; a cluster error out of "cached" is impossible by
      // construction but would propagate too.
      if (!opts.degrade || attempt > 0 || backend_name == "cached") throw;
      obs::counter_add("engine.degrade", 1);
      obs::instant("engine.degrade");
      degraded_from = backend_name;
      degrade_reason = e.what();
      backend_name = "cached";
    }
  }
}

}  // namespace qc::engine
