#include "engine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/timer.hpp"

namespace qc::engine {

Result Engine::run(const Program& p, const RunOptions& opts) const {
  const std::unique_ptr<Backend> backend = make_backend(opts.backend, opts);
  if (opts.initial_basis >= dim(p.qubits()))
    throw std::invalid_argument("Engine::run: initial_basis outside the register");

  Program lowered;
  const Program* prog = &p;
  if (!backend->emulates() && p.needs_lowering()) {
    lowered = lower(p, opts.lower);
    prog = &lowered;
  }

  sim::StateVector sv(prog->qubits());
  sv.set_basis(opts.initial_basis);  // ancillas (high qubits) stay |0>
  Rng rng(opts.seed);

  Result res;
  res.backend = opts.backend;
  res.run_qubits = prog->qubits();
  res.trace.reserve(prog->size());
  WallTimer total;
  BackendCounters before = backend->counters();
  for (const Op& op : prog->ops()) {
    WallTimer t;
    switch (op.kind) {
      case OpKind::Measure:
        // The engine draws the uniform (one per Measure op, in program
        // order) so the recorded stream is seed-deterministic on every
        // backend; the backend maps it to an outcome (§3.4 — the "dist"
        // backend does so collectively against the distributed state).
        res.measurements.push_back(backend->measure_register(
            sv, op.a, rng.uniform(), opts.collapse_measurements));
        break;
      case OpKind::ExpectationZ:
        res.expectations.push_back(backend->expectation_z(sv, op.mask));
        break;
      case OpKind::GateSegment:
        backend->run_gates(sv, op.gates);
        break;
      default:
        backend->run_highlevel(sv, op);
    }
    const BackendCounters after = backend->counters();
    res.trace.push_back({op.label(), t.seconds(), after.host_bytes - before.host_bytes,
                         after.net_bytes - before.net_bytes});
    before = after;
  }
  // A backend holding state resident elsewhere flushes it back exactly
  // once, here; the bytes it moves get their own trailing trace row so
  // the per-run staging count stays auditable.
  {
    WallTimer t;
    backend->end_run(sv);
    const BackendCounters after = backend->counters();
    if (after.host_bytes != before.host_bytes || after.net_bytes != before.net_bytes)
      res.trace.push_back({"[finalize]", t.seconds(), after.host_bytes - before.host_bytes,
                           after.net_bytes - before.net_bytes});
    res.host_bytes = after.host_bytes;
    res.net_bytes = after.net_bytes;
  }
  res.total_seconds = total.seconds();

  if (prog->qubits() == p.qubits()) {
    res.state = std::move(sv);
    return res;
  }
  // Lowering ran on a widened register: every work ancilla must be back
  // at |0>, which confines the state to the first 2^n amplitudes.
  const index_t keep = dim(p.qubits());
  double kept_norm = 0;
  for (index_t i = 0; i < keep; ++i) kept_norm += std::norm(sv[i]);
  if (std::abs(kept_norm - sv.norm_sq()) > 1e-9)
    throw std::logic_error("Engine::run: lowering left work ancillas dirty");
  res.state = sim::StateVector(p.qubits());
  std::copy(sv.amplitudes().begin(), sv.amplitudes().begin() + static_cast<std::ptrdiff_t>(keep),
            res.state.amplitudes().begin());
  return res;
}

}  // namespace qc::engine
