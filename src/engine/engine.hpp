// Engine — the library's single front door.
//
// Engine::run(Program, RunOptions) executes one Program end to end on
// any registered backend and returns the final state, recorded
// measurement outcomes, requested expectation values, and a per-op
// wall-clock trace (the raw datapoints behind models/perf_model and the
// BENCH json series).
//
// Dispatch rule (the paper's §3 contract as one API):
//   * backend->emulates()  — high-level ops run at their mathematical
//     description, gate segments on the fused simulator;
//   * gate-level backend   — the program is lower()ed to elementary
//     gates first (work ancillas appended above the program register and
//     projected away again at the end).
// Measure and ExpectationZ ops route through the backend's measurement
// virtuals with an engine-drawn uniform (one per Measure op), so the
// recorded outcomes are backend-independent given one seed — the "dist"
// backend measures collectively against its distributed state.
#pragma once

#include <memory>

#include "engine/backend.hpp"
#include "engine/program.hpp"
#include "obs/trace.hpp"
#include "sim/state_vector.hpp"

namespace qc::engine {

/// One per-op timing sample of a run. The byte columns are deltas of
/// the backend's monotone counters around this op: a resident dist run
/// shows host_bytes only on the op that scattered (and on the trailing
/// "[finalize]" row that gathered), while the per-op baseline shows two
/// stagings on every row — the measurable difference a persistent
/// cluster session makes.
struct OpTrace {
  std::string op;       ///< Op::label() of the executed node.
  double seconds = 0;   ///< Wall-clock time of this node.
  std::uint64_t host_bytes = 0;  ///< Host<->rank staging bytes this op moved.
  std::uint64_t net_bytes = 0;   ///< Rank<->rank bytes this op moved.
};

struct Result {
  /// Final state on the *program's* qubits (lowering ancillas verified
  /// clean and projected away).
  sim::StateVector state{0};
  /// Sampled outcome of each Measure op, in program order.
  std::vector<index_t> measurements;
  /// Value of each ExpectationZ op, in program order.
  std::vector<double> expectations;
  /// Per-op wall-clock trace (of the lowered program when lowering ran).
  /// A backend that flushes resident state at run end (dist) appends
  /// one trailing "[finalize]" row covering that gather. With
  /// RunOptions.trace enabled these rows are the flat view over the
  /// root op spans of `trace_data` — same columns, same totals.
  std::vector<OpTrace> trace;
  /// Full structured trace of the run (null unless RunOptions.trace):
  /// the span tree — engine.run -> per-op spans -> per-rank cluster
  /// jobs -> dist plan items -> sweeps/exchanges — plus counters. Feed
  /// to obs::chrome_trace_json / metrics_json / model_report.
  std::shared_ptr<const obs::TraceData> trace_data;
  /// Backend name the run actually *completed* on. Normally
  /// RunOptions.backend; differs when the degradation ladder fired.
  std::string backend;
  /// True when an unrecoverable cluster error mid-run made the engine
  /// restart the program on the single-node "cached" backend
  /// (RunOptions.degrade). The result is then bit-identical to a plain
  /// cached run of the same seed — measurement draws are engine-side.
  bool degraded = false;
  std::string degraded_from;   ///< Backend the degraded run abandoned.
  std::string degrade_reason;  ///< what() of the error that forced it.
  qubit_t run_qubits = 0;   ///< Qubits actually simulated (incl. ancillas).
  double total_seconds = 0; ///< End-to-end wall-clock time.
  /// Whole-run totals of the backend byte counters (equal to the sums
  /// of the trace columns): host<->rank staging and rank<->rank
  /// communication volume.
  std::uint64_t host_bytes = 0;
  std::uint64_t net_bytes = 0;
};

class Engine {
 public:
  /// Runs `p` from |opts.initial_basis> on the named backend.
  [[nodiscard]] Result run(const Program& p, const RunOptions& opts = {}) const;
};

}  // namespace qc::engine
