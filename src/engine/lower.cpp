// lower(): compile a Program's high-level ops to gate segments.
//
// This is the simulation half of the paper's emulation-vs-simulation
// contract: every §3 shortcut has a reversible-network realization a
// gate-level simulator can execute, at the exponential cost the
// emulator avoids. Arithmetic goes through the revcirc networks the
// benches already validate; QFT through the O(n^2) cascade; phase
// functions / oracles through X-conjugated multi-controlled phase gates
// (one per phased basis state — exact, and exactly the cost the paper's
// §3.1 argues an oracle compilation pays); classical functions through
// Draper QFT-space adders controlled on the input register.
#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "circuit/decompose.hpp"
#include "common/bits.hpp"
#include "engine/program.hpp"
#include "revcirc/modular.hpp"

namespace qc::engine {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using revcirc::Reg;

/// Work qubits the gate network of one op needs above the program
/// register (all |0>-in / |0>-out).
qubit_t op_ancillas(const Op& op) {
  switch (op.kind) {
    case OpKind::Add:
    case OpKind::Multiply:
      return 1;  // Cuccaro carry ancilla
    case OpKind::Divide:
      // Restoring divider: m+1 dividend-window pad + b_pad + borrow + carry.
      return op.a.width + 4;
    case OpKind::MultiplyMod:
      // Beauregard: w+1 accumulator + comparator ancilla + control flag.
      return op.a.width + 3;
    default:
      return 0;
  }
}

/// X gates flipping every register qubit whose bit of `value` is 0 —
/// conjugating a multi-controlled gate with these makes it fire exactly
/// on |value>.
void flip_zeros(Circuit& c, RegRef r, index_t value) {
  for (qubit_t j = 0; j < r.width; ++j)
    if (!bits::test(value, j)) c.x(r.offset + j);
}

/// One multi-controlled phase e^{i theta} on exactly the basis states
/// whose `reg` field equals `value` (any theta, any width >= 1).
void phase_basis_state(Circuit& c, RegRef reg, index_t value, double theta) {
  flip_zeros(c, reg, value);
  Gate g = circuit::make_gate(GateKind::Phase, reg.offset, theta);
  for (qubit_t j = 1; j < reg.width; ++j) g.controls.push_back(reg.offset + j);
  c.append(std::move(g));
  flip_zeros(c, reg, value);
}

Circuit lower_add(const Op& op, qubit_t nw, qubit_t anc0) {
  Circuit c(nw);
  revcirc::cuccaro_add(c, revcirc::make_reg(op.a.offset, op.a.width),
                       revcirc::make_reg(op.b.offset, op.b.width), anc0);
  return c;
}

Circuit lower_multiply(const Op& op, qubit_t nw, qubit_t anc0) {
  Circuit c(nw);
  revcirc::multiply_accumulate(c, revcirc::make_reg(op.a.offset, op.a.width),
                               revcirc::make_reg(op.b.offset, op.b.width),
                               revcirc::make_reg(op.c.offset, op.c.width), anc0);
  return c;
}

Circuit lower_divide(const Op& op, qubit_t nw, qubit_t anc0) {
  const qubit_t m = op.a.width;
  Circuit c(nw);
  // y = dividend qubits extended by m+1 clean pad qubits (the divider's
  // sliding subtraction window); q is the program's quotient register.
  Reg y = revcirc::make_reg(op.a.offset, m);
  for (qubit_t j = 0; j <= m; ++j) y.push_back(anc0 + j);
  revcirc::divide(c, y, revcirc::make_reg(op.b.offset, m), /*b_pad=*/anc0 + m + 1,
                  revcirc::make_reg(op.c.offset, m), /*borrow=*/anc0 + m + 2,
                  /*carry_anc=*/anc0 + m + 3);
  return c;
}

Circuit lower_multiply_mod(const Op& op, qubit_t nw, qubit_t anc0) {
  const qubit_t w = op.a.width;
  Circuit c(nw);
  // controlled_modmul is inherently controlled; drive it from a flag
  // ancilla held at |1> for the duration.
  const qubit_t ctl = anc0 + w + 2;
  c.x(ctl);
  revcirc::controlled_modmul(c, ctl, revcirc::make_reg(op.a.offset, w),
                             revcirc::make_reg(anc0, w + 1), op.k, op.modulus,
                             /*zero_anc=*/anc0 + w + 1);
  c.x(ctl);
  return c;
}

Circuit lower_apply_function(const Op& op, qubit_t nw) {
  // out += f(in) mod 2^w_out as Draper adds in Fourier space, each
  // addition controlled on the input register holding one value.
  const index_t in_dim = dim(op.a.width);
  const index_t mask = bits::low_mask(op.b.width);
  const Reg out = revcirc::make_reg(op.b.offset, op.b.width);
  std::vector<qubit_t> controls(op.a.width);
  for (qubit_t j = 0; j < op.a.width; ++j) controls[j] = op.a.offset + j;

  Circuit c(nw);
  revcirc::qft_on_reg(c, out);
  for (index_t v = 0; v < in_dim; ++v) {
    const index_t kv = op.func(v) & mask;
    if (kv == 0) continue;
    flip_zeros(c, op.a, v);
    revcirc::phi_add_const(c, out, kv, controls);
    flip_zeros(c, op.a, v);
  }
  revcirc::inverse_qft_on_reg(c, out);
  return c;
}

Circuit lower_phase_function(const Op& op, qubit_t n, qubit_t nw) {
  // One X-conjugated multi-controlled phase gate per basis state of the
  // *program* register (ancillas are |0> and never touched, so the
  // widened-register action matches the emulator's full-index sweep).
  const RegRef full{0, n};
  Circuit c(nw);
  for (index_t i = 0; i < dim(n); ++i) {
    const double theta = op.kind == OpKind::PhaseOracle
                             ? (op.predicate(i) ? std::numbers::pi : 0.0)
                             : std::remainder(op.phase_fn(i), 2.0 * std::numbers::pi);
    if (theta == 0.0) continue;
    phase_basis_state(c, full, i, theta);
  }
  return c;
}

Circuit lower_qft(const Op& op, qubit_t nw, bool inverse) {
  Circuit c(nw);
  const Reg r = revcirc::make_reg(op.a.offset, op.a.width);
  if (inverse)
    revcirc::inverse_qft_on_reg(c, r);
  else
    revcirc::qft_on_reg(c, r);
  return c;
}

}  // namespace

qubit_t lowered_ancillas(const Program& p) {
  qubit_t anc = 0;
  for (const Op& op : p.ops()) anc = std::max(anc, op_ancillas(op));
  return anc;
}

Program lower(const Program& p, const LowerOptions& opts) {
  const qubit_t n = p.qubits();
  const qubit_t nw = n + lowered_ancillas(p);
  const qubit_t anc0 = n;
  Program out(nw);
  for (const Op& op : p.ops()) {
    Circuit seg;
    bool arithmetic = false;  // Clifford+T pass applies to these only
    switch (op.kind) {
      case OpKind::GateSegment:
        out.gates(op.gates.widened(nw));
        continue;
      case OpKind::Add:
        seg = lower_add(op, nw, anc0);
        arithmetic = true;
        break;
      case OpKind::Multiply:
        seg = lower_multiply(op, nw, anc0);
        arithmetic = true;
        break;
      case OpKind::Divide:
        seg = lower_divide(op, nw, anc0);
        arithmetic = true;
        break;
      case OpKind::MultiplyMod:
        seg = lower_multiply_mod(op, nw, anc0);
        arithmetic = true;
        break;
      case OpKind::ApplyFunction:
        seg = lower_apply_function(op, nw);
        break;
      case OpKind::PhaseFunction:
      case OpKind::PhaseOracle:
        seg = lower_phase_function(op, n, nw);
        break;
      case OpKind::Qft:
        seg = lower_qft(op, nw, /*inverse=*/false);
        break;
      case OpKind::InverseQft:
        seg = lower_qft(op, nw, /*inverse=*/true);
        break;
      case OpKind::Measure:
        out.measure(op.a);
        continue;
      case OpKind::ExpectationZ:
        out.expectation_z(op.mask);
        continue;
    }
    if (opts.to_clifford_t && arithmetic) seg = circuit::lower_to_clifford_t(seg);
    out.gates(std::move(seg));
  }
  return out;
}

}  // namespace qc::engine
