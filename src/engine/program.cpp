#include "engine/program.hpp"

#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace qc::engine {

std::string op_name(OpKind kind) {
  switch (kind) {
    case OpKind::GateSegment: return "gates";
    case OpKind::Add: return "add";
    case OpKind::Multiply: return "multiply";
    case OpKind::MultiplyMod: return "multiply_mod";
    case OpKind::Divide: return "divide";
    case OpKind::ApplyFunction: return "apply_function";
    case OpKind::PhaseFunction: return "phase_function";
    case OpKind::PhaseOracle: return "phase_oracle";
    case OpKind::Qft: return "qft";
    case OpKind::InverseQft: return "inverse_qft";
    case OpKind::Measure: return "measure";
    case OpKind::ExpectationZ: return "expectation_z";
  }
  return "?";
}

namespace {

std::string reg_str(RegRef r) {
  return "@" + std::to_string(r.offset) + ":" + std::to_string(r.width);
}

}  // namespace

std::string Op::label() const {
  switch (kind) {
    case OpKind::GateSegment:
      return "gates(" + std::to_string(gates.size()) + ")";
    case OpKind::Add:
      return "add(" + reg_str(a) + "," + reg_str(b) + ")";
    case OpKind::Multiply:
      return "multiply(" + reg_str(a) + "," + reg_str(b) + "," + reg_str(c) + ")";
    case OpKind::MultiplyMod:
      return "multiply_mod(" + reg_str(a) + ",k=" + std::to_string(k) +
             ",N=" + std::to_string(modulus) + ")";
    case OpKind::Divide:
      return "divide(" + reg_str(a) + "," + reg_str(b) + "," + reg_str(c) + ")";
    case OpKind::ApplyFunction:
      return "apply_function(" + reg_str(a) + "->" + reg_str(b) + ")";
    case OpKind::PhaseFunction: return "phase_function";
    case OpKind::PhaseOracle: return "phase_oracle";
    case OpKind::Qft: return "qft(" + reg_str(a) + ")";
    case OpKind::InverseQft: return "inverse_qft(" + reg_str(a) + ")";
    case OpKind::Measure: return "measure(" + reg_str(a) + ")";
    case OpKind::ExpectationZ: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(mask));
      return std::string("expectation_z(") + buf + ")";
    }
  }
  return "?";
}

bool Program::needs_lowering() const {
  for (const Op& op : ops_)
    if (op.unitary() && op.kind != OpKind::GateSegment) return true;
  return false;
}

circuit::Circuit& Program::open_segment() {
  if (ops_.empty() || ops_.back().kind != OpKind::GateSegment) {
    Op& op = ops_.emplace_back();
    op.kind = OpKind::GateSegment;
    op.gates = circuit::Circuit(n_);
  }
  return ops_.back().gates;
}

Op& Program::push(OpKind kind) {
  Op& op = ops_.emplace_back();
  op.kind = kind;
  return op;
}

Program& Program::gate(circuit::Gate g) {
  open_segment().append(std::move(g));  // Circuit::append validates qubits
  return *this;
}

Program& Program::gates(circuit::Circuit&& c) {
  if (c.qubits() != n_)
    throw std::invalid_argument("Program::gates: qubit count mismatch");
  // Always a fresh segment: one gates() call is one traceable unit (and
  // lower() uses it to keep one segment per lowered source op).
  Op& op = push(OpKind::GateSegment);
  op.gates = std::move(c);
  return *this;
}

Program& Program::add(RegRef a, RegRef b) {
  if (a.width != b.width) throw std::invalid_argument("Program::add: widths must match");
  emu::check_regs({a, b}, n_);
  Op& op = push(OpKind::Add);
  op.a = a;
  op.b = b;
  return *this;
}

Program& Program::multiply(RegRef a, RegRef b, RegRef c) {
  if (a.width != b.width || a.width != c.width)
    throw std::invalid_argument("Program::multiply: widths must match");
  emu::check_regs({a, b, c}, n_);
  Op& op = push(OpKind::Multiply);
  op.a = a;
  op.b = b;
  op.c = c;
  return *this;
}

Program& Program::multiply_mod(RegRef x, index_t k, index_t modulus) {
  emu::check_regs({x}, n_);
  if (modulus == 0 || modulus > dim(x.width))
    throw std::invalid_argument("Program::multiply_mod: modulus out of range");
  if (std::gcd(k % modulus, modulus) != 1)
    throw std::invalid_argument("Program::multiply_mod: k not invertible mod modulus");
  Op& op = push(OpKind::MultiplyMod);
  op.a = x;
  op.k = k;
  op.modulus = modulus;
  return *this;
}

Program& Program::divide(RegRef a, RegRef b, RegRef c) {
  if (a.width != b.width || a.width != c.width)
    throw std::invalid_argument("Program::divide: widths must match");
  emu::check_regs({a, b, c}, n_);
  Op& op = push(OpKind::Divide);
  op.a = a;
  op.b = b;
  op.c = c;
  return *this;
}

Program& Program::apply_function(RegRef in, RegRef out, std::function<index_t(index_t)> f) {
  emu::check_regs({in, out}, n_);
  if (!f) throw std::invalid_argument("Program::apply_function: null function");
  Op& op = push(OpKind::ApplyFunction);
  op.a = in;
  op.b = out;
  op.func = std::move(f);
  return *this;
}

Program& Program::phase_function(std::function<double(index_t)> phase) {
  if (!phase) throw std::invalid_argument("Program::phase_function: null function");
  push(OpKind::PhaseFunction).phase_fn = std::move(phase);
  return *this;
}

Program& Program::phase_oracle(std::function<bool(index_t)> marked) {
  if (!marked) throw std::invalid_argument("Program::phase_oracle: null predicate");
  push(OpKind::PhaseOracle).predicate = std::move(marked);
  return *this;
}

Program& Program::qft(RegRef r) {
  emu::check_regs({r}, n_);
  push(OpKind::Qft).a = r;
  return *this;
}

Program& Program::inverse_qft(RegRef r) {
  emu::check_regs({r}, n_);
  push(OpKind::InverseQft).a = r;
  return *this;
}

Program& Program::measure(RegRef r) {
  emu::check_regs({r}, n_);
  push(OpKind::Measure).a = r;
  return *this;
}

Program& Program::expectation_z(index_t mask) {
  if (n_ < 64 && (mask >> n_) != 0)
    throw std::invalid_argument("Program::expectation_z: mask exceeds register");
  push(OpKind::ExpectationZ).mask = mask;
  return *this;
}

std::string Program::to_string() const {
  std::string out = "Program(" + std::to_string(n_) + " qubits)\n";
  for (const Op& op : ops_) out += "  " + op.label() + "\n";
  return out;
}

}  // namespace qc::engine
