// Program IR — the engine's unit of execution (the front door the paper
// implies but never names).
//
// A Program is an ordered list of ops over n qubits where *both* gate
// segments (circuit::Circuit slices) and recognized high-level
// subroutines (arithmetic, QFT, phase functions, measurement — the
// paper's §3 shortcuts) are first-class nodes. The same Program runs on
// any registered backend: an emulating backend ("auto") executes each
// high-level op at its mathematical description, a gate-level backend
// receives the program compiled to elementary gates by lower().
//
// Builders are fluent and mirror circuit::Circuit's, so gate-level and
// high-level code read the same:
//
//   engine::Program p(12);
//   p.h(0).cnot(0, 1)                 // gate segment (opened on demand)
//    .multiply({0, 4}, {4, 4}, {8, 4})  // §3.1 shortcut node
//    .qft({0, 8})                     // §3.2 shortcut node
//    .measure({0, 8});                // §3.4 node (engine-handled)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "emu/emulator.hpp"

namespace qc::engine {

using emu::RegRef;

enum class OpKind {
  GateSegment,    ///< circuit::Circuit slice, executed gate by gate.
  Add,            ///< b += a (mod 2^w)                [regs a, b]
  Multiply,       ///< c += a*b (mod 2^w)              [regs a, b, c]
  MultiplyMod,    ///< a -> k*a mod modulus            [reg a; k, modulus]
  Divide,         ///< (a, b, c=0) -> (a mod b, b, a/b)[regs a, b, c]
  ApplyFunction,  ///< b += f(a) (mod 2^b.width)       [regs a, b; func]
  PhaseFunction,  ///< amp_i *= exp(i * phase_fn(i))   [phase_fn]
  PhaseOracle,    ///< amp_i *= -1 where predicate(i)  [predicate]
  Qft,            ///< QFT on reg a (paper Eq. 4, natural bit order)
  InverseQft,     ///< inverse QFT on reg a
  Measure,        ///< measure reg a (recorded in Result.measurements)
  ExpectationZ,   ///< <Z_mask> (recorded in Result.expectations)
};

[[nodiscard]] std::string op_name(OpKind kind);

struct Op {
  OpKind kind = OpKind::GateSegment;
  circuit::Circuit gates;  ///< GateSegment payload.
  RegRef a, b, c;          ///< Register operands (see OpKind comments).
  index_t k = 0;           ///< MultiplyMod multiplier.
  index_t modulus = 0;     ///< MultiplyMod modulus.
  index_t mask = 0;        ///< ExpectationZ Pauli-Z mask.
  std::function<index_t(index_t)> func;     ///< ApplyFunction.
  std::function<double(index_t)> phase_fn;  ///< PhaseFunction.
  std::function<bool(index_t)> predicate;   ///< PhaseOracle.

  /// True for ops that transform the state (everything except Measure /
  /// ExpectationZ, which the Engine handles backend-independently).
  [[nodiscard]] bool unitary() const noexcept {
    return kind != OpKind::Measure && kind != OpKind::ExpectationZ;
  }

  /// Short human-readable form for traces, e.g. "qft(@0:12)".
  [[nodiscard]] std::string label() const;
};

class Program {
 public:
  Program() = default;
  explicit Program(qubit_t n_qubits) : n_(n_qubits) {}

  [[nodiscard]] qubit_t qubits() const noexcept { return n_; }
  [[nodiscard]] const std::vector<Op>& ops() const noexcept { return ops_; }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }

  /// True if any op is high-level-unitary (i.e. a gate-level backend
  /// needs the lower() pass before it can run this program).
  [[nodiscard]] bool needs_lowering() const;

  // --- gate-level builders (mirror circuit::Circuit) --------------------
  // Consecutive gate appends accumulate into one GateSegment op; any
  // high-level append closes the open segment.
  Program& gate(circuit::Gate g);
  Program& x(qubit_t q) { return gate(circuit::make_gate(circuit::GateKind::X, q)); }
  Program& y(qubit_t q) { return gate(circuit::make_gate(circuit::GateKind::Y, q)); }
  Program& z(qubit_t q) { return gate(circuit::make_gate(circuit::GateKind::Z, q)); }
  Program& h(qubit_t q) { return gate(circuit::make_gate(circuit::GateKind::H, q)); }
  Program& s(qubit_t q) { return gate(circuit::make_gate(circuit::GateKind::S, q)); }
  Program& t(qubit_t q) { return gate(circuit::make_gate(circuit::GateKind::T, q)); }
  Program& rx(qubit_t q, double theta) {
    return gate(circuit::make_gate(circuit::GateKind::Rx, q, theta));
  }
  Program& ry(qubit_t q, double theta) {
    return gate(circuit::make_gate(circuit::GateKind::Ry, q, theta));
  }
  Program& rz(qubit_t q, double theta) {
    return gate(circuit::make_gate(circuit::GateKind::Rz, q, theta));
  }
  Program& phase(qubit_t q, double theta) {
    return gate(circuit::make_gate(circuit::GateKind::Phase, q, theta));
  }
  Program& cnot(qubit_t c, qubit_t t) {
    return gate(circuit::make_controlled(circuit::GateKind::X, c, t));
  }
  Program& cz(qubit_t c, qubit_t t) {
    return gate(circuit::make_controlled(circuit::GateKind::Z, c, t));
  }
  Program& cr(qubit_t c, qubit_t t, double theta) {
    return gate(circuit::make_controlled(circuit::GateKind::Phase, c, t, theta));
  }
  Program& swap(qubit_t a, qubit_t b) { return gate(circuit::make_swap(a, b)); }
  Program& toffoli(qubit_t c1, qubit_t c2, qubit_t t) {
    return gate(circuit::make_toffoli(c1, c2, t));
  }
  /// Appends a whole circuit as its own gate segment (one trace unit).
  Program& gates(const circuit::Circuit& c) { return gates(circuit::Circuit(c)); }
  Program& gates(circuit::Circuit&& c);

  // --- high-level builders (the paper's §3 shortcuts) -------------------
  Program& add(RegRef a, RegRef b);
  Program& multiply(RegRef a, RegRef b, RegRef c);
  Program& multiply_mod(RegRef x, index_t k, index_t modulus);
  Program& divide(RegRef a, RegRef b, RegRef c);
  Program& apply_function(RegRef in, RegRef out, std::function<index_t(index_t)> f);
  Program& phase_function(std::function<double(index_t)> phase);
  Program& phase_oracle(std::function<bool(index_t)> marked);
  Program& qft(RegRef r);
  Program& qft() { return qft({0, n_}); }
  Program& inverse_qft(RegRef r);
  Program& inverse_qft() { return inverse_qft({0, n_}); }

  // --- engine-handled nodes --------------------------------------------
  Program& measure(RegRef r);
  Program& expectation_z(index_t mask);

  /// Multi-line disassembly (one op label per line).
  [[nodiscard]] std::string to_string() const;

 private:
  circuit::Circuit& open_segment();
  Op& push(OpKind kind);

  qubit_t n_ = 0;
  std::vector<Op> ops_;
};

/// Options for the gate-level compilation pass.
struct LowerOptions {
  /// Additionally rewrite Toffolis and plain SWAPs of the arithmetic
  /// networks into the Clifford+T realization (circuit::decompose) —
  /// the "fully elementary" simulation baseline.
  bool to_clifford_t = false;
};

/// Work qubits lower() appends above p.qubits() (max over the ops'
/// reversible-network ancilla needs; 0 if nothing needs lowering).
[[nodiscard]] qubit_t lowered_ancillas(const Program& p);

/// Compiles every high-level unitary op to a gate segment — arithmetic
/// through the revcirc reversible networks (Cuccaro adder/multiplier,
/// restoring divider, Beauregard modular multiplier), QFT through the
/// O(n^2) gate cascade, phase functions/oracles through X-conjugated
/// multi-controlled phase gates, classical functions through
/// QFT-space adders controlled on the input register — so the program
/// runs on *any* gate-level backend. The result acts on
/// p.qubits() + lowered_ancillas(p) qubits; every ancilla is returned
/// to |0>, and Engine::run projects them away again.
///
/// Exactness caveat (circuit-side preconditions, matching the revcirc
/// docs): MultiplyMod requires the register's support to stay below the
/// modulus; Divide requires the quotient register's support at |0>.
[[nodiscard]] Program lower(const Program& p, const LowerOptions& opts = {});

}  // namespace qc::engine
