#include "fft/dist_fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/bits.hpp"
#include "common/timer.hpp"

namespace qc::fft {
namespace {

/// Packs the local rows x cols block into P destination blocks: block j
/// holds this rank's rows restricted to destination j's column range.
void pack_for_transpose(std::span<const complex_t> local, std::span<complex_t> sendbuf,
                        index_t local_rows, index_t cols, int p) {
  const index_t cols_per_rank = cols / p;
#pragma omp parallel for collapse(2) if (local.size() >= 4096)
  for (int j = 0; j < p; ++j) {
    for (index_t i = 0; i < local_rows; ++i) {
      const complex_t* src = local.data() + i * cols + static_cast<index_t>(j) * cols_per_rank;
      complex_t* dst =
          sendbuf.data() + static_cast<index_t>(j) * local_rows * cols_per_rank + i * cols_per_rank;
      for (index_t c = 0; c < cols_per_rank; ++c) dst[c] = src[c];
    }
  }
}

/// Unpacks received blocks into the transposed local layout: the block
/// from source rank r contains its rows x our columns; transposed, it
/// lands at output columns [r*rows_per_rank, ...). Tiled so both the
/// strided reads and the contiguous writes stay cache-resident.
void unpack_after_transpose(std::span<const complex_t> recvbuf, std::span<complex_t> local_out,
                            index_t rows, index_t cols, int p) {
  const index_t rows_per_rank = rows / p;          // source block height
  const index_t local_cols_out = rows;             // output row length
  const index_t out_rows = cols / p;               // our transposed row count
  constexpr index_t kTile = 32;
#pragma omp parallel for collapse(2) schedule(static) if (local_out.size() >= 4096)
  for (int r = 0; r < p; ++r) {
    for (index_t c0 = 0; c0 < out_rows; c0 += kTile) {
      const complex_t* blk =
          recvbuf.data() + static_cast<index_t>(r) * rows_per_rank * out_rows;
      const index_t c1 = std::min(c0 + kTile, out_rows);
      for (index_t i0 = 0; i0 < rows_per_rank; i0 += kTile) {
        const index_t i1 = std::min(i0 + kTile, rows_per_rank);
        for (index_t c = c0; c < c1; ++c) {
          complex_t* dst = local_out.data() + c * local_cols_out +
                           static_cast<index_t>(r) * rows_per_rank;
          for (index_t i = i0; i < i1; ++i) dst[i] = blk[i * out_rows + c];
        }
      }
    }
  }
}

void dist_transpose_with_buffers(cluster::Comm& comm, std::span<const complex_t> local_in,
                                 std::span<complex_t> local_out, index_t rows, index_t cols,
                                 std::span<complex_t> sendbuf, std::span<complex_t> recvbuf) {
  const int p = comm.size();
  if (rows % p != 0 || cols % p != 0)
    throw std::invalid_argument("dist_transpose: rank count must divide both dimensions");
  const index_t local_rows = rows / static_cast<index_t>(p);
  const index_t chunk = local_rows * cols;
  if (local_in.size() != chunk || local_out.size() != (cols / p) * rows)
    throw std::invalid_argument("dist_transpose: local buffer size mismatch");
  pack_for_transpose(local_in, sendbuf.subspan(0, chunk), local_rows, cols, p);
  comm.alltoall<complex_t>(sendbuf.subspan(0, chunk), recvbuf.subspan(0, chunk));
  unpack_after_transpose(recvbuf.subspan(0, chunk), local_out, rows, cols, p);
}

}  // namespace

void dist_transpose(cluster::Comm& comm, std::span<const complex_t> local_in,
                    std::span<complex_t> local_out, index_t rows, index_t cols) {
  aligned_vector<complex_t> sendbuf(local_in.size());
  aligned_vector<complex_t> recvbuf(local_in.size());
  dist_transpose_with_buffers(comm, local_in, local_out, rows, cols, sendbuf, recvbuf);
}

DistFftStats dist_fft(cluster::Comm& comm, std::span<complex_t> local, qubit_t n_total,
                      Sign sign, Norm norm) {
  const int p = comm.size();
  if (!bits::is_pow2(static_cast<index_t>(p)))
    throw std::invalid_argument("dist_fft: rank count must be a power of two");
  const index_t size = index_t{1} << n_total;
  const index_t chunk = size / static_cast<index_t>(p);
  if (local.size() != chunk) throw std::invalid_argument("dist_fft: local chunk size mismatch");

  DistFftStats stats;
  if (p == 1) {
    // Single rank: a node-local FFT, exactly what a cluster FFT library
    // does on one node (the paper's single-node Fig. 3 point).
    WallTimer timer;
    const FftPlan plan(n_total, sign);
    plan.execute(local, norm);
    stats.local_fft_seconds = timer.seconds();
    return stats;
  }

  const qubit_t nc = n_total / 2;       // C = 2^floor(n/2)
  const qubit_t nr = n_total - nc;      // R = 2^ceil(n/2)
  const index_t rows = index_t{1} << nr;
  const index_t cols = index_t{1} << nc;
  if (static_cast<index_t>(p) > cols)
    throw std::invalid_argument("dist_fft: too many ranks for this transform size");

  aligned_vector<complex_t> work((cols / p) * rows);
  aligned_vector<complex_t> sendbuf(chunk);
  aligned_vector<complex_t> recvbuf(chunk);
  const FftPlan plan_r(nr, sign);
  const FftPlan plan_c(nc, sign);
  WallTimer timer;

  // Step 1: transpose R x C -> C x R. Rank now owns cols/p rows of len R.
  comm.barrier();
  timer.reset();
  dist_transpose_with_buffers(comm, local, work, rows, cols, sendbuf, recvbuf);
  stats.transpose_seconds += timer.seconds();

  // Step 2: local R-point FFT over g1 for each owned g2-row.
  comm.barrier();
  timer.reset();
  {
    const index_t nrows = cols / static_cast<index_t>(p);
#pragma omp parallel for schedule(static) if (nrows > 1)
    for (index_t g2 = 0; g2 < nrows; ++g2)
      plan_r.execute(std::span<complex_t>(work.data() + g2 * rows, rows));
  }
  stats.local_fft_seconds += timer.seconds();

  // Step 3: twiddle by w_N^(g2 * k1), g2 global. Incremental rotation
  // (one multiply per element) with a fresh std::polar every 256 steps
  // bounds the accumulated rounding to ~256 ulps while eliminating the
  // per-element sincos that would otherwise dominate this phase.
  comm.barrier();
  timer.reset();
  {
    const index_t nrows = cols / static_cast<index_t>(p);
    const index_t g2_start = static_cast<index_t>(comm.rank()) * nrows;
    const double base = static_cast<double>(static_cast<int>(sign)) * 2.0 *
                        std::numbers::pi / static_cast<double>(size);
    constexpr index_t kResync = 256;
#pragma omp parallel for schedule(static) if (nrows * rows >= 4096)
    for (index_t g2 = 0; g2 < nrows; ++g2) {
      const double row_phase = base * static_cast<double>(g2_start + g2);
      const complex_t step = std::polar(1.0, row_phase);
      complex_t* row = work.data() + g2 * rows;
      complex_t w{1.0, 0.0};
      for (index_t k1 = 0; k1 < rows; ++k1) {
        if (k1 % kResync == 0) w = std::polar(1.0, row_phase * static_cast<double>(k1));
        row[k1] *= w;
        w *= step;
      }
    }
  }
  stats.twiddle_seconds += timer.seconds();

  // Step 4: transpose back C x R -> R x C.
  comm.barrier();
  timer.reset();
  dist_transpose_with_buffers(comm, work, local, cols, rows, sendbuf, recvbuf);
  stats.transpose_seconds += timer.seconds();

  // Step 5: local C-point FFT over g2 for each owned k1-row.
  comm.barrier();
  timer.reset();
  {
    const index_t nrows = rows / static_cast<index_t>(p);
#pragma omp parallel for schedule(static) if (nrows > 1)
    for (index_t k1 = 0; k1 < nrows; ++k1)
      plan_c.execute(std::span<complex_t>(local.data() + k1 * cols, cols));
  }
  stats.local_fft_seconds += timer.seconds();

  // Step 6: final transpose R x C -> C x R delivers natural order
  // (output index k = k1 + R*k2 lives at matrix position [k2][k1]).
  comm.barrier();
  timer.reset();
  dist_transpose_with_buffers(comm, local, work, rows, cols, sendbuf, recvbuf);
  std::copy(work.begin(), work.begin() + static_cast<std::ptrdiff_t>(chunk), local.begin());
  stats.transpose_seconds += timer.seconds();

  if (norm == Norm::Unitary) {
    const double f = 1.0 / std::sqrt(static_cast<double>(size));
#pragma omp parallel for if (chunk >= 4096)
    for (index_t i = 0; i < chunk; ++i) local[i] *= f;
  } else if (norm == Norm::Inverse) {
    const double f = 1.0 / static_cast<double>(size);
#pragma omp parallel for if (chunk >= 4096)
    for (index_t i = 0; i < chunk; ++i) local[i] *= f;
  }

  // Critical-path times: max over ranks.
  stats.transpose_seconds = comm.allreduce_max(stats.transpose_seconds);
  stats.local_fft_seconds = comm.allreduce_max(stats.local_fft_seconds);
  stats.twiddle_seconds = comm.allreduce_max(stats.twiddle_seconds);
  return stats;
}

}  // namespace qc::fft
