// Distributed 1D FFT over the cluster substrate (the MKL Cluster FFT /
// distributed-FFTW role of the paper's §3.2 and Eq. 5).
//
// The transform of N = 2^n points distributed in contiguous chunks over
// P ranks uses the classic six-step algorithm. Viewing the data as an
// R x C row-major matrix (R = 2^ceil(n/2), C = 2^floor(n/2)):
//
//   1. distributed transpose            (all-to-all #1)
//   2. local R-point FFTs along rows
//   3. twiddle scaling by w_N^(g2*k1)
//   4. distributed transpose            (all-to-all #2)
//   5. local C-point FFTs along rows
//   6. distributed transpose            (all-to-all #3, natural order out)
//
// Exactly the three all-to-all transposition steps the paper's
// performance model (Eq. 5) charges: T_FFT = 5Nn/(eff*FLOPS) + 3*16N/Bnet.
//
// dist_fft is collective and stateless between calls: it can run as a
// one-shot Cluster::run body or as successive jobs of a persistent
// cluster::ClusterSession against rank-local chunks that stay resident
// between submissions (tests/test_dist_fft.cpp exercises the latter).
#pragma once

#include <span>

#include "cluster/cluster.hpp"
#include "fft/fft.hpp"

namespace qc::fft {

/// Per-rank wall-clock breakdown of one distributed transform (values
/// are max-reduced over ranks so they reflect the critical path).
struct DistFftStats {
  double transpose_seconds = 0;  ///< Sum of the three all-to-all transposes.
  double local_fft_seconds = 0;  ///< Both local row-FFT phases.
  double twiddle_seconds = 0;    ///< Twiddle-scaling phase.
  [[nodiscard]] double total() const noexcept {
    return transpose_seconds + local_fft_seconds + twiddle_seconds;
  }
};

/// Distributed transpose of an `rows` x `cols` row-major matrix whose
/// rows are block-distributed over the ranks of `comm`. `local_in` holds
/// rows/P rows of length cols; `local_out` receives cols/P rows of length
/// rows. Requires P | rows and P | cols.
void dist_transpose(cluster::Comm& comm, std::span<const complex_t> local_in,
                    std::span<complex_t> local_out, index_t rows, index_t cols);

/// In-place distributed FFT of 2^n_total points. Each rank passes its
/// contiguous chunk (2^n_total / P elements, natural global order); the
/// result is returned in natural order with the same distribution.
/// Requires P to be a power of two with P <= 2^floor(n_total/2).
DistFftStats dist_fft(cluster::Comm& comm, std::span<complex_t> local, qubit_t n_total,
                      Sign sign, Norm norm = Norm::None);

}  // namespace qc::fft
