#include "fft/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/bits.hpp"
#include "common/parallel.hpp"

namespace qc::fft {
namespace {

void scale(std::span<complex_t> data, double factor) {
#pragma omp parallel for if (worth_parallelizing(data.size()))
  for (std::size_t i = 0; i < data.size(); ++i) data[i] *= factor;
}

void apply_norm(std::span<complex_t> data, Norm norm) {
  switch (norm) {
    case Norm::None:
      return;
    case Norm::Unitary:
      scale(data, 1.0 / std::sqrt(static_cast<double>(data.size())));
      return;
    case Norm::Inverse:
      scale(data, 1.0 / static_cast<double>(data.size()));
      return;
  }
}

}  // namespace

void bit_reverse_permute(std::span<complex_t> data, qubit_t n) {
  const index_t size = index_t{1} << n;
  if (data.size() != size) throw std::invalid_argument("bit_reverse_permute: size mismatch");
#pragma omp parallel for if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    const index_t j = bits::reverse(i, n);
    if (i < j) std::swap(data[i], data[j]);
  }
}

FftPlan::FftPlan(qubit_t n_qubits, Sign sign, Schedule schedule)
    : n_(n_qubits), sign_(sign), schedule_(schedule) {
  const index_t size = index_t{1} << n_;
  const index_t half = size / 2;
  twiddle_.resize(half > 0 ? half : 1);
  const double base = static_cast<double>(static_cast<int>(sign)) * 2.0 *
                      std::numbers::pi / static_cast<double>(size);
  // Direct std::polar per entry keeps every twiddle accurate to one ulp
  // (incremental rotation would accumulate O(N) rounding error).
#pragma omp parallel for if (worth_parallelizing(half))
  for (index_t j = 0; j < std::max<index_t>(half, 1); ++j)
    twiddle_[j] = std::polar(1.0, base * static_cast<double>(j));
}

void FftPlan::run_stage(complex_t* a, qubit_t s) const {
  const index_t size = index_t{1} << n_;
  const complex_t* tw = twiddle_.data();
  const index_t len = index_t{1} << s;   // butterfly span of this stage
  const index_t half = len >> 1;
  const index_t stride = size >> s;      // twiddle stride: tw[j*stride] = w_len^j
  const index_t blocks = size >> s;

  if (blocks >= static_cast<index_t>(max_threads()) * 2 || !worth_parallelizing(size)) {
    // Many independent blocks: parallelize across blocks, keep the
    // inner butterfly loop serial and cache-contiguous.
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
    for (index_t b = 0; b < blocks; ++b) {
      complex_t* blk = a + b * len;
      for (index_t j = 0; j < half; ++j) {
        const complex_t w = tw[j * stride];
        const complex_t u = blk[j];
        const complex_t v = blk[j + half] * w;
        blk[j] = u + v;
        blk[j + half] = u - v;
      }
    }
  } else {
    // Few wide blocks (late stages): parallelize inside each block.
    for (index_t b = 0; b < blocks; ++b) {
      complex_t* blk = a + b * len;
#pragma omp parallel for schedule(static)
      for (index_t j = 0; j < half; ++j) {
        const complex_t w = tw[j * stride];
        const complex_t u = blk[j];
        const complex_t v = blk[j + half] * w;
        blk[j] = u + v;
        blk[j + half] = u - v;
      }
    }
  }
}

void FftPlan::run_fused_pair(complex_t* a, qubit_t s) const {
  // Stages s and s+1 in one sweep (radix-2^2): for each quadruple
  // (i0, i1, i2, i3) the stage-s butterflies feed directly into the
  // stage-(s+1) butterflies while everything is in registers.
  const index_t size = index_t{1} << n_;
  const complex_t* tw = twiddle_.data();
  const index_t len = index_t{1} << s;
  const index_t half = len >> 1;
  const index_t len2 = len << 1;
  const index_t stride_s = size >> s;
  const index_t stride_s1 = size >> (s + 1);
  const index_t blocks = size / len2;

  auto quad = [&](complex_t* blk, index_t j) {
    const complex_t ws = tw[j * stride_s];
    const complex_t w1 = tw[j * stride_s1];
    const complex_t w2 = tw[(j + half) * stride_s1];
    const complex_t u0 = blk[j];
    const complex_t v0 = blk[j + half] * ws;
    const complex_t u1 = blk[j + len];
    const complex_t v1 = blk[j + len + half] * ws;
    const complex_t x0 = u0 + v0, x1 = u0 - v0;
    const complex_t y0 = (u1 + v1) * w1, y1 = (u1 - v1) * w2;
    blk[j] = x0 + y0;
    blk[j + len] = x0 - y0;
    blk[j + half] = x1 + y1;
    blk[j + len + half] = x1 - y1;
  };

  if (blocks >= static_cast<index_t>(max_threads()) * 2 || !worth_parallelizing(size)) {
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
    for (index_t b = 0; b < blocks; ++b) {
      complex_t* blk = a + b * len2;
      for (index_t j = 0; j < half; ++j) quad(blk, j);
    }
  } else {
    for (index_t b = 0; b < blocks; ++b) {
      complex_t* blk = a + b * len2;
#pragma omp parallel for schedule(static)
      for (index_t j = 0; j < half; ++j) quad(blk, j);
    }
  }
}

void FftPlan::run_stockham_pair(const complex_t* x, complex_t* z, index_t l, index_t m,
                                double scale) const {
  // Two radix-2 Stockham DIF stages — (l, m) then (l/2, 2m) — in one
  // sweep: quadruples are combined in registers and land at their
  // self-sorted positions, so no bit-reversal pass ever runs. The
  // radix-2 invariant l*m = N/2 makes the four read streams fixed
  // offsets of each other.
  const index_t half = (index_t{1} << n_) / 2;  // = l * m throughout
  const index_t quarter = half / 2;
  const complex_t* tw = twiddle_.data();
  const index_t j_count = l / 2;

  const auto block = [&](index_t j) {
    const index_t jm = j * m;
    const complex_t w1 = tw[jm];             // first stage, j
    const complex_t w1b = tw[jm + quarter];  // first stage, j + l/2
    const complex_t w2 = tw[2 * jm];         // second stage, j
    const complex_t* x0 = x + jm;            // first stage inputs: x0/x2
    const complex_t* x1 = x0 + quarter;      //   and (for j + l/2) x1/x3
    const complex_t* x2 = x0 + half;
    const complex_t* x3 = x1 + half;
    complex_t* z0 = z + 4 * jm;
    for (index_t k = 0; k < m; ++k) {
      const complex_t u0 = x0[k], v0 = x1[k], u1 = x2[k], v1 = x3[k];
      const complex_t a = u0 + u1;
      const complex_t b = (u0 - u1) * w1;
      const complex_t c = v0 + v1;
      const complex_t d = (v0 - v1) * w1b;
      z0[k] = (a + c) * scale;
      z0[k + m] = (b + d) * scale;
      z0[k + 2 * m] = ((a - c) * w2) * scale;
      z0[k + 3 * m] = ((b - d) * w2) * scale;
    }
  };

  if (j_count >= static_cast<index_t>(max_threads()) * 2 ||
      !worth_parallelizing(half * 2)) {
#pragma omp parallel for schedule(static) if (worth_parallelizing(half * 2))
    for (index_t j = 0; j < j_count; ++j) block(j);
  } else {
    // Few wide blocks (late passes): parallelize inside each block.
    for (index_t j = 0; j < j_count; ++j) {
      const index_t jm = j * m;
      const complex_t w1 = tw[jm], w1b = tw[jm + quarter], w2 = tw[2 * jm];
      const complex_t* x0 = x + jm;
      const complex_t* x1 = x0 + quarter;
      const complex_t* x2 = x0 + half;
      const complex_t* x3 = x1 + half;
      complex_t* z0 = z + 4 * jm;
#pragma omp parallel for schedule(static)
      for (index_t k = 0; k < m; ++k) {
        const complex_t u0 = x0[k], v0 = x1[k], u1 = x2[k], v1 = x3[k];
        const complex_t a = u0 + u1;
        const complex_t b = (u0 - u1) * w1;
        const complex_t c = v0 + v1;
        const complex_t d = (v0 - v1) * w1b;
        z0[k] = (a + c) * scale;
        z0[k + m] = (b + d) * scale;
        z0[k + 2 * m] = ((a - c) * w2) * scale;
        z0[k + 3 * m] = ((b - d) * w2) * scale;
      }
    }
  }
}

void FftPlan::run_stockham_single(const complex_t* x, complex_t* z, double scale) const {
  // Final stage when the stage count is odd: l = 1, m = N/2, twiddle 1.
  const index_t half = (index_t{1} << n_) / 2;
#pragma omp parallel for schedule(static) if (worth_parallelizing(half * 2))
  for (index_t k = 0; k < half; ++k) {
    const complex_t u = x[k];
    const complex_t v = x[k + half];
    z[k] = (u + v) * scale;
    z[k + half] = (u - v) * scale;
  }
}

void FftPlan::execute_stockham(std::span<complex_t> data, std::span<complex_t> scratch,
                               Norm norm) const {
  const index_t size = index_t{1} << n_;
  double final_scale = 1.0;
  if (norm == Norm::Unitary) final_scale = 1.0 / std::sqrt(static_cast<double>(size));
  if (norm == Norm::Inverse) final_scale = 1.0 / static_cast<double>(size);

  complex_t* src = data.data();
  complex_t* dst = scratch.data();
  index_t l = size / 2, m = 1;
  while (l >= 1) {
    const bool last = l <= 2;  // pair consumes l == 2, single consumes l == 1
    const double scale = last ? final_scale : 1.0;
    if (l >= 2) {
      run_stockham_pair(src, dst, l, m, scale);
      l /= 4;
      m *= 4;
    } else {
      run_stockham_single(src, dst, scale);
      l = 0;
    }
    std::swap(src, dst);
  }
  // After an odd number of passes the result sits in the scratch.
  if (src != data.data())
    std::copy(src, src + size, data.data());
}

void FftPlan::execute(std::span<complex_t> data, std::span<complex_t> scratch,
                      Norm norm) const {
  const index_t size = index_t{1} << n_;
  if (data.size() != size) throw std::invalid_argument("FftPlan::execute: size mismatch");
  if (size == 1) {
    apply_norm(data, norm);
    return;
  }
  if (schedule_ == Schedule::Stockham && !scratch.empty()) {
    if (scratch.size() < size || scratch.data() == data.data())
      throw std::invalid_argument("FftPlan::execute: bad scratch");
    execute_stockham(data, scratch, norm);
    return;
  }
  // No scratch: run the in-place fused-pairs schedule (identical
  // results; the schedule equivalence test enforces it).

  bit_reverse_permute(data, n_);
  complex_t* a = data.data();

  if (schedule_ == Schedule::SingleStage) {
    for (qubit_t s = 1; s <= n_; ++s) run_stage(a, s);
  } else {
    // FusedPairs, or a Stockham plan executed without scratch.
    qubit_t s = 1;
    for (; s + 1 <= n_; s += 2) run_fused_pair(a, s);
    if (s == n_) run_stage(a, s);  // odd stage count: last stage alone
  }
  apply_norm(data, norm);
}

void FftPlan::execute(std::span<complex_t> data, Norm norm) const {
  // Cap on the per-thread scratch a scratch-less Stockham call may pin.
  // Above it (state-vector sizes, where memory is the binding
  // constraint) fall back to the in-place fused-pairs path instead of
  // permanently doubling the footprint; callers that want full-size
  // Stockham provide their own scratch (as the emulator does).
  constexpr index_t kMaxTlsScratch = index_t{1} << 22;  // 64 MiB of complex_t
  if (schedule_ != Schedule::Stockham || data.size() <= 1 ||
      data.size() > kMaxTlsScratch) {
    execute(data, std::span<complex_t>{}, norm);
    return;
  }
  static thread_local aligned_vector<complex_t> tls_scratch;
  if (tls_scratch.size() < data.size()) tls_scratch.resize(data.size());
  execute(data, {tls_scratch.data(), tls_scratch.size()}, norm);
}

void fft_inplace(std::span<complex_t> data, Sign sign, Norm norm) {
  if (!bits::is_pow2(data.size())) throw std::invalid_argument("fft: size not a power of two");
  const FftPlan plan(bits::log2_floor(data.size()), sign);
  plan.execute(data, norm);
}

void dft_naive(std::span<const complex_t> in, std::span<complex_t> out, Sign sign, Norm norm) {
  const std::size_t size = in.size();
  if (out.size() != size) throw std::invalid_argument("dft_naive: size mismatch");
  const double base = static_cast<double>(static_cast<int>(sign)) * 2.0 *
                      std::numbers::pi / static_cast<double>(size);
#pragma omp parallel for if (size >= 256)
  for (std::size_t k = 0; k < size; ++k) {
    complex_t acc{};
    for (std::size_t l = 0; l < size; ++l)
      acc += in[l] * std::polar(1.0, base * static_cast<double>(k) * static_cast<double>(l));
    out[k] = acc;
  }
  apply_norm(out, norm);
}

}  // namespace qc::fft
