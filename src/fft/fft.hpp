// Complex power-of-two FFT (the FFTW/MKL-CFFT role).
//
// The paper's §3.2 replaces the O(n^2)-gate quantum Fourier transform
// circuit with one classical FFT over the 2^n-entry state vector. No FFT
// library is available offline, so this module implements the transform
// from scratch: an iterative radix-2 decimation-in-time FFT with a
// precomputed twiddle table (plan-based, like FFTW), OpenMP-parallel over
// butterfly blocks, with both sign conventions and optional unitary
// normalization.
//
// Convention: Sign::Negative computes y_k = sum_l x_l exp(-2*pi*i*k*l/N)
// (the classical "forward" DFT); Sign::Positive uses exp(+...). The QFT
// of the paper's Eq. (4) is Sign::Positive with Norm::Unitary.
#pragma once

#include <span>

#include "common/aligned.hpp"
#include "common/types.hpp"

namespace qc::fft {

enum class Sign : int { Negative = -1, Positive = +1 };

enum class Norm {
  None,     ///< No scaling.
  Unitary,  ///< Scale by 1/sqrt(N) — preserves state-vector norm.
  Inverse,  ///< Scale by 1/N (classical inverse-transform convention).
};

/// Opposite sign (used to build inverse transforms).
constexpr Sign opposite(Sign s) noexcept {
  return s == Sign::Negative ? Sign::Positive : Sign::Negative;
}

/// Butterfly schedule. The transform is memory-bound at state-vector
/// sizes, so fusing two radix-2 stages into one sweep (a radix-2^2 /
/// radix-4-style pass: 4 loads + 4 stores per 2 stages instead of 8+8)
/// nearly halves traffic; the ablation bench quantifies it. The
/// Stockham schedule additionally removes the bit-reversal permutation
/// (a random scatter that costs ~40% of the in-place transform at
/// state-vector sizes) by ping-ponging between the data and a scratch
/// buffer with purely sequential sweeps, and folds the normalization
/// into the final pass.
enum class Schedule {
  SingleStage,  ///< One in-place sweep per radix-2 stage (textbook).
  FusedPairs,   ///< Two stages per in-place sweep where possible.
  Stockham,     ///< Self-sorting out-of-place fused pairs (default).
};

/// Reusable transform plan for a fixed size and sign. Holds the twiddle
/// table (N/2 entries) so repeated transforms (e.g. every QFT emulation
/// in a sweep) pay the trigonometry once.
class FftPlan {
 public:
  /// Plan for transforms of 2^n_qubits points with the given sign.
  FftPlan(qubit_t n_qubits, Sign sign, Schedule schedule = Schedule::Stockham);

  /// In-place transform of exactly 2^n_qubits points. The Stockham
  /// schedule ping-pongs through a per-thread scratch buffer (grown on
  /// demand, reused across calls, capped at 64 MiB — larger transforms
  /// fall back to the in-place fused-pairs sweeps rather than pinning a
  /// state-vector-sized buffer per thread).
  void execute(std::span<complex_t> data, Norm norm = Norm::None) const;

  /// Same transform with caller-provided scratch (>= data.size();
  /// distinct from data). Lets long-lived callers (the emulator) reuse
  /// an existing buffer instead of the per-thread one. Only the
  /// Stockham schedule touches the scratch; an empty scratch selects
  /// the in-place fused-pairs fallback.
  void execute(std::span<complex_t> data, std::span<complex_t> scratch, Norm norm) const;

  [[nodiscard]] qubit_t qubits() const noexcept { return n_; }
  [[nodiscard]] Sign sign() const noexcept { return sign_; }
  [[nodiscard]] Schedule schedule() const noexcept { return schedule_; }

 private:
  void run_stage(complex_t* a, qubit_t s) const;
  void run_fused_pair(complex_t* a, qubit_t s) const;
  void run_stockham_pair(const complex_t* x, complex_t* z, index_t l, index_t m,
                         double scale) const;
  void run_stockham_single(const complex_t* x, complex_t* z, double scale) const;
  void execute_stockham(std::span<complex_t> data, std::span<complex_t> scratch,
                        Norm norm) const;

  qubit_t n_;
  Sign sign_;
  Schedule schedule_;
  aligned_vector<complex_t> twiddle_;  // twiddle_[j] = exp(sign*2*pi*i*j/N), j < N/2
};

/// One-shot in-place FFT (builds a plan internally).
void fft_inplace(std::span<complex_t> data, Sign sign, Norm norm = Norm::None);

/// In-place bit-reversal permutation of 2^n points (exposed for tests and
/// for the QFT output-order conversion).
void bit_reverse_permute(std::span<complex_t> data, qubit_t n);

/// O(N^2) reference DFT — the correctness oracle for every FFT test.
void dft_naive(std::span<const complex_t> in, std::span<complex_t> out, Sign sign,
               Norm norm = Norm::None);

}  // namespace qc::fft
