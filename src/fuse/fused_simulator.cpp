#include "fuse/fused_simulator.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "sim/kernels.hpp"

namespace qc::fuse {

void FusedSimulator::apply_gate(sim::StateVector& sv, const circuit::Gate& g) const {
  hpc_.apply_gate(sv, g);
}

FusedCircuit FusedSimulator::plan(const circuit::Circuit& c) const {
  return fuse_circuit(c, opts_.fusion);
}

void FusedSimulator::execute(sim::StateVector& sv, const FusedCircuit& plan) const {
  if (plan.n != sv.qubits()) throw std::invalid_argument("execute: qubit count mismatch");
  const auto a = sv.amplitudes();
  for (const FusedItem& item : plan.items) {
    if (item.kind == FusedItem::Kind::Passthrough) {
      hpc_.apply_gate(sv, item.gate);
      continue;
    }
    const FusedOp& op = item.block;
    obs::Span span("fuse.block");
    if (obs::enabled()) {
      span.arg("width", static_cast<double>(op.width()));
      span.arg("gates", static_cast<double>(op.gate_count));
    }
    if (op.diagonal) {
      // All folded gates were diagonal, so the block unitary is too:
      // apply just the plan-time-extracted diagonal in one multiply-only
      // sweep (no allocation in the hot loop).
      sim::kernels::apply_multi_diagonal(a, sv.qubits(), op.qubits, op.diag);
      continue;
    }
    sim::kernels::apply_multi(a, sv.qubits(), op.qubits,
                              {op.unitary.data(), op.unitary.rows() * op.unitary.cols()});
  }
}

void FusedSimulator::run(sim::StateVector& sv, const circuit::Circuit& c) const {
  if (c.qubits() != sv.qubits()) throw std::invalid_argument("run: qubit count mismatch");
  execute(sv, plan(c));
}

}  // namespace qc::fuse
