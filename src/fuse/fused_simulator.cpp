#include "fuse/fused_simulator.hpp"

#include <stdexcept>
#include <type_traits>
#include <vector>

#include "obs/trace.hpp"
#include "sim/kernels.hpp"

namespace qc::fuse {

void FusedSimulator::apply_gate(sim::StateVector& sv, const circuit::Gate& g) const {
  hpc_.apply_gate(sv, g);
}

FusedCircuit FusedSimulator::plan(const circuit::Circuit& c) const {
  return fuse_circuit(c, opts_.fusion);
}

template <typename T>
void execute_fused(std::span<basic_complex_t<T>> a, qubit_t n, const FusedCircuit& plan) {
  if (a.size() != dim(plan.n) || plan.n != n)
    throw std::invalid_argument("execute_fused: amplitude count mismatch");
  // Narrowing scratch reused across blocks (empty and untouched at
  // T = double, where the views alias the plan).
  std::vector<basic_complex_t<T>> payload;
  for (const FusedItem& item : plan.items) {
    if (item.kind == FusedItem::Kind::Passthrough) {
      sim::apply_gate_hpc<T>(a, n, item.gate);
      continue;
    }
    const FusedOp& op = item.block;
    obs::Span span("fuse.block");
    if (obs::enabled()) {
      span.arg("width", static_cast<double>(op.width()));
      span.arg("gates", static_cast<double>(op.gate_count));
    }
    if (op.diagonal) {
      // All folded gates were diagonal, so the block unitary is too:
      // apply just the plan-time-extracted diagonal in one multiply-only
      // sweep (no allocation in the hot loop).
      std::span<const basic_complex_t<T>> d;
      if constexpr (std::is_same_v<T, double>) {
        d = {op.diag.data(), op.diag.size()};
      } else {
        payload.resize(op.diag.size());
        for (std::size_t i = 0; i < op.diag.size(); ++i)
          payload[i] = static_cast<basic_complex_t<T>>(op.diag[i]);
        d = {payload.data(), payload.size()};
      }
      sim::kernels::apply_multi_diagonal<T>(a, n, op.qubits, d);
      continue;
    }
    const std::size_t count = op.unitary.rows() * op.unitary.cols();
    std::span<const basic_complex_t<T>> u;
    if constexpr (std::is_same_v<T, double>) {
      u = {op.unitary.data(), count};
    } else {
      payload.resize(count);
      for (std::size_t i = 0; i < count; ++i)
        payload[i] = static_cast<basic_complex_t<T>>(op.unitary.data()[i]);
      u = {payload.data(), count};
    }
    sim::kernels::apply_multi<T>(a, n, op.qubits, u);
  }
}

template void execute_fused<float>(std::span<basic_complex_t<float>>, qubit_t,
                                   const FusedCircuit&);
template void execute_fused<double>(std::span<basic_complex_t<double>>, qubit_t,
                                    const FusedCircuit&);

void FusedSimulator::execute(sim::StateVector& sv, const FusedCircuit& plan) const {
  if (plan.n != sv.qubits()) throw std::invalid_argument("execute: qubit count mismatch");
  execute_fused<double>(sv.amplitudes(), sv.qubits(), plan);
}

void FusedSimulator::run(sim::StateVector& sv, const circuit::Circuit& c) const {
  if (c.qubits() != sv.qubits()) throw std::invalid_argument("run: qubit count mismatch");
  execute(sv, plan(c));
}

}  // namespace qc::fuse
