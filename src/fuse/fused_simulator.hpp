// FusedSimulator — the gate-fusion backend ("fused" in make_simulator).
//
// run() first lowers the circuit through fuse::fuse_circuit, then
// executes the plan: multi-gate blocks go through the one-pass k-qubit
// kernels (apply_multi / apply_multi_diagonal), everything else through
// the same specialized fast paths HpcSimulator uses. Per-gate
// apply_gate() is identical to HpcSimulator (fusion is a cross-gate
// optimization; there is nothing to fuse for a single gate).
//
// For repeated execution of one circuit (iterative algorithms, benches),
// plan() + execute() let callers pay the fusion GEMMs once.
#pragma once

#include "fuse/fusion.hpp"
#include "sim/simulator.hpp"

namespace qc::fuse {

class FusedSimulator final : public sim::Simulator {
 public:
  struct Options {
    FusionOptions fusion;
  };

  FusedSimulator() = default;
  explicit FusedSimulator(Options opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "fused"; }

  void apply_gate(sim::StateVector& sv, const circuit::Gate& g) const override;
  void run(sim::StateVector& sv, const circuit::Circuit& c) const override;

  /// The fusion pass this backend would run on `c`.
  [[nodiscard]] FusedCircuit plan(const circuit::Circuit& c) const;

  /// Executes a prebuilt plan (must match sv's qubit count).
  void execute(sim::StateVector& sv, const FusedCircuit& plan) const;

 private:
  sim::HpcSimulator hpc_;
  Options opts_;
};

/// Executes a fused plan on a raw amplitude array of 2^n amplitudes at
/// scalar T — the span-level executor FusedSimulator::execute wraps and
/// the engine's fp32 path into fused execution. The plan (and its block
/// GEMMs) stays double precision; block payloads are narrowed once per
/// block. Instantiated for float/double.
template <typename T>
void execute_fused(std::span<basic_complex_t<T>> a, qubit_t n, const FusedCircuit& plan);

}  // namespace qc::fuse
