#include "fuse/fusion.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "common/bits.hpp"
#include "linalg/gemm.hpp"
#include "obs/trace.hpp"
#include "sim/kernels.hpp"

namespace qc::fuse {

namespace {

using circuit::Gate;

/// OR of the gate's target and control bits — the qubit set a fused
/// block must cover to absorb it.
index_t support_mask(const Gate& g) {
  index_t m = 0;
  for (qubit_t t : g.targets) m = bits::set(m, t);
  for (qubit_t c : g.controls) m = bits::set(m, c);
  return m;
}

/// In-construction item: a growing block or a frozen passthrough gate.
struct Builder {
  bool is_block = false;
  index_t support = 0;
  bool diagonal = false;  ///< Full operator diagonal (controls included).
  // Block state (is_block):
  std::vector<qubit_t> qubits;  ///< Ascending.
  linalg::Matrix unitary;
  std::vector<Gate> sources;
  // Passthrough state (!is_block):
  Gate gate;
};

Builder passthrough(const Gate& g) {
  Builder b;
  b.support = support_mask(g);
  b.diagonal = g.diagonal();
  b.gate = g;
  return b;
}

Builder open_block(const Gate& g) {
  Builder b;
  b.is_block = true;
  b.support = support_mask(g);
  b.diagonal = g.diagonal();
  b.qubits = sim::kernels::sorted_bit_positions(b.support);
  b.unitary = circuit::gate_operator_on(g, b.qubits);
  b.sources = {g};
  return b;
}

/// Conservative commutation test between a gate and an earlier item:
/// disjoint supports always commute; so do two operators that are both
/// diagonal in the computational basis (a controlled phase-type gate is
/// fully diagonal — controls only add identity rows).
bool commutes(const Builder& b, index_t gmask, bool gdiag) {
  if ((b.support & gmask) == 0) return true;
  return b.diagonal && gdiag;
}

/// Folds `g` into block `b` (g applied after the block's current
/// contents): widen the block unitary to the union support if needed,
/// then left-multiply the gate's embedded operator via GEMM.
void merge(Builder& b, const Gate& g, index_t gmask) {
  const index_t union_mask = b.support | gmask;
  if (union_mask != b.support) {
    std::vector<qubit_t> wider = sim::kernels::sorted_bit_positions(union_mask);
    b.unitary = linalg::embed_operator(b.unitary, b.qubits, wider);
    b.qubits = std::move(wider);
    b.support = union_mask;
  }
  b.unitary = linalg::gemm(circuit::gate_operator_on(g, b.qubits), b.unitary);
  b.diagonal = b.diagonal && g.diagonal();
  b.sources.push_back(g);
}

// --- cost model --------------------------------------------------------
// Relative time per full-state-vector amplitude, calibrated against
// bench/ablation_fusion on a single-core AVX2 box (dense uncontrolled
// 2x2 sweep == 3.0). Controls divide the touched fraction by 2^c.

/// Predicted cost of one source gate through HpcSimulator's fast paths.
double gate_cost(const Gate& g) {
  const auto ctrl = static_cast<double>(index_t{1} << g.controls.size());
  switch (g.kind) {
    case circuit::GateKind::X:
    case circuit::GateKind::Swap:
      return 2.0 / ctrl;  // pure amplitude swap, traffic only
    case circuit::GateKind::Z:
    case circuit::GateKind::S:
    case circuit::GateKind::Sdg:
    case circuit::GateKind::T:
    case circuit::GateKind::Tdg:
    case circuit::GateKind::Phase:
      return 1.2 / ctrl;  // d0 == 1: touches the target=1 half only
    case circuit::GateKind::Rz:
      return 2.4 / ctrl;  // diagonal, but touches both halves
    default:
      return 3.0 / ctrl;  // dense 2x2 pair sweep
  }
}

/// Predicted cost of one fused-block pass. The steep growth past k = 3
/// is the dense 2^k x 2^k mat-vec turning the sweep compute bound.
double block_cost(qubit_t width, bool diagonal) {
  if (diagonal) return 1.5;  // one multiply-only sweep
  constexpr double kDense[] = {0.0, 3.0, 3.5, 5.0, 10.0, 32.0, 64.0, 256.0, 512.0};
#if defined(__FMA__)
  constexpr double kVecPenalty = 1.0;  // calibration build (FMA codegen)
#else
  // Portable (non-FMA) codegen runs the mat-vec ~1.6x slower per flop
  // than the calibration build, so wide blocks must clear a higher bar.
  constexpr double kVecPenalty = 1.6;
#endif
  return width >= 2 ? kDense[width] * kVecPenalty : kDense[width];
}

bool profitable(const Builder& b) {
  double sources = 0.0;
  for (const Gate& g : b.sources) sources += gate_cost(g);
  return block_cost(static_cast<qubit_t>(b.qubits.size()), b.diagonal) <= sources;
}

}  // namespace

std::size_t FusedCircuit::fused_gates() const {
  std::size_t total = 0;
  for (const FusedItem& it : items)
    if (it.kind == FusedItem::Kind::Block) total += it.block.gate_count;
  return total;
}

std::size_t FusedCircuit::blocks() const {
  std::size_t total = 0;
  for (const FusedItem& it : items) total += it.kind == FusedItem::Kind::Block;
  return total;
}

linalg::Matrix FusedCircuit::to_matrix_reference() const {
  std::vector<qubit_t> all(n);
  std::iota(all.begin(), all.end(), qubit_t{0});
  linalg::Matrix u = linalg::Matrix::identity(dim(n));
  for (const FusedItem& it : items) {
    const linalg::Matrix op = it.kind == FusedItem::Kind::Block
                                  ? linalg::embed_operator(it.block.unitary, it.block.qubits, all)
                                  : circuit::gate_operator(it.gate, n);
    u = linalg::gemm(op, u);
  }
  return u;
}

std::string FusedCircuit::to_string() const {
  std::ostringstream out;
  out << "fused plan on " << n << " qubits: " << items.size() << " items from " << source_gates
      << " gates (" << blocks() << " blocks holding " << fused_gates() << " gates)\n";
  for (const FusedItem& it : items) {
    if (it.kind == FusedItem::Kind::Block) {
      out << "  block x" << it.block.gate_count << (it.block.diagonal ? " diag" : "") << " [q:";
      for (std::size_t i = 0; i < it.block.qubits.size(); ++i)
        out << (i ? "," : "") << it.block.qubits[i];
      out << "]\n";
    } else {
      out << "  gate  " << it.gate.to_string() << "\n";
    }
  }
  return out.str();
}

FusedCircuit fuse_circuit(const circuit::Circuit& c, const FusionOptions& opts) {
  if (opts.max_width > sim::kernels::kMaxFusedWidth)
    throw std::invalid_argument("fuse_circuit: max_width exceeds kernel limit");
  // Cost-gated re-fusion recurses through here, so nested fuse.pass
  // spans mark blocks that unwound to a narrower width.
  obs::Span pass_span("fuse.pass");
  FusedCircuit out;
  out.n = c.qubits();
  out.source_gates = c.size();
  const bool enabled = opts.enabled && opts.max_width >= 1;

  std::vector<Builder> seq;
  for (const Gate& g : c.gates()) {
    const index_t gmask = support_mask(g);
    if (!enabled || static_cast<qubit_t>(bits::popcount(gmask)) > opts.max_width) {
      seq.push_back(passthrough(g));
      continue;
    }
    // Scan backwards for the deepest block this gate can join, hopping
    // only over items it commutes with (so reordering is sound).
    bool merged = false;
    const bool gdiag = g.diagonal();
    for (std::size_t i = seq.size(); i-- > 0;) {
      Builder& b = seq[i];
      if (b.is_block &&
          static_cast<qubit_t>(bits::popcount(b.support | gmask)) <= opts.max_width) {
        merge(b, g, gmask);
        merged = true;
        break;
      }
      if (!commutes(b, gmask, gdiag)) break;
    }
    if (!merged) seq.push_back(open_block(g));
  }

  // Freeze. Single-gate blocks go back to passthrough so the executor's
  // specialized fast paths (diagonal / X / SWAP) keep handling them;
  // cost-gated blocks that would lose to their sources' fast paths are
  // re-fused at the next narrower width (their profitable sub-blocks
  // survive, the rest unwinds to passthrough gates).
  out.items.reserve(seq.size());
  for (Builder& b : seq) {
    if (!b.is_block || b.sources.size() == 1) {
      FusedItem item;
      item.kind = FusedItem::Kind::Passthrough;
      item.gate = b.is_block ? std::move(b.sources.front()) : std::move(b.gate);
      out.items.push_back(std::move(item));
      continue;
    }
    if (opts.cost_gate && !profitable(b)) {
      circuit::Circuit sub(c.qubits());
      for (Gate& g : b.sources) sub.append(std::move(g));
      FusionOptions narrower = opts;
      narrower.max_width = static_cast<qubit_t>(b.qubits.size() - 1);
      narrower.enabled = narrower.max_width >= 1;
      FusedCircuit subplan = fuse_circuit(sub, narrower);
      for (FusedItem& item : subplan.items) out.items.push_back(std::move(item));
      continue;
    }
    FusedItem item;
    item.kind = FusedItem::Kind::Block;
    item.block.qubits = std::move(b.qubits);
    item.block.unitary = std::move(b.unitary);
    item.block.gate_count = b.sources.size();
    item.block.diagonal = b.diagonal;
    if (b.diagonal) {
      const index_t block = dim(item.block.width());
      item.block.diag.resize(block);
      for (index_t d = 0; d < block; ++d) item.block.diag[d] = item.block.unitary(d, d);
    }
    out.items.push_back(std::move(item));
  }
  if (obs::enabled()) {
    pass_span.arg("gates_in", static_cast<double>(out.source_gates));
    pass_span.arg("items_out", static_cast<double>(out.items.size()));
  }
  return out;
}

}  // namespace qc::fuse
