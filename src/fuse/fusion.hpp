// Gate-fusion pass: collapse runs of gates into k-qubit dense unitaries.
//
// The paper's central lesson (and qHiPSTER's, and HPQEA's unified
// GEMM-style apply unit) is that gate application is memory bound: a
// naive simulator pays a full state-vector pass per gate. This pass
// walks a circuit::Circuit and greedily merges consecutive gates whose
// combined target+control support stays within `max_width` qubits into
// one FusedOp — a dense 2^k x 2^k unitary composed via linalg GEMM on
// the small block — so the executor pays ONE memory pass for the whole
// run (sim::kernels::apply_multi).
//
// The merge is commutation-aware: a gate may slide left past earlier
// items it commutes with (disjoint support, or both operators diagonal
// in the computational basis) to join a block it fits into. This is what
// lets the long CR cascades of the QFT fuse across the interleaved
// Hadamards.
//
// Gates whose own support exceeds max_width (e.g. a 10-qubit
// multi-controlled Z) are kept as passthrough items and executed by the
// regular specialized fast paths.
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qc::fuse {

struct FusionOptions {
  /// Maximum qubits per fused block (k). Wider blocks amortize more
  /// memory passes but cost 2^k mat-vec work per amplitude
  /// (bench/ablation_fusion measures the sweep). Must not exceed
  /// sim::kernels::kMaxFusedWidth.
  qubit_t max_width = 5;
  /// Disable the pass entirely (every gate becomes a passthrough item).
  bool enabled = true;
  /// Keep a block only when the cost model predicts the one-pass dense
  /// apply beats the per-gate fast paths of its sources; unprofitable
  /// blocks are re-fused at the next narrower width. Guards against
  /// shallow wide blocks (few gates over many qubits), whose 2^k
  /// per-amplitude mat-vec would lose to per-gate sweeps.
  bool cost_gate = true;
};

/// A group of source gates collapsed into one dense unitary over the
/// ascending global qubit labels `qubits` (local bit l = qubits[l]).
struct FusedOp {
  std::vector<qubit_t> qubits;
  linalg::Matrix unitary;       ///< 2^k x 2^k, row-major.
  std::size_t gate_count = 0;   ///< Source gates folded into this block.
  bool diagonal = false;        ///< True if every folded gate was diagonal.
  /// The 2^k diagonal of `unitary`, extracted at plan time when
  /// `diagonal` (empty otherwise) — executors apply it directly without
  /// per-block allocation in the hot loop.
  std::vector<complex_t> diag;

  [[nodiscard]] qubit_t width() const noexcept {
    return static_cast<qubit_t>(qubits.size());
  }
};

/// One element of the fused program, in execution order.
struct FusedItem {
  enum class Kind { Block, Passthrough };
  Kind kind = Kind::Passthrough;
  FusedOp block;       ///< Valid when kind == Block.
  circuit::Gate gate;  ///< Valid when kind == Passthrough.
};

/// The fused program plus bookkeeping for benches and tests.
struct FusedCircuit {
  qubit_t n = 0;
  std::vector<FusedItem> items;
  std::size_t source_gates = 0;

  /// Source gates that ended up inside multi-gate blocks — the number of
  /// state-vector passes saved is fused_gates() - blocks().
  [[nodiscard]] std::size_t fused_gates() const;
  /// Number of multi-gate FusedOp blocks.
  [[nodiscard]] std::size_t blocks() const;

  /// Dense 2^n x 2^n oracle (product of the items' embedded operators) —
  /// small-n test oracle mirroring Circuit::to_matrix_reference.
  [[nodiscard]] linalg::Matrix to_matrix_reference() const;

  /// Human-readable plan summary ("block [0 2 3] x12 | gate Swap ...").
  [[nodiscard]] std::string to_string() const;
};

/// Runs the fusion pass. The result applies the exact same unitary as
/// `c` (to rounding); blocks that would hold a single gate are kept as
/// passthrough items so the executor's specialized fast paths stay in
/// charge of lone gates.
[[nodiscard]] FusedCircuit fuse_circuit(const circuit::Circuit& c, const FusionOptions& opts = {});

}  // namespace qc::fuse
