#include "linalg/eig.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qc::linalg {
namespace {

/// Complex Givens rotation (LAPACK zlartg convention): real c and complex
/// s with [c s; -conj(s) c] * [a; b] = [r; 0].
struct Givens {
  double c = 1.0;
  complex_t s{};
  complex_t r{};
};

Givens make_givens(complex_t a, complex_t b) {
  Givens g;
  const double an = std::abs(a), bn = std::abs(b);
  if (bn == 0.0) {
    g.c = 1.0;
    g.s = 0.0;
    g.r = a;
    return g;
  }
  if (an == 0.0) {
    g.c = 0.0;
    g.s = 1.0;
    g.r = b;
    return g;
  }
  const double h = std::hypot(an, bn);
  g.c = an / h;
  g.s = (a / an) * std::conj(b) / h;
  g.r = (a / an) * h;
  return g;
}

/// Applies G to rows (k, k+1) of `m`, columns [j0, j1).
void rotate_rows(Matrix& m, std::size_t k, const Givens& g, std::size_t j0, std::size_t j1) {
  complex_t* r0 = &m(k, 0);
  complex_t* r1 = &m(k + 1, 0);
  for (std::size_t j = j0; j < j1; ++j) {
    const complex_t x = r0[j], y = r1[j];
    r0[j] = g.c * x + g.s * y;
    r1[j] = -std::conj(g.s) * x + g.c * y;
  }
}

/// Applies G^H to columns (k, k+1) of `m`, rows [i0, i1).
void rotate_cols(Matrix& m, std::size_t k, const Givens& g, std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    const complex_t x = m(i, k), y = m(i, k + 1);
    m(i, k) = g.c * x + std::conj(g.s) * y;
    m(i, k + 1) = -g.s * x + g.c * y;
  }
}

/// Wilkinson shift: the eigenvalue of the trailing 2x2 of the active
/// window closest to the bottom-right entry.
complex_t wilkinson_shift(const Matrix& h, std::size_t hi) {
  const complex_t a = h(hi - 1, hi - 1), b = h(hi - 1, hi);
  const complex_t c = h(hi, hi - 1), d = h(hi, hi);
  const complex_t tr = a + d;
  const complex_t det = a * d - b * c;
  const complex_t disc = std::sqrt(tr * tr - 4.0 * det);
  const complex_t l1 = 0.5 * (tr + disc), l2 = 0.5 * (tr - disc);
  return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

}  // namespace

Matrix hessenberg(const Matrix& a, Matrix* q_out) {
  if (!a.square()) throw std::invalid_argument("hessenberg: non-square");
  const std::size_t n = a.rows();
  Matrix h = a;
  Matrix q = Matrix::identity(n);

  // Householder vectors stored column-by-column; applied immediately.
  std::vector<complex_t> v(n);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Build reflector annihilating h(k+2 .. n-1, k).
    double xnorm = 0;
    for (std::size_t i = k + 1; i < n; ++i) xnorm += std::norm(h(i, k));
    xnorm = std::sqrt(xnorm);
    if (xnorm < 1e-300) continue;

    const complex_t x0 = h(k + 1, k);
    const complex_t phase = std::abs(x0) == 0.0 ? complex_t{1.0} : x0 / std::abs(x0);
    const complex_t alpha = -phase * xnorm;

    double vnorm2 = 0;
    for (std::size_t i = k + 1; i < n; ++i) {
      v[i] = h(i, k);
      if (i == k + 1) v[i] -= alpha;
      vnorm2 += std::norm(v[i]);
    }
    if (vnorm2 < 1e-300) continue;
    const double beta = 2.0 / vnorm2;

    // H <- P H, P = I - beta v v^H acting on rows k+1..n-1.
#pragma omp parallel for if (n > 256)
    for (std::size_t j = k; j < n; ++j) {
      complex_t dot{};
      for (std::size_t i = k + 1; i < n; ++i) dot += std::conj(v[i]) * h(i, j);
      dot *= beta;
      for (std::size_t i = k + 1; i < n; ++i) h(i, j) -= dot * v[i];
    }
    // H <- H P (columns k+1..n-1).
#pragma omp parallel for if (n > 256)
    for (std::size_t i = 0; i < n; ++i) {
      complex_t dot{};
      for (std::size_t j = k + 1; j < n; ++j) dot += h(i, j) * v[j];
      dot *= beta;
      for (std::size_t j = k + 1; j < n; ++j) h(i, j) -= dot * std::conj(v[j]);
    }
    // Q <- Q P.
    if (q_out != nullptr) {
#pragma omp parallel for if (n > 256)
      for (std::size_t i = 0; i < n; ++i) {
        complex_t dot{};
        for (std::size_t j = k + 1; j < n; ++j) dot += q(i, j) * v[j];
        dot *= beta;
        for (std::size_t j = k + 1; j < n; ++j) q(i, j) -= dot * std::conj(v[j]);
      }
    }
    // Zero out the annihilated entries exactly.
    h(k + 1, k) = alpha;
    for (std::size_t i = k + 2; i < n; ++i) h(i, k) = 0.0;
  }
  if (q_out != nullptr) *q_out = std::move(q);
  return h;
}

SchurResult schur(const Matrix& a) {
  if (!a.square()) throw std::invalid_argument("schur: non-square");
  const std::size_t n = a.rows();
  SchurResult res;
  res.t = hessenberg(a, &res.q);
  if (n <= 1) return res;
  Matrix& t = res.t;
  Matrix& q = res.q;

  const double anorm = std::max(a.frobenius_norm(), 1e-300);
  const double eps = 1e-15;
  auto subdiag_small = [&](std::size_t i) {
    const double s = std::abs(t(i, i)) + std::abs(t(i + 1, i + 1));
    return std::abs(t(i + 1, i)) <= eps * std::max(s, anorm * 1e-3);
  };

  std::size_t hi = n - 1;
  int iters_this_eig = 0;
  const int max_iters_per_eig = 40;
  std::vector<Givens> rot(n);

  while (hi > 0) {
    // Deflate converged eigenvalues at the bottom of the window.
    if (subdiag_small(hi - 1)) {
      t(hi, hi - 1) = 0.0;
      --hi;
      iters_this_eig = 0;
      continue;
    }
    // Find the active window [lo, hi]: walk up until a negligible
    // subdiagonal splits the problem.
    std::size_t lo = hi;
    while (lo > 0 && !subdiag_small(lo - 1)) --lo;
    if (lo > 0) t(lo, lo - 1) = 0.0;

    if (++iters_this_eig > max_iters_per_eig)
      throw std::runtime_error("schur: QR iteration failed to converge");

    // Exceptional shift every 10 sweeps breaks rare symmetric cycles.
    complex_t sigma;
    if (iters_this_eig % 10 == 0) {
      sigma = t(hi, hi) + complex_t{std::abs(t(hi, hi - 1)), 0.0};
    } else {
      sigma = wilkinson_shift(t, hi);
    }

    // Explicit single-shift QR sweep on [lo, hi]:
    //   (T - sigma I) = G_{hi-1}^H ... G_lo^H R   (left rotations)
    //   T' = R G_lo ... G_{hi-1} + sigma I        (right rotations)
    for (std::size_t i = lo; i <= hi; ++i) t(i, i) -= sigma;
    for (std::size_t k = lo; k < hi; ++k) {
      rot[k] = make_givens(t(k, k), t(k + 1, k));
      t(k, k) = rot[k].r;
      t(k + 1, k) = 0.0;
      rotate_rows(t, k, rot[k], k + 1, n);
    }
    for (std::size_t k = lo; k < hi; ++k) {
      rotate_cols(t, k, rot[k], 0, std::min(k + 2, hi) + 1);
      rotate_cols(q, k, rot[k], 0, n);
    }
    for (std::size_t i = lo; i <= hi; ++i) t(i, i) += sigma;
    ++res.iterations;
  }
  // Clean any residual below-diagonal dust so T is exactly triangular.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) t(i, j) = 0.0;
  return res;
}

EigResult eig(const Matrix& a, bool compute_vectors) {
  const std::size_t n = a.rows();
  SchurResult s = schur(a);
  EigResult r;
  r.iterations = s.iterations;
  r.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) r.values[i] = s.t(i, i);
  if (!compute_vectors) return r;

  // Eigenvectors of the triangular factor by back-substitution:
  // (T - lambda_j I) y = 0 with y_j = 1, y_{>j} = 0; then v = Q y.
  const double tnorm = std::max(s.t.frobenius_norm(), 1e-300);
  const double smallden = 1e-15 * tnorm;
  Matrix y(n, n);
#pragma omp parallel for schedule(dynamic) if (n > 64)
  for (std::size_t j = 0; j < n; ++j) {
    const complex_t lambda = r.values[j];
    y(j, j) = 1.0;
    for (std::size_t ii = j; ii-- > 0;) {
      complex_t acc{};
      for (std::size_t k = ii + 1; k <= j; ++k) acc += s.t(ii, k) * y(k, j);
      complex_t den = s.t(ii, ii) - lambda;
      // LAPACK-style guard: perturb a (near-)zero denominator, which
      // occurs for repeated eigenvalues, instead of dividing by zero.
      if (std::abs(den) < smallden) den = complex_t{smallden, 0.0};
      y(ii, j) = -acc / den;
    }
  }
  // v = Q y, column-normalized.
  Matrix v(n, n);
#pragma omp parallel for schedule(static) if (n > 64)
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      complex_t acc{};
      for (std::size_t k = j + 1; k-- > 0;) acc += s.q(i, k) * y(k, j);
      v(i, j) = acc;
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0;
    for (std::size_t i = 0; i < n; ++i) norm += std::norm(v(i, j));
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (std::size_t i = 0; i < n; ++i) v(i, j) /= norm;
    }
  }
  r.vectors = std::move(v);
  return r;
}

double eig_residual(const Matrix& a, const EigResult& r) {
  const std::size_t n = a.rows();
  if (r.vectors.rows() != n) throw std::invalid_argument("eig_residual: no vectors");
  std::vector<complex_t> av(n);
  double worst = 0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      complex_t acc{};
      for (std::size_t k = 0; k < n; ++k) acc += a(i, k) * r.vectors(k, j);
      av[i] = acc - r.values[j] * r.vectors(i, j);
    }
    double res = 0;
    for (std::size_t i = 0; i < n; ++i) res += std::norm(av[i]);
    worst = std::max(worst, std::sqrt(res));
  }
  return worst;
}

}  // namespace qc::linalg
