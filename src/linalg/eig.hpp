// Dense complex eigensolver (zgeev role).
//
// The paper's §3.3 offers eigendecomposition as the second emulation
// shortcut for quantum phase estimation: diagonalize the circuit unitary
// once (O(2^{3n}) via Hessenberg reduction + QR iteration [Golub/Nash/
// Van Loan]), then read all phases off directly. This module implements
// that pipeline from scratch:
//
//   A  --Householder-->  H (upper Hessenberg),  A = Q0 H Q0^H
//   H  --shifted QR  -->  T (upper triangular, Schur form), A = Q T Q^H
//   eigenvalues  = diag(T)
//   eigenvectors = Q * (triangular back-substitution on T)
//
// No balancing step is performed; the library's inputs are circuit
// unitaries and similar well-conditioned matrices.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace qc::linalg {

/// Reduces `a` to upper Hessenberg form H with A = Q H Q^H.
/// If `q_out` is non-null it receives the accumulated unitary Q.
Matrix hessenberg(const Matrix& a, Matrix* q_out = nullptr);

struct SchurResult {
  Matrix t;  ///< Upper triangular Schur factor.
  Matrix q;  ///< Unitary with a = q * t * q^H.
  int iterations = 0;  ///< Total QR sweeps performed.
};

/// Complex Schur decomposition by shifted QR iteration with deflation.
/// Throws std::runtime_error if an eigenvalue fails to converge within
/// 40 sweeps (does not happen for normal matrices in practice).
SchurResult schur(const Matrix& a);

struct EigResult {
  std::vector<complex_t> values;  ///< Eigenvalues (Schur diagonal order).
  Matrix vectors;                 ///< Column j is the eigenvector of values[j]; empty if not requested.
  int iterations = 0;
};

/// Full eigendecomposition. With `compute_vectors` the columns of
/// `vectors` satisfy ||A v - lambda v|| = O(eps ||A||).
EigResult eig(const Matrix& a, bool compute_vectors = true);

/// Largest residual ||A v_j - lambda_j v_j||_2 over all j — the
/// validation metric used by the tests.
double eig_residual(const Matrix& a, const EigResult& r);

}  // namespace qc::linalg
