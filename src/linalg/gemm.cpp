#include "linalg/gemm.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bits.hpp"

namespace qc::linalg {
namespace {

// Block sizes tuned for ~32 KiB L1 / 1 MiB L2 with 16-byte elements:
// an (MC x KC) panel of A (~128 KiB) stays L2-resident while a
// (KC x NR) sliver of B streams through L1.
constexpr std::size_t kMC = 64;
constexpr std::size_t kKC = 64;
constexpr std::size_t kNC = 256;

// C[i0:i1, j0:j1] += A[i0:i1, k0:k1] * B[k0:k1, j0:j1], serial micro-loop.
// Loop order i-k-j makes the innermost loop a contiguous axpy over a row
// of C, which the compiler vectorizes well for complex<double>.
void micro_block(const Matrix& a, const Matrix& b, Matrix& c, std::size_t i0, std::size_t i1,
                 std::size_t k0, std::size_t k1, std::size_t j0, std::size_t j1) {
  for (std::size_t i = i0; i < i1; ++i) {
    complex_t* ci = &c(i, 0);
    for (std::size_t k = k0; k < k1; ++k) {
      const complex_t aik = a(i, k);
      if (aik == complex_t{}) continue;
      const complex_t* bk = &b(k, 0);
      for (std::size_t j = j0; j < j1; ++j) ci[j] += aik * bk[j];
    }
  }
}

void check_shapes(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("gemm: inner dimensions differ");
}

// Adds the quadrant view arithmetic used by Strassen: copies in/out of
// contiguous submatrices.
Matrix quadrant(const Matrix& m, std::size_t qi, std::size_t qj, std::size_t h) {
  Matrix r(h, h);
  for (std::size_t i = 0; i < h; ++i)
    for (std::size_t j = 0; j < h; ++j) r(i, j) = m(qi * h + i, qj * h + j);
  return r;
}

void add_into_quadrant(Matrix& m, const Matrix& q, std::size_t qi, std::size_t qj,
                       std::size_t h) {
  for (std::size_t i = 0; i < h; ++i)
    for (std::size_t j = 0; j < h; ++j) m(qi * h + i, qj * h + j) += q(i, j);
}

}  // namespace

Matrix gemm_naive(const Matrix& a, const Matrix& b) {
  check_shapes(a, b);
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const complex_t aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  return c;
}

void gemm_into(const Matrix& a, const Matrix& b, Matrix& c) {
  check_shapes(a, b);
  if (c.rows() != a.rows() || c.cols() != b.cols())
    throw std::invalid_argument("gemm_into: C has wrong shape");
  std::fill_n(c.data(), c.rows() * c.cols(), complex_t{});

  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  // Parallelize over row blocks: each thread owns disjoint rows of C, so
  // no synchronization or false sharing on the output.
#pragma omp parallel for schedule(dynamic) if (m * n * kk > 1u << 15)
  for (std::size_t i0 = 0; i0 < m; i0 += kMC) {
    const std::size_t i1 = std::min(i0 + kMC, m);
    for (std::size_t k0 = 0; k0 < kk; k0 += kKC) {
      const std::size_t k1 = std::min(k0 + kKC, kk);
      for (std::size_t j0 = 0; j0 < n; j0 += kNC) {
        const std::size_t j1 = std::min(j0 + kNC, n);
        micro_block(a, b, c, i0, i1, k0, k1, j0, j1);
      }
    }
  }
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm_into(a, b, c);
  return c;
}

Matrix strassen(const Matrix& a, const Matrix& b, std::size_t cutoff) {
  check_shapes(a, b);
  const bool square_pow2 = a.square() && b.square() && a.rows() == b.rows() &&
                           bits::is_pow2(a.rows());
  if (!square_pow2) return gemm(a, b);
  const std::size_t n = a.rows();
  if (n <= cutoff) return gemm(a, b);

  const std::size_t h = n / 2;
  const Matrix a11 = quadrant(a, 0, 0, h), a12 = quadrant(a, 0, 1, h);
  const Matrix a21 = quadrant(a, 1, 0, h), a22 = quadrant(a, 1, 1, h);
  const Matrix b11 = quadrant(b, 0, 0, h), b12 = quadrant(b, 0, 1, h);
  const Matrix b21 = quadrant(b, 1, 0, h), b22 = quadrant(b, 1, 1, h);

  // Winograd-ordered Strassen products.
  const Matrix m1 = strassen(a11 + a22, b11 + b22, cutoff);
  const Matrix m2 = strassen(a21 + a22, b11, cutoff);
  const Matrix m3 = strassen(a11, b12 - b22, cutoff);
  const Matrix m4 = strassen(a22, b21 - b11, cutoff);
  const Matrix m5 = strassen(a11 + a12, b22, cutoff);
  const Matrix m6 = strassen(a21 - a11, b11 + b12, cutoff);
  const Matrix m7 = strassen(a12 - a22, b21 + b22, cutoff);

  Matrix c(n, n);
  add_into_quadrant(c, m1 + m4 - m5 + m7, 0, 0, h);
  add_into_quadrant(c, m3 + m5, 0, 1, h);
  add_into_quadrant(c, m2 + m4, 1, 0, h);
  add_into_quadrant(c, m1 - m2 + m3 + m6, 1, 1, h);
  return c;
}

Matrix matrix_power_pow2(const Matrix& a, unsigned k, bool use_strassen) {
  if (!a.square()) throw std::invalid_argument("matrix_power_pow2: non-square");
  Matrix r = a;
  for (unsigned i = 0; i < k; ++i) r = use_strassen ? strassen(r, r) : gemm(r, r);
  return r;
}

Matrix matrix_power(const Matrix& a, std::uint64_t e) {
  if (!a.square()) throw std::invalid_argument("matrix_power: non-square");
  Matrix result = Matrix::identity(a.rows());
  Matrix base = a;
  while (e > 0) {
    if (e & 1) result = gemm(result, base);
    e >>= 1;
    if (e > 0) base = gemm(base, base);
  }
  return result;
}

}  // namespace qc::linalg
