// Complex double-precision matrix-matrix multiplication (zgemm role).
//
// The paper's QPE emulation (§3.3) computes U^(2^i) by repeated squaring
// with MKL zgemm; this module provides the from-scratch equivalent: a
// cache-blocked OpenMP GEMM plus a Strassen variant that realizes the
// O(N^2.81) scaling the paper invokes for the b > 1.8n crossover rule.
#pragma once

#include "linalg/matrix.hpp"

namespace qc::linalg {

/// Reference O(N^3) triple loop — the correctness oracle for the others.
Matrix gemm_naive(const Matrix& a, const Matrix& b);

/// Cache-blocked, OpenMP-parallel C = A*B. Handles arbitrary shapes.
Matrix gemm(const Matrix& a, const Matrix& b);

/// In-place variant writing into a preallocated C (C must be m x n).
/// Computes C = A*B (no accumulation).
void gemm_into(const Matrix& a, const Matrix& b, Matrix& c);

/// Strassen multiplication for square power-of-two matrices, falling back
/// to blocked gemm below `cutoff`. Other shapes delegate to gemm().
Matrix strassen(const Matrix& a, const Matrix& b, std::size_t cutoff = 256);

/// A^(2^k) by repeated squaring (k squarings), the §3.3 shortcut.
/// `use_strassen` selects the kernel per the crossover heuristic.
Matrix matrix_power_pow2(const Matrix& a, unsigned k, bool use_strassen = false);

/// A^e for arbitrary e >= 0 (square-and-multiply).
Matrix matrix_power(const Matrix& a, std::uint64_t e);

}  // namespace qc::linalg
