#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/bits.hpp"

namespace qc::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<complex_t>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.resize(rows_ * cols_);
  std::size_t i = 0;
  for (const auto& row : init) {
    if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    std::copy(row.begin(), row.end(), data_.begin() + static_cast<std::ptrdiff_t>(i * cols_));
    ++i;
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.normal_complex();
  return m;
}

Matrix Matrix::random_unitary(std::size_t n, Rng& rng) {
  // Modified Gram-Schmidt QR of a Gaussian matrix; with the R_ii > 0
  // phase fix this samples the Haar measure (Mezzadri 2007).
  Matrix a = random(n, n, rng);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      complex_t dot{};
      for (std::size_t i = 0; i < n; ++i) dot += std::conj(a(i, k)) * a(i, j);
      for (std::size_t i = 0; i < n; ++i) a(i, j) -= dot * a(i, k);
    }
    double norm = 0;
    for (std::size_t i = 0; i < n; ++i) norm += std::norm(a(i, j));
    norm = std::sqrt(norm);
    if (norm < 1e-300) throw std::runtime_error("random_unitary: degenerate column");
    for (std::size_t i = 0; i < n; ++i) a(i, j) /= norm;
    // Re-orthogonalize once for numerical robustness at larger n.
    for (std::size_t k = 0; k < j; ++k) {
      complex_t dot{};
      for (std::size_t i = 0; i < n; ++i) dot += std::conj(a(i, k)) * a(i, j);
      for (std::size_t i = 0; i < n; ++i) a(i, j) -= dot * a(i, k);
    }
    double norm2 = 0;
    for (std::size_t i = 0; i < n; ++i) norm2 += std::norm(a(i, j));
    norm2 = std::sqrt(norm2);
    for (std::size_t i = 0; i < n; ++i) a(i, j) /= norm2;
  }
  return a;
}

Matrix Matrix::random_hermitian(std::size_t n, Rng& rng) {
  Matrix a = random(n, n, rng);
  Matrix h(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) h(i, j) = 0.5 * (a(i, j) + std::conj(a(j, i)));
  return h;
}

Matrix Matrix::diagonal(std::span<const complex_t> entries) {
  Matrix m(entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) m(i, i) = entries[i];
  return m;
}

Matrix Matrix::dagger() const {
  Matrix r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) r(j, i) = std::conj((*this)(i, j));
  return r;
}

Matrix Matrix::transposed() const {
  Matrix r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) r(j, i) = (*this)(i, j);
  return r;
}

Matrix Matrix::operator+(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix r = *this;
  for (std::size_t k = 0; k < data_.size(); ++k) r.data_[k] += o.data_[k];
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix r = *this;
  for (std::size_t k = 0; k < data_.size(); ++k) r.data_[k] -= o.data_[k];
  return r;
}

Matrix Matrix::operator*(complex_t s) const {
  Matrix r = *this;
  for (auto& v : r.data_) v *= s;
  return r;
}

double Matrix::frobenius_norm() const {
  double sum = 0;
  for (const auto& v : data_) sum += std::norm(v);
  return std::sqrt(sum);
}

double Matrix::max_abs_diff(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  double m = 0;
  for (std::size_t k = 0; k < data_.size(); ++k)
    m = std::max(m, std::abs(data_[k] - o.data_[k]));
  return m;
}

double Matrix::unitarity_error() const {
  assert(square());
  const std::size_t n = rows_;
  double err = 0;
#pragma omp parallel for reduction(max : err) if (n > 64)
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      complex_t dot{};
      for (std::size_t k = 0; k < n; ++k) dot += std::conj((*this)(k, i)) * (*this)(k, j);
      if (i == j) dot -= 1.0;
      err = std::max(err, std::abs(dot));
    }
  }
  return err;
}

double Matrix::hermiticity_error() const {
  assert(square());
  double err = 0;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      err = std::max(err, std::abs((*this)(i, j) - std::conj((*this)(j, i))));
  return err;
}

void Matrix::matvec(std::span<const complex_t> x, std::span<complex_t> y) const {
  assert(x.size() == cols_ && y.size() == rows_);
#pragma omp parallel for if (rows_ * cols_ > 4096)
  for (std::size_t i = 0; i < rows_; ++i) {
    complex_t acc{};
    const complex_t* row_i = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) acc += row_i[j] * x[j];
    y[i] = acc;
  }
}

Matrix embed_operator(const Matrix& u, std::span<const qubit_t> u_qubits,
                      std::span<const qubit_t> into_qubits) {
  const std::size_t k = u_qubits.size();
  const std::size_t m = into_qubits.size();
  if (u.rows() != dim(static_cast<qubit_t>(k)) || !u.square())
    throw std::invalid_argument("embed_operator: matrix dimension != 2^|u_qubits|");
  // Map each u label to its bit position in the target space.
  std::vector<qubit_t> pos(k);
  index_t used = 0;  // bitmask over positions of into_qubits claimed by u
  for (std::size_t i = 0; i < k; ++i) {
    const auto it = std::find(into_qubits.begin(), into_qubits.end(), u_qubits[i]);
    if (it == into_qubits.end())
      throw std::invalid_argument("embed_operator: u_qubits not a subset of into_qubits");
    pos[i] = static_cast<qubit_t>(it - into_qubits.begin());
    used = bits::set(used, pos[i]);
  }
  std::vector<qubit_t> rest;
  for (qubit_t j = 0; j < m; ++j)
    if (!bits::test(used, j)) rest.push_back(j);

  const auto spread = [](index_t bits_in, std::span<const qubit_t> where) {
    index_t out = 0;
    for (std::size_t l = 0; l < where.size(); ++l)
      if (bits::test(bits_in, static_cast<qubit_t>(l))) out = bits::set(out, where[l]);
    return out;
  };

  const index_t block = dim(static_cast<qubit_t>(k));
  Matrix full(dim(static_cast<qubit_t>(m)), dim(static_cast<qubit_t>(m)));
  for (index_t r = 0; r < dim(static_cast<qubit_t>(rest.size())); ++r) {
    const index_t base = spread(r, rest);
    for (index_t uc = 0; uc < block; ++uc) {
      const index_t col = base | spread(uc, pos);
      for (index_t ur = 0; ur < block; ++ur) {
        const complex_t v = u(ur, uc);
        if (v == complex_t{}) continue;
        full(base | spread(ur, pos), col) = v;
      }
    }
  }
  return full;
}

Matrix Matrix::kron(const Matrix& o) const {
  Matrix r(rows_ * o.rows_, cols_ * o.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) {
      const complex_t a = (*this)(i, j);
      if (a == complex_t{}) continue;
      for (std::size_t k = 0; k < o.rows_; ++k)
        for (std::size_t l = 0; l < o.cols_; ++l)
          r(i * o.rows_ + k, j * o.cols_ + l) = a * o(k, l);
    }
  return r;
}

}  // namespace qc::linalg
