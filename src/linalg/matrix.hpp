// Dense row-major complex<double> matrix.
//
// The emulator's quantum-phase-estimation shortcut (paper §3.3) builds a
// dense 2^n x 2^n representation of the circuit unitary and manipulates
// it with GEMM (repeated squaring) or an eigensolver; Matrix is the
// storage type for those paths and for all small-n test oracles.
#pragma once

#include <cassert>
#include <initializer_list>
#include <span>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace qc::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, complex_t{}) {}

  /// Row-major initializer: Matrix{{a,b},{c,d}}.
  Matrix(std::initializer_list<std::initializer_list<complex_t>> init);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  complex_t& operator()(std::size_t i, std::size_t j) noexcept {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const complex_t& operator()(std::size_t i, std::size_t j) const noexcept {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  [[nodiscard]] complex_t* data() noexcept { return data_.data(); }
  [[nodiscard]] const complex_t* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<complex_t> row(std::size_t i) noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const complex_t> row(std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }

  bool operator==(const Matrix&) const = default;

  // --- factories -----------------------------------------------------

  static Matrix identity(std::size_t n);
  static Matrix zero(std::size_t n) { return Matrix(n, n); }

  /// Entries i.i.d. complex standard normal (deterministic from rng).
  static Matrix random(std::size_t rows, std::size_t cols, Rng& rng);

  /// Haar-like random unitary: QR of a random Gaussian matrix with the
  /// phase convention R_ii > 0. Exact unitarity to rounding.
  static Matrix random_unitary(std::size_t n, Rng& rng);

  /// Random Hermitian (A + A^H)/2.
  static Matrix random_hermitian(std::size_t n, Rng& rng);

  /// Diagonal matrix from entries.
  static Matrix diagonal(std::span<const complex_t> entries);

  // --- elementwise / structural ops ----------------------------------

  /// Conjugate transpose.
  [[nodiscard]] Matrix dagger() const;

  /// Plain transpose.
  [[nodiscard]] Matrix transposed() const;

  /// this + other, this - other, scalar product.
  [[nodiscard]] Matrix operator+(const Matrix& o) const;
  [[nodiscard]] Matrix operator-(const Matrix& o) const;
  [[nodiscard]] Matrix operator*(complex_t s) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// max_ij |this_ij - o_ij|.
  [[nodiscard]] double max_abs_diff(const Matrix& o) const;

  /// ||A^H A - I||_max — zero (to rounding) iff unitary.
  [[nodiscard]] double unitarity_error() const;

  /// max_ij |A_ij - conj(A_ji)|.
  [[nodiscard]] double hermiticity_error() const;

  /// Matrix-vector product y = A x (OpenMP over rows).
  void matvec(std::span<const complex_t> x, std::span<complex_t> y) const;

  /// Kronecker product (this ⊗ other) — the operator-construction rule
  /// of the paper's Eq. (3); the test oracle for all gate kernels.
  [[nodiscard]] Matrix kron(const Matrix& o) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  aligned_vector<complex_t> data_;
};

/// Expands a 2^k x 2^k operator over the qubit subset `u_qubits` into a
/// 2^m x 2^m operator over the superset `into_qubits` (identity on the
/// extra qubits). Local bit i of `u` corresponds to label u_qubits[i];
/// local bit j of the result to into_qubits[j]. Every label in
/// `u_qubits` must appear in `into_qubits`. This is the subset-embedding
/// generalization of the paper's Eq. (3) Kronecker construction, used by
/// the gate-fusion pass to widen a block unitary before composing.
[[nodiscard]] Matrix embed_operator(const Matrix& u, std::span<const qubit_t> u_qubits,
                                    std::span<const qubit_t> into_qubits);

}  // namespace qc::linalg
