#include "models/perf_model.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bits.hpp"

namespace qc::models {

MachineParams MachineParams::local(double fft_gflops, double b_mem_gbs, double b_net_gbs) {
  MachineParams m;
  m.fft_gflops = fft_gflops;
  m.b_mem_gbs = b_mem_gbs;
  m.b_net_gbs = b_net_gbs;
  return m;
}

double t_fft_seconds(qubit_t n, int nodes, const MachineParams& m) {
  const double size = std::ldexp(1.0, static_cast<int>(n));
  const double flops_agg = m.fft_gflops * 1e9 * nodes;
  const double compute = 5.0 * size * static_cast<double>(n) / flops_agg;
  // Single node: the three all-to-all transposes are local permutations
  // folded into the compute term; charge network only when distributed.
  if (nodes <= 1) return compute;
  const double bnet_agg = m.b_net_gbs * 1e9 * nodes;
  return compute + 3.0 * 16.0 * size / bnet_agg;
}

double t_qft_seconds(qubit_t n, int nodes, const MachineParams& m) {
  const double size = std::ldexp(1.0, static_cast<int>(n));
  const double bmem_agg = m.b_mem_gbs * 1e9 * nodes;
  const double compute = 4.0 * size * static_cast<double>(n) * static_cast<double>(n) / bmem_agg;
  if (nodes <= 1) return compute;
  const double bnet_agg = m.b_net_gbs * 1e9 * nodes;
  return compute + std::log2(static_cast<double>(nodes)) * 16.0 * size / bnet_agg;
}

std::vector<WeakScalingPoint> fig3_series(qubit_t n_min, qubit_t n_max,
                                          const MachineParams& m) {
  if (n_max < n_min) throw std::invalid_argument("fig3_series: bad range");
  std::vector<WeakScalingPoint> series;
  for (qubit_t n = n_min; n <= n_max; ++n) {
    WeakScalingPoint p;
    p.qubits = n;
    p.nodes = static_cast<int>(bits::bit(n - n_min));
    p.t_simulate = t_qft_seconds(n, p.nodes, m);
    p.t_emulate = t_fft_seconds(n, p.nodes, m);
    series.push_back(p);
  }
  return series;
}

double qpe_simulate_seconds(const QpeCosts& c, unsigned bits) {
  return (std::ldexp(1.0, static_cast<int>(bits)) - 1.0) * c.t_apply_u;
}

double qpe_repeated_squaring_seconds(const QpeCosts& c, unsigned bits) {
  return c.t_construct + static_cast<double>(bits) * c.t_gemm;
}

double qpe_eigendecomposition_seconds(const QpeCosts& c, unsigned bits) {
  (void)bits;  // the one-time diagonalization covers any precision
  return c.t_construct + c.t_eig;
}

namespace {

template <typename F>
unsigned first_crossover(const QpeCosts& c, unsigned max_bits, F&& emu_cost) {
  for (unsigned b = 1; b <= max_bits; ++b)
    if (qpe_simulate_seconds(c, b) >= emu_cost(b)) return b;
  return max_bits + 1;
}

}  // namespace

unsigned crossover_bits_repeated_squaring(const QpeCosts& c, unsigned max_bits) {
  return first_crossover(c, max_bits,
                         [&](unsigned b) { return qpe_repeated_squaring_seconds(c, b); });
}

unsigned crossover_bits_eigendecomposition(const QpeCosts& c, unsigned max_bits) {
  return first_crossover(c, max_bits,
                         [&](unsigned b) { return qpe_eigendecomposition_seconds(c, b); });
}

double asymptotic_crossover_gemm(qubit_t n) { return 2.0 * static_cast<double>(n); }

double asymptotic_crossover_strassen(qubit_t n) {
  return (std::log2(7.0) - 1.0) * static_cast<double>(n);
}

double asymptotic_crossover_eig_coherent(qubit_t n) { return static_cast<double>(n); }

double t_state_pass_seconds(qubit_t n, const MachineParams& m, std::size_t amp_bytes) {
  const double size = std::ldexp(1.0, static_cast<int>(n));
  return 2.0 * static_cast<double>(amp_bytes) * size / (m.b_mem_gbs * 1e9);
}

double t_blocked_execution_seconds(qubit_t n, std::size_t passes, const MachineParams& m,
                                   std::size_t amp_bytes) {
  return static_cast<double>(passes) * t_state_pass_seconds(n, m, amp_bytes);
}

bool remap_profitable(std::size_t ops_made_local, double remap_passes) {
  return static_cast<double>(ops_made_local) - 1.0 > remap_passes;
}

double t_chunk_exchange_seconds(qubit_t local_qubits, const MachineParams& m,
                                std::size_t amp_bytes) {
  const double chunk = std::ldexp(1.0, static_cast<int>(local_qubits));
  return static_cast<double>(amp_bytes) * chunk / (m.b_net_gbs * 1e9);
}

bool global_remap_profitable(std::size_t exchanges_avoided, double remap_exchange_cost) {
  return static_cast<double>(exchanges_avoided) > remap_exchange_cost;
}

std::uint64_t staging_bytes(qubit_t n, std::size_t amp_bytes) {
  return static_cast<std::uint64_t>(amp_bytes) << n;
}

double t_host_staging_seconds(qubit_t n, std::size_t transfers, const MachineParams& m,
                              std::size_t amp_bytes) {
  const double traffic = 2.0 * static_cast<double>(staging_bytes(n, amp_bytes));  // read + write
  return static_cast<double>(transfers) * traffic / (m.b_mem_gbs * 1e9);
}

bool resident_session_profitable(std::size_t engine_ops) { return engine_ops > 1; }

double t_checkpoint_seconds(qubit_t n, const MachineParams& m, std::size_t amp_bytes) {
  return t_host_staging_seconds(n, 1, m, amp_bytes);
}

bool checkpoint_due(double replay_seconds, qubit_t n, const MachineParams& m,
                    double overhead_factor) {
  return replay_seconds > overhead_factor * t_checkpoint_seconds(n, m);
}

}  // namespace qc::models
