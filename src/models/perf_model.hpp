// Analytic performance models from the paper's §3.2 / §3.3.
//
// The paper models distributed FFT (emulated QFT) and gate-level QFT
// simulation on a cluster:
//
//   Eq. 5:  T_FFT(n) = 5 N n / (Eff_FFT * FLOPS_peak) + 3 * 16 N / B_net
//   Eq. 6:  T_QFT(n) = 4 N n^2 / B_mem + log2(P) * 16 N / B_net
//
// with N = 2^n, all bandwidth/flops quantities *aggregate* over the
// P-node partition. These models generate the paper-scale (28-36 qubit,
// up to 256 node) weak-scaling series for Figs. 3 & 4 that exceed this
// machine's memory, clearly labelled "modeled" next to the measured
// scaled-down runs. The same module provides the §3.3 QPE cost models
// and the crossover-precision solvers behind Table 2's lower panel.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace qc::models {

/// Single-node machine characteristics. Aggregate quantities scale
/// linearly with node count in the weak-scaling models.
struct MachineParams {
  double fft_gflops = 20.0;   ///< Achieved node-local FFT rate (Eff*peak), GF/s.
  double b_mem_gbs = 40.0;    ///< Memory bandwidth per node, GB/s.
  double b_net_gbs = 7.0;     ///< Injection bandwidth per node, GB/s (FDR 56 Gb/s).
  double mem_per_node_gb = 32.0;

  /// The Stampede node of the paper's §4.1 (values quoted in §4.3).
  static MachineParams stampede() { return MachineParams{}; }

  /// Parameters calibrated from this machine's measured rates (used to
  /// sanity-check the models against local measurements).
  static MachineParams local(double fft_gflops, double b_mem_gbs, double b_net_gbs);
};

/// Eq. 5: seconds for a distributed FFT of 2^n points on `nodes` nodes.
double t_fft_seconds(qubit_t n, int nodes, const MachineParams& m);

/// Eq. 6: seconds for a gate-level distributed QFT of n qubits.
double t_qft_seconds(qubit_t n, int nodes, const MachineParams& m);

/// One weak-scaling row of Fig. 3: qubits, nodes, both times, speedup.
struct WeakScalingPoint {
  qubit_t qubits = 0;
  int nodes = 1;
  double t_simulate = 0;
  double t_emulate = 0;
  [[nodiscard]] double speedup() const { return t_simulate / t_emulate; }
};

/// The paper's Fig. 3 series: local_qubits per node, scaling n over
/// [n_min, n_max] with nodes = 2^(n - n_min).
std::vector<WeakScalingPoint> fig3_series(qubit_t n_min, qubit_t n_max,
                                          const MachineParams& m);

// --- §3.3 QPE cost models ----------------------------------------------

/// Costs of one n-qubit QPE to b bits, expressed through measured
/// primitive times (the paper's Table 2 columns).
struct QpeCosts {
  double t_apply_u = 0;     ///< One gate-level application of U (2^n state).
  double t_construct = 0;   ///< Dense-U construction.
  double t_gemm = 0;        ///< One dense-U squaring.
  double t_eig = 0;         ///< One eigendecomposition.
};

/// Total simulation time: U applied 2^b - 1 times.
double qpe_simulate_seconds(const QpeCosts& c, unsigned bits);

/// Total repeated-squaring emulation time: construct + b squarings.
double qpe_repeated_squaring_seconds(const QpeCosts& c, unsigned bits);

/// Total eigendecomposition emulation time: construct + one eig.
double qpe_eigendecomposition_seconds(const QpeCosts& c, unsigned bits);

/// Smallest b (bits of precision) at which an emulation strategy beats
/// simulation — the paper's Table 2 lower panel. Returns 0 if emulation
/// already wins at b = 1; `max_bits` caps the search.
unsigned crossover_bits_repeated_squaring(const QpeCosts& c, unsigned max_bits = 64);
unsigned crossover_bits_eigendecomposition(const QpeCosts& c, unsigned max_bits = 64);

/// Asymptotic crossover rules quoted in §3.3 (b >= 2n for GEMM,
/// b > (log2 7 - 1) n ~ 1.8n for Strassen, b > n for coherent QPE with
/// eigendecomposition) — used by the Auto strategy heuristic.
double asymptotic_crossover_gemm(qubit_t n);
double asymptotic_crossover_strassen(qubit_t n);
double asymptotic_crossover_eig_coherent(qubit_t n);

// --- §4 locality cost model (cache-blocked scheduler, src/sched) -------
//
// The §3.2/§4 bandwidth argument at the cache level: every op executed
// un-blocked pays one full read+write memory pass over the state vector
// (the 4N·16/B_mem term of Eq. 6 with the gate count set to 1), while a
// cache-blocked *sweep* pays a single pass for all of its chunk-local
// ops together. Relocating a "high" qubit into the chunk-local low block
// (the cache-level analogue of qHiPSTER's local/global rank exchange)
// is itself one transposition pass now plus a share of the final
// restore pass — so remapping is a pass-count trade the scheduler
// resolves with the helpers below.

/// Seconds for one full read+write memory pass over a 2^n state vector
/// (2 * amp_bytes of DRAM traffic per amplitude; 32 at fp64, 16 at
/// fp32) — the unit cost the cache-blocked scheduler trades in.
double t_state_pass_seconds(qubit_t n, const MachineParams& m,
                            std::size_t amp_bytes = sizeof(complex_t));

/// Predicted seconds for a blocked execution: `passes` full-vector
/// passes (sweeps + remaps + un-blocked ops), bandwidth-bound.
double t_blocked_execution_seconds(qubit_t n, std::size_t passes, const MachineParams& m,
                                   std::size_t amp_bytes = sizeof(complex_t));

/// Remap decision rule: making `ops_made_local` upcoming ops chunk-local
/// saves them each a full pass (they then share ~one sweep pass), at the
/// price of `remap_passes` transposition passes (the remap now plus the
/// eventual restore, default 2). Profitable when saved passes
/// (ops_made_local - 1) strictly exceed the remap passes.
bool remap_profitable(std::size_t ops_made_local, double remap_passes = 2.0);

// --- Eq. 6 communication term (distributed scheduler, sched/dist) ------
//
// Eq. 6 charges every gate on a distributed ("global") qubit one
// pairwise exchange of the rank's whole local chunk: 16 bytes per local
// amplitude across the network, the 16N/B_net term. A global<->local
// qubit exchange pass (one all-to-all chunk permutation) moves the same
// ~16 bytes per amplitude ONCE and then lets an entire run of
// global-qubit gates execute rank-locally — the cluster-level analogue
// of the cache scheduler's remap, with chunk exchanges instead of
// memory passes as the unit cost.

/// Seconds for one pairwise exchange of a rank's full 2^local_qubits
/// chunk (the 16N/B_net term of Eq. 6, N = the chunk's amplitudes).
/// amp_bytes generalizes the paper's 16-byte fp64 amplitude: an fp32
/// state moves 8 bytes per amplitude, halving the exchange term.
double t_chunk_exchange_seconds(qubit_t local_qubits, const MachineParams& m,
                                std::size_t amp_bytes = sizeof(complex_t));

/// Global-remap decision rule, mirroring remap_profitable at cluster
/// level: an exchange pass costs ~`remap_exchange_cost` chunk exchanges
/// (the all-to-all now plus its share of the eventual restore) and saves
/// one per-gate exchange for each of `exchanges_avoided` upcoming
/// global-qubit gates it relocates into the local block. Profitable when
/// the saving strictly exceeds the cost.
bool global_remap_profitable(std::size_t exchanges_avoided,
                             double remap_exchange_cost = 2.0);

// --- host<->ranks staging term (resident sessions, engine/backend) -----
//
// Before the distributed state can live on the ranks at all, the engine
// must stage the host state vector into the per-rank chunks (scatter)
// and eventually back (gather). One staging copies every amplitude once
// — 16 bytes each — through host memory. A backend that re-opens the
// cluster per engine-routed op pays TWO stagings per op; a resident
// session pays two per Engine::run. These helpers price that
// difference, and DistBackend reports the actual bytes moved in the
// per-op engine trace so the win is measurable, not anecdotal.

/// Bytes one host<->ranks staging of a 2^n state moves (amp_bytes per
/// amplitude: each stored complex copied exactly once; 16 at fp64, 8
/// at fp32).
std::uint64_t staging_bytes(qubit_t n, std::size_t amp_bytes = sizeof(complex_t));

/// Seconds for `transfers` stagings of a 2^n state. The copies are
/// host-local, so they are charged to memory bandwidth (read + write:
/// 2 * amp_bytes of traffic per amplitude per staging), not the network.
double t_host_staging_seconds(qubit_t n, std::size_t transfers, const MachineParams& m,
                              std::size_t amp_bytes = sizeof(complex_t));

/// Resident-session decision rule: a resident distributed state pays 2
/// stagings per Engine::run instead of 2 per engine-routed op —
/// profitable as soon as the run has more than one op.
bool resident_session_profitable(std::size_t engine_ops);

// --- checkpoint policy (failure domain, engine/backend) ----------------
//
// A segment-boundary checkpoint copies every rank's chunk into host
// buffers — one staging's worth of memory traffic — and caps what a
// retryable fault costs at "replay the segments since the checkpoint".
// The auto policy trades those two quantities: checkpoint when the
// predicted replay cost of the uncheckpointed segment log has grown
// past a small multiple of the checkpoint's own cost. With cheap
// segments the log runs long (faults are cheap to replay anyway); with
// expensive segments checkpoints come often (each fault would replay a
// lot).

/// Seconds one checkpoint costs: a host staging of the full 2^n state
/// (every rank's chunk copied once through host memory).
double t_checkpoint_seconds(qubit_t n, const MachineParams& m,
                            std::size_t amp_bytes = sizeof(complex_t));

/// Auto checkpoint decision: true when `replay_seconds` — the predicted
/// cost of re-running everything since the last checkpoint — exceeds
/// `overhead_factor` checkpoints of a 2^n state.
bool checkpoint_due(double replay_seconds, qubit_t n, const MachineParams& m,
                    double overhead_factor = 4.0);

}  // namespace qc::models
