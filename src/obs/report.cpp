#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "sim/kernels_dispatch.hpp"

namespace qc::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      (out += '\\') += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string num(double v) {
  // JSON has no NaN/Inf; clamp to null-ish zero.
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

DispatchInfo dispatch_info(const TraceData& data) {
  DispatchInfo info;
  for (const SpanEvent& s : data.spans) {
    if (s.name != "engine.dispatch") continue;
    info.found = true;
    info.isa = sim::kernels::isa_name(
        static_cast<sim::kernels::SimdIsa>(static_cast<int>(s.arg("isa", 0))));
    info.fp_bits = static_cast<int>(s.arg("fp_bits", 64));
  }
  return info;
}

std::string chrome_trace_json(const TraceData& data) {
  std::string out = "{\"traceEvents\":[\n";
  // Thread-name metadata: one lane per Chrome tid.
  std::set<int> lanes;
  for (const SpanEvent& s : data.spans) lanes.insert(s.lane);
  bool first = true;
  for (const int lane : lanes) {
    if (!first) out += ",\n";
    first = false;
    const std::string name = lane == 0 ? "driver" : "rank " + std::to_string(lane - 1);
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(lane) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + name + "\"}}";
  }
  for (const SpanEvent& s : data.spans) {
    if (!first) out += ",\n";
    first = false;
    // Everything renders as an "X" complete event — zero-duration
    // decision markers show as slivers, which keeps the schema uniform.
    out += "{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(s.lane) + ",\"name\":\"" +
           json_escape(s.name) + "\",\"ts\":" + num(s.start_s * 1e6) +
           ",\"dur\":" + num(s.dur_s * 1e6);
    out += ",\"args\":{\"id\":" + std::to_string(s.id) +
           ",\"parent\":" + std::to_string(s.parent);
    for (const SpanArg& a : s.args)
      out += ",\"" + json_escape(a.key) + "\":" + num(a.value);
    out += "}}";
  }
  for (const auto& [name, v] : data.counters) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"name\":\"" + json_escape(name) +
           "\",\"ts\":0,\"args\":{\"value\":" + num(v) + "}}";
  }
  out += "\n]}\n";
  return out;
}

std::vector<SpanStats> span_stats(const TraceData& data) {
  std::map<std::string, SpanStats> by_name;
  for (const SpanEvent& s : data.spans) {
    SpanStats& st = by_name[s.name];
    st.name = s.name;
    ++st.count;
    st.total_s += s.dur_s;
    st.bytes += s.arg("bytes", 0);
    if (s.has_arg("pred_s")) {
      st.has_pred = true;
      st.pred_s += s.arg("pred_s", 0);
    }
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, st] : by_name) out.push_back(std::move(st));
  return out;
}

std::vector<LaneStats> lane_stats(const TraceData& data) {
  std::map<int, LaneStats> by_lane;
  for (const SpanEvent& s : data.spans) {
    if (s.lane == 0) continue;
    LaneStats& ls = by_lane[s.lane];
    ls.lane = s.lane;
    if (s.name == "cluster.job") ls.exec_s += s.dur_s;
    if (s.name == "cluster.barrier") ls.barrier_s += s.dur_s;
    if (s.name == "cluster.park") ls.park_s += s.dur_s;
  }
  std::vector<LaneStats> out;
  out.reserve(by_lane.size());
  for (auto& [lane, ls] : by_lane) out.push_back(ls);
  return out;
}

double load_imbalance(const TraceData& data) {
  const std::vector<LaneStats> lanes = lane_stats(data);
  if (lanes.size() < 2) return 0;
  double max = 0, sum = 0;
  for (const LaneStats& ls : lanes) {
    max = std::max(max, ls.exec_s);
    sum += ls.exec_s;
  }
  const double mean = sum / static_cast<double>(lanes.size());
  return mean > 0 ? max / mean - 1.0 : 0;
}

std::string metrics_json(const TraceData& data) {
  std::string out = "{\n";
  if (const DispatchInfo di = dispatch_info(data); di.found)
    out += "  \"dispatch\": {\"isa\": \"" + json_escape(di.isa) +
           "\", \"fp_bits\": " + std::to_string(di.fp_bits) + "},\n";
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : data.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + num(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"spans\": [";
  first = true;
  for (const SpanStats& st : span_stats(data)) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(st.name) +
           "\", \"count\": " + std::to_string(st.count) + ", \"total_s\": " + num(st.total_s);
    if (st.has_pred) out += ", \"pred_s\": " + num(st.pred_s);
    if (st.bytes > 0) out += ", \"bytes\": " + num(st.bytes);
    out += "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"lanes\": [";
  first = true;
  for (const LaneStats& ls : lane_stats(data)) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rank\": " + std::to_string(ls.lane - 1) + ", \"exec_s\": " + num(ls.exec_s) +
           ", \"barrier_s\": " + num(ls.barrier_s) + ", \"park_s\": " + num(ls.park_s) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"imbalance\": " + num(load_imbalance(data)) + "\n}";
  return out;
}

Table summary_table(const TraceData& data) {
  Table table({"span", "count", "total [s]", "mean [s]", "pred [s]", "drift", "MB"});
  // Lead with the dispatch decision the run executed under, so every
  // printed summary says which kernels and precision made the numbers.
  if (const DispatchInfo di = dispatch_info(data); di.found)
    table.add_row({"[dispatch isa=" + di.isa + " fp" + std::to_string(di.fp_bits) + "]", "-",
                   "-", "-", "-", "-", "-"});
  for (const SpanStats& st : span_stats(data)) {
    table.add_row({st.name, std::to_string(st.count), sci(st.total_s),
                   sci(st.total_s / static_cast<double>(st.count)),
                   st.has_pred ? sci(st.pred_s) : "-",
                   st.has_pred && st.pred_s > 0 ? fixed(st.total_s / st.pred_s, 2) + "x" : "-",
                   st.bytes > 0 ? fixed(st.bytes / 1e6, 1) : "-"});
  }
  return table;
}

std::vector<ModelRow> model_report(const TraceData& data) {
  std::vector<ModelRow> rows;
  for (const SpanStats& st : span_stats(data)) {
    if (!st.has_pred) continue;
    ModelRow row;
    row.name = st.name;
    row.count = st.count;
    row.measured_s = st.total_s;
    row.predicted_s = st.pred_s;
    row.bytes = static_cast<std::uint64_t>(std::llround(st.bytes));
    rows.push_back(std::move(row));
  }
  return rows;
}

Table model_report_table(const std::vector<ModelRow>& rows) {
  Table table({"span", "count", "measured [s]", "predicted [s]", "drift", "MB"});
  for (const ModelRow& r : rows)
    table.add_row({r.name, std::to_string(r.count), sci(r.measured_s), sci(r.predicted_s),
                   r.predicted_s > 0 ? fixed(r.drift(), 2) + "x" : "-",
                   fixed(static_cast<double>(r.bytes) / 1e6, 1)});
  return table;
}

Table model_report_table(const std::vector<ModelRow>& rows, const TraceData& data) {
  Table table = model_report_table(rows);
  if (const DispatchInfo di = dispatch_info(data); di.found)
    table.add_row({"[dispatch isa=" + di.isa + " fp" + std::to_string(di.fp_bits) + "]", "-",
                   "-", "-", "-", "-"});
  return table;
}

}  // namespace qc::obs
