// Exporters over one collected TraceData — the read side of obs.
//
//  * chrome_trace_json(): Chrome trace_event format ("X" complete
//    events, ts/dur in microseconds, tid = lane) plus thread_name
//    metadata per lane — open in about:tracing or Perfetto to see the
//    per-rank timelines with engine op -> job -> plan -> sweep/exchange
//    nesting.
//  * metrics_json(): flat machine-readable metrics — counters, per-span-
//    name aggregates (count/total/predicted/bytes), per-lane
//    execute/barrier/park totals and the load-imbalance metric benches
//    embed under their --metrics flag.
//  * summary_table(): the same aggregates as a human-readable
//    common/Table.
//  * model_report(): predicted-vs-measured rows for every span family
//    that carries a "pred_s" arg (sweep memory time from
//    models::t_state_pass_seconds, Eq. 6 chunk-exchange time from
//    models::t_chunk_exchange_seconds, host staging) — the drift check
//    the perf model never had.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/trace.hpp"

namespace qc::obs {

/// Chrome trace_event JSON (the whole {"traceEvents": [...]} object).
[[nodiscard]] std::string chrome_trace_json(const TraceData& data);

/// Aggregate over all spans sharing one name.
struct SpanStats {
  std::string name;
  std::size_t count = 0;
  double total_s = 0;
  double pred_s = 0;        ///< Sum of "pred_s" args (0 when never set).
  double bytes = 0;         ///< Sum of "bytes" args.
  bool has_pred = false;    ///< At least one span carried "pred_s".
};

/// Per-lane breakdown of a cluster run, from the cluster.job /
/// cluster.barrier / cluster.park spans.
struct LaneStats {
  int lane = 0;
  double exec_s = 0;     ///< Time inside submitted jobs.
  double barrier_s = 0;  ///< Time blocked in Comm::barrier.
  double park_s = 0;     ///< Time parked between jobs.
};

/// The kernel dispatch decision an engine run recorded (the
/// "engine.dispatch" instant: runtime-selected SIMD tier + amplitude
/// precision). `found` is false for traces without one (non-engine
/// tracing); the last recorded decision wins when a trace holds several
/// runs.
struct DispatchInfo {
  bool found = false;
  std::string isa;  ///< "scalar" / "avx2" / "avx512".
  int fp_bits = 64;
};

/// Decodes the last "engine.dispatch" instant of the trace.
[[nodiscard]] DispatchInfo dispatch_info(const TraceData& data);

/// Span aggregates by name, alphabetical.
[[nodiscard]] std::vector<SpanStats> span_stats(const TraceData& data);

/// Lane breakdown (lanes > 0 only — the cluster ranks), ascending lane.
[[nodiscard]] std::vector<LaneStats> lane_stats(const TraceData& data);

/// Load imbalance of the rank lanes: max(exec_s)/mean(exec_s) - 1 over
/// the lanes of lane_stats (0 when balanced, 0 with < 2 lanes).
[[nodiscard]] double load_imbalance(const TraceData& data);

/// Flat metrics JSON object: {"counters": {...}, "spans": [...],
/// "lanes": [...], "imbalance": x}. Embeddable (no trailing newline).
[[nodiscard]] std::string metrics_json(const TraceData& data);

/// Human-readable per-span-name summary (count, total, mean, predicted,
/// drift, MB moved).
[[nodiscard]] Table summary_table(const TraceData& data);

/// One predicted-vs-measured row of the model-validation report.
struct ModelRow {
  std::string name;        ///< Span family ("sched.sweep", "dist.exchange", ...).
  std::size_t count = 0;   ///< Spans measured.
  double measured_s = 0;   ///< Wall-clock sum.
  double predicted_s = 0;  ///< models::perf_model sum at instrumentation time.
  std::uint64_t bytes = 0; ///< Bytes the spans attributed (0 for memory rows).
  /// measured / predicted — the drift factor (>1: model optimistic).
  [[nodiscard]] double drift() const {
    return predicted_s > 0 ? measured_s / predicted_s : 0;
  }
};

/// Rows for every span family carrying a "pred_s" arg, alphabetical.
/// The bytes column sums exactly the "bytes" args of those spans, so a
/// fully traced dist run satisfies
///   sum(row.bytes) == Result.net_bytes
/// (every site that bumps DistStateVector::bytes_communicated is also a
/// pred_s span) — asserted by the engine test suite.
[[nodiscard]] std::vector<ModelRow> model_report(const TraceData& data);

/// The model report as a printable table. The overload taking the
/// trace appends the run's dispatch decision (isa + precision) as a
/// trailing row, so a drift report says which kernels produced it.
[[nodiscard]] Table model_report_table(const std::vector<ModelRow>& rows);
[[nodiscard]] Table model_report_table(const std::vector<ModelRow>& rows,
                                       const TraceData& data);

}  // namespace qc::obs
