#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace qc::obs {

namespace {

using clock = std::chrono::steady_clock;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now().time_since_epoch())
          .count());
}

std::atomic<Tracer*> g_current{nullptr};
std::atomic<std::uint64_t> g_generation{0};
std::atomic<std::uint64_t> g_next_span{1};

thread_local int t_lane = 0;

/// Per-thread recording state, re-bound whenever the current tracer
/// changes (generation check) so a stale buffer from a destroyed tracer
/// is never written through.
struct Tls {
  std::uint64_t generation = 0;
  void* log = nullptr;                ///< Tracer::ThreadLog of that generation.
  std::vector<span_id> open;          ///< Innermost-last open span stack.
};
thread_local Tls t_tls;

}  // namespace

double SpanEvent::arg(std::string_view key, double fallback) const {
  for (const SpanArg& a : args)
    if (a.key == key) return a.value;
  return fallback;
}

bool SpanEvent::has_arg(std::string_view key) const {
  for (const SpanArg& a : args)
    if (a.key == key) return true;
  return false;
}

std::vector<std::size_t> TraceData::roots() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < spans.size(); ++i)
    if (spans[i].parent == 0) out.push_back(i);
  return out;
}

std::vector<std::size_t> TraceData::children_of(span_id id) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < spans.size(); ++i)
    if (spans[i].parent == id) out.push_back(i);
  return out;
}

double TraceData::sum_arg(std::string_view key) const {
  double total = 0;
  for (const SpanEvent& s : spans) total += s.arg(key, 0);
  return total;
}

/// One thread's buffer: written only by its owning thread, read by
/// collect(). The mutex is uncontended except at collection time.
struct Tracer::ThreadLog {
  std::mutex mutex;
  std::vector<SpanEvent> events;
  std::map<std::string, double> counters;
};

Tracer::Tracer()
    : generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1),
      epoch_ns_(now_ns()) {}

Tracer::~Tracer() {
  // Never leave a dangling current pointer behind.
  Tracer* self = this;
  g_current.compare_exchange_strong(self, nullptr, std::memory_order_release);
}

Tracer* Tracer::current() noexcept {
  // Acquire pairs with set_current's release store: a worker thread that
  // observes the pointer must also observe the Tracer's constructed
  // state. Free on x86, and the difference between a clean TSan run and
  // a genuine publish race.
  return g_current.load(std::memory_order_acquire);
}

void Tracer::set_current(Tracer* t) noexcept {
  g_current.store(t, std::memory_order_release);
}

double Tracer::now() const noexcept {
  return static_cast<double>(now_ns() - epoch_ns_) * 1e-9;
}

span_id Tracer::next_id() noexcept {
  return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

Tracer::ThreadLog& Tracer::log_for_this_thread() const {
  if (t_tls.generation != generation_) {
    auto log = std::make_unique<ThreadLog>();
    ThreadLog* raw = log.get();
    {
      std::lock_guard lock(logs_mutex_);
      logs_.push_back(std::move(log));
    }
    t_tls.generation = generation_;
    t_tls.log = raw;
    t_tls.open.clear();
  }
  return *static_cast<ThreadLog*>(t_tls.log);
}

void Tracer::record(SpanEvent ev) {
  ThreadLog& log = log_for_this_thread();
  std::lock_guard lock(log.mutex);
  log.events.push_back(std::move(ev));
}

void Tracer::add_counter(std::string_view name, double v) {
  ThreadLog& log = log_for_this_thread();
  std::lock_guard lock(log.mutex);
  log.counters[std::string(name)] += v;
}

TraceData Tracer::collect() const {
  TraceData data;
  std::lock_guard lock(logs_mutex_);
  for (const auto& log : logs_) {
    std::lock_guard ll(log->mutex);
    data.spans.insert(data.spans.end(), log->events.begin(), log->events.end());
    for (const auto& [name, v] : log->counters) data.counters[name] += v;
  }
  std::stable_sort(data.spans.begin(), data.spans.end(),
                   [](const SpanEvent& a, const SpanEvent& b) { return a.start_s < b.start_s; });
  return data;
}

void set_thread_lane(int lane) noexcept { t_lane = lane; }
int thread_lane() noexcept { return t_lane; }

span_id current_span() noexcept {
  if (Tracer::current() == nullptr || t_tls.open.empty()) return 0;
  return t_tls.open.back();
}

Span::Span(std::string_view name, span_id parent_override) {
  Tracer* t = Tracer::current();
  if (t == nullptr) return;
  tracer_ = t;
  t->log_for_this_thread();  // binds tls to this tracer's generation
  parent_ = parent_override != 0 ? parent_override
                                 : (t_tls.open.empty() ? 0 : t_tls.open.back());
  id_ = Tracer::next_id();
  name_ = name;
  start_s_ = t->now();
  t_tls.open.push_back(id_);
}

void Span::arg(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  args_.push_back({std::string(key), value});
}

void Span::end() {
  if (tracer_ == nullptr) return;
  // A mismatched stack means end() ran on a different thread than the
  // constructor — not supported; spans are thread-affine by design.
  if (!t_tls.open.empty() && t_tls.open.back() == id_) t_tls.open.pop_back();
  SpanEvent ev;
  ev.id = id_;
  ev.parent = parent_;
  ev.name = std::move(name_);
  ev.start_s = start_s_;
  ev.dur_s = tracer_->now() - start_s_;
  ev.lane = t_lane;
  ev.args = std::move(args_);
  tracer_->record(std::move(ev));
  tracer_ = nullptr;
}

Span::~Span() { end(); }

void instant(std::string_view name, std::initializer_list<SpanArg> args) {
  Tracer* t = Tracer::current();
  if (t == nullptr) return;
  SpanEvent ev;
  ev.id = Tracer::next_id();
  ev.parent = t_tls.open.empty() ? 0 : t_tls.open.back();
  ev.name = name;
  ev.start_s = t->now();
  ev.dur_s = 0;
  ev.lane = t_lane;
  ev.args = args;
  t->record(std::move(ev));
}

void emit_interval(std::string_view name, double seconds_ago_start, double seconds_ago_end,
                   std::initializer_list<SpanArg> args) {
  Tracer* t = Tracer::current();
  if (t == nullptr) return;
  const double now = t->now();
  // Clamp to the tracer's lifetime: the caller may have started timing
  // before this tracer existed.
  const double start = std::max(0.0, now - seconds_ago_start);
  const double end = std::max(start, now - seconds_ago_end);
  SpanEvent ev;
  ev.id = Tracer::next_id();
  ev.parent = 0;
  ev.name = name;
  ev.start_s = start;
  ev.dur_s = end - start;
  ev.lane = t_lane;
  ev.args = args;
  t->record(std::move(ev));
}

void counter_add(std::string_view name, double v) {
  Tracer* t = Tracer::current();
  if (t == nullptr) return;
  t->add_counter(name, v);
}

}  // namespace qc::obs
