// Structured tracing + metrics — the observability substrate every
// execution layer emits into.
//
// The paper's analysis attributes wall-clock to memory sweeps and Eq. 6
// communication; this module makes that attribution first-class instead
// of a flat per-op timer. A Tracer collects *spans* (named, nested
// intervals with numeric args) and *counters* from any thread into
// per-thread buffers; exporters (obs/report.hpp) turn one collected
// TraceData into a Chrome trace_event JSON (open in about:tracing /
// Perfetto), a flat metrics JSON, a summary table, and the
// predicted-vs-measured model-drift report.
//
// Cost contract:
//  * disabled (no current tracer — the default): constructing a Span or
//    bumping a counter is one acquire atomic load (free on x86) and a
//    branch, so the instrumentation can stay compiled into every hot
//    path;
//  * enabled: one uncontended mutex lock per finished span / counter
//    bump into the calling thread's own buffer (threads never share a
//    buffer, so rank threads trace concurrently without contention).
//
// Lanes: every event carries a small integer lane for the Chrome trace's
// tid axis. Lane 0 is the driver thread; cluster rank r records into
// lane r + 1 (ClusterSession::worker calls set_thread_lane), which is
// what gives the trace its per-rank timelines.
//
// Cross-thread nesting: a span's parent defaults to the innermost open
// span *on the same thread*; ClusterSession::submit captures the
// submitting thread's current span id and parents each rank's job span
// under it, so the collected tree nests engine op -> per-rank job ->
// dist plan -> sweep/exchange across the thread boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qc::obs {

using span_id = std::uint64_t;  ///< 0 = "no span".

/// One numeric attribute of a span (all args are doubles: byte counts
/// and predicted seconds both fit, and it keeps the export trivial).
struct SpanArg {
  std::string key;
  double value = 0;
};

/// One finished span, in tracer-relative seconds.
struct SpanEvent {
  span_id id = 0;
  span_id parent = 0;  ///< 0 = root.
  std::string name;
  double start_s = 0;
  double dur_s = 0;
  int lane = 0;
  std::vector<SpanArg> args;

  /// First arg named `key`, or `fallback`.
  [[nodiscard]] double arg(std::string_view key, double fallback = 0) const;
  [[nodiscard]] bool has_arg(std::string_view key) const;
};

/// Everything a Tracer collected, ready for the exporters: spans sorted
/// by start time plus counters summed over all threads.
struct TraceData {
  std::vector<SpanEvent> spans;
  std::map<std::string, double> counters;

  /// Indices of the root spans (parent == 0), in start order.
  [[nodiscard]] std::vector<std::size_t> roots() const;
  /// Indices of the children of span `id`, in start order.
  [[nodiscard]] std::vector<std::size_t> children_of(span_id id) const;
  /// Sum of `key` args over every span (e.g. "bytes" over the exchange
  /// spans — the number the model report checks against Result.net_bytes).
  [[nodiscard]] double sum_arg(std::string_view key) const;
};

/// Collects spans and counters from every thread while installed as the
/// process-wide current tracer. Install with ScopedTracer (or
/// set_current); collect() after the traced region completed.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide current tracer (nullptr = tracing disabled). One
  /// acquire atomic load (free on x86) — the only cost instrumentation
  /// pays when tracing is off.
  [[nodiscard]] static Tracer* current() noexcept;

  /// Installs/clears the current tracer. Passing nullptr disables
  /// tracing. Not reentrant with concurrent traced regions; the engine
  /// saves and restores around a run (see ScopedTracer).
  static void set_current(Tracer* t) noexcept;

  /// Seconds since this tracer's construction (steady clock).
  [[nodiscard]] double now() const noexcept;

  /// Snapshot of everything recorded so far (spans sorted by start
  /// time, per-thread counters merged). Callable while other threads
  /// are *parked* — any span still open is simply absent.
  [[nodiscard]] TraceData collect() const;

  // -- recording interface (used by Span / counter helpers) -------------

  /// Appends one finished event to the calling thread's buffer.
  void record(SpanEvent ev);

  /// Adds `v` to counter `name` in the calling thread's buffer.
  void add_counter(std::string_view name, double v);

  /// Globally unique span id.
  [[nodiscard]] static span_id next_id() noexcept;

 private:
  friend class Span;  // binds the thread's tls in its constructor

  struct ThreadLog;
  ThreadLog& log_for_this_thread() const;

  std::uint64_t generation_;
  std::uint64_t epoch_ns_;  ///< steady_clock at construction.
  mutable std::mutex logs_mutex_;
  mutable std::vector<std::unique_ptr<ThreadLog>> logs_;
};

/// True when a tracer is installed — use to skip building expensive
/// span names/args when tracing is off.
[[nodiscard]] inline bool enabled() noexcept { return Tracer::current() != nullptr; }

/// Lane of the calling thread (Chrome tid). 0 = driver; cluster ranks
/// set r + 1 for their worker thread's lifetime.
void set_thread_lane(int lane) noexcept;
[[nodiscard]] int thread_lane() noexcept;

/// Innermost open span on the calling thread (0 if none) — capture on a
/// submitting thread to parent work running on another thread.
[[nodiscard]] span_id current_span() noexcept;

/// RAII span: records [construction, destruction) under the current
/// tracer. A no-op (one atomic load) when tracing is disabled.
class Span {
 public:
  /// `parent_override` != 0 parents this span explicitly (cross-thread
  /// nesting); default nests under the thread's innermost open span.
  explicit Span(std::string_view name, span_id parent_override = 0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric attribute (no-op when disabled).
  void arg(std::string_view key, double value);

  /// Closes the span now instead of at scope exit.
  void end();

  /// Id of this span (0 when tracing is disabled).
  [[nodiscard]] span_id id() const noexcept { return id_; }

 private:
  Tracer* tracer_ = nullptr;  ///< Null when disabled at construction.
  span_id id_ = 0;
  span_id parent_ = 0;
  double start_s_ = 0;
  std::string name_;
  std::vector<SpanArg> args_;
};

/// Records a zero-duration marker event (e.g. a scheduler cost-model
/// decision with its inputs as args). No-op when disabled.
void instant(std::string_view name, std::initializer_list<SpanArg> args = {});

/// Records a completed interval retroactively from caller-measured
/// times (seconds before now). Used for park time: the wait is measured
/// unconditionally with a cheap timer and only *emitted* once a tracer
/// is known to be installed, so no span is ever left open across a
/// tracer's destruction. The interval is clamped to the tracer's epoch.
void emit_interval(std::string_view name, double seconds_ago_start, double seconds_ago_end,
                   std::initializer_list<SpanArg> args = {});

/// Adds `v` to counter `name` (no-op when disabled).
void counter_add(std::string_view name, double v);

/// Installs `t` as current for the scope, restoring the previous
/// current tracer on exit.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* t) : prev_(Tracer::current()) { Tracer::set_current(t); }
  ~ScopedTracer() { Tracer::set_current(prev_); }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* prev_;
};

}  // namespace qc::obs
