#include "revcirc/arith.hpp"

#include <stdexcept>

namespace qc::revcirc {

using circuit::Circuit;

Reg make_reg(qubit_t offset, qubit_t width) {
  Reg r(width);
  for (qubit_t i = 0; i < width; ++i) r[i] = offset + i;
  return r;
}

namespace {

/// CNOT(src, dst), optionally promoted to Toffoli(control, src, dst).
/// Only gates that *write into the output register* take the control —
/// the carry chain self-uncomputes, so conditioning it is unnecessary
/// and would push gates to three controls.
void cx(Circuit& c, qubit_t src, qubit_t dst, std::optional<qubit_t> control) {
  if (control) {
    c.toffoli(*control, src, dst);
  } else {
    c.cnot(src, dst);
  }
}

// Cuccaro MAJ block on (carry_in, b_i, a_i).
void maj(Circuit& c, qubit_t ci, qubit_t bi, qubit_t ai, std::optional<qubit_t> control) {
  cx(c, ai, bi, control);  // b-writing gate: controlled
  c.cnot(ai, ci);
  c.toffoli(ci, bi, ai);
}

// Cuccaro UMA block (2-CNOT variant), inverse bookkeeping of MAJ.
void uma(Circuit& c, qubit_t ci, qubit_t bi, qubit_t ai, std::optional<qubit_t> control) {
  c.toffoli(ci, bi, ai);
  c.cnot(ai, ci);
  cx(c, ci, bi, control);  // b-writing gate: controlled
}

}  // namespace

void cuccaro_add(Circuit& c, const Reg& a, const Reg& b, qubit_t carry_anc,
                 std::optional<qubit_t> carry_out, std::optional<qubit_t> control) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("cuccaro_add: register widths must match and be nonzero");
  const std::size_t w = a.size();

  maj(c, carry_anc, b[0], a[0], control);
  for (std::size_t i = 1; i < w; ++i) maj(c, a[i - 1], b[i], a[i], control);
  if (carry_out) cx(c, a[w - 1], *carry_out, control);
  for (std::size_t i = w; i-- > 1;) uma(c, a[i - 1], b[i], a[i], control);
  uma(c, carry_anc, b[0], a[0], control);
}

void cuccaro_sub(Circuit& c, const Reg& a, const Reg& b, qubit_t carry_anc,
                 std::optional<qubit_t> carry_out, std::optional<qubit_t> control) {
  // Inverse network: build the adder into a scratch circuit of the same
  // width and append its inverse (all constituent gates are self-inverse,
  // so this reverses the order only).
  Circuit scratch(c.qubits());
  cuccaro_add(scratch, a, b, carry_anc, carry_out, control);
  c.compose(scratch.inverse());
}

void multiply_accumulate(Circuit& c, const Reg& a, const Reg& b, const Reg& c_reg,
                         qubit_t carry_anc) {
  const std::size_t m = a.size();
  if (b.size() != m || c_reg.size() != m)
    throw std::invalid_argument("multiply_accumulate: widths must match");
  // c += a_i ? (b << i) : 0, for each i — mod 2^m, so the shifted
  // addition only involves the top m-i bits of c and the low m-i of b.
  for (std::size_t i = 0; i < m; ++i) {
    Reg b_lo(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(m - i));
    Reg c_hi(c_reg.begin() + static_cast<std::ptrdiff_t>(i), c_reg.end());
    cuccaro_add(c, b_lo, c_hi, carry_anc, std::nullopt, a[i]);
  }
}

void divide(Circuit& c, const Reg& y, const Reg& b, qubit_t b_pad, const Reg& q,
            qubit_t borrow, qubit_t carry_anc) {
  const std::size_t m = b.size();
  if (y.size() != 2 * m + 1 || q.size() != m)
    throw std::invalid_argument("divide: y needs 2m+1 qubits and q needs m");
  // Zero-extended divisor (m+1 bits) so the trial subtraction window can
  // hold 2R + a_i < 2^{m+1}.
  Reg b_ext = b;
  b_ext.push_back(b_pad);

  for (std::size_t i = m; i-- > 0;) {
    // Window w_i = y[i .. i+m+1) holds 2R + a_i by the restoring-division
    // invariant (R = previous partial remainder, R < b).
    Reg window(y.begin() + static_cast<std::ptrdiff_t>(i),
               y.begin() + static_cast<std::ptrdiff_t>(i + m + 1));
    // Trial subtraction; borrow <- 1 iff window < b.
    cuccaro_sub(c, b_ext, window, carry_anc, borrow);
    // Restore on failure (borrow == 1).
    cuccaro_add(c, b_ext, window, carry_anc, std::nullopt, borrow);
    // q_i = NOT borrow, then clear borrow using q_i.
    c.x(q[i]);
    c.cnot(borrow, q[i]);
    c.x(borrow);
    c.cnot(q[i], borrow);
  }
}

MulLayout MulLayout::make(qubit_t m) {
  MulLayout l;
  l.m = m;
  l.a = make_reg(0, m);
  l.b = make_reg(m, m);
  l.c = make_reg(2 * m, m);
  l.carry = 3 * m;
  return l;
}

circuit::Circuit multiplier_circuit(qubit_t m) {
  const MulLayout l = MulLayout::make(m);
  Circuit c(l.total_qubits());
  multiply_accumulate(c, l.a, l.b, l.c, l.carry);
  return c;
}

DivLayout DivLayout::make(qubit_t m) {
  DivLayout l;
  l.m = m;
  l.y = make_reg(0, 2 * m + 1);
  l.b = make_reg(2 * m + 1, m);
  l.q = make_reg(3 * m + 1, m);
  l.b_pad = 4 * m + 1;
  l.borrow = 4 * m + 2;
  l.carry = 4 * m + 3;
  return l;
}

circuit::Circuit divider_circuit(qubit_t m) {
  const DivLayout l = DivLayout::make(m);
  Circuit c(l.total_qubits());
  divide(c, l.y, l.b, l.b_pad, l.q, l.borrow, l.carry);
  return c;
}

}  // namespace qc::revcirc
