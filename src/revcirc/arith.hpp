// Reversible arithmetic circuits — the simulation side of the paper's
// §3.1 / Figs. 1 & 2.
//
// The emulator evaluates a multiplication or division directly per basis
// state; a simulator must execute the reversible network the operation
// compiles to. This module builds those networks from scratch:
//
//  * the Cuccaro/Draper/Kutin/Moulton ripple-carry adder (MAJ/UMA,
//    reference [12] of the paper), plain and controlled, with optional
//    carry-out;
//  * a shift-and-add multiplier  (a, b, c) -> (a, b, c + a*b mod 2^m),
//    the paper's "repeated-addition-and-shift approach";
//  * a restoring divider        (a, b, 0) -> (a mod b, b, a div b),
//    the "repeated-subtraction-and-shift approach" whose overflow-test
//    work qubits give Fig. 2 its extra exponential simulation cost.
//
// Registers are arbitrary qubit-index lists (little-endian: element 0 is
// the least-significant bit), so the divider can slide its subtraction
// window without physical shifts.
#pragma once

#include <optional>
#include <vector>

#include "circuit/circuit.hpp"

namespace qc::revcirc {

/// Little-endian register: reg[i] is the qubit holding bit i.
using Reg = std::vector<qubit_t>;

/// Contiguous register [offset, offset+width).
Reg make_reg(qubit_t offset, qubit_t width);

/// Appends the Cuccaro ripple-carry adder: b += a (mod 2^w), where
/// w = |a| = |b|. `carry_anc` must be |0> and is restored. If
/// `carry_out` is given, it is XORed with the addition's carry-out.
/// With `control`, the whole operation is conditioned on that qubit
/// (adds one control to the b-writing gates only; every gate stays
/// within two controls).
void cuccaro_add(circuit::Circuit& c, const Reg& a, const Reg& b, qubit_t carry_anc,
                 std::optional<qubit_t> carry_out = {},
                 std::optional<qubit_t> control = {});

/// Appends b -= a (mod 2^w): the exact inverse network of cuccaro_add.
/// If `carry_out` is given it is XORed with the *borrow* (1 iff b < a
/// before subtraction).
void cuccaro_sub(circuit::Circuit& c, const Reg& a, const Reg& b, qubit_t carry_anc,
                 std::optional<qubit_t> carry_out = {},
                 std::optional<qubit_t> control = {});

/// Appends the shift-and-add multiplier: c_reg += a*b mod 2^m where
/// m = |a| = |b| = |c_reg|. `carry_anc` must be |0>, restored.
void multiply_accumulate(circuit::Circuit& c, const Reg& a, const Reg& b, const Reg& c_reg,
                         qubit_t carry_anc);

/// Appends the restoring divider. `y` has 2m+1 qubits: y[0..m) holds the
/// dividend a on entry and the remainder a mod b on exit; y[m..2m+1)
/// must be |0> and is restored. `b` (m qubits) is the divisor,
/// `b_pad` a |0> qubit zero-extending it. `q` (m qubits, |0> on entry)
/// receives a div b. `borrow` and `carry_anc` are |0> work qubits,
/// restored. Convention for b = 0: q = 2^m - 1 and remainder = a (every
/// trial subtraction of zero "succeeds").
void divide(circuit::Circuit& c, const Reg& y, const Reg& b, qubit_t b_pad, const Reg& q,
            qubit_t borrow, qubit_t carry_anc);

// --- standard layouts used by the Fig. 1 / Fig. 2 benches -------------

/// Multiplier on 3m+1 qubits: a = [0, m), b = [m, 2m), c = [2m, 3m),
/// carry ancilla = 3m. Realizes (a, b, c) -> (a, b, c + a*b mod 2^m).
struct MulLayout {
  qubit_t m = 0;
  Reg a, b, c;
  qubit_t carry = 0;
  [[nodiscard]] qubit_t total_qubits() const noexcept { return 3 * m + 1; }
  static MulLayout make(qubit_t m);
};
circuit::Circuit multiplier_circuit(qubit_t m);

/// Divider on 4m+4 qubits: y = [0, 2m+1) (dividend in y[0..m)),
/// b = [2m+1, 3m+1), q = [3m+1, 4m+1), b_pad = 4m+1, borrow = 4m+2,
/// carry = 4m+3. Realizes (a, b, 0) -> (a mod b, b, a div b).
struct DivLayout {
  qubit_t m = 0;
  Reg y, b, q;
  qubit_t b_pad = 0, borrow = 0, carry = 0;
  [[nodiscard]] qubit_t total_qubits() const noexcept { return 4 * m + 4; }
  static DivLayout make(qubit_t m);
};
circuit::Circuit divider_circuit(qubit_t m);

}  // namespace qc::revcirc
