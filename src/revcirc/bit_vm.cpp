#include "revcirc/bit_vm.hpp"

#include <stdexcept>

#include "common/bits.hpp"

namespace qc::revcirc {

using circuit::Gate;
using circuit::GateKind;

index_t BitVm::apply(index_t state, const Gate& g) {
  index_t cmask = 0;
  for (qubit_t c : g.controls) cmask = bits::set(cmask, c);
  if ((state & cmask) != cmask) return state;
  switch (g.kind) {
    case GateKind::X:
      return bits::flip(state, g.targets[0]);
    case GateKind::Swap: {
      const index_t va = bits::get(state, g.targets[0]);
      const index_t vb = bits::get(state, g.targets[1]);
      if (va == vb) return state;
      state = bits::flip(state, g.targets[0]);
      return bits::flip(state, g.targets[1]);
    }
    default:
      throw std::invalid_argument("BitVm: non-classical gate " + g.to_string());
  }
}

index_t BitVm::run(const circuit::Circuit& c, index_t input) {
  index_t s = input;
  for (const Gate& g : c.gates()) s = apply(s, g);
  return s;
}

bool BitVm::is_classical(const circuit::Circuit& c) {
  for (const Gate& g : c.gates())
    if (g.kind != GateKind::X && g.kind != GateKind::Swap) return false;
  return true;
}

}  // namespace qc::revcirc
