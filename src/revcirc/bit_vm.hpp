// Classical reversible virtual machine.
//
// Reversible arithmetic networks (NOT/CNOT/Toffoli/SWAP) act as
// permutations of computational basis states, so their behaviour is
// fully determined by classical bit-level execution. BitVm runs such a
// circuit on a plain 64-bit word — 2^n times cheaper than a state-vector
// simulation — which lets the test suite verify adders, multipliers and
// dividers exhaustively at widths far beyond what amplitudes allow.
#pragma once

#include "circuit/circuit.hpp"

namespace qc::revcirc {

class BitVm {
 public:
  /// Applies one classical gate (X with any number of controls, or SWAP)
  /// to `state`. Throws std::invalid_argument for non-classical gates.
  static index_t apply(index_t state, const circuit::Gate& g);

  /// Runs the whole circuit on the given basis state.
  static index_t run(const circuit::Circuit& c, index_t input);

  /// True if every gate of `c` is classical (executable by this VM).
  static bool is_classical(const circuit::Circuit& c);
};

}  // namespace qc::revcirc
