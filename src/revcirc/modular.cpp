#include "revcirc/modular.hpp"

#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "circuit/builders.hpp"
#include "common/bits.hpp"

namespace qc::revcirc {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

index_t mod_inverse(index_t a, index_t modulus) {
  if (modulus == 0) throw std::invalid_argument("mod_inverse: zero modulus");
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(modulus);
  std::int64_t new_r = static_cast<std::int64_t>(a % modulus);
  while (new_r != 0) {
    const std::int64_t q = r / new_r;
    t = std::exchange(new_t, t - q * new_t);
    r = std::exchange(new_r, r - q * new_r);
  }
  if (r != 1) throw std::invalid_argument("mod_inverse: not invertible");
  if (t < 0) t += static_cast<std::int64_t>(modulus);
  return static_cast<index_t>(t);
}

void qft_on_reg(Circuit& c, const Reg& reg) {
  c.compose_mapped(circuit::qft(static_cast<qubit_t>(reg.size())), reg);
}

void inverse_qft_on_reg(Circuit& c, const Reg& reg) {
  c.compose_mapped(circuit::inverse_qft(static_cast<qubit_t>(reg.size())), reg);
}

void phi_add_const(Circuit& c, const Reg& b, index_t a,
                   const std::vector<qubit_t>& controls) {
  // In Fourier space |phi(b)> has amplitude e^{2 pi i b l / 2^w} on |l>;
  // adding `a` multiplies the |l> amplitude by e^{2 pi i a l / 2^w},
  // which factorizes into one phase gate per qubit: qubit j contributes
  // e^{2 pi i a 2^j / 2^w} when set.
  const std::size_t w = b.size();
  const double base = 2.0 * std::numbers::pi / std::ldexp(1.0, static_cast<int>(w));
  for (std::size_t j = 0; j < w; ++j) {
    const double angle =
        base * static_cast<double>(a % (index_t{1} << w)) * std::ldexp(1.0, static_cast<int>(j));
    // Reduce to (-2pi, 2pi) for numeric hygiene; the gate is periodic.
    const double reduced = std::remainder(angle, 2.0 * std::numbers::pi);
    if (reduced == 0.0) continue;
    Gate g = circuit::make_gate(GateKind::Phase, b[j], reduced);
    g.controls = controls;
    c.append(std::move(g));
  }
}

void phi_sub_const(Circuit& c, const Reg& b, index_t a,
                   const std::vector<qubit_t>& controls) {
  const std::size_t w = b.size();
  const index_t mask = bits::low_mask(static_cast<qubit_t>(w));
  phi_add_const(c, b, ((index_t{1} << w) - (a & mask)) & mask, controls);
}

void add_const_via_qft(Circuit& c, const Reg& b, index_t a,
                       const std::vector<qubit_t>& controls) {
  qft_on_reg(c, b);
  phi_add_const(c, b, a, controls);
  inverse_qft_on_reg(c, b);
}

void phi_add_const_mod(Circuit& c, const Reg& b, index_t a, index_t modulus,
                       qubit_t zero_anc, const std::vector<qubit_t>& controls) {
  const std::size_t w1 = b.size();  // w + 1 with the overflow qubit on top
  if (w1 < 2) throw std::invalid_argument("phi_add_const_mod: register too narrow");
  if (modulus == 0 || modulus > (index_t{1} << (w1 - 1)))
    throw std::invalid_argument("phi_add_const_mod: modulus out of range");
  a %= modulus;
  const qubit_t msb = b.back();

  // Beauregard's seven steps. The trial subtraction of N may wrap
  // negative; the overflow qubit's sign bit drives the restore, and the
  // final comparison uncomputes the ancilla.
  phi_add_const(c, b, a, controls);                       // 1: b += a (ctl)
  phi_sub_const(c, b, modulus);                           // 2: b -= N
  inverse_qft_on_reg(c, b);                               // 3: sign -> anc
  c.cnot(msb, zero_anc);
  qft_on_reg(c, b);
  phi_add_const(c, b, modulus, {zero_anc});               // 4: restore if negative
  phi_sub_const(c, b, a, controls);                       // 5: b -= a (ctl)
  inverse_qft_on_reg(c, b);                               // 6: uncompute anc
  c.x(msb);
  c.cnot(msb, zero_anc);
  c.x(msb);
  qft_on_reg(c, b);
  phi_add_const(c, b, a, controls);                       // 7: b += a (ctl)
}

void cmult_mod(Circuit& c, qubit_t control, const Reg& x, const Reg& b, index_t a,
               index_t modulus, qubit_t zero_anc) {
  if (b.size() != x.size() + 1)
    throw std::invalid_argument("cmult_mod: accumulator must be one qubit wider");
  qft_on_reg(c, b);
  // b += sum_j x_j * (a 2^j mod N) mod N, each term doubly controlled
  // on (control, x_j).
  index_t term = a % modulus;
  for (std::size_t j = 0; j < x.size(); ++j) {
    phi_add_const_mod(c, b, term, modulus, zero_anc, {control, x[j]});
    term = term * 2 % modulus;
  }
  inverse_qft_on_reg(c, b);
}

void controlled_modmul(Circuit& c, qubit_t control, const Reg& x, const Reg& b, index_t a,
                       index_t modulus, qubit_t zero_anc) {
  if (std::gcd(a % modulus, modulus) != 1)
    throw std::invalid_argument("controlled_modmul: a not invertible mod N");
  // |x>|0> --CMULT(a)--> |x>|a x>  --cswap--> |a x>|x>
  //        --CMULT(a^-1)^dagger--> |a x>|0>.
  cmult_mod(c, control, x, b, a, modulus, zero_anc);
  for (std::size_t j = 0; j < x.size(); ++j) {
    Gate g = circuit::make_swap(x[j], b[j]);
    g.controls = {control};
    c.append(std::move(g));
  }
  Circuit inverse_part(c.qubits());
  cmult_mod(inverse_part, control, x, b, mod_inverse(a, modulus), modulus, zero_anc);
  c.compose(inverse_part.inverse());
}

void modexp(Circuit& c, const Reg& exponent, const Reg& x, const Reg& b, index_t a,
            index_t modulus, qubit_t zero_anc) {
  index_t factor = a % modulus;
  for (const qubit_t e_bit : exponent) {
    controlled_modmul(c, e_bit, x, b, factor, modulus, zero_anc);
    factor = factor * factor % modulus;
  }
}

ShorLayout ShorLayout::make(qubit_t t_bits, index_t modulus) {
  ShorLayout l;
  l.t = t_bits;
  l.w = 1;
  while (dim(l.w) < modulus) ++l.w;
  l.exponent = make_reg(0, l.t);
  l.x = make_reg(l.t, l.w);
  l.b = make_reg(l.t + l.w, l.w + 1);
  l.anc = l.t + 2 * l.w + 1;
  return l;
}

Circuit order_finding_circuit(const ShorLayout& layout, index_t a, index_t modulus) {
  Circuit c(layout.total_qubits());
  for (const qubit_t q : layout.exponent) c.h(q);
  c.x(layout.x[0]);  // work register starts at |1>
  modexp(c, layout.exponent, layout.x, layout.b, a, modulus, layout.anc);
  return c;
}

}  // namespace qc::revcirc
