// Quantum modular arithmetic (Beauregard, quant-ph/0205095 — the
// paper's reference [16]).
//
// The gate-level counterpart of the emulator's modular shortcuts: Shor's
// order finding needs |e>|1> -> |e>|a^e mod N>, which compiles to a
// cascade of controlled modular multiplications built from Draper
// QFT-adders. These circuits mix QFTs with (multi-)controlled phase
// gates, so — unlike the Cuccaro networks in arith.hpp — they are not
// classical and are verified against the emulator on state vectors
// instead of the BitVm.
//
// Conventions: registers little-endian; the accumulator register `b` has
// w+1 qubits (one overflow qubit above the w value bits); "phi" routines
// assume their target is already in Fourier space (qft applied, natural
// bit order per paper Eq. 4).
#pragma once

#include <optional>

#include "revcirc/arith.hpp"

namespace qc::revcirc {

/// Classical modular inverse via extended Euclid. Throws if gcd != 1.
index_t mod_inverse(index_t a, index_t modulus);

/// Appends the QFT over `reg` (natural order, the emulator's Eq. 4
/// convention) mapped onto arbitrary qubit labels.
void qft_on_reg(circuit::Circuit& c, const Reg& reg);
void inverse_qft_on_reg(circuit::Circuit& c, const Reg& reg);

/// Draper adder in Fourier space: |phi(b)> -> |phi(b + a mod 2^w)>.
/// One phase gate per qubit; `controls` (0..2 qubits) condition the
/// whole addition.
void phi_add_const(circuit::Circuit& c, const Reg& b, index_t a,
                   const std::vector<qubit_t>& controls = {});

/// Inverse (subtraction): |phi(b)> -> |phi(b - a mod 2^w)>.
void phi_sub_const(circuit::Circuit& c, const Reg& b, index_t a,
                   const std::vector<qubit_t>& controls = {});

/// Convenience: QFT + phi_add_const + inverse QFT (computational basis
/// in and out): b += a mod 2^w.
void add_const_via_qft(circuit::Circuit& c, const Reg& b, index_t a,
                       const std::vector<qubit_t>& controls = {});

/// Beauregard's modular adder in Fourier space:
/// |phi(b)> -> |phi((b + a) mod N)> for 0 <= b < N, 0 <= a < N.
/// `b` has w+1 qubits (overflow qubit on top, |0> outside the block);
/// `zero_anc` is a |0> comparator ancilla, restored. `controls`
/// condition the addition (the comparator machinery always runs).
void phi_add_const_mod(circuit::Circuit& c, const Reg& b, index_t a, index_t modulus,
                       qubit_t zero_anc, const std::vector<qubit_t>& controls = {});

/// Controlled modular multiply-accumulate (Beauregard's CMULT):
/// b += a * x mod N when `control` is set (b unchanged otherwise).
/// `x` has w qubits (x < N required), `b` has w+1 (any value < N).
void cmult_mod(circuit::Circuit& c, qubit_t control, const Reg& x, const Reg& b, index_t a,
               index_t modulus, qubit_t zero_anc);

/// In-place controlled modular multiplication:
/// |x>|0> -> |a x mod N>|0> when `control` is set. Requires gcd(a,N)=1
/// and x < N. `b` (w+1 qubits) and `zero_anc` are |0>-in/|0>-out.
void controlled_modmul(circuit::Circuit& c, qubit_t control, const Reg& x, const Reg& b,
                       index_t a, index_t modulus, qubit_t zero_anc);

/// Full modular exponentiation |e>|1>|0...> -> |e>|a^e mod N>|0...>:
/// one controlled_modmul by a^(2^j) per exponent bit j — the circuit a
/// simulator must execute where the emulator applies one permutation.
void modexp(circuit::Circuit& c, const Reg& exponent, const Reg& x, const Reg& b,
            index_t a, index_t modulus, qubit_t zero_anc);

/// Standard layout for an order-finding circuit on t + 2w + 2 qubits:
/// exponent = [0, t), x = [t, t+w), b = [t+w, t+2w+1), anc = t+2w+1.
struct ShorLayout {
  qubit_t t = 0;  ///< exponent width
  qubit_t w = 0;  ///< value width (ceil log2 N)
  Reg exponent, x, b;
  qubit_t anc = 0;
  [[nodiscard]] qubit_t total_qubits() const noexcept { return t + 2 * w + 2; }
  static ShorLayout make(qubit_t t_bits, index_t modulus);
};

/// The complete order-finding circuit body (without the final inverse
/// QFT on the exponent register): Hadamards on the exponent, X on x[0]
/// (prepares |1>), then modexp.
circuit::Circuit order_finding_circuit(const ShorLayout& layout, index_t a, index_t modulus);

}  // namespace qc::revcirc
