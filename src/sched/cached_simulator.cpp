#include "sched/cached_simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hpp"
#include "models/perf_model.hpp"
#include "obs/trace.hpp"
#include "sched/verify_plan.hpp"
#include "sim/kernels.hpp"

namespace qc::sched {

namespace {

namespace kernels = sim::kernels;

/// Serial single-gate dispatch on one cache-resident chunk — the same
/// fast-path selection as HpcSimulator::apply_gate, minus the OpenMP
/// (the caller parallelizes across chunks).
void apply_gate_serial(std::span<complex_t> chunk, qubit_t width, const circuit::Gate& g) {
  const index_t cmask = sim::control_mask(g);
  if (g.kind == circuit::GateKind::Swap) {
    kernels::apply_swap_serial(chunk, width, g.targets[0], g.targets[1], cmask);
    return;
  }
  const qubit_t t = g.targets[0];
  if (g.kind == circuit::GateKind::X) {
    kernels::apply_x_serial(chunk, width, t, cmask);
    return;
  }
  if (g.diagonal()) {
    const auto [d0, d1] = sim::diagonal_entries(g);
    kernels::apply_diagonal_serial(chunk, width, t, d0, d1, cmask);
    return;
  }
  kernels::apply_folded_serial(chunk, width, t, cmask, sim::target_block(g));
}

void apply_chunk_op(std::span<complex_t> chunk, qubit_t width, const ChunkOp& op) {
  switch (op.kind) {
    case ChunkOp::Kind::Dense:
      kernels::apply_multi_serial(chunk, width, op.qubits,
                                  {op.unitary.data(), op.unitary.rows() * op.unitary.cols()});
      return;
    case ChunkOp::Kind::Diagonal:
      kernels::apply_multi_diagonal_serial(chunk, width, op.qubits, op.diag);
      return;
    case ChunkOp::Kind::Gate:
      apply_gate_serial(chunk, width, op.gate);
      return;
  }
}

/// One DRAM pass for the whole sweep: every op applies to a chunk while
/// it is cache resident; parallelism is across chunks.
void run_sweep(std::span<complex_t> a, qubit_t n, qubit_t chunk_width,
               std::span<const ChunkOp> ops) {
  const qubit_t width = std::min(chunk_width, n);
  const index_t chunk_size = dim(width);
  const auto chunks = static_cast<std::int64_t>(dim(n) >> width);
#pragma omp parallel for schedule(static) if (worth_parallelizing(dim(n)) && chunks > 1)
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::span<complex_t> chunk =
        a.subspan(static_cast<index_t>(c) * chunk_size, chunk_size);
    for (const ChunkOp& op : ops) apply_chunk_op(chunk, width, op);
  }
}

}  // namespace

void CachedSimulator::apply_gate(sim::StateVector& sv, const circuit::Gate& g) const {
  hpc_.apply_gate(sv, g);
}

BlockedPlan CachedSimulator::plan(const circuit::Circuit& c) const {
  // Narrow the fusion width to the scheduler's in-cache optimum: the
  // full-pass saving that justifies wide blocks does not apply inside a
  // chunk-resident sweep (see ScheduleOptions::max_block_width).
  fuse::FusionOptions fusion = opts_.fusion;
  fusion.max_width = std::min(fusion.max_width, opts_.sched.max_block_width);
  return schedule(fuse::fuse_circuit(c, fusion), opts_.sched);
}

void execute_blocked(std::span<complex_t> a, const BlockedPlan& plan) {
  if (a.size() != dim(plan.n))
    throw std::invalid_argument("execute_blocked: amplitude count mismatch");
#if QC_ENABLE_CHECKS
  // Debug/sanitizer builds re-verify every plan at the execution
  // boundary: anything that reaches the kernels has proven coverage,
  // bijective remaps and in-budget chunks (see sched/verify_plan.hpp).
  verify_plan(plan);
#endif
  // Each plan item is priced at (multiples of) one full memory pass —
  // t_state_pass_seconds is the prediction every span carries, so the
  // model report can show how far this machine is from the Eq. 6
  // bandwidth term the scheduler traded in.
  const double pass_pred =
      obs::enabled() ? models::t_state_pass_seconds(plan.n, {}) : 0;
  for (const PlanItem& item : plan.items) {
    switch (item.kind) {
      case PlanItem::Kind::Sweep: {
        obs::Span span("sched.sweep");
        if (obs::enabled()) {
          span.arg("ops", static_cast<double>(item.ops.size()));
          span.arg("pred_s", pass_pred);
        }
        run_sweep(a, plan.n, plan.chunk_width, item.ops);
        break;
      }
      case PlanItem::Kind::Remap: {
        obs::Span span("sched.remap");
        if (obs::enabled()) {
          span.arg("swaps", static_cast<double>(item.swaps.size()));
          span.arg("pred_s", pass_pred);
        }
        sim::kernels::apply_qubit_swaps(a, plan.n, item.swaps);
        break;
      }
      case PlanItem::Kind::Global: {
        obs::Span span("sched.global");
        if (obs::enabled()) span.arg("pred_s", pass_pred);
        const ChunkOp& op = item.global;
        if (op.kind == ChunkOp::Kind::Dense) {
          sim::kernels::apply_multi(a, plan.n, op.qubits,
                                    {op.unitary.data(), op.unitary.rows() * op.unitary.cols()});
        } else if (op.kind == ChunkOp::Kind::Diagonal) {
          sim::kernels::apply_multi_diagonal(a, plan.n, op.qubits, op.diag);
        } else {
          sim::apply_gate_hpc(a, plan.n, op.gate);
        }
        break;
      }
    }
  }
}

void CachedSimulator::execute(sim::StateVector& sv, const BlockedPlan& plan) const {
  if (plan.n != sv.qubits()) throw std::invalid_argument("execute: qubit count mismatch");
  execute_blocked(sv.amplitudes(), plan);
}

void CachedSimulator::run(sim::StateVector& sv, const circuit::Circuit& c) const {
  if (c.qubits() != sv.qubits()) throw std::invalid_argument("run: qubit count mismatch");
  execute(sv, plan(c));
}

}  // namespace qc::sched
