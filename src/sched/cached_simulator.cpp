#include "sched/cached_simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <type_traits>

#include "common/parallel.hpp"
#include "models/perf_model.hpp"
#include "obs/trace.hpp"
#include "sched/verify_plan.hpp"
#include "sim/kernels.hpp"

namespace qc::sched {

namespace {

namespace kernels = sim::kernels;

/// Serial single-gate dispatch on one cache-resident chunk — the same
/// fast-path selection as HpcSimulator::apply_gate, minus the OpenMP
/// (the caller parallelizes across chunks).
template <typename T>
void apply_gate_serial(std::span<basic_complex_t<T>> chunk, qubit_t width,
                       const circuit::Gate& g) {
  using C = basic_complex_t<T>;
  const index_t cmask = sim::control_mask(g);
  if (g.kind == circuit::GateKind::Swap) {
    kernels::apply_swap_serial<T>(chunk, width, g.targets[0], g.targets[1], cmask);
    return;
  }
  const qubit_t t = g.targets[0];
  if (g.kind == circuit::GateKind::X) {
    kernels::apply_x_serial<T>(chunk, width, t, cmask);
    return;
  }
  if (g.diagonal()) {
    const auto [d0, d1] = sim::diagonal_entries(g);
    kernels::apply_diagonal_serial<T>(chunk, width, t, static_cast<C>(d0), static_cast<C>(d1),
                                      cmask);
    return;
  }
  kernels::apply_folded_serial<T>(chunk, width, t, cmask,
                                  kernels::u2_cast<T>(sim::target_block(g)));
}

/// A plan op with its dense/diagonal payload narrowed to the execution
/// scalar ONCE, outside the chunk loop (the plan itself stays double
/// precision). For T = double the views alias the plan storage.
template <typename T>
struct TypedOp {
  const ChunkOp* op;
  std::vector<basic_complex_t<T>> unitary, diag;  // storage only when T != double

  explicit TypedOp(const ChunkOp& o) : op(&o) {
    if constexpr (!std::is_same_v<T, double>) {
      if (o.kind == ChunkOp::Kind::Dense) {
        const std::size_t count = o.unitary.rows() * o.unitary.cols();
        unitary.resize(count);
        for (std::size_t i = 0; i < count; ++i)
          unitary[i] = static_cast<basic_complex_t<T>>(o.unitary.data()[i]);
      } else if (o.kind == ChunkOp::Kind::Diagonal) {
        diag.resize(o.diag.size());
        for (std::size_t i = 0; i < o.diag.size(); ++i)
          diag[i] = static_cast<basic_complex_t<T>>(o.diag[i]);
      }
    }
  }

  [[nodiscard]] std::span<const basic_complex_t<T>> unitary_view() const {
    if constexpr (std::is_same_v<T, double>) {
      return {op->unitary.data(), op->unitary.rows() * op->unitary.cols()};
    } else {
      return {unitary.data(), unitary.size()};
    }
  }
  [[nodiscard]] std::span<const basic_complex_t<T>> diag_view() const {
    if constexpr (std::is_same_v<T, double>) {
      return {op->diag.data(), op->diag.size()};
    } else {
      return {diag.data(), diag.size()};
    }
  }
};

template <typename T>
void apply_chunk_op(std::span<basic_complex_t<T>> chunk, qubit_t width, const TypedOp<T>& top) {
  switch (top.op->kind) {
    case ChunkOp::Kind::Dense:
      kernels::apply_multi_serial<T>(chunk, width, top.op->qubits, top.unitary_view());
      return;
    case ChunkOp::Kind::Diagonal:
      kernels::apply_multi_diagonal_serial<T>(chunk, width, top.op->qubits, top.diag_view());
      return;
    case ChunkOp::Kind::Gate:
      apply_gate_serial<T>(chunk, width, top.op->gate);
      return;
  }
}

/// One DRAM pass for the whole sweep: every op applies to a chunk while
/// it is cache resident; parallelism is across chunks.
template <typename T>
void run_sweep(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t chunk_width,
               std::span<const TypedOp<T>> ops) {
  const qubit_t width = std::min(chunk_width, n);
  const index_t chunk_size = dim(width);
  const auto chunks = static_cast<std::int64_t>(dim(n) >> width);
#pragma omp parallel for schedule(static) if (worth_parallelizing(dim(n)) && chunks > 1)
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::span<basic_complex_t<T>> chunk =
        a.subspan(static_cast<index_t>(c) * chunk_size, chunk_size);
    for (const TypedOp<T>& op : ops) apply_chunk_op<T>(chunk, width, op);
  }
}

}  // namespace

void CachedSimulator::apply_gate(sim::StateVector& sv, const circuit::Gate& g) const {
  hpc_.apply_gate(sv, g);
}

BlockedPlan CachedSimulator::plan(const circuit::Circuit& c) const {
  // Narrow the fusion width to the scheduler's in-cache optimum: the
  // full-pass saving that justifies wide blocks does not apply inside a
  // chunk-resident sweep (see ScheduleOptions::max_block_width).
  fuse::FusionOptions fusion = opts_.fusion;
  fusion.max_width = std::min(fusion.max_width, opts_.sched.max_block_width);
  return schedule(fuse::fuse_circuit(c, fusion), opts_.sched);
}

template <typename T>
void execute_blocked(std::span<basic_complex_t<T>> a, const BlockedPlan& plan) {
  if (a.size() != dim(plan.n))
    throw std::invalid_argument("execute_blocked: amplitude count mismatch");
#if QC_ENABLE_CHECKS
  // Debug/sanitizer builds re-verify every plan at the execution
  // boundary: anything that reaches the kernels has proven coverage,
  // bijective remaps and in-budget chunks (see sched/verify_plan.hpp).
  verify_plan(plan);
#endif
  // Each plan item is priced at (multiples of) one full memory pass —
  // t_state_pass_seconds is the prediction every span carries, so the
  // model report can show how far this machine is from the Eq. 6
  // bandwidth term the scheduler traded in. The pass cost follows the
  // execution scalar: an fp32 pass moves half the bytes.
  const double pass_pred =
      obs::enabled() ? models::t_state_pass_seconds(plan.n, {}, sizeof(basic_complex_t<T>)) : 0;
  for (const PlanItem& item : plan.items) {
    switch (item.kind) {
      case PlanItem::Kind::Sweep: {
        obs::Span span("sched.sweep");
        if (obs::enabled()) {
          span.arg("ops", static_cast<double>(item.ops.size()));
          span.arg("pred_s", pass_pred);
        }
        std::vector<TypedOp<T>> typed;
        typed.reserve(item.ops.size());
        for (const ChunkOp& op : item.ops) typed.emplace_back(op);
        run_sweep<T>(a, plan.n, plan.chunk_width, {typed.data(), typed.size()});
        break;
      }
      case PlanItem::Kind::Remap: {
        obs::Span span("sched.remap");
        if (obs::enabled()) {
          span.arg("swaps", static_cast<double>(item.swaps.size()));
          span.arg("pred_s", pass_pred);
        }
        sim::kernels::apply_qubit_swaps<T>(a, plan.n, item.swaps);
        break;
      }
      case PlanItem::Kind::Global: {
        obs::Span span("sched.global");
        if (obs::enabled()) span.arg("pred_s", pass_pred);
        const TypedOp<T> top(item.global);
        if (top.op->kind == ChunkOp::Kind::Dense) {
          sim::kernels::apply_multi<T>(a, plan.n, top.op->qubits, top.unitary_view());
        } else if (top.op->kind == ChunkOp::Kind::Diagonal) {
          sim::kernels::apply_multi_diagonal<T>(a, plan.n, top.op->qubits, top.diag_view());
        } else {
          sim::apply_gate_hpc<T>(a, plan.n, top.op->gate);
        }
        break;
      }
    }
  }
}

template void execute_blocked<float>(std::span<basic_complex_t<float>>, const BlockedPlan&);
template void execute_blocked<double>(std::span<basic_complex_t<double>>, const BlockedPlan&);

void CachedSimulator::execute(sim::StateVector& sv, const BlockedPlan& plan) const {
  if (plan.n != sv.qubits()) throw std::invalid_argument("execute: qubit count mismatch");
  execute_blocked<double>(sv.amplitudes(), plan);
}

void CachedSimulator::run(sim::StateVector& sv, const circuit::Circuit& c) const {
  if (c.qubits() != sv.qubits()) throw std::invalid_argument("run: qubit count mismatch");
  execute(sv, plan(c));
}

}  // namespace qc::sched
