// CachedSimulator — the cache-blocked execution backend ("cached").
//
// run() lowers the circuit through fuse::fuse_circuit (same pass as the
// "fused" backend), then through sched::schedule, and executes the
// blocked plan:
//
//  * Sweep items walk the state vector chunk by chunk (2^L amplitudes,
//    L = plan.chunk_width) and apply every op of the sweep to a chunk
//    while it is cache resident — one `omp parallel` region over chunks
//    per sweep, serial chunk-local kernels inside. This replaces the
//    fused backend's one-full-DRAM-pass-per-block with one pass per
//    sweep (paper §4: the simulation is bandwidth bound, so fewer state
//    traversals is the whole game).
//  * Remap items relocate high qubits into the low block in one
//    transposition pass (kernels::apply_qubit_swaps).
//  * Global items (ops wider than a chunk, or not worth remapping) run
//    through the same full-vector kernels the fused backend uses.
//
// Per-gate apply_gate() is identical to HpcSimulator — blocking is a
// cross-op optimization. plan() + execute() let iterative callers pay
// fusion + scheduling once.
#pragma once

#include "fuse/fusion.hpp"
#include "sched/schedule.hpp"
#include "sim/simulator.hpp"

namespace qc::sched {

/// Executes a blocked plan on a raw amplitude array of 2^plan.n
/// amplitudes. This is the executor CachedSimulator::execute wraps and
/// the rank-local entry point of the distributed executor (each rank
/// runs its chunk's plan on dist_sv's local window). The plan itself
/// stays double precision; executing at T = float narrows each op's
/// payload once, outside the chunk loop. Instantiated for float/double.
template <typename T>
void execute_blocked(std::span<basic_complex_t<T>> a, const BlockedPlan& plan);

class CachedSimulator final : public sim::Simulator {
 public:
  struct Options {
    fuse::FusionOptions fusion;
    ScheduleOptions sched;
  };

  CachedSimulator() = default;
  explicit CachedSimulator(Options opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "cached"; }

  void apply_gate(sim::StateVector& sv, const circuit::Gate& g) const override;
  void run(sim::StateVector& sv, const circuit::Circuit& c) const override;

  /// The fusion + blocking pipeline this backend would run on `c`.
  [[nodiscard]] BlockedPlan plan(const circuit::Circuit& c) const;

  /// Executes a prebuilt plan (must match sv's qubit count).
  void execute(sim::StateVector& sv, const BlockedPlan& plan) const;

 private:
  sim::HpcSimulator hpc_;
  Options opts_;
};

}  // namespace qc::sched
