#include "sched/dist_schedule.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "models/perf_model.hpp"
#include "obs/trace.hpp"
#include "sched/cached_simulator.hpp"
#include "sched/verify_plan.hpp"

namespace qc::sched {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

Gate relabel(const Gate& g, const std::vector<qubit_t>& perm) {
  Gate out = g;
  for (qubit_t& t : out.targets) t = perm[t];
  for (qubit_t& c : out.controls) c = perm[c];
  return out;
}

index_t gate_support(const Gate& g) {
  index_t m = 0;
  for (qubit_t t : g.targets) m = bits::set(m, t);
  for (qubit_t c : g.controls) m = bits::set(m, c);
  return m;
}

/// Chunk exchanges this gate pays when executed per-gate under `policy`
/// with the given logical->physical permutation — the Eq. 6 unit the
/// exchange pass is traded against. SWAP lowers to three CNOTs inside
/// DistStateVector::apply_gate, each charged by its own (X) target.
std::size_t exchanges_for(const Gate& g, const std::vector<qubit_t>& perm, qubit_t nl,
                          sim::CommPolicy policy) {
  if (g.kind == GateKind::Swap) {
    const bool ga = perm[g.targets[0]] >= nl;
    const bool gb = perm[g.targets[1]] >= nl;
    return 2 * static_cast<std::size_t>(gb) + static_cast<std::size_t>(ga);
  }
  if (perm[g.targets[0]] < nl) return 0;
  if (policy == sim::CommPolicy::Specialized && g.diagonal()) return 0;
  return 1;
}

}  // namespace

std::size_t DistPlan::locals() const {
  std::size_t total = 0;
  for (const DistPlanItem& it : items) total += it.kind == DistPlanItem::Kind::Local;
  return total;
}

std::size_t DistPlan::exchanges() const {
  std::size_t total = 0;
  for (const DistPlanItem& it : items) total += it.kind == DistPlanItem::Kind::Exchange;
  return total;
}

std::size_t DistPlan::globals() const {
  std::size_t total = 0;
  for (const DistPlanItem& it : items) total += it.kind == DistPlanItem::Kind::Gate;
  return total;
}

std::size_t DistPlan::local_gates() const {
  std::size_t total = 0;
  for (const DistPlanItem& it : items)
    if (it.kind == DistPlanItem::Kind::Local) total += it.local.source_ops;
  return total;
}

std::string DistPlan::to_string() const {
  std::ostringstream out;
  out << "dist plan on " << n << " qubits (" << local_qubits << " local): " << source_gates
      << " gates -> " << locals() << " local segments, " << exchanges() << " exchanges, "
      << globals() << " per-gate globals\n";
  for (const DistPlanItem& it : items) {
    switch (it.kind) {
      case DistPlanItem::Kind::Local:
        out << "  local x" << it.local.source_ops << " fused ops (" << it.local.passes()
            << " chunk passes)\n";
        break;
      case DistPlanItem::Kind::Exchange:
        out << "  exchange";
        for (const auto& s : it.swaps) out << " " << s[0] << "<->" << s[1];
        out << "\n";
        break;
      case DistPlanItem::Kind::Gate:
        out << "  gate " << it.gate.to_string() << "\n";
        break;
    }
  }
  return out.str();
}

std::vector<std::vector<std::array<qubit_t, 2>>> restore_rounds(std::vector<qubit_t> perm) {
  const auto n = static_cast<qubit_t>(perm.size());
  std::vector<qubit_t> inv(n);
  for (qubit_t q = 0; q < n; ++q) {
    if (perm[q] >= n) throw std::invalid_argument("restore_rounds: entry out of range");
    inv[perm[q]] = q;
  }
  for (qubit_t q = 0; q < n; ++q)
    if (perm[inv[q]] != q)
      throw std::invalid_argument("restore_rounds: not a permutation");
  std::vector<std::vector<std::array<qubit_t, 2>>> rounds;
  while (true) {
    std::vector<std::array<qubit_t, 2>> swaps;
    index_t used = 0;
    for (qubit_t p = 0; p < n; ++p) {
      const qubit_t home = inv[p];
      if (home == p || bits::test(used, p) || bits::test(used, home)) continue;
      swaps.push_back({p, home});
      used = bits::set(bits::set(used, p), home);
    }
    if (swaps.empty()) break;
    for (const auto& s : swaps) {
      const qubit_t qa = inv[s[0]], qb = inv[s[1]];
      std::swap(perm[qa], perm[qb]);
      std::swap(inv[s[0]], inv[s[1]]);
    }
    rounds.push_back(std::move(swaps));
  }
  return rounds;
}

DistPlan dist_schedule(const Circuit& c, qubit_t local_qubits,
                       const DistScheduleOptions& opts, std::vector<qubit_t>* perm_io) {
  const qubit_t n = c.qubits();
  const qubit_t nl = local_qubits;
  if (nl == 0 || nl > n)
    throw std::invalid_argument("dist_schedule: local qubits must be in [1, n]");
  obs::Span plan_span("sched.dist_plan");
  DistPlan plan;
  plan.n = n;
  plan.local_qubits = nl;
  plan.source_gates = c.size();
  const auto& gates = c.gates();

  std::vector<index_t> masks(gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i) masks[i] = gate_support(gates[i]);

  // perm: logical qubit -> physical position; inv: its inverse. A
  // caller-carried permutation seeds the plan mid-stream.
  std::vector<qubit_t> perm(n), inv(n);
  if (perm_io != nullptr) {
    if (perm_io->size() != static_cast<std::size_t>(n))
      throw std::invalid_argument("dist_schedule: perm_io size must equal qubit count");
    perm = *perm_io;
    for (qubit_t q = 0; q < n; ++q) {
      if (perm[q] >= n) throw std::invalid_argument("dist_schedule: bad perm_io entry");
      inv[perm[q]] = q;
    }
    for (qubit_t q = 0; q < n; ++q)
      if (perm[inv[q]] != q)
        throw std::invalid_argument("dist_schedule: perm_io is not a permutation");
  } else {
    std::iota(perm.begin(), perm.end(), qubit_t{0});
    std::iota(inv.begin(), inv.end(), qubit_t{0});
  }
#if QC_ENABLE_CHECKS
  const std::vector<qubit_t> initial_perm = perm;
#endif
  const auto commit_swaps = [&](const std::vector<std::array<qubit_t, 2>>& swaps) {
    for (const auto& s : swaps) {
      const qubit_t qa = inv[s[0]], qb = inv[s[1]];
      std::swap(perm[qa], perm[qb]);
      std::swap(inv[s[0]], inv[s[1]]);
    }
  };
  const auto all_local = [&](index_t mask, const std::vector<qubit_t>& p) {
    for (qubit_t q = 0; mask >> q; ++q)
      if (bits::test(mask, q) && p[q] >= nl) return false;
    return true;
  };

  // Rank-local gate run, accumulated until a global gate interrupts it,
  // then pushed through the regular fusion + cache-blocking pipeline.
  Circuit segment(nl);
  const auto flush = [&] {
    if (segment.empty()) return;
    fuse::FusionOptions fusion = opts.fusion;
    fusion.max_width = std::min(fusion.max_width, opts.sched.max_block_width);
    DistPlanItem item;
    item.kind = DistPlanItem::Kind::Local;
    item.local = schedule(fuse::fuse_circuit(segment, fusion), opts.sched);
    plan.items.push_back(std::move(item));
    segment = Circuit(nl);
  };

  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (all_local(masks[i], perm)) {
      segment.append(relabel(g, perm));
      continue;
    }
    bool exchanged = false;
    if (opts.remap) {
      const std::size_t window_end = std::min(gates.size(), i + opts.lookahead);
      constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
      std::vector<std::size_t> next_use(n, kNever);
      for (std::size_t j = i; j < window_end; ++j) {
        for (qubit_t q = 0; masks[j] >> q; ++q)
          if (bits::test(masks[j], q) && next_use[q] == kNever) next_use[q] = j;
      }
      // Candidate imports: this gate's global qubits (mandatory), then
      // the window's remaining global working set, soonest-used first.
      std::vector<qubit_t> imports;
      for (qubit_t q = 0; masks[i] >> q; ++q)
        if (bits::test(masks[i], q) && perm[q] >= nl) imports.push_back(q);
      const std::size_t mandatory = imports.size();
      for (qubit_t q = 0; q < n; ++q)
        if (perm[q] >= nl && next_use[q] != kNever && !bits::test(masks[i], q))
          imports.push_back(q);
      std::stable_sort(imports.begin() + static_cast<std::ptrdiff_t>(mandatory),
                       imports.end(),
                       [&](qubit_t x, qubit_t y) { return next_use[x] < next_use[y]; });
      // Farthest-next-use victims from the local block.
      std::vector<qubit_t> victims;
      for (qubit_t p = 0; p < nl; ++p)
        if (!bits::test(masks[i], inv[p])) victims.push_back(p);
      std::stable_sort(victims.begin(), victims.end(), [&](qubit_t x, qubit_t y) {
        return next_use[inv[x]] > next_use[inv[y]];
      });
      std::vector<std::array<qubit_t, 2>> swaps;
      std::size_t v = 0;
      for (std::size_t s = 0; s < imports.size() && v < victims.size(); ++s) {
        const qubit_t victim = victims[v];
        if (s >= mandatory && next_use[imports[s]] >= next_use[inv[victim]]) break;
        swaps.push_back({perm[imports[s]], victim});
        ++v;
      }
      if (swaps.size() >= mandatory && !swaps.empty()) {
        std::vector<qubit_t> trial = perm;
        for (const auto& s : swaps) {
          const qubit_t qa = inv[s[0]], qb = inv[s[1]];
          std::swap(trial[qa], trial[qb]);
        }
        // Score in Eq. 6 units: per-gate chunk exchanges the pass avoids
        // over the window, net of exchanges the evictions introduce.
        std::ptrdiff_t saved = 0;
        for (std::size_t j = i; j < window_end; ++j)
          saved += static_cast<std::ptrdiff_t>(exchanges_for(gates[j], perm, nl, opts.policy)) -
                   static_cast<std::ptrdiff_t>(exchanges_for(gates[j], trial, nl, opts.policy));
        const bool taken =
            all_local(masks[i], trial) && saved > 0 &&
            models::global_remap_profitable(static_cast<std::size_t>(saved),
                                            opts.exchange_pass_cost);
        // Eq. 6 trade with its inputs, preserved as a trace marker.
        obs::instant("sched.exchange_decision",
                     {{"gate", static_cast<double>(i)},
                      {"saved", static_cast<double>(saved)},
                      {"exchange_cost", opts.exchange_pass_cost},
                      {"taken", taken ? 1.0 : 0.0}});
        if (taken) {
          flush();
          DistPlanItem item;
          item.kind = DistPlanItem::Kind::Exchange;
          item.swaps = swaps;
          plan.items.push_back(std::move(item));
          commit_swaps(swaps);
          segment.append(relabel(g, perm));
          exchanged = true;
        }
      }
    }
    if (!exchanged) {
      // Per-gate fallback: apply_gate handles global targets/controls
      // (diagonal targets and unsatisfied controls stay comm-free under
      // the Specialized policy).
      flush();
      DistPlanItem item;
      item.kind = DistPlanItem::Kind::Gate;
      item.gate = relabel(g, perm);
      plan.items.push_back(std::move(item));
    }
  }
  flush();

  if (perm_io == nullptr) {
    // Undo all exchanges so the state leaves in logical qubit order;
    // each round is one disjoint transposition set (one chunk
    // permutation). A resident caller (perm_io) instead carries the
    // reached order forward — the single restore happens at gather time.
    for (auto& swaps : restore_rounds(perm)) {
      DistPlanItem item;
      item.kind = DistPlanItem::Kind::Exchange;
      item.swaps = std::move(swaps);
      plan.items.push_back(std::move(item));
    }
  } else {
    *perm_io = perm;
  }
  if (obs::enabled()) {
    plan_span.arg("gates", static_cast<double>(plan.source_gates));
    plan_span.arg("locals", static_cast<double>(plan.locals()));
    plan_span.arg("exchanges", static_cast<double>(plan.exchanges()));
    plan_span.arg("per_gate", static_cast<double>(plan.globals()));
  }
#if QC_ENABLE_CHECKS
  // Debug/sanitizer builds verify every plan before handing it out, and
  // cross-check the verifier's replayed permutation against the
  // scheduler's own bookkeeping (see sched/verify_plan.hpp).
  if (perm_io == nullptr) {
    verify_plan(plan);
  } else {
    std::vector<qubit_t> replayed;
    verify_plan(plan, initial_perm, &replayed);
    QC_CHECK_MSG(replayed == perm, "dist_schedule: plan replay disagrees with perm_io");
  }
#endif
  return plan;
}

template <typename T>
void run_dist_plan(sim::BasicDistStateVector<T>& dsv, const DistPlan& plan,
                   sim::CommPolicy policy) {
  if (dsv.qubits() != plan.n || dsv.local_qubits() != plan.local_qubits)
    throw std::invalid_argument("run_dist_plan: qubit split mismatch");
  obs::Span plan_run_span("dist.plan");
  for (const DistPlanItem& item : plan.items) {
    switch (item.kind) {
      case DistPlanItem::Kind::Local: {
        // Rank-local cache-blocked execution: the sched.sweep spans this
        // emits nest inside it, giving the trace its fourth level.
        obs::Span span("dist.local");
        if (obs::enabled())
          span.arg("ops", static_cast<double>(item.local.source_ops));
        execute_blocked<T>(dsv.local(), item.local);
        break;
      }
      case DistPlanItem::Kind::Exchange:
        // dsv emits its own "dist.exchange_pass" span (with bytes).
        dsv.apply_qubit_swaps(item.swaps);
        break;
      case DistPlanItem::Kind::Gate: {
        obs::Span span("dist.gate");
        dsv.apply_gate(item.gate, policy);
        break;
      }
    }
  }
}

template void run_dist_plan<float>(sim::BasicDistStateVector<float>&, const DistPlan&,
                                   sim::CommPolicy);
template void run_dist_plan<double>(sim::BasicDistStateVector<double>&, const DistPlan&,
                                    sim::CommPolicy);

double predicted_seconds(const DistPlan& plan, const models::MachineParams& m) {
  const qubit_t nl = plan.local_qubits;
  double total = 0;
  for (const DistPlanItem& item : plan.items) {
    switch (item.kind) {
      case DistPlanItem::Kind::Local:
        total += models::t_blocked_execution_seconds(nl, item.local.passes(), m);
        break;
      case DistPlanItem::Kind::Exchange:
        total += models::t_chunk_exchange_seconds(nl, m);
        break;
      case DistPlanItem::Kind::Gate:
        // Physical labels: a rank-bit target pays one pairwise exchange
        // unless diagonal (comm-free under the Specialized policy).
        if (item.gate.targets[0] >= nl && !item.gate.diagonal())
          total += models::t_chunk_exchange_seconds(nl, m);
        else
          total += models::t_state_pass_seconds(nl, m);
        break;
    }
  }
  return total;
}

}  // namespace qc::sched
