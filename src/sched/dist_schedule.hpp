// Distributed execution planning — the PR 3 sweep machinery lifted to
// the cluster level (paper Eq. 6, qHiPSTER's local/global qubit split).
//
// A DistStateVector splits n qubits into nl local qubits (each rank's
// 2^nl-amplitude chunk) and n - nl global qubits (the rank bits). Gates
// on local qubits never communicate; a gate targeting a global qubit
// normally pays one pairwise exchange of the whole chunk — the
// 16N/B_net term of Eq. 6, per gate. dist_schedule() plans around that
// cost the same way the cache scheduler plans around DRAM passes:
//
//  * maximal runs of gates whose (remapped) support lies below nl
//    become Local items — an nl-qubit sub-circuit pushed through the
//    regular fusion + cache-blocked sweep pipeline, so every rank
//    executes fused blocks and cache-resident sweeps on its own chunk
//    with zero communication;
//  * when a run of global-qubit gates is coming up, a cost-gated
//    Exchange item (DistStateVector::apply_qubit_swaps — ONE chunk
//    permutation) relocates those qubits into the local block,
//    amortizing a single exchange across the whole run instead of
//    paying one exchange per gate (models::global_remap_profitable);
//  * gates that stay global run as Gate items through
//    DistStateVector::apply_gate — which still skips communication
//    entirely for diagonal targets and unsatisfied global controls
//    under CommPolicy::Specialized.
//
// Every exchange is undone by plan end: the state leaves in logical
// qubit order, exactly like the cache scheduler's restore pass.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "models/perf_model.hpp"
#include "sched/schedule.hpp"
#include "sim/dist_sv.hpp"

namespace qc::sched {

struct DistScheduleOptions {
  /// Fusion options for the rank-local segments.
  fuse::FusionOptions fusion;
  /// Cache-blocking options for the rank-local segments (chunk width is
  /// chosen against the nl-qubit local space; a small chunk's floor
  /// means tiny ranks run their whole chunk as one sweep chunk).
  ScheduleOptions sched;
  /// Allow global<->local exchange passes (off: every global-qubit gate
  /// falls back to per-gate handling).
  bool remap = true;
  /// Gates examined when scoring a candidate exchange's payoff.
  std::size_t lookahead = 64;
  /// Chunk exchanges charged to one exchange pass in the cost model
  /// (the all-to-all now plus its share of the final restore).
  double exchange_pass_cost = 2.0;
  /// Policy the plan will run under — determines which global-qubit
  /// gates actually pay an exchange (Specialized: only non-diagonal
  /// targets; Exchange: every global target).
  sim::CommPolicy policy = sim::CommPolicy::Specialized;
};

/// One element of the distributed plan, in execution order. Qubit labels
/// in `local` plans and `gate` are *physical* positions under the
/// exchanges committed so far.
struct DistPlanItem {
  enum class Kind {
    Local,     ///< Rank-local fused + cache-blocked plan on the chunk.
    Exchange,  ///< Global<->local qubit exchange (one chunk permutation).
    Gate,      ///< Per-gate fallback (DistStateVector::apply_gate).
  };
  Kind kind = Kind::Local;
  BlockedPlan local;                          ///< Local payload (n = nl).
  std::vector<std::array<qubit_t, 2>> swaps;  ///< Exchange payload.
  circuit::Gate gate;                         ///< Gate payload.
};

/// The distributed program plus bookkeeping for benches and tests.
struct DistPlan {
  qubit_t n = 0;            ///< Total qubits.
  qubit_t local_qubits = 0; ///< nl: qubits below the rank boundary.
  std::vector<DistPlanItem> items;
  std::size_t source_gates = 0;

  [[nodiscard]] std::size_t locals() const;
  [[nodiscard]] std::size_t exchanges() const;
  [[nodiscard]] std::size_t globals() const;
  /// Source gates captured into Local items (rank-local, comm-free).
  [[nodiscard]] std::size_t local_gates() const;

  /// Human-readable plan summary.
  [[nodiscard]] std::string to_string() const;
};

/// Builds the distributed plan for `c` over an nl-qubit local block.
/// The plan applies the exact same unitary (to rounding).
///
/// Permutation carry (`perm_io`): with the default nullptr the plan is
/// self-contained — it starts from logical qubit order and appends
/// exchange items restoring logical order by plan end. A non-null
/// `perm_io` must hold the current logical->physical qubit permutation
/// (size n); planning starts from it, the final restore is *skipped*,
/// and the permutation the state is left in is written back. This is
/// how the resident dist backend chains gate segments across one
/// Engine::run: each segment picks up where the previous one left the
/// qubits, and the single restore happens at gather time
/// (restore_rounds) instead of once per segment.
[[nodiscard]] DistPlan dist_schedule(const circuit::Circuit& c, qubit_t local_qubits,
                                     const DistScheduleOptions& opts = {},
                                     std::vector<qubit_t>* perm_io = nullptr);

/// Disjoint-transposition rounds returning a state to logical qubit
/// order from `perm` (logical->physical). Apply round by round via
/// DistStateVector::apply_qubit_swaps; each round is one chunk
/// permutation. Identity permutations yield zero rounds.
[[nodiscard]] std::vector<std::vector<std::array<qubit_t, 2>>> restore_rounds(
    std::vector<qubit_t> perm);

/// Collective: executes a plan on a distributed state (dsv's qubit
/// split must match the plan's). Local items run execute_blocked on the
/// rank's chunk; Exchange items run the one-pass chunk permutation;
/// Gate items fall back to per-gate policy handling. The plan is
/// precision-agnostic — the same DistPlan runs on an fp32 or fp64
/// state. Instantiated for float/double.
template <typename T>
void run_dist_plan(sim::BasicDistStateVector<T>& dsv, const DistPlan& plan,
                   sim::CommPolicy policy = sim::CommPolicy::Specialized);

/// Predicted execution cost of a plan in model seconds: Local items
/// charge their blocked memory passes over the chunk, Exchange items
/// one chunk permutation, Gate items one pairwise exchange when the
/// (physical) target is a rank bit and the gate is not diagonal —
/// i.e. the same units the plan was scheduled in. The checkpoint
/// policy (models::checkpoint_due) accumulates this over the segments
/// since the last checkpoint to price a replay.
[[nodiscard]] double predicted_seconds(const DistPlan& plan, const models::MachineParams& m);

}  // namespace qc::sched
