#include "sched/schedule.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/bits.hpp"
#include "common/parallel.hpp"
#include "models/perf_model.hpp"
#include "obs/trace.hpp"

namespace qc::sched {

namespace {

using circuit::Gate;
using fuse::FusedCircuit;
using fuse::FusedItem;
using fuse::FusedOp;

index_t gate_support(const Gate& g) {
  index_t m = 0;
  for (qubit_t t : g.targets) m = bits::set(m, t);
  for (qubit_t c : g.controls) m = bits::set(m, c);
  return m;
}

index_t item_support(const FusedItem& it) {
  if (it.kind == FusedItem::Kind::Block) {
    index_t m = 0;
    for (qubit_t q : it.block.qubits) m = bits::set(m, q);
    return m;
  }
  return gate_support(it.gate);
}

Gate remap_gate(const Gate& g, const std::vector<qubit_t>& perm) {
  Gate out = g;
  for (qubit_t& t : out.targets) t = perm[t];
  for (qubit_t& c : out.controls) c = perm[c];
  return out;
}

/// Builds a ChunkOp from a fused block under the current permutation.
/// A remap can change the *relative* order of the block's qubits, in
/// which case the unitary/diagonal is re-permuted at plan time so kernel
/// local bit m still matches the m-th ascending physical target.
ChunkOp remap_block(const FusedOp& op, const std::vector<qubit_t>& perm,
                    std::size_t source_index) {
  const auto k = static_cast<qubit_t>(op.qubits.size());
  ChunkOp out;
  out.kind = op.diagonal ? ChunkOp::Kind::Diagonal : ChunkOp::Kind::Dense;
  out.gate_count = op.gate_count;
  out.source_index = source_index;
  std::vector<qubit_t> phys(k);
  for (qubit_t l = 0; l < k; ++l) phys[l] = perm[op.qubits[l]];
  std::vector<qubit_t> order(k);
  std::iota(order.begin(), order.end(), qubit_t{0});
  std::sort(order.begin(), order.end(), [&](qubit_t x, qubit_t y) { return phys[x] < phys[y]; });
  out.qubits.resize(k);
  bool identity = true;
  for (qubit_t m = 0; m < k; ++m) {
    out.qubits[m] = phys[order[m]];
    identity = identity && order[m] == m;
  }
  if (identity) {
    if (op.diagonal) {
      out.diag = op.diag;
    } else {
      out.unitary = op.unitary;
    }
    return out;
  }
  // Basis map: kernel index b (bit m <-> physical out.qubits[m]) selects
  // the original local index whose bit order[m] equals bit m of b.
  const index_t block = dim(k);
  std::vector<index_t> map(block);
  for (index_t b = 0; b < block; ++b) {
    index_t orig = 0;
    for (qubit_t m = 0; m < k; ++m)
      if (bits::test(b, m)) orig = bits::set(orig, order[m]);
    map[b] = orig;
  }
  if (op.diagonal) {
    out.diag.resize(block);
    for (index_t b = 0; b < block; ++b) out.diag[b] = op.diag[map[b]];
  } else {
    out.unitary = linalg::Matrix(block, block);
    for (index_t r = 0; r < block; ++r)
      for (index_t c = 0; c < block; ++c) out.unitary(r, c) = op.unitary(map[r], map[c]);
  }
  return out;
}

ChunkOp remap_item(const FusedItem& it, const std::vector<qubit_t>& perm, std::size_t idx) {
  if (it.kind == FusedItem::Kind::Block) return remap_block(it.block, perm, idx);
  ChunkOp out;
  out.kind = ChunkOp::Kind::Gate;
  out.gate = remap_gate(it.gate, perm);
  out.gate_count = 1;
  out.source_index = idx;
  return out;
}

}  // namespace

std::size_t BlockedPlan::sweeps() const {
  std::size_t total = 0;
  for (const PlanItem& it : items) total += it.kind == PlanItem::Kind::Sweep;
  return total;
}

std::size_t BlockedPlan::remaps() const {
  std::size_t total = 0;
  for (const PlanItem& it : items) total += it.kind == PlanItem::Kind::Remap;
  return total;
}

std::size_t BlockedPlan::globals() const {
  std::size_t total = 0;
  for (const PlanItem& it : items) total += it.kind == PlanItem::Kind::Global;
  return total;
}

std::size_t BlockedPlan::chunk_ops() const {
  std::size_t total = 0;
  for (const PlanItem& it : items)
    if (it.kind == PlanItem::Kind::Sweep) total += it.ops.size();
  return total;
}

std::string BlockedPlan::to_string() const {
  std::ostringstream out;
  out << "blocked plan on " << n << " qubits, chunk 2^" << chunk_width << " amplitudes: "
      << passes() << " passes for " << source_ops << " fused ops (" << sweeps()
      << " sweeps holding " << chunk_ops() << " ops, " << remaps() << " remaps, " << globals()
      << " globals)\n";
  for (const PlanItem& it : items) {
    switch (it.kind) {
      case PlanItem::Kind::Sweep:
        out << "  sweep x" << it.ops.size() << " [";
        for (std::size_t i = 0; i < it.ops.size(); ++i) {
          const ChunkOp& op = it.ops[i];
          out << (i ? " " : "")
              << (op.kind == ChunkOp::Kind::Dense
                      ? "dense"
                      : op.kind == ChunkOp::Kind::Diagonal ? "diag" : "gate");
        }
        out << "]\n";
        break;
      case PlanItem::Kind::Remap:
        out << "  remap";
        for (const auto& s : it.swaps) out << " " << s[0] << "<->" << s[1];
        out << "\n";
        break;
      case PlanItem::Kind::Global:
        out << "  global "
            << (it.global.kind == ChunkOp::Kind::Gate ? it.global.gate.to_string()
                                                      : "block x" +
                                                            std::to_string(it.global.gate_count))
            << "\n";
        break;
    }
  }
  return out.str();
}

qubit_t choose_chunk_width(qubit_t n, const ScheduleOptions& opts) {
  if (opts.chunk_width != 0) return std::min<qubit_t>(opts.chunk_width, n);
  const auto amps = static_cast<index_t>(
      std::max<std::size_t>(opts.cache_bytes / sizeof(complex_t), 2));
  qubit_t chunk = bits::log2_floor(amps);
  const int threads = max_threads();
  if (threads > 1) {
    // Shrink (down to a floor) until the cross-chunk loop has at least
    // 4 x threads chunks to balance — including when the whole state
    // fits one cache-sized chunk (n <= chunk), where a single chunk
    // would serialize work the per-op kernels used to parallelize.
    qubit_t want = 0;
    while ((index_t{1} << want) < static_cast<index_t>(4 * threads)) ++want;
    constexpr qubit_t kFloor = 10;  // 2^10 amplitudes: below this the
                                    // per-chunk dispatch overhead wins
    if (n > want && n - want < chunk)
      chunk = std::max<qubit_t>(std::min<qubit_t>(chunk, n - want), kFloor);
  }
  return std::min<qubit_t>(chunk, n);
}

BlockedPlan schedule(const FusedCircuit& fc, const ScheduleOptions& opts) {
  obs::Span plan_span("sched.plan");
  BlockedPlan plan;
  plan.n = fc.n;
  plan.chunk_width = choose_chunk_width(fc.n, opts);
  plan.source_ops = fc.items.size();
  const qubit_t chunk_w = plan.chunk_width;
  const qubit_t n = fc.n;

  std::vector<index_t> masks(fc.items.size());
  std::vector<qubit_t> widths(fc.items.size());
  for (std::size_t i = 0; i < fc.items.size(); ++i) {
    masks[i] = item_support(fc.items[i]);
    widths[i] = static_cast<qubit_t>(bits::popcount(masks[i]));
  }

  // perm: logical qubit -> physical index bit; inv: its inverse.
  std::vector<qubit_t> perm(n), inv(n);
  std::iota(perm.begin(), perm.end(), qubit_t{0});
  std::iota(inv.begin(), inv.end(), qubit_t{0});
  const auto commit_swaps = [&](const std::vector<std::array<qubit_t, 2>>& swaps) {
    for (const auto& s : swaps) {
      const qubit_t qa = inv[s[0]], qb = inv[s[1]];
      std::swap(perm[qa], perm[qb]);
      std::swap(inv[s[0]], inv[s[1]]);
    }
  };

  std::vector<ChunkOp> sweep;
  const auto flush = [&] {
    if (sweep.empty()) return;
    PlanItem item;
    item.kind = PlanItem::Kind::Sweep;
    item.ops = std::move(sweep);
    sweep.clear();
    plan.items.push_back(std::move(item));
  };
  const auto emit_global = [&](std::size_t i) {
    flush();
    PlanItem item;
    item.kind = PlanItem::Kind::Global;
    item.global = remap_item(fc.items[i], perm, i);
    plan.items.push_back(std::move(item));
  };
  const auto all_low = [&](index_t mask, const std::vector<qubit_t>& p) {
    for (qubit_t q = 0; mask >> q; ++q)
      if (bits::test(mask, q) && p[q] >= chunk_w) return false;
    return true;
  };

  for (std::size_t i = 0; i < fc.items.size(); ++i) {
    const index_t mask = masks[i];
    if (widths[i] > chunk_w) {
      // Wider than a chunk: can never be made local, stays a full pass.
      emit_global(i);
      continue;
    }
    if (all_low(mask, perm)) {
      sweep.push_back(remap_item(fc.items[i], perm, i));
      continue;
    }
    bool remapped = false;
    if (opts.remap) {
      const std::size_t window_end = std::min(fc.items.size(), i + opts.lookahead);
      constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
      std::vector<std::size_t> next_use(n, kNever);
      for (std::size_t j = i; j < window_end; ++j) {
        for (qubit_t q = 0; masks[j] >> q; ++q)
          if (bits::test(masks[j], q) && next_use[q] == kNever) next_use[q] = j;
      }
      // Candidate imports: the current op's high qubits (mandatory — the
      // op must become chunk-local), then the window's remaining high
      // working set, soonest-used first, as far as the low slots allow.
      std::vector<qubit_t> imports;
      for (qubit_t q = 0; mask >> q; ++q)
        if (bits::test(mask, q) && perm[q] >= chunk_w) imports.push_back(q);
      const std::size_t mandatory = imports.size();
      for (qubit_t q = 0; q < n; ++q)
        if (perm[q] >= chunk_w && next_use[q] != kNever && !bits::test(mask, q))
          imports.push_back(q);
      std::stable_sort(imports.begin() + static_cast<std::ptrdiff_t>(mandatory),
                       imports.end(),
                       [&](qubit_t x, qubit_t y) { return next_use[x] < next_use[y]; });
      // Farthest-next-use victim choice: evict from the low block the
      // qubits the window touches last (or never).
      std::vector<qubit_t> victims;
      for (qubit_t p = 0; p < chunk_w; ++p)
        if (!bits::test(mask, inv[p])) victims.push_back(p);
      std::stable_sort(victims.begin(), victims.end(), [&](qubit_t x, qubit_t y) {
        return next_use[inv[x]] > next_use[inv[y]];
      });
      std::vector<std::array<qubit_t, 2>> swaps;
      std::size_t v = 0;
      for (std::size_t s = 0; s < imports.size() && v < victims.size(); ++s) {
        const qubit_t victim = victims[v];
        // Optional imports only displace a qubit needed later than they
        // are (never trade a sooner-used low qubit for a later high one).
        if (s >= mandatory && next_use[imports[s]] >= next_use[inv[victim]]) break;
        swaps.push_back({perm[imports[s]], victim});
        ++v;
      }
      if (!swaps.empty()) {
        // Score the remap: how many upcoming ops become chunk-local?
        std::vector<qubit_t> trial = perm;
        for (const auto& s : swaps) {
          const qubit_t qa = inv[s[0]], qb = inv[s[1]];
          std::swap(trial[qa], trial[qb]);
        }
        // Score only ops whose locality the remap *changes*: ops already
        // chunk-local stay in sweeps either way, and ops the eviction
        // pushes out of the low block count against the remap.
        std::ptrdiff_t gain = 0;
        for (std::size_t j = i; j < window_end; ++j) {
          if (widths[j] > chunk_w) continue;
          const bool now = all_low(masks[j], perm);
          const bool then = all_low(masks[j], trial);
          gain += static_cast<std::ptrdiff_t>(then) - static_cast<std::ptrdiff_t>(now);
        }
        const bool taken = all_low(mask, trial) && gain > 0 &&
                           models::remap_profitable(static_cast<std::size_t>(gain),
                                                    opts.remap_pass_cost);
        // The cost-model decision with its inputs, as a trace marker —
        // this is what makes a "why did/didn't it remap here?" question
        // answerable from a trace alone.
        obs::instant("sched.remap_decision",
                     {{"op", static_cast<double>(i)},
                      {"gain", static_cast<double>(gain)},
                      {"pass_cost", opts.remap_pass_cost},
                      {"taken", taken ? 1.0 : 0.0}});
        if (taken) {
          flush();
          PlanItem item;
          item.kind = PlanItem::Kind::Remap;
          item.swaps = swaps;
          plan.items.push_back(std::move(item));
          commit_swaps(swaps);
          sweep.push_back(remap_item(fc.items[i], perm, i));
          remapped = true;
        }
      }
    }
    if (!remapped) emit_global(i);
  }
  flush();

  // Undo all remaps so the state leaves in logical qubit order. Each
  // round emits a disjoint transposition set that homes at least one
  // qubit per swap; any permutation settles in a few rounds.
  while (true) {
    std::vector<std::array<qubit_t, 2>> swaps;
    index_t used = 0;
    for (qubit_t p = 0; p < n; ++p) {
      const qubit_t home = inv[p];
      if (home == p || bits::test(used, p) || bits::test(used, home)) continue;
      swaps.push_back({p, home});
      used = bits::set(bits::set(used, p), home);
    }
    if (swaps.empty()) break;
    PlanItem item;
    item.kind = PlanItem::Kind::Remap;
    item.swaps = swaps;
    plan.items.push_back(std::move(item));
    commit_swaps(swaps);
  }
  if (obs::enabled()) {
    plan_span.arg("source_ops", static_cast<double>(plan.source_ops));
    plan_span.arg("items", static_cast<double>(plan.items.size()));
    plan_span.arg("chunk_width", static_cast<double>(plan.chunk_width));
  }
  return plan;
}

}  // namespace qc::sched
