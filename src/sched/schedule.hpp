// Cache-blocked sweep scheduler — the paper's §4 locality argument
// applied one level below the cluster.
//
// The §3.2 bandwidth model says gate-level simulation is memory bound:
// FusedSimulator still pays one full 2^n DRAM pass per fused block, so
// at 20+ qubits every block streams the whole state through the memory
// bus. qHiPSTER (and our dist_sv) fixes the *network* analogue of this
// by splitting qubits into local/global and remapping so most gates
// touch only rank-local memory; this module applies the identical trick
// to the cache: qubits below the chunk width L are "local" (all their
// amplitude pairs live inside one 2^L-amplitude, cache-resident chunk),
// qubits at or above L are "global".
//
// schedule() partitions a FusedCircuit into *sweeps* — maximal in-order
// runs of ops whose (remapped) support lies entirely below L. The
// executor (CachedSimulator) then walks the state vector chunk by
// chunk, applying EVERY op of the sweep to a chunk while it is cache
// resident: one DRAM pass per sweep instead of one per op, with
// parallelism moved from "inside one op" to "across chunks" (one omp
// region per sweep instead of per op).
//
// When a run's qubits are not all local, the scheduler may insert an
// explicit qubit-remap item — disjoint bit transpositions applied in
// one pass (kernels::apply_qubit_swaps) — relocating high qubits into
// the low block, exactly dist_sv's local/global exchange at cache
// level. Remapping is cost-gated through models/perf_model
// (remap_profitable): a remap pays one pass now plus a share of the
// final restore, and must be earned back by the upcoming ops it makes
// chunk-local (scored over a lookahead window). Ops that stay global
// execute as ordinary full-vector passes.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "fuse/fusion.hpp"

namespace qc::sched {

/// One op of the blocked program, with qubit labels already rewritten to
/// *physical* bit positions (the scheduler's remaps permute which
/// logical qubit lives at which index bit; unitaries/diagonals are
/// re-permuted at plan time whenever the relative order changed).
struct ChunkOp {
  enum class Kind {
    Dense,     ///< k-qubit dense unitary (kernels::apply_multi).
    Diagonal,  ///< k-qubit diagonal (kernels::apply_multi_diagonal).
    Gate,      ///< Passthrough gate (specialized single-gate fast paths).
  };
  Kind kind = Kind::Gate;
  std::vector<qubit_t> qubits;   ///< Dense/Diagonal targets, ascending physical.
  linalg::Matrix unitary;        ///< Dense payload.
  std::vector<complex_t> diag;   ///< Diagonal payload (2^k entries).
  circuit::Gate gate;            ///< Gate payload (physical labels).
  std::size_t gate_count = 1;    ///< Source gates folded into this op.
  std::size_t source_index = 0;  ///< Index of the originating FusedItem.
};

/// One element of the blocked plan, in execution order.
struct PlanItem {
  enum class Kind {
    Sweep,   ///< Chunk-local run: executed chunk by chunk, cache resident.
    Remap,   ///< Disjoint qubit transpositions (one full pass).
    Global,  ///< Single op executed as an ordinary full-vector pass.
  };
  Kind kind = Kind::Sweep;
  std::vector<ChunkOp> ops;                  ///< Sweep payload.
  std::vector<std::array<qubit_t, 2>> swaps; ///< Remap payload (physical positions).
  ChunkOp global;                            ///< Global payload.
};

/// The blocked program plus bookkeeping for benches and tests.
struct BlockedPlan {
  qubit_t n = 0;
  qubit_t chunk_width = 0;  ///< L: chunks hold 2^L amplitudes.
  std::vector<PlanItem> items;
  std::size_t source_ops = 0;  ///< FusedItems consumed by the schedule.

  [[nodiscard]] std::size_t sweeps() const;
  [[nodiscard]] std::size_t remaps() const;
  [[nodiscard]] std::size_t globals() const;
  /// Ops placed inside sweeps (chunk-local).
  [[nodiscard]] std::size_t chunk_ops() const;
  /// Full state-vector passes the plan performs: one per sweep, remap,
  /// and global item — the quantity the scheduler minimizes (the fused
  /// path would pay source_ops passes).
  [[nodiscard]] std::size_t passes() const { return items.size(); }

  /// Human-readable plan summary.
  [[nodiscard]] std::string to_string() const;
};

struct ScheduleOptions {
  /// log2 amplitudes per chunk (L). 0 = derive from cache_bytes and the
  /// thread count (choose_chunk_width).
  qubit_t chunk_width = 0;
  /// Cache budget one chunk should fit when chunk_width is auto —
  /// roughly an L2's worth; 2^16 amplitudes = 1 MiB by default.
  std::size_t cache_bytes = std::size_t{1} << 20;
  /// Cap on fused-block width inside the blocked plan. Wide fusion is
  /// justified by saving full memory passes; inside a cache-resident
  /// sweep every op already shares one pass, so blocks past ~3 qubits
  /// only add 2^k mat-vec work per amplitude (measured by
  /// bench_ablation_blocking --fusion-sweep). CachedSimulator::plan
  /// re-fuses at min(fusion max_width, this cap).
  qubit_t max_block_width = 3;
  /// Allow qubit-remap items (off: high-qubit ops stay global passes).
  bool remap = true;
  /// Ops examined when scoring a candidate remap's payoff.
  std::size_t lookahead = 64;
  /// Full passes charged to a remap in the cost model (the remap itself
  /// plus its share of the final restore).
  double remap_pass_cost = 2.0;
};

/// The chunk width schedule() will use for an n-qubit state: the
/// explicit opts.chunk_width if set, else the largest L with a
/// 2^L-amplitude chunk inside opts.cache_bytes, shrunk (never below 10,
/// the single-chunk floor) until the cross-chunk loop has at least
/// 4 x max_threads() chunks to balance, and clamped to n.
[[nodiscard]] qubit_t choose_chunk_width(qubit_t n, const ScheduleOptions& opts);

/// Builds the blocked plan for a fused circuit. The plan applies the
/// exact same unitary (to rounding): sweeps/globals preserve the fused
/// op order, and every remap is undone by plan end (the state returns
/// to logical qubit order).
[[nodiscard]] BlockedPlan schedule(const fuse::FusedCircuit& fc,
                                   const ScheduleOptions& opts = {});

}  // namespace qc::sched
