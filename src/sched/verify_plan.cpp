#include "sched/verify_plan.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "common/bits.hpp"

namespace qc::sched {

namespace {

[[noreturn]] void fail(const std::string& what) { throw PlanError("verify_plan: " + what); }

std::string at_item(std::size_t idx) { return " (plan item " + std::to_string(idx) + ")"; }

/// Checks `qs` are strictly ascending, distinct qubits below `n`.
void check_ascending_below(std::span<const qubit_t> qs, qubit_t n, const std::string& ctx) {
  for (std::size_t i = 0; i < qs.size(); ++i) {
    if (qs[i] >= n) fail(ctx + ": qubit " + std::to_string(qs[i]) + " out of range");
    if (i > 0 && qs[i] <= qs[i - 1]) fail(ctx + ": qubits not strictly ascending");
  }
}

void check_gate(const circuit::Gate& g, qubit_t n, const std::string& ctx) {
  std::vector<qubit_t> support(g.targets.begin(), g.targets.end());
  support.insert(support.end(), g.controls.begin(), g.controls.end());
  if (support.empty()) fail(ctx + ": gate with no qubits");
  if (!bits::all_distinct_below(support, n))
    fail(ctx + ": gate qubits not distinct below " + std::to_string(n));
}

void check_chunk_op(const ChunkOp& op, qubit_t width, const std::string& ctx) {
  switch (op.kind) {
    case ChunkOp::Kind::Dense: {
      check_ascending_below(op.qubits, width, ctx + " dense op");
      const index_t block = dim(static_cast<qubit_t>(op.qubits.size()));
      if (op.unitary.rows() != block || op.unitary.cols() != block)
        fail(ctx + ": dense payload is not 2^k x 2^k for its k targets");
      break;
    }
    case ChunkOp::Kind::Diagonal: {
      check_ascending_below(op.qubits, width, ctx + " diagonal op");
      if (op.diag.size() != dim(static_cast<qubit_t>(op.qubits.size())))
        fail(ctx + ": diagonal payload is not 2^k entries for its k targets");
      break;
    }
    case ChunkOp::Kind::Gate:
      check_gate(op.gate, width, ctx);
      break;
  }
  if (op.gate_count == 0) fail(ctx + ": chunk op folds zero source gates");
}

/// Validates a disjoint-transposition set below `n` and applies it to
/// the physical->logical tracking permutation `phys2log`. Disjointness
/// makes the induced amplitude-index map an involution — a bijection —
/// which is what lets the executor apply it race-free in place.
void apply_checked_swaps(std::span<const std::array<qubit_t, 2>> swaps,
                         std::vector<qubit_t>& phys2log, qubit_t n,
                         const std::string& ctx) {
  index_t seen = 0;
  for (const auto& s : swaps) {
    if (s[0] >= n || s[1] >= n) fail(ctx + ": swap position out of range");
    if (s[0] == s[1]) fail(ctx + ": swap pairs a position with itself");
    if (bits::test(seen, s[0]) || bits::test(seen, s[1]))
      fail(ctx + ": swap positions not disjoint (not a bijection)");
    seen = bits::set(bits::set(seen, s[0]), s[1]);
    std::swap(phys2log[s[0]], phys2log[s[1]]);
  }
}

/// Mirrors DistStateVector::apply_qubit_swaps' send/recv schedules and
/// checks byte conservation: for every ordered rank pair, the bytes the
/// sender's schedule posts must equal the bytes the receiver's schedule
/// expects, and each side's totals must balance. Enumerated only for
/// realistic rank counts (the cluster layer is threads-in-one-process).
void check_exchange_bytes(std::span<const std::array<qubit_t, 2>> pairs, qubit_t n,
                          qubit_t nl, const std::string& ctx) {
  std::vector<std::array<qubit_t, 2>> cross;   // {global, local}
  std::vector<std::array<qubit_t, 2>> global_pairs;
  for (const auto& p : pairs) {
    const qubit_t hi = std::max(p[0], p[1]);
    const qubit_t lo = std::min(p[0], p[1]);
    if (hi < nl) continue;  // local-local: no communication
    if (lo < nl) {
      cross.push_back({hi, lo});
    } else {
      global_pairs.push_back({lo, hi});
    }
  }
  if (cross.empty() && global_pairs.empty()) return;
  const auto k = static_cast<qubit_t>(cross.size());
  if (k > 16) fail(ctx + ": more than 16 crossing pairs (executor limit)");
  if (k > nl) fail(ctx + ": more crossing pairs than local qubits (empty sub-blocks)");
  const qubit_t ng = n - nl;
  if (ng > 10) return;  // > 1024 ranks: out of this runtime's regime
  std::sort(cross.begin(), cross.end(),
            [](const auto& a, const auto& b) { return a[1] < b[1]; });

  const int ranks = static_cast<int>(dim(ng));
  const index_t sub_bytes = (dim(nl) >> k) * sizeof(complex_t);
  const index_t blocks = dim(k);
  const auto partner = [&](int rank, index_t key) {
    auto r = static_cast<index_t>(rank);
    for (const auto& p : global_pairs) {
      const qubit_t ba = p[0] - nl, bb = p[1] - nl;
      if (bits::get(r, ba) != bits::get(r, bb)) r ^= bits::bit(ba) | bits::bit(bb);
    }
    for (qubit_t j = 0; j < k; ++j) {
      const qubit_t gbit = cross[j][0] - nl;
      r = bits::test(key, j) ? bits::set(r, gbit) : bits::clear(r, gbit);
    }
    return static_cast<int>(r);
  };

  // sent[{src, dst}] from src's send loop; expected[{dst, src}] from
  // dst's receive loop — independent walks of the same schedule.
  std::map<std::pair<int, int>, index_t> sent, expected;
  for (int r = 0; r < ranks; ++r) {
    for (index_t key = 0; key < blocks; ++key) {
      const int peer = partner(r, key);
      if (peer < 0 || peer >= ranks) fail(ctx + ": exchange partner outside rank space");
      if (peer == r) continue;
      sent[{r, peer}] += sub_bytes;
      expected[{r, peer}] += sub_bytes;  // dst r expects from src peer
    }
  }
  for (const auto& [edge, bytes] : sent) {
    const auto it = expected.find({edge.second, edge.first});
    if (it == expected.end() || it->second != bytes) {
      std::ostringstream msg;
      msg << ctx << ": exchange does not conserve bytes (rank " << edge.first << " sends "
          << bytes << " B to rank " << edge.second << ", which expects "
          << (it == expected.end() ? 0 : it->second) << " B)";
      fail(msg.str());
    }
  }
}

}  // namespace

void verify_plan(const BlockedPlan& plan, std::size_t cache_bytes) {
  if (plan.n == 0) fail("blocked plan on zero qubits");
  if (plan.chunk_width == 0 || plan.chunk_width > plan.n)
    fail("chunk width " + std::to_string(plan.chunk_width) + " outside [1, n]");
  if (cache_bytes != 0 && dim(plan.chunk_width) * sizeof(complex_t) > cache_bytes)
    fail("chunk of 2^" + std::to_string(plan.chunk_width) +
         " amplitudes exceeds the cache budget of " + std::to_string(cache_bytes) + " B");

  // phys2log[p] = logical qubit currently at physical bit p. Remaps
  // permute it; the plan must return to logical order by its end.
  std::vector<qubit_t> phys2log(plan.n);
  std::iota(phys2log.begin(), phys2log.end(), qubit_t{0});

  // Source coverage: chunk ops in plan order must consume source ops
  // 0, 1, ..., source_ops-1 exactly once each, in order. Together with
  // sweep locality below, this is the executor's correctness argument:
  // chunks partition the index space, every sweep op's support lies
  // inside one chunk, so each op touches every amplitude exactly once.
  std::size_t next_source = 0;
  const auto consume = [&](const ChunkOp& op, const std::string& ctx) {
    if (op.source_index != next_source)
      fail(ctx + ": source op " + std::to_string(op.source_index) +
           " out of order (expected " + std::to_string(next_source) + ")");
    ++next_source;
  };

  for (std::size_t i = 0; i < plan.items.size(); ++i) {
    const PlanItem& item = plan.items[i];
    switch (item.kind) {
      case PlanItem::Kind::Sweep: {
        if (item.ops.empty()) fail("empty sweep" + at_item(i));
        for (const ChunkOp& op : item.ops) {
          // Sweep ops must be chunk-local: support below chunk_width.
          check_chunk_op(op, plan.chunk_width, "sweep" + at_item(i));
          consume(op, "sweep" + at_item(i));
        }
        break;
      }
      case PlanItem::Kind::Remap:
        if (item.swaps.empty()) fail("empty remap" + at_item(i));
        apply_checked_swaps(item.swaps, phys2log, plan.n, "remap" + at_item(i));
        break;
      case PlanItem::Kind::Global:
        check_chunk_op(item.global, plan.n, "global" + at_item(i));
        consume(item.global, "global" + at_item(i));
        break;
    }
  }
  if (next_source != plan.source_ops)
    fail("plan covers " + std::to_string(next_source) + " of " +
         std::to_string(plan.source_ops) + " source ops");
  for (qubit_t p = 0; p < plan.n; ++p)
    if (phys2log[p] != p)
      fail("plan ends with qubits permuted (physical " + std::to_string(p) + " holds logical " +
           std::to_string(phys2log[p]) + "); every remap must be undone");
}

void verify_plan(const DistPlan& plan, std::span<const qubit_t> initial_perm,
                 std::vector<qubit_t>* final_perm) {
  if (plan.n == 0) fail("dist plan on zero qubits");
  if (plan.local_qubits == 0 || plan.local_qubits > plan.n)
    fail("local qubit count outside [1, n]");
  const qubit_t n = plan.n;
  const qubit_t nl = plan.local_qubits;

  // log2phys[q] = physical position of logical qubit q (dist_schedule's
  // `perm`). Track its inverse too so the end state is reportable.
  std::vector<qubit_t> log2phys(n);
  if (initial_perm.empty()) {
    std::iota(log2phys.begin(), log2phys.end(), qubit_t{0});
  } else {
    if (initial_perm.size() != n) fail("initial_perm size does not match qubit count");
    index_t seen = 0;
    for (qubit_t q = 0; q < n; ++q) {
      if (initial_perm[q] >= n || bits::test(seen, initial_perm[q]))
        fail("initial_perm is not a permutation");
      seen = bits::set(seen, initial_perm[q]);
      log2phys[q] = initial_perm[q];
    }
  }
  std::vector<qubit_t> phys2log(n);
  for (qubit_t q = 0; q < n; ++q) phys2log[log2phys[q]] = q;

  std::size_t gates_covered = 0;
  for (std::size_t i = 0; i < plan.items.size(); ++i) {
    const DistPlanItem& item = plan.items[i];
    switch (item.kind) {
      case DistPlanItem::Kind::Local: {
        if (item.local.n != nl)
          fail("local segment not planned on the " + std::to_string(nl) +
               "-qubit local block" + at_item(i));
        verify_plan(item.local);  // recursively: coverage, remaps, widths
        for (const PlanItem& it : item.local.items) {
          if (it.kind == PlanItem::Kind::Sweep)
            for (const ChunkOp& op : it.ops) gates_covered += op.gate_count;
          else if (it.kind == PlanItem::Kind::Global)
            gates_covered += it.global.gate_count;
        }
        break;
      }
      case DistPlanItem::Kind::Exchange:
        if (item.swaps.empty()) fail("empty exchange" + at_item(i));
        apply_checked_swaps(item.swaps, phys2log, n, "exchange" + at_item(i));
        check_exchange_bytes(item.swaps, n, nl, "exchange" + at_item(i));
        break;
      case DistPlanItem::Kind::Gate:
        check_gate(item.gate, n, "per-gate item" + at_item(i));
        gates_covered += 1;
        break;
    }
  }
  if (gates_covered != plan.source_gates)
    fail("plan covers " + std::to_string(gates_covered) + " of " +
         std::to_string(plan.source_gates) + " source gates");

  for (qubit_t q = 0; q < n; ++q) log2phys[phys2log[q]] = q;  // rebuild inverse
  if (final_perm != nullptr) {
    *final_perm = log2phys;
    return;
  }
  for (qubit_t q = 0; q < n; ++q)
    if (log2phys[q] != q)
      fail("plan ends with qubits permuted (logical " + std::to_string(q) + " at physical " +
           std::to_string(log2phys[q]) + "); a self-contained plan must restore logical order");
}

}  // namespace qc::sched
