// Static plan verification — the invariant layer under the schedulers.
//
// Both schedulers emit *plans* (BlockedPlan, DistPlan) that a separate
// executor later applies to live amplitudes; a malformed plan corrupts
// the state silently, because every kernel trusts its index arithmetic.
// verify_plan() re-derives the schedulers' correctness argument from the
// plan alone, with no access to the circuit that produced it:
//
//  * coverage: each source op appears as exactly one chunk op, in source
//    order — combined with sweep locality (every sweep op's support
//    below the chunk width) this is the proof that the chunk-partition
//    execution applies every op to every amplitude exactly once, in
//    order;
//  * remaps/exchanges are sets of disjoint transpositions (hence
//    bijections on the index space), and the composed permutation
//    returns to the expected order by plan end;
//  * chunk widths stay within the cache budget they were chosen for;
//  * distributed exchange schedules conserve bytes: for every rank pair
//    the bytes one side's send schedule posts equal the bytes the other
//    side's receive schedule expects (re-derived independently from the
//    swap set, mirroring DistStateVector::apply_qubit_swaps).
//
// verify_plan always runs its checks when called (the standalone
// tools/verify_plan entry point works in any build); the *automatic*
// wiring into execute_blocked / dist_schedule is compiled in only under
// QC_ENABLE_CHECKS (Debug and sanitizer builds — see common/check.hpp).
// Violations throw PlanError.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"
#include "sched/dist_schedule.hpp"

namespace qc::sched {

/// Thrown by verify_plan on a malformed plan.
struct PlanError : CheckError {
  explicit PlanError(const std::string& what) : CheckError(what) {}
};

/// Verifies a cache-blocked plan. `cache_bytes` != 0 additionally checks
/// the chunk fits the budget it was scheduled against. Throws PlanError.
void verify_plan(const BlockedPlan& plan, std::size_t cache_bytes = 0);

/// Verifies a distributed plan. `initial_perm` is the logical->physical
/// qubit permutation the plan starts from (empty = identity, the
/// self-contained case). With `final_perm` == nullptr the plan must
/// restore `initial_perm`... i.e. end exactly where a self-contained
/// plan ends: logical order. A resident caller (dist_schedule's perm_io
/// chaining) passes `final_perm` to receive the permutation the state is
/// left in instead. Throws PlanError.
void verify_plan(const DistPlan& plan, std::span<const qubit_t> initial_perm = {},
                 std::vector<qubit_t>* final_perm = nullptr);

}  // namespace qc::sched
