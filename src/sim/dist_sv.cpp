#include "sim/dist_sv.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "cluster/fault.hpp"
#include "models/perf_model.hpp"
#include "obs/trace.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"

namespace qc::sim {

using circuit::Gate;
using circuit::GateKind;

template <typename T>
BasicDistStateVector<T>::BasicDistStateVector(cluster::Comm& comm, qubit_t n_qubits)
    : comm_(&comm), n_(n_qubits) {
  const int p = comm.size();
  if (!bits::is_pow2(static_cast<index_t>(p)))
    throw std::invalid_argument("DistStateVector: rank count must be a power of two");
  const qubit_t k = bits::log2_floor(static_cast<index_t>(p));
  if (k > n_) throw std::invalid_argument("DistStateVector: more ranks than amplitudes");
  nl_ = n_ - k;
  cluster::fault_point("dist.alloc", comm.rank());
  local_.assign(dim(nl_), value_type{});
  scratch_.assign(dim(nl_), value_type{});
  if (comm.rank() == 0) local_[0] = value_type{T{1}};
}

template <typename T>
void BasicDistStateVector<T>::set_basis(index_t i) {
  if (i >= dim(n_)) throw std::invalid_argument("set_basis: index out of range");
  std::fill(local_.begin(), local_.end(), value_type{});
  const index_t chunk = dim(nl_);
  if (i / chunk == static_cast<index_t>(comm_->rank())) local_[i % chunk] = value_type{T{1}};
}

template <typename T>
void BasicDistStateVector<T>::randomize(std::uint64_t seed) {
  const index_t chunk = dim(nl_);
  fill_random_slabs<T>({local_.data(), local_.size()},
                       static_cast<index_t>(comm_->rank()) * chunk, seed);
  const double total = norm_sq();
  const T f = static_cast<T>(1.0 / std::sqrt(total));
#pragma omp parallel for if (worth_parallelizing(chunk))
  for (index_t i = 0; i < chunk; ++i) local_[i] *= f;
}

template <typename T>
double BasicDistStateVector<T>::norm_sq() const {
  double sum = 0;
#pragma omp parallel for reduction(+ : sum) if (worth_parallelizing(local_.size()))
  for (index_t i = 0; i < local_.size(); ++i) {
    const double re = local_[i].real(), im = local_[i].imag();
    sum += re * re + im * im;
  }
  return comm_->allreduce_sum(sum);
}

template <typename T>
double BasicDistStateVector<T>::max_abs_diff(const BasicDistStateVector& other) const {
  if (other.n_ != n_) throw std::invalid_argument("max_abs_diff: qubit count mismatch");
  double m = 0;
#pragma omp parallel for reduction(max : m) if (worth_parallelizing(local_.size()))
  for (index_t i = 0; i < local_.size(); ++i)
    m = std::max(m, std::abs(static_cast<complex_t>(local_[i]) -
                             static_cast<complex_t>(other.local_[i])));
  return comm_->allreduce_max(m);
}

template <typename T>
double BasicDistStateVector<T>::probability_of_one(qubit_t q) const {
  double sum = 0;
  if (q < nl_) {
#pragma omp parallel for reduction(+ : sum) if (worth_parallelizing(local_.size()))
    for (index_t i = 0; i < local_.size(); ++i)
      if (bits::test(i, q)) {
        const double re = local_[i].real(), im = local_[i].imag();
        sum += re * re + im * im;
      }
  } else if (bits::test(static_cast<index_t>(comm_->rank()), q - nl_)) {
#pragma omp parallel for reduction(+ : sum) if (worth_parallelizing(local_.size()))
    for (index_t i = 0; i < local_.size(); ++i) {
      const double re = local_[i].real(), im = local_[i].imag();
      sum += re * re + im * im;
    }
  }
  return comm_->allreduce_sum(sum);
}

template <typename T>
void BasicDistStateVector<T>::exchange_and_combine(qubit_t rank_bit, const kernels::U2T<T>& u,
                                                   index_t local_cmask, index_t) {
  // The per-gate pairwise chunk exchange of Eq. 6 — the span carries the
  // bytes it moved plus the model's predicted time, so the model-drift
  // report can compare Eq. 6 against this machine rank by rank. Both the
  // wire bytes and the prediction scale with sizeof(value_type): an fp32
  // chunk is half the fp64 traffic.
  obs::Span span("dist.exchange");
  if (obs::enabled()) {
    span.arg("bytes", static_cast<double>(local_.size() * sizeof(value_type)));
    span.arg("pred_s", models::t_chunk_exchange_seconds(nl_, {}, sizeof(value_type)));
  }
  cluster::fault_point("dist.exchange", comm_->rank());
  const int partner = comm_->rank() ^ static_cast<int>(bits::bit(rank_bit));
  const int my_bit = (comm_->rank() >> rank_bit) & 1;
  comm_->template sendrecv<value_type>(partner, {local_.data(), local_.size()},
                                       {scratch_.data(), scratch_.size()});
  bytes_comm_ += local_.size() * sizeof(value_type);

  const auto pos = kernels::sorted_bit_positions(local_cmask, {});
  const kernels::BitExpander expand{pos};
  const index_t count = dim(nl_) >> pos.size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i = expand(j) | local_cmask;
    const value_type own = local_[i];
    const value_type other = scratch_[i];
    const value_type x0 = my_bit ? other : own;
    const value_type x1 = my_bit ? own : other;
    local_[i] = my_bit ? (u.m10 * x0 + u.m11 * x1) : (u.m00 * x0 + u.m01 * x1);
  }
}

template <typename T>
void BasicDistStateVector<T>::apply_gate(const Gate& g, CommPolicy policy) {
  // SWAP lowers to three CNOTs; each is handled by the cases below.
  if (g.kind == GateKind::Swap) {
    const qubit_t qa = g.targets[0], qb = g.targets[1];
    Gate c1 = circuit::make_controlled(GateKind::X, qa, qb);
    Gate c2 = circuit::make_controlled(GateKind::X, qb, qa);
    c1.controls.insert(c1.controls.end(), g.controls.begin(), g.controls.end());
    c2.controls.insert(c2.controls.end(), g.controls.begin(), g.controls.end());
    apply_gate(c1, policy);
    apply_gate(c2, policy);
    apply_gate(c1, policy);
    return;
  }

  // Split controls into local and global; a rank whose global control
  // bits are not all set holds amplitudes the gate leaves untouched.
  index_t local_cmask = 0;
  bool globals_satisfied = true;
  for (qubit_t c : g.controls) {
    if (c < nl_) {
      local_cmask = bits::set(local_cmask, c);
    } else if (!bits::test(static_cast<index_t>(comm_->rank()), c - nl_)) {
      globals_satisfied = false;
    }
  }

  const qubit_t t = g.targets[0];
  if (t < nl_) {
    if (!globals_satisfied) return;  // identity on this chunk, no comm
    Gate local_gate = g;
    local_gate.controls.clear();
    for (qubit_t c : g.controls)
      if (c < nl_) local_gate.controls.push_back(c);
    if (policy == CommPolicy::Specialized) {
      // Apply through the specialized kernels on the local window.
      const auto a = std::span<value_type>(local_.data(), local_.size());
      if (local_gate.kind == GateKind::X) {
        kernels::apply_x<T>(a, nl_, t, local_cmask);
      } else if (local_gate.diagonal()) {
        const auto [d0, d1] = diagonal_entries(local_gate);
        kernels::apply_diagonal<T>(a, nl_, t, static_cast<value_type>(d0),
                                   static_cast<value_type>(d1), local_cmask);
      } else {
        kernels::apply_folded<T>(a, nl_, t, local_cmask,
                                 kernels::u2_cast<T>(target_block(local_gate)));
      }
    } else {
      kernels::apply_generic_masked<T>({local_.data(), local_.size()}, nl_, t, local_cmask,
                                       kernels::u2_cast<T>(target_block(local_gate)),
                                       /*parallel=*/true);
    }
    return;
  }

  // Global target qubit.
  const qubit_t rank_bit = t - nl_;
  if (g.diagonal() && policy == CommPolicy::Specialized) {
    // No communication: our whole chunk shares the target bit value.
    if (!globals_satisfied) return;
    const auto [d0, d1] = diagonal_entries(g);
    const value_type factor = static_cast<value_type>(
        bits::test(static_cast<index_t>(comm_->rank()), rank_bit) ? d1 : d0);
    if (factor == value_type{T{1}}) return;
    const auto pos = kernels::sorted_bit_positions(local_cmask, {});
    const kernels::BitExpander expand{pos};
    const index_t count = dim(nl_) >> pos.size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
    for (index_t j = 0; j < count; ++j) local_[expand(j) | local_cmask] *= factor;
    return;
  }

  // Exchange path. Note the pair partner has identical global control
  // bits (it differs only in the target bit), so "skip" decisions agree.
  if (!globals_satisfied) return;
  if (policy == CommPolicy::Exchange) {
    // Unspecialized: the whole chunk participates regardless of local
    // controls; fold the control test into the 2x2 by expanding... the
    // generic simulator still exchanges the full chunk, then applies the
    // masked combine.
    exchange_and_combine(rank_bit, kernels::u2_cast<T>(target_block(g)), local_cmask, 0);
    return;
  }
  exchange_and_combine(rank_bit, kernels::u2_cast<T>(target_block(g)), local_cmask, 0);
}

template <typename T>
void BasicDistStateVector<T>::run(const circuit::Circuit& c, CommPolicy policy) {
  if (c.qubits() != n_) throw std::invalid_argument("run: qubit count mismatch");
  for (const Gate& g : c.gates()) apply_gate(g, policy);
}

template <typename T>
void BasicDistStateVector<T>::apply_qubit_swaps(
    std::span<const std::array<qubit_t, 2>> pairs) {
  // One exchange pass (the scheduler's global<->local remap unit): the
  // span's prediction is the cost the remap decision was priced at — a
  // chunk exchange when ranks communicate, a local memory pass when the
  // permutation stays within the chunk.
  obs::Span span("dist.exchange_pass");
  cluster::fault_point("dist.exchange_pass", comm_->rank());
  const std::uint64_t bytes_before = bytes_comm_;
  // Split the disjoint transposition set into the class each level can
  // handle: local-local pairs permute the chunk in place, everything
  // touching a global qubit joins one collective chunk permutation.
  index_t seen = 0;
  std::vector<std::array<qubit_t, 2>> local_pairs;
  std::vector<std::array<qubit_t, 2>> cross;  // {global, local}, sorted by local
  std::vector<std::array<qubit_t, 2>> global_pairs;
  for (const auto& p : pairs) {
    const qubit_t hi = std::max(p[0], p[1]);
    const qubit_t lo = std::min(p[0], p[1]);
    if (hi >= n_ || hi == lo || bits::test(seen, hi) || bits::test(seen, lo))
      throw std::invalid_argument("apply_qubit_swaps: pairs must be disjoint qubits below n");
    seen = bits::set(bits::set(seen, hi), lo);
    if (hi < nl_) {
      local_pairs.push_back({lo, hi});
    } else if (lo < nl_) {
      cross.push_back({hi, lo});
    } else {
      global_pairs.push_back({lo, hi});
    }
  }
  // Disjoint transpositions commute, so the local part can run first.
  if (!local_pairs.empty()) kernels::apply_qubit_swaps<T>(local(), nl_, local_pairs);
  if (cross.empty() && global_pairs.empty()) {
    if (obs::enabled() && !local_pairs.empty())
      span.arg("pred_s", models::t_state_pass_seconds(nl_, {}, sizeof(value_type)));
    return;
  }

  std::sort(cross.begin(), cross.end(),
            [](const auto& a, const auto& b) { return a[1] < b[1]; });
  const auto k = static_cast<qubit_t>(cross.size());
  if (k > 16) throw std::invalid_argument("apply_qubit_swaps: too many crossing pairs");
  std::vector<qubit_t> low_pos(k);
  for (qubit_t j = 0; j < k; ++j) low_pos[j] = cross[j][1];

  const int rank = comm_->rank();
  // Rank with this rank's global-global bits swapped — every sub-block's
  // destination shares this base.
  int gg_rank = rank;
  for (const auto& p : global_pairs) {
    const qubit_t ba = p[0] - nl_, bb = p[1] - nl_;
    if (bits::get(static_cast<index_t>(gg_rank), ba) !=
        bits::get(static_cast<index_t>(gg_rank), bb))
      gg_rank ^= static_cast<int>(bits::bit(ba) | bits::bit(bb));
  }
  const index_t sub = dim(nl_) >> k;  // amplitudes per sub-block
  const index_t blocks = dim(k);
  const kernels::BitExpander expand{low_pos};
  const auto deposit = [&](index_t key) {
    index_t d = 0;
    for (qubit_t j = 0; j < k; ++j)
      if (bits::test(key, j)) d = bits::set(d, low_pos[j]);
    return d;
  };
  const auto partner = [&](index_t key) {
    auto r = static_cast<index_t>(gg_rank);
    for (qubit_t j = 0; j < k; ++j) {
      const qubit_t bit = cross[j][0] - nl_;
      r = bits::test(key, j) ? bits::set(r, bit) : bits::clear(r, bit);
    }
    return static_cast<int>(r);
  };

  // Gather sub-block `key` (elements whose exchanged local bits equal
  // key, ordered by the remaining bits) into scratch slot `key`.
  for (index_t key = 0; key < blocks; ++key) {
    value_type* out = scratch_.data() + key * sub;
    const index_t base = deposit(key);
#pragma omp parallel for schedule(static) if (worth_parallelizing(sub))
    for (index_t j = 0; j < sub; ++j) out[j] = local_[expand(j) | base];
  }
  // Eager sends are buffered, so posting every send before any receive
  // cannot deadlock. Sub-block `key` goes to the rank whose exchanged
  // global bits equal key; the block arriving from that same rank is the
  // one keyed by OUR old global bits and scatters into slot `key`.
  for (index_t key = 0; key < blocks; ++key) {
    const int dst = partner(key);
    if (dst == rank) continue;
    comm_->template send<value_type>(dst, {scratch_.data() + key * sub, sub});
    bytes_comm_ += sub * sizeof(value_type);
  }
  for (index_t key = 0; key < blocks; ++key) {
    const int src = partner(key);
    if (src == rank) continue;
    comm_->template recv<value_type>(src, {scratch_.data() + key * sub, sub});
  }
  // Scatter: incoming slot `key` lands where the exchanged local bits
  // equal key (the self slot is the identity and scatters back as-is).
  for (index_t key = 0; key < blocks; ++key) {
    const value_type* in = scratch_.data() + key * sub;
    const index_t base = deposit(key);
#pragma omp parallel for schedule(static) if (worth_parallelizing(sub))
    for (index_t j = 0; j < sub; ++j) local_[expand(j) | base] = in[j];
  }
  if (obs::enabled()) {
    span.arg("bytes", static_cast<double>(bytes_comm_ - bytes_before));
    span.arg("pred_s", models::t_chunk_exchange_seconds(nl_, {}, sizeof(value_type)));
  }
}

template <typename T>
std::vector<double> BasicDistStateVector<T>::register_distribution(qubit_t offset,
                                                                   qubit_t width) const {
  if (offset + width > n_)
    throw std::invalid_argument("register_distribution: bad register");
  std::vector<qubit_t> qubits(width);
  std::iota(qubits.begin(), qubits.end(), offset);
  return register_distribution(std::span<const qubit_t>(qubits));
}

template <typename T>
std::vector<double> BasicDistStateVector<T>::register_distribution(
    std::span<const qubit_t> qubits) const {
  const auto width = static_cast<qubit_t>(qubits.size());
  index_t seen = 0;
  for (const qubit_t q : qubits) {
    if (q >= n_ || bits::test(seen, q))
      throw std::invalid_argument("register_distribution: qubits must be distinct, < n");
    seen = bits::set(seen, q);
  }
  // Split the register into its local bits (vary within the chunk) and
  // its global bits (constant across the chunk: read from the rank id),
  // so the inner loop only gathers the varying part.
  index_t rank_part = 0;
  std::vector<std::array<qubit_t, 2>> local_bits;  // {physical, outcome bit}
  const auto rank = static_cast<index_t>(comm_->rank());
  for (qubit_t j = 0; j < width; ++j) {
    if (qubits[j] < nl_) {
      local_bits.push_back({qubits[j], j});
    } else if (bits::test(rank, qubits[j] - nl_)) {
      rank_part = bits::set(rank_part, j);
    }
  }
  std::vector<double> dist(dim(width), 0.0);
  for (index_t i = 0; i < local_.size(); ++i) {
    index_t outcome = rank_part;
    for (const auto& [phys, bit] : local_bits)
      if (bits::test(i, phys)) outcome = bits::set(outcome, bit);
    const double re = local_[i].real(), im = local_[i].imag();
    dist[outcome] += re * re + im * im;
  }
  std::vector<double> all(dist.size() * static_cast<std::size_t>(comm_->size()));
  comm_->template allgather<double>(dist, all);
  std::fill(dist.begin(), dist.end(), 0.0);
  for (std::size_t r = 0; r < static_cast<std::size_t>(comm_->size()); ++r)
    for (std::size_t v = 0; v < dist.size(); ++v) dist[v] += all[r * dist.size() + v];
  return dist;
}

template <typename T>
index_t BasicDistStateVector<T>::sample(Rng& rng) const {
  // Two-level inverse CDF: pick the owning rank from the rank totals,
  // then the outcome inside that rank's chunk via the shared sampler
  // (which never returns a zero-probability outcome). Every rank draws
  // the same u from its identically-seeded rng, so every rank computes
  // the same owner and learns the same outcome via broadcast.
  // The shared draw is consumed *before* any communication: if the
  // collective below aborts (peer failure, timeout, injected fault),
  // every rank has still advanced its identically-seeded stream by
  // exactly one draw, so the streams stay synchronized for whatever
  // runs next — a retry of this sample or a different collective.
  // Drawing after the allgather would let an abort leave some ranks
  // one draw ahead of others, silently desynchronizing every
  // subsequent shared decision.
  const double unit_draw = rng.uniform();
  const SampleCdf local_cdf = SampleCdf::from_amplitudes<T>(local());
  const double my_total = local_cdf.total();
  const int p = comm_->size();
  std::vector<double> totals(static_cast<std::size_t>(p));
  comm_->template allgather<double>(std::span<const double>(&my_total, 1), totals);
  double grand = 0;
  for (const double t : totals) grand += t;
  if (grand <= 0) throw std::runtime_error("sample: distribution has no support");
  const double u = unit_draw * grand;

  int owner = -1;
  double before = 0;
  for (int r = 0; r < p; ++r) {
    const double t = totals[static_cast<std::size_t>(r)];
    if (t > 0 && u < before + t) {
      owner = r;
      break;
    }
    before += t;
  }
  if (owner < 0) {
    // Floating-point leftover past the sum: last rank with support.
    before = grand;
    for (int r = p; r-- > 0;) {
      const double t = totals[static_cast<std::size_t>(r)];
      before -= t;
      if (t > 0) {
        owner = r;
        break;
      }
    }
  }
  index_t outcome = 0;
  if (comm_->rank() == owner)
    outcome = (static_cast<index_t>(owner) << nl_) | local_cdf.sample_scaled(u - before);
  comm_->template broadcast<index_t>(owner, std::span<index_t>(&outcome, 1));
  return outcome;
}

template <typename T>
void BasicDistStateVector<T>::collapse(qubit_t q, int outcome) {
  if (q >= n_) throw std::invalid_argument("collapse: bad qubit");
  const double p1 = probability_of_one(q);  // collective: identical on all ranks
  const double p = outcome == 1 ? p1 : 1.0 - p1;
  if (p < 1e-300) throw std::runtime_error("collapse: zero-probability outcome");
  const T f = static_cast<T>(1.0 / std::sqrt(p));
  const bool keep_one = outcome == 1;
  if (q < nl_) {
#pragma omp parallel for if (worth_parallelizing(local_.size()))
    for (index_t i = 0; i < local_.size(); ++i) {
      if (bits::test(i, q) == keep_one) {
        local_[i] *= f;
      } else {
        local_[i] = value_type{};
      }
    }
    return;
  }
  // Global qubit: the whole chunk shares the bit value — scale or zero.
  const bool mine_one = bits::test(static_cast<index_t>(comm_->rank()), q - nl_);
  const value_type factor = mine_one == keep_one ? value_type{f} : value_type{};
#pragma omp parallel for if (worth_parallelizing(local_.size()))
  for (index_t i = 0; i < local_.size(); ++i) local_[i] *= factor;
}

template <typename T>
BasicStateVector<T> BasicDistStateVector<T>::gather_all() const {
  BasicStateVector<T> sv(n_);
  comm_->template allgather<value_type>({local_.data(), local_.size()}, sv.amplitudes());
  return sv;
}

template class BasicDistStateVector<float>;
template class BasicDistStateVector<double>;

}  // namespace qc::sim
