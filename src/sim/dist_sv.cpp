#include "sim/dist_sv.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/simulator.hpp"

namespace qc::sim {

using circuit::Gate;
using circuit::GateKind;

DistStateVector::DistStateVector(cluster::Comm& comm, qubit_t n_qubits)
    : comm_(&comm), n_(n_qubits) {
  const int p = comm.size();
  if (!bits::is_pow2(static_cast<index_t>(p)))
    throw std::invalid_argument("DistStateVector: rank count must be a power of two");
  const qubit_t k = bits::log2_floor(static_cast<index_t>(p));
  if (k > n_) throw std::invalid_argument("DistStateVector: more ranks than amplitudes");
  nl_ = n_ - k;
  local_.assign(dim(nl_), complex_t{});
  scratch_.assign(dim(nl_), complex_t{});
  if (comm.rank() == 0) local_[0] = 1.0;
}

void DistStateVector::set_basis(index_t i) {
  if (i >= dim(n_)) throw std::invalid_argument("set_basis: index out of range");
  std::fill(local_.begin(), local_.end(), complex_t{});
  const index_t chunk = dim(nl_);
  if (i / chunk == static_cast<index_t>(comm_->rank())) local_[i % chunk] = 1.0;
}

void DistStateVector::randomize(std::uint64_t seed) {
  const index_t chunk = dim(nl_);
  fill_random_slabs({local_.data(), local_.size()},
                    static_cast<index_t>(comm_->rank()) * chunk, seed);
  const double total = norm_sq();
  const double f = 1.0 / std::sqrt(total);
#pragma omp parallel for if (worth_parallelizing(chunk))
  for (index_t i = 0; i < chunk; ++i) local_[i] *= f;
}

double DistStateVector::norm_sq() const {
  double sum = 0;
#pragma omp parallel for reduction(+ : sum) if (worth_parallelizing(local_.size()))
  for (index_t i = 0; i < local_.size(); ++i) sum += std::norm(local_[i]);
  return comm_->allreduce_sum(sum);
}

double DistStateVector::max_abs_diff(const DistStateVector& other) const {
  if (other.n_ != n_) throw std::invalid_argument("max_abs_diff: qubit count mismatch");
  double m = 0;
#pragma omp parallel for reduction(max : m) if (worth_parallelizing(local_.size()))
  for (index_t i = 0; i < local_.size(); ++i)
    m = std::max(m, std::abs(local_[i] - other.local_[i]));
  return comm_->allreduce_max(m);
}

double DistStateVector::probability_of_one(qubit_t q) const {
  double sum = 0;
  if (q < nl_) {
#pragma omp parallel for reduction(+ : sum) if (worth_parallelizing(local_.size()))
    for (index_t i = 0; i < local_.size(); ++i)
      if (bits::test(i, q)) sum += std::norm(local_[i]);
  } else if (bits::test(static_cast<index_t>(comm_->rank()), q - nl_)) {
#pragma omp parallel for reduction(+ : sum) if (worth_parallelizing(local_.size()))
    for (index_t i = 0; i < local_.size(); ++i) sum += std::norm(local_[i]);
  }
  return comm_->allreduce_sum(sum);
}

void DistStateVector::exchange_and_combine(qubit_t rank_bit, const kernels::U2& u,
                                           index_t local_cmask, index_t) {
  const int partner = comm_->rank() ^ (1 << rank_bit);
  const int my_bit = (comm_->rank() >> rank_bit) & 1;
  comm_->sendrecv<complex_t>(partner, {local_.data(), local_.size()},
                             {scratch_.data(), scratch_.size()});
  bytes_comm_ += local_.size() * sizeof(complex_t);

  const auto pos = kernels::sorted_bit_positions(local_cmask, {});
  const kernels::BitExpander expand{pos};
  const index_t count = dim(nl_) >> pos.size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i = expand(j) | local_cmask;
    const complex_t own = local_[i];
    const complex_t other = scratch_[i];
    const complex_t x0 = my_bit ? other : own;
    const complex_t x1 = my_bit ? own : other;
    local_[i] = my_bit ? (u.m10 * x0 + u.m11 * x1) : (u.m00 * x0 + u.m01 * x1);
  }
}

void DistStateVector::apply_gate(const Gate& g, CommPolicy policy) {
  // SWAP lowers to three CNOTs; each is handled by the cases below.
  if (g.kind == GateKind::Swap) {
    const qubit_t qa = g.targets[0], qb = g.targets[1];
    Gate c1 = circuit::make_controlled(GateKind::X, qa, qb);
    Gate c2 = circuit::make_controlled(GateKind::X, qb, qa);
    c1.controls.insert(c1.controls.end(), g.controls.begin(), g.controls.end());
    c2.controls.insert(c2.controls.end(), g.controls.begin(), g.controls.end());
    apply_gate(c1, policy);
    apply_gate(c2, policy);
    apply_gate(c1, policy);
    return;
  }

  // Split controls into local and global; a rank whose global control
  // bits are not all set holds amplitudes the gate leaves untouched.
  index_t local_cmask = 0;
  bool globals_satisfied = true;
  for (qubit_t c : g.controls) {
    if (c < nl_) {
      local_cmask = bits::set(local_cmask, c);
    } else if (!bits::test(static_cast<index_t>(comm_->rank()), c - nl_)) {
      globals_satisfied = false;
    }
  }

  const qubit_t t = g.targets[0];
  if (t < nl_) {
    if (!globals_satisfied) return;  // identity on this chunk, no comm
    Gate local_gate = g;
    local_gate.controls.clear();
    for (qubit_t c : g.controls)
      if (c < nl_) local_gate.controls.push_back(c);
    if (policy == CommPolicy::Specialized) {
      // Apply through the specialized kernels on the local window.
      const auto a = std::span<complex_t>(local_.data(), local_.size());
      if (local_gate.kind == GateKind::X) {
        kernels::apply_x(a, nl_, t, local_cmask);
      } else if (local_gate.diagonal()) {
        const auto [d0, d1] = diagonal_entries(local_gate);
        kernels::apply_diagonal(a, nl_, t, d0, d1, local_cmask);
      } else {
        kernels::apply_folded(a, nl_, t, local_cmask, target_block(local_gate));
      }
    } else {
      kernels::apply_generic_masked({local_.data(), local_.size()}, nl_, t, local_cmask,
                                    target_block(local_gate), /*parallel=*/true);
    }
    return;
  }

  // Global target qubit.
  const qubit_t rank_bit = t - nl_;
  if (g.diagonal() && policy == CommPolicy::Specialized) {
    // No communication: our whole chunk shares the target bit value.
    if (!globals_satisfied) return;
    const auto [d0, d1] = diagonal_entries(g);
    const complex_t factor =
        bits::test(static_cast<index_t>(comm_->rank()), rank_bit) ? d1 : d0;
    if (factor == complex_t{1.0}) return;
    const auto pos = kernels::sorted_bit_positions(local_cmask, {});
    const kernels::BitExpander expand{pos};
    const index_t count = dim(nl_) >> pos.size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
    for (index_t j = 0; j < count; ++j) local_[expand(j) | local_cmask] *= factor;
    return;
  }

  // Exchange path. Note the pair partner has identical global control
  // bits (it differs only in the target bit), so "skip" decisions agree.
  if (!globals_satisfied) return;
  if (policy == CommPolicy::Exchange) {
    // Unspecialized: the whole chunk participates regardless of local
    // controls; fold the control test into the 2x2 by expanding... the
    // generic simulator still exchanges the full chunk, then applies the
    // masked combine.
    exchange_and_combine(rank_bit, target_block(g), local_cmask, 0);
    return;
  }
  exchange_and_combine(rank_bit, target_block(g), local_cmask, 0);
}

void DistStateVector::run(const circuit::Circuit& c, CommPolicy policy) {
  if (c.qubits() != n_) throw std::invalid_argument("run: qubit count mismatch");
  for (const Gate& g : c.gates()) apply_gate(g, policy);
}

StateVector DistStateVector::gather_all() const {
  StateVector sv(n_);
  comm_->allgather<complex_t>({local_.data(), local_.size()}, sv.amplitudes());
  return sv;
}

}  // namespace qc::sim
