// Distributed state vector over the cluster substrate.
//
// The wave function of n qubits is split over P = 2^k ranks; rank r owns
// the contiguous chunk of 2^{n-k} amplitudes whose top k bits equal r —
// i.e. the top k qubits are "global" (distributed), the rest local.
// Gates on local qubits never communicate. Gates on global qubits
// normally require exchanging the local chunk with a partner rank
// (the 16N/Bnet term of the paper's Eq. 6); the Specialized policy
// ("our simulator") skips that exchange for diagonal gates and for
// unsatisfied global controls — the structural advantage the paper
// credits for Fig. 4's growing lead over qHiPSTER.
//
// Templated on the amplitude scalar T: under fp32 every chunk exchange
// moves sizeof(std::complex<float>) = 8 bytes per amplitude — exactly
// half the wire traffic of fp64 on the same plan (the engine's byte
// accounting and the obs model report tie this out).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "sim/kernels.hpp"
#include "sim/state_vector.hpp"

namespace qc::sim {

/// Communication policy for global-qubit gates.
enum class CommPolicy {
  Specialized,  ///< Ours: diagonal global gates apply locally; global
                ///< controls filter ranks; exchange only when unavoidable.
  Exchange,     ///< qHiPSTER-like: every global-target gate performs the
                ///< pairwise chunk exchange, diagonal or not.
};

template <typename T>
class BasicDistStateVector {
 public:
  using value_type = basic_complex_t<T>;

  /// Collective: every rank of `comm` constructs its share of an n-qubit
  /// |0...0>. comm.size() must be a power of two, <= 2^n.
  BasicDistStateVector(cluster::Comm& comm, qubit_t n_qubits);

  [[nodiscard]] qubit_t qubits() const noexcept { return n_; }
  [[nodiscard]] qubit_t local_qubits() const noexcept { return nl_; }
  [[nodiscard]] qubit_t global_qubits() const noexcept { return n_ - nl_; }
  [[nodiscard]] std::span<value_type> local() noexcept { return {local_.data(), local_.size()}; }
  [[nodiscard]] std::span<const value_type> local() const noexcept {
    return {local_.data(), local_.size()};
  }
  [[nodiscard]] cluster::Comm& comm() const noexcept { return *comm_; }

  /// Collective: resets to basis state |i> (global index).
  void set_basis(index_t i);

  /// Collective: deterministic random state (same result for any P,
  /// given the same seed and n — tested against the serial StateVector).
  void randomize(std::uint64_t seed);

  /// Collective reductions.
  [[nodiscard]] double norm_sq() const;
  [[nodiscard]] double max_abs_diff(const BasicDistStateVector& other) const;
  [[nodiscard]] double probability_of_one(qubit_t q) const;

  /// Collective: applies one gate under the given policy.
  void apply_gate(const circuit::Gate& g, CommPolicy policy);

  /// Collective: applies a circuit gate by gate.
  void run(const circuit::Circuit& c, CommPolicy policy);

  /// Collective: applies a set of disjoint qubit transpositions in one
  /// pass — the cluster-level analogue of kernels::apply_qubit_swaps.
  /// Pairs with both qubits local permute each chunk in place with zero
  /// communication; pairs that cross the local/global boundary (and
  /// global-global pairs) are realized as ONE chunk permutation: the
  /// chunk splits into 2^k sub-blocks keyed by the k exchanged local
  /// bits, and each sub-block moves to the rank whose exchanged rank
  /// bits equal its key (sizeof(value_type) bytes/amplitude over the
  /// wire, the Eq. 6 exchange term paid once for the whole swap set).
  /// This is the global<->local exchange pass the distributed scheduler
  /// amortizes across a sweep of global-qubit gates.
  void apply_qubit_swaps(std::span<const std::array<qubit_t, 2>> pairs);

  // --- collective measurement surface (paper §3.4 at cluster scale) ----

  /// Collective: marginal distribution of the `width`-bit register at
  /// `offset` (which may straddle the local/global boundary). Every rank
  /// returns the identical full 2^width vector.
  [[nodiscard]] std::vector<double> register_distribution(qubit_t offset, qubit_t width) const;

  /// Collective: marginal distribution over an *arbitrary* set of
  /// physical qubit positions — bit j of each outcome index reads
  /// physical qubit `qubits[j]`. This is how a caller holding a live
  /// logical->physical permutation (the resident dist backend) measures
  /// a logical register without first restoring physical qubit order.
  [[nodiscard]] std::vector<double> register_distribution(
      std::span<const qubit_t> qubits) const;

  /// Collective: samples a full-register outcome (global basis index)
  /// from the exact distribution; does not collapse. Every rank must
  /// pass an identically-seeded rng (exactly one uniform draw is
  /// consumed, keeping all ranks' streams in step); every rank returns
  /// the same outcome, which is never a zero-probability basis state.
  [[nodiscard]] index_t sample(Rng& rng) const;

  /// Collective: collapses qubit q to `outcome` (0/1) and renormalizes.
  /// Throws if the outcome has probability ~0 (on every rank alike).
  void collapse(qubit_t q, int outcome);

  /// Collective: gathers the full state on every rank (test helper;
  /// only sensible for small n).
  [[nodiscard]] BasicStateVector<T> gather_all() const;

  /// Bytes exchanged by this rank since construction (for the
  /// communication-volume assertions and the Fig. 4 analysis). Counts
  /// sizeof(value_type) per amplitude, so fp32 runs report half the
  /// fp64 volume on the same plan.
  [[nodiscard]] std::uint64_t bytes_communicated() const noexcept { return bytes_comm_; }

 private:
  void exchange_and_combine(qubit_t rank_bit, const kernels::U2T<T>& u, index_t local_cmask,
                            index_t global_cmask_bits);

  cluster::Comm* comm_;
  qubit_t n_;
  qubit_t nl_;
  aligned_vector<value_type> local_;
  aligned_vector<value_type> scratch_;
  std::uint64_t bytes_comm_ = 0;
};

/// Double-precision alias — the default across the non-templated API.
using DistStateVector = BasicDistStateVector<double>;

}  // namespace qc::sim
