// Distributed state vector over the cluster substrate.
//
// The wave function of n qubits is split over P = 2^k ranks; rank r owns
// the contiguous chunk of 2^{n-k} amplitudes whose top k bits equal r —
// i.e. the top k qubits are "global" (distributed), the rest local.
// Gates on local qubits never communicate. Gates on global qubits
// normally require exchanging the local chunk with a partner rank
// (the 16N/Bnet term of the paper's Eq. 6); the Specialized policy
// ("our simulator") skips that exchange for diagonal gates and for
// unsatisfied global controls — the structural advantage the paper
// credits for Fig. 4's growing lead over qHiPSTER.
#pragma once

#include <span>

#include "circuit/circuit.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "sim/kernels.hpp"
#include "sim/state_vector.hpp"

namespace qc::sim {

/// Communication policy for global-qubit gates.
enum class CommPolicy {
  Specialized,  ///< Ours: diagonal global gates apply locally; global
                ///< controls filter ranks; exchange only when unavoidable.
  Exchange,     ///< qHiPSTER-like: every global-target gate performs the
                ///< pairwise chunk exchange, diagonal or not.
};

class DistStateVector {
 public:
  /// Collective: every rank of `comm` constructs its share of an n-qubit
  /// |0...0>. comm.size() must be a power of two, <= 2^n.
  DistStateVector(cluster::Comm& comm, qubit_t n_qubits);

  [[nodiscard]] qubit_t qubits() const noexcept { return n_; }
  [[nodiscard]] qubit_t local_qubits() const noexcept { return nl_; }
  [[nodiscard]] qubit_t global_qubits() const noexcept { return n_ - nl_; }
  [[nodiscard]] std::span<complex_t> local() noexcept { return {local_.data(), local_.size()}; }
  [[nodiscard]] std::span<const complex_t> local() const noexcept {
    return {local_.data(), local_.size()};
  }
  [[nodiscard]] cluster::Comm& comm() noexcept { return *comm_; }

  /// Collective: resets to basis state |i> (global index).
  void set_basis(index_t i);

  /// Collective: deterministic random state (same result for any P,
  /// given the same seed and n — tested against the serial StateVector).
  void randomize(std::uint64_t seed);

  /// Collective reductions.
  [[nodiscard]] double norm_sq() const;
  [[nodiscard]] double max_abs_diff(const DistStateVector& other) const;
  [[nodiscard]] double probability_of_one(qubit_t q) const;

  /// Collective: applies one gate under the given policy.
  void apply_gate(const circuit::Gate& g, CommPolicy policy);

  /// Collective: applies a circuit gate by gate.
  void run(const circuit::Circuit& c, CommPolicy policy);

  /// Collective: gathers the full state on every rank (test helper;
  /// only sensible for small n).
  [[nodiscard]] StateVector gather_all() const;

  /// Bytes exchanged by this rank since construction (for the
  /// communication-volume assertions and the Fig. 4 analysis).
  [[nodiscard]] std::uint64_t bytes_communicated() const noexcept { return bytes_comm_; }

 private:
  void exchange_and_combine(qubit_t rank_bit, const kernels::U2& u, index_t local_cmask,
                            index_t global_cmask_bits);

  cluster::Comm* comm_;
  qubit_t n_;
  qubit_t nl_;
  aligned_vector<complex_t> local_;
  aligned_vector<complex_t> scratch_;
  std::uint64_t bytes_comm_ = 0;
};

}  // namespace qc::sim
