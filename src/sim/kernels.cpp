#include "sim/kernels.hpp"

#include <algorithm>

namespace qc::sim::kernels {

std::vector<qubit_t> sorted_bit_positions(index_t mask, std::initializer_list<qubit_t> extra) {
  std::vector<qubit_t> pos;
  for (qubit_t k = 0; mask >> k; ++k)
    if (bits::test(mask, k)) pos.push_back(k);
  pos.insert(pos.end(), extra.begin(), extra.end());
  std::sort(pos.begin(), pos.end());
  return pos;
}

void apply_generic_masked(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask,
                          const U2& u, bool parallel) {
  const index_t pairs = dim(n) >> 1;
  const index_t tbit = index_t{1} << target;
  if (parallel) {
#pragma omp parallel for schedule(static) if (worth_parallelizing(pairs))
    for (index_t j = 0; j < pairs; ++j) {
      const index_t i0 = bits::insert_bit(j, target);
      if ((i0 & cmask) != cmask) continue;
      const index_t i1 = i0 | tbit;
      const complex_t x0 = a[i0], x1 = a[i1];
      a[i0] = u.m00 * x0 + u.m01 * x1;
      a[i1] = u.m10 * x0 + u.m11 * x1;
    }
  } else {
    for (index_t j = 0; j < pairs; ++j) {
      const index_t i0 = bits::insert_bit(j, target);
      if ((i0 & cmask) != cmask) continue;
      const index_t i1 = i0 | tbit;
      const complex_t x0 = a[i0], x1 = a[i1];
      a[i0] = u.m00 * x0 + u.m01 * x1;
      a[i1] = u.m10 * x0 + u.m11 * x1;
    }
  }
}

void apply_folded(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask,
                  const U2& u) {
  const auto pos = sorted_bit_positions(cmask, {target});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t tbit = index_t{1} << target;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i0 = expand(j) | cmask;
    const index_t i1 = i0 | tbit;
    const complex_t x0 = a[i0], x1 = a[i1];
    a[i0] = u.m00 * x0 + u.m01 * x1;
    a[i1] = u.m10 * x0 + u.m11 * x1;
  }
}

void apply_diagonal(std::span<complex_t> a, qubit_t n, qubit_t target, complex_t d0,
                    complex_t d1, index_t cmask) {
  if (d0 == complex_t{1.0}) {
    // Phase-type gate: only amplitudes with target=1 and controls=1
    // change — a quarter of the vector for the paper's CR gate.
    const auto pos = sorted_bit_positions(cmask, {target});
    const BitExpander expand{pos};
    const index_t count = dim(n) >> pos.size();
    const index_t set_mask = cmask | (index_t{1} << target);
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
    for (index_t j = 0; j < count; ++j) a[expand(j) | set_mask] *= d1;
    return;
  }
  // General diagonal (e.g. Rz): one in-place sweep over the controls=1
  // part, choosing d0/d1 by the target bit.
  const auto pos = sorted_bit_positions(cmask, {});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t tbit = index_t{1} << target;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i = expand(j) | cmask;
    a[i] *= (i & tbit) ? d1 : d0;
  }
}

void apply_x(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask) {
  const auto pos = sorted_bit_positions(cmask, {target});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t tbit = index_t{1} << target;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i0 = expand(j) | cmask;
    std::swap(a[i0], a[i0 | tbit]);
  }
}

void apply_swap(std::span<complex_t> a, qubit_t n, qubit_t qa, qubit_t qb, index_t cmask) {
  // Touches only indices where the two bits differ: enumerate with both
  // bits removed, swap (qa=1,qb=0) with (qa=0,qb=1).
  const auto pos = sorted_bit_positions(cmask, {qa, qb});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t abit = index_t{1} << qa;
  const index_t bbit = index_t{1} << qb;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t base = expand(j) | cmask;
    std::swap(a[base | abit], a[base | bbit]);
  }
}

namespace {

/// Spreads the k local bits of every b in [0, 2^k) to the global
/// positions `targets`, so base | offs[b] walks one amplitude block.
template <index_t B>
std::array<index_t, B> block_offsets(std::span<const qubit_t> targets) {
  std::array<index_t, B> offs{};
  for (index_t b = 0; b < B; ++b) {
    index_t o = 0;
    for (std::size_t l = 0; l < targets.size(); ++l)
      if (bits::test(b, static_cast<qubit_t>(l))) o = bits::set(o, targets[l]);
    offs[b] = o;
  }
  return offs;
}

/// Width-templated block apply: the compile-time block size lets the
/// compiler fully unroll / FMA-vectorize the mat-vec, and the unitary is
/// split once into real/imag planes so the hot loop is plain double
/// arithmetic (std::complex products inhibit vectorization).
template <unsigned K>
void apply_multi_t(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                   std::span<const complex_t> u) {
  constexpr index_t B = index_t{1} << K;
  const BitExpander expand{targets};
  const std::array<index_t, B> offs = block_offsets<B>(targets);
  alignas(64) std::array<double, B * B> ur, ui;
  for (index_t i = 0; i < B * B; ++i) {
    ur[i] = u[i].real();
    ui[i] = u[i].imag();
  }
  const index_t count = dim(n) >> K;
#pragma omp parallel if (worth_parallelizing(count))
  {
    alignas(64) std::array<double, B> xr, xi, yr, yi;
#pragma omp for schedule(static)
    for (index_t j = 0; j < count; ++j) {
      const index_t base = expand(j);
      for (index_t b = 0; b < B; ++b) {
        const complex_t v = a[base | offs[b]];
        xr[b] = v.real();
        xi[b] = v.imag();
      }
      for (index_t r = 0; r < B; ++r) {
        const double* urow = ur.data() + r * B;
        const double* uirow = ui.data() + r * B;
        double accr = 0.0, acci = 0.0;
        for (index_t c = 0; c < B; ++c) {
          accr += urow[c] * xr[c] - uirow[c] * xi[c];
          acci += urow[c] * xi[c] + uirow[c] * xr[c];
        }
        yr[r] = accr;
        yi[r] = acci;
      }
      for (index_t b = 0; b < B; ++b) a[base | offs[b]] = complex_t{yr[b], yi[b]};
    }
  }
}

/// Generic fallback for the widest blocks (heap-sized scratch).
void apply_multi_generic(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                         std::span<const complex_t> u) {
  const auto k = static_cast<qubit_t>(targets.size());
  const index_t block = dim(k);
  const BitExpander expand{targets};
  const auto offs = block_offsets<dim(kMaxFusedWidth)>(targets);
  const complex_t* um = u.data();
  const index_t count = dim(n) >> k;
#pragma omp parallel if (worth_parallelizing(count))
  {
    std::vector<complex_t> x(block), y(block);
#pragma omp for schedule(static)
    for (index_t j = 0; j < count; ++j) {
      const index_t base = expand(j);
      for (index_t b = 0; b < block; ++b) x[b] = a[base | offs[b]];
      for (index_t r = 0; r < block; ++r) {
        const complex_t* row = um + r * block;
        complex_t acc{};
        for (index_t c = 0; c < block; ++c) acc += row[c] * x[c];
        y[r] = acc;
      }
      for (index_t b = 0; b < block; ++b) a[base | offs[b]] = y[b];
    }
  }
}

}  // namespace

void apply_multi(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                 std::span<const complex_t> u) {
  const auto k = static_cast<qubit_t>(targets.size());
  assert(k >= 1 && k <= kMaxFusedWidth && k <= n);
  assert(u.size() == dim(k) * dim(k));
  assert(std::is_sorted(targets.begin(), targets.end()));
  switch (k) {
    case 1: return apply_multi_t<1>(a, n, targets, u);
    case 2: return apply_multi_t<2>(a, n, targets, u);
    case 3: return apply_multi_t<3>(a, n, targets, u);
    case 4: return apply_multi_t<4>(a, n, targets, u);
    case 5: return apply_multi_t<5>(a, n, targets, u);
    case 6: return apply_multi_t<6>(a, n, targets, u);
    default: return apply_multi_generic(a, n, targets, u);
  }
}

void apply_multi_diagonal(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                          std::span<const complex_t> d) {
  const auto k = static_cast<qubit_t>(targets.size());
  assert(k >= 1 && k <= kMaxFusedWidth && k <= n);
  assert(d.size() == dim(k));
  const index_t size = dim(n);
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    index_t b = 0;
    for (qubit_t l = 0; l < k; ++l) b |= bits::get(i, targets[l]) << l;
    a[i] *= d[b];
  }
}

void apply_fused_diagonal(std::span<complex_t> a, std::span<const DiagonalTerm> terms) {
  const index_t size = a.size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    complex_t factor{1.0};
    for (const DiagonalTerm& t : terms) {
      if ((i & t.cmask) != t.cmask) continue;
      factor *= bits::test(i, t.target) ? t.d1 : t.d0;
    }
    a[i] *= factor;
  }
}

}  // namespace qc::sim::kernels
