#include "sim/kernels.hpp"

#include <algorithm>

#include "sim/kernels_dispatch.hpp"

namespace qc::sim::kernels {

std::vector<qubit_t> sorted_bit_positions(index_t mask, std::initializer_list<qubit_t> extra) {
  std::vector<qubit_t> pos;
  for (qubit_t k = 0; mask >> k; ++k)
    if (bits::test(mask, k)) pos.push_back(k);
  pos.insert(pos.end(), extra.begin(), extra.end());
  std::sort(pos.begin(), pos.end());
  return pos;
}

namespace {

/// Longest run (in amplitudes) handed to one microkernel call from a
/// parallel sweep: short enough that flattening (group, segment) pairs
/// keeps every thread busy even when the target is a top qubit (one
/// giant run), long enough to amortize dispatch.
inline constexpr index_t kParSegment = index_t{1} << 12;

/// Splats a 2x2 block into the row-major {re, im} coefficient layout the
/// dense2 microkernel consumes.
template <typename T>
std::array<T, 8> u2_coef(const U2T<T>& u) noexcept {
  return {u.m00.real(), u.m00.imag(), u.m01.real(), u.m01.imag(),
          u.m10.real(), u.m10.imag(), u.m11.real(), u.m11.imag()};
}

}  // namespace

template <typename T>
void apply_generic_masked(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target,
                          index_t cmask, const U2T<T>& u, bool parallel) {
  using C = basic_complex_t<T>;
  const index_t pairs = dim(n) >> 1;
  const index_t tbit = index_t{1} << target;
  if (parallel) {
#pragma omp parallel for schedule(static) if (worth_parallelizing(pairs))
    for (index_t j = 0; j < pairs; ++j) {
      const index_t i0 = bits::insert_bit(j, target);
      if ((i0 & cmask) != cmask) continue;
      const index_t i1 = i0 | tbit;
      const C x0 = a[i0], x1 = a[i1];
      a[i0] = u.m00 * x0 + u.m01 * x1;
      a[i1] = u.m10 * x0 + u.m11 * x1;
    }
  } else {
    for (index_t j = 0; j < pairs; ++j) {
      const index_t i0 = bits::insert_bit(j, target);
      if ((i0 & cmask) != cmask) continue;
      const index_t i1 = i0 | tbit;
      const C x0 = a[i0], x1 = a[i1];
      a[i0] = u.m00 * x0 + u.m01 * x1;
      a[i1] = u.m10 * x0 + u.m11 * x1;
    }
  }
}

template <typename T>
void apply_folded(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target, index_t cmask,
                  const U2T<T>& u) {
  using C = basic_complex_t<T>;
  const index_t tbit = index_t{1} << target;
  if (cmask == 0) {
    // Uncontrolled: the (target=0, target=1) partners form contiguous
    // runs of 2^target amplitudes — hand them to the runtime-dispatched
    // dense2 microkernel. The (group, segment) flattening keeps the
    // parallel loop load-balanced whether the target is qubit 0 (many
    // short runs) or the top qubit (one run spanning half the vector).
    const index_t size = dim(n);
    const auto& mk = active_microkernels<T>();
    const std::array<T, 8> coef = u2_coef(u);
    const index_t seg = std::min(tbit, kParSegment);
    const index_t per_run = tbit / seg;
    const index_t total = (size >> (target + 1)) * per_run;
    T* p = real_imag_planes(a.data());
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
    for (index_t s = 0; s < total; ++s) {
      const index_t base = (s / per_run) * (tbit << 1) + (s % per_run) * seg;
      mk.dense2(p + 2 * base, p + 2 * (base + tbit), seg, coef.data());
    }
    return;
  }
  const auto pos = sorted_bit_positions(cmask, {target});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i0 = expand(j) | cmask;
    const index_t i1 = i0 | tbit;
    const C x0 = a[i0], x1 = a[i1];
    a[i0] = u.m00 * x0 + u.m01 * x1;
    a[i1] = u.m10 * x0 + u.m11 * x1;
  }
}

template <typename T>
void apply_diagonal(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target,
                    basic_complex_t<T> d0, basic_complex_t<T> d1, index_t cmask) {
  using C = basic_complex_t<T>;
  const index_t tbit = index_t{1} << target;
  if (cmask == 0) {
    // Uncontrolled: every touched amplitude lies in a contiguous
    // 2^target run — run-scale them through the dispatched microkernel,
    // with the same (run, segment) flattening as apply_folded.
    const index_t size = dim(n);
    const auto& mk = active_microkernels<T>();
    const bool skip0 = d0 == C{T{1}};
    const index_t seg = std::min(tbit, kParSegment);
    const index_t per_run = tbit / seg;
    const index_t total = (size >> target) * per_run;
    T* p = real_imag_planes(a.data());
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
    for (index_t s = 0; s < total; ++s) {
      const index_t run = s / per_run;
      const bool one = (run & 1) != 0;
      if (skip0 && !one) continue;
      const C d = one ? d1 : d0;
      const index_t base = run * tbit + (s % per_run) * seg;
      mk.scale(p + 2 * base, seg, d.real(), d.imag());
    }
    return;
  }
  if (d0 == C{T{1}}) {
    // Phase-type gate: only amplitudes with target=1 and controls=1
    // change — a quarter of the vector for the paper's CR gate.
    const auto pos = sorted_bit_positions(cmask, {target});
    const BitExpander expand{pos};
    const index_t count = dim(n) >> pos.size();
    const index_t set_mask = cmask | tbit;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
    for (index_t j = 0; j < count; ++j) a[expand(j) | set_mask] *= d1;
    return;
  }
  // General diagonal (e.g. Rz): one in-place sweep over the controls=1
  // part, choosing d0/d1 by the target bit.
  const auto pos = sorted_bit_positions(cmask, {});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i = expand(j) | cmask;
    a[i] *= (i & tbit) ? d1 : d0;
  }
}

template <typename T>
void apply_x(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target, index_t cmask) {
  const auto pos = sorted_bit_positions(cmask, {target});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t tbit = index_t{1} << target;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i0 = expand(j) | cmask;
    std::swap(a[i0], a[i0 | tbit]);
  }
}

template <typename T>
void apply_swap(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t qa, qubit_t qb,
                index_t cmask) {
  // Touches only indices where the two bits differ: enumerate with both
  // bits removed, swap (qa=1,qb=0) with (qa=0,qb=1).
  const auto pos = sorted_bit_positions(cmask, {qa, qb});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t abit = index_t{1} << qa;
  const index_t bbit = index_t{1} << qb;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t base = expand(j) | cmask;
    std::swap(a[base | abit], a[base | bbit]);
  }
}

namespace {

// The serial kernels below are the per-chunk inner loops of the
// cache-blocked executor: they run inside an outer cross-chunk parallel
// region, so unlike the kernels above they cannot lean on OpenMP. Their
// uncontrolled fast paths hand the contiguous (target=0, target=1) runs
// to the runtime-dispatched microkernels (kernels_dispatch.hpp) through
// raw scalar planes (std::complex guarantees the {re, im} array
// layout); the generic masked loops stay scalar.

/// Serial enumeration of expanded indices: j in [0, count) visits every
/// index with 0 bits at `pos`. The 1/2/3-position cases (one target plus
/// up to two controls — nearly every gate) inline the insert_bit chain
/// so the compiler keeps the loop tight; BitExpander's runtime position
/// loop costs ~2x on these serial sweeps (measured at 22 qubits).
template <typename F>
inline void expanded_loop(std::span<const qubit_t> pos, index_t count, F&& f) {
  switch (pos.size()) {
    case 1: {
      const qubit_t p0 = pos[0];
      for (index_t j = 0; j < count; ++j) f(bits::insert_bit(j, p0));
      return;
    }
    case 2: {
      const qubit_t p0 = pos[0], p1 = pos[1];
      for (index_t j = 0; j < count; ++j) f(bits::insert_bit(bits::insert_bit(j, p0), p1));
      return;
    }
    case 3: {
      const qubit_t p0 = pos[0], p1 = pos[1], p2 = pos[2];
      for (index_t j = 0; j < count; ++j)
        f(bits::insert_bit(bits::insert_bit(bits::insert_bit(j, p0), p1), p2));
      return;
    }
    default: {
      const BitExpander expand{pos};
      for (index_t j = 0; j < count; ++j) f(expand(j));
      return;
    }
  }
}

}  // namespace

template <typename T>
void apply_folded_serial(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target,
                         index_t cmask, const U2T<T>& u) {
  using C = basic_complex_t<T>;
  const index_t tbit = index_t{1} << target;
  if (cmask == 0) {
    // Uncontrolled: the (target=0, target=1) partners form contiguous
    // runs of 2^target amplitudes; process them through the dispatched
    // dense2 microkernel.
    const index_t size = dim(n);
    const auto& mk = active_microkernels<T>();
    const std::array<T, 8> coef = u2_coef(u);
    T* p = real_imag_planes(a.data());
    for (index_t g = 0; g < size; g += tbit << 1)
      mk.dense2(p + 2 * g, p + 2 * (g + tbit), tbit, coef.data());
    return;
  }
  const auto pos = sorted_bit_positions(cmask, {target});
  const index_t count = dim(n) >> pos.size();
  expanded_loop(pos, count, [&](index_t expanded) {
    const index_t i0 = expanded | cmask;
    const index_t i1 = i0 | tbit;
    const C x0 = a[i0], x1 = a[i1];
    a[i0] = u.m00 * x0 + u.m01 * x1;
    a[i1] = u.m10 * x0 + u.m11 * x1;
  });
}

template <typename T>
void apply_diagonal_serial(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target,
                           basic_complex_t<T> d0, basic_complex_t<T> d1, index_t cmask) {
  using C = basic_complex_t<T>;
  const index_t tbit = index_t{1} << target;
  if (cmask == 0) {
    // Uncontrolled: the target=1 (and, unless d0 == 1, target=0)
    // amplitudes form contiguous runs — scale them through the
    // dispatched run-scale microkernel.
    const index_t size = dim(n);
    const auto& mk = active_microkernels<T>();
    const bool skip0 = d0 == C{T{1}};
    T* p = real_imag_planes(a.data());
    for (index_t g = 0; g < size; g += tbit << 1) {
      if (!skip0) mk.scale(p + 2 * g, tbit, d0.real(), d0.imag());
      mk.scale(p + 2 * (g + tbit), tbit, d1.real(), d1.imag());
    }
    return;
  }
  if (d0 == C{T{1}}) {
    const auto pos = sorted_bit_positions(cmask, {target});
    const index_t count = dim(n) >> pos.size();
    const index_t set_mask = cmask | tbit;
    expanded_loop(pos, count, [&](index_t expanded) { a[expanded | set_mask] *= d1; });
    return;
  }
  const auto pos = sorted_bit_positions(cmask, {});
  const index_t count = dim(n) >> pos.size();
  expanded_loop(pos, count, [&](index_t expanded) {
    const index_t i = expanded | cmask;
    a[i] *= (i & tbit) ? d1 : d0;
  });
}

template <typename T>
void apply_x_serial(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target, index_t cmask) {
  const index_t tbit = index_t{1} << target;
  if (cmask == 0) {
    // Uncontrolled NOT: exchange the contiguous target=0 / target=1 runs.
    const index_t size = dim(n);
    for (index_t g = 0; g < size; g += tbit << 1)
      std::swap_ranges(a.begin() + static_cast<std::ptrdiff_t>(g),
                       a.begin() + static_cast<std::ptrdiff_t>(g + tbit),
                       a.begin() + static_cast<std::ptrdiff_t>(g + tbit));
    return;
  }
  const auto pos = sorted_bit_positions(cmask, {target});
  const index_t count = dim(n) >> pos.size();
  expanded_loop(pos, count, [&](index_t expanded) {
    const index_t i0 = expanded | cmask;
    std::swap(a[i0], a[i0 | tbit]);
  });
}

template <typename T>
void apply_swap_serial(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t qa, qubit_t qb,
                       index_t cmask) {
  const auto pos = sorted_bit_positions(cmask, {qa, qb});
  const index_t count = dim(n) >> pos.size();
  const index_t abit = index_t{1} << qa;
  const index_t bbit = index_t{1} << qb;
  expanded_loop(pos, count, [&](index_t expanded) {
    const index_t base = expanded | cmask;
    std::swap(a[base | abit], a[base | bbit]);
  });
}

namespace {

/// Spreads the k local bits of every b in [0, 2^k) to the global
/// positions `targets`, so base | offs[b] walks one amplitude block.
template <index_t B>
std::array<index_t, B> block_offsets(std::span<const qubit_t> targets) {
  std::array<index_t, B> offs{};
  for (index_t b = 0; b < B; ++b) {
    index_t o = 0;
    for (std::size_t l = 0; l < targets.size(); ++l)
      if (bits::test(b, static_cast<qubit_t>(l))) o = bits::set(o, targets[l]);
    offs[b] = o;
  }
  return offs;
}

/// Width-templated block apply: the compile-time block size lets the
/// compiler fully unroll / FMA-vectorize the mat-vec, and the unitary is
/// split once into real/imag planes so the hot loop is plain scalar
/// arithmetic (std::complex products inhibit vectorization). `Par`
/// selects the OpenMP sweep vs the serial chunk-local form used inside
/// the cache-blocked executor's cross-chunk parallel region.
template <typename T, unsigned K, bool Par>
void apply_multi_t(std::span<basic_complex_t<T>> a, qubit_t n, std::span<const qubit_t> targets,
                   std::span<const basic_complex_t<T>> u) {
  using C = basic_complex_t<T>;
  constexpr index_t B = index_t{1} << K;
  const BitExpander expand{targets};
  const std::array<index_t, B> offs = block_offsets<B>(targets);
  alignas(64) std::array<T, B * B> ur, ui;
  for (index_t i = 0; i < B * B; ++i) {
    ur[i] = u[i].real();
    ui[i] = u[i].imag();
  }
  const index_t count = dim(n) >> K;
  const auto body = [&](index_t j, std::array<T, B>& xr, std::array<T, B>& xi,
                        std::array<T, B>& yr, std::array<T, B>& yi) {
    const index_t base = expand(j);
    for (index_t b = 0; b < B; ++b) {
      const C v = a[base | offs[b]];
      xr[b] = v.real();
      xi[b] = v.imag();
    }
    for (index_t r = 0; r < B; ++r) {
      const T* urow = ur.data() + r * B;
      const T* uirow = ui.data() + r * B;
      T accr{}, acci{};
      for (index_t c = 0; c < B; ++c) {
        accr += urow[c] * xr[c] - uirow[c] * xi[c];
        acci += urow[c] * xi[c] + uirow[c] * xr[c];
      }
      yr[r] = accr;
      yi[r] = acci;
    }
    for (index_t b = 0; b < B; ++b) a[base | offs[b]] = C{yr[b], yi[b]};
  };
  if constexpr (Par) {
#pragma omp parallel if (worth_parallelizing(count))
    {
      alignas(64) std::array<T, B> xr, xi, yr, yi;
#pragma omp for schedule(static)
      for (index_t j = 0; j < count; ++j) body(j, xr, xi, yr, yi);
    }
  } else {
    alignas(64) std::array<T, B> xr, xi, yr, yi;
    for (index_t j = 0; j < count; ++j) body(j, xr, xi, yr, yi);
  }
}

/// Generic fallback for the widest blocks (heap-sized scratch).
template <typename T, bool Par>
void apply_multi_generic(std::span<basic_complex_t<T>> a, qubit_t n,
                         std::span<const qubit_t> targets,
                         std::span<const basic_complex_t<T>> u) {
  using C = basic_complex_t<T>;
  const auto k = static_cast<qubit_t>(targets.size());
  const index_t block = dim(k);
  const BitExpander expand{targets};
  const auto offs = block_offsets<dim(kMaxFusedWidth)>(targets);
  const C* um = u.data();
  const index_t count = dim(n) >> k;
  const auto body = [&](index_t j, std::vector<C>& x, std::vector<C>& y) {
    const index_t base = expand(j);
    for (index_t b = 0; b < block; ++b) x[b] = a[base | offs[b]];
    for (index_t r = 0; r < block; ++r) {
      const C* row = um + r * block;
      C acc{};
      for (index_t c = 0; c < block; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
    for (index_t b = 0; b < block; ++b) a[base | offs[b]] = y[b];
  };
  if constexpr (Par) {
#pragma omp parallel if (worth_parallelizing(count))
    {
      std::vector<C> x(block), y(block);
#pragma omp for schedule(static)
      for (index_t j = 0; j < count; ++j) body(j, x, y);
    }
  } else {
    std::vector<C> x(block), y(block);
    for (index_t j = 0; j < count; ++j) body(j, x, y);
  }
}

/// 2-qubit dense apply through the dispatched 4x4 microkernel: the
/// generic gather kernel pays per-block staging (~2x at B = 4); this
/// walks the four target-bit runs {00, 01, 10, 11} directly so the
/// contiguous low-bit run vectorizes. Parallel form flattens (group,
/// segment) pairs like apply_folded so high targets still load-balance.
template <typename T, bool Par>
void apply_multi2_impl(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t t0, qubit_t t1,
                       std::span<const basic_complex_t<T>> u) {
  const index_t size = dim(n);
  const index_t b0 = index_t{1} << t0;
  const index_t b1 = index_t{1} << t1;
  // Unitary coefficient planes, row-major 4x4 (local bit 0 <-> t0).
  alignas(64) T ur[16], ui[16];
  for (int i = 0; i < 16; ++i) {
    ur[i] = u[i].real();
    ui[i] = u[i].imag();
  }
  const auto& mk = active_microkernels<T>();
  T* p = real_imag_planes(a.data());
  const index_t inner = b1 / (b0 << 1);  // g0 groups per g1 group
  if constexpr (Par) {
    const index_t seg = std::min(b0, kParSegment);
    const index_t per_run = b0 / seg;
    const index_t total = (size / (b1 << 1)) * inner * per_run;
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
    for (index_t s = 0; s < total; ++s) {
      const index_t o = s / (inner * per_run);
      const index_t rem = s % (inner * per_run);
      const index_t base =
          o * (b1 << 1) + (rem / per_run) * (b0 << 1) + (rem % per_run) * seg;
      mk.dense4(p + 2 * base, p + 2 * (base + b0), p + 2 * (base + b1),
                p + 2 * (base + b0 + b1), seg, ur, ui);
    }
  } else {
    for (index_t g1 = 0; g1 < size; g1 += b1 << 1)
      for (index_t g0 = g1; g0 < g1 + b1; g0 += b0 << 1)
        mk.dense4(p + 2 * g0, p + 2 * (g0 + b0), p + 2 * (g0 + b1), p + 2 * (g0 + b0 + b1),
                  b0, ur, ui);
  }
}

template <typename T, bool Par>
void apply_multi_dispatch(std::span<basic_complex_t<T>> a, qubit_t n,
                          std::span<const qubit_t> targets,
                          std::span<const basic_complex_t<T>> u) {
  const auto k = static_cast<qubit_t>(targets.size());
  assert(k >= 1 && k <= kMaxFusedWidth && k <= n);
  assert(u.size() == dim(k) * dim(k));
  assert(std::is_sorted(targets.begin(), targets.end()));
  switch (k) {
    case 1: {
      // Route through the folded 2x2 path so fused single-qubit blocks
      // hit the dispatched dense2 microkernel.
      const U2T<T> u2{u[0], u[1], u[2], u[3]};
      if constexpr (Par)
        return apply_folded<T>(a, n, targets[0], 0, u2);
      else
        return apply_folded_serial<T>(a, n, targets[0], 0, u2);
    }
    case 2: return apply_multi2_impl<T, Par>(a, n, targets[0], targets[1], u);
    case 3: return apply_multi_t<T, 3, Par>(a, n, targets, u);
    case 4: return apply_multi_t<T, 4, Par>(a, n, targets, u);
    case 5: return apply_multi_t<T, 5, Par>(a, n, targets, u);
    case 6: return apply_multi_t<T, 6, Par>(a, n, targets, u);
    default: return apply_multi_generic<T, Par>(a, n, targets, u);
  }
}

}  // namespace

template <typename T>
void apply_multi(std::span<basic_complex_t<T>> a, qubit_t n, std::span<const qubit_t> targets,
                 std::span<const basic_complex_t<T>> u) {
  apply_multi_dispatch<T, true>(a, n, targets, u);
}

template <typename T>
void apply_multi_serial(std::span<basic_complex_t<T>> a, qubit_t n,
                        std::span<const qubit_t> targets,
                        std::span<const basic_complex_t<T>> u) {
  apply_multi_dispatch<T, false>(a, n, targets, u);
}

template <typename T>
void apply_multi_diagonal(std::span<basic_complex_t<T>> a, qubit_t n,
                          std::span<const qubit_t> targets,
                          std::span<const basic_complex_t<T>> d) {
  const auto k = static_cast<qubit_t>(targets.size());
  assert(k >= 1 && k <= kMaxFusedWidth && k <= n);
  assert(d.size() == dim(k));
  const index_t size = dim(n);
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    index_t b = 0;
    for (qubit_t l = 0; l < k; ++l) b |= bits::get(i, targets[l]) << l;
    a[i] *= d[b];
  }
}

template <typename T>
void apply_multi_diagonal_serial(std::span<basic_complex_t<T>> a, qubit_t n,
                                 std::span<const qubit_t> targets,
                                 std::span<const basic_complex_t<T>> d) {
  const auto k = static_cast<qubit_t>(targets.size());
  assert(k >= 1 && k <= kMaxFusedWidth && k <= n);
  assert(d.size() == dim(k));
  const index_t size = dim(n);
  for (index_t i = 0; i < size; ++i) {
    index_t b = 0;
    for (qubit_t l = 0; l < k; ++l) b |= bits::get(i, targets[l]) << l;
    a[i] *= d[b];
  }
}

template <typename T>
void apply_qubit_swaps(std::span<basic_complex_t<T>> a, qubit_t n,
                       std::span<const std::array<qubit_t, 2>> pairs) {
  if (pairs.empty()) return;
#ifndef NDEBUG
  index_t seen = 0;
  for (const auto& p : pairs) {
    assert(p[0] < n && p[1] < n && p[0] != p[1]);
    assert(!bits::test(seen, p[0]) && !bits::test(seen, p[1]));
    seen = bits::set(bits::set(seen, p[0]), p[1]);
  }
#endif
  const index_t size = dim(n);
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    index_t j = i;
    for (const auto& p : pairs)
      if (bits::get(i, p[0]) != bits::get(i, p[1]))
        j ^= (index_t{1} << p[0]) | (index_t{1} << p[1]);
    if (j > i) std::swap(a[i], a[j]);
  }
}

template <typename T>
void apply_fused_diagonal(std::span<basic_complex_t<T>> a,
                          std::span<const DiagonalTermT<T>> terms) {
  using C = basic_complex_t<T>;
  const index_t size = a.size();
  // Factor-table fast path: when the union support fits a fused-width
  // block, each amplitude's factor depends only on those k bits —
  // precompute all 2^k products once and let apply_multi_diagonal do a
  // branch-free table-lookup sweep.
  index_t support = 0;
  for (const DiagonalTermT<T>& t : terms) support |= t.cmask | (index_t{1} << t.target);
  const int k = bits::popcount(support);
  if (k >= 1 && k <= static_cast<int>(kMaxFusedWidth)) {
    const std::vector<qubit_t> pos = sorted_bit_positions(support);
    const index_t block = index_t{1} << k;
    std::vector<C> d(block);
    for (index_t b = 0; b < block; ++b) {
      index_t idx = 0;
      for (int l = 0; l < k; ++l)
        if (bits::test(b, static_cast<qubit_t>(l))) idx = bits::set(idx, pos[l]);
      C factor{T{1}};
      for (const DiagonalTermT<T>& t : terms) {
        if ((idx & t.cmask) != t.cmask) continue;
        factor *= bits::test(idx, t.target) ? t.d1 : t.d0;
      }
      d[b] = factor;
    }
    apply_multi_diagonal<T>(a, bits::log2_floor(size), pos, d);
    return;
  }
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    C factor{T{1}};
    for (const DiagonalTermT<T>& t : terms) {
      if ((i & t.cmask) != t.cmask) continue;
      factor *= bits::test(i, t.target) ? t.d1 : t.d0;
    }
    a[i] *= factor;
  }
}

// ---------------------------------------------------------------------
// Explicit instantiations: the kernel surface exists exactly for the
// two amplitude precisions the engine exposes (Precision::kF64/kF32).
// ---------------------------------------------------------------------

#define QC_INSTANTIATE_KERNELS(T)                                                             \
  template void apply_generic_masked<T>(std::span<basic_complex_t<T>>, qubit_t, qubit_t,      \
                                        index_t, const U2T<T>&, bool);                        \
  template void apply_folded<T>(std::span<basic_complex_t<T>>, qubit_t, qubit_t, index_t,     \
                                const U2T<T>&);                                               \
  template void apply_diagonal<T>(std::span<basic_complex_t<T>>, qubit_t, qubit_t,            \
                                  basic_complex_t<T>, basic_complex_t<T>, index_t);           \
  template void apply_x<T>(std::span<basic_complex_t<T>>, qubit_t, qubit_t, index_t);         \
  template void apply_swap<T>(std::span<basic_complex_t<T>>, qubit_t, qubit_t, qubit_t,       \
                              index_t);                                                       \
  template void apply_folded_serial<T>(std::span<basic_complex_t<T>>, qubit_t, qubit_t,       \
                                       index_t, const U2T<T>&);                               \
  template void apply_diagonal_serial<T>(std::span<basic_complex_t<T>>, qubit_t, qubit_t,     \
                                         basic_complex_t<T>, basic_complex_t<T>, index_t);    \
  template void apply_x_serial<T>(std::span<basic_complex_t<T>>, qubit_t, qubit_t, index_t);  \
  template void apply_swap_serial<T>(std::span<basic_complex_t<T>>, qubit_t, qubit_t,         \
                                     qubit_t, index_t);                                       \
  template void apply_fused_diagonal<T>(std::span<basic_complex_t<T>>,                        \
                                        std::span<const DiagonalTermT<T>>);                   \
  template void apply_multi<T>(std::span<basic_complex_t<T>>, qubit_t,                        \
                               std::span<const qubit_t>, std::span<const basic_complex_t<T>>); \
  template void apply_multi_serial<T>(std::span<basic_complex_t<T>>, qubit_t,                 \
                                      std::span<const qubit_t>,                               \
                                      std::span<const basic_complex_t<T>>);                   \
  template void apply_multi_diagonal<T>(std::span<basic_complex_t<T>>, qubit_t,               \
                                        std::span<const qubit_t>,                             \
                                        std::span<const basic_complex_t<T>>);                 \
  template void apply_multi_diagonal_serial<T>(std::span<basic_complex_t<T>>, qubit_t,        \
                                               std::span<const qubit_t>,                      \
                                               std::span<const basic_complex_t<T>>);          \
  template void apply_qubit_swaps<T>(std::span<basic_complex_t<T>>, qubit_t,                  \
                                     std::span<const std::array<qubit_t, 2>>);

QC_INSTANTIATE_KERNELS(float)
QC_INSTANTIATE_KERNELS(double)

#undef QC_INSTANTIATE_KERNELS

}  // namespace qc::sim::kernels
