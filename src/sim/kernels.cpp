#include "sim/kernels.hpp"

#include <algorithm>

namespace qc::sim::kernels {

std::vector<qubit_t> sorted_bit_positions(index_t mask, std::initializer_list<qubit_t> extra) {
  std::vector<qubit_t> pos;
  for (qubit_t k = 0; mask >> k; ++k)
    if (bits::test(mask, k)) pos.push_back(k);
  pos.insert(pos.end(), extra.begin(), extra.end());
  std::sort(pos.begin(), pos.end());
  return pos;
}

void apply_generic_masked(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask,
                          const U2& u, bool parallel) {
  const index_t pairs = dim(n) >> 1;
  const index_t tbit = index_t{1} << target;
  if (parallel) {
#pragma omp parallel for schedule(static) if (worth_parallelizing(pairs))
    for (index_t j = 0; j < pairs; ++j) {
      const index_t i0 = bits::insert_bit(j, target);
      if ((i0 & cmask) != cmask) continue;
      const index_t i1 = i0 | tbit;
      const complex_t x0 = a[i0], x1 = a[i1];
      a[i0] = u.m00 * x0 + u.m01 * x1;
      a[i1] = u.m10 * x0 + u.m11 * x1;
    }
  } else {
    for (index_t j = 0; j < pairs; ++j) {
      const index_t i0 = bits::insert_bit(j, target);
      if ((i0 & cmask) != cmask) continue;
      const index_t i1 = i0 | tbit;
      const complex_t x0 = a[i0], x1 = a[i1];
      a[i0] = u.m00 * x0 + u.m01 * x1;
      a[i1] = u.m10 * x0 + u.m11 * x1;
    }
  }
}

void apply_folded(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask,
                  const U2& u) {
  const auto pos = sorted_bit_positions(cmask, {target});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t tbit = index_t{1} << target;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i0 = expand(j) | cmask;
    const index_t i1 = i0 | tbit;
    const complex_t x0 = a[i0], x1 = a[i1];
    a[i0] = u.m00 * x0 + u.m01 * x1;
    a[i1] = u.m10 * x0 + u.m11 * x1;
  }
}

void apply_diagonal(std::span<complex_t> a, qubit_t n, qubit_t target, complex_t d0,
                    complex_t d1, index_t cmask) {
  if (d0 == complex_t{1.0}) {
    // Phase-type gate: only amplitudes with target=1 and controls=1
    // change — a quarter of the vector for the paper's CR gate.
    const auto pos = sorted_bit_positions(cmask, {target});
    const BitExpander expand{pos};
    const index_t count = dim(n) >> pos.size();
    const index_t set_mask = cmask | (index_t{1} << target);
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
    for (index_t j = 0; j < count; ++j) a[expand(j) | set_mask] *= d1;
    return;
  }
  // General diagonal (e.g. Rz): one in-place sweep over the controls=1
  // part, choosing d0/d1 by the target bit.
  const auto pos = sorted_bit_positions(cmask, {});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t tbit = index_t{1} << target;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i = expand(j) | cmask;
    a[i] *= (i & tbit) ? d1 : d0;
  }
}

void apply_x(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask) {
  const auto pos = sorted_bit_positions(cmask, {target});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t tbit = index_t{1} << target;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i0 = expand(j) | cmask;
    std::swap(a[i0], a[i0 | tbit]);
  }
}

void apply_swap(std::span<complex_t> a, qubit_t n, qubit_t qa, qubit_t qb, index_t cmask) {
  // Touches only indices where the two bits differ: enumerate with both
  // bits removed, swap (qa=1,qb=0) with (qa=0,qb=1).
  const auto pos = sorted_bit_positions(cmask, {qa, qb});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t abit = index_t{1} << qa;
  const index_t bbit = index_t{1} << qb;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t base = expand(j) | cmask;
    std::swap(a[base | abit], a[base | bbit]);
  }
}

namespace {

// The serial kernels below are the per-chunk inner loops of the
// cache-blocked executor: they run inside an outer cross-chunk parallel
// region, so unlike the kernels above they cannot lean on OpenMP — and
// without the pragma the compiler no longer assumes iteration
// independence, so the generic loops stay scalar. The uncontrolled fast
// paths therefore operate on the contiguous (target=0, target=1) runs
// through raw double planes (std::complex guarantees the {re, im}
// array layout), which auto-vectorizes and runs ~3x faster than the
// scalar pair loop on AVX2.

/// Multiplies the `count` complex amplitudes at `c` by the scalar d.
inline void scale_run(complex_t* c, index_t count, complex_t d) {
  const double dr = d.real(), di = d.imag();
  double* p = real_imag_planes(c);
  for (index_t i = 0; i < 2 * count; i += 2) {
    const double xr = p[i], xi = p[i + 1];
    p[i] = xr * dr - xi * di;
    p[i + 1] = xr * di + xi * dr;
  }
}

/// Serial enumeration of expanded indices: j in [0, count) visits every
/// index with 0 bits at `pos`. The 1/2/3-position cases (one target plus
/// up to two controls — nearly every gate) inline the insert_bit chain
/// so the compiler keeps the loop tight; BitExpander's runtime position
/// loop costs ~2x on these serial sweeps (measured at 22 qubits).
template <typename F>
inline void expanded_loop(std::span<const qubit_t> pos, index_t count, F&& f) {
  switch (pos.size()) {
    case 1: {
      const qubit_t p0 = pos[0];
      for (index_t j = 0; j < count; ++j) f(bits::insert_bit(j, p0));
      return;
    }
    case 2: {
      const qubit_t p0 = pos[0], p1 = pos[1];
      for (index_t j = 0; j < count; ++j) f(bits::insert_bit(bits::insert_bit(j, p0), p1));
      return;
    }
    case 3: {
      const qubit_t p0 = pos[0], p1 = pos[1], p2 = pos[2];
      for (index_t j = 0; j < count; ++j)
        f(bits::insert_bit(bits::insert_bit(bits::insert_bit(j, p0), p1), p2));
      return;
    }
    default: {
      const BitExpander expand{pos};
      for (index_t j = 0; j < count; ++j) f(expand(j));
      return;
    }
  }
}

}  // namespace

void apply_folded_serial(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask,
                         const U2& u) {
  const index_t tbit = index_t{1} << target;
  if (cmask == 0) {
    // Uncontrolled: the (target=0, target=1) partners form contiguous
    // runs of 2^target amplitudes; process them through double planes.
    const index_t size = dim(n);
    const double ar = u.m00.real(), ai = u.m00.imag(), br = u.m01.real(), bi = u.m01.imag();
    const double cr = u.m10.real(), ci = u.m10.imag(), dr = u.m11.real(), di = u.m11.imag();
    double* p = real_imag_planes(a.data());
    for (index_t g = 0; g < size; g += tbit << 1) {
      double* p0 = p + 2 * g;
      double* p1 = p + 2 * (g + tbit);
      for (index_t i = 0; i < 2 * tbit; i += 2) {
        const double x0r = p0[i], x0i = p0[i + 1], x1r = p1[i], x1i = p1[i + 1];
        p0[i] = ar * x0r - ai * x0i + br * x1r - bi * x1i;
        p0[i + 1] = ar * x0i + ai * x0r + br * x1i + bi * x1r;
        p1[i] = cr * x0r - ci * x0i + dr * x1r - di * x1i;
        p1[i + 1] = cr * x0i + ci * x0r + dr * x1i + di * x1r;
      }
    }
    return;
  }
  const auto pos = sorted_bit_positions(cmask, {target});
  const index_t count = dim(n) >> pos.size();
  expanded_loop(pos, count, [&](index_t expanded) {
    const index_t i0 = expanded | cmask;
    const index_t i1 = i0 | tbit;
    const complex_t x0 = a[i0], x1 = a[i1];
    a[i0] = u.m00 * x0 + u.m01 * x1;
    a[i1] = u.m10 * x0 + u.m11 * x1;
  });
}

void apply_diagonal_serial(std::span<complex_t> a, qubit_t n, qubit_t target, complex_t d0,
                           complex_t d1, index_t cmask) {
  const index_t tbit = index_t{1} << target;
  if (cmask == 0) {
    // Uncontrolled: the target=1 (and, unless d0 == 1, target=0)
    // amplitudes form contiguous runs — scale them plane-wise.
    const index_t size = dim(n);
    const bool skip0 = d0 == complex_t{1.0};
    for (index_t g = 0; g < size; g += tbit << 1) {
      if (!skip0) scale_run(a.data() + g, tbit, d0);
      scale_run(a.data() + g + tbit, tbit, d1);
    }
    return;
  }
  if (d0 == complex_t{1.0}) {
    const auto pos = sorted_bit_positions(cmask, {target});
    const index_t count = dim(n) >> pos.size();
    const index_t set_mask = cmask | tbit;
    expanded_loop(pos, count, [&](index_t expanded) { a[expanded | set_mask] *= d1; });
    return;
  }
  const auto pos = sorted_bit_positions(cmask, {});
  const index_t count = dim(n) >> pos.size();
  expanded_loop(pos, count, [&](index_t expanded) {
    const index_t i = expanded | cmask;
    a[i] *= (i & tbit) ? d1 : d0;
  });
}

void apply_x_serial(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask) {
  const index_t tbit = index_t{1} << target;
  if (cmask == 0) {
    // Uncontrolled NOT: exchange the contiguous target=0 / target=1 runs.
    const index_t size = dim(n);
    for (index_t g = 0; g < size; g += tbit << 1)
      std::swap_ranges(a.begin() + static_cast<std::ptrdiff_t>(g),
                       a.begin() + static_cast<std::ptrdiff_t>(g + tbit),
                       a.begin() + static_cast<std::ptrdiff_t>(g + tbit));
    return;
  }
  const auto pos = sorted_bit_positions(cmask, {target});
  const index_t count = dim(n) >> pos.size();
  expanded_loop(pos, count, [&](index_t expanded) {
    const index_t i0 = expanded | cmask;
    std::swap(a[i0], a[i0 | tbit]);
  });
}

void apply_swap_serial(std::span<complex_t> a, qubit_t n, qubit_t qa, qubit_t qb,
                       index_t cmask) {
  const auto pos = sorted_bit_positions(cmask, {qa, qb});
  const index_t count = dim(n) >> pos.size();
  const index_t abit = index_t{1} << qa;
  const index_t bbit = index_t{1} << qb;
  expanded_loop(pos, count, [&](index_t expanded) {
    const index_t base = expanded | cmask;
    std::swap(a[base | abit], a[base | bbit]);
  });
}

namespace {

/// Spreads the k local bits of every b in [0, 2^k) to the global
/// positions `targets`, so base | offs[b] walks one amplitude block.
template <index_t B>
std::array<index_t, B> block_offsets(std::span<const qubit_t> targets) {
  std::array<index_t, B> offs{};
  for (index_t b = 0; b < B; ++b) {
    index_t o = 0;
    for (std::size_t l = 0; l < targets.size(); ++l)
      if (bits::test(b, static_cast<qubit_t>(l))) o = bits::set(o, targets[l]);
    offs[b] = o;
  }
  return offs;
}

/// Width-templated block apply: the compile-time block size lets the
/// compiler fully unroll / FMA-vectorize the mat-vec, and the unitary is
/// split once into real/imag planes so the hot loop is plain double
/// arithmetic (std::complex products inhibit vectorization). `Par`
/// selects the OpenMP sweep vs the serial chunk-local form used inside
/// the cache-blocked executor's cross-chunk parallel region.
template <unsigned K, bool Par>
void apply_multi_t(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                   std::span<const complex_t> u) {
  constexpr index_t B = index_t{1} << K;
  const BitExpander expand{targets};
  const std::array<index_t, B> offs = block_offsets<B>(targets);
  alignas(64) std::array<double, B * B> ur, ui;
  for (index_t i = 0; i < B * B; ++i) {
    ur[i] = u[i].real();
    ui[i] = u[i].imag();
  }
  const index_t count = dim(n) >> K;
  const auto body = [&](index_t j, std::array<double, B>& xr, std::array<double, B>& xi,
                        std::array<double, B>& yr, std::array<double, B>& yi) {
    const index_t base = expand(j);
    for (index_t b = 0; b < B; ++b) {
      const complex_t v = a[base | offs[b]];
      xr[b] = v.real();
      xi[b] = v.imag();
    }
    for (index_t r = 0; r < B; ++r) {
      const double* urow = ur.data() + r * B;
      const double* uirow = ui.data() + r * B;
      double accr = 0.0, acci = 0.0;
      for (index_t c = 0; c < B; ++c) {
        accr += urow[c] * xr[c] - uirow[c] * xi[c];
        acci += urow[c] * xi[c] + uirow[c] * xr[c];
      }
      yr[r] = accr;
      yi[r] = acci;
    }
    for (index_t b = 0; b < B; ++b) a[base | offs[b]] = complex_t{yr[b], yi[b]};
  };
  if constexpr (Par) {
#pragma omp parallel if (worth_parallelizing(count))
    {
      alignas(64) std::array<double, B> xr, xi, yr, yi;
#pragma omp for schedule(static)
      for (index_t j = 0; j < count; ++j) body(j, xr, xi, yr, yi);
    }
  } else {
    alignas(64) std::array<double, B> xr, xi, yr, yi;
    for (index_t j = 0; j < count; ++j) body(j, xr, xi, yr, yi);
  }
}

/// Generic fallback for the widest blocks (heap-sized scratch).
template <bool Par>
void apply_multi_generic(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                         std::span<const complex_t> u) {
  const auto k = static_cast<qubit_t>(targets.size());
  const index_t block = dim(k);
  const BitExpander expand{targets};
  const auto offs = block_offsets<dim(kMaxFusedWidth)>(targets);
  const complex_t* um = u.data();
  const index_t count = dim(n) >> k;
  const auto body = [&](index_t j, std::vector<complex_t>& x, std::vector<complex_t>& y) {
    const index_t base = expand(j);
    for (index_t b = 0; b < block; ++b) x[b] = a[base | offs[b]];
    for (index_t r = 0; r < block; ++r) {
      const complex_t* row = um + r * block;
      complex_t acc{};
      for (index_t c = 0; c < block; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
    for (index_t b = 0; b < block; ++b) a[base | offs[b]] = y[b];
  };
  if constexpr (Par) {
#pragma omp parallel if (worth_parallelizing(count))
    {
      std::vector<complex_t> x(block), y(block);
#pragma omp for schedule(static)
      for (index_t j = 0; j < count; ++j) body(j, x, y);
    }
  } else {
    std::vector<complex_t> x(block), y(block);
    for (index_t j = 0; j < count; ++j) body(j, x, y);
  }
}

/// Serial 2-qubit dense apply for the chunk executor: the generic
/// gather kernel pays per-block staging (~2x at B = 4); this walks the
/// four target-bit runs directly and does the unrolled 4x4 mat-vec in
/// double planes, which vectorizes across the contiguous low-bit run.
void apply_multi2_serial(std::span<complex_t> a, qubit_t n, qubit_t t0, qubit_t t1,
                         std::span<const complex_t> u) {
  const index_t size = dim(n);
  const index_t b0 = index_t{1} << t0;
  const index_t b1 = index_t{1} << t1;
  // Unitary coefficient planes, row-major 4x4.
  double ur[16], ui[16];
  for (int i = 0; i < 16; ++i) {
    ur[i] = u[i].real();
    ui[i] = u[i].imag();
  }
  for (index_t g1 = 0; g1 < size; g1 += b1 << 1) {
    for (index_t g0 = g1; g0 < g1 + b1; g0 += b0 << 1) {
      // Four interleaved runs of b0 amplitudes: local basis {00,01,10,11}
      // at offsets {0, b0, b1, b0 + b1} (local bit 0 <-> t0).
      double* p0 = real_imag_planes(a.data() + g0);
      double* p1 = p0 + 2 * b0;
      double* p2 = real_imag_planes(a.data() + g0 + b1);
      double* p3 = p2 + 2 * b0;
      for (index_t i = 0; i < 2 * b0; i += 2) {
        const double xr[4] = {p0[i], p1[i], p2[i], p3[i]};
        const double xi[4] = {p0[i + 1], p1[i + 1], p2[i + 1], p3[i + 1]};
        double yr[4], yi[4];
        for (int r = 0; r < 4; ++r) {
          const double* urr = ur + 4 * r;
          const double* uir = ui + 4 * r;
          yr[r] = urr[0] * xr[0] - uir[0] * xi[0] + urr[1] * xr[1] - uir[1] * xi[1] +
                  urr[2] * xr[2] - uir[2] * xi[2] + urr[3] * xr[3] - uir[3] * xi[3];
          yi[r] = urr[0] * xi[0] + uir[0] * xr[0] + urr[1] * xi[1] + uir[1] * xr[1] +
                  urr[2] * xi[2] + uir[2] * xr[2] + urr[3] * xi[3] + uir[3] * xr[3];
        }
        p0[i] = yr[0];
        p0[i + 1] = yi[0];
        p1[i] = yr[1];
        p1[i + 1] = yi[1];
        p2[i] = yr[2];
        p2[i + 1] = yi[2];
        p3[i] = yr[3];
        p3[i + 1] = yi[3];
      }
    }
  }
}

template <bool Par>
void apply_multi_dispatch(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                          std::span<const complex_t> u) {
  const auto k = static_cast<qubit_t>(targets.size());
  assert(k >= 1 && k <= kMaxFusedWidth && k <= n);
  assert(u.size() == dim(k) * dim(k));
  assert(std::is_sorted(targets.begin(), targets.end()));
  switch (k) {
    case 1: return apply_multi_t<1, Par>(a, n, targets, u);
    case 2:
      if constexpr (!Par) return apply_multi2_serial(a, n, targets[0], targets[1], u);
      return apply_multi_t<2, Par>(a, n, targets, u);
    case 3: return apply_multi_t<3, Par>(a, n, targets, u);
    case 4: return apply_multi_t<4, Par>(a, n, targets, u);
    case 5: return apply_multi_t<5, Par>(a, n, targets, u);
    case 6: return apply_multi_t<6, Par>(a, n, targets, u);
    default: return apply_multi_generic<Par>(a, n, targets, u);
  }
}

}  // namespace

void apply_multi(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                 std::span<const complex_t> u) {
  apply_multi_dispatch<true>(a, n, targets, u);
}

void apply_multi_serial(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                        std::span<const complex_t> u) {
  apply_multi_dispatch<false>(a, n, targets, u);
}

void apply_multi_diagonal(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                          std::span<const complex_t> d) {
  const auto k = static_cast<qubit_t>(targets.size());
  assert(k >= 1 && k <= kMaxFusedWidth && k <= n);
  assert(d.size() == dim(k));
  const index_t size = dim(n);
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    index_t b = 0;
    for (qubit_t l = 0; l < k; ++l) b |= bits::get(i, targets[l]) << l;
    a[i] *= d[b];
  }
}

void apply_multi_diagonal_serial(std::span<complex_t> a, qubit_t n,
                                 std::span<const qubit_t> targets,
                                 std::span<const complex_t> d) {
  const auto k = static_cast<qubit_t>(targets.size());
  assert(k >= 1 && k <= kMaxFusedWidth && k <= n);
  assert(d.size() == dim(k));
  const index_t size = dim(n);
  for (index_t i = 0; i < size; ++i) {
    index_t b = 0;
    for (qubit_t l = 0; l < k; ++l) b |= bits::get(i, targets[l]) << l;
    a[i] *= d[b];
  }
}

void apply_qubit_swaps(std::span<complex_t> a, qubit_t n,
                       std::span<const std::array<qubit_t, 2>> pairs) {
  if (pairs.empty()) return;
#ifndef NDEBUG
  index_t seen = 0;
  for (const auto& p : pairs) {
    assert(p[0] < n && p[1] < n && p[0] != p[1]);
    assert(!bits::test(seen, p[0]) && !bits::test(seen, p[1]));
    seen = bits::set(bits::set(seen, p[0]), p[1]);
  }
#endif
  const index_t size = dim(n);
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    index_t j = i;
    for (const auto& p : pairs)
      if (bits::get(i, p[0]) != bits::get(i, p[1]))
        j ^= (index_t{1} << p[0]) | (index_t{1} << p[1]);
    if (j > i) std::swap(a[i], a[j]);
  }
}

void apply_fused_diagonal(std::span<complex_t> a, std::span<const DiagonalTerm> terms) {
  const index_t size = a.size();
  // Factor-table fast path: when the union support fits a fused-width
  // block, each amplitude's factor depends only on those k bits —
  // precompute all 2^k products once and let apply_multi_diagonal do a
  // branch-free table-lookup sweep.
  index_t support = 0;
  for (const DiagonalTerm& t : terms) support |= t.cmask | (index_t{1} << t.target);
  const int k = bits::popcount(support);
  if (k >= 1 && k <= static_cast<int>(kMaxFusedWidth)) {
    const std::vector<qubit_t> pos = sorted_bit_positions(support);
    const index_t block = index_t{1} << k;
    std::vector<complex_t> d(block);
    for (index_t b = 0; b < block; ++b) {
      index_t idx = 0;
      for (int l = 0; l < k; ++l)
        if (bits::test(b, static_cast<qubit_t>(l))) idx = bits::set(idx, pos[l]);
      complex_t factor{1.0};
      for (const DiagonalTerm& t : terms) {
        if ((idx & t.cmask) != t.cmask) continue;
        factor *= bits::test(idx, t.target) ? t.d1 : t.d0;
      }
      d[b] = factor;
    }
    apply_multi_diagonal(a, bits::log2_floor(size), pos, d);
    return;
  }
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    complex_t factor{1.0};
    for (const DiagonalTerm& t : terms) {
      if ((i & t.cmask) != t.cmask) continue;
      factor *= bits::test(i, t.target) ? t.d1 : t.d0;
    }
    a[i] *= factor;
  }
}

}  // namespace qc::sim::kernels
