#include "sim/kernels.hpp"

#include <algorithm>

namespace qc::sim::kernels {

std::vector<qubit_t> sorted_bit_positions(index_t mask, std::initializer_list<qubit_t> extra) {
  std::vector<qubit_t> pos;
  for (qubit_t k = 0; mask >> k; ++k)
    if (bits::test(mask, k)) pos.push_back(k);
  pos.insert(pos.end(), extra.begin(), extra.end());
  std::sort(pos.begin(), pos.end());
  return pos;
}

void apply_generic_masked(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask,
                          const U2& u, bool parallel) {
  const index_t pairs = dim(n) >> 1;
  const index_t tbit = index_t{1} << target;
  if (parallel) {
#pragma omp parallel for schedule(static) if (worth_parallelizing(pairs))
    for (index_t j = 0; j < pairs; ++j) {
      const index_t i0 = bits::insert_bit(j, target);
      if ((i0 & cmask) != cmask) continue;
      const index_t i1 = i0 | tbit;
      const complex_t x0 = a[i0], x1 = a[i1];
      a[i0] = u.m00 * x0 + u.m01 * x1;
      a[i1] = u.m10 * x0 + u.m11 * x1;
    }
  } else {
    for (index_t j = 0; j < pairs; ++j) {
      const index_t i0 = bits::insert_bit(j, target);
      if ((i0 & cmask) != cmask) continue;
      const index_t i1 = i0 | tbit;
      const complex_t x0 = a[i0], x1 = a[i1];
      a[i0] = u.m00 * x0 + u.m01 * x1;
      a[i1] = u.m10 * x0 + u.m11 * x1;
    }
  }
}

void apply_folded(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask,
                  const U2& u) {
  const auto pos = sorted_bit_positions(cmask, {target});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t tbit = index_t{1} << target;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i0 = expand(j) | cmask;
    const index_t i1 = i0 | tbit;
    const complex_t x0 = a[i0], x1 = a[i1];
    a[i0] = u.m00 * x0 + u.m01 * x1;
    a[i1] = u.m10 * x0 + u.m11 * x1;
  }
}

void apply_diagonal(std::span<complex_t> a, qubit_t n, qubit_t target, complex_t d0,
                    complex_t d1, index_t cmask) {
  if (d0 == complex_t{1.0}) {
    // Phase-type gate: only amplitudes with target=1 and controls=1
    // change — a quarter of the vector for the paper's CR gate.
    const auto pos = sorted_bit_positions(cmask, {target});
    const BitExpander expand{pos};
    const index_t count = dim(n) >> pos.size();
    const index_t set_mask = cmask | (index_t{1} << target);
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
    for (index_t j = 0; j < count; ++j) a[expand(j) | set_mask] *= d1;
    return;
  }
  // General diagonal (e.g. Rz): one in-place sweep over the controls=1
  // part, choosing d0/d1 by the target bit.
  const auto pos = sorted_bit_positions(cmask, {});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t tbit = index_t{1} << target;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i = expand(j) | cmask;
    a[i] *= (i & tbit) ? d1 : d0;
  }
}

void apply_x(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask) {
  const auto pos = sorted_bit_positions(cmask, {target});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t tbit = index_t{1} << target;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t i0 = expand(j) | cmask;
    std::swap(a[i0], a[i0 | tbit]);
  }
}

void apply_swap(std::span<complex_t> a, qubit_t n, qubit_t qa, qubit_t qb, index_t cmask) {
  // Touches only indices where the two bits differ: enumerate with both
  // bits removed, swap (qa=1,qb=0) with (qa=0,qb=1).
  const auto pos = sorted_bit_positions(cmask, {qa, qb});
  const BitExpander expand{pos};
  const index_t count = dim(n) >> pos.size();
  const index_t abit = index_t{1} << qa;
  const index_t bbit = index_t{1} << qb;
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t j = 0; j < count; ++j) {
    const index_t base = expand(j) | cmask;
    std::swap(a[base | abit], a[base | bbit]);
  }
}

void apply_fused_diagonal(std::span<complex_t> a, std::span<const DiagonalTerm> terms) {
  const index_t size = a.size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) {
    complex_t factor{1.0};
    for (const DiagonalTerm& t : terms) {
      if ((i & t.cmask) != t.cmask) continue;
      factor *= bits::test(i, t.target) ? t.d1 : t.d0;
    }
    a[i] *= factor;
  }
}

}  // namespace qc::sim::kernels
