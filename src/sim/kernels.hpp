// Gate-application kernels on raw amplitude arrays.
//
// Three tiers, matching the three simulators the paper benchmarks
// against each other (§4.5):
//
//  * generic_masked — the unspecialized kernel: traverses every
//    (target=0, target=1) amplitude pair, checks the control mask per
//    pair, and performs the full 2x2 complex multiply even for diagonal
//    or permutation gates. LiquidLike uses it single-threaded,
//    QhipsterLike uses it with OpenMP.
//
//  * folded / diagonal / x fast paths — "our simulator": enumerate only
//    the amplitudes a gate actually changes. A controlled phase shift
//    touches a quarter of the state vector (the paper's §3.2 counts
//    exactly this), a NOT is a pure swap with zero flops, and controls
//    fold into the index enumeration instead of a per-pair branch.
//
//  * fused diagonal runs — consecutive diagonal gates commute and can be
//    applied in a single memory sweep; exposed for the ablation bench.
//
// Every kernel is templated on the real amplitude scalar T in
// {float, double}: fp64 is the reference, fp32 halves the bytes each
// sweep moves (the paper's figure of merit is bandwidth, §4.2). The
// contiguous-run inner loops of the dense 2x2 / 4x4 and diagonal kernels
// are further routed through runtime-dispatched SIMD microkernels
// (kernels_dispatch.hpp) so one portable binary still saturates AVX2 /
// AVX-512 hosts.
//
// All kernels are race-free under OpenMP: iteration index j maps to a
// unique amplitude (pair), so static scheduling partitions memory
// disjointly.
#pragma once

#include <array>
#include <cassert>
#include <span>
#include <type_traits>
#include <vector>

#include "common/bits.hpp"
#include "common/parallel.hpp"
#include "common/types.hpp"

namespace qc::sim::kernels {

/// Dense 2x2 unitary block, row-major, over real scalar T.
template <typename T>
struct U2T {
  basic_complex_t<T> m00, m01, m10, m11;
};

/// Double-precision alias — the default across the non-templated API.
using U2 = U2T<double>;

/// Converts a 2x2 block between amplitude precisions (planning stays
/// fp64; executors narrow the block once per gate, not per amplitude).
template <typename T>
constexpr U2T<T> u2_cast(const U2& u) noexcept {
  if constexpr (std::is_same_v<T, double>) {
    return u;
  } else {
    return U2T<T>{static_cast<basic_complex_t<T>>(u.m00), static_cast<basic_complex_t<T>>(u.m01),
                  static_cast<basic_complex_t<T>>(u.m10), static_cast<basic_complex_t<T>>(u.m11)};
  }
}

/// The sanctioned way to view a run of complex amplitudes as interleaved
/// {re, im} scalar pairs (amplitude j at planes[2j], planes[2j + 1]).
/// [complex.numbers.general]/4 guarantees this array compatibility: for
/// an array a of std::complex<T>, reinterpret_cast<T*>(a)[2j]
/// and [2j + 1] designate the real and imaginary parts of a[j]. The
/// vectorized kernels use it to operate on contiguous runs; every
/// complex->scalar reinterpretation in the codebase must go through this
/// accessor so the (single, standard-blessed) aliasing assumption is
/// written down exactly once.
template <typename T>
inline T* real_imag_planes(basic_complex_t<T>* c) noexcept {
  return reinterpret_cast<T*>(c);
}

template <typename T>
inline const T* real_imag_planes(const basic_complex_t<T>* c) noexcept {
  return reinterpret_cast<const T*>(c);
}

/// Expands a compressed index to a full basis index by re-inserting 0
/// bits at the given (ascending) positions. Enumerating j in
/// [0, 2^{n-k}) and expanding visits every index whose k special bits
/// are 0 exactly once.
class BitExpander {
 public:
  BitExpander() = default;

  /// `positions` must be strictly ascending qubit labels.
  explicit BitExpander(std::span<const qubit_t> positions) : count_(positions.size()) {
    assert(positions.size() <= pos_.size());
    for (std::size_t i = 0; i < positions.size(); ++i) pos_[i] = positions[i];
  }

  [[nodiscard]] index_t operator()(index_t j) const noexcept {
    index_t r = j;
    for (std::size_t i = 0; i < count_; ++i) r = bits::insert_bit(r, pos_[i]);
    return r;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  std::array<qubit_t, 16> pos_{};
  std::size_t count_ = 0;
};

/// Sorted list of the set bits of `mask` plus optionally extra bits.
std::vector<qubit_t> sorted_bit_positions(index_t mask, std::initializer_list<qubit_t> extra = {});

// ---------------------------------------------------------------------
// Unspecialized tier.
// ---------------------------------------------------------------------

/// Full pair traversal with per-pair control check and dense 2x2 math.
/// `parallel` selects OpenMP (QhipsterLike) vs serial (LiquidLike).
template <typename T>
void apply_generic_masked(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target,
                          index_t cmask, const U2T<T>& u, bool parallel);

// ---------------------------------------------------------------------
// Specialized tier ("our simulator").
// ---------------------------------------------------------------------

/// Control-folded dense 2x2: enumerates only pairs whose controls are
/// satisfied (2^{n-1-c} pairs instead of 2^{n-1}).
template <typename T>
void apply_folded(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target, index_t cmask,
                  const U2T<T>& u);

/// Diagonal gate diag(d0, d1) on `target`, controls folded. If d0 == 1
/// (Z, S, T, R(theta)/CR) only the target=1, controls=1 quarter/half is
/// touched; otherwise a single in-place sweep of the controls=1 part.
template <typename T>
void apply_diagonal(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target,
                    basic_complex_t<T> d0, basic_complex_t<T> d1, index_t cmask);

/// NOT/CNOT/Toffoli as a pure amplitude swap (no flops), controls folded.
template <typename T>
void apply_x(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target, index_t cmask);

/// SWAP gate: exchanges amplitudes where the two target bits differ.
template <typename T>
void apply_swap(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t qa, qubit_t qb,
                index_t cmask);

// ---------------------------------------------------------------------
// Serial chunk-local variants (cache-blocked execution, qc::sched).
//
// Same math as the parallel kernels above, with no OpenMP region: the
// cache-blocked executor parallelizes *across* chunks and calls these on
// one cache-resident chunk (a, n = chunk width) from inside that outer
// parallel loop, so the inner kernels must stay serial.
// ---------------------------------------------------------------------

template <typename T>
void apply_folded_serial(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target,
                         index_t cmask, const U2T<T>& u);
template <typename T>
void apply_diagonal_serial(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target,
                           basic_complex_t<T> d0, basic_complex_t<T> d1, index_t cmask);
template <typename T>
void apply_x_serial(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t target, index_t cmask);
template <typename T>
void apply_swap_serial(std::span<basic_complex_t<T>> a, qubit_t n, qubit_t qa, qubit_t qb,
                       index_t cmask);

// ---------------------------------------------------------------------
// Fusion tier.
// ---------------------------------------------------------------------

/// One gate of a fused diagonal run.
template <typename T>
struct DiagonalTermT {
  qubit_t target = 0;
  index_t cmask = 0;
  basic_complex_t<T> d0{T{1}}, d1{T{1}};
};

/// Double-precision alias — what the fusion planner emits.
using DiagonalTerm = DiagonalTermT<double>;

/// Applies a run of diagonal gates in a single sweep: each amplitude is
/// multiplied by the product of its per-gate factors. One memory pass
/// instead of terms.size() passes — the memory-bound win measured by the
/// ablation bench. When the union of the terms' support (targets plus
/// controls) spans at most kMaxFusedWidth qubits, the per-amplitude
/// factor depends only on those bits: the 2^k factor table is built once
/// and the sweep dispatches to apply_multi_diagonal, replacing the
/// O(size x terms) branchy inner loop with one table lookup.
template <typename T>
void apply_fused_diagonal(std::span<basic_complex_t<T>> a,
                          std::span<const DiagonalTermT<T>> terms);

// ---------------------------------------------------------------------
// k-qubit dense tier (gate fusion).
// ---------------------------------------------------------------------

/// Widest fused block apply_multi supports. Bounds the per-thread gather
/// scratch (2^k amplitudes) and the fused unitary (2^k x 2^k); beyond
/// ~6 qubits the per-amplitude mat-vec work dominates the memory-pass
/// saving anyway (see bench/ablation_fusion).
inline constexpr qubit_t kMaxFusedWidth = 8;

/// Applies a dense 2^k x 2^k unitary `u` (row-major) to the k qubits
/// `targets` (strictly ascending global labels, k in [1, kMaxFusedWidth])
/// in one sweep: for each of the 2^{n-k} outer indices, gathers the
/// 2^k-amplitude block, multiplies by `u`, scatters back. This is the
/// generalized-BitExpander execution engine for fused gate blocks: one
/// memory pass replaces one pass per original gate.
template <typename T>
void apply_multi(std::span<basic_complex_t<T>> a, qubit_t n, std::span<const qubit_t> targets,
                 std::span<const basic_complex_t<T>> u);

/// Diagonal specialization of apply_multi: multiplies each amplitude by
/// the diagonal entry `d[b]` selected by its k target bits (d has 2^k
/// entries). Single in-place sweep, no gather/scatter.
template <typename T>
void apply_multi_diagonal(std::span<basic_complex_t<T>> a, qubit_t n,
                          std::span<const qubit_t> targets,
                          std::span<const basic_complex_t<T>> d);

/// Serial chunk-local variants of the k-qubit tier (see the serial
/// single-gate variants above for the calling convention).
template <typename T>
void apply_multi_serial(std::span<basic_complex_t<T>> a, qubit_t n,
                        std::span<const qubit_t> targets,
                        std::span<const basic_complex_t<T>> u);
template <typename T>
void apply_multi_diagonal_serial(std::span<basic_complex_t<T>> a, qubit_t n,
                                 std::span<const qubit_t> targets,
                                 std::span<const basic_complex_t<T>> d);

// ---------------------------------------------------------------------
// Qubit remapping (cache-blocked scheduler's local/global relocation).
// ---------------------------------------------------------------------

/// Applies a set of disjoint qubit transpositions in ONE full pass:
/// amplitude i exchanges with the index obtained by swapping, for every
/// pair {a, b}, bits a and b of i. Because the pairs are disjoint the
/// index map is an involution, so the sweep is race-free in place (the
/// iteration owning min(i, image) performs the swap) — this is how the
/// sched layer relocates "high" qubits into the cache-local low block,
/// the cache-level analogue of dist_sv's rank exchange. All pair
/// members must be distinct qubits below n.
template <typename T>
void apply_qubit_swaps(std::span<basic_complex_t<T>> a, qubit_t n,
                       std::span<const std::array<qubit_t, 2>> pairs);

// ---------------------------------------------------------------------
// Permutation / phase templates (inlined per callsite; used by the
// emulator's classical-function shortcut and by tests).
// ---------------------------------------------------------------------

/// Permutes amplitudes: new[f(i)] = old[i]. `f` must be a bijection on
/// [0, a.size()); scratch must be the same size as a.
template <typename T, typename F>
void apply_permutation(std::span<basic_complex_t<T>> a, std::span<basic_complex_t<T>> scratch,
                       F&& f) {
  assert(scratch.size() == a.size());
  const index_t size = a.size();
#pragma omp parallel for if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) scratch[f(i)] = a[i];
#pragma omp parallel for if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) a[i] = scratch[i];
}

/// Multiplies each amplitude by a per-index factor: a[i] *= f(i).
template <typename T, typename F>
void apply_phase_oracle(std::span<basic_complex_t<T>> a, F&& f) {
  const index_t size = a.size();
#pragma omp parallel for if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) a[i] *= static_cast<basic_complex_t<T>>(f(i));
}

}  // namespace qc::sim::kernels
