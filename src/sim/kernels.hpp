// Gate-application kernels on raw amplitude arrays.
//
// Three tiers, matching the three simulators the paper benchmarks
// against each other (§4.5):
//
//  * generic_masked — the unspecialized kernel: traverses every
//    (target=0, target=1) amplitude pair, checks the control mask per
//    pair, and performs the full 2x2 complex multiply even for diagonal
//    or permutation gates. LiquidLike uses it single-threaded,
//    QhipsterLike uses it with OpenMP.
//
//  * folded / diagonal / x fast paths — "our simulator": enumerate only
//    the amplitudes a gate actually changes. A controlled phase shift
//    touches a quarter of the state vector (the paper's §3.2 counts
//    exactly this), a NOT is a pure swap with zero flops, and controls
//    fold into the index enumeration instead of a per-pair branch.
//
//  * fused diagonal runs — consecutive diagonal gates commute and can be
//    applied in a single memory sweep; exposed for the ablation bench.
//
// All kernels are race-free under OpenMP: iteration index j maps to a
// unique amplitude (pair), so static scheduling partitions memory
// disjointly.
#pragma once

#include <array>
#include <cassert>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "common/parallel.hpp"
#include "common/types.hpp"

namespace qc::sim::kernels {

/// Dense 2x2 unitary block, row-major.
struct U2 {
  complex_t m00, m01, m10, m11;
};

/// The sanctioned way to view a run of complex amplitudes as interleaved
/// {re, im} double pairs (amplitude j at planes[2j], planes[2j + 1]).
/// [complex.numbers.general]/4 guarantees this array compatibility: for
/// an array a of std::complex<double>, reinterpret_cast<double*>(a)[2j]
/// and [2j + 1] designate the real and imaginary parts of a[j]. The
/// vectorized serial kernels use it to auto-vectorize over contiguous
/// runs; every complex->double reinterpretation in the codebase must go
/// through this accessor so the (single, standard-blessed) aliasing
/// assumption is written down exactly once.
inline double* real_imag_planes(complex_t* c) noexcept {
  return reinterpret_cast<double*>(c);
}

inline const double* real_imag_planes(const complex_t* c) noexcept {
  return reinterpret_cast<const double*>(c);
}

/// Expands a compressed index to a full basis index by re-inserting 0
/// bits at the given (ascending) positions. Enumerating j in
/// [0, 2^{n-k}) and expanding visits every index whose k special bits
/// are 0 exactly once.
class BitExpander {
 public:
  BitExpander() = default;

  /// `positions` must be strictly ascending qubit labels.
  explicit BitExpander(std::span<const qubit_t> positions) : count_(positions.size()) {
    assert(positions.size() <= pos_.size());
    for (std::size_t i = 0; i < positions.size(); ++i) pos_[i] = positions[i];
  }

  [[nodiscard]] index_t operator()(index_t j) const noexcept {
    index_t r = j;
    for (std::size_t i = 0; i < count_; ++i) r = bits::insert_bit(r, pos_[i]);
    return r;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  std::array<qubit_t, 16> pos_{};
  std::size_t count_ = 0;
};

/// Sorted list of the set bits of `mask` plus optionally extra bits.
std::vector<qubit_t> sorted_bit_positions(index_t mask, std::initializer_list<qubit_t> extra = {});

// ---------------------------------------------------------------------
// Unspecialized tier.
// ---------------------------------------------------------------------

/// Full pair traversal with per-pair control check and dense 2x2 math.
/// `parallel` selects OpenMP (QhipsterLike) vs serial (LiquidLike).
void apply_generic_masked(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask,
                          const U2& u, bool parallel);

// ---------------------------------------------------------------------
// Specialized tier ("our simulator").
// ---------------------------------------------------------------------

/// Control-folded dense 2x2: enumerates only pairs whose controls are
/// satisfied (2^{n-1-c} pairs instead of 2^{n-1}).
void apply_folded(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask, const U2& u);

/// Diagonal gate diag(d0, d1) on `target`, controls folded. If d0 == 1
/// (Z, S, T, R(theta)/CR) only the target=1, controls=1 quarter/half is
/// touched; otherwise a single in-place sweep of the controls=1 part.
void apply_diagonal(std::span<complex_t> a, qubit_t n, qubit_t target, complex_t d0,
                    complex_t d1, index_t cmask);

/// NOT/CNOT/Toffoli as a pure amplitude swap (no flops), controls folded.
void apply_x(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask);

/// SWAP gate: exchanges amplitudes where the two target bits differ.
void apply_swap(std::span<complex_t> a, qubit_t n, qubit_t qa, qubit_t qb, index_t cmask);

// ---------------------------------------------------------------------
// Serial chunk-local variants (cache-blocked execution, qc::sched).
//
// Same math as the parallel kernels above, with no OpenMP region: the
// cache-blocked executor parallelizes *across* chunks and calls these on
// one cache-resident chunk (a, n = chunk width) from inside that outer
// parallel loop, so the inner kernels must stay serial.
// ---------------------------------------------------------------------

void apply_folded_serial(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask,
                         const U2& u);
void apply_diagonal_serial(std::span<complex_t> a, qubit_t n, qubit_t target, complex_t d0,
                           complex_t d1, index_t cmask);
void apply_x_serial(std::span<complex_t> a, qubit_t n, qubit_t target, index_t cmask);
void apply_swap_serial(std::span<complex_t> a, qubit_t n, qubit_t qa, qubit_t qb,
                       index_t cmask);

// ---------------------------------------------------------------------
// Fusion tier.
// ---------------------------------------------------------------------

/// One gate of a fused diagonal run.
struct DiagonalTerm {
  qubit_t target = 0;
  index_t cmask = 0;
  complex_t d0{1.0}, d1{1.0};
};

/// Applies a run of diagonal gates in a single sweep: each amplitude is
/// multiplied by the product of its per-gate factors. One memory pass
/// instead of terms.size() passes — the memory-bound win measured by the
/// ablation bench. When the union of the terms' support (targets plus
/// controls) spans at most kMaxFusedWidth qubits, the per-amplitude
/// factor depends only on those bits: the 2^k factor table is built once
/// and the sweep dispatches to apply_multi_diagonal, replacing the
/// O(size x terms) branchy inner loop with one table lookup.
void apply_fused_diagonal(std::span<complex_t> a, std::span<const DiagonalTerm> terms);

// ---------------------------------------------------------------------
// k-qubit dense tier (gate fusion).
// ---------------------------------------------------------------------

/// Widest fused block apply_multi supports. Bounds the per-thread gather
/// scratch (2^k amplitudes) and the fused unitary (2^k x 2^k); beyond
/// ~6 qubits the per-amplitude mat-vec work dominates the memory-pass
/// saving anyway (see bench/ablation_fusion).
inline constexpr qubit_t kMaxFusedWidth = 8;

/// Applies a dense 2^k x 2^k unitary `u` (row-major) to the k qubits
/// `targets` (strictly ascending global labels, k in [1, kMaxFusedWidth])
/// in one sweep: for each of the 2^{n-k} outer indices, gathers the
/// 2^k-amplitude block, multiplies by `u`, scatters back. This is the
/// generalized-BitExpander execution engine for fused gate blocks: one
/// memory pass replaces one pass per original gate.
void apply_multi(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                 std::span<const complex_t> u);

/// Diagonal specialization of apply_multi: multiplies each amplitude by
/// the diagonal entry `d[b]` selected by its k target bits (d has 2^k
/// entries). Single in-place sweep, no gather/scatter.
void apply_multi_diagonal(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                          std::span<const complex_t> d);

/// Serial chunk-local variants of the k-qubit tier (see the serial
/// single-gate variants above for the calling convention).
void apply_multi_serial(std::span<complex_t> a, qubit_t n, std::span<const qubit_t> targets,
                        std::span<const complex_t> u);
void apply_multi_diagonal_serial(std::span<complex_t> a, qubit_t n,
                                 std::span<const qubit_t> targets,
                                 std::span<const complex_t> d);

// ---------------------------------------------------------------------
// Qubit remapping (cache-blocked scheduler's local/global relocation).
// ---------------------------------------------------------------------

/// Applies a set of disjoint qubit transpositions in ONE full pass:
/// amplitude i exchanges with the index obtained by swapping, for every
/// pair {a, b}, bits a and b of i. Because the pairs are disjoint the
/// index map is an involution, so the sweep is race-free in place (the
/// iteration owning min(i, image) performs the swap) — this is how the
/// sched layer relocates "high" qubits into the cache-local low block,
/// the cache-level analogue of dist_sv's rank exchange. All pair
/// members must be distinct qubits below n.
void apply_qubit_swaps(std::span<complex_t> a, qubit_t n,
                       std::span<const std::array<qubit_t, 2>> pairs);

// ---------------------------------------------------------------------
// Permutation / phase templates (inlined per callsite; used by the
// emulator's classical-function shortcut and by tests).
// ---------------------------------------------------------------------

/// Permutes amplitudes: new[f(i)] = old[i]. `f` must be a bijection on
/// [0, a.size()); scratch must be the same size as a.
template <typename F>
void apply_permutation(std::span<complex_t> a, std::span<complex_t> scratch, F&& f) {
  assert(scratch.size() == a.size());
  const index_t size = a.size();
#pragma omp parallel for if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) scratch[f(i)] = a[i];
#pragma omp parallel for if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) a[i] = scratch[i];
}

/// Multiplies each amplitude by a per-index factor: a[i] *= f(i).
template <typename F>
void apply_phase_oracle(std::span<complex_t> a, F&& f) {
  const index_t size = a.size();
#pragma omp parallel for if (worth_parallelizing(size))
  for (index_t i = 0; i < size; ++i) a[i] *= f(i);
}

}  // namespace qc::sim::kernels
