// AVX2+FMA microkernel variants (see kernels_dispatch.hpp).
//
// This translation unit is compiled with -mavx2 -mfma (set per-file in
// CMakeLists.txt) when the compiler supports the flags; it must contain
// ONLY its own out-of-line definitions, never shared inline code, so no
// AVX2 instructions can leak into functions other TUs also emit. When
// the flags are unavailable the fallbacks at the bottom forward to the
// scalar reference and avx2_compiled_in() reports false, keeping the
// dispatch table well-formed on any toolchain.
//
// Complex multiply in the interleaved {re, im} layout: for an even/odd
// lane pair x = (xr, xi) and scalar w = wr + i*wi,
//     x * w = fmaddsub(x, splat(wr), swap_pairs(x) * splat(wi))
// because fmaddsub subtracts in even lanes (xr*wr - xi*wi = re) and
// adds in odd lanes (xi*wr + xr*wi = im). Sums of complex products are
// then plain vector adds.
#include "sim/kernels_dispatch.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace qc::sim::kernels {

bool avx2_compiled_in() noexcept { return true; }

namespace {

/// (xr, xi) -> (xi, xr) per 128-bit complex pair, 2 fp64 amplitudes.
inline __m256d swap_pairs(__m256d x) noexcept { return _mm256_permute_pd(x, 0b0101); }
/// Same for 4 fp32 amplitudes.
inline __m256 swap_pairs(__m256 x) noexcept {
  return _mm256_permute_ps(x, _MM_SHUFFLE(2, 3, 0, 1));
}

/// x * (wr + i*wi) with wr/wi pre-splatted.
inline __m256d cmul(__m256d x, __m256d wr, __m256d wi) noexcept {
  return _mm256_fmaddsub_pd(x, wr, _mm256_mul_pd(swap_pairs(x), wi));
}
inline __m256 cmul(__m256 x, __m256 wr, __m256 wi) noexcept {
  return _mm256_fmaddsub_ps(x, wr, _mm256_mul_ps(swap_pairs(x), wi));
}

}  // namespace

template <>
void dense2_avx2<double>(double* p0, double* p1, index_t count, const double* coef) {
  const __m256d ar = _mm256_set1_pd(coef[0]), ai = _mm256_set1_pd(coef[1]);
  const __m256d br = _mm256_set1_pd(coef[2]), bi = _mm256_set1_pd(coef[3]);
  const __m256d cr = _mm256_set1_pd(coef[4]), ci = _mm256_set1_pd(coef[5]);
  const __m256d dr = _mm256_set1_pd(coef[6]), di = _mm256_set1_pd(coef[7]);
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 4 <= scalars; i += 4) {
    const __m256d x0 = _mm256_loadu_pd(p0 + i);
    const __m256d x1 = _mm256_loadu_pd(p1 + i);
    _mm256_storeu_pd(p0 + i, _mm256_add_pd(cmul(x0, ar, ai), cmul(x1, br, bi)));
    _mm256_storeu_pd(p1 + i, _mm256_add_pd(cmul(x0, cr, ci), cmul(x1, dr, di)));
  }
  if (i < scalars) dense2_scalar<double>(p0 + i, p1 + i, (scalars - i) / 2, coef);
}

template <>
void dense2_avx2<float>(float* p0, float* p1, index_t count, const float* coef) {
  const __m256 ar = _mm256_set1_ps(coef[0]), ai = _mm256_set1_ps(coef[1]);
  const __m256 br = _mm256_set1_ps(coef[2]), bi = _mm256_set1_ps(coef[3]);
  const __m256 cr = _mm256_set1_ps(coef[4]), ci = _mm256_set1_ps(coef[5]);
  const __m256 dr = _mm256_set1_ps(coef[6]), di = _mm256_set1_ps(coef[7]);
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 8 <= scalars; i += 8) {
    const __m256 x0 = _mm256_loadu_ps(p0 + i);
    const __m256 x1 = _mm256_loadu_ps(p1 + i);
    _mm256_storeu_ps(p0 + i, _mm256_add_ps(cmul(x0, ar, ai), cmul(x1, br, bi)));
    _mm256_storeu_ps(p1 + i, _mm256_add_ps(cmul(x0, cr, ci), cmul(x1, dr, di)));
  }
  if (i < scalars) dense2_scalar<float>(p0 + i, p1 + i, (scalars - i) / 2, coef);
}

template <>
void dense4_avx2<double>(double* p0, double* p1, double* p2, double* p3, index_t count,
                         const double* ur, const double* ui) {
  double* rows[4] = {p0, p1, p2, p3};
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 4 <= scalars; i += 4) {
    const __m256d x0 = _mm256_loadu_pd(p0 + i);
    const __m256d x1 = _mm256_loadu_pd(p1 + i);
    const __m256d x2 = _mm256_loadu_pd(p2 + i);
    const __m256d x3 = _mm256_loadu_pd(p3 + i);
    for (int r = 0; r < 4; ++r) {
      const double* urr = ur + 4 * r;
      const double* uir = ui + 4 * r;
      __m256d acc = cmul(x0, _mm256_set1_pd(urr[0]), _mm256_set1_pd(uir[0]));
      acc = _mm256_add_pd(acc, cmul(x1, _mm256_set1_pd(urr[1]), _mm256_set1_pd(uir[1])));
      acc = _mm256_add_pd(acc, cmul(x2, _mm256_set1_pd(urr[2]), _mm256_set1_pd(uir[2])));
      acc = _mm256_add_pd(acc, cmul(x3, _mm256_set1_pd(urr[3]), _mm256_set1_pd(uir[3])));
      _mm256_storeu_pd(rows[r] + i, acc);
    }
  }
  if (i < scalars)
    dense4_scalar<double>(p0 + i, p1 + i, p2 + i, p3 + i, (scalars - i) / 2, ur, ui);
}

template <>
void dense4_avx2<float>(float* p0, float* p1, float* p2, float* p3, index_t count,
                        const float* ur, const float* ui) {
  float* rows[4] = {p0, p1, p2, p3};
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 8 <= scalars; i += 8) {
    const __m256 x0 = _mm256_loadu_ps(p0 + i);
    const __m256 x1 = _mm256_loadu_ps(p1 + i);
    const __m256 x2 = _mm256_loadu_ps(p2 + i);
    const __m256 x3 = _mm256_loadu_ps(p3 + i);
    for (int r = 0; r < 4; ++r) {
      const float* urr = ur + 4 * r;
      const float* uir = ui + 4 * r;
      __m256 acc = cmul(x0, _mm256_set1_ps(urr[0]), _mm256_set1_ps(uir[0]));
      acc = _mm256_add_ps(acc, cmul(x1, _mm256_set1_ps(urr[1]), _mm256_set1_ps(uir[1])));
      acc = _mm256_add_ps(acc, cmul(x2, _mm256_set1_ps(urr[2]), _mm256_set1_ps(uir[2])));
      acc = _mm256_add_ps(acc, cmul(x3, _mm256_set1_ps(urr[3]), _mm256_set1_ps(uir[3])));
      _mm256_storeu_ps(rows[r] + i, acc);
    }
  }
  if (i < scalars)
    dense4_scalar<float>(p0 + i, p1 + i, p2 + i, p3 + i, (scalars - i) / 2, ur, ui);
}

template <>
void scale_avx2<double>(double* p, index_t count, double dr, double di) {
  const __m256d wr = _mm256_set1_pd(dr), wi = _mm256_set1_pd(di);
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 4 <= scalars; i += 4)
    _mm256_storeu_pd(p + i, cmul(_mm256_loadu_pd(p + i), wr, wi));
  if (i < scalars) scale_scalar<double>(p + i, (scalars - i) / 2, dr, di);
}

template <>
void scale_avx2<float>(float* p, index_t count, float dr, float di) {
  const __m256 wr = _mm256_set1_ps(dr), wi = _mm256_set1_ps(di);
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 8 <= scalars; i += 8)
    _mm256_storeu_ps(p + i, cmul(_mm256_loadu_ps(p + i), wr, wi));
  if (i < scalars) scale_scalar<float>(p + i, (scalars - i) / 2, dr, di);
}

}  // namespace qc::sim::kernels

#else  // !(__AVX2__ && __FMA__): flags unavailable — forward to scalar.

namespace qc::sim::kernels {

bool avx2_compiled_in() noexcept { return false; }

template <>
void dense2_avx2<float>(float* p0, float* p1, index_t count, const float* coef) {
  dense2_scalar<float>(p0, p1, count, coef);
}
template <>
void dense2_avx2<double>(double* p0, double* p1, index_t count, const double* coef) {
  dense2_scalar<double>(p0, p1, count, coef);
}
template <>
void dense4_avx2<float>(float* p0, float* p1, float* p2, float* p3, index_t count,
                        const float* ur, const float* ui) {
  dense4_scalar<float>(p0, p1, p2, p3, count, ur, ui);
}
template <>
void dense4_avx2<double>(double* p0, double* p1, double* p2, double* p3, index_t count,
                         const double* ur, const double* ui) {
  dense4_scalar<double>(p0, p1, p2, p3, count, ur, ui);
}
template <>
void scale_avx2<float>(float* p, index_t count, float dr, float di) {
  scale_scalar<float>(p, count, dr, di);
}
template <>
void scale_avx2<double>(double* p, index_t count, double dr, double di) {
  scale_scalar<double>(p, count, dr, di);
}

}  // namespace qc::sim::kernels

#endif
