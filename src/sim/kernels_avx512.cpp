// AVX-512F microkernel variants (see kernels_dispatch.hpp).
//
// Compiled with -mavx512f (per-file, CMakeLists.txt) when the compiler
// supports it; contains only its own out-of-line definitions so no
// 512-bit instructions leak into code shared with other TUs. Same
// fmaddsub complex-multiply scheme as kernels_avx2.cpp, at zmm width:
// 4 fp64 / 8 fp32 amplitudes per register. kAlignment = 64 guarantees
// run *starts* are register-aligned (common/aligned.hpp static_assert),
// but interior offsets need not be, so loads/stores stay unaligned ops
// (same throughput on aligned addresses since Skylake-X).
#include "sim/kernels_dispatch.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#if defined(__GNUC__) && !defined(__clang__)
// GCC's _mm512_undefined_pd() (inside _mm512_permute_pd) trips
// -Wmaybe-uninitialized at every inlined use; the value is intentionally
// undefined and fully overwritten by the mask-less permute.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace qc::sim::kernels {

bool avx512_compiled_in() noexcept { return true; }

namespace {

/// (xr, xi) -> (xi, xr) per complex pair, 4 fp64 amplitudes.
inline __m512d swap_pairs(__m512d x) noexcept { return _mm512_permute_pd(x, 0x55); }
/// Same for 8 fp32 amplitudes.
inline __m512 swap_pairs(__m512 x) noexcept {
  return _mm512_permute_ps(x, _MM_SHUFFLE(2, 3, 0, 1));
}

/// x * (wr + i*wi) with wr/wi pre-splatted (see kernels_avx2.cpp).
inline __m512d cmul(__m512d x, __m512d wr, __m512d wi) noexcept {
  return _mm512_fmaddsub_pd(x, wr, _mm512_mul_pd(swap_pairs(x), wi));
}
inline __m512 cmul(__m512 x, __m512 wr, __m512 wi) noexcept {
  return _mm512_fmaddsub_ps(x, wr, _mm512_mul_ps(swap_pairs(x), wi));
}

}  // namespace

template <>
void dense2_avx512<double>(double* p0, double* p1, index_t count, const double* coef) {
  const __m512d ar = _mm512_set1_pd(coef[0]), ai = _mm512_set1_pd(coef[1]);
  const __m512d br = _mm512_set1_pd(coef[2]), bi = _mm512_set1_pd(coef[3]);
  const __m512d cr = _mm512_set1_pd(coef[4]), ci = _mm512_set1_pd(coef[5]);
  const __m512d dr = _mm512_set1_pd(coef[6]), di = _mm512_set1_pd(coef[7]);
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 8 <= scalars; i += 8) {
    const __m512d x0 = _mm512_loadu_pd(p0 + i);
    const __m512d x1 = _mm512_loadu_pd(p1 + i);
    _mm512_storeu_pd(p0 + i, _mm512_add_pd(cmul(x0, ar, ai), cmul(x1, br, bi)));
    _mm512_storeu_pd(p1 + i, _mm512_add_pd(cmul(x0, cr, ci), cmul(x1, dr, di)));
  }
  if (i < scalars) dense2_scalar<double>(p0 + i, p1 + i, (scalars - i) / 2, coef);
}

template <>
void dense2_avx512<float>(float* p0, float* p1, index_t count, const float* coef) {
  const __m512 ar = _mm512_set1_ps(coef[0]), ai = _mm512_set1_ps(coef[1]);
  const __m512 br = _mm512_set1_ps(coef[2]), bi = _mm512_set1_ps(coef[3]);
  const __m512 cr = _mm512_set1_ps(coef[4]), ci = _mm512_set1_ps(coef[5]);
  const __m512 dr = _mm512_set1_ps(coef[6]), di = _mm512_set1_ps(coef[7]);
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 16 <= scalars; i += 16) {
    const __m512 x0 = _mm512_loadu_ps(p0 + i);
    const __m512 x1 = _mm512_loadu_ps(p1 + i);
    _mm512_storeu_ps(p0 + i, _mm512_add_ps(cmul(x0, ar, ai), cmul(x1, br, bi)));
    _mm512_storeu_ps(p1 + i, _mm512_add_ps(cmul(x0, cr, ci), cmul(x1, dr, di)));
  }
  if (i < scalars) dense2_scalar<float>(p0 + i, p1 + i, (scalars - i) / 2, coef);
}

template <>
void dense4_avx512<double>(double* p0, double* p1, double* p2, double* p3, index_t count,
                           const double* ur, const double* ui) {
  double* rows[4] = {p0, p1, p2, p3};
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 8 <= scalars; i += 8) {
    const __m512d x0 = _mm512_loadu_pd(p0 + i);
    const __m512d x1 = _mm512_loadu_pd(p1 + i);
    const __m512d x2 = _mm512_loadu_pd(p2 + i);
    const __m512d x3 = _mm512_loadu_pd(p3 + i);
    for (int r = 0; r < 4; ++r) {
      const double* urr = ur + 4 * r;
      const double* uir = ui + 4 * r;
      __m512d acc = cmul(x0, _mm512_set1_pd(urr[0]), _mm512_set1_pd(uir[0]));
      acc = _mm512_add_pd(acc, cmul(x1, _mm512_set1_pd(urr[1]), _mm512_set1_pd(uir[1])));
      acc = _mm512_add_pd(acc, cmul(x2, _mm512_set1_pd(urr[2]), _mm512_set1_pd(uir[2])));
      acc = _mm512_add_pd(acc, cmul(x3, _mm512_set1_pd(urr[3]), _mm512_set1_pd(uir[3])));
      _mm512_storeu_pd(rows[r] + i, acc);
    }
  }
  if (i < scalars)
    dense4_scalar<double>(p0 + i, p1 + i, p2 + i, p3 + i, (scalars - i) / 2, ur, ui);
}

template <>
void dense4_avx512<float>(float* p0, float* p1, float* p2, float* p3, index_t count,
                          const float* ur, const float* ui) {
  float* rows[4] = {p0, p1, p2, p3};
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 16 <= scalars; i += 16) {
    const __m512 x0 = _mm512_loadu_ps(p0 + i);
    const __m512 x1 = _mm512_loadu_ps(p1 + i);
    const __m512 x2 = _mm512_loadu_ps(p2 + i);
    const __m512 x3 = _mm512_loadu_ps(p3 + i);
    for (int r = 0; r < 4; ++r) {
      const float* urr = ur + 4 * r;
      const float* uir = ui + 4 * r;
      __m512 acc = cmul(x0, _mm512_set1_ps(urr[0]), _mm512_set1_ps(uir[0]));
      acc = _mm512_add_ps(acc, cmul(x1, _mm512_set1_ps(urr[1]), _mm512_set1_ps(uir[1])));
      acc = _mm512_add_ps(acc, cmul(x2, _mm512_set1_ps(urr[2]), _mm512_set1_ps(uir[2])));
      acc = _mm512_add_ps(acc, cmul(x3, _mm512_set1_ps(urr[3]), _mm512_set1_ps(uir[3])));
      _mm512_storeu_ps(rows[r] + i, acc);
    }
  }
  if (i < scalars)
    dense4_scalar<float>(p0 + i, p1 + i, p2 + i, p3 + i, (scalars - i) / 2, ur, ui);
}

template <>
void scale_avx512<double>(double* p, index_t count, double dr, double di) {
  const __m512d wr = _mm512_set1_pd(dr), wi = _mm512_set1_pd(di);
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 8 <= scalars; i += 8)
    _mm512_storeu_pd(p + i, cmul(_mm512_loadu_pd(p + i), wr, wi));
  if (i < scalars) scale_scalar<double>(p + i, (scalars - i) / 2, dr, di);
}

template <>
void scale_avx512<float>(float* p, index_t count, float dr, float di) {
  const __m512 wr = _mm512_set1_ps(dr), wi = _mm512_set1_ps(di);
  const index_t scalars = 2 * count;
  index_t i = 0;
  for (; i + 16 <= scalars; i += 16)
    _mm512_storeu_ps(p + i, cmul(_mm512_loadu_ps(p + i), wr, wi));
  if (i < scalars) scale_scalar<float>(p + i, (scalars - i) / 2, dr, di);
}

}  // namespace qc::sim::kernels

#else  // !__AVX512F__: flag unavailable — forward to scalar.

namespace qc::sim::kernels {

bool avx512_compiled_in() noexcept { return false; }

template <>
void dense2_avx512<float>(float* p0, float* p1, index_t count, const float* coef) {
  dense2_scalar<float>(p0, p1, count, coef);
}
template <>
void dense2_avx512<double>(double* p0, double* p1, index_t count, const double* coef) {
  dense2_scalar<double>(p0, p1, count, coef);
}
template <>
void dense4_avx512<float>(float* p0, float* p1, float* p2, float* p3, index_t count,
                          const float* ur, const float* ui) {
  dense4_scalar<float>(p0, p1, p2, p3, count, ur, ui);
}
template <>
void dense4_avx512<double>(double* p0, double* p1, double* p2, double* p3, index_t count,
                           const double* ur, const double* ui) {
  dense4_scalar<double>(p0, p1, p2, p3, count, ur, ui);
}
template <>
void scale_avx512<float>(float* p, index_t count, float dr, float di) {
  scale_scalar<float>(p, count, dr, di);
}
template <>
void scale_avx512<double>(double* p, index_t count, double dr, double di) {
  scale_scalar<double>(p, count, dr, di);
}

}  // namespace qc::sim::kernels

#endif
