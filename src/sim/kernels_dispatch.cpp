#include "sim/kernels_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace qc::sim::kernels {

const char* isa_name(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kAvx512: return "avx512";
    case SimdIsa::kAvx2: return "avx2";
    case SimdIsa::kScalar: break;
  }
  return "scalar";
}

bool parse_isa(std::string_view name, SimdIsa& out) noexcept {
  if (name == "scalar") {
    out = SimdIsa::kScalar;
    return true;
  }
  if (name == "avx2") {
    out = SimdIsa::kAvx2;
    return true;
  }
  if (name == "avx512") {
    out = SimdIsa::kAvx512;
    return true;
  }
  return false;
}

SimdIsa detect_isa() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return SimdIsa::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return SimdIsa::kAvx2;
#endif
  return SimdIsa::kScalar;
}

bool isa_available(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kScalar: return true;
    case SimdIsa::kAvx2: return avx2_compiled_in() && detect_isa() >= SimdIsa::kAvx2;
    case SimdIsa::kAvx512: return avx512_compiled_in() && detect_isa() >= SimdIsa::kAvx512;
  }
  return false;
}

namespace {

/// Best ISA the host can run with the variants this binary carries.
SimdIsa best_available() noexcept {
  if (isa_available(SimdIsa::kAvx512)) return SimdIsa::kAvx512;
  if (isa_available(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
  return SimdIsa::kScalar;
}

/// CPUID result clamped by the QC_SIMD override. An override naming an
/// unavailable tier clamps down to the best available one; requesting a
/// lower tier than detected is honored as-is.
SimdIsa resolve_isa() noexcept {
  SimdIsa isa = best_available();
  if (const char* env = std::getenv("QC_SIMD")) {
    SimdIsa wanted{};
    if (parse_isa(env, wanted) && (wanted <= isa || isa_available(wanted))) isa = wanted;
  }
  return isa;
}

// -1 = unresolved; otherwise the cached SimdIsa value. An atomic (not a
// function-local static) so force_isa()/refresh_isa() can swap the
// decision from tests without re-running resolution.
std::atomic<int> g_active{-1};

}  // namespace

SimdIsa active_isa() noexcept {
  int cur = g_active.load(std::memory_order_acquire);
  if (cur < 0) {
    cur = static_cast<int>(resolve_isa());
    g_active.store(cur, std::memory_order_release);
  }
  return static_cast<SimdIsa>(cur);
}

SimdIsa force_isa(SimdIsa isa) {
  if (!isa_available(isa)) {
    throw std::invalid_argument(std::string{"force_isa: "} + isa_name(isa) +
                                " is not available on this host/build");
  }
  const SimdIsa prev = active_isa();
  g_active.store(static_cast<int>(isa), std::memory_order_release);
  return prev;
}

void refresh_isa() { g_active.store(-1, std::memory_order_release); }

// ---------------------------------------------------------------------
// Scalar reference microkernels.
//
// Plain loops over the interleaved planes; with -march=native these
// auto-vectorize, portable builds run them as written. Every ISA
// variant must match these to 1e-12 at fp64 (tests/test_dispatch.cpp).
// ---------------------------------------------------------------------

template <typename T>
void dense2_scalar(T* p0, T* p1, index_t count, const T* coef) {
  const T ar = coef[0], ai = coef[1], br = coef[2], bi = coef[3];
  const T cr = coef[4], ci = coef[5], dr = coef[6], di = coef[7];
  for (index_t i = 0; i < 2 * count; i += 2) {
    const T x0r = p0[i], x0i = p0[i + 1], x1r = p1[i], x1i = p1[i + 1];
    p0[i] = ar * x0r - ai * x0i + br * x1r - bi * x1i;
    p0[i + 1] = ar * x0i + ai * x0r + br * x1i + bi * x1r;
    p1[i] = cr * x0r - ci * x0i + dr * x1r - di * x1i;
    p1[i + 1] = cr * x0i + ci * x0r + dr * x1i + di * x1r;
  }
}

template <typename T>
void dense4_scalar(T* p0, T* p1, T* p2, T* p3, index_t count, const T* ur, const T* ui) {
  for (index_t i = 0; i < 2 * count; i += 2) {
    const T xr[4] = {p0[i], p1[i], p2[i], p3[i]};
    const T xi[4] = {p0[i + 1], p1[i + 1], p2[i + 1], p3[i + 1]};
    T yr[4], yi[4];
    for (int r = 0; r < 4; ++r) {
      const T* urr = ur + 4 * r;
      const T* uir = ui + 4 * r;
      yr[r] = urr[0] * xr[0] - uir[0] * xi[0] + urr[1] * xr[1] - uir[1] * xi[1] +
              urr[2] * xr[2] - uir[2] * xi[2] + urr[3] * xr[3] - uir[3] * xi[3];
      yi[r] = urr[0] * xi[0] + uir[0] * xr[0] + urr[1] * xi[1] + uir[1] * xr[1] +
              urr[2] * xi[2] + uir[2] * xr[2] + urr[3] * xi[3] + uir[3] * xr[3];
    }
    p0[i] = yr[0];
    p0[i + 1] = yi[0];
    p1[i] = yr[1];
    p1[i + 1] = yi[1];
    p2[i] = yr[2];
    p2[i + 1] = yi[2];
    p3[i] = yr[3];
    p3[i + 1] = yi[3];
  }
}

template <typename T>
void scale_scalar(T* p, index_t count, T dr, T di) {
  for (index_t i = 0; i < 2 * count; i += 2) {
    const T xr = p[i], xi = p[i + 1];
    p[i] = xr * dr - xi * di;
    p[i + 1] = xr * di + xi * dr;
  }
}

template void dense2_scalar<float>(float*, float*, index_t, const float*);
template void dense2_scalar<double>(double*, double*, index_t, const double*);
template void dense4_scalar<float>(float*, float*, float*, float*, index_t, const float*,
                                   const float*);
template void dense4_scalar<double>(double*, double*, double*, double*, index_t, const double*,
                                    const double*);
template void scale_scalar<float>(float*, index_t, float, float);
template void scale_scalar<double>(double*, index_t, double, double);

// ---------------------------------------------------------------------
// Dispatch tables.
// ---------------------------------------------------------------------

namespace {

template <typename T>
constexpr Microkernels<T> kScalarTable{&dense2_scalar<T>, &dense4_scalar<T>, &scale_scalar<T>};
template <typename T>
constexpr Microkernels<T> kAvx2Table{&dense2_avx2<T>, &dense4_avx2<T>, &scale_avx2<T>};
template <typename T>
constexpr Microkernels<T> kAvx512Table{&dense2_avx512<T>, &dense4_avx512<T>, &scale_avx512<T>};

}  // namespace

template <typename T>
const Microkernels<T>& microkernels_for(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kAvx512: return kAvx512Table<T>;
    case SimdIsa::kAvx2: return kAvx2Table<T>;
    case SimdIsa::kScalar: break;
  }
  return kScalarTable<T>;
}

template const Microkernels<float>& microkernels_for<float>(SimdIsa) noexcept;
template const Microkernels<double>& microkernels_for<double>(SimdIsa) noexcept;

}  // namespace qc::sim::kernels
