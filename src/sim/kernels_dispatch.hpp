// Runtime ISA dispatch for the dense / diagonal kernel inner loops.
//
// The library ships one portable binary (CI builds with QC_NATIVE=OFF),
// so the hot contiguous-run loops cannot rely on -march=native for
// vectorization. Instead the three microkernels below — dense 2x2,
// dense 4x4, and the run-scaled diagonal — exist in hand-vectorized
// AVX2 and AVX-512 variants next to the scalar reference, and one of
// the three implementations is selected at startup by CPUID-based
// feature detection (overridable with QC_SIMD=scalar|avx2|avx512).
//
// All variants operate on the interleaved {re, im} plane layout exposed
// by kernels::real_imag_planes() — amplitude j of a run lives at
// planes[2j] / planes[2j + 1] — and must agree with the scalar
// reference to 1e-12 at fp64 (tests/test_dispatch.cpp enforces this for
// every gate class; CONTRIBUTING requires the same of any new kernel).
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace qc::sim::kernels {

/// Instruction sets the microkernels are specialized for, in
/// monotonically-increasing capability order.
enum class SimdIsa : int {
  kScalar = 0,  ///< Portable reference loops (also the sanitizer path).
  kAvx2 = 1,    ///< 256-bit FMA over 2 fp64 / 4 fp32 amplitudes.
  kAvx512 = 2,  ///< 512-bit FMA over 4 fp64 / 8 fp32 amplitudes.
};

/// Short stable name ("scalar" / "avx2" / "avx512") for logs, the obs
/// dispatch record, and the QC_SIMD override.
const char* isa_name(SimdIsa isa) noexcept;

/// Parses a QC_SIMD-style name; returns false on unknown input.
bool parse_isa(std::string_view name, SimdIsa& out) noexcept;

/// What the host CPU supports (CPUID via __builtin_cpu_supports),
/// independent of any override. Non-x86 builds report kScalar.
SimdIsa detect_isa() noexcept;

/// True when `isa`'s microkernels were actually compiled in (the build
/// gates the AVX translation units on compiler support) AND the host
/// CPU can execute them. kScalar is always available.
bool isa_available(SimdIsa isa) noexcept;

/// The ISA every kernel currently routes through: resolved once at
/// first use as min(detect_isa(), QC_SIMD override), cached. A QC_SIMD
/// value naming an unavailable ISA is clamped down to the best
/// available one (requesting a *lower* tier than detected is honored —
/// that is the point of the override).
SimdIsa active_isa() noexcept;

/// Test/bench hook: force the dispatch decision. The forced ISA must be
/// available (checked); returns the previous active ISA so callers can
/// restore it.
SimdIsa force_isa(SimdIsa isa);

/// Test hook: drop the cached decision and re-resolve from CPUID +
/// QC_SIMD at the next active_isa() call.
void refresh_isa();

/// The three run-contiguous microkernels, per amplitude scalar T.
/// Pointers index interleaved {re, im} planes (see real_imag_planes);
/// `count` is a number of complex amplitudes, so 2*count scalars.
template <typename T>
struct Microkernels {
  /// Dense 2x2 over the paired runs p0 (target=0) / p1 (target=1):
  /// coef = {ar, ai, br, bi, cr, ci, dr, di} row-major for
  /// u = [[a, b], [c, d]].
  void (*dense2)(T* p0, T* p1, index_t count, const T* coef);
  /// Dense 4x4 over the four local-basis runs {00, 01, 10, 11};
  /// ur / ui are the 16 row-major coefficient planes.
  void (*dense4)(T* p0, T* p1, T* p2, T* p3, index_t count, const T* ur, const T* ui);
  /// Multiplies the run by the scalar (dr + i*di).
  void (*scale)(T* p, index_t count, T dr, T di);
};

/// The table implementing `isa` for scalar T (valid for any available
/// ISA; an ISA compiled out falls back to the scalar entries).
template <typename T>
const Microkernels<T>& microkernels_for(SimdIsa isa) noexcept;

/// The table the kernels should use right now (microkernels_for of
/// active_isa()).
template <typename T>
inline const Microkernels<T>& active_microkernels() noexcept {
  return microkernels_for<T>(active_isa());
}

// Scalar reference implementations — public so equivalence tests and
// new ISA variants have a canonical baseline to diff against.
template <typename T>
void dense2_scalar(T* p0, T* p1, index_t count, const T* coef);
template <typename T>
void dense4_scalar(T* p0, T* p1, T* p2, T* p3, index_t count, const T* ur, const T* ui);
template <typename T>
void scale_scalar(T* p, index_t count, T dr, T di);

// AVX2 / AVX-512 variants, defined in kernels_avx2.cpp /
// kernels_avx512.cpp (translation units built with -mavx2 -mfma /
// -mavx512f when the compiler supports the flags; otherwise they
// forward to the scalar reference and the ISA reports unavailable).
// (Declared as explicit per-type specializations — the variants are
// hand-written intrinsics per scalar width, not generic code.)
template <typename T>
void dense2_avx2(T* p0, T* p1, index_t count, const T* coef);
template <typename T>
void dense4_avx2(T* p0, T* p1, T* p2, T* p3, index_t count, const T* ur, const T* ui);
template <typename T>
void scale_avx2(T* p, index_t count, T dr, T di);
template <>
void dense2_avx2<float>(float*, float*, index_t count, const float*);
template <>
void dense2_avx2<double>(double*, double*, index_t count, const double*);
template <>
void dense4_avx2<float>(float*, float*, float*, float*, index_t count, const float*,
                        const float*);
template <>
void dense4_avx2<double>(double*, double*, double*, double*, index_t count, const double*,
                         const double*);
template <>
void scale_avx2<float>(float*, index_t count, float dr, float di);
template <>
void scale_avx2<double>(double*, index_t count, double dr, double di);
bool avx2_compiled_in() noexcept;

template <typename T>
void dense2_avx512(T* p0, T* p1, index_t count, const T* coef);
template <typename T>
void dense4_avx512(T* p0, T* p1, T* p2, T* p3, index_t count, const T* ur, const T* ui);
template <typename T>
void scale_avx512(T* p, index_t count, T dr, T di);
template <>
void dense2_avx512<float>(float*, float*, index_t count, const float*);
template <>
void dense2_avx512<double>(double*, double*, index_t count, const double*);
template <>
void dense4_avx512<float>(float*, float*, float*, float*, index_t count, const float*,
                          const float*);
template <>
void dense4_avx512<double>(double*, double*, double*, double*, index_t count, const double*,
                           const double*);
template <>
void scale_avx512<float>(float*, index_t count, float dr, float di);
template <>
void scale_avx512<double>(double*, index_t count, double dr, double di);
bool avx512_compiled_in() noexcept;

}  // namespace qc::sim::kernels
