#include "sim/sampling.hpp"

#include <algorithm>
#include <complex>
#include <stdexcept>

#include "common/parallel.hpp"

namespace qc::sim {

namespace {

/// Parallel inclusive prefix sum: each thread scans a contiguous slab,
/// the slab totals are exclusive-scanned serially (threads entries), and
/// each slab is shifted by its offset. Two passes over the data, same
/// thread-to-slab mapping in both (NUMA-friendly first touch).
template <typename Weight>
std::vector<double> prefix_sum(std::size_t size, const Weight& weight) {
  std::vector<double> cum(size);
  const int threads = max_threads();
  if (threads <= 1 || !worth_parallelizing(size)) {
    double acc = 0;
    for (std::size_t i = 0; i < size; ++i) {
      acc += weight(i);
      cum[i] = acc;
    }
    return cum;
  }
  const std::size_t slab = (size + static_cast<std::size_t>(threads) - 1) /
                           static_cast<std::size_t>(threads);
  std::vector<double> slab_total(static_cast<std::size_t>(threads), 0.0);
#pragma omp parallel num_threads(threads)
  {
    const auto t = static_cast<std::size_t>(thread_id());
    const std::size_t lo = std::min(t * slab, size);
    const std::size_t hi = std::min(lo + slab, size);
    double acc = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      acc += weight(i);
      cum[i] = acc;
    }
    slab_total[t] = acc;
#pragma omp barrier
    double offset = 0;
    for (std::size_t s = 0; s < t; ++s) offset += slab_total[s];
    if (offset != 0)
      for (std::size_t i = lo; i < hi; ++i) cum[i] += offset;
  }
  return cum;
}

}  // namespace

SampleCdf SampleCdf::from_weights(std::span<const double> weights) {
  SampleCdf cdf;
  cdf.cum_ = prefix_sum(weights.size(), [&](std::size_t i) { return weights[i]; });
  return cdf;
}

template <typename T>
SampleCdf SampleCdf::from_amplitudes(std::span<const basic_complex_t<T>> amplitudes) {
  SampleCdf cdf;
  cdf.cum_ = prefix_sum(amplitudes.size(), [&](std::size_t i) {
    // Accumulate |a_i|^2 in double even for fp32 amplitudes: the CDF is
    // O(2^n) additions and would lose outcomes to fp32 cancellation.
    const double re = amplitudes[i].real(), im = amplitudes[i].imag();
    return re * re + im * im;
  });
  return cdf;
}

template SampleCdf SampleCdf::from_amplitudes<float>(std::span<const basic_complex_t<float>>);
template SampleCdf SampleCdf::from_amplitudes<double>(std::span<const basic_complex_t<double>>);

index_t SampleCdf::sample_scaled(double u) const {
  // First outcome whose cumulative strictly exceeds u. upper_bound can
  // never land on a zero-weight interior outcome: cum_[i] > u together
  // with cum_[i-1] <= u forces cum_[i] > cum_[i-1], i.e. weight > 0.
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  if (it != cum_.end()) return static_cast<index_t>(it - cum_.begin());
  // u >= total(): floating-point leftover (e.g. u01 * total rounding up,
  // or a caller total computed in a different summation order). Fall
  // back to the LAST outcome with support — not blindly the last index,
  // which may have zero probability.
  for (std::size_t i = cum_.size(); i-- > 0;)
    if (cum_[i] > (i > 0 ? cum_[i - 1] : 0.0)) return static_cast<index_t>(i);
  throw std::runtime_error("SampleCdf::sample: distribution has no support");
}

}  // namespace qc::sim
