// Shared inverse-CDF measurement sampler (paper §3.4's "sample from the
// exact distribution" step, factored out of its three divergent copies).
//
// Every sampling path in the library — StateVector::sample, the engine's
// register measurement, and the shot-based estimators in emu/observables
// — reduces to the same primitive: map a uniform draw u through the
// cumulative distribution of nonnegative weights. The copies had drifted
// apart (one returned the last outcome even when its weight was zero;
// one re-scanned all 2^n amplitudes per shot), so the primitive now
// lives here once:
//
//  * the prefix sum is built in parallel (slab-local scans + serial slab
//    offset fix-up), so building the CDF is no slower than the one-pass
//    linear scan it replaces;
//  * each draw is a binary search — repeated-shot callers pay O(log)
//    per shot instead of O(2^n);
//  * a draw can never land on a zero-probability outcome: floating-point
//    leftover past the final cumulative falls back to the LAST outcome
//    with support (not blindly the last index).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace qc::sim {

class SampleCdf {
 public:
  /// Prefix-sum CDF over nonnegative weights (probabilities need not be
  /// normalized; draws are scaled by total()).
  [[nodiscard]] static SampleCdf from_weights(std::span<const double> weights);

  /// CDF over |a_i|^2 — sampling a full-register outcome from a state.
  /// The cumulative is accumulated in double regardless of the amplitude
  /// precision T, so fp32 states sample from the same-quality CDF.
  template <typename T>
  [[nodiscard]] static SampleCdf from_amplitudes(std::span<const basic_complex_t<T>> amplitudes);

  [[nodiscard]] std::size_t size() const noexcept { return cum_.size(); }

  /// Sum of all weights (the CDF's final value).
  [[nodiscard]] double total() const noexcept { return cum_.empty() ? 0.0 : cum_.back(); }

  /// Maps u in [0, 1) to an outcome by binary search. Never returns a
  /// zero-weight outcome; throws std::runtime_error if every weight is
  /// zero.
  [[nodiscard]] index_t sample(double u01) const { return sample_scaled(u01 * total()); }

  /// One uniform draw from `rng`, then sample().
  [[nodiscard]] index_t sample(Rng& rng) const { return sample(rng.uniform()); }

  /// As sample(), but `u` is already scaled to [0, total()). Values at or
  /// past total() (floating-point leftover) select the last outcome with
  /// support.
  [[nodiscard]] index_t sample_scaled(double u) const;

 private:
  std::vector<double> cum_;
};

}  // namespace qc::sim
