#include "sim/simulator.hpp"

#include <stdexcept>

#include "engine/backend.hpp"

namespace qc::sim {

using circuit::Gate;
using circuit::GateKind;

index_t control_mask(const Gate& g) {
  index_t m = 0;
  for (qubit_t c : g.controls) m = bits::set(m, c);
  return m;
}

kernels::U2 target_block(const Gate& g) {
  if (g.kind == GateKind::Swap) throw std::invalid_argument("target_block: SWAP has no 2x2 block");
  const linalg::Matrix m = gate_block_matrix(g);
  return {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
}

std::pair<complex_t, complex_t> diagonal_entries(const Gate& g) {
  if (!g.diagonal()) throw std::invalid_argument("diagonal_entries: gate is not diagonal");
  const linalg::Matrix m = gate_block_matrix(g);
  return {m(0, 0), m(1, 1)};
}

void Simulator::run(StateVector& sv, const circuit::Circuit& c) const {
  if (c.qubits() != sv.qubits()) throw std::invalid_argument("run: qubit count mismatch");
  for (const Gate& g : c.gates()) apply_gate(sv, g);
}

template <typename T>
void apply_gate_generic(std::span<basic_complex_t<T>> a, qubit_t n, const Gate& g,
                        bool parallel) {
  using C = basic_complex_t<T>;
  if (g.kind == GateKind::Swap) {
    // Lower SWAP to three CNOTs through the generic kernel — what an
    // unspecialized simulator does.
    const qubit_t qa = g.targets[0], qb = g.targets[1];
    const index_t cmask = control_mask(g);
    const kernels::U2T<T> x{C{}, C{T{1}}, C{T{1}}, C{}};
    kernels::apply_generic_masked<T>(a, n, qb, cmask | (index_t{1} << qa), x, parallel);
    kernels::apply_generic_masked<T>(a, n, qa, cmask | (index_t{1} << qb), x, parallel);
    kernels::apply_generic_masked<T>(a, n, qb, cmask | (index_t{1} << qa), x, parallel);
    return;
  }
  kernels::apply_generic_masked<T>(a, n, g.targets[0], control_mask(g),
                                   kernels::u2_cast<T>(target_block(g)), parallel);
}

template void apply_gate_generic<float>(std::span<basic_complex_t<float>>, qubit_t,
                                        const Gate&, bool);
template void apply_gate_generic<double>(std::span<basic_complex_t<double>>, qubit_t,
                                         const Gate&, bool);

void LiquidLikeSimulator::apply_gate(StateVector& sv, const Gate& g) const {
  apply_gate_generic<double>(sv.amplitudes(), sv.qubits(), g, /*parallel=*/false);
}

void QhipsterLikeSimulator::apply_gate(StateVector& sv, const Gate& g) const {
  apply_gate_generic<double>(sv.amplitudes(), sv.qubits(), g, /*parallel=*/true);
}

template <typename T>
void apply_gate_hpc(std::span<basic_complex_t<T>> a, qubit_t n, const Gate& g) {
  using C = basic_complex_t<T>;
  const index_t cmask = control_mask(g);
  if (g.kind == GateKind::Swap) {
    kernels::apply_swap<T>(a, n, g.targets[0], g.targets[1], cmask);
    return;
  }
  const qubit_t t = g.targets[0];
  if (g.kind == GateKind::X) {
    kernels::apply_x<T>(a, n, t, cmask);
    return;
  }
  if (g.diagonal()) {
    const auto [d0, d1] = diagonal_entries(g);
    kernels::apply_diagonal<T>(a, n, t, static_cast<C>(d0), static_cast<C>(d1), cmask);
    return;
  }
  kernels::apply_folded<T>(a, n, t, cmask, kernels::u2_cast<T>(target_block(g)));
}

template void apply_gate_hpc<float>(std::span<basic_complex_t<float>>, qubit_t, const Gate&);
template void apply_gate_hpc<double>(std::span<basic_complex_t<double>>, qubit_t, const Gate&);

void HpcSimulator::apply_gate(StateVector& sv, const Gate& g) const {
  apply_gate_hpc<double>(sv.amplitudes(), sv.qubits(), g);
}

void HpcSimulator::run(StateVector& sv, const circuit::Circuit& c) const {
  if (c.qubits() != sv.qubits()) throw std::invalid_argument("run: qubit count mismatch");
  const auto& gates = c.gates();
  if (!opts_.fuse_diagonal_runs) {
    for (const Gate& g : gates) apply_gate(sv, g);
    return;
  }
  // Peephole: collect maximal runs of diagonal gates (they all commute)
  // and apply each run in one sweep.
  std::vector<kernels::DiagonalTerm> run_terms;
  std::size_t i = 0;
  while (i < gates.size()) {
    if (!gates[i].diagonal()) {
      apply_gate(sv, gates[i]);
      ++i;
      continue;
    }
    run_terms.clear();
    while (i < gates.size() && gates[i].diagonal() &&
           run_terms.size() < opts_.max_fused_terms) {
      const auto [d0, d1] = diagonal_entries(gates[i]);
      run_terms.push_back({gates[i].targets[0], control_mask(gates[i]), d0, d1});
      ++i;
    }
    if (run_terms.size() == 1) {
      kernels::apply_diagonal<double>(sv.amplitudes(), sv.qubits(), run_terms[0].target,
                                      run_terms[0].d0, run_terms[0].d1, run_terms[0].cmask);
    } else {
      kernels::apply_fused_diagonal<double>(sv.amplitudes(), run_terms);
    }
  }
}

std::unique_ptr<Simulator> make_simulator(const std::string& name) {
  // Thin source-compatibility shim: the engine's backend registry is the
  // single authority on names, and its unknown-name error enumerates
  // engine::backend_names().
  return engine::make_gate_simulator(name);
}

}  // namespace qc::sim
