// The three gate-level simulators benchmarked in the paper's §4.5.
//
//  * HpcSimulator — "our simulator": control-folded enumeration, diagonal
//    and NOT fast paths, native SWAP kernel, optional fusion of diagonal
//    runs. This is the baseline the emulator's speedups are measured
//    against (so those speedups are not artifacts of a slow simulator —
//    the point of the paper's Figs. 4-6).
//
//  * QhipsterLikeSimulator — stands in for qHiPSTER: a well-parallelized
//    but unspecialized simulator. Every gate runs through the generic
//    masked 2x2 pair kernel (full read+write of the state vector even
//    for diagonal gates); SWAP is lowered to three CNOTs.
//
//  * LiquidLikeSimulator — stands in for LIQUi|>: the same generic
//    kernel, single-threaded. (LIQUi|> is closed-source .NET; this
//    models "correct but unspecialized, non-parallel" — see DESIGN.md
//    for the substitution rationale.)
//
// All three produce identical states to 1e-12 on identical circuits;
// the test suite enforces it.
#pragma once

#include <memory>
#include <string>

#include "circuit/circuit.hpp"
#include "sim/kernels.hpp"
#include "sim/state_vector.hpp"

namespace qc::sim {

/// OR of the control bits of a gate.
[[nodiscard]] index_t control_mask(const circuit::Gate& g);

/// The 2x2 target block of a non-SWAP gate as a kernel U2.
[[nodiscard]] kernels::U2 target_block(const circuit::Gate& g);

/// Diagonal entries (d0, d1) of a diagonal gate's target block.
[[nodiscard]] std::pair<complex_t, complex_t> diagonal_entries(const circuit::Gate& g);

/// HpcSimulator's specialized single-gate dispatch on a raw amplitude
/// array (2^n amplitudes) — the span-level entry point executors that do
/// not own a StateVector (blocked plans on a rank's local chunk) share
/// with HpcSimulator::apply_gate. Templated on the amplitude scalar; the
/// (double-precision) gate block is narrowed once per gate, not per
/// amplitude.
template <typename T>
void apply_gate_hpc(std::span<basic_complex_t<T>> a, qubit_t n, const circuit::Gate& g);

/// The unspecialized per-gate dispatch (the qhipster-/liquid-like tier)
/// on a raw amplitude array: every gate through the generic masked 2x2
/// kernel, SWAP lowered to three CNOTs. `parallel` selects OpenMP.
template <typename T>
void apply_gate_generic(std::span<basic_complex_t<T>> a, qubit_t n, const circuit::Gate& g,
                        bool parallel);

class Simulator {
 public:
  virtual ~Simulator() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Applies one gate to the state.
  virtual void apply_gate(StateVector& sv, const circuit::Gate& g) const = 0;

  /// Applies a whole circuit (overridable for cross-gate optimization).
  virtual void run(StateVector& sv, const circuit::Circuit& c) const;
};

class LiquidLikeSimulator final : public Simulator {
 public:
  [[nodiscard]] std::string name() const override { return "liquid-like"; }
  void apply_gate(StateVector& sv, const circuit::Gate& g) const override;
};

class QhipsterLikeSimulator final : public Simulator {
 public:
  [[nodiscard]] std::string name() const override { return "qhipster-like"; }
  void apply_gate(StateVector& sv, const circuit::Gate& g) const override;
};

class HpcSimulator final : public Simulator {
 public:
  struct Options {
    /// Fuse maximal runs of consecutive diagonal gates into one sweep.
    /// Off by default: the paper's simulator applies gates one by one;
    /// fusion is quantified separately by the ablation bench.
    bool fuse_diagonal_runs = false;
    /// Cap on gates per fused sweep. Fusion trades memory passes for
    /// per-amplitude work; beyond ~8 terms the sweep turns compute
    /// bound and loses (measured by bench/ablation_kernels).
    std::size_t max_fused_terms = 8;
  };

  HpcSimulator() = default;
  explicit HpcSimulator(Options opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "hpc"; }
  void apply_gate(StateVector& sv, const circuit::Gate& g) const override;
  void run(StateVector& sv, const circuit::Circuit& c) const override;

 private:
  Options opts_;
};

/// Factory by name ("hpc", "qhipster-like", "liquid-like", "fused",
/// "cached") for benches and tools. "fused" is fuse::FusedSimulator —
/// the gate-fusion backend layered on top of HpcSimulator's fast paths;
/// "cached" is sched::CachedSimulator — fusion plus cache-blocked sweep
/// execution. A thin shim over
/// engine::make_gate_simulator (the backend registry is the authority on
/// names; unknown names throw std::invalid_argument enumerating the
/// valid ones). Emulation-only backends like "auto" are not plain
/// Simulators — run those through engine::Engine.
std::unique_ptr<Simulator> make_simulator(const std::string& name);

}  // namespace qc::sim
