#include "sim/state_vector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/sampling.hpp"

namespace qc::sim {

template <typename T>
BasicStateVector<T>::BasicStateVector(qubit_t n_qubits) : n_(n_qubits), data_(dim(n_qubits)) {
  // data_ is allocated uninitialized (UninitAlignedAllocator); the
  // parallel first-touch fill below places each page on the NUMA node of
  // the thread that will sweep it in the kernels — a serial zero fill
  // would land every page on one node and make all kernels pay
  // remote-memory latency on multi-socket boxes.
  zero_fill();
  data_[0] = value_type{T{1}};
}

template <typename T>
void BasicStateVector<T>::zero_fill() {
  const index_t count = size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
  for (index_t i = 0; i < count; ++i) data_[i] = value_type{};
}

template <typename T>
void BasicStateVector<T>::set_basis(index_t i) {
  if (i >= size()) throw std::invalid_argument("set_basis: index out of range");
  zero_fill();
  data_[i] = value_type{T{1}};
}

template <typename T>
void BasicStateVector<T>::randomize(Rng& rng) {
  // Per-thread forked streams keep the fill deterministic regardless of
  // the thread count: thread t owns a contiguous slab and its own stream.
  const index_t n = size();
  const int threads = max_threads();
  const index_t slab = (n + threads - 1) / threads;
#pragma omp parallel num_threads(threads)
  {
    const int t = thread_id();
    Rng local = rng.fork(static_cast<std::uint64_t>(t));
    const index_t lo = std::min<index_t>(static_cast<index_t>(t) * slab, n);
    const index_t hi = std::min<index_t>(lo + slab, n);
    for (index_t i = lo; i < hi; ++i)
      data_[i] = static_cast<value_type>(local.normal_complex());
  }
  normalize();
}

template <typename T>
void BasicStateVector<T>::randomize_deterministic(std::uint64_t seed) {
  fill_random_slabs<T>(amplitudes(), 0, seed);
  normalize();
}

template <typename T>
double BasicStateVector<T>::norm_sq() const {
  double sum = 0;
#pragma omp parallel for reduction(+ : sum) if (worth_parallelizing(size()))
  for (index_t i = 0; i < size(); ++i) {
    const double re = data_[i].real(), im = data_[i].imag();
    sum += re * re + im * im;
  }
  return sum;
}

template <typename T>
void BasicStateVector<T>::normalize() {
  const double n2 = norm_sq();
  if (n2 <= 0) throw std::runtime_error("normalize: zero state");
  const T f = static_cast<T>(1.0 / std::sqrt(n2));
#pragma omp parallel for if (worth_parallelizing(size()))
  for (index_t i = 0; i < size(); ++i) data_[i] *= f;
}

template <typename T>
double BasicStateVector<T>::overlap_abs(const BasicStateVector& other) const {
  if (other.n_ != n_) throw std::invalid_argument("overlap: qubit count mismatch");
  double re = 0, im = 0;
#pragma omp parallel for reduction(+ : re, im) if (worth_parallelizing(size()))
  for (index_t i = 0; i < size(); ++i) {
    const double ar = data_[i].real(), ai = data_[i].imag();
    const double br = other.data_[i].real(), bi = other.data_[i].imag();
    re += ar * br + ai * bi;
    im += ar * bi - ai * br;
  }
  return std::hypot(re, im);
}

template <typename T>
double BasicStateVector<T>::max_abs_diff(const BasicStateVector& other) const {
  if (other.n_ != n_) throw std::invalid_argument("max_abs_diff: qubit count mismatch");
  double m = 0;
#pragma omp parallel for reduction(max : m) if (worth_parallelizing(size()))
  for (index_t i = 0; i < size(); ++i)
    m = std::max(m, std::abs(static_cast<complex_t>(data_[i]) -
                             static_cast<complex_t>(other.data_[i])));
  return m;
}

template <typename T>
double BasicStateVector<T>::probability_of_one(qubit_t q) const {
  if (q >= n_) throw std::invalid_argument("probability_of_one: bad qubit");
  double sum = 0;
#pragma omp parallel for reduction(+ : sum) if (worth_parallelizing(size()))
  for (index_t i = 0; i < size(); ++i)
    if (bits::test(i, q)) {
      const double re = data_[i].real(), im = data_[i].imag();
      sum += re * re + im * im;
    }
  return sum;
}

template <typename T>
std::vector<double> BasicStateVector<T>::register_distribution(qubit_t offset,
                                                               qubit_t width) const {
  if (offset + width > n_) throw std::invalid_argument("register_distribution: bad register");
  std::vector<double> dist(dim(width), 0.0);
  const int threads = max_threads();
  // Per-thread histograms avoid contention; width is small in practice.
  std::vector<std::vector<double>> partial(static_cast<std::size_t>(threads),
                                           std::vector<double>(dist.size(), 0.0));
#pragma omp parallel num_threads(threads)
  {
    auto& mine = partial[static_cast<std::size_t>(thread_id())];
#pragma omp for
    for (index_t i = 0; i < size(); ++i) {
      const double re = data_[i].real(), im = data_[i].imag();
      mine[bits::field(i, offset, width)] += re * re + im * im;
    }
  }
  for (const auto& p : partial)
    for (std::size_t k = 0; k < dist.size(); ++k) dist[k] += p[k];
  return dist;
}

template <typename T>
index_t BasicStateVector<T>::sample(Rng& rng) const {
  // Inverse-CDF sampling over the amplitude array through the shared
  // sampler; O(2^n) once (parallel prefix sum), still exponentially
  // cheaper than re-running the circuit per shot. The shared fallback
  // also fixes the old edge case where floating-point leftover past the
  // final cumulative returned size() - 1 even when that amplitude was
  // zero — a zero-probability outcome.
  return SampleCdf::from_amplitudes<T>(amplitudes()).sample(rng);
}

template <typename T>
int BasicStateVector<T>::measure_and_collapse(qubit_t q, Rng& rng) {
  const double p1 = probability_of_one(q);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  collapse(q, outcome);
  return outcome;
}

template <typename T>
void BasicStateVector<T>::collapse(qubit_t q, int outcome) {
  if (q >= n_) throw std::invalid_argument("collapse: bad qubit");
  const double p1 = probability_of_one(q);
  const double p = outcome == 1 ? p1 : 1.0 - p1;
  if (p < 1e-300) throw std::runtime_error("collapse: zero-probability outcome");
  const T f = static_cast<T>(1.0 / std::sqrt(p));
  const bool keep_one = outcome == 1;
#pragma omp parallel for if (worth_parallelizing(size()))
  for (index_t i = 0; i < size(); ++i) {
    if (bits::test(i, q) == keep_one) {
      data_[i] *= f;
    } else {
      data_[i] = value_type{};
    }
  }
}

template class BasicStateVector<float>;
template class BasicStateVector<double>;

template <typename T>
void fill_random_slabs(std::span<basic_complex_t<T>> data, index_t global_offset,
                       std::uint64_t seed) {
  constexpr index_t kSlab = index_t{1} << 16;
  const index_t lo = global_offset;
  const index_t hi = global_offset + data.size();
  const index_t first_slab = lo / kSlab;
  const index_t last_slab = (hi + kSlab - 1) / kSlab;
  const Rng base(seed);
#pragma omp parallel for schedule(static) if (last_slab - first_slab > 1)
  for (index_t s = first_slab; s < last_slab; ++s) {
    Rng rng = base.fork(s);
    const index_t slab_lo = s * kSlab;
    const index_t begin = std::max(slab_lo, lo);
    const index_t end = std::min(slab_lo + kSlab, hi);
    // Burn draws preceding our window so values depend only on global
    // position. Each normal_complex consumes a fixed number of draws
    // only if Box-Muller caching is avoided; regenerate pairwise instead.
    // Draws stay double; the narrowing (if any) happens on store.
    for (index_t g = slab_lo; g < end; ++g) {
      const complex_t v = {rng.normal(), rng.normal()};
      if (g >= begin) data[g - global_offset] = static_cast<basic_complex_t<T>>(v);
    }
  }
}

template void fill_random_slabs<float>(std::span<basic_complex_t<float>>, index_t,
                                       std::uint64_t);
template void fill_random_slabs<double>(std::span<basic_complex_t<double>>, index_t,
                                        std::uint64_t);

}  // namespace qc::sim
