// The n-qubit wave function: 2^n complex amplitudes (paper §2, Eq. 1).
//
// BasicStateVector<T> owns the aligned amplitude array and provides the
// state-level operations every simulator and the emulator share:
// initialization, normalization, probabilities, measurement (sampling and
// collapse), overlap, and register readout. T is the real amplitude
// scalar (double by default; float halves the memory footprint and the
// bytes every kernel sweep moves — one extra qubit per node at equal
// memory). Reductions (norms, probabilities, distributions) accumulate
// in double for either precision. Gate application lives in kernels.hpp
// / the Simulator classes; classical-function shortcuts in qc::emu.
#pragma once

#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/bits.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace qc::sim {

template <typename T>
class BasicStateVector {
 public:
  using value_type = basic_complex_t<T>;

  /// |0...0> on n qubits. Allocates 2^n amplitudes (sizeof(value_type)
  /// bytes each: 16 at fp64, 8 at fp32).
  explicit BasicStateVector(qubit_t n_qubits);

  [[nodiscard]] qubit_t qubits() const noexcept { return n_; }
  [[nodiscard]] index_t size() const noexcept { return dim(n_); }

  [[nodiscard]] std::span<value_type> amplitudes() noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const value_type> amplitudes() const noexcept {
    return {data_.data(), data_.size()};
  }
  value_type& operator[](index_t i) noexcept { return data_[i]; }
  const value_type& operator[](index_t i) const noexcept { return data_[i]; }

  /// Resets to the computational basis state |i>.
  void set_basis(index_t i);

  /// Fills with i.i.d. complex Gaussians and normalizes — a random state
  /// (deterministic from rng), used as generic test/bench input.
  void randomize(Rng& rng);

  /// Partition-independent random state: same result as a
  /// DistStateVector randomized with the same seed on any rank count —
  /// and, because draws are generated in double and narrowed, the same
  /// state (up to rounding) at either precision.
  void randomize_deterministic(std::uint64_t seed);

  /// Sum of |amplitude|^2 (should be 1 for a valid state).
  [[nodiscard]] double norm_sq() const;

  /// Rescales so norm_sq() == 1. Throws if the state is all-zero.
  void normalize();

  /// |<this|other>|.
  [[nodiscard]] double overlap_abs(const BasicStateVector& other) const;

  /// max_i |this_i - other_i| — the equality metric in tests.
  [[nodiscard]] double max_abs_diff(const BasicStateVector& other) const;

  /// Probability of measuring qubit q as 1.
  [[nodiscard]] double probability_of_one(qubit_t q) const;

  /// Probability distribution over the `width`-bit register starting at
  /// qubit `offset` (marginal over all other qubits) — the emulator's
  /// "full distribution in one step" measurement shortcut (§3.4).
  [[nodiscard]] std::vector<double> register_distribution(qubit_t offset, qubit_t width) const;

  /// Samples a full-register measurement outcome (does not collapse).
  [[nodiscard]] index_t sample(Rng& rng) const;

  /// Measures qubit q: samples an outcome, collapses and renormalizes.
  int measure_and_collapse(qubit_t q, Rng& rng);

  /// Collapses qubit q to `outcome` (0/1) and renormalizes. Throws if the
  /// outcome has probability ~0.
  void collapse(qubit_t q, int outcome);

  /// Precision-converting copy (fp64 <-> fp32): the engine's
  /// convert-at-segment-boundary strategy narrows the host state once
  /// per gate segment, runs the fp32 kernels, and widens the result.
  template <typename U>
  [[nodiscard]] BasicStateVector<U> cast() const {
    BasicStateVector<U> out(n_);
    auto dst = out.amplitudes();
    const index_t count = size();
#pragma omp parallel for schedule(static) if (worth_parallelizing(count))
    for (index_t i = 0; i < count; ++i)
      dst[i] = static_cast<basic_complex_t<U>>(data_[i]);
    return out;
  }

 private:
  /// Parallel zero fill with the kernels' static schedule, so page first
  /// touch (NUMA placement) matches the threads that later sweep them.
  void zero_fill();

  qubit_t n_;
  uninit_aligned_vector<value_type> data_;
};

/// Double-precision alias — the default across the non-templated API.
using StateVector = BasicStateVector<double>;

/// Fills `data` — a window [global_offset, global_offset + data.size())
/// of a larger conceptual array — with deterministic complex Gaussians
/// generated in fixed 2^16-element slabs keyed off `seed`. The values at
/// a given global position do not depend on how the array is partitioned,
/// which lets distributed and serial states be seeded identically; draws
/// are generated in double and narrowed so fp32 and fp64 fills agree up
/// to rounding.
template <typename T>
void fill_random_slabs(std::span<basic_complex_t<T>> data, index_t global_offset,
                       std::uint64_t seed);

}  // namespace qc::sim
