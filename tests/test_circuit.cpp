// Tests for the gate IR: Table 1 matrices, the Kronecker operator
// oracle, circuit composition/inverse/controlled, builders (QFT,
// entangler, TFIM), and the decomposition passes.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/builders.hpp"
#include "circuit/circuit.hpp"
#include "circuit/decompose.hpp"
#include "linalg/gemm.hpp"

namespace qc::circuit {
namespace {

using linalg::Matrix;

double unitary_distance(const Matrix& a, const Matrix& b) {
  // Global phase insensitive: align on the largest entry first.
  complex_t phase{1.0};
  double best = 0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (std::abs(a(i, j)) > best) {
        best = std::abs(a(i, j));
        phase = b(i, j) / a(i, j);
      }
  if (std::abs(std::abs(phase) - 1.0) > 1e-6) return 1e9;
  return (a * phase).max_abs_diff(b);
}

TEST(Gate, Table1MatricesAreUnitary) {
  for (const GateKind k :
       {GateKind::X, GateKind::Y, GateKind::Z, GateKind::H, GateKind::S, GateKind::Sdg,
        GateKind::T, GateKind::Tdg}) {
    EXPECT_LT(gate_block_matrix(make_gate(k, 0)).unitarity_error(), 1e-15)
        << gate_name(k);
  }
  for (const GateKind k : {GateKind::Rx, GateKind::Ry, GateKind::Rz, GateKind::Phase}) {
    EXPECT_LT(gate_block_matrix(make_gate(k, 0, 0.7)).unitarity_error(), 1e-15)
        << gate_name(k);
  }
  EXPECT_LT(gate_block_matrix(make_swap(0, 1)).unitarity_error(), 1e-15);
}

TEST(Gate, KnownMatrixEntries) {
  // Spot checks straight from the paper's Table 1.
  const Matrix x = gate_block_matrix(make_gate(GateKind::X, 0));
  EXPECT_EQ(x(0, 1), complex_t{1.0});
  EXPECT_EQ(x(0, 0), complex_t{});
  const Matrix t = gate_block_matrix(make_gate(GateKind::T, 0));
  EXPECT_NEAR(std::abs(t(1, 1) - std::polar(1.0, std::numbers::pi / 4)), 0.0, 1e-15);
  const Matrix rz = gate_block_matrix(make_gate(GateKind::Rz, 0, 1.0));
  EXPECT_NEAR(std::abs(rz(0, 0) - std::polar(1.0, -0.5)), 0.0, 1e-15);
  const Matrix h = gate_block_matrix(make_gate(GateKind::H, 0));
  EXPECT_NEAR(h(1, 1).real(), -1.0 / std::sqrt(2.0), 1e-15);
}

TEST(Gate, DiagonalClassification) {
  EXPECT_TRUE(make_gate(GateKind::Z, 0).diagonal());
  EXPECT_TRUE(make_gate(GateKind::T, 0).diagonal());
  EXPECT_TRUE(make_gate(GateKind::Rz, 0, 0.3).diagonal());
  EXPECT_TRUE(make_controlled(GateKind::Phase, 0, 1, 0.3).diagonal());
  EXPECT_FALSE(make_gate(GateKind::X, 0).diagonal());
  EXPECT_FALSE(make_gate(GateKind::H, 0).diagonal());
}

TEST(Gate, InverseUndoes) {
  Rng rng(1);
  for (const GateKind k : {GateKind::X, GateKind::H, GateKind::S, GateKind::T, GateKind::Rx,
                           GateKind::Rz, GateKind::Phase}) {
    const Gate g = make_gate(k, 0, 0.91);
    const Matrix m = gemm_naive(gate_block_matrix(g.inverse()), gate_block_matrix(g));
    EXPECT_LT(m.max_abs_diff(Matrix::identity(2)), 1e-14) << gate_name(k);
  }
  // U2 inverse.
  const Matrix u = Matrix::random_unitary(2, rng);
  const Gate g = make_u2(0, {u(0, 0), u(0, 1), u(1, 0), u(1, 1)});
  EXPECT_LT(gemm_naive(gate_block_matrix(g.inverse()), gate_block_matrix(g))
                .max_abs_diff(Matrix::identity(2)),
            1e-12);
}

TEST(GateOperator, MatchesKroneckerForNotOnQubit0) {
  // Paper Eq. (3): X on qubit 0 of 2 is X (x) I in their ordering; with
  // qubit 0 = least significant bit the operator is I (x) X.
  const Matrix op = gate_operator(make_gate(GateKind::X, 0), 2);
  const Matrix x{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix expected = Matrix::identity(2).kron(x);
  EXPECT_EQ(op.max_abs_diff(expected), 0.0);
}

TEST(GateOperator, CnotMatchesTable1) {
  // CNOT with control qubit 1, target qubit 0 in little-endian indexing
  // reproduces Table 1's matrix (basis order |00>,|01>,|10>,|11> with
  // the control as the high bit).
  const Matrix op = gate_operator(make_controlled(GateKind::X, 1, 0), 2);
  const Matrix expected{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}};
  EXPECT_EQ(op.max_abs_diff(expected), 0.0);
}

TEST(GateOperator, ConditionalPhaseMatchesTable1) {
  const double theta = 0.77;
  const Matrix op = gate_operator(make_controlled(GateKind::Phase, 1, 0, theta), 2);
  Matrix expected = Matrix::identity(4);
  expected(3, 3) = std::polar(1.0, theta);
  EXPECT_LT(op.max_abs_diff(expected), 1e-15);
}

TEST(GateOperator, ToffoliPermutesOnlyFullControls) {
  const Matrix op = gate_operator(make_toffoli(0, 1, 2), 3);
  Matrix expected = Matrix::identity(8);
  // |011> <-> |111> : indices 3 and 7.
  expected(3, 3) = 0;
  expected(7, 7) = 0;
  expected(3, 7) = 1;
  expected(7, 3) = 1;
  EXPECT_EQ(op.max_abs_diff(expected), 0.0);
}

TEST(GateOperator, SwapOperator) {
  const Matrix op = gate_operator(make_swap(0, 1), 2);
  const Matrix expected{{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
  EXPECT_EQ(op.max_abs_diff(expected), 0.0);
}

TEST(GateOperator, AllGatesUnitaryOnThreeQubits) {
  Rng rng(5);
  const Circuit c = random_circuit(3, 40, rng);
  for (const Gate& g : c.gates())
    EXPECT_LT(gate_operator(g, 3).unitarity_error(), 1e-12) << g.to_string();
}

TEST(Circuit, AppendValidates) {
  Circuit c(2);
  EXPECT_THROW(c.x(2), std::invalid_argument);
  EXPECT_THROW(c.cnot(0, 0), std::invalid_argument);
  EXPECT_NO_THROW(c.cnot(0, 1));
  EXPECT_EQ(c.size(), 1u);
}

TEST(Circuit, InverseReversesUnitary) {
  Rng rng(6);
  const Circuit c = random_circuit(3, 25, rng);
  const Matrix u = c.to_matrix_reference();
  const Matrix uinv = c.inverse().to_matrix_reference();
  EXPECT_LT(gemm_naive(uinv, u).max_abs_diff(Matrix::identity(8)), 1e-11);
}

TEST(Circuit, ComposeMultipliesUnitaries) {
  Rng rng(7);
  const Circuit a = random_circuit(3, 10, rng);
  const Circuit b = random_circuit(3, 10, rng);
  Circuit ab = a;
  ab.compose(b);
  // Gates of b run after a: U = U_b * U_a.
  const Matrix expected = gemm_naive(b.to_matrix_reference(), a.to_matrix_reference());
  EXPECT_LT(ab.to_matrix_reference().max_abs_diff(expected), 1e-11);
}

TEST(Circuit, ControlledBlockStructure) {
  Rng rng(8);
  const Circuit c = random_circuit(2, 12, rng);
  const Matrix u = c.to_matrix_reference();
  const Matrix cu = c.controlled(2).to_matrix_reference();
  // Control = qubit 2 (high bit): top-left 4x4 block is identity,
  // bottom-right is U.
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(std::abs(cu(i, j) - (i == j ? complex_t{1.0} : complex_t{})), 0.0, 1e-12);
      EXPECT_NEAR(std::abs(cu(i + 4, j + 4) - u(i, j)), 0.0, 1e-12);
      EXPECT_NEAR(std::abs(cu(i, j + 4)), 0.0, 1e-12);
      EXPECT_NEAR(std::abs(cu(i + 4, j)), 0.0, 1e-12);
    }
}

TEST(Circuit, ControlledRejectsUsedQubit) {
  Circuit c(2);
  c.h(0).cnot(0, 1);
  EXPECT_THROW(c.controlled(1), std::invalid_argument);
}

TEST(Circuit, GateHistogramAndCounts) {
  Circuit c(3);
  c.h(0).cnot(0, 1).cnot(1, 2).toffoli(0, 1, 2).t(2);
  const auto hist = c.gate_histogram();
  EXPECT_EQ(hist.at("H"), 1u);
  EXPECT_EQ(hist.at("C1-X"), 2u);
  EXPECT_EQ(hist.at("C2-X"), 1u);
  EXPECT_EQ(c.controlled_count(), 3u);
}

TEST(Builders, QftMatchesEq4Matrix) {
  // The gate-level QFT (with final swaps) must equal the DFT matrix of
  // the paper's Eq. (4): F[l,k] = 2^{-n/2} exp(+2 pi i k l / 2^n).
  for (const qubit_t n : {1u, 2u, 3u, 5u}) {
    const Matrix u = qft(n).to_matrix_reference();
    const index_t size = dim(n);
    double err = 0;
    for (index_t l = 0; l < size; ++l)
      for (index_t k = 0; k < size; ++k) {
        const complex_t expected =
            std::polar(1.0 / std::sqrt(static_cast<double>(size)),
                       2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(l) / static_cast<double>(size));
        err = std::max(err, std::abs(u(l, k) - expected));
      }
    EXPECT_LT(err, 1e-12) << "n=" << n;
  }
}

TEST(Builders, QftGateCountIsQuadratic) {
  const qubit_t n = 10;
  const Circuit c = qft(n, /*with_swaps=*/false);
  EXPECT_EQ(c.size(), static_cast<std::size_t>(n + n * (n - 1) / 2));
  const Circuit cs = qft(n, /*with_swaps=*/true);
  EXPECT_EQ(cs.size(), c.size() + n / 2);
}

TEST(Builders, InverseQftUndoesQft) {
  const qubit_t n = 4;
  Circuit both = qft(n);
  both.compose(inverse_qft(n));
  EXPECT_LT(both.to_matrix_reference().max_abs_diff(linalg::Matrix::identity(dim(n))),
            1e-11);
}

TEST(Builders, EntangleShape) {
  const Circuit c = entangle(8);
  EXPECT_EQ(c.size(), 8u);  // 1 H + 7 CNOT
  EXPECT_EQ(c.gates()[0].kind, GateKind::H);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(c.gates()[i].kind, GateKind::X);
    ASSERT_EQ(c.gates()[i].controls.size(), 1u);
    EXPECT_EQ(c.gates()[i].controls[0], 0u);
  }
}

TEST(Builders, TfimGateCountMatchesTable2) {
  // Paper Table 2: G = 29, 33, ..., 53 for n = 8..14 (G = 4n - 3).
  for (qubit_t n = 8; n <= 14; ++n)
    EXPECT_EQ(tfim_trotter_step(n, 0.1).size(), static_cast<std::size_t>(4 * n - 3));
}

TEST(Builders, TfimIsUnitary) {
  const Matrix u = tfim_trotter_step(4, 0.17).to_matrix_reference();
  EXPECT_LT(u.unitarity_error(), 1e-12);
}

TEST(Decompose, ToffoliNetworkMatchesToffoli) {
  const Matrix direct = gate_operator(make_toffoli(0, 1, 2), 3);
  const Matrix network = toffoli_network(3, 0, 1, 2).to_matrix_reference();
  EXPECT_LT(unitary_distance(direct, network), 1e-12);
}

TEST(Decompose, LowerToCliffordTPreservesUnitary) {
  Rng rng(9);
  Circuit c(3);
  c.toffoli(0, 1, 2).swap(0, 2).h(1).toffoli(2, 1, 0);
  const Circuit lowered = lower_to_clifford_t(c);
  EXPECT_LT(unitary_distance(c.to_matrix_reference(), lowered.to_matrix_reference()), 1e-11);
  for (const Gate& g : lowered.gates()) EXPECT_LE(g.controls.size(), 1u);
}

TEST(Decompose, LowerMultiControlsPreservesAction) {
  // C3-X on 4 qubits -> Toffolis with one ancilla; compare on basis
  // states (the circuits act on different register widths).
  Circuit c(4);
  Gate g = make_gate(GateKind::X, 3);
  g.controls = {0, 1, 2};
  c.append(g);
  const Circuit lowered = lower_multi_controls(c);
  EXPECT_GT(lowered.qubits(), c.qubits());
  const Matrix direct = c.to_matrix_reference();
  const Matrix big = lowered.to_matrix_reference();
  // Ancillas start and end in |0>: check the top-left block.
  for (index_t i = 0; i < 16; ++i)
    for (index_t j = 0; j < 16; ++j)
      EXPECT_NEAR(std::abs(big(i, j) - direct(i, j)), 0.0, 1e-12);
}

TEST(Decompose, LowerRejectsUnloweredMultiControl) {
  Circuit c(4);
  Gate g = make_gate(GateKind::X, 3);
  g.controls = {0, 1, 2};
  c.append(g);
  EXPECT_THROW(lower_to_clifford_t(c), std::invalid_argument);
}

}  // namespace
}  // namespace qc::circuit
