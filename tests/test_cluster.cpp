// Tests for the in-process message-passing runtime: point-to-point
// semantics, tag matching, ordering, collectives, barrier, and abort
// propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "cluster/cluster.hpp"

namespace qc::cluster {
namespace {

TEST(Cluster, RanksSeeCorrectIds) {
  Cluster cluster(4);
  std::vector<int> seen(4, -1);
  cluster.run([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    seen[static_cast<std::size_t>(comm.rank())] = comm.rank();
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], r);
}

TEST(Cluster, SingleRankWorks) {
  Cluster cluster(1);
  int count = 0;
  cluster.run([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Cluster, RejectsZeroRanks) { EXPECT_THROW(Cluster(0), std::invalid_argument); }

TEST(Comm, PointToPointRoundTrip) {
  Cluster cluster(2);
  cluster.run([](Comm& comm) {
    std::vector<double> buf{1.5, 2.5, 3.5};
    if (comm.rank() == 0) {
      comm.send<double>(1, buf);
      std::vector<double> back(3);
      comm.recv<double>(1, back);
      EXPECT_EQ(back[0], 3.0);
    } else {
      std::vector<double> in(3);
      comm.recv<double>(0, in);
      EXPECT_EQ(in[2], 3.5);
      std::vector<double> reply{3.0, 2.0, 1.0};
      comm.send<double>(0, reply);
    }
  });
}

TEST(Comm, MessagesBetweenPairStayOrdered) {
  Cluster cluster(2);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) {
        const int v = i;
        comm.send<int>(1, std::span<const int>(&v, 1));
      }
    } else {
      for (int i = 0; i < 100; ++i) {
        int v = -1;
        comm.recv<int>(0, std::span<int>(&v, 1));
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Comm, TagMatchingSkipsNonMatching) {
  Cluster cluster(2);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 10, b = 20;
      comm.send<int>(1, std::span<const int>(&a, 1), /*tag=*/1);
      comm.send<int>(1, std::span<const int>(&b, 1), /*tag=*/2);
    } else {
      int v = 0;
      comm.recv<int>(0, std::span<int>(&v, 1), /*tag=*/2);
      EXPECT_EQ(v, 20);
      comm.recv<int>(0, std::span<int>(&v, 1), /*tag=*/1);
      EXPECT_EQ(v, 10);
    }
  });
}

TEST(Comm, SendRecvSymmetricExchange) {
  Cluster cluster(2);
  cluster.run([](Comm& comm) {
    std::vector<int> mine(4, comm.rank());
    std::vector<int> theirs(4, -1);
    comm.sendrecv<int>(1 - comm.rank(), mine, theirs);
    for (int v : theirs) EXPECT_EQ(v, 1 - comm.rank());
  });
}

TEST(Comm, BarrierSynchronizes) {
  Cluster cluster(8);
  std::atomic<int> before{0}, after{0};
  cluster.run([&](Comm& comm) {
    ++before;
    comm.barrier();
    // Every rank must have incremented `before` before any rank passes.
    EXPECT_EQ(before.load(), 8);
    ++after;
    comm.barrier();
    EXPECT_EQ(after.load(), 8);
  });
}

TEST(Comm, BroadcastFromEveryRoot) {
  Cluster cluster(4);
  cluster.run([](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<int> data(3, comm.rank() == root ? 42 + root : -1);
      comm.broadcast<int>(root, data);
      for (int v : data) EXPECT_EQ(v, 42 + root);
      comm.barrier();
    }
  });
}

TEST(Comm, AllgatherConcatenatesInRankOrder) {
  Cluster cluster(4);
  cluster.run([](Comm& comm) {
    std::vector<int> mine{comm.rank() * 2, comm.rank() * 2 + 1};
    std::vector<int> all(8, -1);
    comm.allgather<int>(mine, all);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
  });
}

TEST(Comm, AlltoallTransposesBlocks) {
  const int p = 4;
  Cluster cluster(p);
  cluster.run([p](Comm& comm) {
    // Element j of rank r's send buffer encodes (r, j).
    std::vector<int> out(static_cast<std::size_t>(p) * 2);
    for (int j = 0; j < p; ++j) {
      out[static_cast<std::size_t>(2 * j)] = comm.rank() * 100 + j * 10;
      out[static_cast<std::size_t>(2 * j) + 1] = comm.rank() * 100 + j * 10 + 1;
    }
    std::vector<int> in(out.size(), -1);
    comm.alltoall<int>(out, in);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(in[static_cast<std::size_t>(2 * r)], r * 100 + comm.rank() * 10);
      EXPECT_EQ(in[static_cast<std::size_t>(2 * r) + 1], r * 100 + comm.rank() * 10 + 1);
    }
  });
}

TEST(Comm, AlltoallvVariableBlocks) {
  const int p = 4;
  Cluster cluster(p);
  cluster.run([p](Comm& comm) {
    // Rank r sends r+j+1 elements to rank j, each tagged (r*100 + j).
    std::vector<int> out;
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
      const std::size_t c = static_cast<std::size_t>(comm.rank() + j + 1);
      counts[static_cast<std::size_t>(j)] = c;
      for (std::size_t k = 0; k < c; ++k) out.push_back(comm.rank() * 100 + j);
    }
    std::vector<std::size_t> recv_counts;
    const std::vector<int> in = comm.alltoallv<int>(out, counts, recv_counts);
    ASSERT_EQ(recv_counts.size(), static_cast<std::size_t>(p));
    std::size_t offset = 0;
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(recv_counts[static_cast<std::size_t>(r)],
                static_cast<std::size_t>(r + comm.rank() + 1));
      for (std::size_t k = 0; k < recv_counts[static_cast<std::size_t>(r)]; ++k)
        EXPECT_EQ(in[offset + k], r * 100 + comm.rank());
      offset += recv_counts[static_cast<std::size_t>(r)];
    }
    EXPECT_EQ(offset, in.size());
  });
}

TEST(Comm, AlltoallvEmptyBlocks) {
  Cluster cluster(3);
  cluster.run([](Comm& comm) {
    // Only rank 0 sends, and only to rank 2.
    std::vector<double> out;
    std::vector<std::size_t> counts(3, 0);
    if (comm.rank() == 0) {
      out = {1.5, 2.5};
      counts[2] = 2;
    }
    std::vector<std::size_t> recv_counts;
    const auto in = comm.alltoallv<double>(out, counts, recv_counts);
    if (comm.rank() == 2) {
      ASSERT_EQ(in.size(), 2u);
      EXPECT_EQ(in[0], 1.5);
      EXPECT_EQ(recv_counts[0], 2u);
    } else {
      EXPECT_TRUE(in.empty());
    }
  });
}

TEST(Comm, AlltoallvValidatesCounts) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 std::vector<int> out(3);
                 std::vector<std::size_t> counts{1, 1};  // != out.size()
                 std::vector<std::size_t> rc;
                 comm.alltoallv<int>(out, counts, rc);
               }),
               std::invalid_argument);
}

TEST(Comm, AllreduceSumAndMax) {
  Cluster cluster(6);
  cluster.run([](Comm& comm) {
    const double sum = comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(sum, 21.0);  // 1+2+...+6
    const double mx = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(mx, 5.0);
    const std::uint64_t usum = comm.allreduce_sum(std::uint64_t{1});
    EXPECT_EQ(usum, 6u);
  });
}

TEST(Comm, RecvSizeMismatchThrows) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   std::vector<int> v(3);
                   comm.send<int>(1, v);
                   std::vector<int> sink(1);
                   comm.recv<int>(1, sink);  // never satisfied; peer throws
                 } else {
                   std::vector<int> w(5);
                   comm.recv<int>(0, w);  // size mismatch -> throws
                 }
               }),
               std::runtime_error);
}

TEST(Comm, InvalidRankThrows) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 std::vector<int> v(1);
                 comm.send<int>(7, v);  // lint:allow(p2p-unmatched) -- invalid-rank send must throw before delivery
               }),
               std::invalid_argument);
}

TEST(Cluster, PeerFailureAbortsBlockedRanks) {
  Cluster cluster(3);
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 if (comm.rank() == 0) throw std::runtime_error("rank0 died");
                 // Other ranks block forever unless aborted.
                 std::vector<int> v(1);
                 comm.recv<int>(0, v);  // lint:allow(p2p-unmatched) -- deliberately unanswered: abort must wake it
               }),
               std::runtime_error);
}

TEST(Cluster, ReusableForMultipleRuns) {
  Cluster cluster(2);
  for (int iter = 0; iter < 3; ++iter) {
    int total = 0;
    cluster.run([&](Comm& comm) {
      const int x = comm.allreduce_sum(1);
      if (comm.rank() == 0) total = x;
    });
    EXPECT_EQ(total, 2);
  }
}

TEST(Cluster, ManyRanksStress) {
  Cluster cluster(16, /*omp_threads_per_rank=*/1);
  cluster.run([](Comm& comm) {
    // Ring pass: each rank sends its id around the ring.
    int token = comm.rank();
    for (int step = 0; step < comm.size(); ++step) {
      const int next = (comm.rank() + 1) % comm.size();
      const int prev = (comm.rank() + comm.size() - 1) % comm.size();
      comm.send<int>(next, std::span<const int>(&token, 1));
      comm.recv<int>(prev, std::span<int>(&token, 1));
    }
    EXPECT_EQ(token, comm.rank());  // full circle
  });
}

// --- persistent session lifecycle --------------------------------------

TEST(ClusterSession, RankLocalStateSurvivesAcrossJobs) {
  // Three submissions against the same parked ranks; each rank's slot
  // accumulates across jobs — the residency contract DistBackend
  // builds on.
  const int p = 4;
  ClusterSession session(p, 1);
  std::vector<int> slots(static_cast<std::size_t>(p), 0);
  session.submit([&](Comm& comm) { slots[static_cast<std::size_t>(comm.rank())] = comm.rank(); });
  session.submit([&](Comm& comm) { slots[static_cast<std::size_t>(comm.rank())] += 10; });
  int total = -1;
  session.submit([&](Comm& comm) {
    const int x = comm.allreduce_sum(slots[static_cast<std::size_t>(comm.rank())]);
    if (comm.rank() == 0) total = x;
  });
  session.sync();
  EXPECT_EQ(total, 0 + 1 + 2 + 3 + 4 * 10);
  for (int r = 0; r < p; ++r) EXPECT_EQ(slots[static_cast<std::size_t>(r)], r + 10);
}

TEST(ClusterSession, SubmitReturnsBeforeExecution) {
  ClusterSession session(2, 1);
  std::atomic<bool> go{false};
  std::atomic<int> ran{0};
  session.submit([&](Comm& comm) {
    while (!go.load()) std::this_thread::yield();
    comm.barrier();
    ++ran;
  });
  // submit() returned while every rank is still spinning on `go`.
  EXPECT_EQ(ran.load(), 0);
  go.store(true);
  session.sync();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ClusterSession, AbortInOneJobLeavesSessionUsable) {
  ClusterSession session(3, 1);
  session.submit([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("job1 died");
    // Peers block until the abort wakes them with ClusterAborted.
    std::vector<int> v(1);
    comm.recv<int>(0, v);  // lint:allow(p2p-unmatched) -- deliberately unanswered: abort must wake it
  });
  EXPECT_THROW(session.sync(), std::runtime_error);
  // The session recovered: the next job runs on a clean substrate
  // (abort flag cleared, mailboxes drained, barrier reset).
  int total = -1;
  session.submit([&](Comm& comm) {
    comm.barrier();
    const int x = comm.allreduce_sum(1);
    if (comm.rank() == 0) total = x;
  });
  session.sync();
  EXPECT_EQ(total, 3);
}

TEST(ClusterSession, JobsQueuedBehindAFailureAreSkipped) {
  ClusterSession session(2, 1);
  std::atomic<int> ran{0};
  session.submit([](Comm&) { throw std::logic_error("boom"); });
  session.submit([&](Comm&) { ++ran; });  // same batch: must not execute
  EXPECT_THROW(session.sync(), std::logic_error);
  EXPECT_EQ(ran.load(), 0);
  session.submit([&](Comm&) { ++ran; });  // next batch: runs again
  session.sync();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ClusterSession, SyncPrefersRootCauseOverClusterAborted) {
  ClusterSession session(4, 1);
  session.submit([](Comm& comm) {
    if (comm.rank() == 2) throw std::invalid_argument("root cause");
    comm.barrier();  // lint:allow(collective-divergence) -- divergence is the subject: peers must die of ClusterAborted
  });
  EXPECT_THROW(session.sync(), std::invalid_argument);
}

TEST(ClusterSession, NestedSubmitThrows) {
  ClusterSession session(2, 1);
  session.submit([&](Comm&) {
    // Inside a job every rank would enqueue a copy — must throw, and
    // the throw aborts the batch like any job failure.
    session.submit([](Comm&) {});
  });
  EXPECT_THROW(session.sync(), std::logic_error);
}

TEST(ClusterSession, NestedSyncThrows) {
  ClusterSession session(2, 1);
  session.submit([&](Comm&) { session.sync(); });
  EXPECT_THROW(session.sync(), std::logic_error);
}

TEST(ClusterSession, DestructorJoinsParkedRanks) {
  // Never-submitted, submitted-but-unsynced, and failed-but-unsynced
  // sessions must all join their parked ranks without deadlock.
  { ClusterSession idle(8, 1); }
  {
    ClusterSession busy(4, 1);
    busy.submit([](Comm& comm) { comm.barrier(); });
  }
  {
    ClusterSession failed(2, 1);
    failed.submit([](Comm&) { throw std::runtime_error("dropped on the floor"); });
  }
  SUCCEED();
}

TEST(ClusterSession, OversubscribedSessionReuse) {
  // More ranks than any test machine has cores, reused across jobs.
  const int p = 32;
  ClusterSession session(p, 1);
  for (int job = 0; job < 3; ++job) {
    int sum = -1;
    session.submit([&, job](Comm& comm) {
      const int x = comm.allreduce_sum(comm.rank() + job);
      if (comm.rank() == 0) sum = x;
    });
    session.sync();
    EXPECT_EQ(sum, p * (p - 1) / 2 + p * job);
  }
}

TEST(Cluster, OversubscribedRanksStress) {
  // Far more ranks than any test machine has cores: the runtime must
  // stay correct under heavy thread contention (the CI matrix runs this
  // suite explicitly for exactly that reason).
  const int p = 32;
  Cluster cluster(p, 1);
  cluster.run([p](Comm& comm) {
    comm.barrier();
    EXPECT_EQ(comm.allreduce_sum(comm.rank()), p * (p - 1) / 2);
    // Symmetric neighbor exchange around the ring.
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() + p - 1) % p;
    int out = comm.rank(), in = -1;
    comm.send<int>(next, std::span<const int>(&out, 1));
    comm.recv<int>(prev, std::span<int>(&in, 1));
    EXPECT_EQ(in, prev);
    comm.barrier();
  });
}

}  // namespace
}  // namespace qc::cluster
