// Unit tests for the common substrate: bit manipulation, RNG, aligned
// allocation, CLI parsing, and table formatting.
#include <gtest/gtest.h>

#include <set>

#include "common/aligned.hpp"
#include "common/bits.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace qc {
namespace {

TEST(Bits, GetSetClearFlip) {
  index_t x = 0b1010;
  EXPECT_EQ(bits::get(x, 1), 1u);
  EXPECT_EQ(bits::get(x, 0), 0u);
  EXPECT_EQ(bits::set(x, 0), 0b1011u);
  EXPECT_EQ(bits::clear(x, 1), 0b1000u);
  EXPECT_EQ(bits::flip(x, 3), 0b0010u);
  EXPECT_TRUE(bits::test(x, 3));
  EXPECT_FALSE(bits::test(x, 2));
}

TEST(Bits, LowMask) {
  EXPECT_EQ(bits::low_mask(0), 0u);
  EXPECT_EQ(bits::low_mask(3), 0b111u);
  EXPECT_EQ(bits::low_mask(64), ~index_t{0});
}

TEST(Bits, InsertBitVisitsAllZeroBitIndices) {
  // insert_bit(j, k) over j in [0, 2^{n-1}) must enumerate exactly the
  // indices of an n-bit space whose bit k is zero.
  const qubit_t n = 5;
  for (qubit_t k = 0; k < n; ++k) {
    std::set<index_t> seen;
    for (index_t j = 0; j < dim(n - 1); ++j) {
      const index_t i = bits::insert_bit(j, k);
      EXPECT_FALSE(bits::test(i, k));
      EXPECT_LT(i, dim(n));
      seen.insert(i);
    }
    EXPECT_EQ(seen.size(), dim(n - 1));
  }
}

TEST(Bits, InsertThenRemoveRoundTrips) {
  for (index_t j = 0; j < 64; ++j)
    for (qubit_t k = 0; k < 7; ++k) EXPECT_EQ(bits::remove_bit(bits::insert_bit(j, k), k), j);
}

TEST(Bits, FieldExtractReplace) {
  const index_t i = 0b110'101'011;
  EXPECT_EQ(bits::field(i, 0, 3), 0b011u);
  EXPECT_EQ(bits::field(i, 3, 3), 0b101u);
  EXPECT_EQ(bits::field(i, 6, 3), 0b110u);
  EXPECT_EQ(bits::with_field(i, 3, 3, 0b000), 0b110'000'011u);
  EXPECT_EQ(bits::field(bits::with_field(i, 6, 3, 0b001), 6, 3), 0b001u);
}

TEST(Bits, ReverseIsInvolution) {
  const qubit_t n = 9;
  for (index_t i = 0; i < dim(n); ++i) {
    const index_t r = bits::reverse(i, n);
    EXPECT_LT(r, dim(n));
    EXPECT_EQ(bits::reverse(r, n), i);
  }
}

TEST(Bits, ReverseKnownValues) {
  EXPECT_EQ(bits::reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bits::reverse(0b110, 3), 0b011u);
  EXPECT_EQ(bits::reverse(0b1, 1), 0b1u);
}

TEST(Bits, ParityMatchesPopcount) {
  EXPECT_EQ(bits::parity(0b1011, 0b1111), 1);
  EXPECT_EQ(bits::parity(0b1011, 0b1001), 0);
  EXPECT_EQ(bits::parity(0, ~index_t{0}), 0);
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(bits::is_pow2(1));
  EXPECT_TRUE(bits::is_pow2(64));
  EXPECT_FALSE(bits::is_pow2(0));
  EXPECT_FALSE(bits::is_pow2(48));
  EXPECT_EQ(bits::log2_floor(1), 0u);
  EXPECT_EQ(bits::log2_floor(63), 5u);
  EXPECT_EQ(bits::log2_floor(64), 6u);
}

TEST(Bits, AllDistinctBelow) {
  const std::vector<qubit_t> ok{0, 3, 2};
  const std::vector<qubit_t> dup{0, 3, 3};
  const std::vector<qubit_t> high{0, 9};
  EXPECT_TRUE(bits::all_distinct_below(ok, 4));
  EXPECT_FALSE(bits::all_distinct_below(dup, 4));
  EXPECT_FALSE(bits::all_distinct_below(high, 4));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_u64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng base(5);
  Rng f0 = base.fork(0), f1 = base.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += f0.next_u64() == f1.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Aligned, VectorDataIsAligned) {
  aligned_vector<complex_t> v(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u);
}

TEST(Cli, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "--qubits", "20", "--full", "--name=fig1", "extra"};
  const Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("qubits", 0), 20);
  EXPECT_TRUE(cli.has("full"));
  EXPECT_FALSE(cli.has("absent"));
  EXPECT_EQ(cli.get_string("name", ""), "fig1");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "extra");
  EXPECT_EQ(cli.get_int("missing", -3), -3);
}

TEST(Cli, EqualsSyntaxAndDoubles) {
  const char* argv[] = {"prog", "--dt=0.125", "--reps", "3"};
  const Cli cli(4, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("dt", 0), 0.125);
  EXPECT_EQ(cli.get_int("reps", 0), 3);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"m", "time"});
  t.add_row({"2", "1.5e-3"});
  t.add_row({"10", "2.0e+1"});
  const std::string s = t.to_string("title");
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("1.5e-3"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, SciAndFixedFormat) {
  EXPECT_EQ(sci(0.000144, 2), "1.44e-04");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(Timer, TimePerRepPositive) {
  volatile int sink = 0;
  const double per = time_per_rep([&] { sink = sink + 1; }, 0.01, 1000);
  EXPECT_GT(per, 0.0);
}

}  // namespace
}  // namespace qc
