// Dispatch-equivalence tests for the runtime-selected SIMD kernels:
// every available ISA must agree with the scalar reference to 1e-12 at
// fp64 (fp32 to a few ulps of float) for every dispatched gate class —
// dense 2x2 (folded + masked), dense 4x4 fused blocks, and the
// run-scaled diagonal — across register sizes that cover both the
// short-run remainder paths and long vector runs. Also covers the
// QC_SIMD override and the force_isa round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <numbers>
#include <vector>

#include "sim/kernels.hpp"
#include "sim/kernels_dispatch.hpp"
#include "sim/state_vector.hpp"

namespace qc::sim::kernels {
namespace {

std::vector<SimdIsa> available() {
  std::vector<SimdIsa> out;
  for (const SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kAvx512})
    if (isa_available(isa)) out.push_back(isa);
  return out;
}

/// Restores the pre-test dispatch decision on scope exit.
struct IsaGuard {
  SimdIsa prev = active_isa();
  ~IsaGuard() {
    force_isa(prev);
  }
};

template <typename T>
BasicStateVector<T> random_state(qubit_t n, std::uint64_t seed) {
  BasicStateVector<T> sv(n);
  sv.randomize_deterministic(seed);
  return sv;
}

template <typename T>
double max_diff(const BasicStateVector<T>& a, const BasicStateVector<T>& b) {
  return a.max_abs_diff(b);
}

/// Tolerance of the ISA-agreement check: the vector kernels reassociate
/// FMA chains, so fp32 allows a few float ulps; fp64 must agree to the
/// CONTRIBUTING-mandated 1e-12.
template <typename T>
constexpr double kIsaTol = std::is_same_v<T, double> ? 1e-12 : 1e-5;

/// Runs `apply` under every available ISA and checks the result against
/// the scalar reference outcome.
template <typename T, typename F>
void expect_isa_agreement(qubit_t n, F&& apply) {
  IsaGuard guard;
  force_isa(SimdIsa::kScalar);
  BasicStateVector<T> ref = random_state<T>(n, 7 + n);
  apply(ref);
  for (const SimdIsa isa : available()) {
    if (isa == SimdIsa::kScalar) continue;
    force_isa(isa);
    BasicStateVector<T> got = random_state<T>(n, 7 + n);
    apply(got);
    EXPECT_LE(max_diff(ref, got), kIsaTol<T>)
        << "isa=" << isa_name(isa) << " n=" << static_cast<int>(n)
        << " fp=" << 8 * sizeof(T);
  }
}

template <typename T>
void sweep_gate_classes() {
  const U2 h{1 / std::numbers::sqrt2, 1 / std::numbers::sqrt2, 1 / std::numbers::sqrt2,
             -1 / std::numbers::sqrt2};
  const U2 g{std::polar(0.6, 0.2), std::polar(0.8, -1.1), std::polar(0.8, 2.0),
             std::polar(0.6, 0.9)};
  // n=4 exercises the scalar remainder of every vector width; n=16 the
  // long-run main loops; intermediate sizes the mixed cases.
  for (const qubit_t n : {qubit_t{4}, qubit_t{7}, qubit_t{10}, qubit_t{16}}) {
    for (qubit_t t = 0; t < n; t += (n > 4 ? 3 : 1)) {
      // Dense 2x2, uncontrolled + controlled (folded path).
      expect_isa_agreement<T>(n, [&](BasicStateVector<T>& sv) {
        apply_folded<T>(sv.amplitudes(), n, t, 0, u2_cast<T>(g));
      });
      const index_t cmask = t == 0 ? index_t{1} << (n - 1) : index_t{1};
      expect_isa_agreement<T>(n, [&](BasicStateVector<T>& sv) {
        apply_folded<T>(sv.amplitudes(), n, t, cmask, u2_cast<T>(h));
      });
      // Run-scaled diagonal, controlled.
      expect_isa_agreement<T>(n, [&](BasicStateVector<T>& sv) {
        apply_diagonal<T>(sv.amplitudes(), n, t,
                          static_cast<basic_complex_t<T>>(std::polar(1.0, 0.4)),
                          static_cast<basic_complex_t<T>>(std::polar(1.0, -0.7)), cmask);
      });
    }
    // Dense 4x4 fused block over adjacent and strided target pairs.
    for (const auto& targets :
         {std::vector<qubit_t>{0, 1}, std::vector<qubit_t>{1, static_cast<qubit_t>(n - 1)}}) {
      std::vector<basic_complex_t<T>> u(16);
      const complex_t gm[4] = {g.m00, g.m01, g.m10, g.m11};
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
          u[static_cast<std::size_t>(4 * i + j)] = static_cast<basic_complex_t<T>>(
              gm[2 * (i >> 1) + (j >> 1)] * gm[2 * (i & 1) + (j & 1)]);
      expect_isa_agreement<T>(n, [&](BasicStateVector<T>& sv) {
        apply_multi<T>(sv.amplitudes(), n, {targets.data(), targets.size()},
                       {u.data(), u.size()});
      });
    }
  }
}

TEST(Dispatch, EveryIsaMatchesScalarReferenceF64) { sweep_gate_classes<double>(); }

TEST(Dispatch, EveryIsaMatchesScalarReferenceF32) { sweep_gate_classes<float>(); }

TEST(Dispatch, ActiveIsaIsAvailable) {
  EXPECT_TRUE(isa_available(active_isa()));
  EXPECT_LE(static_cast<int>(active_isa()), static_cast<int>(detect_isa()));
}

TEST(Dispatch, ForceIsaRoundTrip) {
  const SimdIsa before = active_isa();
  const SimdIsa prev = force_isa(SimdIsa::kScalar);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(active_isa(), SimdIsa::kScalar);
  force_isa(before);
  EXPECT_EQ(active_isa(), before);
}

TEST(Dispatch, QcSimdOverrideClampsToScalar) {
  IsaGuard guard;
  // QC_SIMD requesting a *lower* tier than detected must be honored —
  // that is the sanitizer-leg contract (CI runs QC_SIMD=scalar).
  ASSERT_EQ(setenv("QC_SIMD", "scalar", 1), 0);
  refresh_isa();
  EXPECT_EQ(active_isa(), SimdIsa::kScalar);
  ASSERT_EQ(unsetenv("QC_SIMD"), 0);
  refresh_isa();
  EXPECT_EQ(active_isa(), detect_isa());
}

TEST(Dispatch, QcSimdUnknownValueIgnored) {
  IsaGuard guard;
  ASSERT_EQ(setenv("QC_SIMD", "sse9000", 1), 0);
  refresh_isa();
  EXPECT_EQ(active_isa(), detect_isa());
  ASSERT_EQ(unsetenv("QC_SIMD"), 0);
  refresh_isa();
}

}  // namespace
}  // namespace qc::sim::kernels
