// Tests for distributed emulation: the global-permutation arithmetic of
// §4.2 and the distributed QFT shortcut, all against the serial
// emulator / serial gate-level results.
#include <gtest/gtest.h>

#include <memory>

#include "circuit/builders.hpp"
#include "emu/dist_emu.hpp"
#include "emu/observables.hpp"
#include "sim/simulator.hpp"

namespace qc::emu {
namespace {

using sim::DistStateVector;
using sim::StateVector;

struct Case {
  qubit_t n;
  int ranks;
};

class DistPermutation : public ::testing::TestWithParam<Case> {};

TEST_P(DistPermutation, MatchesSerialEmulator) {
  const auto [n, ranks] = GetParam();
  StateVector serial(n);
  serial.randomize_deterministic(n * 31);
  Emulator semu(serial);
  const index_t mask = bits::low_mask(n);
  const auto f = [mask](index_t i) { return (i ^ (i >> 3) ^ 0x2b) & mask ^ (i << 2 & mask); };
  // Make an honest bijection instead: multiply by odd constant mod 2^n.
  const auto g = [mask](index_t i) { return (i * 5 + 3) & mask; };
  (void)f;
  semu.apply_permutation(g);

  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(n * 31);
    DistEmulator demu(dsv);
    demu.apply_permutation(g);
    const StateVector gathered = dsv.gather_all();
    EXPECT_LT(gathered.max_abs_diff(serial), 1e-14);
  });
}

INSTANTIATE_TEST_SUITE_P(Cases, DistPermutation,
                         ::testing::Values(Case{6, 1}, Case{6, 2}, Case{8, 4}, Case{9, 8},
                                           Case{10, 4}, Case{12, 16}));

class DistArithmetic : public ::testing::TestWithParam<Case> {};

TEST_P(DistArithmetic, MultiplyMatchesSerial) {
  const auto [n, ranks] = GetParam();
  const qubit_t m = n / 3;
  if (m == 0) GTEST_SKIP();
  const RegRef a{0, m}, b{m, m}, c{static_cast<qubit_t>(2 * m), m};

  StateVector serial(n);
  serial.randomize_deterministic(n * 57);
  Emulator semu(serial);
  semu.multiply(a, b, c);

  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(n * 57);
    DistEmulator demu(dsv);
    demu.multiply(a, b, c);
    EXPECT_LT(dsv.gather_all().max_abs_diff(serial), 1e-14);
  });
}

TEST_P(DistArithmetic, AddMatchesSerial) {
  const auto [n, ranks] = GetParam();
  const qubit_t w = n / 2;
  const RegRef a{0, w}, b{w, w};
  StateVector serial(n);
  serial.randomize_deterministic(n * 77);
  Emulator semu(serial);
  semu.add(a, b);

  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(n * 77);
    DistEmulator demu(dsv);
    demu.add(a, b);
    EXPECT_LT(dsv.gather_all().max_abs_diff(serial), 1e-14);
  });
}

INSTANTIATE_TEST_SUITE_P(Cases, DistArithmetic,
                         ::testing::Values(Case{6, 2}, Case{9, 4}, Case{12, 8}));

TEST(DistEmulator, DivideMatchesSerialOnPreparedState) {
  // Division needs c = 0 support: superpose a and b only.
  const qubit_t m = 3, n = 9;
  const int ranks = 4;
  const RegRef a{0, m}, b{m, m}, c{2 * m, m};

  StateVector serial(n);
  {
    circuit::Circuit prep(n);
    for (qubit_t q = 0; q < 2 * m; ++q) prep.h(q);
    sim::HpcSimulator().run(serial, prep);
  }
  Emulator semu(serial);
  semu.divide(a, b, c);

  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.set_basis(0);
    dsv.run([&] {
      circuit::Circuit prep(n);
      for (qubit_t q = 0; q < 2 * m; ++q) prep.h(q);
      return prep;
    }(), sim::CommPolicy::Specialized);
    DistEmulator demu(dsv);
    demu.divide(a, b, c);
    EXPECT_LT(dsv.gather_all().max_abs_diff(serial), 1e-13);
  });
}

TEST(DistEmulator, PartialMapCollisionAborts) {
  cluster::Cluster cluster(2, 1);
  EXPECT_THROW(cluster.run([](cluster::Comm& comm) {
                 DistStateVector dsv(comm, 4);
                 // Uniform state: every amplitude nonzero.
                 dsv.randomize(1);
                 DistEmulator demu(dsv);
                 demu.apply_partial_map([](index_t) { return index_t{0}; });
               }),
               std::logic_error);
}

TEST(DistEmulator, MapOutOfRangeThrows) {
  cluster::Cluster cluster(2, 1);
  EXPECT_THROW(cluster.run([](cluster::Comm& comm) {
                 DistStateVector dsv(comm, 4);
                 DistEmulator demu(dsv);
                 demu.apply_permutation([](index_t i) { return i + 1000; });
               }),
               std::invalid_argument);
}

TEST(DistEmulator, QftMatchesSerialCircuit) {
  const qubit_t n = 10;
  StateVector serial(n);
  serial.randomize_deterministic(404);
  sim::HpcSimulator().run(serial, circuit::qft(n));

  for (const int ranks : {1, 2, 4, 8}) {
    cluster::Cluster cluster(ranks, 1);
    cluster.run([&](cluster::Comm& comm) {
      DistStateVector dsv(comm, n);
      dsv.randomize(404);
      DistEmulator demu(dsv);
      const fft::DistFftStats stats = demu.qft();
      EXPECT_LT(dsv.gather_all().max_abs_diff(serial), 1e-11) << "ranks=" << ranks;
      EXPECT_GT(stats.total(), 0.0);
    });
  }
}

TEST(DistEmulator, QftRoundTrip) {
  const qubit_t n = 9;
  cluster::Cluster cluster(4, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(31);
    const StateVector before = dsv.gather_all();
    DistEmulator demu(dsv);
    demu.qft();
    demu.inverse_qft();
    EXPECT_LT(dsv.gather_all().max_abs_diff(before), 1e-11);
  });
}

TEST(DistEmulator, PermutationPreservesNorm) {
  cluster::Cluster cluster(4, 1);
  cluster.run([](cluster::Comm& comm) {
    DistStateVector dsv(comm, 10);
    dsv.randomize(8);
    DistEmulator demu(dsv);
    const index_t mask = bits::low_mask(10);
    demu.apply_permutation([mask](index_t i) { return (i * 13 + 7) & mask; });
    EXPECT_NEAR(dsv.norm_sq(), 1.0, 1e-12);
  });
}

TEST(DistEmulator, ResidentStateAcrossSessionJobs) {
  // Distributed emulation through a persistent session: the per-rank
  // state is constructed in one submitted job and *stays resident*
  // across further submissions (arithmetic, QFT round trip, readout) —
  // the ownership model the dist backend runs on, with no per-job
  // scatter or gather.
  const qubit_t n = 9;
  const int ranks = 4;
  const index_t mask = bits::low_mask(n);

  StateVector serial(n);
  serial.randomize_deterministic(606);
  Emulator semu(serial);
  semu.apply_permutation([mask](index_t i) { return (i * 9 + 5) & mask; });

  cluster::ClusterSession session(ranks, 1);
  std::vector<std::unique_ptr<DistStateVector>> slots(ranks);
  session.submit([&](cluster::Comm& comm) {
    auto dsv = std::make_unique<DistStateVector>(comm, n);
    dsv->randomize(606);
    slots[static_cast<std::size_t>(comm.rank())] = std::move(dsv);
  });
  session.submit([&](cluster::Comm& comm) {
    DistEmulator demu(*slots[static_cast<std::size_t>(comm.rank())]);
    demu.apply_permutation([mask](index_t i) { return (i * 9 + 5) & mask; });
  });
  session.submit([&](cluster::Comm& comm) {
    DistEmulator demu(*slots[static_cast<std::size_t>(comm.rank())]);
    demu.qft();
    demu.inverse_qft();
  });
  double diff = -1;
  session.submit([&](cluster::Comm& comm) {
    const StateVector gathered =
        slots[static_cast<std::size_t>(comm.rank())]->gather_all();
    if (comm.rank() == 0) diff = gathered.max_abs_diff(serial);
  });
  session.sync();
  EXPECT_GE(diff, 0.0);
  EXPECT_LT(diff, 1e-11);
}

TEST(DistObservables, ExpectationZStringMatchesSerial) {
  const qubit_t n = 9;
  StateVector serial(n);
  serial.randomize_deterministic(63);
  for (const int ranks : {1, 2, 8}) {
    cluster::Cluster cluster(ranks, 1);
    cluster.run([&](cluster::Comm& comm) {
      DistStateVector dsv(comm, n);
      dsv.randomize(63);
      // Masks covering local-only, global-only, and straddling strings.
      for (const index_t mask : {index_t{0b1}, index_t{0b110000000}, index_t{0b101010101}})
        EXPECT_NEAR(expectation_z_string(dsv, mask),
                    expectation_z_string(serial, mask), 1e-12)
            << "ranks=" << ranks << " mask=" << mask;
    });
  }
}

}  // namespace
}  // namespace qc::emu
