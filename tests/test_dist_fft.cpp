// Tests for the distributed FFT: the distributed transpose primitive and
// the full six-step transform against the local FFT / naive DFT.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fft/dist_fft.hpp"

namespace qc::fft {
namespace {

aligned_vector<complex_t> random_signal(index_t size, std::uint64_t seed) {
  Rng rng(seed);
  aligned_vector<complex_t> v(size);
  for (auto& x : v) x = rng.normal_complex();
  return v;
}

double max_diff(std::span<const complex_t> a, std::span<const complex_t> b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

struct Case {
  qubit_t n;
  int ranks;
};

class DistTranspose : public ::testing::TestWithParam<Case> {};

TEST_P(DistTranspose, MatchesLocalTranspose) {
  const auto [n, p] = GetParam();
  const index_t rows = index_t{1} << ((n + 1) / 2);
  const index_t cols = index_t{1} << (n / 2);
  if (rows % p != 0 || cols % p != 0) GTEST_SKIP();
  const auto global = random_signal(rows * cols, 40 + n);

  // Expected: full local transpose.
  aligned_vector<complex_t> expected(rows * cols);
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < cols; ++c) expected[c * rows + r] = global[r * cols + c];

  aligned_vector<complex_t> gathered(rows * cols);
  cluster::Cluster cluster(p, 1);
  cluster.run([&](cluster::Comm& comm) {
    const index_t in_chunk = rows / p * cols;
    const index_t out_chunk = cols / p * rows;
    aligned_vector<complex_t> local_in(
        global.begin() + static_cast<std::ptrdiff_t>(comm.rank() * in_chunk),
        global.begin() + static_cast<std::ptrdiff_t>((comm.rank() + 1) * in_chunk));
    aligned_vector<complex_t> local_out(out_chunk);
    dist_transpose(comm, local_in, local_out, rows, cols);
    // allgather output is per-caller: every rank receives the full
    // result, so each rank gathers into its own buffer and only rank 0
    // publishes to the shared one.
    aligned_vector<complex_t> mine(static_cast<std::size_t>(rows * cols));
    comm.allgather<complex_t>(local_out, mine);
    if (comm.rank() == 0) gathered = std::move(mine);
  });
  EXPECT_EQ(max_diff(gathered, expected), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Cases, DistTranspose,
                         ::testing::Values(Case{4, 1}, Case{4, 2}, Case{6, 2}, Case{6, 4},
                                           Case{8, 4}, Case{10, 8}, Case{12, 4}));

class DistFft : public ::testing::TestWithParam<Case> {};

TEST_P(DistFft, MatchesLocalFft) {
  const auto [n, p] = GetParam();
  const index_t size = dim(n);
  const auto global = random_signal(size, 50 + n);

  aligned_vector<complex_t> expected = global;
  fft_inplace(expected, Sign::Positive, Norm::Unitary);

  aligned_vector<complex_t> gathered(size);
  cluster::Cluster cluster(p, 1);
  cluster.run([&](cluster::Comm& comm) {
    const index_t chunk = size / p;
    aligned_vector<complex_t> local(
        global.begin() + static_cast<std::ptrdiff_t>(comm.rank() * chunk),
        global.begin() + static_cast<std::ptrdiff_t>((comm.rank() + 1) * chunk));
    dist_fft(comm, local, n, Sign::Positive, Norm::Unitary);
    aligned_vector<complex_t> mine(static_cast<std::size_t>(size));
    comm.allgather<complex_t>(local, mine);
    if (comm.rank() == 0) gathered = std::move(mine);
  });
  EXPECT_LT(max_diff(gathered, expected), 1e-10 * std::sqrt(static_cast<double>(size)));
}

TEST_P(DistFft, RoundTripRestoresInput) {
  const auto [n, p] = GetParam();
  const index_t size = dim(n);
  const auto global = random_signal(size, 60 + n);
  aligned_vector<complex_t> gathered(size);
  cluster::Cluster cluster(p, 1);
  cluster.run([&](cluster::Comm& comm) {
    const index_t chunk = size / p;
    aligned_vector<complex_t> local(
        global.begin() + static_cast<std::ptrdiff_t>(comm.rank() * chunk),
        global.begin() + static_cast<std::ptrdiff_t>((comm.rank() + 1) * chunk));
    dist_fft(comm, local, n, Sign::Positive, Norm::None);
    dist_fft(comm, local, n, Sign::Negative, Norm::Inverse);
    aligned_vector<complex_t> mine(static_cast<std::size_t>(size));
    comm.allgather<complex_t>(local, mine);
    if (comm.rank() == 0) gathered = std::move(mine);
  });
  EXPECT_LT(max_diff(gathered, global), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cases, DistFft,
                         ::testing::Values(Case{4, 1}, Case{4, 2}, Case{6, 4}, Case{8, 2},
                                           Case{10, 4}, Case{12, 8}, Case{14, 4},
                                           Case{16, 16}));

TEST(DistFft, StatsArePopulated) {
  const qubit_t n = 12;
  const int p = 4;
  const index_t size = dim(n);
  const auto global = random_signal(size, 77);
  DistFftStats stats;
  cluster::Cluster cluster(p, 1);
  cluster.run([&](cluster::Comm& comm) {
    const index_t chunk = size / p;
    aligned_vector<complex_t> local(
        global.begin() + static_cast<std::ptrdiff_t>(comm.rank() * chunk),
        global.begin() + static_cast<std::ptrdiff_t>((comm.rank() + 1) * chunk));
    const DistFftStats s = dist_fft(comm, local, n, Sign::Positive, Norm::None);
    if (comm.rank() == 0) stats = s;
  });
  EXPECT_GT(stats.transpose_seconds, 0.0);
  EXPECT_GT(stats.local_fft_seconds, 0.0);
  EXPECT_GT(stats.total(), 0.0);
}

TEST(DistFft, ResidentChunksAcrossSessionJobs) {
  // The six-step FFT run twice (forward then inverse) as two separate
  // session jobs against rank-local chunks that stay resident between
  // submissions — how the distributed QFT executes under the resident
  // dist backend.
  const qubit_t n = 10;
  const int p = 4;
  const auto signal = random_signal(index_t{1} << n, 99);

  cluster::ClusterSession session(p, 1);
  const index_t chunk = (index_t{1} << n) / p;
  std::vector<aligned_vector<complex_t>> locals(static_cast<std::size_t>(p));
  session.submit([&](cluster::Comm& comm) {
    auto& local = locals[static_cast<std::size_t>(comm.rank())];
    local.assign(signal.begin() + static_cast<std::ptrdiff_t>(comm.rank() * chunk),
                 signal.begin() + static_cast<std::ptrdiff_t>((comm.rank() + 1) * chunk));
  });
  session.submit([&](cluster::Comm& comm) {
    auto& local = locals[static_cast<std::size_t>(comm.rank())];
    dist_fft(comm, {local.data(), local.size()}, n, Sign::Negative, Norm::Unitary);
  });
  session.submit([&](cluster::Comm& comm) {
    auto& local = locals[static_cast<std::size_t>(comm.rank())];
    dist_fft(comm, {local.data(), local.size()}, n, Sign::Positive, Norm::Unitary);
  });
  session.sync();
  for (int r = 0; r < p; ++r) {
    const auto& local = locals[static_cast<std::size_t>(r)];
    EXPECT_LT(max_diff(local, std::span<const complex_t>(
                                  signal.data() + static_cast<std::size_t>(r) * chunk, chunk)),
              1e-11);
  }
}

TEST(DistFft, RejectsTooManyRanks) {
  // n = 4 -> C = 4; 8 ranks cannot divide the columns.
  cluster::Cluster cluster(8, 1);
  EXPECT_THROW(cluster.run([&](cluster::Comm& comm) {
                 aligned_vector<complex_t> local(dim(4) / 8);
                 dist_fft(comm, local, 4, Sign::Positive);
               }),
               std::invalid_argument);
}

}  // namespace
}  // namespace qc::fft
