// Tests for the distributed scheduler/executor: agreement with the
// serial simulator across rank counts (including ranks so large a
// chunk is a single sweep chunk), the communication-volume win of the
// amortized global<->local exchange pass over per-gate exchanges
// (paper Eq. 6 / Fig. 4), and plan-structure sanity.
#include <gtest/gtest.h>

#include "circuit/builders.hpp"
#include "models/perf_model.hpp"
#include "sched/dist_schedule.hpp"
#include "sim/simulator.hpp"

namespace qc::sched {
namespace {

using circuit::Circuit;
using sim::CommPolicy;
using sim::DistStateVector;
using sim::StateVector;

/// Runs `c` through dist_schedule + run_dist_plan on `ranks` ranks
/// (random init, fixed seed) and compares against the serial
/// HpcSimulator; returns the max amplitude difference.
double plan_vs_serial(const Circuit& c, qubit_t n, int ranks, std::uint64_t seed,
                      const DistScheduleOptions& opts = {},
                      CommPolicy policy = CommPolicy::Specialized) {
  StateVector serial(n);
  serial.randomize_deterministic(seed);
  sim::HpcSimulator().run(serial, c);

  const auto nl = static_cast<qubit_t>(n - bits::log2_floor(static_cast<index_t>(ranks)));
  const DistPlan plan = dist_schedule(c, nl, opts);
  double diff = -1;
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(seed);
    run_dist_plan(dsv, plan, policy);
    const StateVector gathered = dsv.gather_all();
    if (comm.rank() == 0) diff = gathered.max_abs_diff(serial);
  });
  return diff;
}

struct Case {
  qubit_t n;
  int ranks;
};

class DistPlanRandomCircuit : public ::testing::TestWithParam<Case> {};

TEST_P(DistPlanRandomCircuit, MatchesSerialSimulator) {
  const auto [n, ranks] = GetParam();
  Rng rng(n * 1000 + ranks);
  const Circuit c = circuit::random_circuit(n, 60, rng);
  EXPECT_LT(plan_vs_serial(c, n, ranks, 4242), 1e-12);
}

TEST_P(DistPlanRandomCircuit, QftMatchesSerial) {
  const auto [n, ranks] = GetParam();
  EXPECT_LT(plan_vs_serial(circuit::qft(n), n, ranks, 1717), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Cases, DistPlanRandomCircuit,
                         ::testing::Values(Case{8, 1}, Case{8, 2}, Case{8, 4}, Case{9, 8},
                                           // nl = 3: a rank's whole chunk is one
                                           // sweep chunk for the local pipeline.
                                           Case{6, 8},
                                           // Oversubscribed: more ranks than any
                                           // test machine has cores.
                                           Case{10, 32}));

TEST(DistSchedule, RemapDisabledStillAgrees) {
  Rng rng(5);
  const Circuit c = circuit::random_circuit(9, 50, rng);
  DistScheduleOptions opts;
  opts.remap = false;
  EXPECT_LT(plan_vs_serial(c, 9, 4, 99, opts), 1e-12);
  EXPECT_LT(plan_vs_serial(c, 9, 4, 99, opts, CommPolicy::Exchange), 1e-12);
}

TEST(DistSchedule, ExchangePolicyExecutionAgrees) {
  Rng rng(6);
  const Circuit c = circuit::random_circuit(8, 50, rng);
  DistScheduleOptions opts;
  opts.policy = CommPolicy::Exchange;
  EXPECT_LT(plan_vs_serial(c, 8, 4, 77, opts, CommPolicy::Exchange), 1e-12);
}

/// A global-qubit-heavy workload: a long run of non-diagonal gates on
/// the two distributed qubits, plus local work.
Circuit global_heavy_circuit(qubit_t n) {
  Circuit c(n);
  for (int rep = 0; rep < 20; ++rep) {
    c.h(n - 1);
    c.rx(n - 2, 0.3 + 0.01 * rep);
    c.h(0);
    c.cnot(n - 2, n - 1);
  }
  return c;
}

TEST(DistSchedule, PlanLocalizesGlobalHeavyRun) {
  const qubit_t n = 10;
  const qubit_t nl = 8;
  const DistPlan plan = dist_schedule(global_heavy_circuit(n), nl, {});
  // The exchange pass relocates the run: nearly all gates end up in
  // rank-local segments and only a handful of chunk permutations remain.
  EXPECT_GT(plan.exchanges(), 0u);
  EXPECT_LT(plan.exchanges() + plan.globals(), 6u);
  EXPECT_GT(plan.local_gates() + plan.globals(), 0u);
  EXPECT_FALSE(plan.to_string().empty());
}

TEST(DistSchedule, RemappedSweepsCommunicateLessThanPerGateExchange) {
  // The acceptance criterion: on a global-qubit-heavy circuit the
  // amortized exchange pass must move strictly fewer bytes than the
  // qHiPSTER-like per-gate chunk exchange.
  const qubit_t n = 10;
  const int ranks = 4;
  const auto nl = static_cast<qubit_t>(n - 2);
  const Circuit c = global_heavy_circuit(n);
  const DistPlan plan = dist_schedule(c, nl, {});
  std::uint64_t bytes_plan = 1, bytes_pergate = 0;
  double diff = -1;
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector a(comm, n);
    a.randomize(11);
    run_dist_plan(a, plan, CommPolicy::Specialized);
    DistStateVector b(comm, n);
    b.randomize(11);
    b.run(c, CommPolicy::Exchange);
    const double d = a.max_abs_diff(b);  // collective: every rank calls
    if (comm.rank() == 0) {
      bytes_plan = a.bytes_communicated();
      bytes_pergate = b.bytes_communicated();
      diff = d;
    }
  });
  EXPECT_LT(diff, 1e-12);
  EXPECT_GT(bytes_plan, 0u);
  EXPECT_LT(bytes_plan, bytes_pergate);
}

TEST(DistSchedule, SingleRankPlanIsAllLocal) {
  Rng rng(8);
  const Circuit c = circuit::random_circuit(8, 40, rng);
  const DistPlan plan = dist_schedule(c, 8, {});
  EXPECT_EQ(plan.exchanges(), 0u);
  EXPECT_EQ(plan.globals(), 0u);
  EXPECT_EQ(plan.locals(), 1u);
}

TEST(DistSchedule, RejectsBadLocalWidth) {
  Circuit c(4);
  c.h(0);
  EXPECT_THROW((void)dist_schedule(c, 0, {}), std::invalid_argument);
  EXPECT_THROW((void)dist_schedule(c, 5, {}), std::invalid_argument);
}

TEST(PerfModel, Eq6ExchangeTermAndRemapGate) {
  const models::MachineParams m = models::MachineParams::stampede();
  // 16 bytes/amplitude over the chunk: doubling the chunk doubles time.
  const double t20 = models::t_chunk_exchange_seconds(20, m);
  EXPECT_NEAR(models::t_chunk_exchange_seconds(21, m), 2 * t20, 1e-12);
  EXPECT_GT(t20, 0);
  // The exchange pass (cost ~2 chunk exchanges) needs > 2 avoided
  // per-gate exchanges to pay off.
  EXPECT_FALSE(models::global_remap_profitable(2));
  EXPECT_TRUE(models::global_remap_profitable(3));
}

}  // namespace
}  // namespace qc::sched
