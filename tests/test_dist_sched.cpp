// Tests for the distributed scheduler/executor: agreement with the
// serial simulator across rank counts (including ranks so large a
// chunk is a single sweep chunk), the communication-volume win of the
// amortized global<->local exchange pass over per-gate exchanges
// (paper Eq. 6 / Fig. 4), and plan-structure sanity.
#include <gtest/gtest.h>

#include <numeric>

#include "circuit/builders.hpp"
#include "models/perf_model.hpp"
#include "sched/dist_schedule.hpp"
#include "sim/simulator.hpp"

namespace qc::sched {
namespace {

using circuit::Circuit;
using sim::CommPolicy;
using sim::DistStateVector;
using sim::StateVector;

/// Runs `c` through dist_schedule + run_dist_plan on `ranks` ranks
/// (random init, fixed seed) and compares against the serial
/// HpcSimulator; returns the max amplitude difference.
double plan_vs_serial(const Circuit& c, qubit_t n, int ranks, std::uint64_t seed,
                      const DistScheduleOptions& opts = {},
                      CommPolicy policy = CommPolicy::Specialized) {
  StateVector serial(n);
  serial.randomize_deterministic(seed);
  sim::HpcSimulator().run(serial, c);

  const auto nl = static_cast<qubit_t>(n - bits::log2_floor(static_cast<index_t>(ranks)));
  const DistPlan plan = dist_schedule(c, nl, opts);
  double diff = -1;
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(seed);
    run_dist_plan(dsv, plan, policy);
    const StateVector gathered = dsv.gather_all();
    if (comm.rank() == 0) diff = gathered.max_abs_diff(serial);
  });
  return diff;
}

struct Case {
  qubit_t n;
  int ranks;
};

class DistPlanRandomCircuit : public ::testing::TestWithParam<Case> {};

TEST_P(DistPlanRandomCircuit, MatchesSerialSimulator) {
  const auto [n, ranks] = GetParam();
  Rng rng(n * 1000 + ranks);
  const Circuit c = circuit::random_circuit(n, 60, rng);
  EXPECT_LT(plan_vs_serial(c, n, ranks, 4242), 1e-12);
}

TEST_P(DistPlanRandomCircuit, QftMatchesSerial) {
  const auto [n, ranks] = GetParam();
  EXPECT_LT(plan_vs_serial(circuit::qft(n), n, ranks, 1717), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Cases, DistPlanRandomCircuit,
                         ::testing::Values(Case{8, 1}, Case{8, 2}, Case{8, 4}, Case{9, 8},
                                           // nl = 3: a rank's whole chunk is one
                                           // sweep chunk for the local pipeline.
                                           Case{6, 8},
                                           // Oversubscribed: more ranks than any
                                           // test machine has cores.
                                           Case{10, 32}));

TEST(DistSchedule, RemapDisabledStillAgrees) {
  Rng rng(5);
  const Circuit c = circuit::random_circuit(9, 50, rng);
  DistScheduleOptions opts;
  opts.remap = false;
  EXPECT_LT(plan_vs_serial(c, 9, 4, 99, opts), 1e-12);
  EXPECT_LT(plan_vs_serial(c, 9, 4, 99, opts, CommPolicy::Exchange), 1e-12);
}

TEST(DistSchedule, ExchangePolicyExecutionAgrees) {
  Rng rng(6);
  const Circuit c = circuit::random_circuit(8, 50, rng);
  DistScheduleOptions opts;
  opts.policy = CommPolicy::Exchange;
  EXPECT_LT(plan_vs_serial(c, 8, 4, 77, opts, CommPolicy::Exchange), 1e-12);
}

/// A global-qubit-heavy workload: a long run of non-diagonal gates on
/// the two distributed qubits, plus local work.
Circuit global_heavy_circuit(qubit_t n) {
  Circuit c(n);
  for (int rep = 0; rep < 20; ++rep) {
    c.h(n - 1);
    c.rx(n - 2, 0.3 + 0.01 * rep);
    c.h(0);
    c.cnot(n - 2, n - 1);
  }
  return c;
}

TEST(DistSchedule, PlanLocalizesGlobalHeavyRun) {
  const qubit_t n = 10;
  const qubit_t nl = 8;
  const DistPlan plan = dist_schedule(global_heavy_circuit(n), nl, {});
  // The exchange pass relocates the run: nearly all gates end up in
  // rank-local segments and only a handful of chunk permutations remain.
  EXPECT_GT(plan.exchanges(), 0u);
  EXPECT_LT(plan.exchanges() + plan.globals(), 6u);
  EXPECT_GT(plan.local_gates() + plan.globals(), 0u);
  EXPECT_FALSE(plan.to_string().empty());
}

TEST(DistSchedule, RemappedSweepsCommunicateLessThanPerGateExchange) {
  // The acceptance criterion: on a global-qubit-heavy circuit the
  // amortized exchange pass must move strictly fewer bytes than the
  // qHiPSTER-like per-gate chunk exchange.
  const qubit_t n = 10;
  const int ranks = 4;
  const auto nl = static_cast<qubit_t>(n - 2);
  const Circuit c = global_heavy_circuit(n);
  const DistPlan plan = dist_schedule(c, nl, {});
  std::uint64_t bytes_plan = 1, bytes_pergate = 0;
  double diff = -1;
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector a(comm, n);
    a.randomize(11);
    run_dist_plan(a, plan, CommPolicy::Specialized);
    DistStateVector b(comm, n);
    b.randomize(11);
    b.run(c, CommPolicy::Exchange);
    const double d = a.max_abs_diff(b);  // collective: every rank calls
    if (comm.rank() == 0) {
      bytes_plan = a.bytes_communicated();
      bytes_pergate = b.bytes_communicated();
      diff = d;
    }
  });
  EXPECT_LT(diff, 1e-12);
  EXPECT_GT(bytes_plan, 0u);
  EXPECT_LT(bytes_plan, bytes_pergate);
}

TEST(DistSchedule, PermCarryAcrossSegmentsMatchesSerial) {
  // The resident-session contract: split a circuit into segments, plan
  // each with the carried permutation (no per-segment restore), run the
  // chained plans on one resident state, restore once at the end — the
  // result must match planning/running the whole circuit at once.
  const qubit_t n = 9;
  const int ranks = 4;
  const auto nl = static_cast<qubit_t>(n - 2);
  Rng rng(12);
  const Circuit whole = circuit::random_circuit(n, 60, rng);
  std::vector<Circuit> segments;
  for (std::size_t start = 0; start < whole.size(); start += 20) {
    Circuit seg(n);
    for (std::size_t i = start; i < std::min(whole.size(), start + 20); ++i)
      seg.append(whole.gates()[i]);
    segments.push_back(std::move(seg));
  }
  ASSERT_GE(segments.size(), 3u);

  StateVector serial(n);
  serial.randomize_deterministic(777);
  sim::HpcSimulator().run(serial, whole);

  std::vector<qubit_t> perm(n);
  std::iota(perm.begin(), perm.end(), qubit_t{0});
  std::vector<DistPlan> plans;
  for (const Circuit& seg : segments) plans.push_back(dist_schedule(seg, nl, {}, &perm));
  const auto rounds = restore_rounds(perm);

  double diff = -1;
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(777);
    for (const DistPlan& plan : plans) run_dist_plan(dsv, plan, CommPolicy::Specialized);
    for (const auto& swaps : rounds) dsv.apply_qubit_swaps(swaps);
    const StateVector gathered = dsv.gather_all();
    if (comm.rank() == 0) diff = gathered.max_abs_diff(serial);
  });
  EXPECT_LT(diff, 1e-12);
}

TEST(DistSchedule, PermCarrySkipsPerSegmentRestores) {
  // On a global-heavy circuit the self-contained plan must end with
  // restore exchanges; the carried-perm plan defers them to the caller.
  const qubit_t n = 10;
  const qubit_t nl = 8;
  const Circuit c = global_heavy_circuit(n);
  const DistPlan self_contained = dist_schedule(c, nl, {});
  std::vector<qubit_t> perm(n);
  std::iota(perm.begin(), perm.end(), qubit_t{0});
  const DistPlan carried = dist_schedule(c, nl, {}, &perm);
  EXPECT_LT(carried.exchanges(), self_contained.exchanges());
  // The carried plan left the state permuted; restore_rounds knows how
  // to get back, and a straight identity needs no rounds at all.
  EXPECT_FALSE(restore_rounds(perm).empty());
  std::vector<qubit_t> identity(n);
  std::iota(identity.begin(), identity.end(), qubit_t{0});
  EXPECT_TRUE(restore_rounds(identity).empty());
}

TEST(DistSchedule, RestoreRoundsValidatesPermutation) {
  EXPECT_THROW((void)restore_rounds({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW((void)restore_rounds({0, 5}), std::invalid_argument);
  // A 3-cycle resolves in a finite number of disjoint-swap rounds.
  const auto rounds = restore_rounds({1, 2, 0});
  EXPECT_FALSE(rounds.empty());
  EXPECT_LE(rounds.size(), 2u);
}

TEST(DistSchedule, SingleRankPlanIsAllLocal) {
  Rng rng(8);
  const Circuit c = circuit::random_circuit(8, 40, rng);
  const DistPlan plan = dist_schedule(c, 8, {});
  EXPECT_EQ(plan.exchanges(), 0u);
  EXPECT_EQ(plan.globals(), 0u);
  EXPECT_EQ(plan.locals(), 1u);
}

TEST(DistSchedule, RejectsBadLocalWidth) {
  Circuit c(4);
  c.h(0);
  EXPECT_THROW((void)dist_schedule(c, 0, {}), std::invalid_argument);
  EXPECT_THROW((void)dist_schedule(c, 5, {}), std::invalid_argument);
}

TEST(PerfModel, HostStagingTermAndResidentGate) {
  const models::MachineParams m = models::MachineParams::stampede();
  // One staging copies 16 bytes/amplitude; doubling n doubles both the
  // bytes and the time, and k transfers cost k times one.
  EXPECT_EQ(models::staging_bytes(20), std::uint64_t{16} << 20);
  EXPECT_EQ(models::staging_bytes(21), 2 * models::staging_bytes(20));
  const double t1 = models::t_host_staging_seconds(20, 1, m);
  EXPECT_GT(t1, 0);
  EXPECT_NEAR(models::t_host_staging_seconds(20, 4, m), 4 * t1, 1e-15);
  EXPECT_NEAR(models::t_host_staging_seconds(21, 1, m), 2 * t1, 1e-15);
  // A resident session (2 stagings per run vs 2 per op) pays off for
  // any multi-op program.
  EXPECT_FALSE(models::resident_session_profitable(1));
  EXPECT_TRUE(models::resident_session_profitable(2));
}

TEST(PerfModel, Eq6ExchangeTermAndRemapGate) {
  const models::MachineParams m = models::MachineParams::stampede();
  // 16 bytes/amplitude over the chunk: doubling the chunk doubles time.
  const double t20 = models::t_chunk_exchange_seconds(20, m);
  EXPECT_NEAR(models::t_chunk_exchange_seconds(21, m), 2 * t20, 1e-12);
  EXPECT_GT(t20, 0);
  // The exchange pass (cost ~2 chunk exchanges) needs > 2 avoided
  // per-gate exchanges to pay off.
  EXPECT_FALSE(models::global_remap_profitable(2));
  EXPECT_TRUE(models::global_remap_profitable(3));
}

}  // namespace
}  // namespace qc::sched
