// Tests for the distributed state vector: agreement with the serial
// simulator on random circuits for every policy and rank count, the
// communication-avoidance guarantees of the Specialized policy, and the
// collective reductions.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <vector>

#include "circuit/builders.hpp"
#include "cluster/fault.hpp"
#include "sim/dist_sv.hpp"
#include "sim/simulator.hpp"

namespace qc::sim {
namespace {

using circuit::Circuit;

struct Case {
  qubit_t n;
  int ranks;
  CommPolicy policy;
};

/// Runs `c` on a distributed state (random init, fixed seed) and on the
/// serial HpcSimulator; returns the max amplitude difference.
double dist_vs_serial(const Circuit& c, qubit_t n, int ranks, CommPolicy policy,
                      std::uint64_t seed) {
  StateVector serial(n);
  serial.randomize_deterministic(seed);
  HpcSimulator().run(serial, c);

  double diff = -1;
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(seed);
    dsv.run(c, policy);
    const StateVector gathered = dsv.gather_all();
    if (comm.rank() == 0) diff = gathered.max_abs_diff(serial);
  });
  return diff;
}

class DistRandomCircuit : public ::testing::TestWithParam<Case> {};

TEST_P(DistRandomCircuit, MatchesSerialSimulator) {
  const auto [n, ranks, policy] = GetParam();
  Rng rng(n * 100 + ranks);
  const Circuit c = circuit::random_circuit(n, 50, rng);
  EXPECT_LT(dist_vs_serial(c, n, ranks, policy, 555), 1e-12);
}

TEST_P(DistRandomCircuit, QftCircuitMatchesSerial) {
  const auto [n, ranks, policy] = GetParam();
  EXPECT_LT(dist_vs_serial(circuit::qft(n), n, ranks, policy, 777), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistRandomCircuit,
    ::testing::Values(Case{6, 1, CommPolicy::Specialized}, Case{6, 2, CommPolicy::Specialized},
                      Case{6, 2, CommPolicy::Exchange}, Case{8, 4, CommPolicy::Specialized},
                      Case{8, 4, CommPolicy::Exchange}, Case{9, 8, CommPolicy::Specialized},
                      Case{9, 8, CommPolicy::Exchange}, Case{10, 4, CommPolicy::Specialized},
                      // Oversubscribed: more ranks than test-machine cores.
                      Case{10, 32, CommPolicy::Specialized}));

TEST(DistStateVector, InitialStateIsZeroKet) {
  cluster::Cluster cluster(4, 1);
  cluster.run([](cluster::Comm& comm) {
    DistStateVector dsv(comm, 6);
    EXPECT_NEAR(dsv.norm_sq(), 1.0, 1e-14);
    const StateVector sv = dsv.gather_all();
    EXPECT_EQ(sv[0], complex_t{1.0});
  });
}

TEST(DistStateVector, SetBasisGlobalIndex) {
  cluster::Cluster cluster(4, 1);
  cluster.run([](cluster::Comm& comm) {
    DistStateVector dsv(comm, 4);
    dsv.set_basis(13);
    const StateVector sv = dsv.gather_all();
    EXPECT_EQ(sv[13], complex_t{1.0});
    EXPECT_NEAR(dsv.norm_sq(), 1.0, 1e-14);
  });
}

TEST(DistStateVector, RandomizeMatchesSerialDeterministic) {
  const qubit_t n = 8;
  StateVector serial(n);
  serial.randomize_deterministic(99);
  for (const int ranks : {1, 2, 4, 8}) {
    cluster::Cluster cluster(ranks, 1);
    cluster.run([&](cluster::Comm& comm) {
      DistStateVector dsv(comm, n);
      dsv.randomize(99);
      const StateVector sv = dsv.gather_all();
      EXPECT_LT(sv.max_abs_diff(serial), 1e-14) << "ranks=" << ranks;
    });
  }
}

TEST(DistStateVector, ProbabilityOfOneMatchesSerial) {
  const qubit_t n = 7;
  StateVector serial(n);
  serial.randomize_deterministic(3);
  cluster::Cluster cluster(4, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(3);
    for (qubit_t q = 0; q < n; ++q)
      EXPECT_NEAR(dsv.probability_of_one(q), serial.probability_of_one(q), 1e-12);
  });
}

TEST(DistStateVector, DiagonalGlobalGateAvoidsCommunication) {
  // Specialized policy: a CR on a global qubit must move zero bytes;
  // Exchange policy must move the chunk. This is the Fig. 4 mechanism.
  const qubit_t n = 8;
  const int ranks = 4;
  Circuit c(n);
  c.cr(0, n - 1, 0.9);  // target is the top (global) qubit
  std::uint64_t specialized_bytes = 1, exchange_bytes = 0;
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector a(comm, n);
    a.randomize(5);
    a.run(c, CommPolicy::Specialized);
    DistStateVector b(comm, n);
    b.randomize(5);
    b.run(c, CommPolicy::Exchange);
    if (comm.rank() == 0) {
      specialized_bytes = a.bytes_communicated();
      exchange_bytes = b.bytes_communicated();
    }
    // Both policies still agree on the state.
    EXPECT_LT(a.max_abs_diff(b), 1e-13);
  });
  EXPECT_EQ(specialized_bytes, 0u);
  EXPECT_GT(exchange_bytes, 0u);
}

TEST(DistStateVector, GlobalHadamardCommunicatesOnce) {
  const qubit_t n = 8;
  const int ranks = 4;
  Circuit c(n);
  c.h(n - 1);
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(6);
    dsv.run(c, CommPolicy::Specialized);
    // One exchange of the local chunk (2^{n-2} amplitudes * 16 bytes).
    EXPECT_EQ(dsv.bytes_communicated(), dim(n - 2) * sizeof(complex_t));
  });
}

TEST(DistStateVector, UnsatisfiedGlobalControlSkipsWork) {
  const qubit_t n = 6;
  const int ranks = 4;
  // Control on the top qubit; H target local. Ranks with the control
  // rank-bit unset must leave their chunk untouched.
  Circuit c(n);
  c.append(circuit::make_controlled(circuit::GateKind::H, n - 1, 0));
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(7);
    const aligned_vector<complex_t> before(dsv.local().begin(), dsv.local().end());
    dsv.run(c, CommPolicy::Specialized);
    const bool control_set = (comm.rank() >> 1) & 1;  // rank bit of qubit n-1
    double changed = 0;
    for (index_t i = 0; i < dsv.local().size(); ++i)
      changed = std::max(changed, std::abs(dsv.local()[i] - before[i]));
    if (control_set) {
      EXPECT_GT(changed, 1e-6);
    } else {
      EXPECT_EQ(changed, 0.0);
    }
    EXPECT_EQ(dsv.bytes_communicated(), 0u);
  });
}

TEST(DistStateVector, EntangleAcrossRanksGivesGhz) {
  const qubit_t n = 6;
  cluster::Cluster cluster(8, 1);
  cluster.run([](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.run(circuit::entangle(n), CommPolicy::Specialized);
    const StateVector sv = dsv.gather_all();
    EXPECT_NEAR(std::abs(sv[0]), 1.0 / std::sqrt(2.0), 1e-13);
    EXPECT_NEAR(std::abs(sv[dim(n) - 1]), 1.0 / std::sqrt(2.0), 1e-13);
  });
}

TEST(DistStateVector, RejectsNonPow2Ranks) {
  cluster::Cluster cluster(3, 1);
  EXPECT_THROW(cluster.run([](cluster::Comm& comm) { DistStateVector dsv(comm, 5); }),
               std::invalid_argument);
}

/// Applies `pairs` on both a distributed and a serial copy of the same
/// random state and returns the max amplitude difference.
double swaps_vs_serial(qubit_t n, int ranks,
                       const std::vector<std::array<qubit_t, 2>>& pairs,
                       std::uint64_t seed) {
  StateVector serial(n);
  serial.randomize_deterministic(seed);
  kernels::apply_qubit_swaps(serial.amplitudes(), n, pairs);
  double diff = -1;
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(seed);
    dsv.apply_qubit_swaps(pairs);
    const StateVector gathered = dsv.gather_all();
    if (comm.rank() == 0) diff = gathered.max_abs_diff(serial);
  });
  return diff;
}

TEST(DistQubitSwaps, LocalPairsMatchSerialAndMoveNoBytes) {
  const qubit_t n = 8;
  cluster::Cluster cluster(4, 1);
  StateVector serial(n);
  serial.randomize_deterministic(21);
  kernels::apply_qubit_swaps(serial.amplitudes(), n, {{{0, 3}, {1, 5}}});
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(21);
    dsv.apply_qubit_swaps({{{0, 3}, {1, 5}}});
    EXPECT_EQ(dsv.bytes_communicated(), 0u);
    const StateVector gathered = dsv.gather_all();
    if (comm.rank() == 0) {
      EXPECT_LT(gathered.max_abs_diff(serial), 1e-14);
    }
  });
}

TEST(DistQubitSwaps, GlobalLocalPairsMatchSerial) {
  // One crossing pair, two crossing pairs, and a crossing+local mix.
  EXPECT_LT(swaps_vs_serial(8, 4, {{{7, 2}}}, 31), 1e-14);
  EXPECT_LT(swaps_vs_serial(8, 4, {{{7, 2}, {6, 0}}}, 32), 1e-14);
  EXPECT_LT(swaps_vs_serial(9, 8, {{{8, 1}, {6, 4}, {0, 2}}}, 33), 1e-14);
}

TEST(DistQubitSwaps, GlobalGlobalPairMatchesSerial) {
  EXPECT_LT(swaps_vs_serial(8, 4, {{{6, 7}}}, 34), 1e-14);
  // Mixed: global-global plus crossing plus local, one collective pass.
  EXPECT_LT(swaps_vs_serial(9, 8, {{{7, 8}, {6, 2}, {0, 1}}}, 35), 1e-14);
}

TEST(DistQubitSwaps, ExchangeMovesAtMostOneChunkPerPass) {
  // k crossing pairs split the chunk into 2^k sub-blocks and keep one
  // home: (2^k - 1) / 2^k of the chunk crosses the wire — never more
  // than one full chunk regardless of how many qubits relocate at once.
  const qubit_t n = 8;
  cluster::Cluster cluster(4, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(36);
    dsv.apply_qubit_swaps({{{7, 2}, {6, 0}}});
    const std::uint64_t chunk_bytes = dim(n - 2) * sizeof(complex_t);
    EXPECT_EQ(dsv.bytes_communicated(), chunk_bytes * 3 / 4);
    EXPECT_LT(dsv.bytes_communicated(), chunk_bytes);
  });
}

TEST(DistQubitSwaps, RejectsOverlappingPairs) {
  cluster::Cluster cluster(2, 1);
  EXPECT_THROW(cluster.run([](cluster::Comm& comm) {
    DistStateVector dsv(comm, 6);
    dsv.apply_qubit_swaps({{{0, 1}, {1, 2}}});
  }),
               std::invalid_argument);
}

TEST(DistMeasurement, RegisterDistributionMatchesSerial) {
  const qubit_t n = 8;
  StateVector serial(n);
  serial.randomize_deterministic(41);
  // Register straddling the local/global boundary (ranks = 4 -> nl = 6).
  const std::vector<double> ref = serial.register_distribution(4, 4);
  cluster::Cluster cluster(4, 1);
  cluster.run([&](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.randomize(41);
    const std::vector<double> dist = dsv.register_distribution(4, 4);
    ASSERT_EQ(dist.size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); ++v) EXPECT_NEAR(dist[v], ref[v], 1e-12);
  });
}

TEST(DistMeasurement, SampleAgreesOnAllRanksAndRespectsSupport) {
  const qubit_t n = 6;
  cluster::Cluster cluster(4, 1);
  // |psi> with support on exactly two basis states, one per side of the
  // rank boundary; every rank must report the same supported outcome.
  cluster.run([](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.set_basis(3);  // support only on rank 0's chunk
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      Rng rng(seed);
      EXPECT_EQ(dsv.sample(rng), index_t{3});
    }
  });
}

TEST(DistMeasurement, SampleMatchesSerialDrawForSameSeed) {
  const qubit_t n = 7;
  StateVector serial(n);
  serial.randomize_deterministic(77);
  for (const int ranks : {1, 2, 4, 8}) {
    cluster::Cluster cluster(ranks, 1);
    cluster.run([&](cluster::Comm& comm) {
      DistStateVector dsv(comm, n);
      dsv.randomize(77);
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng serial_rng(seed);
        Rng dist_rng(seed);
        EXPECT_EQ(dsv.sample(dist_rng), serial.sample(serial_rng))
            << "ranks=" << ranks << " seed=" << seed;
      }
    });
  }
}

TEST(DistMeasurement, AbortedSampleLeavesRankRngStreamsInSync) {
  // Pins the stream-sync invariant documented in sample(): the shared
  // uniform draw is consumed *before* any communication, so every rank
  // that entered sample() has advanced its identically-seeded stream by
  // exactly one draw when the collective aborts — never zero (the
  // pre-fix failure mode: rank 0 dies in the allgather before a
  // draw-after-communication, silently falling behind its peers) and
  // never more than one. The rule kills rank 0 in its first recv of the
  // rank-total allgather, after its own draw and eager send.
  constexpr qubit_t n = 6;
  constexpr int kRanks = 2;
  cluster::FaultInjector inj = cluster::FaultInjector::parse("abort@cluster.recv#0/0");
  const cluster::ScopedFaultInjector scoped(&inj);
  cluster::ClusterSession session(kRanks, 1);
  std::vector<Rng> rngs;
  for (int r = 0; r < kRanks; ++r) rngs.emplace_back(99);
  // Whether each rank reached the sample() call. Rank 1 may legitimately
  // miss it — rank 0's abort can land before rank 1 dequeues the job —
  // but a rank that did enter must have consumed exactly one draw: the
  // draw is sample()'s first statement, ahead of any abortable call.
  std::array<std::atomic<bool>, kRanks> entered{};
  session.submit([&rngs, &entered](cluster::Comm& comm) {
    DistStateVector dsv(comm, n);
    dsv.set_basis(3);
    const auto r = static_cast<std::size_t>(comm.rank());
    entered[r] = true;
    (void)dsv.sample(rngs[r]);
  });
  EXPECT_THROW(session.sync(), cluster::InjectedFault);
  EXPECT_EQ(inj.fired(), 1u);
  EXPECT_TRUE(entered[0]);  // the aborting rank itself always got there
  std::vector<double> next(kRanks, -1.0);
  session.submit([&rngs, &next](cluster::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    next[r] = rngs[r].uniform();
  });
  session.sync();
  Rng fresh(99);
  const double draw1 = fresh.uniform();
  const double draw2 = fresh.uniform();
  // Rank 0 aborted mid-collective yet advanced exactly one draw — the
  // regression pin: drawing after the allgather would leave it at 0.
  EXPECT_EQ(next[0], draw2);
  // Rank 1: in sync with rank 0 when it entered, untouched when the
  // abort beat it to the job — either way its position is exact.
  EXPECT_EQ(next[1], entered[1] ? draw2 : draw1);
}

TEST(DistMeasurement, CollapseMatchesSerialOnLocalAndGlobalQubit) {
  const qubit_t n = 8;
  const int ranks = 4;
  for (const qubit_t q : {qubit_t{2}, qubit_t{7}}) {  // local and global
    StateVector serial(n);
    serial.randomize_deterministic(55);
    serial.collapse(q, 1);
    cluster::Cluster cluster(ranks, 1);
    cluster.run([&](cluster::Comm& comm) {
      DistStateVector dsv(comm, n);
      dsv.randomize(55);
      dsv.collapse(q, 1);
      EXPECT_NEAR(dsv.norm_sq(), 1.0, 1e-12);
      const StateVector gathered = dsv.gather_all();
      if (comm.rank() == 0) {
        EXPECT_LT(gathered.max_abs_diff(serial), 1e-13);
      }
    });
  }
}

TEST(DistMeasurement, CollapseZeroProbabilityThrows) {
  cluster::Cluster cluster(2, 1);
  EXPECT_THROW(cluster.run([](cluster::Comm& comm) {
    DistStateVector dsv(comm, 5);  // |00000>
    dsv.collapse(4, 1);
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace qc::sim
