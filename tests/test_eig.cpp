// Tests for the from-scratch eigensolver pipeline (Hessenberg reduction,
// Schur decomposition, eigenvalues/eigenvectors) — the zgeev stand-in of
// the paper's §3.3 eigendecomposition shortcut.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "linalg/eig.hpp"
#include "linalg/gemm.hpp"

namespace qc::linalg {
namespace {

double reconstruction_error(const Matrix& a, const Matrix& q, const Matrix& t) {
  // || A - Q T Q^H ||_max
  return gemm(gemm(q, t), q.dagger()).max_abs_diff(a);
}

bool is_upper_hessenberg(const Matrix& h, double tol = 1e-12) {
  for (std::size_t i = 0; i < h.rows(); ++i)
    for (std::size_t j = 0; j + 1 < i; ++j)
      if (std::abs(h(i, j)) > tol) return false;
  return true;
}

bool is_upper_triangular(const Matrix& t, double tol = 1e-10) {
  for (std::size_t i = 0; i < t.rows(); ++i)
    for (std::size_t j = 0; j < i; ++j)
      if (std::abs(t(i, j)) > tol) return false;
  return true;
}

TEST(Hessenberg, StructureAndSimilarity) {
  Rng rng(1);
  for (const std::size_t n : {1u, 2u, 3u, 8u, 24u}) {
    const Matrix a = Matrix::random(n, n, rng);
    Matrix q;
    const Matrix h = hessenberg(a, &q);
    EXPECT_TRUE(is_upper_hessenberg(h)) << "n=" << n;
    EXPECT_LT(q.unitarity_error(), 1e-12) << "n=" << n;
    EXPECT_LT(reconstruction_error(a, q, h), 1e-11 * std::max<double>(1.0, n)) << "n=" << n;
  }
}

TEST(Hessenberg, HermitianBecomesTridiagonalLike) {
  Rng rng(2);
  const Matrix a = Matrix::random_hermitian(12, rng);
  const Matrix h = hessenberg(a);
  // Similarity preserves Hermiticity, so H is Hermitian Hessenberg =
  // tridiagonal.
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j + 1 < i; ++j) EXPECT_LT(std::abs(h(i, j)), 1e-12);
  EXPECT_LT(h.hermiticity_error(), 1e-11);
}

TEST(Schur, TriangularFactorAndReconstruction) {
  Rng rng(3);
  for (const std::size_t n : {2u, 5u, 16u, 40u}) {
    const Matrix a = Matrix::random(n, n, rng);
    const SchurResult s = schur(a);
    EXPECT_TRUE(is_upper_triangular(s.t)) << "n=" << n;
    EXPECT_LT(s.q.unitarity_error(), 1e-10) << "n=" << n;
    EXPECT_LT(reconstruction_error(a, s.q, s.t), 1e-9 * static_cast<double>(n)) << "n=" << n;
  }
}

TEST(Eig, DiagonalMatrixIsExact) {
  const std::vector<complex_t> d{1.0, kI, -2.0, complex_t{0.5, -0.5}};
  const EigResult r = eig(Matrix::diagonal(d));
  std::vector<double> got, want;
  for (const auto& v : r.values) got.push_back(std::abs(v));
  for (const auto& v : d) want.push_back(std::abs(v));
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-12);
}

TEST(Eig, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  EigResult r = eig(a);
  std::vector<double> vals{r.values[0].real(), r.values[1].real()};
  std::sort(vals.begin(), vals.end());
  EXPECT_NEAR(vals[0], 1.0, 1e-12);
  EXPECT_NEAR(vals[1], 3.0, 1e-12);
  EXPECT_NEAR(r.values[0].imag(), 0.0, 1e-12);
  EXPECT_LT(eig_residual(a, r), 1e-12);
}

class EigRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigRandom, ResidualSmallOnGaussianMatrix) {
  const std::size_t n = GetParam();
  Rng rng(n * 7 + 1);
  const Matrix a = Matrix::random(n, n, rng);
  const EigResult r = eig(a);
  EXPECT_LT(eig_residual(a, r), 1e-8 * a.frobenius_norm()) << "n=" << n;
}

TEST_P(EigRandom, UnitaryEigenvaluesOnUnitCircle) {
  const std::size_t n = GetParam();
  Rng rng(n * 13 + 5);
  const Matrix u = Matrix::random_unitary(n, rng);
  const EigResult r = eig(u);
  for (const auto& v : r.values) EXPECT_NEAR(std::abs(v), 1.0, 1e-9);
  EXPECT_LT(eig_residual(u, r), 1e-8 * std::sqrt(static_cast<double>(n)));
}

TEST_P(EigRandom, HermitianEigenvaluesReal) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 3);
  const Matrix h = Matrix::random_hermitian(n, rng);
  const EigResult r = eig(h);
  for (const auto& v : r.values) EXPECT_NEAR(v.imag(), 0.0, 1e-8 * h.frobenius_norm());
  EXPECT_LT(eig_residual(h, r), 1e-8 * h.frobenius_norm());
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigRandom, ::testing::Values(2, 3, 4, 8, 16, 32, 64));

TEST(Eig, RepeatedEigenvaluesHandled) {
  // Identity has a single eigenvalue of multiplicity n; the guarded
  // back-substitution must still return unit-norm eigenvectors.
  const EigResult r = eig(Matrix::identity(8));
  for (const auto& v : r.values) EXPECT_NEAR(std::abs(v - complex_t{1.0}), 0.0, 1e-12);
  EXPECT_LT(eig_residual(Matrix::identity(8), r), 1e-10);
}

TEST(Eig, PauliZSpectrum) {
  const Matrix z{{1.0, 0.0}, {0.0, -1.0}};
  const EigResult r = eig(z);
  std::vector<double> vals{r.values[0].real(), r.values[1].real()};
  std::sort(vals.begin(), vals.end());
  EXPECT_NEAR(vals[0], -1.0, 1e-14);
  EXPECT_NEAR(vals[1], 1.0, 1e-14);
}

TEST(Eig, TraceEqualsSumOfEigenvalues) {
  Rng rng(31);
  const std::size_t n = 20;
  const Matrix a = Matrix::random(n, n, rng);
  complex_t trace{};
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
  const EigResult r = eig(a, /*compute_vectors=*/false);
  complex_t sum{};
  for (const auto& v : r.values) sum += v;
  EXPECT_NEAR(std::abs(sum - trace), 0.0, 1e-9 * a.frobenius_norm());
}

TEST(Eig, WithoutVectorsSkipsVectorMatrix) {
  Rng rng(33);
  const EigResult r = eig(Matrix::random(10, 10, rng), /*compute_vectors=*/false);
  EXPECT_EQ(r.vectors.rows(), 0u);
  EXPECT_EQ(r.values.size(), 10u);
}

TEST(Eig, RejectsNonSquare) {
  Rng rng(34);
  const Matrix a = Matrix::random(3, 4, rng);
  EXPECT_THROW(eig(a), std::invalid_argument);
  EXPECT_THROW(hessenberg(a), std::invalid_argument);
  EXPECT_THROW(schur(a), std::invalid_argument);
}

}  // namespace
}  // namespace qc::linalg
