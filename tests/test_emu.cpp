// Tests for the emulator core: every classical-function shortcut must
// equal the corresponding reversible-circuit simulation on arbitrary
// superpositions, and the QFT-as-FFT must equal the gate-level QFT
// circuit — the paper's central "emulation returns the same result"
// contract (§3).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/builders.hpp"
#include "emu/emulator.hpp"
#include "revcirc/arith.hpp"
#include "sim/simulator.hpp"

namespace qc::emu {
namespace {

using circuit::Circuit;
using revcirc::DivLayout;
using revcirc::MulLayout;
using sim::HpcSimulator;
using sim::StateVector;

StateVector random_state(qubit_t n, std::uint64_t seed) {
  StateVector sv(n);
  Rng rng(seed);
  sv.randomize(rng);
  return sv;
}

void copy_state(const StateVector& from, StateVector& to) {
  std::copy(from.amplitudes().begin(), from.amplitudes().end(), to.amplitudes().begin());
}

TEST(Emulator, PermutationMovesAmplitudes) {
  StateVector sv(3);
  sv.set_basis(2);
  Emulator emu(sv);
  // Cyclic shift i -> i+1 mod 8.
  emu.apply_permutation([](index_t i) { return (i + 1) & 7; });
  EXPECT_EQ(sv[3], complex_t{1.0});
  EXPECT_EQ(sv[2], complex_t{});
}

TEST(Emulator, PermutationPreservesNorm) {
  StateVector sv = random_state(10, 1);
  Emulator emu(sv);
  emu.apply_permutation([](index_t i) { return i ^ 0x155; });
  EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-12);
}

TEST(Emulator, PartialMapDetectsCollision) {
  StateVector sv(2);
  sv[0] = sv[1] = 1.0 / std::sqrt(2.0);
  Emulator emu(sv);
  EXPECT_THROW(emu.apply_partial_map([](index_t) { return index_t{3}; }), std::logic_error);
}

TEST(Emulator, RegisterChecksThrow) {
  StateVector sv(6);
  Emulator emu(sv);
  EXPECT_THROW(emu.multiply({0, 2}, {2, 2}, {3, 2}), std::invalid_argument);  // overlap
  EXPECT_THROW(emu.multiply({0, 2}, {2, 2}, {4, 3}), std::invalid_argument);  // width
  EXPECT_THROW(emu.add({0, 4}, {4, 4}), std::invalid_argument);               // range
  EXPECT_THROW(emu.divide({0, 2}, {1, 2}, {4, 2}), std::invalid_argument);    // overlap
  EXPECT_THROW(emu.divide({0, 2}, {2, 2}, {5, 2}), std::invalid_argument);    // range
  EXPECT_THROW(emu.apply_function({0, 3}, {2, 3}, [](index_t v) { return v; }),
               std::invalid_argument);  // overlap
  EXPECT_THROW(emu.qft({3, 4}), std::invalid_argument);  // offset+width > n
}

TEST(Emulator, CheckRegsValidatesBoundsAndOverlap) {
  // The shared helper behind every register op (and the engine::Program
  // builders): nonempty, in bounds, pairwise disjoint.
  check_regs({{0, 3}, {3, 3}}, 6);                                     // ok
  check_regs({{5, 1}}, 6);                                             // ok
  EXPECT_THROW(check_regs({{0, 0}}, 6), std::invalid_argument);        // empty
  EXPECT_THROW(check_regs({{4, 3}}, 6), std::invalid_argument);        // out of range
  EXPECT_THROW(check_regs({{6, 1}}, 6), std::invalid_argument);        // off the end
  EXPECT_THROW(check_regs({{0, 3}, {2, 3}}, 6), std::invalid_argument);  // overlap
  EXPECT_THROW(check_regs({{0, 2}, {2, 2}, {1, 1}}, 6), std::invalid_argument);
}

class MulEquivalence : public ::testing::TestWithParam<qubit_t> {};

TEST_P(MulEquivalence, EmulatedMultiplyEqualsSimulatedCircuit) {
  // The paper's Fig. 1 correctness contract: the emulator's direct
  // permutation equals the gate-level Toffoli-network simulation,
  // including on superpositions. The circuit uses one extra carry
  // ancilla; registers a, b, c live at the same offsets in both.
  const qubit_t m = GetParam();
  const MulLayout layout = MulLayout::make(m);
  const qubit_t total = layout.total_qubits();

  // Random state on the 3m data qubits, ancilla |0>.
  StateVector data = random_state(3 * m, 10 + m);
  StateVector circuit_sv(total);
  std::copy(data.amplitudes().begin(), data.amplitudes().end(),
            circuit_sv.amplitudes().begin());

  HpcSimulator().run(circuit_sv, revcirc::multiplier_circuit(m));

  StateVector emu_sv(total);
  std::copy(data.amplitudes().begin(), data.amplitudes().end(), emu_sv.amplitudes().begin());
  Emulator emu(emu_sv);
  emu.multiply({0, m}, {m, m}, {2 * m, m});

  EXPECT_LT(emu_sv.max_abs_diff(circuit_sv), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Widths, MulEquivalence, ::testing::Values(1, 2, 3, 4));

class DivEquivalence : public ::testing::TestWithParam<qubit_t> {};

TEST_P(DivEquivalence, EmulatedDivideEqualsSimulatedCircuit) {
  // Fig. 2 contract. The divider circuit acts on 4m+4 qubits with its
  // own layout (y window, padded divisor, quotient, flags); the
  // emulator's divide acts on the (a, b, q) registers at the matching
  // offsets. Superpose a and b, leave everything else |0>.
  const qubit_t m = GetParam();
  const DivLayout l = DivLayout::make(m);
  const qubit_t total = l.total_qubits();

  // Superposition over a (qubits [0,m)) and b (qubits [2m+1, 3m+1)).
  Circuit prep(total);
  for (qubit_t q = 0; q < m; ++q) prep.h(q);
  for (qubit_t q = 0; q < m; ++q) prep.h(2 * m + 1 + q);
  StateVector circuit_sv(total);
  HpcSimulator().run(circuit_sv, prep);
  StateVector emu_sv(total);
  copy_state(circuit_sv, emu_sv);

  HpcSimulator().run(circuit_sv, revcirc::divider_circuit(m));

  Emulator emu(emu_sv);
  emu.divide({0, m}, {2 * m + 1, m}, {3 * m + 1, m});

  EXPECT_LT(emu_sv.max_abs_diff(circuit_sv), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Widths, DivEquivalence, ::testing::Values(1, 2, 3));

TEST(Emulator, MultiplyAccumulatesIntoNonZeroC) {
  // (a, b, c) -> (a, b, c + ab) on a basis state with c != 0.
  const qubit_t m = 4;
  StateVector sv(3 * m);
  const index_t a = 7, b = 9, c0 = 3;
  sv.set_basis(a | (b << m) | (c0 << (2 * m)));
  Emulator emu(sv);
  emu.multiply({0, m}, {m, m}, {2 * m, m});
  const index_t expect = a | (b << m) | (((c0 + a * b) & 15) << (2 * m));
  EXPECT_NEAR(std::abs(sv[expect]), 1.0, 1e-13);
}

TEST(Emulator, DivideBasisStates) {
  const qubit_t m = 5;
  StateVector sv(3 * m);
  Emulator emu(sv);
  const index_t a = 27, b = 4;
  sv.set_basis(a | (b << m));
  emu.divide({0, m}, {m, m}, {2 * m, m});
  const index_t expect = (27 % 4) | (index_t{4} << m) | ((27 / 4) << (2 * m));
  EXPECT_NEAR(std::abs(sv[expect]), 1.0, 1e-13);
}

TEST(Emulator, DivideByZeroConvention) {
  const qubit_t m = 3;
  StateVector sv(3 * m);
  Emulator emu(sv);
  sv.set_basis(5);  // a=5, b=0, c=0
  emu.divide({0, m}, {m, m}, {2 * m, m});
  const index_t expect = 5 | (index_t{7} << (2 * m));  // r=a, q=2^m-1
  EXPECT_NEAR(std::abs(sv[expect]), 1.0, 1e-13);
}

TEST(Emulator, AddMatchesAdderCircuit) {
  const qubit_t w = 4;
  const qubit_t total = 2 * w + 1;  // + carry ancilla
  StateVector data = random_state(2 * w, 30);
  StateVector circuit_sv(total), emu_sv(total);
  std::copy(data.amplitudes().begin(), data.amplitudes().end(),
            circuit_sv.amplitudes().begin());
  std::copy(data.amplitudes().begin(), data.amplitudes().end(), emu_sv.amplitudes().begin());

  Circuit add_circuit(total);
  revcirc::cuccaro_add(add_circuit, revcirc::make_reg(0, w), revcirc::make_reg(w, w), 2 * w);
  HpcSimulator().run(circuit_sv, add_circuit);

  Emulator emu(emu_sv);
  emu.add({0, w}, {w, w});
  EXPECT_LT(emu_sv.max_abs_diff(circuit_sv), 1e-12);
}

TEST(Emulator, AddConstantWraps) {
  StateVector sv(4);
  sv.set_basis(0b1110);
  Emulator emu(sv);
  emu.add_constant({0, 4}, 5);
  EXPECT_NEAR(std::abs(sv[(14 + 5) & 15]), 1.0, 1e-14);
}

TEST(Emulator, ApplyFunctionIsBijectiveForAnyF) {
  // out += f(in) is reversible even when f is many-to-one.
  StateVector sv = random_state(8, 44);
  const double before = sv.norm_sq();
  Emulator emu(sv);
  emu.apply_function({0, 4}, {4, 4}, [](index_t v) { return (v * v + 3) % 7; });
  EXPECT_NEAR(sv.norm_sq(), before, 1e-12);
  // And invertible: subtracting the same values restores the state.
  StateVector ref = random_state(8, 44);
  emu.apply_function({0, 4}, {4, 4}, [](index_t v) {
    return (16 - (v * v + 3) % 7) & 15;  // additive inverse mod 16
  });
  EXPECT_LT(sv.max_abs_diff(ref), 1e-12);
}

TEST(Emulator, MultiplyModPermutesModularDomain) {
  const qubit_t w = 4;
  StateVector sv(w);
  Emulator emu(sv);
  sv.set_basis(7);
  emu.multiply_mod({0, w}, 7, 15);  // 7*7 mod 15 = 4 (gcd(7,15)=1)
  EXPECT_NEAR(std::abs(sv[4]), 1.0, 1e-14);
  sv.set_basis(15);  // outside domain: identity
  emu.multiply_mod({0, w}, 7, 15);
  EXPECT_NEAR(std::abs(sv[15]), 1.0, 1e-14);
  EXPECT_THROW(emu.multiply_mod({0, w}, 5, 15), std::invalid_argument);  // gcd != 1
}

TEST(Emulator, PhaseOracleMatchesControlledZNetwork) {
  // Oracle marking |x0>: equals X-conjugated multi-controlled Z.
  const qubit_t n = 5;
  const index_t x0 = 19;
  StateVector circuit_sv = random_state(n, 200);
  StateVector emu_sv(n);
  copy_state(circuit_sv, emu_sv);

  Circuit c(n);
  for (qubit_t q = 0; q < n; ++q)
    if (!bits::test(x0, q)) c.x(q);
  {
    circuit::Gate cz = circuit::make_gate(circuit::GateKind::Z, n - 1);
    for (qubit_t q = 0; q + 1 < n; ++q) cz.controls.push_back(q);
    c.append(cz);
  }
  for (qubit_t q = 0; q < n; ++q)
    if (!bits::test(x0, q)) c.x(q);
  HpcSimulator().run(circuit_sv, c);

  Emulator(emu_sv).apply_phase_oracle([x0](index_t i) { return i == x0; });
  EXPECT_LT(emu_sv.max_abs_diff(circuit_sv), 1e-13);
}

TEST(Emulator, PhaseFunctionMatchesDiagonalGates) {
  // phase(i) = theta * bit_2(i) is exactly R(theta) on qubit 2.
  const qubit_t n = 4;
  const double theta = 0.83;
  StateVector circuit_sv = random_state(n, 201);
  StateVector emu_sv(n);
  copy_state(circuit_sv, emu_sv);
  Circuit c(n);
  c.phase(2, theta);
  HpcSimulator().run(circuit_sv, c);
  Emulator(emu_sv).apply_phase_function(
      [theta](index_t i) { return bits::test(i, 2) ? theta : 0.0; });
  EXPECT_LT(emu_sv.max_abs_diff(circuit_sv), 1e-13);
}

TEST(Emulator, PhaseFunctionPreservesNorm) {
  StateVector sv = random_state(8, 202);
  Emulator(sv).apply_phase_function(
      [](index_t i) { return 0.01 * static_cast<double>(i % 97); });
  EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-12);
}

class QftEquivalence : public ::testing::TestWithParam<qubit_t> {};

TEST_P(QftEquivalence, EmulatedQftEqualsCircuit) {
  // §3.2's contract: FFT on the amplitudes == gate-level QFT circuit.
  const qubit_t n = GetParam();
  StateVector circuit_sv = random_state(n, 50 + n);
  StateVector emu_sv(n);
  copy_state(circuit_sv, emu_sv);

  HpcSimulator().run(circuit_sv, circuit::qft(n));
  Emulator(emu_sv).qft();
  EXPECT_LT(emu_sv.max_abs_diff(circuit_sv), 1e-11);
}

TEST_P(QftEquivalence, EmulatedInverseQftEqualsCircuit) {
  const qubit_t n = GetParam();
  StateVector circuit_sv = random_state(n, 60 + n);
  StateVector emu_sv(n);
  copy_state(circuit_sv, emu_sv);
  HpcSimulator().run(circuit_sv, circuit::inverse_qft(n));
  Emulator(emu_sv).inverse_qft();
  EXPECT_LT(emu_sv.max_abs_diff(circuit_sv), 1e-11);
}

TEST_P(QftEquivalence, QftRoundTripIsIdentity) {
  const qubit_t n = GetParam();
  StateVector sv = random_state(n, 70 + n);
  StateVector ref(n);
  copy_state(sv, ref);
  Emulator emu(sv);
  emu.qft();
  emu.inverse_qft();
  EXPECT_LT(sv.max_abs_diff(ref), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Qubits, QftEquivalence, ::testing::Values(1, 2, 3, 5, 8, 11, 14));

TEST(Emulator, SubRegisterQftMatchesMappedCircuit) {
  // QFT on qubits [2, 6) of 8: compare against the circuit mapped onto
  // those qubits.
  const qubit_t n = 8;
  const RegRef reg{2, 4};
  StateVector circuit_sv = random_state(n, 90);
  StateVector emu_sv(n);
  copy_state(circuit_sv, emu_sv);

  Circuit mapped(n);
  std::vector<qubit_t> mapping(reg.width);
  for (qubit_t i = 0; i < reg.width; ++i) mapping[i] = reg.offset + i;
  mapped.compose_mapped(circuit::qft(reg.width), mapping);
  HpcSimulator().run(circuit_sv, mapped);

  Emulator(emu_sv).qft(reg);
  EXPECT_LT(emu_sv.max_abs_diff(circuit_sv), 1e-11);
}

TEST(Emulator, SubRegisterQftAtBothEnds) {
  for (const RegRef reg : {RegRef{0, 3}, RegRef{5, 3}}) {
    const qubit_t n = 8;
    StateVector circuit_sv = random_state(n, 91 + reg.offset);
    StateVector emu_sv(n);
    copy_state(circuit_sv, emu_sv);
    Circuit mapped(n);
    std::vector<qubit_t> mapping(reg.width);
    for (qubit_t i = 0; i < reg.width; ++i) mapping[i] = reg.offset + i;
    mapped.compose_mapped(circuit::qft(reg.width), mapping);
    HpcSimulator().run(circuit_sv, mapped);
    Emulator emu(emu_sv);
    emu.qft(reg);
    EXPECT_LT(emu_sv.max_abs_diff(circuit_sv), 1e-11) << "offset=" << reg.offset;
  }
}

TEST(Emulator, QftOnPeriodicStateDetectsPeriod) {
  // A state supported on multiples of 4 in a 2^6 space transforms to one
  // supported on multiples of 16 (= N / period) — the period-finding
  // behaviour Shor relies on.
  const qubit_t n = 6;
  StateVector sv(n);
  auto a = sv.amplitudes();
  std::fill(a.begin(), a.end(), complex_t{});
  for (index_t i = 0; i < 64; i += 4) a[i] = 0.25;
  Emulator(sv).qft();
  for (index_t k = 0; k < 64; ++k) {
    if (k % 16 == 0) {
      EXPECT_NEAR(std::abs(sv[k]), 0.5, 1e-12) << k;
    } else {
      EXPECT_NEAR(std::abs(sv[k]), 0.0, 1e-12) << k;
    }
  }
}

}  // namespace
}  // namespace qc::emu
