// Tests for the engine front door: Program builder validation, the
// backend registry, and — the paper's contract — agreement to 1e-12
// between the "auto" backend (emulation shortcuts) and the fully
// lowered gate-level runs on QFT, Shor-style modular arithmetic, and
// Grover programs.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "emu/observables.hpp"
#include "engine/engine.hpp"
#include "models/perf_model.hpp"
#include "obs/report.hpp"

namespace qc::engine {
namespace {

using circuit::Circuit;

/// Deterministic non-trivial prep segment: per-qubit rotations plus an
/// entangling CNOT/CR ladder, so agreement tests see generic complex
/// amplitudes instead of a basis state.
Circuit prep_circuit(qubit_t n) {
  Circuit c(n);
  for (qubit_t q = 0; q < n; ++q) {
    c.h(q);
    c.rz(q, 0.17 * static_cast<double>(q + 1));
  }
  for (qubit_t q = 0; q + 1 < n; ++q) c.cnot(q, q + 1);
  for (qubit_t q = 0; q + 2 < n; ++q) c.cr(q, q + 2, 0.31 * static_cast<double>(q + 1));
  return c;
}

/// Runs `p` on `backend` and on "auto", expecting final-state agreement.
void expect_backends_agree(const Program& p, const std::string& backend,
                           std::uint64_t seed = 3) {
  RunOptions auto_opts;
  auto_opts.backend = "auto";
  auto_opts.seed = seed;
  RunOptions gate_opts = auto_opts;
  gate_opts.backend = backend;

  const Engine engine;
  const Result a = engine.run(p, auto_opts);
  const Result g = engine.run(p, gate_opts);
  EXPECT_EQ(a.state.qubits(), p.qubits());
  EXPECT_EQ(g.state.qubits(), p.qubits());
  EXPECT_LT(a.state.max_abs_diff(g.state), 1e-12)
      << "auto vs " << backend << " diverged on:\n"
      << p.to_string();
  EXPECT_EQ(a.measurements, g.measurements);
  ASSERT_EQ(a.expectations.size(), g.expectations.size());
  for (std::size_t i = 0; i < a.expectations.size(); ++i)
    EXPECT_NEAR(a.expectations[i], g.expectations[i], 1e-12);
}

// --- Program builder ---------------------------------------------------

TEST(Program, GateRunsCoalesceIntoOneSegment) {
  Program p(3);
  p.h(0).cnot(0, 1).x(2);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.ops()[0].kind, OpKind::GateSegment);
  EXPECT_EQ(p.ops()[0].gates.size(), 3u);
  EXPECT_FALSE(p.needs_lowering());

  p.qft({0, 2}).h(1).h(2);  // high-level op closes the segment
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.ops()[1].kind, OpKind::Qft);
  EXPECT_EQ(p.ops()[2].gates.size(), 2u);
  EXPECT_TRUE(p.needs_lowering());
}

TEST(Program, BuildersValidateRegisters) {
  Program p(6);
  EXPECT_THROW(p.add({0, 3}, {2, 3}), std::invalid_argument);       // overlap
  EXPECT_THROW(p.add({0, 3}, {3, 2}), std::invalid_argument);       // width mismatch
  EXPECT_THROW(p.qft({4, 3}), std::invalid_argument);               // out of range
  EXPECT_THROW(p.measure({0, 0}), std::invalid_argument);           // empty
  EXPECT_THROW(p.multiply({0, 2}, {2, 2}, {3, 2}), std::invalid_argument);
  EXPECT_THROW(p.multiply_mod({0, 3}, 3, 9), std::invalid_argument);   // gcd != 1
  EXPECT_THROW(p.multiply_mod({0, 2}, 3, 100), std::invalid_argument); // modulus
  EXPECT_THROW(p.expectation_z(index_t{1} << 6), std::invalid_argument);
  EXPECT_TRUE(p.empty());  // nothing appended by the failed builders
}

TEST(Program, MeasureAndExpectationAreNotLowered) {
  Program p(4);
  p.h(0).measure({0, 2}).expectation_z(0b11);
  EXPECT_FALSE(p.needs_lowering());
  const Program low = lower(p);
  EXPECT_EQ(low.qubits(), 4u);
  ASSERT_EQ(low.size(), 3u);
  EXPECT_EQ(low.ops()[1].kind, OpKind::Measure);
  EXPECT_EQ(low.ops()[2].kind, OpKind::ExpectationZ);
}

// --- backend registry --------------------------------------------------

TEST(Registry, BuiltinsPresentAndSorted) {
  const std::vector<std::string> names = backend_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected :
       {"auto", "cached", "dist", "fused", "hpc", "liquid-like", "qhipster-like"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing builtin " << expected;
}

TEST(Registry, UnknownBackendErrorEnumeratesNames) {
  try {
    (void)make_backend("does-not-exist");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("does-not-exist"), std::string::npos);
    for (const char* name : {"auto", "fused", "hpc", "liquid-like", "qhipster-like"})
      EXPECT_NE(msg.find(name), std::string::npos) << "error should list " << name;
  }
}

TEST(Registry, MakeSimulatorDelegatesAndEnumerates) {
  EXPECT_EQ(sim::make_simulator("hpc")->name(), "hpc");
  EXPECT_EQ(sim::make_simulator("fused")->name(), "fused");
  try {
    (void)sim::make_simulator("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* name : {"auto", "fused", "hpc", "liquid-like", "qhipster-like"})
      EXPECT_NE(msg.find(name), std::string::npos) << "error should list " << name;
  }
  // "auto" is registered but emulation-only, and "dist" needs its rank
  // options: neither is a plain Simulator.
  EXPECT_THROW((void)sim::make_simulator("auto"), std::invalid_argument);
  EXPECT_THROW((void)sim::make_simulator("dist"), std::invalid_argument);
}

TEST(Registry, RoundTripCustomBackend) {
  class EchoBackend final : public Backend {
   public:
    [[nodiscard]] std::string name() const override { return "test-echo"; }
    void run_gates(sim::StateVector& sv, const circuit::Circuit& c) override {
      sim::HpcSimulator().run(sv, c);
    }
  };
  register_backend("test-echo", [](const RunOptions&) -> std::unique_ptr<Backend> {
    return std::make_unique<EchoBackend>();
  });
  const std::vector<std::string> names = backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-echo"), names.end());
  EXPECT_THROW(
      register_backend("test-echo",
                       [](const RunOptions&) -> std::unique_ptr<Backend> { return nullptr; }),
      std::invalid_argument);
  // Not a gate-level sim::Simulator (no sim_factory registered).
  EXPECT_THROW((void)sim::make_simulator("test-echo"), std::invalid_argument);

  Program p(3);
  p.gates(prep_circuit(3));
  RunOptions opts;
  opts.backend = "test-echo";
  const Result r = Engine().run(p, opts);
  EXPECT_EQ(r.backend, "test-echo");
  EXPECT_NEAR(r.state.norm_sq(), 1.0, 1e-12);
}

TEST(Registry, GateLevelBackendRejectsHighLevelOps) {
  Program p(4);
  p.qft();
  const std::unique_ptr<Backend> hpc = make_backend("hpc");
  sim::StateVector sv(4);
  EXPECT_THROW(hpc->run_highlevel(sv, p.ops()[0]), std::logic_error);
}

// --- auto vs lowered gate-level agreement (acceptance programs) --------

TEST(Agreement, Qft12) {
  const qubit_t n = 12;
  Program p(n);
  p.gates(prep_circuit(n)).qft().inverse_qft({0, 6}).expectation_z(0b101);
  EXPECT_EQ(lowered_ancillas(p), 0u);
  expect_backends_agree(p, "hpc");
  expect_backends_agree(p, "fused");
}

TEST(Agreement, ShorStyleModularMultiplication) {
  // Order finding in miniature for N = 15, a = 7: superpose a 3-bit
  // exponent, evaluate 7^e mod 15 into the value register (support
  // stays < N, the circuit-side precondition), rotate by an extra
  // emulatable modular multiplication, inverse-QFT the exponent,
  // measure it.
  Program p(7);
  p.h(0).h(1).h(2)
      .apply_function({0, 3}, {3, 4},
                      [](index_t e) {
                        index_t r = 1;
                        for (index_t j = 0; j < e; ++j) r = r * 7 % 15;
                        return r;
                      })
      .multiply_mod({3, 4}, 2, 15)
      .inverse_qft({0, 3})
      .measure({0, 3});
  EXPECT_EQ(lowered_ancillas(p), 4u + 3u);  // Beauregard accumulator + flags
  expect_backends_agree(p, "hpc");
  expect_backends_agree(p, "fused");
}

TEST(Agreement, GroverWithPhaseOracle) {
  const qubit_t n = 10;
  const index_t marked = 321;
  Circuit diffusion(n);
  for (qubit_t q = 0; q < n; ++q) diffusion.h(q);
  for (qubit_t q = 0; q < n; ++q) diffusion.x(q);
  {
    circuit::Gate mcz = circuit::make_gate(circuit::GateKind::Z, n - 1);
    for (qubit_t q = 0; q + 1 < n; ++q) mcz.controls.push_back(q);
    diffusion.append(mcz);
  }
  for (qubit_t q = 0; q < n; ++q) diffusion.x(q);
  for (qubit_t q = 0; q < n; ++q) diffusion.h(q);

  Program p(n);
  for (qubit_t q = 0; q < n; ++q) p.h(q);
  for (int it = 0; it < 6; ++it) {
    p.phase_oracle([marked](index_t i) { return i == marked; });
    p.gates(diffusion);
  }
  expect_backends_agree(p, "hpc");
  expect_backends_agree(p, "fused");

  // Sanity: six iterations amplify the marked item well above uniform.
  RunOptions opts;
  const Result r = Engine().run(p, opts);
  EXPECT_GT(std::norm(r.state[marked]), 100.0 / static_cast<double>(dim(n)));
}

TEST(Agreement, ArithmeticAddMultiplyDivide) {
  // m = 2-bit registers a, b, c: superpose a and b, then
  // b += a; c += a*b; then divide on a fresh basis-state program.
  Program p(6);
  p.h(0).h(1).h(2).h(3).add({0, 2}, {2, 2}).multiply({0, 2}, {2, 2}, {4, 2});
  EXPECT_EQ(lowered_ancillas(p), 1u);
  expect_backends_agree(p, "hpc");

  // Division: (a=7, b=3, c=0) -> (a mod b, b, a div b); superposed b.
  Program q(9);
  q.x(0).x(1).x(2).h(3).h(4).divide({0, 3}, {3, 3}, {6, 3});
  EXPECT_EQ(lowered_ancillas(q), 3u + 4u);
  expect_backends_agree(q, "hpc");
}

TEST(Agreement, PhaseFunctionSmallRegister) {
  Program p(6);
  p.gates(prep_circuit(6)).phase_function([](index_t i) {
    return 0.2 * static_cast<double>(i % 7);
  });
  expect_backends_agree(p, "hpc");
}

TEST(Agreement, CliffordTLoweringOfArithmetic) {
  Program p(6);
  p.h(0).h(1).h(2).h(3).add({0, 2}, {2, 2}).multiply({0, 2}, {2, 2}, {4, 2});
  RunOptions auto_opts;
  RunOptions ct_opts;
  ct_opts.backend = "hpc";
  ct_opts.lower.to_clifford_t = true;
  const Engine engine;
  const Result a = engine.run(p, auto_opts);
  const Result g = engine.run(p, ct_opts);
  EXPECT_LT(a.state.max_abs_diff(g.state), 1e-12);
}

// --- engine-handled nodes and bookkeeping ------------------------------

TEST(Engine, MeasureCollapsesAndRecords) {
  Program p(4);
  p.x(0).x(2).measure({0, 4});
  const Result r = Engine().run(p);
  ASSERT_EQ(r.measurements.size(), 1u);
  EXPECT_EQ(r.measurements[0], index_t{0b0101});
  EXPECT_NEAR(std::norm(r.state[0b0101]), 1.0, 1e-12);  // collapsed
}

TEST(Engine, MeasureWithoutCollapseLeavesStateUntouched) {
  Program p(3);
  for (qubit_t q = 0; q < 3; ++q) p.h(q);
  RunOptions opts;
  opts.collapse_measurements = false;
  Program p2 = p;
  p2.measure({0, 3});
  const Result r = Engine().run(p2, opts);
  ASSERT_EQ(r.measurements.size(), 1u);
  for (index_t i = 0; i < dim(3); ++i)
    EXPECT_NEAR(std::norm(r.state[i]), 1.0 / 8.0, 1e-12);
}

TEST(Engine, ExpectationZMatchesObservables) {
  Program p(5);
  p.gates(prep_circuit(5)).expectation_z(0b10101);
  const Result r = Engine().run(p);
  ASSERT_EQ(r.expectations.size(), 1u);
  EXPECT_NEAR(r.expectations[0], emu::expectation_z_string(r.state, 0b10101), 1e-12);
}

TEST(Engine, TraceCoversEveryOpWithLabels) {
  Program p(8);
  p.gates(prep_circuit(8)).qft().measure({0, 4}).expectation_z(1);
  const Result r = Engine().run(p);
  ASSERT_EQ(r.trace.size(), p.size());
  EXPECT_EQ(r.trace[1].op, "qft(@0:8)");
  for (const OpTrace& t : r.trace) {
    EXPECT_FALSE(t.op.empty());
    EXPECT_GE(t.seconds, 0.0);
  }
  EXPECT_GE(r.total_seconds, 0.0);
  EXPECT_EQ(r.run_qubits, 8u);
}

TEST(Engine, InitialBasisSeedsTheProgramRegister) {
  Program p(4);
  p.add({0, 2}, {2, 2});
  RunOptions opts;
  opts.initial_basis = 0b0110;  // a = 2, b = 1
  for (const char* backend : {"auto", "hpc"}) {
    opts.backend = backend;
    const Result r = Engine().run(p, opts);
    EXPECT_NEAR(std::norm(r.state[0b1110]), 1.0, 1e-12) << backend;  // b = 3
  }
  opts.initial_basis = dim(4);
  EXPECT_THROW((void)Engine().run(p, opts), std::invalid_argument);
}

TEST(Engine, LoweredRunReportsWidenedRegisterButReturnsProgramState) {
  Program p(4);
  p.h(0).h(1).multiply({0, 1}, {1, 1}, {2, 1});
  RunOptions opts;
  opts.backend = "hpc";
  const Result r = Engine().run(p, opts);
  EXPECT_EQ(r.run_qubits, 5u);  // + carry ancilla
  EXPECT_EQ(r.state.qubits(), 4u);
  EXPECT_NEAR(r.state.norm_sq(), 1.0, 1e-12);
}

// --- the "dist" backend ------------------------------------------------

/// Gate-segment + measurement + expectation program exercising every
/// engine-routed op on the distributed path.
Program dist_test_program(qubit_t n) {
  Program p(n);
  p.gates(prep_circuit(n))
      .expectation_z(bits::low_mask(n) & 0b1011)
      .measure({0, 2})
      .h(n - 1)
      .cr(0, n - 1, 0.41)
      .measure({static_cast<qubit_t>(n - 2), 2});
  return p;
}

TEST(DistBackend, MatchesHpcAcrossRankCounts) {
  const qubit_t n = 8;
  const Program p = dist_test_program(n);
  RunOptions hpc_opts;
  hpc_opts.backend = "hpc";
  hpc_opts.seed = 9;
  const Result ref = Engine().run(p, hpc_opts);
  for (const int ranks : {1, 2, 4, 8}) {
    RunOptions opts;
    opts.backend = "dist";
    opts.seed = 9;
    opts.dist_ranks = ranks;
    const Result r = Engine().run(p, opts);
    EXPECT_LT(r.state.max_abs_diff(ref.state), 1e-12) << "ranks=" << ranks;
    EXPECT_EQ(r.measurements, ref.measurements) << "ranks=" << ranks;
    ASSERT_EQ(r.expectations.size(), ref.expectations.size());
    for (std::size_t i = 0; i < r.expectations.size(); ++i)
      EXPECT_NEAR(r.expectations[i], ref.expectations[i], 1e-12) << "ranks=" << ranks;
  }
}

TEST(DistBackend, TinyRegisterClampsRanksAndStillAgrees) {
  // n = 3 with 8 or 16 requested ranks: clamped to 4 so every rank
  // keeps one local qubit — a two-amplitude chunk, which the local
  // pipeline runs as a single sweep chunk.
  const qubit_t n = 3;
  Program p(n);
  p.gates(prep_circuit(n)).measure({0, n});
  RunOptions hpc_opts;
  hpc_opts.backend = "hpc";
  const Result ref = Engine().run(p, hpc_opts);
  for (const int ranks : {8, 16}) {
    RunOptions opts;
    opts.backend = "dist";
    opts.dist_ranks = ranks;
    const Result r = Engine().run(p, opts);
    EXPECT_LT(r.state.max_abs_diff(ref.state), 1e-12) << "ranks=" << ranks;
    EXPECT_EQ(r.measurements, ref.measurements);
  }
}

TEST(DistBackend, ExchangePolicyAndNoRemapAgree) {
  const qubit_t n = 8;
  const Program p = dist_test_program(n);
  RunOptions hpc_opts;
  hpc_opts.backend = "hpc";
  const Result ref = Engine().run(p, hpc_opts);
  RunOptions opts;
  opts.backend = "dist";
  opts.dist_ranks = 4;
  opts.dist_policy = sim::CommPolicy::Exchange;
  opts.dist_remap = false;
  const Result r = Engine().run(p, opts);
  EXPECT_LT(r.state.max_abs_diff(ref.state), 1e-12);
  EXPECT_EQ(r.measurements, ref.measurements);
}

TEST(DistBackend, LoweredHighLevelProgramRunsDistributed) {
  Program p(6);
  p.h(0).h(1).h(2).h(3).add({0, 2}, {2, 2}).multiply({0, 2}, {2, 2}, {4, 2}).measure({4, 2});
  expect_backends_agree(p, "dist");
}

/// A mixed program that forces op boundaries between every gate
/// segment: gates + Measure + ExpectationZ interleaved, which before
/// persistent sessions paid a scatter + gather per engine-routed op.
Program mixed_program(qubit_t n) {
  Program p(n);
  Circuit seg2(n), seg3(n);
  seg2.h(n - 1).cnot(0, n - 1).rz(n - 2, 0.7);
  seg3.rx(1, 0.3).cr(1, n - 1, 0.9).h(0);
  p.gates(prep_circuit(n))
      .expectation_z(0b101)
      .gates(seg2)
      .measure({0, 2})
      .gates(seg3)
      .expectation_z(bits::low_mask(n))
      .measure({static_cast<qubit_t>(n - 3), 3});
  return p;
}

TEST(DistBackend, ResidentMixedProgramAgreesWithHpc) {
  const qubit_t n = 9;
  const Program p = mixed_program(n);
  RunOptions hpc_opts;
  hpc_opts.backend = "hpc";
  hpc_opts.seed = 23;
  const Result ref = Engine().run(p, hpc_opts);
  for (const int ranks : {2, 4, 8}) {
    RunOptions opts;
    opts.backend = "dist";
    opts.seed = 23;
    opts.dist_ranks = ranks;
    const Result r = Engine().run(p, opts);
    EXPECT_LT(r.state.max_abs_diff(ref.state), 1e-12) << "ranks=" << ranks;
    EXPECT_EQ(r.measurements, ref.measurements) << "ranks=" << ranks;
    ASSERT_EQ(r.expectations.size(), ref.expectations.size());
    for (std::size_t i = 0; i < r.expectations.size(); ++i)
      EXPECT_NEAR(r.expectations[i], ref.expectations[i], 1e-12) << "ranks=" << ranks;
  }
}

TEST(DistBackend, ResidentMeasurementStreamBitIdenticalToCached) {
  // Seed determinism across state layouts: the resident distributed
  // run must record the exact same outcome indices as the serial
  // cache-blocked backend for one seed.
  const qubit_t n = 9;
  const Program p = mixed_program(n);
  RunOptions cached_opts;
  cached_opts.backend = "cached";
  cached_opts.seed = 77;
  const Result ref = Engine().run(p, cached_opts);
  RunOptions opts;
  opts.backend = "dist";
  opts.seed = 77;
  opts.dist_ranks = 4;
  const Result r = Engine().run(p, opts);
  EXPECT_EQ(r.measurements, ref.measurements);
}

TEST(DistBackend, PerOpBaselineStillAgrees) {
  // dist_resident=false reproduces the pre-session per-op
  // scatter/gather behaviour; it must stay correct (it is the bench
  // baseline the resident session is measured against).
  const qubit_t n = 8;
  const Program p = mixed_program(n);
  RunOptions hpc_opts;
  hpc_opts.backend = "hpc";
  hpc_opts.seed = 5;
  const Result ref = Engine().run(p, hpc_opts);
  RunOptions opts;
  opts.backend = "dist";
  opts.seed = 5;
  opts.dist_ranks = 4;
  opts.dist_resident = false;
  const Result r = Engine().run(p, opts);
  EXPECT_LT(r.state.max_abs_diff(ref.state), 1e-12);
  EXPECT_EQ(r.measurements, ref.measurements);
}

TEST(DistBackend, ResidentRunStagesHostStateExactlyTwice) {
  // The acceptance criterion: a multi-op 20-qubit program on the dist
  // backend performs exactly ONE scatter (on the first op that needs
  // the distributed state) and at most ONE gather (the trailing
  // "[finalize]" row), asserted through the engine trace's byte
  // counters. The per-op baseline pays both on every op.
  const qubit_t n = 20;
  Program p(n);
  Circuit seg1(n), seg2(n), seg3(n);
  seg1.h(0).h(n - 1).cnot(0, n - 1);
  seg2.rz(n - 1, 0.25).h(1).cr(1, n - 2, 0.5);
  seg3.h(n - 2).cnot(1, 2);
  p.gates(seg1).expectation_z(0b11).gates(seg2).measure({0, 2}).gates(seg3);
  const std::uint64_t staging = models::staging_bytes(n);

  RunOptions opts;
  opts.backend = "dist";
  opts.dist_ranks = 4;
  const Result r = Engine().run(p, opts);
  // One scatter on the first op, nothing in between, one gather at
  // finalize — and the whole-run totals agree with the trace columns.
  ASSERT_EQ(r.trace.size(), p.size() + 1);  // + "[finalize]"
  EXPECT_EQ(r.trace.front().host_bytes, staging);
  for (std::size_t i = 1; i < r.trace.size() - 1; ++i)
    EXPECT_EQ(r.trace[i].host_bytes, 0u) << "op " << r.trace[i].op;
  EXPECT_EQ(r.trace.back().op, "[finalize]");
  EXPECT_EQ(r.trace.back().host_bytes, staging);
  EXPECT_EQ(r.host_bytes, 2 * staging);

  RunOptions baseline = opts;
  baseline.dist_resident = false;
  const Result b = Engine().run(p, baseline);
  // The pre-session cost: every mutating op (3 gate segments + the
  // collapsing measure) pays a scatter AND a gather; the read-only
  // ExpectationZ pays only its scatter.
  EXPECT_EQ(b.host_bytes, staging * (2 * 4 + 1));
  EXPECT_LT(b.state.max_abs_diff(r.state), 1e-12);
}

TEST(DistBackend, RejectsNonPow2Ranks) {
  Program p(4);
  p.h(0);
  RunOptions opts;
  opts.backend = "dist";
  opts.dist_ranks = 3;
  EXPECT_THROW((void)Engine().run(p, opts), std::invalid_argument);
}

// --- measurement-stream determinism and non-collapse ------------------

TEST(Engine, MeasurementStreamSeedDeterministicAcrossAllBackends) {
  const qubit_t n = 6;
  Program p(n);
  p.gates(prep_circuit(n)).measure({0, 3}).cnot(0, 5).measure({3, 3}).measure({0, n});
  std::vector<index_t> ref;
  for (const char* backend :
       {"auto", "cached", "dist", "fused", "hpc", "liquid-like", "qhipster-like"}) {
    RunOptions opts;
    opts.backend = backend;
    opts.seed = 31;
    const Result r = Engine().run(p, opts);
    ASSERT_EQ(r.measurements.size(), 3u) << backend;
    if (ref.empty()) {
      ref = r.measurements;
    } else {
      EXPECT_EQ(r.measurements, ref) << backend;
    }
  }
}

TEST(Engine, NoCollapseLeavesStateBitIdentical) {
  // With collapse_measurements off, a Measure op must be a pure read:
  // the final state equals the measure-free run bit for bit. Both
  // programs use identical gate-segment boundaries (.gates() forces a
  // fresh segment) so fusing backends build identical plans.
  const qubit_t n = 7;
  Circuit hseg(n);
  hseg.h(0);
  Program with_measure(n);
  with_measure.gates(prep_circuit(n)).measure({0, 3}).gates(hseg).measure({2, 4});
  Program without(n);
  without.gates(prep_circuit(n)).gates(hseg);
  for (const char* backend :
       {"auto", "cached", "dist", "fused", "hpc", "liquid-like", "qhipster-like"}) {
    RunOptions opts;
    opts.backend = backend;
    opts.collapse_measurements = false;
    const Result a = Engine().run(with_measure, opts);
    const Result b = Engine().run(without, opts);
    ASSERT_EQ(a.state.qubits(), b.state.qubits()) << backend;
    for (index_t i = 0; i < a.state.size(); ++i) {
      EXPECT_EQ(a.state[i].real(), b.state[i].real()) << backend << " i=" << i;
      EXPECT_EQ(a.state[i].imag(), b.state[i].imag()) << backend << " i=" << i;
    }
  }
}

// --- structured trace acceptance (PR 6) -------------------------------

TEST(Engine, TracedDistRunValidatesModelAndAccountsEveryByte) {
  // A 16-qubit, 4-rank run with tracing on. The model-validation
  // report must contain predicted-vs-measured rows for both the sweep
  // family (models::t_state_pass_seconds) and the chunk-exchange family
  // (Eq. 6, models::t_chunk_exchange_seconds) — and the bytes those
  // rows attribute must sum to Result.net_bytes *exactly*: every site
  // that bumps the communication counter is also a pred_s span.
  const qubit_t n = 16;
  Program p(n);
  p.gates(prep_circuit(n)).qft().expectation_z(0b11).measure({0, 4});
  RunOptions opts;
  opts.backend = "dist";
  opts.dist_ranks = 4;
  opts.collapse_measurements = false;
  opts.trace = true;
  const Result res = Engine().run(p, opts);
  ASSERT_NE(res.trace_data, nullptr);
  EXPECT_GT(res.net_bytes, 0u);

  const std::vector<obs::ModelRow> rows = obs::model_report(*res.trace_data);
  bool saw_sweep = false, saw_exchange = false;
  std::uint64_t row_bytes = 0;
  for (const obs::ModelRow& row : rows) {
    EXPECT_GT(row.predicted_s, 0.0) << row.name;
    EXPECT_GT(row.count, 0u) << row.name;
    if (row.name == "sched.sweep") saw_sweep = true;
    if (row.name.rfind("dist.exchange", 0) == 0 && row.bytes > 0) saw_exchange = true;
    row_bytes += row.bytes;
  }
  EXPECT_TRUE(saw_sweep) << "no sweep-memory rows in the model report";
  EXPECT_TRUE(saw_exchange) << "no chunk-exchange rows in the model report";
  EXPECT_EQ(row_bytes, res.net_bytes);
}

}  // namespace
}  // namespace qc::engine
