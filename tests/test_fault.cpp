// Failure-domain tests: the deterministic fault injector (spec grammar,
// one-shot semantics, seeded schedules), deadline-aware collectives
// (recv/barrier timeouts, the sync watchdog), checkpoint/restart inside
// the dist backend (retry-from-checkpoint bit-identity against "hpc"),
// and the engine's dist->cached degradation ladder.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/fault.hpp"
#include "engine/engine.hpp"
#include "models/perf_model.hpp"

namespace qc {
namespace {

using cluster::ClusterAborted;
using cluster::ClusterSession;
using cluster::Comm;
using cluster::FaultAction;
using cluster::FaultInjector;
using cluster::InjectedFault;
using cluster::ScopedFaultInjector;
using cluster::TimeoutError;

// --- spec grammar ------------------------------------------------------

TEST(FaultSpec, ParsesEveryField) {
  const FaultInjector inj =
      FaultInjector::parse("abort@cluster.barrier#2;drop@cluster.send#1/0;"
                           "delay@cluster.job#0/1:250;allocfail@dist.alloc");
  ASSERT_EQ(inj.rules().size(), 4u);
  EXPECT_EQ(inj.rules()[0].action, FaultAction::Abort);
  EXPECT_EQ(inj.rules()[0].site, "cluster.barrier");
  EXPECT_EQ(inj.rules()[0].hit, 2u);
  EXPECT_EQ(inj.rules()[0].rank, -1);
  EXPECT_EQ(inj.rules()[1].action, FaultAction::Drop);
  EXPECT_EQ(inj.rules()[1].rank, 0);
  EXPECT_EQ(inj.rules()[2].action, FaultAction::Delay);
  EXPECT_NEAR(inj.rules()[2].delay_s, 0.25, 1e-12);
  EXPECT_EQ(inj.rules()[3].action, FaultAction::AllocFail);
  EXPECT_EQ(inj.rules()[3].hit, 0u);
}

TEST(FaultSpec, RoundTripsThroughToString) {
  const std::string spec =
      "abort@cluster.barrier#2;drop@cluster.send#1/0;delay@cluster.job#0/1:250";
  EXPECT_EQ(FaultInjector::parse(FaultInjector::parse(spec).to_string()).to_string(),
            FaultInjector::parse(spec).to_string());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultInjector::parse(""), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("abort"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("explode@cluster.job"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("abort@"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("abort@cluster.job#x"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("seeded:count"), std::invalid_argument);
}

TEST(FaultSpec, SeededSchedulesAreDeterministic) {
  EXPECT_EQ(FaultInjector::seeded(7, 5).to_string(), FaultInjector::seeded(7, 5).to_string());
  EXPECT_NE(FaultInjector::seeded(7, 5).to_string(), FaultInjector::seeded(8, 5).to_string());
  // The seeded: spec form resolves to the same schedule.
  EXPECT_EQ(FaultInjector::parse("seeded:seed=7,count=5").to_string(),
            FaultInjector::seeded(7, 5, 4, 0.2).to_string());
}

// --- visit semantics ---------------------------------------------------

TEST(FaultInjectorVisit, FiresAtTheHitThVisitOfTheMatchingRank) {
  FaultInjector inj = FaultInjector::parse("abort@cluster.job#2/1");
  double d = 0;
  EXPECT_FALSE(inj.visit("cluster.job", 0, &d).has_value());  // rank 0, visit 0
  EXPECT_FALSE(inj.visit("cluster.job", 1, &d).has_value());  // rank 1, visit 0
  EXPECT_FALSE(inj.visit("cluster.job", 1, &d).has_value());  // rank 1, visit 1
  EXPECT_FALSE(inj.visit("cluster.barrier", 1, &d).has_value());
  const auto fired = inj.visit("cluster.job", 1, &d);  // rank 1, visit 2
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, FaultAction::Abort);
  EXPECT_EQ(inj.fired(), 1u);
}

TEST(FaultInjectorVisit, DisruptiveRulesAreOneShot) {
  // rank -1 matches any rank, but the rule is spent by the first rank
  // that reaches the hit — the second rank's own hit-th visit passes.
  FaultInjector inj = FaultInjector::parse("abort@cluster.job#0");
  double d = 0;
  EXPECT_TRUE(inj.visit("cluster.job", 0, &d).has_value());
  EXPECT_FALSE(inj.visit("cluster.job", 1, &d).has_value());
  inj.reset();
  EXPECT_TRUE(inj.visit("cluster.job", 1, &d).has_value());
}

TEST(FaultInjectorVisit, DelayRulesFireOncePerRank) {
  FaultInjector inj = FaultInjector::parse("delay@cluster.job#0:50");
  double d = 0;
  EXPECT_TRUE(inj.visit("cluster.job", 0, &d).has_value());
  EXPECT_NEAR(d, 0.05, 1e-12);
  EXPECT_TRUE(inj.visit("cluster.job", 1, &d).has_value());
  EXPECT_FALSE(inj.visit("cluster.job", 0, &d).has_value());  // visit 1: no rule
  EXPECT_EQ(inj.fired(), 2u);
}

TEST(FaultPoint, NoOpWithoutAnInstalledInjector) {
  ASSERT_EQ(cluster::current_injector(), nullptr);
  EXPECT_FALSE(cluster::fault_point("cluster.job", 0));
}

TEST(FaultPoint, ScopedInstallRestoresPrevious) {
  FaultInjector outer = FaultInjector::parse("abort@a#0");
  FaultInjector inner = FaultInjector::parse("abort@b#0");
  {
    const ScopedFaultInjector s1(&outer);
    EXPECT_EQ(cluster::current_injector(), &outer);
    {
      const ScopedFaultInjector s2(&inner);
      EXPECT_EQ(cluster::current_injector(), &inner);
    }
    EXPECT_EQ(cluster::current_injector(), &outer);
  }
  EXPECT_EQ(cluster::current_injector(), nullptr);
}

TEST(FaultTaxonomy, RetryabilityFlags) {
  EXPECT_TRUE(InjectedFault("x").retryable());
  EXPECT_TRUE(TimeoutError("x").retryable());
  EXPECT_TRUE(cluster::AllocFailure("x").retryable());
  EXPECT_FALSE(ClusterAborted().retryable());
  EXPECT_TRUE(cluster::retryable_fault(std::make_exception_ptr(TimeoutError("x"))));
  EXPECT_FALSE(cluster::retryable_fault(std::make_exception_ptr(std::runtime_error("x"))));
  EXPECT_FALSE(cluster::retryable_fault(nullptr));
}

TEST(FaultSites, KnownSiteListIsStable) {
  const auto& sites = cluster::known_fault_sites();
  EXPECT_GE(sites.size(), 10u);
  for (const char* s : {"cluster.send", "cluster.barrier", "cluster.job", "dist.alloc",
                        "dist.exchange", "dist.scatter", "dist.gather"})
    EXPECT_NE(std::find(sites.begin(), sites.end(), s), sites.end()) << s;
}

// --- injected faults against a live session ----------------------------

TEST(FaultSession, InjectedBarrierAbortSurfacesAndSessionRecovers) {
  FaultInjector inj = FaultInjector::parse("abort@cluster.barrier#0");
  const ScopedFaultInjector scoped(&inj);
  ClusterSession session(4, 1);
  session.submit([](Comm& comm) { comm.barrier(); });
  EXPECT_THROW(session.sync(), InjectedFault);
  EXPECT_EQ(inj.fired(), 1u);
  // Recovered: the next job runs a full collective cleanly.
  std::atomic<int> sum{0};
  session.submit([&sum](Comm& comm) { sum += comm.allreduce_sum(comm.rank()); });
  session.sync();
  EXPECT_EQ(sum.load(), 4 * 6);  // each rank adds 0+1+2+3
}

TEST(FaultSession, RecvDeadlineRaisesTimeoutErrorAndSessionRecovers) {
  ClusterSession session(2, 1);
  session.set_timeout(0.05);
  EXPECT_NEAR(session.timeout(), 0.05, 1e-12);
  session.submit([](Comm& comm) {
    if (comm.rank() == 0) return;  // never sends
    int v = 0;
    comm.recv<int>(0, std::span<int>(&v, 1));  // lint:allow(p2p-unmatched) -- starved on purpose: deadline must fire
  });
  EXPECT_THROW(session.sync(), TimeoutError);
  session.set_timeout(0);
  std::atomic<int> sum{0};
  session.submit([&sum](Comm& comm) { sum += comm.allreduce_sum(1); });
  session.sync();
  EXPECT_EQ(sum.load(), 4);
}

TEST(FaultSession, DroppedSendTimesOutTheReceiver) {
  FaultInjector inj = FaultInjector::parse("drop@cluster.send#0/0");
  const ScopedFaultInjector scoped(&inj);
  ClusterSession session(2, 1);
  session.set_timeout(0.05);
  session.submit([](Comm& comm) {
    int v = comm.rank();
    if (comm.rank() == 0) {
      comm.send<int>(1, std::span<const int>(&v, 1));  // dropped
    } else {
      comm.recv<int>(0, std::span<int>(&v, 1));  // waits forever -> timeout
    }
  });
  EXPECT_THROW(session.sync(), TimeoutError);
  EXPECT_EQ(inj.fired(), 1u);
}

TEST(FaultSession, DelayedJobInsideDeadlineStillCompletes) {
  FaultInjector inj = FaultInjector::parse("delay@cluster.job#0/1:50");
  const ScopedFaultInjector scoped(&inj);
  ClusterSession session(2, 1);
  session.set_timeout(5.0);
  std::atomic<int> ran{0};
  session.submit([&ran](Comm& comm) {
    comm.barrier();
    ++ran;
  });
  session.sync();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(inj.fired(), 1u);
}

// --- engine-level recovery and degradation -----------------------------

engine::Program failure_program(qubit_t n) {
  engine::Program p(n);
  for (qubit_t q = 0; q < n; ++q) {
    p.h(q);
    p.rz(q, 0.17 * static_cast<double>(q + 1));
  }
  p.cnot(0, static_cast<qubit_t>(n - 1));
  p.qft();
  p.measure({0, 2});
  p.inverse_qft();
  p.expectation_z(index_t{0b11});
  p.measure({static_cast<qubit_t>(n - 2), 2});
  return p;
}

/// Runs the failure program on "dist" with the given fault spec and
/// expects bit-identical agreement with the fault-free "hpc" run.
void expect_recovers_identically(const std::string& fault_spec, bool expect_degraded) {
  const engine::Program p = failure_program(10);
  engine::RunOptions ref_opts;
  ref_opts.backend = "hpc";
  ref_opts.seed = 11;
  const engine::Engine eng;
  const engine::Result ref = eng.run(p, ref_opts);

  engine::RunOptions opts = ref_opts;
  opts.backend = "dist";
  opts.dist_ranks = 4;
  opts.dist_timeout_s = 2.0;
  opts.fault_spec = fault_spec;
  const engine::Result r = eng.run(p, opts);
  EXPECT_EQ(r.degraded, expect_degraded) << fault_spec;
  EXPECT_LT(r.state.max_abs_diff(ref.state), 1e-12) << fault_spec;
  EXPECT_EQ(r.measurements, ref.measurements) << fault_spec;
  ASSERT_EQ(r.expectations.size(), ref.expectations.size());
  for (std::size_t i = 0; i < r.expectations.size(); ++i)
    EXPECT_NEAR(r.expectations[i], ref.expectations[i], 1e-12) << fault_spec;
}

TEST(FaultRecovery, SegmentAbortRetriesFromCheckpointBitIdentically) {
  expect_recovers_identically("abort@cluster.job#1", /*expect_degraded=*/false);
}

TEST(FaultRecovery, ExchangeAbortRetriesBitIdentically) {
  expect_recovers_identically("abort@dist.exchange#0", /*expect_degraded=*/false);
}

TEST(FaultRecovery, AllocFailureRetriesScatter) {
  expect_recovers_identically("allocfail@dist.alloc#0/1", /*expect_degraded=*/false);
}

TEST(FaultRecovery, GatherAbortReplaysAndFlushes) {
  expect_recovers_identically("abort@dist.gather#0", /*expect_degraded=*/false);
}

TEST(FaultRecovery, CascadeExhaustsRetriesAndDegradesBitIdentically) {
  expect_recovers_identically(
      "abort@cluster.job#1;abort@cluster.job#2;abort@cluster.job#3;abort@cluster.job#4",
      /*expect_degraded=*/true);
}

TEST(FaultRecovery, DegradedResultRecordsTheLadder) {
  const engine::Program p = failure_program(8);
  engine::RunOptions opts;
  opts.backend = "dist";
  opts.dist_ranks = 4;
  opts.seed = 5;
  opts.fault_spec =
      "abort@cluster.job#1;abort@cluster.job#2;abort@cluster.job#3;abort@cluster.job#4";
  const engine::Result r = engine::Engine{}.run(p, opts);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.backend, "cached");
  EXPECT_EQ(r.degraded_from, "dist");
  EXPECT_FALSE(r.degrade_reason.empty());
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.front().op, "[degrade]");
}

TEST(FaultRecovery, DegradeOffPropagatesTheTypedError) {
  const engine::Program p = failure_program(8);
  engine::RunOptions opts;
  opts.backend = "dist";
  opts.dist_ranks = 4;
  opts.fault_spec =
      "abort@cluster.job#1;abort@cluster.job#2;abort@cluster.job#3;abort@cluster.job#4";
  opts.degrade = false;
  EXPECT_THROW(engine::Engine{}.run(p, opts), cluster::ClusterError);
}

TEST(FaultRecovery, CheckCorruptionDoesNotDegrade) {
  // Only the cluster taxonomy rides the ladder: a bad initial_basis
  // (std::invalid_argument) propagates even with degrade on.
  const engine::Program p = failure_program(8);
  engine::RunOptions opts;
  opts.backend = "dist";
  opts.initial_basis = dim(10);  // outside the 8-qubit register
  EXPECT_THROW(engine::Engine{}.run(p, opts), std::invalid_argument);
}

TEST(FaultRecovery, FaultCountersAppearInTheTrace) {
  const engine::Program p = failure_program(8);
  engine::RunOptions opts;
  opts.backend = "dist";
  opts.dist_ranks = 4;
  opts.seed = 5;
  opts.dist_checkpoint_interval = 1;
  opts.fault_spec = "abort@dist.exchange#1";
  opts.trace = true;
  const engine::Result r = engine::Engine{}.run(p, opts);
  ASSERT_NE(r.trace_data, nullptr);
  const auto& c = r.trace_data->counters;
  EXPECT_GE(c.at("fault.injected"), 1.0);
  EXPECT_GE(c.at("fault.retries"), 1.0);
  EXPECT_GE(c.at("checkpoint.count"), 1.0);
  std::size_t ckpt_spans = 0, restore_spans = 0;
  for (const auto& s : r.trace_data->spans) {
    if (s.name == "dist.checkpoint") ++ckpt_spans;
    if (s.name == "dist.restore") ++restore_spans;
  }
  EXPECT_EQ(static_cast<double>(ckpt_spans), c.at("checkpoint.count"));
  EXPECT_EQ(static_cast<double>(restore_spans), c.at("checkpoint.restores"));
}

TEST(FaultRecovery, ForcedCheckpointIntervalMatchesFaultFreeRun) {
  // Checkpointing must be behavior-neutral: interval 1 (checkpoint
  // every segment) yields the same results as checkpoints off.
  const engine::Program p = failure_program(10);
  engine::RunOptions off;
  off.backend = "dist";
  off.dist_ranks = 4;
  off.seed = 23;
  off.dist_checkpoint_interval = -1;
  engine::RunOptions on = off;
  on.dist_checkpoint_interval = 1;
  const engine::Engine eng;
  const engine::Result a = eng.run(p, off);
  const engine::Result b = eng.run(p, on);
  EXPECT_LT(a.state.max_abs_diff(b.state), 1e-15);
  EXPECT_EQ(a.measurements, b.measurements);
}

TEST(CheckpointPolicy, DuePricesReplayAgainstCheckpointCost) {
  const models::MachineParams m;
  EXPECT_GT(models::t_checkpoint_seconds(20, m), 0.0);
  EXPECT_FALSE(models::checkpoint_due(0.0, 20, m));
  // A replay far above the checkpoint cost is always due.
  EXPECT_TRUE(models::checkpoint_due(1e9 * models::t_checkpoint_seconds(20, m), 20, m));
  // The overhead factor gates the boundary.
  const double t = models::t_checkpoint_seconds(20, m);
  EXPECT_FALSE(models::checkpoint_due(3.9 * t, 20, m, 4.0));
  EXPECT_TRUE(models::checkpoint_due(4.1 * t, 20, m, 4.0));
}

}  // namespace
}  // namespace qc
