// Tests for the from-scratch FFT: correctness against the naive DFT,
// unitarity, round trips, plan reuse, bit reversal, and the QFT (Eq. 4)
// convention the emulator relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"

namespace qc::fft {
namespace {

aligned_vector<complex_t> random_signal(qubit_t n, std::uint64_t seed) {
  Rng rng(seed);
  aligned_vector<complex_t> v(dim(n));
  for (auto& x : v) x = rng.normal_complex();
  return v;
}

double max_diff(std::span<const complex_t> a, std::span<const complex_t> b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

class FftSizes : public ::testing::TestWithParam<qubit_t> {};

TEST_P(FftSizes, MatchesNaiveDftBothSigns) {
  const qubit_t n = GetParam();
  for (const Sign sign : {Sign::Negative, Sign::Positive}) {
    const auto in = random_signal(n, 100 + n);
    aligned_vector<complex_t> expected(in.size());
    dft_naive(in, expected, sign);
    aligned_vector<complex_t> got = in;
    fft_inplace(got, sign);
    EXPECT_LT(max_diff(got, expected), 1e-9 * std::sqrt(static_cast<double>(in.size())))
        << "n=" << n << " sign=" << static_cast<int>(sign);
  }
}

TEST_P(FftSizes, ForwardInverseRoundTrip) {
  const qubit_t n = GetParam();
  const auto in = random_signal(n, 200 + n);
  aligned_vector<complex_t> work = in;
  fft_inplace(work, Sign::Negative, Norm::None);
  fft_inplace(work, Sign::Positive, Norm::Inverse);
  EXPECT_LT(max_diff(work, in), 1e-10 * static_cast<double>(n + 1));
}

TEST_P(FftSizes, UnitaryNormPreservesEnergy) {
  const qubit_t n = GetParam();
  auto v = random_signal(n, 300 + n);
  double before = 0;
  for (const auto& x : v) before += std::norm(x);
  fft_inplace(v, Sign::Positive, Norm::Unitary);
  double after = 0;
  for (const auto& x : v) after += std::norm(x);
  EXPECT_NEAR(after, before, 1e-8 * before);  // Parseval
}

// Capped at 15: the O(N^2) naive-DFT oracle dominates the suite's
// runtime beyond that; LargeTransformStaysAccurate covers 2^20 via the
// round-trip property instead.
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes, ::testing::Values(0, 1, 2, 3, 5, 8, 11, 14, 15));

TEST(Fft, LinearityHolds) {
  const qubit_t n = 8;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  const complex_t alpha{0.3, -1.2}, beta{2.0, 0.7};
  aligned_vector<complex_t> combo(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) combo[i] = alpha * a[i] + beta * b[i];
  aligned_vector<complex_t> fa = a, fb = b;
  fft_inplace(fa, Sign::Negative);
  fft_inplace(fb, Sign::Negative);
  fft_inplace(combo, Sign::Negative);
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(combo[i] - (alpha * fa[i] + beta * fb[i])));
  EXPECT_LT(m, 1e-9);
}

TEST(Fft, DeltaTransformsToConstant) {
  aligned_vector<complex_t> v(16, complex_t{});
  v[0] = 1.0;
  fft_inplace(v, Sign::Negative);
  for (const auto& x : v) EXPECT_NEAR(std::abs(x - complex_t{1.0}), 0.0, 1e-12);
}

TEST(Fft, ShiftedDeltaGivesTwiddleRamp) {
  const qubit_t n = 4;
  aligned_vector<complex_t> v(dim(n), complex_t{});
  v[3] = 1.0;
  fft_inplace(v, Sign::Positive);
  for (index_t k = 0; k < v.size(); ++k) {
    const complex_t expect =
        std::polar(1.0, 2.0 * std::numbers::pi * 3.0 * static_cast<double>(k) / 16.0);
    EXPECT_NEAR(std::abs(v[k] - expect), 0.0, 1e-12);
  }
}

TEST(Fft, PlanIsReusable) {
  const FftPlan plan(10, Sign::Negative);
  const auto in = random_signal(10, 5);
  aligned_vector<complex_t> a = in, b = in;
  plan.execute(a);
  plan.execute(b);
  EXPECT_EQ(max_diff(a, b), 0.0);
  aligned_vector<complex_t> expected(in.size());
  dft_naive(in, expected, Sign::Negative);
  EXPECT_LT(max_diff(a, expected), 1e-9);
}

TEST(Fft, PlanRejectsWrongSize) {
  const FftPlan plan(4, Sign::Negative);
  aligned_vector<complex_t> v(8);
  EXPECT_THROW(plan.execute(v), std::invalid_argument);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  aligned_vector<complex_t> v(12);
  EXPECT_THROW(fft_inplace(v, Sign::Negative), std::invalid_argument);
}

TEST(BitReverse, PermutationIsInvolution) {
  const qubit_t n = 10;
  const auto in = random_signal(n, 7);
  aligned_vector<complex_t> v = in;
  bit_reverse_permute(v, n);
  EXPECT_GT(max_diff(v, in), 0.0);  // actually permuted something
  bit_reverse_permute(v, n);
  EXPECT_EQ(max_diff(v, in), 0.0);
}

TEST(BitReverse, MatchesIndexReverse) {
  const qubit_t n = 6;
  aligned_vector<complex_t> v(dim(n));
  for (index_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  bit_reverse_permute(v, n);
  for (index_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(v[i].real(), static_cast<double>(bits::reverse(i, n)));
}

TEST(Fft, QftConventionEq4) {
  // Paper Eq. (4): alpha_l <- 2^{-n/2} sum_k alpha_k exp(+2 pi i k l / N):
  // Sign::Positive with Norm::Unitary.
  const qubit_t n = 6;
  const auto in = random_signal(n, 8);
  const index_t size = in.size();
  aligned_vector<complex_t> expected(size);
  for (index_t l = 0; l < size; ++l) {
    complex_t acc{};
    for (index_t k = 0; k < size; ++k)
      acc += in[k] * std::polar(1.0, 2.0 * std::numbers::pi * static_cast<double>(k) *
                                         static_cast<double>(l) / static_cast<double>(size));
    expected[l] = acc / std::sqrt(static_cast<double>(size));
  }
  aligned_vector<complex_t> got = in;
  fft_inplace(got, Sign::Positive, Norm::Unitary);
  EXPECT_LT(max_diff(got, expected), 1e-10);
}

TEST(Fft, SchedulesProduceIdenticalResults) {
  // The fused two-stage sweep must match the textbook single-stage
  // schedule exactly (same arithmetic, different memory order) for both
  // odd and even stage counts.
  for (const qubit_t n : {1u, 2u, 3u, 6u, 9u, 12u, 15u}) {
    const auto in = random_signal(n, 400 + n);
    aligned_vector<complex_t> single = in, fused = in, stockham = in;
    FftPlan(n, Sign::Positive, Schedule::SingleStage).execute(single);
    FftPlan(n, Sign::Positive, Schedule::FusedPairs).execute(fused);
    FftPlan(n, Sign::Positive, Schedule::Stockham).execute(stockham);
    EXPECT_LT(max_diff(single, fused), 1e-12) << "n=" << n;
    EXPECT_LT(max_diff(single, stockham), 1e-12) << "n=" << n;
    aligned_vector<complex_t> expected(in.size());
    dft_naive(in, expected, Sign::Positive);
    EXPECT_LT(max_diff(fused, expected), 1e-9 * std::sqrt(static_cast<double>(in.size())))
        << "n=" << n;
  }
}

TEST(Fft, StockhamCallerScratchMatchesThreadLocalPath) {
  for (const qubit_t n : {4u, 11u}) {
    const auto in = random_signal(n, 77 + n);
    aligned_vector<complex_t> a = in, b = in;
    aligned_vector<complex_t> scratch(in.size());
    const FftPlan plan(n, Sign::Negative);
    plan.execute(a, Norm::Unitary);
    plan.execute(b, {scratch.data(), scratch.size()}, Norm::Unitary);
    EXPECT_LT(max_diff(a, b), 1e-15) << "n=" << n;
  }
  // Bad scratch: too small, or aliasing the data.
  aligned_vector<complex_t> v = random_signal(4, 5);
  aligned_vector<complex_t> small(v.size() / 2);
  const FftPlan plan(4, Sign::Negative);
  EXPECT_THROW(plan.execute(v, {small.data(), small.size()}, Norm::None),
               std::invalid_argument);
  EXPECT_THROW(plan.execute(v, {v.data(), v.size()}, Norm::None), std::invalid_argument);
}

TEST(Fft, LargeTransformStaysAccurate) {
  // Round-trip error at 2^20 points stays near machine precision —
  // guards against twiddle-table accuracy regressions.
  const qubit_t n = 20;
  const auto in = random_signal(n, 9);
  aligned_vector<complex_t> v = in;
  fft_inplace(v, Sign::Negative);
  fft_inplace(v, Sign::Positive, Norm::Inverse);
  EXPECT_LT(max_diff(v, in), 1e-10);
}

}  // namespace
}  // namespace qc::fft
