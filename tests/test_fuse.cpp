// Tests for the gate-fusion subsystem: the subset-embedding helpers, the
// k-qubit apply kernels against dense oracles, the fusion pass against
// the gate-product matrix, and the FusedSimulator backend against
// HpcSimulator on the paper's workloads (QFT, Grover, random circuits).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "circuit/builders.hpp"
#include "fuse/fused_simulator.hpp"
#include "sim/kernels.hpp"
#include "sim/simulator.hpp"

namespace qc::fuse {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

sim::StateVector random_state(qubit_t n, std::uint64_t seed) {
  sim::StateVector sv(n);
  Rng rng(seed);
  sv.randomize(rng);
  return sv;
}

sim::StateVector copy_state(const sim::StateVector& in) {
  sim::StateVector out(in.qubits());
  std::copy(in.amplitudes().begin(), in.amplitudes().end(), out.amplitudes().begin());
  return out;
}

/// Fully gate-level Grover search (no emulated oracle): the phase oracle
/// is X-conjugation of an (n-1)-controlled Z, the diffusion operator the
/// standard H/X sandwich. The multi-controlled Z has full-register
/// support, so it exercises the fusion pass's passthrough fallback.
Circuit grover_circuit(qubit_t n, index_t marked, int iterations) {
  Circuit c(n);
  for (qubit_t q = 0; q < n; ++q) c.h(q);
  Gate mcz = circuit::make_gate(GateKind::Z, n - 1);
  for (qubit_t q = 0; q + 1 < n; ++q) mcz.controls.push_back(q);
  for (int it = 0; it < iterations; ++it) {
    for (qubit_t q = 0; q < n; ++q)
      if (!bits::test(marked, q)) c.x(q);
    c.append(mcz);
    for (qubit_t q = 0; q < n; ++q)
      if (!bits::test(marked, q)) c.x(q);
    for (qubit_t q = 0; q < n; ++q) c.h(q);
    for (qubit_t q = 0; q < n; ++q) c.x(q);
    c.append(mcz);
    for (qubit_t q = 0; q < n; ++q) c.x(q);
    for (qubit_t q = 0; q < n; ++q) c.h(q);
  }
  return c;
}

/// max_abs_diff between the fused backend and HpcSimulator on `c`.
double backend_divergence(const Circuit& c, const FusionOptions& fusion, std::uint64_t seed) {
  sim::StateVector a = random_state(c.qubits(), seed);
  sim::StateVector b = copy_state(a);
  sim::HpcSimulator().run(a, c);
  FusedSimulator::Options opts;
  opts.fusion = fusion;
  FusedSimulator(opts).run(b, c);
  return a.max_abs_diff(b);
}

// --- embedding helpers -------------------------------------------------

TEST(EmbedOperator, MatchesKroneckerOnLowAndHighQubit) {
  Rng rng(5);
  const linalg::Matrix u = linalg::Matrix::random_unitary(2, rng);
  const linalg::Matrix eye = linalg::Matrix::identity(2);
  const std::vector<qubit_t> both{0, 1};
  const std::vector<qubit_t> low{0}, high{1};
  // Qubit 0 is the least-significant bit, so an operator on qubit 1 is
  // u ⊗ I and on qubit 0 is I ⊗ u in kron's high-bits-first convention.
  EXPECT_LT(linalg::embed_operator(u, high, both).max_abs_diff(u.kron(eye)), 1e-15);
  EXPECT_LT(linalg::embed_operator(u, low, both).max_abs_diff(eye.kron(u)), 1e-15);
}

TEST(EmbedOperator, SubsetIntoThreeQubitsMatchesGateOracle) {
  // Embedding a CNOT block over {0, 2} into {0, 1, 2} must equal the
  // dense gate operator of CNOT(control=2, target=0) on 3 qubits.
  const Gate cnot = circuit::make_controlled(GateKind::X, 2, 0);
  const std::vector<qubit_t> sub{0, 2};
  const std::vector<qubit_t> all{0, 1, 2};
  const linalg::Matrix small = circuit::gate_operator_on(cnot, sub);
  EXPECT_LT(linalg::embed_operator(small, sub, all).max_abs_diff(circuit::gate_operator(cnot, 3)),
            1e-15);
}

TEST(EmbedOperator, RejectsNonSubsetAndBadDimension) {
  const linalg::Matrix u = linalg::Matrix::identity(2);
  const std::vector<qubit_t> sub{3};
  const std::vector<qubit_t> all{0, 1};
  EXPECT_THROW(linalg::embed_operator(u, sub, all), std::invalid_argument);
  const std::vector<qubit_t> two{0, 1};
  EXPECT_THROW(linalg::embed_operator(u, two, two), std::invalid_argument);
}

TEST(GateOperatorOn, RelabelsToLocalQubits) {
  const Gate cr = circuit::make_controlled(GateKind::Phase, 4, 1, 0.77);
  const std::vector<qubit_t> sub{1, 4};
  const Gate local_cr = circuit::make_controlled(GateKind::Phase, 1, 0, 0.77);
  EXPECT_LT(circuit::gate_operator_on(cr, sub).max_abs_diff(circuit::gate_operator(local_cr, 2)),
            1e-15);
  EXPECT_THROW(circuit::gate_operator_on(cr, std::vector<qubit_t>{1, 2}), std::invalid_argument);
}

// --- k-qubit kernels vs dense oracle -----------------------------------

TEST(ApplyMulti, MatchesDenseOperatorOnStridedQubits) {
  const qubit_t n = 6;
  Rng rng(17);
  const linalg::Matrix u = linalg::Matrix::random_unitary(8, rng);
  const std::vector<qubit_t> targets{0, 2, 4};
  std::vector<qubit_t> all(n);
  for (qubit_t q = 0; q < n; ++q) all[q] = q;
  const linalg::Matrix full = linalg::embed_operator(u, targets, all);

  const sim::StateVector in = random_state(n, 18);
  sim::StateVector expected(n);
  full.matvec(in.amplitudes(), expected.amplitudes());

  sim::StateVector got = copy_state(in);
  sim::kernels::apply_multi<double>(got.amplitudes(), n, targets, {u.data(), u.rows() * u.cols()});
  EXPECT_LT(got.max_abs_diff(expected), 1e-13);
}

TEST(ApplyMultiDiagonal, MatchesDenseDiagonal) {
  const qubit_t n = 5;
  const std::vector<qubit_t> targets{1, 3};
  std::vector<complex_t> d{1.0, std::polar(1.0, 0.3), std::polar(1.0, 1.1),
                           std::polar(1.0, -0.6)};
  linalg::Matrix u = linalg::Matrix::diagonal(d);
  std::vector<qubit_t> all(n);
  for (qubit_t q = 0; q < n; ++q) all[q] = q;
  const linalg::Matrix full = linalg::embed_operator(u, targets, all);

  const sim::StateVector in = random_state(n, 19);
  sim::StateVector expected(n);
  full.matvec(in.amplitudes(), expected.amplitudes());

  sim::StateVector got = copy_state(in);
  sim::kernels::apply_multi_diagonal<double>(got.amplitudes(), n, targets, d);
  EXPECT_LT(got.max_abs_diff(expected), 1e-13);
}

// --- fusion pass correctness -------------------------------------------

class PassVsGateProduct : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PassVsGateProduct, FusedMatrixEqualsGateProductMatrix) {
  // Pass correctness oracle: for random small circuits and every fusion
  // width, the fused plan's dense matrix equals the circuit's.
  Rng rng(GetParam());
  const qubit_t n = 3 + static_cast<qubit_t>(GetParam() % 4);  // 3..6 qubits
  const Circuit c = circuit::random_circuit(n, 40, rng);
  const linalg::Matrix expected = c.to_matrix_reference();
  for (qubit_t k = 1; k <= 5; ++k) {
    FusionOptions opts;
    opts.max_width = k;
    const FusedCircuit plan = fuse_circuit(c, opts);
    EXPECT_LT(plan.to_matrix_reference().max_abs_diff(expected), 1e-12)
        << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassVsGateProduct, ::testing::Range<std::uint64_t>(1, 9));

TEST(FusionPass, EightQubitDenseCircuitMatrixMatches) {
  Rng rng(99);
  const Circuit c = circuit::random_dense_circuit(8, 60, rng);
  const FusedCircuit plan = fuse_circuit(c);
  EXPECT_LT(plan.to_matrix_reference().max_abs_diff(c.to_matrix_reference()), 1e-12);
  EXPECT_GT(plan.fused_gates(), 0u);
}

TEST(FusionPass, PlanBookkeepingIsConsistent) {
  Rng rng(7);
  const qubit_t n = 10;
  const Circuit c = circuit::random_circuit(n, 200, rng);
  FusionOptions opts;
  opts.max_width = 4;
  const FusedCircuit plan = fuse_circuit(c, opts);
  EXPECT_EQ(plan.n, n);
  EXPECT_EQ(plan.source_gates, c.size());
  std::size_t total = 0;
  for (const FusedItem& item : plan.items) {
    if (item.kind == FusedItem::Kind::Block) {
      EXPECT_GE(item.block.gate_count, 2u);  // singletons downgraded
      EXPECT_LE(item.block.width(), opts.max_width);
      EXPECT_TRUE(std::is_sorted(item.block.qubits.begin(), item.block.qubits.end()));
      EXPECT_EQ(item.block.unitary.rows(), dim(item.block.width()));
      EXPECT_LT(item.block.unitary.unitarity_error(), 1e-12);
      total += item.block.gate_count;
    } else {
      total += 1;
    }
  }
  EXPECT_EQ(total, c.size());  // every source gate lands exactly once
  EXPECT_EQ(plan.fused_gates() + (plan.items.size() - plan.blocks()), c.size());
}

TEST(FusionPass, CommutationAwareDiagonalHop) {
  // z0 z1 open a diagonal block on {0,1}; cr(1,2) cannot fit at width 2
  // but commutes (diagonal-diagonal); the final z0 must hop back over it
  // into the first block.
  Circuit c(3);
  c.z(0).z(1).cr(1, 2, 0.5).z(0);
  FusionOptions opts;
  opts.max_width = 2;
  const FusedCircuit plan = fuse_circuit(c, opts);
  EXPECT_EQ(plan.blocks(), 1u);       // {0,1} block; lone CR downgraded
  EXPECT_EQ(plan.fused_gates(), 3u);  // z0, z1, hopped z0
  EXPECT_LT(plan.to_matrix_reference().max_abs_diff(c.to_matrix_reference()), 1e-13);
}

TEST(FusionPass, DisjointSupportHop) {
  // h0 h1 fill a block on {0,1}; h2 h3 fill a second on {2,3} that
  // ry(0) cannot widen at width 2 — but it commutes by disjoint support
  // and must hop back into the first block.
  Circuit c(4);
  c.h(0).h(1).h(2).h(3).ry(0, 0.3);
  FusionOptions opts;
  opts.max_width = 2;
  const FusedCircuit plan = fuse_circuit(c, opts);
  ASSERT_EQ(plan.items.size(), 2u);
  EXPECT_EQ(plan.blocks(), 2u);
  EXPECT_EQ(plan.fused_gates(), 5u);
  ASSERT_EQ(plan.items[0].kind, FusedItem::Kind::Block);
  EXPECT_EQ(plan.items[0].block.gate_count, 3u);  // h0, h1 + hopped ry(0)
  EXPECT_LT(plan.to_matrix_reference().max_abs_diff(c.to_matrix_reference()), 1e-13);
}

TEST(FusionPass, WideGateStaysPassthrough) {
  Circuit c(6);
  Gate mcz = circuit::make_gate(GateKind::Z, 5);
  for (qubit_t q = 0; q < 5; ++q) mcz.controls.push_back(q);
  c.h(0).append(mcz);
  c.h(0);
  const FusedCircuit plan = fuse_circuit(c);  // default width 5 < 6
  std::size_t passthrough_wide = 0;
  for (const FusedItem& item : plan.items)
    if (item.kind == FusedItem::Kind::Passthrough && item.gate.arity() == 6) ++passthrough_wide;
  EXPECT_EQ(passthrough_wide, 1u);
  EXPECT_LT(plan.to_matrix_reference().max_abs_diff(c.to_matrix_reference()), 1e-13);
}

// --- edge cases ---------------------------------------------------------

TEST(FusionPass, EmptyCircuit) {
  const Circuit c(4);
  const FusedCircuit plan = fuse_circuit(c);
  EXPECT_TRUE(plan.items.empty());
  sim::StateVector sv(4);
  FusedSimulator().run(sv, c);
  EXPECT_EQ(sv[0], complex_t{1.0});
}

TEST(FusionPass, SingleSwapStaysSpecialized) {
  Circuit c(4);
  c.swap(0, 3);
  const FusedCircuit plan = fuse_circuit(c);
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].kind, FusedItem::Kind::Passthrough);  // singleton downgrade
  EXPECT_LT(backend_divergence(c, {}, 41), 1e-13);
}

TEST(FusionPass, WidthOneFusesOnlyUncontrolledRuns) {
  Rng rng(23);
  const Circuit c = circuit::random_circuit(6, 80, rng);
  FusionOptions opts;
  opts.max_width = 1;
  const FusedCircuit plan = fuse_circuit(c, opts);
  for (const FusedItem& item : plan.items)
    if (item.kind == FusedItem::Kind::Block) EXPECT_EQ(item.block.width(), 1u);
  EXPECT_LT(backend_divergence(c, opts, 24), 1e-12);
}

TEST(FusionPass, DisabledKeepsEveryGate) {
  Rng rng(31);
  const Circuit c = circuit::random_circuit(6, 50, rng);
  FusionOptions opts;
  opts.enabled = false;
  const FusedCircuit plan = fuse_circuit(c, opts);
  EXPECT_EQ(plan.items.size(), c.size());
  EXPECT_EQ(plan.blocks(), 0u);
  EXPECT_LT(backend_divergence(c, opts, 32), 1e-12);
}

TEST(FusionPass, RejectsWidthBeyondKernelLimit) {
  FusionOptions opts;
  opts.max_width = sim::kernels::kMaxFusedWidth + 1;
  EXPECT_THROW(fuse_circuit(Circuit(2), opts), std::invalid_argument);
}

// --- backend equivalence (the ISSUE's acceptance workloads) -------------

TEST(FusedBackend, MatchesHpcOnQft12) {
  EXPECT_LT(backend_divergence(circuit::qft(12), {}, 101), 1e-12);
}

TEST(FusedBackend, MatchesHpcOnGrover10) {
  const qubit_t n = 10;
  const int iterations = static_cast<int>(
      std::round(std::numbers::pi / 4.0 * std::sqrt(static_cast<double>(dim(n)))));
  const Circuit c = grover_circuit(n, /*marked=*/421, iterations);
  // Start from |0...0> (the algorithm's actual input), not a random state.
  sim::StateVector a(n), b(n);
  sim::HpcSimulator().run(a, c);
  FusedSimulator().run(b, c);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
  // And the search must actually succeed.
  const auto dist = b.register_distribution(0, n);
  EXPECT_GT(dist[421], 0.9);
}

TEST(FusedBackend, MatchesHpcOnRandom500GateCircuit) {
  Rng rng(55);
  const Circuit c = circuit::random_circuit(12, 500, rng);
  EXPECT_LT(backend_divergence(c, {}, 56), 1e-12);
}

TEST(FusedBackend, MatchesHpcOnDenseCircuitAcrossWidths) {
  // cost_gate off so wide blocks really form and execute — k = 7, 8 pin
  // the heap-scratch generic kernel behind apply_multi's switch.
  Rng rng(60);
  const Circuit c = circuit::random_dense_circuit(10, 200, rng);
  for (qubit_t k = 1; k <= sim::kernels::kMaxFusedWidth; ++k) {
    FusionOptions opts;
    opts.max_width = k;
    opts.cost_gate = false;
    EXPECT_LT(backend_divergence(c, opts, 61 + k), 1e-12) << "k=" << k;
  }
}

TEST(ApplyMulti, GenericWidePathMatchesDenseOracle) {
  // k = 7 exceeds the stack-templated widths and takes apply_multi's
  // generic fallback.
  const qubit_t n = 8;
  Rng rng(87);
  const linalg::Matrix u = linalg::Matrix::random_unitary(128, rng);
  const std::vector<qubit_t> targets{0, 1, 2, 4, 5, 6, 7};
  std::vector<qubit_t> all(n);
  for (qubit_t q = 0; q < n; ++q) all[q] = q;
  const linalg::Matrix full = linalg::embed_operator(u, targets, all);

  const sim::StateVector in = random_state(n, 88);
  sim::StateVector expected(n);
  full.matvec(in.amplitudes(), expected.amplitudes());

  sim::StateVector got = copy_state(in);
  sim::kernels::apply_multi<double>(got.amplitudes(), n, targets, {u.data(), u.rows() * u.cols()});
  EXPECT_LT(got.max_abs_diff(expected), 1e-12);
}

TEST(FusedBackend, FactoryAndPlanReuse) {
  const auto simulator = sim::make_simulator("fused");
  EXPECT_EQ(simulator->name(), "fused");
  const Circuit c = circuit::qft(9);
  sim::StateVector a = random_state(9, 71);
  sim::StateVector b = copy_state(a);
  simulator->run(a, c);
  // plan() + execute() twice must equal run() twice.
  FusedSimulator fused;
  const FusedCircuit plan = fused.plan(c);
  EXPECT_GT(plan.fused_gates(), 0u);
  fused.execute(b, plan);
  simulator->run(a, c);
  fused.execute(b, plan);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(FusedBackend, ApplyGateDelegatesToFastPaths) {
  const Gate g = circuit::make_controlled(GateKind::H, 0, 2);
  sim::StateVector a = random_state(5, 81);
  sim::StateVector b = copy_state(a);
  sim::HpcSimulator().apply_gate(a, g);
  FusedSimulator().apply_gate(b, g);
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
}

}  // namespace
}  // namespace qc::fuse
