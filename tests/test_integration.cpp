// End-to-end integration tests: emulated Shor order finding, Grover
// search with an emulated oracle, distributed emulated QFT against the
// serial circuit, and mixed emulation/simulation pipelines.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <numeric>

#include "circuit/builders.hpp"
#include "emu/emulator.hpp"
#include "emu/observables.hpp"
#include "fft/dist_fft.hpp"
#include "revcirc/arith.hpp"
#include "sim/dist_sv.hpp"
#include "sim/simulator.hpp"

namespace qc {
namespace {

using emu::Emulator;
using emu::RegRef;
using sim::HpcSimulator;
using sim::StateVector;

/// Continued-fraction expansion of x/2^bits; returns the denominator of
/// the best convergent with denominator <= max_den (Shor's classical
/// post-processing).
index_t best_denominator(index_t x, unsigned bits, index_t max_den) {
  double value = static_cast<double>(x) / std::ldexp(1.0, static_cast<int>(bits));
  // Convergent recurrence h_i = a_i h_{i-1} + h_{i-2}: (p1, q1) is the
  // current convergent h_0/k_0 = 0/1, (p0, q0) the previous (1, 0).
  index_t p0 = 1, q0 = 0, p1 = 0, q1 = 1;
  for (int iter = 0; iter < 40 && value > 1e-12; ++iter) {
    const double inv = 1.0 / value;
    const index_t a = static_cast<index_t>(inv);
    const index_t p2 = a * p1 + p0, q2 = a * q1 + q0;
    if (q2 > max_den) break;
    p0 = p1;
    q0 = q1;
    p1 = p2;
    q1 = q2;
    value = inv - static_cast<double>(a);
  }
  return q1 == 0 ? 1 : q1;
}

index_t pow_mod(index_t base, index_t e, index_t mod) {
  index_t r = 1 % mod;
  base %= mod;
  while (e > 0) {
    if (e & 1) r = r * base % mod;
    base = base * base % mod;
    e >>= 1;
  }
  return r;
}

TEST(Integration, ShorOrderFindingEmulated) {
  // Order finding for a = 7 mod 15 (order 4), the quantum core of
  // factoring 15. Modular exponentiation is emulated (§3.1), the inverse
  // QFT is emulated as an FFT (§3.2), measurement statistics come from
  // the exact distribution (§3.4).
  const index_t N = 15, a = 7;
  const unsigned t_bits = 8;  // exponent register
  const qubit_t work = 4;     // log2(16) for the modular register
  const qubit_t total = t_bits + work;

  StateVector sv(total);
  Emulator emu(sv);
  // Uniform superposition over exponents; work register |1>.
  sv.set_basis(index_t{1} << t_bits);
  {
    circuit::Circuit h(total);
    for (qubit_t q = 0; q < t_bits; ++q) h.h(q);
    HpcSimulator().run(sv, h);
  }
  // |e>|1> -> |e>|a^e mod N> via controlled modular multiplications:
  // for each exponent bit j, multiply by a^(2^j) mod N when e_j = 1.
  // Emulated as a single permutation.
  emu.apply_permutation([&](index_t i) {
    const index_t e = bits::field(i, 0, t_bits);
    const index_t y = bits::field(i, t_bits, work);
    if (y >= N) return i;  // outside modular domain
    const index_t y2 = y * pow_mod(a, e, N) % N;
    return bits::with_field(i, t_bits, work, y2);
  });
  // Inverse QFT on the exponent register.
  emu.inverse_qft(RegRef{0, t_bits});

  // The exponent-register distribution peaks at multiples of 2^t / r.
  const auto dist = sv.register_distribution(0, t_bits);
  index_t order_votes = 0, trials = 0;
  for (index_t x = 0; x < dist.size(); ++x) {
    if (dist[x] < 1e-4) continue;
    ++trials;
    const index_t r = best_denominator(x, t_bits, N);
    if (r > 0 && pow_mod(a, r, N) == 1 && r == 4) ++order_votes;
  }
  EXPECT_GT(trials, 0u);
  // Peaks at x = 0, 64, 128, 192. x = 64 and 192 recover the exact
  // order r = 4; x = 128 gives the divisor r = 2 (0.5 = 2/4 is not in
  // lowest terms), x = 0 gives nothing — the textbook 50% yield of a
  // single order-finding run.
  EXPECT_EQ(order_votes, 2u);
  EXPECT_EQ(best_denominator(128, t_bits, N), 2u);
  EXPECT_NEAR(dist[64], 0.25, 1e-6);
  EXPECT_NEAR(dist[128], 0.25, 1e-6);
}

TEST(Integration, GroverSearchWithEmulatedOracle) {
  // Grover search for a marked element: the oracle (a classical
  // predicate) is emulated as a phase flip; the diffusion operator is
  // run as gates. After ~pi/4 sqrt(N) iterations the marked amplitude
  // dominates.
  const qubit_t n = 8;
  const index_t marked = 173;
  StateVector sv(n);
  circuit::Circuit hadamards(n);
  for (qubit_t q = 0; q < n; ++q) hadamards.h(q);
  HpcSimulator().run(sv, hadamards);

  // Diffusion: H^n X^n (C^{n-1}Z) X^n H^n.
  circuit::Circuit diffusion(n);
  for (qubit_t q = 0; q < n; ++q) diffusion.h(q);
  for (qubit_t q = 0; q < n; ++q) diffusion.x(q);
  {
    circuit::Gate cz = circuit::make_gate(circuit::GateKind::Z, n - 1);
    for (qubit_t q = 0; q + 1 < n; ++q) cz.controls.push_back(q);
    diffusion.append(cz);
  }
  for (qubit_t q = 0; q < n; ++q) diffusion.x(q);
  for (qubit_t q = 0; q < n; ++q) diffusion.h(q);

  const int iterations = static_cast<int>(std::round(
      std::numbers::pi / 4.0 * std::sqrt(static_cast<double>(dim(n)))));
  for (int it = 0; it < iterations; ++it) {
    // Emulated oracle: flip the phase of the marked basis state.
    sv[marked] = -sv[marked];
    HpcSimulator().run(sv, diffusion);
  }
  const auto dist = sv.register_distribution(0, n);
  // Theoretical success probability sin^2((2k+1) asin(2^{-n/2})) at the
  // rounded iteration count k = 13 is 0.9862.
  EXPECT_GT(dist[marked], 0.98);
  EXPECT_NEAR(dist[marked], 0.9862, 5e-3);
}

TEST(Integration, DistributedEmulatedQftMatchesSerialCircuit) {
  // Distributed QFT emulation = dist_fft (natural order, unitary norm,
  // positive sign); must equal the serial gate-level QFT circuit.
  const qubit_t n = 10;
  const int ranks = 4;
  StateVector serial(n);
  serial.randomize_deterministic(321);
  HpcSimulator().run(serial, circuit::qft(n));

  double diff = -1;
  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    sim::DistStateVector dsv(comm, n);
    dsv.randomize(321);
    fft::dist_fft(comm, dsv.local(), n, fft::Sign::Positive, fft::Norm::Unitary);
    const StateVector gathered = dsv.gather_all();
    if (comm.rank() == 0) diff = gathered.max_abs_diff(serial);
  });
  EXPECT_LT(diff, 1e-11);
}

TEST(Integration, DistributedQftCircuitBothPoliciesMatchEmulation) {
  const qubit_t n = 9;
  const int ranks = 8;
  StateVector serial(n);
  serial.randomize_deterministic(99);
  Emulator semu(serial);
  semu.qft();

  cluster::Cluster cluster(ranks, 1);
  cluster.run([&](cluster::Comm& comm) {
    sim::DistStateVector a(comm, n);
    a.randomize(99);
    a.run(circuit::qft(n), sim::CommPolicy::Specialized);
    sim::DistStateVector b(comm, n);
    b.randomize(99);
    b.run(circuit::qft(n), sim::CommPolicy::Exchange);
    const StateVector ga = a.gather_all();
    const StateVector gb = b.gather_all();
    EXPECT_LT(ga.max_abs_diff(serial), 1e-11);
    EXPECT_LT(gb.max_abs_diff(serial), 1e-11);
    // And the specialized policy must have communicated strictly less.
    EXPECT_LT(a.bytes_communicated(), b.bytes_communicated());
  });
}

TEST(Integration, EmulatedArithmeticPipelineMatchesCircuits) {
  // Chain: add then multiply, emulator vs reversible circuits, on a
  // random superposition. Exercises scratch reuse across shortcut calls.
  const qubit_t m = 3;
  const qubit_t total = 3 * m + 1;
  StateVector circuit_sv(total);
  Rng rng(12);
  {
    StateVector data(3 * m);
    data.randomize(rng);
    std::copy(data.amplitudes().begin(), data.amplitudes().end(),
              circuit_sv.amplitudes().begin());
  }
  StateVector emu_sv(total);
  std::copy(circuit_sv.amplitudes().begin(), circuit_sv.amplitudes().end(),
            emu_sv.amplitudes().begin());

  circuit::Circuit chain(total);
  revcirc::cuccaro_add(chain, revcirc::make_reg(0, m), revcirc::make_reg(m, m), 3 * m);
  revcirc::multiply_accumulate(chain, revcirc::make_reg(0, m), revcirc::make_reg(m, m),
                               revcirc::make_reg(2 * m, m), 3 * m);
  HpcSimulator().run(circuit_sv, chain);

  Emulator emu(emu_sv);
  emu.add({0, m}, {m, m});
  emu.multiply({0, m}, {m, m}, {2 * m, m});
  EXPECT_LT(emu_sv.max_abs_diff(circuit_sv), 1e-12);
}

TEST(Integration, QftPeriodicityAfterEmulatedFunction) {
  // f(x) = x mod 4 written to an output register creates 4-periodicity
  // in x once the output is measured; the QFT then shows peaks spaced
  // N/4 apart. Exercises apply_function + sub-register QFT + collapse.
  const qubit_t in_w = 6, out_w = 2;
  StateVector sv(in_w + out_w);
  circuit::Circuit h(in_w + out_w);
  for (qubit_t q = 0; q < in_w; ++q) h.h(q);
  HpcSimulator().run(sv, h);
  Emulator emu(sv);
  emu.apply_function({0, in_w}, {in_w, out_w}, [](index_t x) { return x % 4; });
  // Collapse the output register to 1.
  sv.collapse(in_w, 1);
  sv.collapse(in_w + 1, 0);
  emu.qft(RegRef{0, in_w});
  const auto dist = sv.register_distribution(0, in_w);
  for (index_t k = 0; k < dim(in_w); ++k) {
    if (k % 16 == 0) {
      EXPECT_NEAR(dist[k], 0.25, 1e-9) << k;
    } else {
      EXPECT_NEAR(dist[k], 0.0, 1e-9) << k;
    }
  }
}

TEST(Integration, MeasurementShortcutsAgreeWithSimulatedSampling) {
  // §3.4: the exact register distribution equals the empirical histogram
  // of many samples (up to statistical error).
  const qubit_t n = 8;
  StateVector sv(n);
  HpcSimulator().run(sv, circuit::tfim_trotter_step(n, 0.37));
  const auto exact = sv.register_distribution(0, 3);
  Rng rng(13);
  const auto counts = emu::sample_register_counts(sv, 0, 3, 60000, rng);
  for (index_t v = 0; v < 8; ++v) {
    const double freq =
        counts.contains(v) ? static_cast<double>(counts.at(v)) / 60000.0 : 0.0;
    EXPECT_NEAR(freq, exact[v], 0.02) << "v=" << v;
  }
}

}  // namespace
}  // namespace qc
