// Unit tests for dense complex linear algebra: Matrix, GEMM variants,
// Strassen, matrix powers, Kronecker products.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"

namespace qc::linalg {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  const Matrix m{{1.0, 2.0}, {3.0, kI}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(1, 1), kI);
  EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix id = Matrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_EQ(id(i, j), (i == j ? complex_t{1.0} : complex_t{}));
  const std::vector<complex_t> d{1.0, kI, -1.0};
  const Matrix dm = Matrix::diagonal(d);
  EXPECT_EQ(dm(1, 1), kI);
  EXPECT_EQ(dm(0, 1), complex_t{});
}

TEST(Matrix, DaggerIsConjugateTranspose) {
  const Matrix m{{1.0 + kI, 2.0}, {3.0, 4.0 - kI}};
  const Matrix d = m.dagger();
  EXPECT_EQ(d(0, 0), std::conj(m(0, 0)));
  EXPECT_EQ(d(0, 1), std::conj(m(1, 0)));
  EXPECT_EQ(m.dagger().dagger().max_abs_diff(m), 0.0);
}

TEST(Matrix, RandomUnitaryIsUnitary) {
  Rng rng(1);
  for (const std::size_t n : {2u, 8u, 33u}) {
    const Matrix u = Matrix::random_unitary(n, rng);
    EXPECT_LT(u.unitarity_error(), 1e-12) << "n=" << n;
  }
}

TEST(Matrix, RandomHermitianIsHermitian) {
  Rng rng(2);
  const Matrix h = Matrix::random_hermitian(16, rng);
  EXPECT_LT(h.hermiticity_error(), 1e-14);
}

TEST(Matrix, FrobeniusNormOfIdentity) {
  EXPECT_NEAR(Matrix::identity(9).frobenius_norm(), 3.0, 1e-14);
}

TEST(Matrix, MatvecMatchesManual) {
  const Matrix m{{1.0, 2.0}, {kI, -1.0}};
  const std::vector<complex_t> x{1.0, kI};
  std::vector<complex_t> y(2);
  m.matvec(x, y);
  EXPECT_NEAR(std::abs(y[0] - complex_t(1.0 + 2.0 * kI)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(y[1] - complex_t(kI - kI)), 0.0, 1e-15);
}

TEST(Matrix, KronMatchesPaperEq3) {
  // Paper Eq. (3): X (x) I_2 for a NOT on the high qubit of two.
  const Matrix x{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix id = Matrix::identity(2);
  const Matrix k = x.kron(id);
  const Matrix expected{{0, 0, 1, 0}, {0, 0, 0, 1}, {1, 0, 0, 0}, {0, 1, 0, 0}};
  EXPECT_EQ(k.max_abs_diff(expected), 0.0);
}

TEST(Matrix, KronDimensions) {
  Rng rng(3);
  const Matrix a = Matrix::random(2, 3, rng);
  const Matrix b = Matrix::random(4, 5, rng);
  const Matrix k = a.kron(b);
  EXPECT_EQ(k.rows(), 8u);
  EXPECT_EQ(k.cols(), 15u);
  // Spot-check (i1*4+i2, j1*5+j2) = a(i1,j1)*b(i2,j2). Compare with a
  // tolerance: FMA contraction may differ between the two evaluations.
  EXPECT_LT(std::abs(k(1 * 4 + 2, 2 * 5 + 3) - a(1, 2) * b(2, 3)), 1e-15);
}

class GemmSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GemmSizes, BlockedMatchesNaive) {
  const std::size_t n = GetParam();
  Rng rng(n);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  const Matrix ref = gemm_naive(a, b);
  EXPECT_LT(gemm(a, b).max_abs_diff(ref), 1e-10 * static_cast<double>(n));
}

TEST_P(GemmSizes, StrassenMatchesNaive) {
  const std::size_t n = GetParam();
  if (!bits::is_pow2(n)) GTEST_SKIP();
  Rng rng(n + 100);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  const Matrix ref = gemm_naive(a, b);
  EXPECT_LT(strassen(a, b, 16).max_abs_diff(ref), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmSizes, ::testing::Values(1, 2, 3, 7, 16, 33, 64, 100, 128));

TEST(Gemm, RectangularShapes) {
  Rng rng(9);
  const Matrix a = Matrix::random(3, 7, rng);
  const Matrix b = Matrix::random(7, 5, rng);
  const Matrix ref = gemm_naive(a, b);
  EXPECT_LT(gemm(a, b).max_abs_diff(ref), 1e-12);
  EXPECT_THROW(gemm(b, a), std::invalid_argument);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(10);
  const Matrix a = Matrix::random(20, 20, rng);
  EXPECT_LT(gemm(a, Matrix::identity(20)).max_abs_diff(a), 1e-13);
  EXPECT_LT(gemm(Matrix::identity(20), a).max_abs_diff(a), 1e-13);
}

TEST(Gemm, GemmIntoRejectsBadShape) {
  Rng rng(11);
  const Matrix a = Matrix::random(4, 4, rng);
  Matrix c(3, 4);
  EXPECT_THROW(gemm_into(a, a, c), std::invalid_argument);
}

TEST(Gemm, StrassenFallsBackForNonPow2) {
  Rng rng(12);
  const Matrix a = Matrix::random(6, 6, rng);
  const Matrix b = Matrix::random(6, 6, rng);
  EXPECT_LT(strassen(a, b, 2).max_abs_diff(gemm_naive(a, b)), 1e-11);
}

TEST(MatrixPower, Pow2MatchesRepeatedMultiply) {
  Rng rng(13);
  const Matrix u = Matrix::random_unitary(8, rng);
  Matrix expected = u;
  for (int i = 0; i < 3; ++i) expected = gemm_naive(expected, expected);
  EXPECT_LT(matrix_power_pow2(u, 3).max_abs_diff(expected), 1e-11);
  EXPECT_LT(matrix_power_pow2(u, 3, /*use_strassen=*/true).max_abs_diff(expected), 1e-10);
}

TEST(MatrixPower, GeneralExponent) {
  Rng rng(14);
  const Matrix u = Matrix::random_unitary(4, rng);
  Matrix expected = Matrix::identity(4);
  for (int i = 0; i < 13; ++i) expected = gemm_naive(expected, u);
  EXPECT_LT(matrix_power(u, 13).max_abs_diff(expected), 1e-12);
  EXPECT_LT(matrix_power(u, 0).max_abs_diff(Matrix::identity(4)), 1e-15);
}

TEST(MatrixPower, UnitaryPowersStayUnitary) {
  Rng rng(15);
  const Matrix u = Matrix::random_unitary(16, rng);
  EXPECT_LT(matrix_power_pow2(u, 5).unitarity_error(), 1e-10);
}

}  // namespace
}  // namespace qc::linalg
