// Tests for the analytic performance models (Eqs. 5 & 6) and the QPE
// crossover solvers behind Table 2's lower panel.
#include <gtest/gtest.h>

#include <cmath>

#include "models/perf_model.hpp"

namespace qc::models {
namespace {

TEST(PerfModel, Eq5SingleNodeValue) {
  // T = 5 N n / (20 GF) at n = 28: 5 * 2^28 * 28 / 20e9 ~ 1.88 s —
  // consistent with Fig. 3's ~2 s single-node emulation point.
  const MachineParams m = MachineParams::stampede();
  const double t = t_fft_seconds(28, 1, m);
  EXPECT_NEAR(t, 5.0 * std::ldexp(1.0, 28) * 28 / 20e9, 1e-9);
  EXPECT_GT(t, 1.5);
  EXPECT_LT(t, 2.5);
}

TEST(PerfModel, Eq6SingleNodeValue) {
  // T = 4 N n^2 / 40 GB/s at n = 28 ~ 21 s. The paper's §4.3 quotes the
  // speedup estimate n * FLOPS / B_mem = 14, silently dropping the 4/5
  // constant ratio between Eqs. 6 and 5; the exact model ratio is
  // (4/5) * n * FLOPS / B_mem = 11.2 (the paper measured 15).
  const MachineParams m = MachineParams::stampede();
  const double t = t_qft_seconds(28, 1, m);
  EXPECT_NEAR(t, 4.0 * std::ldexp(1.0, 28) * 28 * 28 / 40e9, 1e-9);
  const double speedup = t / t_fft_seconds(28, 1, m);
  EXPECT_NEAR(speedup, 0.8 * 28.0 * 20.0 / 40.0, 1e-6);  // = 11.2
}

TEST(PerfModel, WeakScalingSpeedupDipsThenRecovers) {
  // Fig. 3's shape: the speedup drops when the 3 all-to-alls start to
  // cost more than QFT's log2(P) exchanges, then recovers as P grows.
  const auto series = fig3_series(28, 36, MachineParams::stampede());
  ASSERT_EQ(series.size(), 9u);
  EXPECT_EQ(series.front().nodes, 1);
  EXPECT_EQ(series.back().nodes, 256);
  const double s1 = series[0].speedup();
  const double s2 = series[1].speedup();   // 2 nodes
  const double s256 = series.back().speedup();
  EXPECT_GT(s1, s2);    // communication kicks in -> dip
  EXPECT_GT(s256, s2);  // log2(P)/3 ratio grows -> recovery
  for (const auto& p : series) {
    EXPECT_GT(p.speedup(), 1.0) << "emulation must always win (paper: 6-15x)";
    EXPECT_LT(p.speedup(), 20.0);
  }
}

TEST(PerfModel, WeakScalingTimesGrowWithCommunication) {
  const auto series = fig3_series(28, 34, MachineParams::stampede());
  // Weak scaling: per-node work constant, so time growth is from
  // communication only; times must be non-decreasing for simulation.
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_GE(series[i].t_simulate, series[i - 1].t_simulate * 0.99);
}

TEST(QpeModel, SimulationCostDoublesPerBit) {
  QpeCosts c;
  c.t_apply_u = 1e-4;
  EXPECT_NEAR(qpe_simulate_seconds(c, 4), 15e-4, 1e-12);
  EXPECT_NEAR(qpe_simulate_seconds(c, 5) / qpe_simulate_seconds(c, 4), 31.0 / 15.0, 1e-9);
}

TEST(QpeModel, CrossoverMatchesBruteForce) {
  QpeCosts c;
  c.t_apply_u = 1.44e-4;  // the paper's n = 8 column
  c.t_construct = 7.60e-4;
  c.t_gemm = 8.39e-4;
  c.t_eig = 9.60e-2;
  const unsigned rs = crossover_bits_repeated_squaring(c);
  const unsigned ed = crossover_bits_eigendecomposition(c);
  // Brute-force verification of the definitions.
  for (unsigned b = 1; b < rs; ++b)
    EXPECT_LT(qpe_simulate_seconds(c, b), qpe_repeated_squaring_seconds(c, b));
  EXPECT_GE(qpe_simulate_seconds(c, rs), qpe_repeated_squaring_seconds(c, rs));
  for (unsigned b = 1; b < ed; ++b)
    EXPECT_LT(qpe_simulate_seconds(c, b), qpe_eigendecomposition_seconds(c, b));
  EXPECT_GE(qpe_simulate_seconds(c, ed), qpe_eigendecomposition_seconds(c, ed));
  // Paper's Table 2 reports 6 and 10 for this column.
  EXPECT_EQ(rs, 6u);
  EXPECT_EQ(ed, 10u);
}

TEST(QpeModel, Table2CrossoversReproduced) {
  // Full lower panel of Table 2 from the paper's measured timings.
  const double apply_u[] = {1.44e-4, 1.60e-4, 1.80e-4, 2.11e-4, 2.44e-4, 3.46e-4, 4.92e-4};
  const double construct[] = {7.60e-4, 3.46e-3, 1.55e-2, 6.88e-2, 3.02e-1, 1.32, 5.69};
  const double gemm_t[] = {8.39e-4, 6.71e-3, 5.37e-2, 4.29e-1, 3.44, 2.75e1, 2.20e2};
  const double eig_t[] = {9.60e-2, 5.27e-1, 1.70, 6.72, 3.22e1, 1.80e2, 9.01e2};
  const unsigned expect_rs[] = {6, 9, 12, 15, 18, 21, 24};
  const unsigned expect_ed[] = {10, 12, 14, 15, 18, 19, 21};
  for (int i = 0; i < 7; ++i) {
    QpeCosts c{apply_u[i], construct[i], gemm_t[i], eig_t[i]};
    EXPECT_EQ(crossover_bits_repeated_squaring(c), expect_rs[i]) << "n=" << 8 + i;
    EXPECT_EQ(crossover_bits_eigendecomposition(c), expect_ed[i]) << "n=" << 8 + i;
  }
}

TEST(QpeModel, AsymptoticRules) {
  EXPECT_DOUBLE_EQ(asymptotic_crossover_gemm(10), 20.0);
  EXPECT_NEAR(asymptotic_crossover_strassen(10), 18.07, 0.01);
  EXPECT_DOUBLE_EQ(asymptotic_crossover_eig_coherent(10), 10.0);
}

TEST(QpeModel, CrossoverUnreachableReturnsSentinel) {
  QpeCosts c;
  c.t_apply_u = 1e-30;  // simulation essentially free
  c.t_construct = 1e9;
  c.t_gemm = 1e9;
  c.t_eig = 1e9;
  EXPECT_GT(crossover_bits_repeated_squaring(c, 20), 20u);
}

TEST(PerfModel, LocalCalibration) {
  const MachineParams m = MachineParams::local(5.0, 20.0, 1.0);
  EXPECT_DOUBLE_EQ(m.fft_gflops, 5.0);
  EXPECT_GT(t_fft_seconds(20, 1, m), 0.0);
  EXPECT_GT(t_qft_seconds(20, 2, m), t_qft_seconds(20, 2, MachineParams::stampede()));
}

TEST(PerfModel, RejectsBadRange) {
  EXPECT_THROW(fig3_series(30, 28, MachineParams::stampede()), std::invalid_argument);
}

}  // namespace
}  // namespace qc::models
