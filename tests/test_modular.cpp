// Tests for the Beauregard modular-arithmetic circuits: every level of
// the construction (Draper phi-adder, modular adder, CMULT, in-place
// controlled modular multiplication, modular exponentiation) is checked
// against the emulator's direct evaluation on state vectors — these
// circuits contain QFTs and are not BitVm-executable.
#include <gtest/gtest.h>

#include <numeric>

#include "circuit/builders.hpp"
#include "emu/emulator.hpp"
#include "revcirc/modular.hpp"
#include "sim/simulator.hpp"

namespace qc::revcirc {
namespace {

using circuit::Circuit;
using emu::Emulator;
using sim::HpcSimulator;
using sim::StateVector;

TEST(ModInverse, KnownValuesAndErrors) {
  EXPECT_EQ(mod_inverse(7, 15), 13u);   // 7*13 = 91 = 6*15+1
  EXPECT_EQ(mod_inverse(3, 7), 5u);     // 3*5 = 15 = 2*7+1
  EXPECT_EQ(mod_inverse(1, 9), 1u);
  for (index_t a = 1; a < 21; ++a) {
    if (std::gcd(a, index_t{21}) != 1) {
      EXPECT_THROW(mod_inverse(a, 21), std::invalid_argument) << a;
    } else {
      EXPECT_EQ(a * mod_inverse(a, 21) % 21, 1u) << a;
    }
  }
}

class DraperAdder : public ::testing::TestWithParam<qubit_t> {};

TEST_P(DraperAdder, AddConstantMatchesEmulatorOnRandomState) {
  const qubit_t w = GetParam();
  const index_t k = (index_t{0x5b} ^ w) & bits::low_mask(w);
  StateVector circuit_sv(w);
  Rng rng(w);
  circuit_sv.randomize(rng);
  StateVector emu_sv(w);
  std::copy(circuit_sv.amplitudes().begin(), circuit_sv.amplitudes().end(),
            emu_sv.amplitudes().begin());

  Circuit c(w);
  add_const_via_qft(c, make_reg(0, w), k);
  HpcSimulator().run(circuit_sv, c);

  Emulator(emu_sv).add_constant({0, w}, k);
  EXPECT_LT(circuit_sv.max_abs_diff(emu_sv), 1e-11);
}

TEST_P(DraperAdder, SubtractionInverts) {
  const qubit_t w = GetParam();
  const index_t k = 3;
  StateVector sv(w);
  Rng rng(w + 9);
  sv.randomize(rng);
  StateVector ref(w);
  std::copy(sv.amplitudes().begin(), sv.amplitudes().end(), ref.amplitudes().begin());
  Circuit c(w);
  const Reg reg = make_reg(0, w);
  qft_on_reg(c, reg);
  phi_add_const(c, reg, k);
  phi_sub_const(c, reg, k);
  inverse_qft_on_reg(c, reg);
  HpcSimulator().run(sv, c);
  EXPECT_LT(sv.max_abs_diff(ref), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Widths, DraperAdder, ::testing::Values(1, 2, 3, 5, 7));

TEST(DraperAdder, ControlledRespectsControl) {
  const qubit_t w = 3;
  // Register + control qubit on top.
  for (const int ctl : {0, 1}) {
    StateVector sv(w + 1);
    sv.set_basis(5 | (static_cast<index_t>(ctl) << w));
    Circuit c(w + 1);
    add_const_via_qft(c, make_reg(0, w), 6, {w});
    HpcSimulator().run(sv, c);
    const index_t expect = (ctl ? (5 + 6) & 7 : 5) | (static_cast<index_t>(ctl) << w);
    EXPECT_NEAR(std::abs(sv[expect]), 1.0, 1e-11) << "ctl=" << ctl;
  }
}

class ModularAdder : public ::testing::TestWithParam<index_t> {};

TEST_P(ModularAdder, AllInputsAllConstants) {
  // Exhaustive over b < N and a < N for the given modulus.
  const index_t modulus = GetParam();
  qubit_t w = 1;
  while (dim(w) < modulus) ++w;
  const qubit_t total = w + 2;  // b (w+1) + ancilla
  const Reg b_reg = make_reg(0, w + 1);
  const HpcSimulator hpc;
  for (index_t a = 0; a < modulus; ++a) {
    Circuit c(total);
    qft_on_reg(c, b_reg);
    phi_add_const_mod(c, b_reg, a, modulus, w + 1);
    inverse_qft_on_reg(c, b_reg);
    for (index_t b = 0; b < modulus; ++b) {
      StateVector sv(total);
      sv.set_basis(b);
      hpc.run(sv, c);
      const index_t expect = (a + b) % modulus;
      EXPECT_NEAR(std::abs(sv[expect]), 1.0, 1e-9)
          << "N=" << modulus << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, ModularAdder, ::testing::Values(2, 3, 5, 7, 8, 13));

TEST(ModularAdder, WorksOnSuperpositions) {
  const index_t modulus = 13;
  const qubit_t w = 4;
  const qubit_t total = w + 2;
  const Reg b_reg = make_reg(0, w + 1);
  Circuit c(total);
  qft_on_reg(c, b_reg);
  phi_add_const_mod(c, b_reg, 9, modulus, w + 1);
  inverse_qft_on_reg(c, b_reg);

  // Superpose all valid b < N with distinct phases, then compare with
  // the emulator's partial map.
  StateVector circuit_sv(total);
  auto amps = circuit_sv.amplitudes();
  std::fill(amps.begin(), amps.end(), complex_t{});
  for (index_t b = 0; b < modulus; ++b)
    amps[b] = std::polar(1.0 / std::sqrt(static_cast<double>(modulus)), 0.2 * b);
  StateVector emu_sv(total);
  std::copy(amps.begin(), amps.end(), emu_sv.amplitudes().begin());

  HpcSimulator().run(circuit_sv, c);
  Emulator(emu_sv).apply_partial_map(
      [&](index_t i) { return bits::with_field(i, 0, w + 1, (bits::field(i, 0, w + 1) + 9) % modulus); });
  EXPECT_LT(circuit_sv.max_abs_diff(emu_sv), 1e-10);
}

TEST(ModularAdder, ControlledVariantRespectsControl) {
  const index_t modulus = 11;
  const qubit_t w = 4;
  const qubit_t total = w + 3;  // b (w+1) + anc + control
  const Reg b_reg = make_reg(0, w + 1);
  const qubit_t anc = w + 1, ctl = w + 2;
  Circuit c(total);
  qft_on_reg(c, b_reg);
  phi_add_const_mod(c, b_reg, 7, modulus, anc, {ctl});
  inverse_qft_on_reg(c, b_reg);
  const HpcSimulator hpc;
  for (index_t b = 0; b < modulus; ++b) {
    for (const index_t on : {index_t{0}, index_t{1}}) {
      StateVector sv(total);
      sv.set_basis(b | (on << ctl));
      hpc.run(sv, c);
      const index_t expect = (on ? (b + 7) % modulus : b) | (on << ctl);
      EXPECT_NEAR(std::abs(sv[expect]), 1.0, 1e-9) << "b=" << b << " on=" << on;
    }
  }
}

TEST(OrderFinding, ExponentDistributionPeaksAtOrderMultiples) {
  // Gate-level mini-Shor: after the modexp cascade and an inverse QFT
  // on the exponent register, probability concentrates on multiples of
  // 2^t / r (r = 4 for a = 7 mod 15).
  const index_t modulus = 15, a = 7;
  const ShorLayout layout = ShorLayout::make(/*t_bits=*/4, modulus);
  Circuit c = order_finding_circuit(layout, a, modulus);
  Circuit iqft(layout.total_qubits());
  iqft.compose_mapped(circuit::inverse_qft(layout.t), layout.exponent);
  c.compose(iqft);

  StateVector sv(layout.total_qubits());
  HpcSimulator().run(sv, c);
  const auto dist = sv.register_distribution(0, layout.t);
  // Peaks at 0, 4, 8, 12 (2^4 / 4 spacing), each with probability 1/4.
  for (index_t x = 0; x < dist.size(); ++x) {
    if (x % 4 == 0) {
      EXPECT_NEAR(dist[x], 0.25, 1e-6) << "x=" << x;
    } else {
      EXPECT_NEAR(dist[x], 0.0, 1e-6) << "x=" << x;
    }
  }
}

TEST(CmultMod, AccumulatesProductOnBasisStates) {
  const index_t modulus = 15, a = 7;
  const qubit_t w = 4;
  // Layout: x = [0,w), b = [w, 2w+1), anc = 2w+1, control = 2w+2.
  const qubit_t total = 2 * w + 3;
  const Reg x_reg = make_reg(0, w);
  const Reg b_reg = make_reg(w, w + 1);
  Circuit c(total);
  cmult_mod(c, 2 * w + 2, x_reg, b_reg, a, modulus, 2 * w + 1);
  const HpcSimulator hpc;
  for (const index_t x : {index_t{0}, index_t{1}, index_t{6}, index_t{14}}) {
    for (const index_t b0 : {index_t{0}, index_t{4}}) {
      // Control on.
      StateVector sv(total);
      sv.set_basis(x | (b0 << w) | (index_t{1} << (2 * w + 2)));
      hpc.run(sv, c);
      const index_t expect =
          x | (((b0 + a * x) % modulus) << w) | (index_t{1} << (2 * w + 2));
      EXPECT_NEAR(std::abs(sv[expect]), 1.0, 1e-9) << "x=" << x << " b0=" << b0;
      // Control off: identity.
      StateVector off(total);
      off.set_basis(x | (b0 << w));
      hpc.run(off, c);
      EXPECT_NEAR(std::abs(off[x | (b0 << w)]), 1.0, 1e-9);
    }
  }
}

TEST(ControlledModmul, InPlaceMultiplicationAndCleanAncillas) {
  const index_t modulus = 15, a = 7;
  const qubit_t w = 4;
  const qubit_t total = 2 * w + 3;
  const Reg x_reg = make_reg(0, w);
  const Reg b_reg = make_reg(w, w + 1);
  Circuit c(total);
  controlled_modmul(c, 2 * w + 2, x_reg, b_reg, a, modulus, 2 * w + 1);
  const HpcSimulator hpc;
  for (index_t x = 0; x < modulus; ++x) {
    StateVector sv(total);
    sv.set_basis(x | (index_t{1} << (2 * w + 2)));
    hpc.run(sv, c);
    const index_t expect = (a * x % modulus) | (index_t{1} << (2 * w + 2));
    EXPECT_NEAR(std::abs(sv[expect]), 1.0, 1e-8) << "x=" << x;
  }
  EXPECT_THROW(controlled_modmul(c, 2 * w + 2, x_reg, b_reg, 6, modulus, 2 * w + 1),
               std::invalid_argument);  // gcd(6,15) != 1
}

TEST(Modexp, MatchesEmulatedModularExponentiation) {
  // The headline equivalence: the full gate-level order-finding state
  // (Hadamards + modexp cascade) equals the emulator's one-permutation
  // construction, amplitude for amplitude.
  const index_t modulus = 15, a = 7;
  const qubit_t t = 4;
  const ShorLayout layout = ShorLayout::make(t, modulus);
  const Circuit c = order_finding_circuit(layout, a, modulus);

  StateVector circuit_sv(layout.total_qubits());
  HpcSimulator().run(circuit_sv, c);

  // Emulated reference: Hadamards on the exponent register, |1> in x,
  // then the modexp permutation.
  StateVector emu_sv(layout.total_qubits());
  {
    Circuit prep(layout.total_qubits());
    for (const qubit_t q : layout.exponent) prep.h(q);
    prep.x(layout.x[0]);
    HpcSimulator().run(emu_sv, prep);
  }
  Emulator emu(emu_sv);
  emu.apply_permutation([&](index_t i) {
    const index_t e = bits::field(i, 0, t);
    index_t y = bits::field(i, t, layout.w);
    if (y >= modulus) return i;
    index_t factor = a, ee = e;
    while (ee > 0) {
      if (ee & 1) y = y * factor % modulus;
      factor = factor * factor % modulus;
      ee >>= 1;
    }
    return bits::with_field(i, t, layout.w, y);
  });
  EXPECT_LT(circuit_sv.max_abs_diff(emu_sv), 1e-8);
}

TEST(Modexp, GateCountIsPolynomial) {
  const ShorLayout l4 = ShorLayout::make(8, 15);
  const ShorLayout l5 = ShorLayout::make(10, 31);
  const std::size_t g4 = order_finding_circuit(l4, 7, 15).size();
  const std::size_t g5 = order_finding_circuit(l5, 3, 31).size();
  // O(t * w^3)-ish gate counts: going from (t=8, w=4) to (t=10, w=5)
  // should grow by roughly (10/8)*(5/4)^3 ~ 2.4x, nowhere near 2^w.
  EXPECT_GT(g5, g4);
  EXPECT_LT(g5, 4 * g4);
}

}  // namespace
}  // namespace qc::revcirc
