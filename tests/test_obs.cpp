// Tests for the obs tracing subsystem: disabled-path overhead, span
// nesting and cross-thread parenting, counters, exporters, and the
// engine-level trace accounting contract (per-op byte deltas sum to the
// Result totals on every backend; read-only dist ops attribute zero).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace qc::obs {
namespace {

TEST(Tracer, DisabledByDefault) {
  EXPECT_EQ(Tracer::current(), nullptr);
  EXPECT_FALSE(enabled());
  // No tracer installed: spans, instants and counters are no-ops.
  {
    Span s("noop");
    s.arg("x", 1);
    instant("marker", {{"a", 2}});
    counter_add("c", 3);
  }
  Tracer t;
  const TraceData data = t.collect();
  EXPECT_TRUE(data.spans.empty());
  EXPECT_TRUE(data.counters.empty());
}

TEST(Tracer, DisabledSpanOverheadIsSmall) {
  // The cost contract: a disabled span is one relaxed atomic load and a
  // branch. The bound is deliberately loose (shared CI machines), but
  // tight enough to catch an accidental allocation or lock on the
  // disabled path.
  ASSERT_EQ(Tracer::current(), nullptr);
  constexpr int kIters = 100000;
  WallTimer timer;
  for (int i = 0; i < kIters; ++i) {
    Span s("overhead-probe");
  }
  const double per_span = timer.seconds() / kIters;
  EXPECT_LT(per_span, 2e-7) << "disabled Span costs " << per_span * 1e9 << " ns";
}

TEST(Tracer, WallTimerOverheadIsSmall) {
  // The park/trace clocks lean on WallTimer being cheap enough to run
  // unconditionally.
  constexpr int kIters = 100000;
  WallTimer outer;
  double sink = 0;
  for (int i = 0; i < kIters; ++i) {
    WallTimer t;
    sink += t.seconds();
  }
  const double per_timer = outer.seconds() / kIters;
  EXPECT_GE(sink, 0.0);
  EXPECT_LT(per_timer, 2e-6) << "WallTimer costs " << per_timer * 1e9 << " ns";
}

TEST(Tracer, SpansNestOnOneThread) {
  Tracer tracer;
  const ScopedTracer scoped(&tracer);
  span_id outer_id = 0;
  {
    Span outer("outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(current_span(), outer_id);
    {
      Span inner("inner");
      inner.arg("bytes", 64);
      EXPECT_EQ(current_span(), inner.id());
    }
    EXPECT_EQ(current_span(), outer_id);
  }
  EXPECT_EQ(current_span(), 0u);

  const TraceData data = tracer.collect();
  ASSERT_EQ(data.spans.size(), 2u);
  // Sorted by start time: outer first.
  EXPECT_EQ(data.spans[0].name, "outer");
  EXPECT_EQ(data.spans[0].parent, 0u);
  EXPECT_EQ(data.spans[1].name, "inner");
  EXPECT_EQ(data.spans[1].parent, outer_id);
  EXPECT_EQ(data.spans[1].arg("bytes", -1), 64);
  EXPECT_TRUE(data.spans[1].has_arg("bytes"));
  EXPECT_FALSE(data.spans[1].has_arg("missing"));
  EXPECT_EQ(data.sum_arg("bytes"), 64);

  const auto roots = data.roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(data.spans[roots[0]].name, "outer");
  const auto children = data.children_of(outer_id);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(data.spans[children[0]].name, "inner");
}

TEST(Tracer, ChildDurationsSumWithinParent) {
  Tracer tracer;
  const ScopedTracer scoped(&tracer);
  {
    Span parent("parent");
    for (int i = 0; i < 5; ++i) {
      Span child("child");
      double spin = 0;
      for (int k = 0; k < 1000; ++k) spin += k;
      child.arg("spin", spin);  // keeps the loop observable
    }
  }
  const TraceData data = tracer.collect();
  ASSERT_EQ(data.spans.size(), 6u);
  double parent_dur = 0, child_sum = 0;
  for (const SpanEvent& s : data.spans)
    (s.name == "parent" ? parent_dur : child_sum) += s.dur_s;
  EXPECT_LE(child_sum, parent_dur + 1e-9);
  for (const SpanEvent& s : data.spans) {
    EXPECT_GE(s.dur_s, 0.0);
    EXPECT_GE(s.start_s, 0.0);
  }
}

TEST(Tracer, CrossThreadParentingAndLanes) {
  Tracer tracer;
  const ScopedTracer scoped(&tracer);
  span_id parent_id = 0;
  {
    Span submit_side("submit");
    parent_id = current_span();
    std::thread worker([&] {
      set_thread_lane(3);
      Span job("job", parent_id);  // explicit cross-thread parent
      Span nested("nested");       // implicit: nests under job
    });
    worker.join();
  }
  const TraceData data = tracer.collect();
  ASSERT_EQ(data.spans.size(), 3u);
  int lane3 = 0;
  for (const SpanEvent& s : data.spans) {
    if (s.name == "job") {
      EXPECT_EQ(s.parent, parent_id);
      EXPECT_EQ(s.lane, 3);
    }
    if (s.name == "nested") {
      EXPECT_EQ(s.lane, 3);
    }
    if (s.name == "submit") {
      EXPECT_EQ(s.lane, 0);
    }
    lane3 += s.lane == 3;
  }
  EXPECT_EQ(lane3, 2);
  // The nested span's parent is the job span, two threads deep.
  const auto jobs = data.children_of(parent_id);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(data.children_of(data.spans[jobs[0]].id).size(), 1u);
}

TEST(Tracer, CountersMergeAcrossThreads) {
  Tracer tracer;
  const ScopedTracer scoped(&tracer);
  counter_add("shared", 1);
  std::thread a([] { counter_add("shared", 2); });
  std::thread b([] {
    counter_add("shared", 3);
    counter_add("own", 5);
  });
  a.join();
  b.join();
  const TraceData data = tracer.collect();
  EXPECT_EQ(data.counters.at("shared"), 6);
  EXPECT_EQ(data.counters.at("own"), 5);
}

TEST(Tracer, EmitIntervalClampsToEpoch) {
  Tracer tracer;
  const ScopedTracer scoped(&tracer);
  // Started "an hour before" the tracer existed: clamped to epoch 0.
  emit_interval("park", 3600.0, 0.0, {{"k", 1}});
  const TraceData data = tracer.collect();
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_EQ(data.spans[0].start_s, 0.0);
  EXPECT_GE(data.spans[0].dur_s, 0.0);
  EXPECT_EQ(data.spans[0].arg("k", 0), 1);
}

TEST(Tracer, ScopedTracerRestoresPrevious) {
  Tracer outer;
  const ScopedTracer a(&outer);
  {
    Tracer inner;
    const ScopedTracer b(&inner);
    EXPECT_EQ(Tracer::current(), &inner);
    Span s("inner-only");
  }
  EXPECT_EQ(Tracer::current(), &outer);
  Span s("outer-only");
  s.end();
  EXPECT_EQ(outer.collect().spans.size(), 1u);
}

TEST(Tracer, SecondTracerDoesNotInheritOpenStack) {
  // Generation rebinding: spans left conceptually "open" when a tracer
  // goes away must not parent spans of the next tracer.
  {
    Tracer first;
    const ScopedTracer scoped(&first);
    Span s("left-open");
    // scoped + first die while s is alive; s.end() after is a no-op
    // against the dead tracer, which is exactly the hazard.
    Tracer::set_current(nullptr);
  }
  Tracer second;
  const ScopedTracer scoped(&second);
  Span fresh("fresh");
  fresh.end();
  const TraceData data = second.collect();
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_EQ(data.spans[0].parent, 0u);
}

// --- exporters ---------------------------------------------------------

TraceData sample_data() {
  Tracer tracer;
  const ScopedTracer scoped(&tracer);
  {
    Span a("alpha");
    a.arg("bytes", 1024);
    a.arg("pred_s", 0.5);
    Span b("beta");
  }
  std::thread rank([] {
    set_thread_lane(1);
    Span job("cluster.job");
    Span barrier("cluster.barrier");
  });
  rank.join();
  counter_add("events", 2);
  return tracer.collect();
}

TEST(Report, ChromeTraceJsonIsStructurallySound) {
  const std::string json = chrome_trace_json(sample_data());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("rank 0"), std::string::npos);  // lane 1 label
  // Balanced braces/brackets — cheap proxy for well-formedness.
  long depth = 0;
  for (const char c : json) {
    depth += (c == '{' || c == '[') - (c == '}' || c == ']');
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Report, StatsAndMetrics) {
  const TraceData data = sample_data();
  const auto stats = span_stats(data);
  ASSERT_EQ(stats.size(), 4u);  // alpha, beta, cluster.job, cluster.barrier
  for (const SpanStats& st : stats) {
    if (st.name == "alpha") {
      EXPECT_EQ(st.count, 1u);
      EXPECT_EQ(st.bytes, 1024);
      EXPECT_TRUE(st.has_pred);
      EXPECT_EQ(st.pred_s, 0.5);
    } else {
      EXPECT_FALSE(st.has_pred);
    }
  }
  const auto lanes = lane_stats(data);
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].lane, 1);
  EXPECT_GT(lanes[0].exec_s, 0.0);
  EXPECT_GT(lanes[0].barrier_s, 0.0);
  EXPECT_EQ(load_imbalance(data), 0.0);  // < 2 lanes

  const std::string metrics = metrics_json(data);
  EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.find("\"events\": 2"), std::string::npos);
  EXPECT_NE(metrics.find("\"imbalance\""), std::string::npos);

  const auto rows = model_report(data);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[0].predicted_s, 0.5);
  EXPECT_EQ(rows[0].bytes, 1024u);
  EXPECT_GT(rows[0].drift(), 0.0);
  EXPECT_FALSE(model_report_table(rows).to_string().empty());
  EXPECT_FALSE(summary_table(data).to_string().empty());
}

// --- engine-level trace accounting -------------------------------------

engine::Program traced_program(qubit_t n) {
  engine::Program p(n);
  circuit::Circuit c(n);
  for (qubit_t q = 0; q < n; ++q) {
    c.h(q);
    c.rz(q, 0.23 * static_cast<double>(q + 1));
  }
  for (qubit_t q = 0; q + 1 < n; ++q) c.cnot(q, q + 1);
  p.gates(c);
  p.expectation_z(0b101);
  p.qft();
  p.expectation_z(0b11);
  p.measure({0, 3});
  return p;
}

TEST(EngineTrace, PerOpByteDeltasSumToResultTotals) {
  const engine::Program p = traced_program(8);
  for (const std::string backend : {"hpc", "cached", "dist"}) {
    engine::RunOptions opts;
    opts.backend = backend;
    opts.dist_ranks = 4;
    opts.collapse_measurements = false;
    opts.trace = true;
    const engine::Result res = engine::Engine().run(p, opts);
    ASSERT_NE(res.trace_data, nullptr) << backend;
    std::uint64_t host = 0, net = 0;
    for (const engine::OpTrace& row : res.trace) {
      host += row.host_bytes;
      net += row.net_bytes;
    }
    EXPECT_EQ(host, res.host_bytes) << backend;
    EXPECT_EQ(net, res.net_bytes) << backend;
    if (backend != "dist") {
      EXPECT_EQ(res.host_bytes, 0u) << backend;
      EXPECT_EQ(res.net_bytes, 0u) << backend;
    }
  }
}

TEST(EngineTrace, ReadOnlyDistOpsAttributeZeroBytes) {
  // The op-boundary counter snapshot: an ExpectationZ against the
  // resident distributed state moves no chunk data, so its trace row
  // must read zero on both byte columns — the communication of the
  // surrounding gate segments must not leak into it.
  const engine::Program p = traced_program(8);
  engine::RunOptions opts;
  opts.backend = "dist";
  opts.dist_ranks = 4;
  opts.collapse_measurements = false;
  const engine::Result res = engine::Engine().run(p, opts);
  EXPECT_GT(res.net_bytes, 0u);  // the QFT's global gates do communicate
  bool saw_expectation = false, saw_segment_bytes = false;
  for (const engine::OpTrace& row : res.trace) {
    if (row.op.rfind("expectation_z", 0) == 0) {
      saw_expectation = true;
      EXPECT_EQ(row.net_bytes, 0u) << row.op;
      EXPECT_EQ(row.host_bytes, 0u) << row.op;
    }
    if (row.op.rfind("gates", 0) == 0 && row.net_bytes > 0) saw_segment_bytes = true;
  }
  EXPECT_TRUE(saw_expectation);
  EXPECT_TRUE(saw_segment_bytes);  // attributed to the op that moved them
}

TEST(EngineTrace, TraceDataMirrorsFlatTraceRows) {
  // With tracing on, every OpTrace row has a root op span carrying the
  // same byte deltas — the structured trace is a strict refinement of
  // the flat one.
  const engine::Program p = traced_program(8);
  engine::RunOptions opts;
  opts.backend = "dist";
  opts.dist_ranks = 4;
  opts.collapse_measurements = false;
  opts.trace = true;
  const engine::Result res = engine::Engine().run(p, opts);
  ASSERT_NE(res.trace_data, nullptr);
  const TraceData& data = *res.trace_data;

  // Exactly one engine.run root enclosing everything.
  std::size_t runs = 0;
  span_id run_id = 0;
  for (const SpanEvent& s : data.spans) {
    if (s.name == "engine.run") {
      ++runs;
      run_id = s.id;
    }
  }
  EXPECT_EQ(runs, 1u);

  // The byte-delta args of engine.run's direct children (the op spans
  // and [finalize]) sum to the Result totals. Deeper spans re-describe
  // the same traffic (dist.scatter host_bytes, exchange "bytes"), so
  // only this level partitions it.
  double span_host = 0, span_net = 0;
  for (const std::size_t i : data.children_of(run_id)) {
    span_host += data.spans[i].arg("host_bytes", 0);
    span_net += data.spans[i].arg("net_bytes", 0);
  }
  EXPECT_EQ(static_cast<std::uint64_t>(span_host), res.host_bytes);
  EXPECT_EQ(static_cast<std::uint64_t>(span_net), res.net_bytes);
  // Rank lanes appear (4 ranks -> lanes 1..4 present).
  int max_lane = 0;
  for (const SpanEvent& s : data.spans) max_lane = std::max(max_lane, s.lane);
  EXPECT_EQ(max_lane, 4);
}

}  // namespace
}  // namespace qc::obs
