// Tests for the measurement shortcuts (§3.4): exact expectation values
// against hand-computed states, Pauli-string rotation correctness, and
// the 1/sqrt(shots) convergence of the sampling estimator the emulator
// makes unnecessary.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/builders.hpp"
#include "emu/observables.hpp"
#include "sim/simulator.hpp"

namespace qc::emu {
namespace {

using sim::HpcSimulator;
using sim::StateVector;

TEST(Observables, ZExpectationOnBasisStates) {
  StateVector sv(3);
  sv.set_basis(0b000);
  EXPECT_NEAR(expectation_z_string(sv, 0b001), 1.0, 1e-14);
  sv.set_basis(0b001);
  EXPECT_NEAR(expectation_z_string(sv, 0b001), -1.0, 1e-14);
  // <Z0 Z1> on |01>: (-1)^(parity) = -1.
  EXPECT_NEAR(expectation_z_string(sv, 0b011), -1.0, 1e-14);
  EXPECT_NEAR(expectation_z_string(sv, 0b010), 1.0, 1e-14);
}

TEST(Observables, ZExpectationOnPlusState) {
  // |+> on every qubit: <Z...> = 0 for any nonempty mask.
  const qubit_t n = 4;
  StateVector sv(n);
  circuit::Circuit c(n);
  for (qubit_t q = 0; q < n; ++q) c.h(q);
  HpcSimulator().run(sv, c);
  EXPECT_NEAR(expectation_z_string(sv, 0b0001), 0.0, 1e-13);
  EXPECT_NEAR(expectation_z_string(sv, 0b1111), 0.0, 1e-13);
  EXPECT_NEAR(expectation_z_string(sv, 0), 1.0, 1e-13);  // identity
}

TEST(Observables, GhzCorrelations) {
  // GHZ: <Z_i Z_j> = 1, <Z_i> = 0, <X^n> = 1.
  const qubit_t n = 5;
  StateVector sv(n);
  HpcSimulator().run(sv, circuit::entangle(n));
  EXPECT_NEAR(expectation_z_string(sv, 0b00011), 1.0, 1e-13);
  EXPECT_NEAR(expectation_z_string(sv, 0b10100), 1.0, 1e-13);
  EXPECT_NEAR(expectation_z_string(sv, 0b00001), 0.0, 1e-13);
  EXPECT_NEAR(expectation_pauli(sv, "XXXXX"), 1.0, 1e-12);
  // <X> on a single GHZ qubit vanishes.
  EXPECT_NEAR(expectation_pauli(sv, "XIIII"), 0.0, 1e-12);
}

TEST(Observables, PauliMatchesZRotationIdentity) {
  // On |0>: <X> = 0, <Y> = 0, <Z> = 1; on |+>: <X> = 1.
  StateVector sv(1);
  EXPECT_NEAR(expectation_pauli(sv, "X"), 0.0, 1e-13);
  EXPECT_NEAR(expectation_pauli(sv, "Y"), 0.0, 1e-13);
  EXPECT_NEAR(expectation_pauli(sv, "Z"), 1.0, 1e-13);
  circuit::Circuit c(1);
  c.h(0);
  HpcSimulator().run(sv, c);
  EXPECT_NEAR(expectation_pauli(sv, "X"), 1.0, 1e-13);
  EXPECT_NEAR(expectation_pauli(sv, "Z"), 0.0, 1e-13);
}

TEST(Observables, YEigenstateExpectation) {
  // (|0> + i|1>)/sqrt(2) is the +1 eigenstate of Y.
  StateVector sv(1);
  sv[0] = 1.0 / std::sqrt(2.0);
  sv[1] = kI / std::sqrt(2.0);
  EXPECT_NEAR(expectation_pauli(sv, "Y"), 1.0, 1e-13);
}

TEST(Observables, PauliRejectsBadAxis) {
  StateVector sv(2);
  EXPECT_THROW(expectation_pauli(sv, "XQ"), std::invalid_argument);
  EXPECT_THROW(expectation_pauli(sv, "XYZ"), std::invalid_argument);  // too long
}

TEST(Observables, RegisterExpectation) {
  // Equal superposition of values 0..7 in a 3-bit register: mean 3.5.
  const qubit_t n = 5;
  StateVector sv(n);
  circuit::Circuit c(n);
  for (qubit_t q = 1; q < 4; ++q) c.h(q);
  HpcSimulator().run(sv, c);
  EXPECT_NEAR(expectation_register(sv, 1, 3), 3.5, 1e-12);
  EXPECT_NEAR(expectation_register(sv, 0, 1), 0.0, 1e-12);
}

TEST(Observables, SampledZConvergesWithShots) {
  // The sampling estimator's error must shrink roughly as 1/sqrt(shots),
  // quantifying the repetitions the emulator saves (§3.4).
  const qubit_t n = 6;
  StateVector sv(n);
  Rng rng(9);
  sv.randomize(rng);
  const index_t mask = 0b10110;
  const double exact = expectation_z_string(sv, mask);
  Rng sampler(10);
  const double err_small = std::abs(sampled_z_string(sv, mask, 100, sampler) - exact);
  double err_large = 0;
  const int reps = 5;
  for (int r = 0; r < reps; ++r)
    err_large += std::abs(sampled_z_string(sv, mask, 40000, sampler) - exact);
  err_large /= reps;
  EXPECT_LT(err_large, 0.02);
  EXPECT_LT(err_large, err_small + 0.05);  // larger shots no worse
}

TEST(Observables, SampleRegisterCountsMatchDistribution) {
  const qubit_t n = 4;
  StateVector sv(n);
  circuit::Circuit c(n);
  c.h(0).cnot(0, 1);  // Bell pair in register [0,2): only 00 and 11
  HpcSimulator().run(sv, c);
  Rng rng(11);
  const auto counts = sample_register_counts(sv, 0, 2, 10000, rng);
  EXPECT_EQ(counts.count(1), 0u);
  EXPECT_EQ(counts.count(2), 0u);
  const double f0 = static_cast<double>(counts.at(0)) / 10000.0;
  EXPECT_NEAR(f0, 0.5, 0.03);
  EXPECT_EQ(counts.at(0) + counts.at(3), 10000u);
}

TEST(Observables, TfimEnergyIsRealAndBounded) {
  // Energy of the TFIM Hamiltonian via Pauli strings on a Trotter-evolved
  // state: |<H>| <= (n-1)*|J| + n*|h|.
  const qubit_t n = 5;
  StateVector sv(n);
  HpcSimulator().run(sv, circuit::tfim_trotter_step(n, 0.3));
  double energy = 0;
  for (qubit_t q = 0; q + 1 < n; ++q) {
    std::string axes(n, 'I');
    axes[q] = 'Z';
    axes[q + 1] = 'Z';
    energy -= expectation_pauli(sv, axes);
  }
  for (qubit_t q = 0; q < n; ++q) {
    std::string axes(n, 'I');
    axes[q] = 'X';
    energy -= expectation_pauli(sv, axes);
  }
  EXPECT_LE(std::abs(energy), static_cast<double>(n - 1) + n + 1e-9);
}

}  // namespace
}  // namespace qc::emu
