// fp32 execution-path tests (PR 10): the error-accumulation gate that
// admits fp32 as a supported precision (fp32 vs fp64 <= 1e-6 max
// amplitude error on deep QFT / random-dense circuits), fp32
// measurement and sampling round-trips, and the dist-backend byte
// accounting contract — the same plan at fp32 moves exactly half the
// fp64 bytes on the wire.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuit/builders.hpp"
#include "engine/engine.hpp"
#include "sim/sampling.hpp"
#include "sim/state_vector.hpp"

namespace qc::engine {
namespace {

/// A deep random-dense gate program: layers of per-qubit rotations and
/// entangling CNOT chains — the error-accumulation worst case a QFT's
/// structured phases can hide.
Program random_dense_program(qubit_t n, int layers, std::uint64_t seed) {
  Program p(n);
  Rng rng(seed);
  for (int l = 0; l < layers; ++l) {
    for (qubit_t q = 0; q < n; ++q) {
      p.ry(q, rng.uniform() * 2.0);
      p.rz(q, rng.uniform() * 2.0);
    }
    for (qubit_t q = 0; q + 1 < n; ++q) p.cnot(q, q + 1);
  }
  return p;
}

Program qft_program(qubit_t n) {
  Program p(n);
  for (qubit_t q = 0; q < n; ++q) p.h(q);
  p.qft().inverse_qft().qft();
  return p;
}

/// Runs `p` on `backend` at both precisions and returns the max
/// amplitude error of the fp32 run against the fp64 reference.
double precision_drift(const Program& p, const std::string& backend) {
  const Engine eng;
  RunOptions o64;
  o64.backend = backend;
  RunOptions o32 = o64;
  o32.precision = Precision::kF32;
  const Result r64 = eng.run(p, o64);
  const Result r32 = eng.run(p, o32);
  return r32.state.max_abs_diff(r64.state);
}

// --- error-accumulation gate ------------------------------------------

TEST(Precision, DeepQftStaysWithinErrorBound) {
  // ~3 full QFT passes at 10 qubits: hundreds of dense + diagonal gates
  // through the fused/cached pipeline. The fp32 drift bound is the
  // RunOptions::precision contract.
  for (const char* backend : {"auto", "cached", "fused"})
    EXPECT_LE(precision_drift(qft_program(10), backend), 1e-6) << backend;
}

TEST(Precision, DeepRandomDenseStaysWithinErrorBound) {
  const Program p = random_dense_program(8, 24, 11);
  for (const char* backend : {"cached", "hpc", "qhipster-like", "liquid-like"})
    EXPECT_LE(precision_drift(p, backend), 1e-6) << backend;
}

TEST(Precision, Fp32StateStaysNormalized) {
  const Engine eng;
  RunOptions opts;
  opts.backend = "cached";
  opts.precision = Precision::kF32;
  const Result r = eng.run(random_dense_program(9, 16, 3), opts);
  EXPECT_NEAR(r.state.norm_sq(), 1.0, 1e-5);
}

// --- measurement / sampling at fp32 -----------------------------------

TEST(Precision, Fp32MeasurementRoundTrip) {
  // |+>^3 measured with collapse: outcomes must be uniform-legal and the
  // collapsed state a basis state — the sampling path runs against the
  // widened fp64 host state, so the draws stay backend-exact.
  Program p(3);
  for (qubit_t q = 0; q < 3; ++q) p.h(q);
  p.measure({0, 3});
  const Engine eng;
  RunOptions o32;
  o32.backend = "cached";
  o32.precision = Precision::kF32;
  RunOptions o64 = o32;
  o64.precision = Precision::kF64;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    o32.seed = o64.seed = seed;
    const Result r32 = eng.run(p, o32);
    const Result r64 = eng.run(p, o64);
    ASSERT_EQ(r32.measurements.size(), 1u);
    // One uniform draw against near-identical CDFs: same outcome.
    EXPECT_EQ(r32.measurements[0], r64.measurements[0]) << "seed=" << seed;
    EXPECT_NEAR(r32.state.norm_sq(), 1.0, 1e-6);
    // Collapsed onto the measured basis state.
    EXPECT_NEAR(std::abs(r32.state[r32.measurements[0]]), 1.0, 1e-6);
  }
}

TEST(Precision, SampleCdfFromFloatAmplitudes) {
  // The sampler's float instantiation: CDF built from fp32 amplitudes
  // must normalize and sample the same outcomes as the fp64 CDF.
  sim::BasicStateVector<float> svf(5);
  svf.randomize_deterministic(21);
  const sim::BasicStateVector<double> svd = svf.cast<double>();
  const auto cf = sim::SampleCdf::from_amplitudes<float>(svf.amplitudes());
  const auto cd = sim::SampleCdf::from_amplitudes<double>(svd.amplitudes());
  for (const double u : {0.0, 0.123, 0.5, 0.77, 0.999999})
    EXPECT_EQ(cf.sample(u), cd.sample(u)) << "u=" << u;
}

TEST(Precision, Fp32ExpectationMatchesFp64) {
  Program p = random_dense_program(7, 8, 5);
  p.expectation_z(0b1010101);
  const Engine eng;
  RunOptions o64;
  o64.backend = "cached";
  RunOptions o32 = o64;
  o32.precision = Precision::kF32;
  const Result r64 = eng.run(p, o64);
  const Result r32 = eng.run(p, o32);
  ASSERT_EQ(r32.expectations.size(), 1u);
  EXPECT_NEAR(r32.expectations[0], r64.expectations[0], 1e-5);
}

// --- dist backend: fp32 halves the wire bytes -------------------------

TEST(Precision, DistFp32MovesExactlyHalfTheBytes) {
  // Same program, same rank count, same plan (plans are precision-
  // agnostic): every exchanged chunk is sizeof(complex<float>) = 8
  // bytes per amplitude instead of 16, so net_bytes must be *exactly*
  // half — the ISSUE's acceptance criterion for the dist path.
  Program p = qft_program(8);
  const Engine eng;
  RunOptions o64;
  o64.backend = "dist";
  o64.dist_ranks = 4;
  RunOptions o32 = o64;
  o32.precision = Precision::kF32;
  const Result r64 = eng.run(p, o64);
  const Result r32 = eng.run(p, o32);
  ASSERT_GT(r64.net_bytes, 0u);
  EXPECT_EQ(r32.net_bytes * 2, r64.net_bytes);
  // Host staging (scatter + gather of the full state) halves too.
  ASSERT_GT(r64.host_bytes, 0u);
  EXPECT_EQ(r32.host_bytes * 2, r64.host_bytes);
  // And the distributed fp32 run still lands on the fp64 answer.
  EXPECT_LE(r32.state.max_abs_diff(r64.state), 1e-6);
}

TEST(Precision, DistFp32MatchesSerialFp32) {
  const Program p = random_dense_program(8, 10, 9);
  const Engine eng;
  RunOptions dist;
  dist.backend = "dist";
  dist.dist_ranks = 2;
  dist.precision = Precision::kF32;
  RunOptions serial;
  serial.backend = "cached";
  serial.precision = Precision::kF32;
  const Result rd = eng.run(p, dist);
  const Result rs = eng.run(p, serial);
  // Both paths run the identical float kernels; only op order differs.
  EXPECT_LE(rd.state.max_abs_diff(rs.state), 1e-5);
}

}  // namespace
}  // namespace qc::engine
