#!/usr/bin/env python3
"""Self-test for tools/qc_analyze — golden findings over the fixture
corpus, waiver round-trip, CLI/JSON contract, and the repo-clean gate.

The fixture files under tools/qc_analyze/fixtures/ seed every rule with
positives (marked `// expect: <rule>[, <rule>]` on the finding line) and
negatives (everything unmarked). The analyzer must detect 100% of the
positives and produce zero findings on the negatives — asserted as exact
set equality on (file, line, rule), not subset checks, so both missed
detections and false positives fail.

waivers.cpp is asserted explicitly (its waiver comments occupy the
trailing-comment position the markers would use).

Registered with ctest as `qc_analyze_selftest` (see CMakeLists.txt);
also runnable directly: python3 tests/test_qc_analyze.py
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL_DIR = os.path.join(REPO, "tools", "qc_analyze")
FIXTURE_DIR = os.path.join(TOOL_DIR, "fixtures")

sys.path.insert(0, TOOL_DIR)
import qc_analyze  # noqa: E402

EXPECT = re.compile(r"//.*?\bexpect:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")

WAIVERS_CPP = os.path.join("tools", "qc_analyze", "fixtures", "waivers.cpp")


def fixture_files():
    return sorted(
        os.path.join(FIXTURE_DIR, name)
        for name in os.listdir(FIXTURE_DIR)
        if name.endswith(".cpp")
    )


def rel(path):
    return os.path.relpath(path, REPO)


def marker_expectations():
    """(file, line, rule) for every `expect:` marker in the corpus."""
    expected = set()
    for path in fixture_files():
        if rel(path) == WAIVERS_CPP:
            continue
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                m = EXPECT.search(line)
                if not m:
                    continue
                for rule in re.split(r"\s*,\s*", m.group(1)):
                    expected.add((rel(path), lineno, rule))
    return expected


def line_of(path, needle):
    """1-based line number of the unique line containing `needle`."""
    with open(path, encoding="utf-8") as f:
        hits = [i for i, line in enumerate(f, 1) if needle in line]
    assert len(hits) == 1, f"{needle!r} matched lines {hits} in {path}"
    return hits[0]


def line_ending_with(path, suffix):
    """1-based line number of the unique line that ends with `suffix`."""
    with open(path, encoding="utf-8") as f:
        hits = [i for i, line in enumerate(f, 1) if line.rstrip().endswith(suffix)]
    assert len(hits) == 1, f"suffix {suffix!r} matched lines {hits} in {path}"
    return hits[0]


def line_following(path, needle, what):
    """1-based line of the first line containing `what` after the unique
    line containing `needle`."""
    start = line_of(path, needle)
    with open(path, encoding="utf-8") as f:
        for i, line in enumerate(f, 1):
            if i > start and what in line:
                return i
    raise AssertionError(f"no {what!r} after line {start} in {path}")


class GoldenFindings(unittest.TestCase):
    """Exact-match detection over the seeded corpus."""

    @classmethod
    def setUpClass(cls):
        cls.findings, cls.nfiles = qc_analyze.analyze(
            fixture_files(), set(qc_analyze.RULES))
        cls.errors = [f for f in cls.findings if not f.waived]
        cls.waived = [f for f in cls.findings if f.waived]

    def test_corpus_covers_every_rule(self):
        # The acceptance bar is >= 3 positives and >= 3 negatives per
        # rule; negatives are everything unmarked, so here we check the
        # positive side and that no rule went unseeded.
        per_rule = {}
        for _, _, rule in marker_expectations():
            per_rule[rule] = per_rule.get(rule, 0) + 1
        per_rule["collective-divergence"] = (
            per_rule.get("collective-divergence", 0) + 3)  # waivers.cpp seeds
        for rule in qc_analyze.RULES:
            self.assertGreaterEqual(
                per_rule.get(rule, 0), 3,
                f"fixture corpus seeds fewer than 3 positives for {rule}")

    def test_exact_findings_match_markers(self):
        wfile = os.path.join(REPO, WAIVERS_CPP)
        expected = marker_expectations() | {
            # waivers.cpp: reason-less waiver is an error, wrong-rule and
            # missing waivers do not suppress the finding.
            (WAIVERS_CPP, line_ending_with(
                wfile, "lint:allow(collective-divergence)"),
             "collective-divergence"),
            (WAIVERS_CPP, line_of(wfile, "lint:allow(raw-shift)"),
             "collective-divergence"),
            (WAIVERS_CPP, line_following(
                wfile, "void unwaived_divergence", "comm.barrier()"),
             "collective-divergence"),
        }
        actual = {(f.file, f.line, f.rule) for f in self.errors}
        missed = expected - actual
        spurious = actual - expected
        self.assertFalse(missed, f"positives not detected: {sorted(missed)}")
        self.assertFalse(spurious, f"false positives: {sorted(spurious)}")

    def test_waiver_round_trip(self):
        wfile = os.path.join(REPO, WAIVERS_CPP)
        by_line = {f.line: f for f in self.waived if f.file == WAIVERS_CPP}
        with_reason = line_of(wfile, "waiver with a reason becomes a note")
        above = line_of(wfile, "waiver on the preceding line") + 1
        self.assertEqual(sorted(by_line), sorted([with_reason, above]))
        self.assertEqual(by_line[with_reason].reason,
                         "fixture: waiver with a reason becomes a note")
        self.assertEqual(by_line[above].reason,
                         "fixture: waiver on the preceding line")
        # The reason-less waiver surfaces as an error naming the problem.
        reasonless = line_ending_with(
            wfile, "lint:allow(collective-divergence)")
        msgs = [f.message for f in self.errors
                if f.file == WAIVERS_CPP and f.line == reasonless]
        self.assertEqual(msgs, ["waiver without a reason"])

    def test_helper_attribution(self):
        # The finding inside fill_scratch must say it was reached via the
        # closure's helper call — the case the regex lint rule missed.
        sc = os.path.join("tools", "qc_analyze", "fixtures",
                          "submit_closure.cpp")
        via = [f for f in self.errors
               if f.file == sc and "via helper 'fill_scratch'" in f.message]
        self.assertEqual(len(via), 1)


class CliContract(unittest.TestCase):
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, os.path.join(TOOL_DIR, "qc_analyze.py"), *args],
            capture_output=True, text=True, cwd=REPO)

    def test_json_output_and_exit_code(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "findings.json")
            proc = self.run_cli(
                "--paths",
                os.path.join(FIXTURE_DIR, "collective_divergence.cpp"),
                "--json", out)
            self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
            with open(out, encoding="utf-8") as f:
                payload = json.load(f)
        self.assertEqual(payload["summary"]["errors"], 5)
        self.assertEqual(payload["summary"]["files"], 1)
        for finding in payload["findings"]:
            self.assertEqual(finding["rule"], "collective-divergence")
            self.assertTrue(finding["hint"])

    def test_rule_filter(self):
        proc = self.run_cli(
            "--paths", os.path.join(FIXTURE_DIR, "p2p_matching.cpp"),
            "--rules", "p2p-sendrecv")
        lines = [l for l in proc.stdout.splitlines() if l.startswith("error:")]
        self.assertEqual(len(lines), 3)
        self.assertTrue(all("[p2p-sendrecv]" in l for l in lines))

    def test_libclang_frontend_is_gated(self):
        proc = self.run_cli(
            "--frontend", "libclang",
            "--paths", os.path.join(FIXTURE_DIR, "waivers.cpp"))
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_unknown_rule_is_an_error(self):
        proc = self.run_cli("--paths", FIXTURE_DIR, "--rules", "no-such-rule")
        self.assertEqual(proc.returncode, 2)


class RepoIsClean(unittest.TestCase):
    """The acceptance gate: the repository itself carries zero unwaived
    findings (fixtures are excluded from default discovery)."""

    def test_default_dirs_clean(self):
        files = qc_analyze.files_from_paths(qc_analyze.DEFAULT_DIRS)
        self.assertNotIn(os.path.join(REPO, WAIVERS_CPP), files,
                         "fixtures must not be swept into default runs")
        findings, nfiles = qc_analyze.analyze(files, set(qc_analyze.RULES))
        self.assertGreater(nfiles, 50)
        errors = [f for f in findings if not f.waived]
        self.assertFalse(
            errors,
            "unwaived findings in the repo:\n" + "\n".join(
                f"  {f.file}:{f.line}: [{f.rule}] {f.message}"
                for f in errors))
        # Every waiver in the tree must carry its reason through.
        for f in findings:
            if f.waived:
                self.assertTrue(f.reason.strip(),
                                f"waiver without reason at {f.file}:{f.line}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
